// Package peersampling is a Go implementation of the gossip-based peer
// sampling service of Jelasity, Guerraoui, Kermarrec and van Steen,
// "The Peer Sampling Service: Experimental Evaluation of Unstructured
// Gossip-Based Implementations" (Middleware 2004).
//
// The peer sampling service provides every node of a large-scale
// distributed system with a continuously refreshed partial view of the
// group, from which gossip applications draw peers (the paper's init() /
// getPeer() API). This package implements:
//
//   - the paper's generic protocol skeleton with all 27 combinations of
//     peer selection (rand/head/tail), view selection (rand/head/tail)
//     and view propagation (push/pull/pushpull), including the named
//     instances Newscast = (rand,head,pushpull) and Lpbcast =
//     (rand,rand,push);
//   - an asynchronous runtime (Node) over pluggable transports: an
//     in-memory fabric with latency/loss/partition injection for tests
//     and demos, and three real-network backends — dial-per-exchange TCP
//     (TCPFactory), connection-pooled TCP with persistent per-peer
//     connections and idle eviction (PooledTCPFactory, the production
//     choice), and one-datagram-per-message UDP (UDPFactory). Real
//     backends share a compact binary codec, keep wire-level counters
//     (Node.TransportStats), are selectable by name through
//     NewTransportFactory / TransportBackends, and are hardened against
//     hostile networks via TransportLimits (connection caps with accept
//     backpressure, keep-alive budgets that shrink for peers that never
//     pull — see the README's "hostile networks" section);
//   - a cycle-based simulator (Simulation) and the complete experimental
//     methodology of the paper (see internal/scenario and the benchmark
//     harness at the repository root);
//   - example gossip applications built on the service: epidemic
//     broadcast (package broadcast) and push-pull averaging (package
//     aggregate).
//
// # Quick start
//
//	fabric := peersampling.NewFabric()
//	node, err := peersampling.NewNode(peersampling.NodeConfig{
//		Protocol: peersampling.Newscast(),
//		ViewSize: 30,
//		Period:   time.Second,
//	}, fabric.Factory("node"))
//	if err != nil { ... }
//	defer node.Close()
//	_ = node.Init([]string{contactAddr})
//	_ = node.Start()
//	peer, err := node.GetPeer()
//
// For real deployments replace the fabric factory with a real backend,
// e.g. peersampling.PooledTCPFactory("10.0.0.5:7946") — or resolve one by
// name with peersampling.NewTransportFactory("tcp-pooled", "10.0.0.5:7946").
// The listen address doubles as the node's gossip identity (peers dial the
// address the node advertises), so bind a concrete address reachable by
// peers, not the wildcard "0.0.0.0".
package peersampling

import (
	"flag"
	"io"
	"time"

	"peersampling/internal/app"
	"peersampling/internal/config"
	"peersampling/internal/core"
	"peersampling/internal/daemon"
	"peersampling/internal/gateway"
	"peersampling/internal/metrics"
	"peersampling/internal/runtime"
	"peersampling/internal/scenario"
	"peersampling/internal/sim"
	"peersampling/internal/transport"
)

// Protocol design space (re-exported from the core implementation).
type (
	// Protocol is a 3-tuple (peer selection, view selection, propagation).
	Protocol = core.Protocol
	// PeerSelection picks the exchange partner: PeerRand, PeerHead, PeerTail.
	PeerSelection = core.PeerSelection
	// ViewSelection truncates merged views: ViewRand, ViewHead, ViewTail.
	ViewSelection = core.ViewSelection
	// Propagation sets exchange symmetry: Push, Pull, PushPull.
	Propagation = core.Propagation
	// Descriptor is a peer address plus the hop-count age of the entry.
	Descriptor = core.Descriptor[string]
)

// Policy constants, re-exported.
const (
	PeerRand = core.PeerRand
	PeerHead = core.PeerHead
	PeerTail = core.PeerTail

	ViewRand = core.ViewRand
	ViewHead = core.ViewHead
	ViewTail = core.ViewTail

	Push     = core.Push
	Pull     = core.Pull
	PushPull = core.PushPull
)

// Newscast returns the (rand,head,pushpull) protocol tuple: fast
// self-healing, balanced degree distribution.
func Newscast() Protocol { return core.Newscast }

// Lpbcast returns the (rand,rand,push) protocol tuple used by lightweight
// probabilistic broadcast.
func Lpbcast() Protocol { return core.Lpbcast }

// ParseProtocol parses the paper's tuple notation, e.g.
// "(rand,head,pushpull)".
func ParseProtocol(s string) (Protocol, error) { return core.ParseProtocol(s) }

// AllProtocols returns all 27 protocol combinations.
func AllProtocols() []Protocol { return core.AllProtocols() }

// StudiedProtocols returns the eight protocols the paper's evaluation
// retains after excluding degenerate combinations.
func StudiedProtocols() []Protocol { return core.StudiedProtocols() }

// Runtime service (re-exported from internal/runtime).
type (
	// Service is the paper's two-method API: Init and GetPeer.
	Service = runtime.Service
	// Node is an asynchronous peer sampling node over a Transport.
	Node = runtime.Node
	// NodeConfig parameterises a Node.
	NodeConfig = runtime.Config
	// Combined couples two protocol instances into one service (the
	// paper's concluding "second view" proposal).
	Combined = runtime.Combined
)

// NewNode constructs a runtime node whose transport endpoint is built by
// the factory.
func NewNode(cfg NodeConfig, factory TransportFactory) (*Node, error) {
	return runtime.New(cfg, factory)
}

// NewCombined couples two protocol instances into one sampling service.
func NewCombined(primary, secondary NodeConfig, factory TransportFactory, seed uint64) (*Combined, error) {
	return runtime.NewCombined(primary, secondary, factory, seed)
}

// Transports (re-exported from internal/transport).
type (
	// Transport moves gossip exchanges between nodes.
	Transport = transport.Transport
	// TransportFactory builds a node's endpoint around its handler.
	TransportFactory = transport.Factory
	// TransportStats is a snapshot of a real backend's wire-level
	// counters (dials, reuses, bytes in/out, dropped datagrams, rejected
	// and evicted hostile connections); see Node.TransportStats.
	TransportStats = transport.Stats
	// TransportLimits bounds a listener's resource use under hostile
	// load: max concurrent served connections (accept backpressure with
	// rejects counted), and keep-alive budgets that shrink for peers that
	// never initiate a pull. The zero value selects safe defaults.
	TransportLimits = transport.Limits
	// PoolConfig tunes the pooled TCP backend (idle cap and timeout,
	// plus listener hardening via its Limits field).
	PoolConfig = transport.PoolConfig
	// Fabric is the in-memory test network.
	Fabric = transport.Fabric
	// FabricOption configures a Fabric (latency, loss).
	FabricOption = transport.FabricOption
)

// NewFabric returns an in-memory network for single-process clusters.
func NewFabric(opts ...FabricOption) *Fabric { return transport.NewFabric(opts...) }

// FabricLatency makes every fabric exchange take d.
func FabricLatency(d time.Duration) FabricOption { return transport.WithLatency(d) }

// FabricLoss makes the fabric drop each exchange with probability p,
// deterministically from seed.
func FabricLoss(p float64, seed uint64) FabricOption { return transport.WithLoss(p, seed) }

// TCPFactory returns a TransportFactory serving real TCP on the given
// listen address (use "host:0" for an ephemeral port; Node.Addr reports
// the bound address). Every exchange dials a fresh connection; prefer
// PooledTCPFactory when gossip rates or cluster sizes grow. An optional
// TransportLimits hardens the listener; omitted, the defaults apply.
func TCPFactory(listen string, lim ...TransportLimits) TransportFactory {
	return func(h transport.Handler) (transport.Transport, error) {
		return transport.ListenTCPLimits(listen, h, firstLimit(lim))
	}
}

// firstLimit unwraps the optional trailing TransportLimits of the factory
// constructors.
func firstLimit(lim []TransportLimits) TransportLimits {
	if len(lim) > 0 {
		return lim[0]
	}
	return TransportLimits{}
}

// PooledTCPFactory returns a TransportFactory serving TCP with persistent
// per-peer connections: each exchange reuses a pooled connection instead
// of dialing, and idle connections are evicted after cfg.IdleTimeout. A
// zero PoolConfig selects the defaults.
func PooledTCPFactory(listen string, cfg ...PoolConfig) TransportFactory {
	var pc PoolConfig
	if len(cfg) > 0 {
		pc = cfg[0]
	}
	return func(h transport.Handler) (transport.Transport, error) {
		return transport.ListenPooledTCP(listen, h, pc)
	}
}

// UDPFactory returns a TransportFactory carrying one exchange per
// datagram pair over UDP: the cheapest backend per exchange, with loss
// surfacing as exchange failures the protocol self-heals around. A node
// whose view encodes past one datagram gets an error on every exchange it
// initiates; a response that would not fit is dropped and counted in
// TransportStats (the wire carries no error frames), which the oversized
// node's own active errors make diagnosable.
// An optional TransportLimits caps concurrent handler dispatch; omitted,
// the defaults apply.
func UDPFactory(listen string, lim ...TransportLimits) TransportFactory {
	return func(h transport.Handler) (transport.Transport, error) {
		return transport.ListenUDPLimits(listen, h, firstLimit(lim))
	}
}

// NewTransportFactory resolves a registered backend name ("tcp",
// "tcp-pooled", "udp") to a TransportFactory bound to the listen address,
// under the default TransportLimits.
func NewTransportFactory(name, listen string) (TransportFactory, error) {
	return transport.NewFactory(name, listen)
}

// NewTransportFactoryLimits is NewTransportFactory with explicit
// hardening limits threaded through to the backend (see TransportLimits
// and the "hostile networks" section of the README).
func NewTransportFactoryLimits(name, listen string, lim TransportLimits) (TransportFactory, error) {
	return transport.NewFactoryLimits(name, listen, lim)
}

// TransportBackends returns the sorted names of the registered
// real-network transport backends.
func TransportBackends() []string { return transport.Backends() }

// Observability (re-exported from internal/metrics): continuous
// instrumentation for live deployments.
type (
	// Collector snapshots registered nodes: protocol counters, all wire
	// counters and view-shape gauges. Register a *Node and expose the
	// collector through a MetricsServer and/or a MetricsDumper.
	Collector = metrics.Collector
	// MetricsServer serves a Collector's snapshots on HTTP GET /metrics
	// in the Prometheus text exposition format.
	MetricsServer = metrics.Server
	// MetricsDumper appends periodic snapshot rounds as long-form CSV
	// (node,cycle,metric,value — the schema the experiment renderers
	// emit) or JSONL.
	MetricsDumper = metrics.Dumper
	// MetricsSnapshot is one node's observable state at one instant.
	MetricsSnapshot = metrics.NodeSnapshot
	// MetricsFormat selects a dumper's output shape.
	MetricsFormat = metrics.Format
)

// Dumper output formats.
const (
	MetricsCSV   = metrics.FormatCSV
	MetricsJSONL = metrics.FormatJSONL
)

// NewCollector returns an empty metrics collector.
func NewCollector() *Collector { return metrics.New() }

// NewMetricsServer serves the collector on addr (":0" picks an ephemeral
// port, reported by the server's Addr method) until Close.
func NewMetricsServer(c *Collector, addr string) (*MetricsServer, error) {
	return metrics.NewServer(c, addr)
}

// NewMetricsDumper returns a dumper appending snapshot rounds to w; call
// Dump per round or Start/Stop for a background ticker.
func NewMetricsDumper(c *Collector, w io.Writer, format MetricsFormat) *MetricsDumper {
	return metrics.NewDumper(c, w, format)
}

// NewMetricsFileDumper returns a dumper appending to the file at path,
// creating it if needed: the format follows the extension and the CSV
// header is only written into an empty file, so restarts append cleanly.
// Close the dumper (after Stop) to close the file.
func NewMetricsFileDumper(c *Collector, path string) (*MetricsDumper, error) {
	return metrics.NewFileDumper(c, path)
}

// MetricsFormatForPath picks the dump format implied by a file extension
// (".jsonl"/".ndjson" select JSONL, anything else CSV).
func MetricsFormatForPath(path string) MetricsFormat { return metrics.FormatForPath(path) }

// Simulation (re-exported from internal/sim) for experimentation at scale
// without real sockets or timers.
type (
	// Simulation is a cycle-based network of protocol instances.
	Simulation = sim.Network
	// SimConfig parameterises a Simulation.
	SimConfig = sim.Config
	// SimNodeID identifies a simulated node.
	SimNodeID = sim.NodeID
	// Observation is one row of overlay metrics.
	Observation = sim.Observation
	// MetricsConfig tunes metric estimation on large overlays.
	MetricsConfig = sim.MetricsConfig
)

// NewSimulation returns an empty cycle-based simulation.
func NewSimulation(cfg SimConfig) (*Simulation, error) { return sim.New(cfg) }

// NewRandomOverlay returns a Simulation of n nodes whose views start as
// uniform random samples (the paper's random initial topology).
func NewRandomOverlay(cfg SimConfig, n int) *Simulation { return scenario.BuildRandom(cfg, n) }

// NewLatticeOverlay returns a Simulation of n nodes bootstrapped as the
// paper's structured ring lattice.
func NewLatticeOverlay(cfg SimConfig, n int) *Simulation { return scenario.BuildLattice(cfg, n) }

// Workload peer sources (re-exported from internal/app): the simulation
// backends the broadcast and aggregate engines draw gossip partners from.
type (
	// WorkloadSource hands each simulated node its per-round peer stream.
	WorkloadSource = app.Source[sim.NodeID]
	// WorkloadSnapshot is one engine's counter snapshot.
	WorkloadSnapshot = app.Snapshot
)

// NewUniformPeers returns the idealised uniform peer source over n nodes
// that the gossip literature assumes. The salt separates RNG streams
// between workloads sharing a seed (broadcast.UniformSalt,
// aggregate.UniformSalt reproduce each package's historical results).
func NewUniformPeers(n int, seed, salt uint64) WorkloadSource { return app.NewUniform(n, seed, salt) }

// NewOverlayPeers draws workload gossip partners from the live views of a
// peer sampling simulation; each workload round advances the overlay one
// gossip cycle.
func NewOverlayPeers(s *Simulation) WorkloadSource { return app.NewOverlay(s) }

// Daemon runtime (re-exported from internal/config, internal/daemon and
// internal/gateway): the configuration-driven service form of the node,
// the same machinery cmd/psnode runs.
type (
	// Config is the daemon's full versioned configuration: node identity
	// and protocol, transport backend and hardening limits, metrics
	// endpoints, control surface, and the sampling gateway.
	Config = config.Config
	// ConfigDiff classifies the changes between two configs into
	// hot-applicable and restart-required field paths.
	ConfigDiff = config.ReloadDiff
	// ConfigFlags overlays explicitly-set command-line flags onto a
	// Config (see FromFlags / Apply).
	ConfigFlags = config.Flags
	// Daemon owns one node plus its plugin service surface (metrics
	// server, dumper, reporter, control agent, gateway) with aggregated
	// health, live reload and signal handling.
	Daemon = daemon.Manager
	// DaemonOptions parameterises NewDaemon.
	DaemonOptions = daemon.Options
	// DaemonReport is the aggregated status served on /healthz.
	DaemonReport = daemon.Report
	// PluginStatus is one daemon plugin's lifecycle state.
	PluginStatus = daemon.Status
	// Gateway serves cached peer samples to light clients over HTTP
	// (GET /v1/sample?n=K) with per-client rate limiting.
	Gateway = gateway.Gateway
	// GatewayConfig tunes a Gateway's cache and rate limits.
	GatewayConfig = gateway.Config
	// GatewaySampler is the node-side surface a Gateway draws from
	// (satisfied by *Node).
	GatewaySampler = gateway.Sampler
)

// DefaultConfig returns the daemon configuration with every field at its
// documented default (loopback ephemeral listener, Newscast protocol,
// all optional plugins disabled).
func DefaultConfig() Config { return config.Default() }

// LoadConfig loads, defaults and validates a daemon configuration from a
// YAML or JSON file (the format follows the extension, with a content
// sniff fallback). Unknown fields and invalid values are errors naming
// the offending field path.
func LoadConfig(path string) (Config, error) { return config.LoadFile(path) }

// WriteConfig writes cfg to path as JSON (a valid LoadConfig input —
// how the fleet's subprocess driver provisions its members).
func WriteConfig(path string, cfg Config) error { return config.WriteFile(path, cfg) }

// ConfigFromFlags registers the daemon's config-override flags on fs;
// after fs.Parse, Apply overlays exactly the flags the user set.
func ConfigFromFlags(fs *flag.FlagSet) *ConfigFlags { return config.FromFlags(fs) }

// NewDaemon builds the full daemon — node, transport, and every plugin
// the config enables — without starting it. Use Start/Close for manual
// lifecycles or Run for the signal-driven foreground form.
func NewDaemon(cfg Config, opts DaemonOptions) (*Daemon, error) { return daemon.New(cfg, opts) }

// NewGateway serves the light-client sampling API on addr off s
// (typically a *Node), refreshing its peer cache in the background. A
// zero GatewayConfig selects the defaults.
func NewGateway(addr string, s GatewaySampler, cfg GatewayConfig) (*Gateway, error) {
	return gateway.New(addr, s, cfg)
}
