module peersampling

go 1.24
