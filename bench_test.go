// Benchmark harness: one benchmark per table and figure of the paper's
// evaluation section. Each benchmark runs the corresponding experiment
// driver at the "quick" reproduction scale (N=500, c=30 — every
// qualitative shape of the paper holds there; see EXPERIMENTS.md for
// paper-scale numbers) and prints the paper-shaped result table once.
//
// Run with:
//
//	go test -bench=. -benchmem
//
// Paper-scale reproduction (N=10^4, c=30, 300 cycles, 100 repetitions):
//
//	go run ./cmd/experiments -scale full
package peersampling_test

import (
	"fmt"
	"sync"
	"testing"

	"peersampling/internal/scenario"
)

// benchSeed keeps all harness benchmarks deterministic.
const benchSeed = 1

// printOnce emits each experiment's rendered table exactly once per
// process so benchmark reruns (-benchtime, b.N growth) do not spam.
var printOnce sync.Map

func report(b *testing.B, id string, render func() string) {
	b.Helper()
	if _, done := printOnce.LoadOrStore(id, true); !done {
		fmt.Printf("\n%s\n", render())
	}
}

func BenchmarkTable1GrowingPartitioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.RunTable1(scenario.Quick, benchSeed)
		report(b, res.ID(), res.Render)
	}
}

func BenchmarkFigure2GrowingDynamics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.RunFigure2(scenario.Quick, benchSeed)
		report(b, res.ID(), res.Render)
	}
}

func BenchmarkFigure3ConvergenceDynamics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.RunFigure3(scenario.Quick, benchSeed)
		report(b, res.ID(), res.Render)
	}
}

func BenchmarkFigure4DegreeDistributions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.RunFigure4(scenario.Quick, benchSeed)
		report(b, res.ID(), res.Render)
	}
}

func BenchmarkTable2DegreeDynamics(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.RunTable2(scenario.Quick, benchSeed)
		report(b, res.ID(), res.Render)
	}
}

func BenchmarkFigure5Autocorrelation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.RunFigure5(scenario.Quick, benchSeed)
		report(b, res.ID(), res.Render)
	}
}

func BenchmarkFigure6CatastrophicFailure(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.RunFigure6(scenario.Quick, benchSeed)
		report(b, res.ID(), res.Render)
	}
}

func BenchmarkFigure7SelfHealing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.RunFigure7(scenario.Quick, benchSeed)
		report(b, res.ID(), res.Render)
	}
}

func BenchmarkExclusionStudy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.RunExclusion(scenario.Quick, benchSeed)
		report(b, res.ID(), res.Render)
	}
}

func BenchmarkSamplingUniformity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.RunUniformity(scenario.Quick, benchSeed)
		report(b, res.ID(), res.Render)
	}
}

func BenchmarkContinuousChurn(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.RunChurn(scenario.Quick, benchSeed)
		report(b, res.ID(), res.Render)
	}
}

func BenchmarkViewSizeAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res := scenario.RunAblation(scenario.Quick, benchSeed)
		report(b, res.ID(), res.Render)
	}
}
