#!/bin/sh
# Smoke-test the multi-process fleet harness end to end: build psnode and
# experiments, run the live bootstrap and churn scenarios with the
# subprocess driver (real forked psnode processes, driven through their
# control agents) and check the converged summaries plus the long-form
# CSV scraped through the remote metrics source. This is the guard that
# keeps the fleet path from rotting: CI fails the moment psnode stops
# serving the agent contract or the drivers stop converging. Run from the
# repository root.
set -eu

tmp=$(mktemp -d)
cleanup() {
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/psnode" ./cmd/psnode
go build -o "$tmp/experiments" ./cmd/experiments

"$tmp/experiments" -run bootstrap,livechurn -driver subprocess \
    -psnode "$tmp/psnode" -metrics-csv "$tmp/fleet.csv" >"$tmp/out" 2>&1 || {
    echo "fleet experiments failed:" >&2
    cat "$tmp/out" >&2
    exit 1
}

for want in "converged: true" "re-converged through churn: true" "subprocess driver"; do
    if ! grep -q "$want" "$tmp/out"; then
        echo "fleet summary missing \"$want\":" >&2
        cat "$tmp/out" >&2
        exit 1
    fi
done

# The remote source must land fleet members in the same long-form schema
# as in-process runs: spot-check the header, a wire counter and a latency
# quantile column.
for want in "^node,cycle,metric,value$" ",wire_dials," ",exchange_latency_p99,"; do
    if ! grep -q "$want" "$tmp/fleet.csv"; then
        echo "fleet CSV missing pattern \"$want\":" >&2
        head -n 20 "$tmp/fleet.csv" >&2
        exit 1
    fi
done

echo "fleet smoke OK: $(grep -c 'converged' "$tmp/out") converged summaries, $(wc -l < "$tmp/fleet.csv") CSV rows"
