#!/bin/sh
# Smoke-test declarative fault injection end to end against real psnode
# processes: replay the churn-waves plan (kill waves with respawn) and
# the partition-heal plan (per-link latency, then a half-fleet partition
# that expires) on the subprocess fleet driver. Both experiments must
# name their plan in the rendered report and converge, and the
# partition-heal CSV artifact must align chaos_event rows with the
# freshness trace on the shared long-form schema. Run from the
# repository root.
set -eu

tmp=$(mktemp -d)
cleanup() { rm -rf "$tmp"; }
trap cleanup EXIT INT TERM

go build -o "$tmp/psnode" ./cmd/psnode
go build -o "$tmp/experiments" ./cmd/experiments

# Kill waves: the chaos executor SIGKILLs a quarter of the forked fleet
# per wave and respawns replacements, all from the named plan.
"$tmp/experiments" -run livechurn -driver subprocess \
    -psnode "$tmp/psnode" | tee "$tmp/livechurn.out"
if ! grep -q 'plan=churn-waves' "$tmp/livechurn.out"; then
    echo "livechurn report does not name its chaos plan" >&2
    exit 1
fi
if ! grep -q 're-converged through churn: true' "$tmp/livechurn.out"; then
    echo "livechurn did not re-converge under the plan's kill waves" >&2
    exit 1
fi

# Partition heal: directed cut rules reach every psnode through its
# control agent, freshness collapses across the cut, and the fleet
# re-converges once the rules expire.
"$tmp/experiments" -run partitionheal -driver subprocess \
    -psnode "$tmp/psnode" -csv "$tmp/exp" | tee "$tmp/partitionheal.out"
if ! grep -q 'plan=partition-heal' "$tmp/partitionheal.out"; then
    echo "partitionheal report does not name its chaos plan" >&2
    exit 1
fi
if ! grep -q 're-converged after heal: true' "$tmp/partitionheal.out"; then
    echo "fleet did not re-converge after the partition rules expired" >&2
    exit 1
fi

# The CSV artifact carries the chaos timeline next to the freshness
# trace in the long-form schema.
csv="$tmp/exp/partitionheal_trace.csv"
if [ "$(head -n 1 "$csv")" != "source,cycle,metric,value" ]; then
    echo "partitionheal CSV header wrong: $(head -n 1 "$csv")" >&2
    exit 1
fi
for metric in chaos_event chaos_event_partition chaos_event_expire chaos_active_rules fresh_pairs; do
    if ! grep -q ",$metric," "$csv"; then
        echo "partitionheal CSV missing $metric rows" >&2
        exit 1
    fi
done
events=$(grep -c ',chaos_event,' "$csv")

echo "chaos smoke OK: kill waves and partition heal replayed from named plans ($events chaos events exported)"
