#!/bin/sh
# Run the performance benchmark suite and emit a machine-readable summary
# (default BENCH_pr9.json) in the repository root: one entry per
# benchmark with ns/op, B/op and allocs/op. The JSON is the artifact the
# perf-tracking job diffs between PRs; the raw `go test -bench` output is
# kept next to it for humans.
#
# The suite runs in two passes: the exchange/codec/cycle/gateway-serve
# microbenchmarks at a timed -benchtime, and the million-node cycle
# benchmarks at -benchtime=1x (one cycle is seconds and advances the
# shared population state, so iteration counts would not converge
# anyway). Both passes land in the same JSON.
#
# Usage (from the repository root):
#   scripts/bench.sh [-out FILE] [-compare BASE.json] [pattern]
#
#   -out FILE       write the summary to FILE (default BENCH_pr9.json)
#   -compare BASE   after writing, compare against the baseline JSON and
#                   exit non-zero when any benchmark present in both
#                   files regressed by more than 25% in ns_per_op or
#                   allocs_per_op. Benchmarks missing from the baseline
#                   are reported as new and skipped. The allocs gate is
#                   exact machinery; the ns gate assumes base and current
#                   ran on comparable hardware. BENCH_NS_SLACK (percent,
#                   default 25) widens the ns tolerance for noisy or
#                   heterogeneous runners.
#   pattern         widen/narrow the timed pass (regexp, default
#                   exchange + codec + cycle benchmarks)
set -eu

out="BENCH_pr9.json"
base=""
pattern="Exchange|CodecRoundTrip|ShardedCycle|GatewayServe"
million_pattern="MillionCycle"

while [ $# -gt 0 ]; do
    case "$1" in
    -out)
        out="$2"
        shift 2
        ;;
    -compare)
        base="$2"
        shift 2
        ;;
    *)
        pattern="$1"
        shift
        ;;
    esac
done

raw=$(mktemp)
raw_million=$(mktemp)
trap 'rm -f "$raw" "$raw_million"' EXIT INT TERM

# A 1x pass first as a cheap correctness gate, so a broken benchmark
# fails fast, not 10 minutes in.
go test -run '^$' -bench "$pattern" -benchmem -benchtime=1x -count=1 . ./internal/gateway/ >"$raw" 2>&1 || {
    echo "benchmarks failed:" >&2
    cat "$raw" >&2
    exit 1
}
go test -run '^$' -bench "$pattern" -benchmem -benchtime=100x -count=1 . ./internal/gateway/ >"$raw" 2>&1 || {
    echo "benchmarks failed:" >&2
    cat "$raw" >&2
    exit 1
}
go test -run '^$' -bench "$million_pattern" -benchmem -benchtime=1x -count=1 -timeout=30m . >"$raw_million" 2>&1 || {
    echo "million-node benchmarks failed:" >&2
    cat "$raw_million" >&2
    exit 1
}

awk -v out="$out" '
/^Benchmark/ && NF >= 4 {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = "null"; bytes = "null"; allocs = "null"
    # Benchmarks may report extra custom metrics, so find each standard
    # column by its unit instead of by position.
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        else if ($i == "B/op") bytes = $(i - 1)
        else if ($i == "allocs/op") allocs = $(i - 1)
    }
    entries = entries sep sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $2, ns, bytes, allocs)
    sep = ",\n"
}
END {
    if (entries == "") {
        print "no benchmark lines parsed" > "/dev/stderr"
        exit 1
    }
    printf "[\n%s\n]\n", entries > out
}
' "$raw" "$raw_million"

echo "wrote $out:"
cat "$out"

[ -n "$base" ] || exit 0

if [ ! -f "$base" ]; then
    echo "baseline $base not found, skipping comparison" >&2
    exit 0
fi

# Regression gate: flatten both JSONs to "name metric value" lines (the
# files are produced by the awk above, one object per line) and compare.
ns_slack="${BENCH_NS_SLACK:-25}"
flatten() {
    tr -d ' "' <"$1" | awk -F'[{},:]+' '
    /name/ {
        name = ""; ns = ""; allocs = ""
        for (i = 1; i < NF; i++) {
            if ($i == "name") name = $(i + 1)
            else if ($i == "ns_per_op") ns = $(i + 1)
            else if ($i == "allocs_per_op") allocs = $(i + 1)
        }
        if (name != "") print name, ns, allocs
    }'
}

flatten "$base" >"$raw"
flatten "$out" >"$raw_million"

awk -v ns_slack="$ns_slack" '
NR == FNR { base_ns[$1] = $2; base_allocs[$1] = $3; next }
{
    if (!($1 in base_ns)) {
        printf "  new      %-40s (no baseline entry, skipped)\n", $1
        next
    }
    fail = 0
    if (base_ns[$1] != "null" && $2 != "null" && $2 + 0 > base_ns[$1] * (1 + ns_slack / 100)) {
        printf "  REGRESSED %-40s ns/op %s -> %s (>%s%%)\n", $1, base_ns[$1], $2, ns_slack
        fail = 1
    }
    if (base_allocs[$1] != "null" && $3 != "null" && $3 + 0 > base_allocs[$1] * 1.25) {
        printf "  REGRESSED %-40s allocs/op %s -> %s (>25%%)\n", $1, base_allocs[$1], $3
        fail = 1
    }
    if (!fail) printf "  ok       %-40s ns/op %s -> %s, allocs/op %s -> %s\n", $1, base_ns[$1], $2, base_allocs[$1], $3
    failures += fail
}
END {
    if (failures > 0) {
        printf "%d benchmark(s) regressed beyond tolerance vs %s\n", failures, ARGV[1] > "/dev/stderr"
        exit 1
    }
}
' "$raw" "$raw_million"
echo "no regressions vs $base"
