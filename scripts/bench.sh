#!/bin/sh
# Run the wire-level exchange microbenchmarks and emit a machine-readable
# summary as BENCH_pr6.json in the repository root: one entry per
# benchmark with ns/op, B/op and allocs/op. The JSON is the artifact a
# perf-tracking job diffs between PRs; the raw `go test -bench` output is
# kept next to it for humans. Run from the repository root; pass extra
# benchmark names as $1 to widen the sweep (regexp, default exchange +
# codec benchmarks).
set -eu

pattern="${1:-Exchange|CodecRoundTrip}"
out="BENCH_pr6.json"
raw=$(mktemp)
trap 'rm -f "$raw"' EXIT INT TERM

go test -run '^$' -bench "$pattern" -benchmem -benchtime=1x -count=1 . >"$raw" 2>&1 || {
    echo "benchmarks failed:" >&2
    cat "$raw" >&2
    exit 1
}
# A second timed pass for the numbers that matter; the 1x pass above is a
# cheap correctness gate so a broken benchmark fails fast, not 10 minutes
# in.
go test -run '^$' -bench "$pattern" -benchmem -benchtime=100x -count=1 . >"$raw" 2>&1 || {
    echo "benchmarks failed:" >&2
    cat "$raw" >&2
    exit 1
}

awk -v out="$out" '
/^Benchmark/ && NF >= 4 {
    name = $1
    sub(/-[0-9]+$/, "", name)
    ns = "null"; bytes = "null"; allocs = "null"
    # Benchmarks may report extra custom metrics, so find each standard
    # column by its unit instead of by position.
    for (i = 3; i <= NF; i++) {
        if ($i == "ns/op") ns = $(i - 1)
        else if ($i == "B/op") bytes = $(i - 1)
        else if ($i == "allocs/op") allocs = $(i - 1)
    }
    entries = entries sep sprintf("  {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s, \"bytes_per_op\": %s, \"allocs_per_op\": %s}", name, $2, ns, bytes, allocs)
    sep = ",\n"
}
END {
    if (entries == "") {
        print "no benchmark lines parsed" > "/dev/stderr"
        exit 1
    }
    printf "[\n%s\n]\n", entries > out
}
' "$raw"

echo "wrote $out:"
cat "$out"
