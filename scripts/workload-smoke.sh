#!/bin/sh
# Smoke-test the workload layer end to end on the subprocess fleet
# driver: build psnode and experiments, run the live broadcast and
# aggregation experiments (every member a real forked psnode running a
# workload engine provisioned from its config file), and check that the
# rumor survived the kill wave, the averaging variance collapsed, and
# the engines' counters came back through both observation paths — the
# experiments' own long-form CSVs and the agent-scraped metrics dump.
# This is the guard that keeps the config -> daemon -> fleet -> agent
# workload chain from rotting. Run from the repository root.
set -eu

tmp=$(mktemp -d)
cleanup() {
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/psnode" ./cmd/psnode
go build -o "$tmp/experiments" ./cmd/experiments

"$tmp/experiments" -run livebroadcast,liveaggregate -driver subprocess \
    -psnode "$tmp/psnode" -csv "$tmp/csv" \
    -metrics-csv "$tmp/workload.csv" >"$tmp/out" 2>&1 || {
    echo "workload experiments failed:" >&2
    cat "$tmp/out" >&2
    exit 1
}

for want in "rumor survived the kill wave: true" \
    "variance decayed and size estimated: true" "subprocess driver"; do
    if ! grep -q "$want" "$tmp/out"; then
        echo "workload summary missing \"$want\":" >&2
        cat "$tmp/out" >&2
        exit 1
    fi
done

# The experiments' own series: per-node infection state plus fleet-wide
# coverage, and per-node estimates plus fleet-wide variance and the
# size-estimation phase.
for want in "^node,cycle,metric,value$" ",infected," ",coverage,"; do
    if ! grep -q "$want" "$tmp/csv/livebroadcast_spread.csv"; then
        echo "livebroadcast CSV missing pattern \"$want\":" >&2
        head -n 20 "$tmp/csv/livebroadcast_spread.csv" >&2
        exit 1
    fi
done
for want in ",value," ",variance," ",size_estimate,"; do
    if ! grep -q "$want" "$tmp/csv/liveaggregate_decay.csv"; then
        echo "liveaggregate CSV missing pattern \"$want\":" >&2
        head -n 20 "$tmp/csv/liveaggregate_decay.csv" >&2
        exit 1
    fi
done

# The same engine counters must also arrive through the remote metrics
# source — agent /snapshot across a process boundary — in the periodic
# dump, next to the node's own counters.
for want in ",app_rounds," ",app_infected," ",app_value,"; do
    if ! grep -q "$want" "$tmp/workload.csv"; then
        echo "scraped metrics CSV missing pattern \"$want\":" >&2
        head -n 20 "$tmp/workload.csv" >&2
        exit 1
    fi
done

echo "workload smoke OK: $(grep -c 'true' "$tmp/out") passing summaries, $(wc -l < "$tmp/workload.csv") scraped rows"
