#!/bin/sh
# Smoke-test the load-generation harness end to end: boot a 4-node psnode
# fleet with gateways enabled, point psload at every gateway with a few
# hundred spoofed clients, and require a clean run — successful samples,
# zero transport errors, zero non-limit failures, and long-form CSV rows
# with latency quantiles. Then run the livegateway experiment on the
# subprocess driver: the full ramp (250 then 1000 emulated clients) with
# a kill wave against real psnode processes must end with every surviving
# gateway still serving. Run from the repository root.
set -eu

tmp=$(mktemp -d)
pids=""
cleanup() {
    for pid in $pids; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/psnode" ./cmd/psnode
go build -o "$tmp/psload" ./cmd/psload
go build -o "$tmp/experiments" ./cmd/experiments

# trust_proxy_header lets psload's -spoof-clients emulate distinct
# clients through one loopback socket; the per-client limit is set high
# enough that a clean run sees no 429s.
write_config() {
    # write_config <dir> <contact-or-empty>
    contacts="[]"
    if [ -n "$2" ]; then
        contacts="[\"$2\"]"
    fi
    cat >"$1/config.json" <<EOF
{
  "version": 1,
  "node": {
    "listen": "127.0.0.1:0",
    "contacts": $contacts,
    "view_size": 8,
    "period": "50ms"
  },
  "transport": { "backend": "tcp" },
  "control": {
    "addr": "127.0.0.1:0",
    "ready_file": "$1/ready.json"
  },
  "gateway": {
    "addr": "127.0.0.1:0",
    "refresh": "100ms",
    "rate_rps": 200,
    "burst": 400,
    "trust_proxy_header": true
  }
}
EOF
}

boot() {
    # boot <dir>; waits for the ready file
    "$tmp/psnode" -config "$1/config.json" >"$1/psnode.log" 2>&1 &
    pids="$pids $!"
    i=0
    while [ ! -f "$1/ready.json" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "member in $1 never became ready:" >&2
            cat "$1/psnode.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

mkdir "$tmp/node0"
write_config "$tmp/node0" ""
boot "$tmp/node0"
contact=$(sed -n 's/.*"addr":"\([^"]*\)".*/\1/p' "$tmp/node0/ready.json")

targets=""
for n in 0 1 2 3; do
    if [ "$n" -gt 0 ]; then
        mkdir "$tmp/node$n"
        write_config "$tmp/node$n" "$contact"
        boot "$tmp/node$n"
    fi
    # The daemon reports its bound gateway address in the ready file.
    gw=$(sed -n 's/.*"gateway_addr":"\([^"]*\)".*/\1/p' "$tmp/node$n/ready.json")
    if [ -z "$gw" ]; then
        echo "node$n ready file carries no gateway_addr:" >&2
        cat "$tmp/node$n/ready.json" >&2
        exit 1
    fi
    targets="$targets,$gw"
done
targets=${targets#,}

# The gateway caches fill from gossip; poll until the first one serves.
first=${targets%%,*}
i=0
until curl -sf "http://$first/v1/sample" >/dev/null; do
    i=$((i + 1))
    if [ "$i" -gt 100 ]; then
        echo "gateway $first never served a sample" >&2
        cat "$tmp/node0/psnode.log" >&2
        exit 1
    fi
    sleep 0.1
done

# A few hundred spoofed clients across all four gateways: the run must
# finish with successes on every target and no errors of any kind.
"$tmp/psload" -targets "$targets" -clients 300 -rps 5 -duration 2s \
    -n 3 -spoof-clients -csv "$tmp/load.csv" | tee "$tmp/load.out"

total=$(awk '$1 == "total"' "$tmp/load.out")
if [ -z "$total" ]; then
    echo "psload output has no total row" >&2
    exit 1
fi
ok=$(printf '%s' "$total" | awk '{print $2}')
errors=$(printf '%s' "$total" | awk '{print $6}')
bad=$(printf '%s' "$total" | awk '{print $5}')
if [ "$ok" -eq 0 ] || [ "$errors" -ne 0 ] || [ "$bad" -ne 0 ]; then
    echo "load run not clean: ok=$ok errors=$errors bad=$bad" >&2
    exit 1
fi

# The CSV artifact must carry the long-form schema with quantile rows
# for every target plus the total aggregate.
if [ "$(head -n 1 "$tmp/load.csv")" != "target,cycle,metric,value" ]; then
    echo "load.csv header wrong: $(head -n 1 "$tmp/load.csv")" >&2
    exit 1
fi
for metric in load_ok load_latency_p50 load_latency_p99 load_freshness_p99; do
    if ! grep -q ",$metric," "$tmp/load.csv"; then
        echo "load.csv missing $metric rows" >&2
        exit 1
    fi
done
p99=$(awk -F, '$1 == "total" && $3 == "load_latency_p99" {print $4}' "$tmp/load.csv")
echo "psload smoke OK: ok=$ok errors=0, total p99=${p99}s"

# The full pressure experiment against real processes: ramp to 1000
# clients, kill a quarter of the fleet mid-ramp, survivors keep serving.
"$tmp/experiments" -run livegateway -driver subprocess \
    -psnode "$tmp/psnode" -csv "$tmp/exp" | tee "$tmp/livegateway.out"
if ! grep -q 'served through the kill wave: true' "$tmp/livegateway.out"; then
    echo "livegateway experiment did not converge" >&2
    exit 1
fi
if ! grep -q ',load_latency_p99,' "$tmp/exp"/livegateway_load.csv; then
    echo "livegateway CSV artifact missing latency quantiles" >&2
    exit 1
fi

echo "loadgen smoke OK: clean psload run and livegateway served through the kill wave"
