#!/bin/sh
# Smoke-test the config-driven daemon and its light-client gateway end to
# end: boot a 6-node psnode fleet from generated config files alone (no
# flags), wait for gossip to converge enough that the gateway cache is
# warm, then drive the public surface with curl — GET /v1/sample?n=5 must
# return 5 distinct live peer addresses, /healthz must report the daemon
# plugin aggregate, and a request burst past the configured rate limit
# must come back 429. Run from the repository root.
set -eu

tmp=$(mktemp -d)
pids=""
cleanup() {
    for pid in $pids; do
        kill "$pid" 2>/dev/null || true
    done
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/psnode" ./cmd/psnode

# Member 0 is the contact; write its config first, boot it, then template
# the other five against its discovered gossip address.
write_config() {
    # write_config <dir> <contact-or-empty>
    contacts="[]"
    if [ -n "$2" ]; then
        contacts="[\"$2\"]"
    fi
    cat >"$1/config.json" <<EOF
{
  "version": 1,
  "node": {
    "listen": "127.0.0.1:0",
    "contacts": $contacts,
    "view_size": 8,
    "period": "100ms"
  },
  "transport": { "backend": "tcp" },
  "control": {
    "addr": "127.0.0.1:0",
    "ready_file": "$1/ready.json"
  },
  "gateway": {
    "addr": "127.0.0.1:0",
    "batch_size": 8,
    "refresh": "100ms",
    "rate_rps": 5,
    "burst": 10
  }
}
EOF
}

boot() {
    # boot <dir>; waits for the ready file
    "$tmp/psnode" -config "$1/config.json" >"$1/psnode.log" 2>&1 &
    pids="$pids $!"
    i=0
    while [ ! -f "$1/ready.json" ]; do
        i=$((i + 1))
        if [ "$i" -gt 100 ]; then
            echo "member in $1 never became ready:" >&2
            cat "$1/psnode.log" >&2
            exit 1
        fi
        sleep 0.1
    done
}

mkdir "$tmp/node0"
write_config "$tmp/node0" ""
boot "$tmp/node0"
contact=$(sed -n 's/.*"addr":"\([^"]*\)".*/\1/p' "$tmp/node0/ready.json")

for n in 1 2 3 4 5; do
    mkdir "$tmp/node$n"
    write_config "$tmp/node$n" "$contact"
    boot "$tmp/node$n"
done

# Discover node5's gateway address through its control agent: the
# aggregated /healthz carries each plugin's bound address as "detail".
control=$(sed -n 's/.*"control_addr":"\([^"]*\)".*/\1/p' "$tmp/node5/ready.json")
gateway=$(curl -sf "http://$control/healthz" | tr ',{' '\n\n' |
    grep -A2 '"gateway"' | sed -n 's/.*"detail":"\([^"]*\)".*/\1/p' | head -n 1)
if [ -z "$gateway" ]; then
    echo "could not discover node5's gateway address" >&2
    curl -sf "http://$control/healthz" >&2 || true
    exit 1
fi

# The gateway cache fills from gossip; poll until a 5-peer sample works.
i=0
while true; do
    i=$((i + 1))
    sample=$(curl -s "http://$gateway/v1/sample?n=5" || true)
    count=$(printf '%s' "$sample" | tr ',' '\n' | grep -c '127.0.0.1:' || true)
    if [ "$count" -eq 5 ]; then
        break
    fi
    if [ "$i" -gt 100 ]; then
        echo "gateway never served 5 peers; last response: $sample" >&2
        cat "$tmp/node5/psnode.log" >&2
        exit 1
    fi
    sleep 0.1
done

# The 5 peers must be distinct live members of the fleet.
distinct=$(printf '%s' "$sample" | tr ',[]"' '\n\n\n\n' | grep '^127.0.0.1:' | sort -u | wc -l)
if [ "$distinct" -ne 5 ]; then
    echo "sample peers not distinct: $sample" >&2
    exit 1
fi

# The gateway's /healthz aggregates the daemon plugin report.
health=$(curl -sf "http://$gateway/healthz")
for want in '"status":"ok"' '"daemon"' '"gateway"' '"running"'; do
    case "$health" in
    *"$want"*) ;;
    *)
        echo "gateway healthz missing $want: $health" >&2
        exit 1
        ;;
    esac
done

# Burst past the limit (burst=10): some request among 30 back-to-back
# must be refused with 429.
saw429=0
for _ in $(seq 30); do
    code=$(curl -s -o /dev/null -w '%{http_code}' "http://$gateway/v1/sample")
    if [ "$code" = "429" ]; then
        saw429=1
        break
    fi
done
if [ "$saw429" -ne 1 ]; then
    echo "burst of 30 requests never hit the rate limit" >&2
    exit 1
fi

echo "gateway smoke OK: 5 distinct peers served, healthz aggregated, burst rate-limited"
