#!/bin/sh
# Smoke-test the live observability path end to end: build psnode, start
# it with /metrics on an ephemeral port, scrape the endpoint and check
# that a known protocol counter and a known wire counter are exported.
# This is the guard that keeps the Prometheus export from rotting
# silently: CI fails the moment psnode stops serving the families the
# docs promise. Run from the repository root.
set -eu

tmp=$(mktemp -d)
pid=""
cleanup() {
    [ -n "$pid" ] && kill "$pid" 2>/dev/null || true
    rm -rf "$tmp"
}
trap cleanup EXIT INT TERM

go build -o "$tmp/psnode" ./cmd/psnode

"$tmp/psnode" -listen 127.0.0.1:0 -period 100ms -report 500ms \
    -metrics-addr 127.0.0.1:0 >"$tmp/log" 2>&1 &
pid=$!

# psnode logs the bound metrics address; wait for it to appear.
addr=""
i=0
while [ "$i" -lt 50 ]; do
    addr=$(sed -n 's|.*serving http://\([^/]*\)/metrics.*|\1|p' "$tmp/log" | head -n 1)
    [ -n "$addr" ] && break
    kill -0 "$pid" 2>/dev/null || { echo "psnode exited early:" >&2; cat "$tmp/log" >&2; exit 1; }
    sleep 0.1
    i=$((i + 1))
done
if [ -z "$addr" ]; then
    echo "metrics address never appeared in the log:" >&2
    cat "$tmp/log" >&2
    exit 1
fi

if command -v curl >/dev/null 2>&1; then
    body=$(curl -fsS "http://$addr/metrics")
else
    body=$(wget -qO- "http://$addr/metrics")
fi

for family in peersampling_cycles_total peersampling_view_size \
    peersampling_transport_dials_total peersampling_transport_keepalive_evictions_total; do
    if ! printf '%s\n' "$body" | grep -q "^$family{"; then
        echo "family $family missing from /metrics:" >&2
        printf '%s\n' "$body" >&2
        exit 1
    fi
done

echo "metrics smoke OK: scraped $addr"
