#!/bin/sh
# Fail the build unless every internal/* package carries a package
# comment ("// Package <name> ..."), so `go doc` tells the same story as
# the paper's sections. Run from the repository root.
set -eu

fail=0
for dir in $(go list -f '{{.Dir}}' ./internal/...); do
    if ! grep -q '^// Package ' "$dir"/*.go; then
        echo "missing package comment: $dir" >&2
        fail=1
    fi
done
exit $fail
