package broadcast

import (
	"math"
	"strings"
	"testing"

	"peersampling/internal/app"
	"peersampling/internal/core"
	"peersampling/internal/graph"
	"peersampling/internal/sim"

	"math/rand/v2"
)

// uniform and overlaySrc build the peer sources on this workload's
// historical RNG stream.
func uniform(n int, seed uint64) *app.Uniform { return app.NewUniform(n, seed, UniformSalt) }

func overlaySrc(w *sim.Network) *app.Overlay { return app.NewOverlay(w) }

func newOverlay(t *testing.T, n, c int, proto core.Protocol, warmup int) *sim.Network {
	t.Helper()
	w := sim.MustNew(sim.Config{Protocol: proto, ViewSize: c, Seed: 5})
	for i := 0; i < n; i++ {
		w.Add(nil)
	}
	rng := rand.New(rand.NewPCG(6, 6))
	for id, view := range graph.RandomOutViews(n, c, rng) {
		descs := make([]core.Descriptor[sim.NodeID], len(view))
		for i, p := range view {
			descs[i] = core.Descriptor[sim.NodeID]{Addr: p, Hop: 0}
		}
		w.Node(sim.NodeID(id)).Bootstrap(descs)
	}
	w.Run(warmup)
	return w
}

func TestModeString(t *testing.T) {
	if InfectForever.String() != "infect-forever" || InfectAndDie.String() != "infect-and-die" {
		t.Error("mode names wrong")
	}
	if !strings.Contains(Mode(9).String(), "9") {
		t.Error("unknown mode not diagnostic")
	}
}

func TestConfigValidation(t *testing.T) {
	src := uniform(10, 1)
	bad := []Config{
		{Fanout: 0, Mode: InfectForever, MaxRounds: 5},
		{Fanout: 1, Mode: 0, MaxRounds: 5},
		{Fanout: 1, Mode: InfectAndDie, TTL: 0, MaxRounds: 5},
		{Fanout: 1, Mode: InfectForever, MaxRounds: 0},
		{Fanout: 1, Mode: InfectForever, MaxRounds: 5, Source: 10},
		{Fanout: 1, Mode: InfectForever, MaxRounds: 5, Source: -1},
	}
	for i, cfg := range bad {
		if _, err := Run(cfg, src); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestUniformDisseminationSaturates(t *testing.T) {
	const n = 500
	src := uniform(n, 2)
	res, err := Run(Config{Fanout: 2, Mode: InfectForever, MaxRounds: 40, Seed: 3}, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.RoundsToAll < 0 {
		t.Fatalf("epidemic never saturated: %+v", res.InfectedPerRound)
	}
	// Push epidemics cover N nodes in O(log N) rounds; allow slack.
	if res.RoundsToAll > 30 {
		t.Errorf("saturation took %d rounds, want O(log n)", res.RoundsToAll)
	}
	if res.Coverage() != 1 || res.NeverReached != 0 {
		t.Errorf("coverage %v, never reached %d", res.Coverage(), res.NeverReached)
	}
	// Monotone infection counts.
	for i := 1; i < len(res.InfectedPerRound); i++ {
		if res.InfectedPerRound[i] < res.InfectedPerRound[i-1] {
			t.Fatal("infection count decreased")
		}
	}
}

func TestInfectAndDieCanDieOut(t *testing.T) {
	// TTL 1, fanout 1: the rumor dies out quickly with high probability
	// in a large group; the engine must terminate and report partial
	// coverage rather than loop.
	src := uniform(2000, 4)
	res, err := Run(Config{Fanout: 1, Mode: InfectAndDie, TTL: 1, MaxRounds: 100, Seed: 5}, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() >= 1 {
		t.Skip("rumor survived against the odds; nothing to assert")
	}
	if res.NeverReached == 0 {
		t.Error("incomplete run reported zero never-reached")
	}
	if res.RoundsToAll != -1 {
		t.Error("incomplete run reported a saturation round")
	}
}

func TestInfectAndDieSaturatesWithBudget(t *testing.T) {
	src := uniform(300, 6)
	res, err := Run(Config{Fanout: 3, Mode: InfectAndDie, TTL: 5, MaxRounds: 60, Seed: 7}, src)
	if err != nil {
		t.Fatal(err)
	}
	if res.Coverage() < 0.99 {
		t.Errorf("coverage = %v want ~1 with fanout 3, TTL 5", res.Coverage())
	}
}

func TestOverlayDisseminationMatchesUniformShape(t *testing.T) {
	const n, c = 400, 15
	w := newOverlay(t, n, c, core.Newscast, 30)
	overlay, err := Run(Config{Fanout: 2, Mode: InfectForever, MaxRounds: 60, Seed: 8},
		overlaySrc(w))
	if err != nil {
		t.Fatal(err)
	}
	uniform, err := Run(Config{Fanout: 2, Mode: InfectForever, MaxRounds: 60, Seed: 8},
		uniform(n, 9))
	if err != nil {
		t.Fatal(err)
	}
	if overlay.Coverage() < 1 {
		t.Errorf("overlay dissemination incomplete: %v", overlay.Coverage())
	}
	// The overlay costs at most a small constant factor over uniform —
	// the paper's point is that the overlays still support dissemination
	// even though they are not uniformly random.
	if uniform.RoundsToAll > 0 && overlay.RoundsToAll > 3*uniform.RoundsToAll {
		t.Errorf("overlay needed %d rounds, uniform %d", overlay.RoundsToAll, uniform.RoundsToAll)
	}
}

func TestOverlaySourceBasics(t *testing.T) {
	w := newOverlay(t, 50, 8, core.Newscast, 10)
	src := overlaySrc(w)
	if src.Size() != 50 {
		t.Errorf("size = %d", src.Size())
	}
	draw := src.For(0)
	for i := 0; i < 3; i++ {
		p, ok := draw.Draw()
		if !ok {
			t.Fatalf("draw %d failed on a warmed overlay", i)
		}
		if !w.Node(0).View().Contains(p) {
			t.Errorf("peer %d not in node 0's view", p)
		}
	}
	before := w.Cycle()
	src.Step()
	if w.Cycle() != before+1 {
		t.Error("Step did not advance the overlay")
	}
}

func TestUniformSourceNeverReturnsSelf(t *testing.T) {
	src := uniform(3, 11)
	draw := src.For(1)
	for i := 0; i < 600; i++ {
		p, ok := draw.Draw()
		if !ok {
			t.Fatal("draw failed with three nodes")
		}
		if p == 1 {
			t.Fatal("uniform source returned the asking node")
		}
	}
}

func TestLogarithmicScaling(t *testing.T) {
	// Rounds-to-coverage must grow roughly logarithmically: quadrupling
	// the population should add only a few rounds.
	round := func(n int) int {
		res, err := Run(Config{Fanout: 2, Mode: InfectForever, MaxRounds: 80, Seed: 13},
			uniform(n, uint64(n)))
		if err != nil {
			t.Fatal(err)
		}
		if res.RoundsToAll < 0 {
			t.Fatalf("no saturation at n=%d", n)
		}
		return res.RoundsToAll
	}
	small, large := round(250), round(1000)
	if growth := large - small; growth > int(math.Ceil(4*math.Log2(4))) {
		t.Errorf("rounds grew by %d from n=250 to n=1000; expected logarithmic growth", growth)
	}
}
