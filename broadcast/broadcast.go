// Package broadcast implements gossip-based epidemic information
// dissemination on top of a peer sampling service — the canonical
// application class that motivates the paper (its reference [6, 9]
// lineage: anti-entropy and rumor mongering).
//
// The workload is an address-generic app.Engine: in every round each
// infected node draws `fanout` peers from its peer source and pushes the
// rumor to them through its endpoint. The same engine runs against the
// cycle simulator (Run, with app.Uniform or app.Overlay as the source),
// against a live runtime node (app.Runner over the transport's
// app-payload frames), and inside the daemon's workload plugin — so the
// effect of non-uniform sampling on dissemination can be measured both
// in simulation and across real processes.
package broadcast

import (
	"fmt"
	"sync"

	"peersampling/internal/app"
	"peersampling/internal/sim"
)

// Topic is the app-payload stream the broadcast engine listens on.
const Topic = "broadcast"

// UniformSalt is the RNG stream of the uniform peer source historically
// used by this workload; pass it to app.NewUniform to reproduce the
// package's fixed-seed results.
const UniformSalt = 0xB07

// Mode selects the epidemic variant.
type Mode uint8

const (
	// InfectForever: infected nodes gossip in every subsequent round
	// (proactive anti-entropy style).
	InfectForever Mode = iota + 1
	// InfectAndDie: infected nodes gossip for TTL rounds after infection,
	// then stop (rumor mongering style).
	InfectAndDie
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case InfectForever:
		return "infect-forever"
	case InfectAndDie:
		return "infect-and-die"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// ParseMode maps a mode name (as printed by String) back to the Mode;
// config files select the epidemic variant by name.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "infect-forever":
		return InfectForever, nil
	case "infect-and-die":
		return InfectAndDie, nil
	default:
		return 0, fmt.Errorf("broadcast: unknown mode %q", s)
	}
}

// Engine is one node's view of an epidemic dissemination: it holds the
// infection state and pushes the rumor to fanout peers per round. It is
// safe for concurrent use — on a live node Tick and OnMessage run on
// different goroutines.
type Engine[A comparable] struct {
	fanout int
	mode   Mode
	ttl    int

	mu       sync.Mutex
	infected bool
	budget   int // remaining gossip rounds (InfectAndDie)
	rumor    []byte
	rounds   uint64
	sent     uint64
	received uint64
	failures uint64
}

var _ app.Engine[sim.NodeID] = (*Engine[sim.NodeID])(nil)

// NewEngine returns an uninfected engine. ttl is ignored for
// InfectForever.
func NewEngine[A comparable](fanout int, mode Mode, ttl int) (*Engine[A], error) {
	if fanout <= 0 {
		return nil, fmt.Errorf("broadcast: fanout must be positive, got %d", fanout)
	}
	if mode != InfectForever && mode != InfectAndDie {
		return nil, fmt.Errorf("broadcast: invalid mode %d", mode)
	}
	if mode == InfectAndDie && ttl <= 0 {
		return nil, fmt.Errorf("broadcast: infect-and-die needs TTL > 0, got %d", ttl)
	}
	return &Engine[A]{fanout: fanout, mode: mode, ttl: ttl}, nil
}

// Topic implements app.Engine.
func (e *Engine[A]) Topic() string { return Topic }

// Infect seeds the rumor locally (the dissemination source calls this
// once). It reports false when the engine was already infected.
func (e *Engine[A]) Infect(rumor []byte) bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.infected {
		return false
	}
	e.infected = true
	e.budget = e.ttl
	e.rumor = append([]byte(nil), rumor...)
	return true
}

// Infected reports whether the engine holds the rumor.
func (e *Engine[A]) Infected() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.infected
}

// Gossiping reports whether the engine will push the rumor on its next
// round: infected and, for InfectAndDie, still holding gossip budget.
func (e *Engine[A]) Gossiping() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.infected && (e.mode == InfectForever || e.budget > 0)
}

// Tick implements app.Engine: push the rumor to fanout drawn peers, then
// spend one round of gossip budget.
func (e *Engine[A]) Tick(src app.PeerSource[A], ep app.Endpoint[A]) {
	e.mu.Lock()
	e.rounds++
	gossip := e.infected && (e.mode == InfectForever || e.budget > 0)
	rumor := e.rumor // immutable after Infect; safe to share
	e.mu.Unlock()
	if !gossip {
		return
	}
	self := ep.Self()
	for i := 0; i < e.fanout; i++ {
		peer, ok := src.Draw()
		if !ok {
			break // empty view: nothing to gossip to this round
		}
		if peer == self {
			continue
		}
		_, _, err := ep.Deliver(peer, rumor, false)
		e.mu.Lock()
		if err != nil {
			e.failures++
		} else {
			e.sent++
		}
		e.mu.Unlock()
	}
	if e.mode == InfectAndDie {
		e.mu.Lock()
		if e.budget > 0 {
			e.budget--
		}
		e.mu.Unlock()
	}
}

// OnMessage implements app.Engine: absorb the rumor, becoming infected
// on first contact. Rumors are push-only; there is never a reply.
func (e *Engine[A]) OnMessage(from A, payload []byte) ([]byte, bool) {
	e.mu.Lock()
	defer e.mu.Unlock()
	e.received++
	if !e.infected {
		e.infected = true
		e.budget = e.ttl
		e.rumor = append([]byte(nil), payload...)
	}
	return nil, false
}

// Snapshot implements app.Engine.
func (e *Engine[A]) Snapshot() app.Snapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	s := app.Snapshot{
		Workload: Topic,
		Rounds:   e.rounds,
		Sent:     e.sent,
		Received: e.received,
		Failures: e.failures,
	}
	if e.infected {
		s.Infected = 1
	}
	return s
}

// Config parameterises a simulated dissemination run.
type Config struct {
	// Fanout is the number of peers an infected node gossips to per
	// round.
	Fanout int
	// Mode selects the epidemic variant.
	Mode Mode
	// TTL is the number of rounds a node gossips after infection
	// (InfectAndDie only).
	TTL int
	// MaxRounds bounds the run; the epidemic usually saturates in
	// O(log N) rounds.
	MaxRounds int
	// Source is the node where the rumor starts.
	Source sim.NodeID
	// Seed drives all randomness of the run.
	Seed uint64
}

func (c Config) validate(n int) error {
	if c.Fanout <= 0 {
		return fmt.Errorf("broadcast: fanout must be positive, got %d", c.Fanout)
	}
	if c.Mode != InfectForever && c.Mode != InfectAndDie {
		return fmt.Errorf("broadcast: invalid mode %d", c.Mode)
	}
	if c.Mode == InfectAndDie && c.TTL <= 0 {
		return fmt.Errorf("broadcast: infect-and-die needs TTL > 0, got %d", c.TTL)
	}
	if c.MaxRounds <= 0 {
		return fmt.Errorf("broadcast: max rounds must be positive, got %d", c.MaxRounds)
	}
	if int(c.Source) >= n || c.Source < 0 {
		return fmt.Errorf("broadcast: source %d out of range for %d nodes", c.Source, n)
	}
	return nil
}

// Result reports one dissemination run.
type Result struct {
	// InfectedPerRound[r] is the number of infected nodes after round r
	// (index 0 is the initial state with one infected node).
	InfectedPerRound []int
	// RoundsToAll is the first round at which every node was infected,
	// or -1 if coverage was incomplete at MaxRounds.
	RoundsToAll int
	// NeverReached is the number of nodes still uninfected at the end.
	NeverReached int
}

// Coverage returns the final fraction of infected nodes.
func (r Result) Coverage() float64 {
	if len(r.InfectedPerRound) == 0 {
		return 0
	}
	last := r.InfectedPerRound[len(r.InfectedPerRound)-1]
	return float64(last) / float64(last+r.NeverReached)
}

// simEndpoint is the simulation backend of app.Endpoint: delivery is a
// synchronous call into the destination engine, and the endpoint records
// the infections each delivery causes so the driver can maintain the
// active set exactly as the historical sequential implementation did.
type simEndpoint struct {
	engines []*Engine[sim.NodeID]
	self    sim.NodeID
	newly   []sim.NodeID
}

func (ep *simEndpoint) Self() sim.NodeID { return ep.self }

func (ep *simEndpoint) Deliver(peer sim.NodeID, payload []byte, wantReply bool) ([]byte, bool, error) {
	if peer < 0 || int(peer) >= len(ep.engines) {
		return nil, false, nil
	}
	dst := ep.engines[peer]
	was := dst.Infected()
	reply, has := dst.OnMessage(ep.self, payload)
	if !was && dst.Infected() {
		ep.newly = append(ep.newly, peer)
	}
	return reply, has, nil
}

// Run executes one epidemic dissemination over the given peer source on
// the simulator: one engine per node, synchronous delivery, the active
// set advanced in the exact order of the historical implementation (so
// fixed-seed results are unchanged).
func Run(cfg Config, src app.Source[sim.NodeID]) (Result, error) {
	n := src.Size()
	if err := cfg.validate(n); err != nil {
		return Result{}, err
	}
	engines := make([]*Engine[sim.NodeID], n)
	for i := range engines {
		e, err := NewEngine[sim.NodeID](cfg.Fanout, cfg.Mode, cfg.TTL)
		if err != nil {
			return Result{}, err
		}
		engines[i] = e
	}
	engines[cfg.Source].Infect([]byte("rumor"))
	count := 1
	res := Result{InfectedPerRound: []int{count}, RoundsToAll: -1}

	ep := &simEndpoint{engines: engines}
	active := []sim.NodeID{cfg.Source}
	for round := 1; round <= cfg.MaxRounds && count < n; round++ {
		next := active[:0:len(active)] // fresh slice, reuse capacity
		ep.newly = ep.newly[:0]
		for _, id := range active {
			ep.self = id
			engines[id].Tick(src.For(id), ep)
			if engines[id].Gossiping() {
				next = append(next, id)
			}
		}
		count += len(ep.newly)
		active = append(next, ep.newly...)
		res.InfectedPerRound = append(res.InfectedPerRound, count)
		if count == n && res.RoundsToAll < 0 {
			res.RoundsToAll = round
		}
		src.Step()
	}
	res.NeverReached = n - count
	return res, nil
}
