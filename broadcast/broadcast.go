// Package broadcast implements gossip-based epidemic information
// dissemination on top of a peer sampling service — the canonical
// application class that motivates the paper (its reference [6, 9]
// lineage: anti-entropy and rumor mongering).
//
// The engine is round-based: in every round each infected node picks
// `fanout` peers from its peer source and infects them. Two peer sources
// are provided: the ideal uniform sampler the literature assumes, and a
// gossip overlay maintained by the peer sampling protocols — so the effect
// of non-uniform sampling on dissemination can be measured directly.
package broadcast

import (
	"fmt"
	"math/rand/v2"

	"peersampling/internal/sim"
)

// Mode selects the epidemic variant.
type Mode uint8

const (
	// InfectForever: infected nodes gossip in every subsequent round
	// (proactive anti-entropy style).
	InfectForever Mode = iota + 1
	// InfectAndDie: infected nodes gossip for TTL rounds after infection,
	// then stop (rumor mongering style).
	InfectAndDie
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case InfectForever:
		return "infect-forever"
	case InfectAndDie:
		return "infect-and-die"
	default:
		return fmt.Sprintf("Mode(%d)", uint8(m))
	}
}

// PeerSource provides gossip targets for a node. Implementations must
// tolerate being asked for more peers than they can supply.
type PeerSource interface {
	// PeersOf returns up to fanout gossip targets for node id.
	PeersOf(id int32, fanout int) []int32
	// Size returns the number of nodes in the population.
	Size() int
	// Step advances the source by one round (e.g. runs a gossip cycle of
	// the underlying overlay); the uniform source does nothing.
	Step()
}

// Config parameterises a dissemination run.
type Config struct {
	// Fanout is the number of peers an infected node gossips to per
	// round.
	Fanout int
	// Mode selects the epidemic variant.
	Mode Mode
	// TTL is the number of rounds a node gossips after infection
	// (InfectAndDie only).
	TTL int
	// MaxRounds bounds the run; the epidemic usually saturates in
	// O(log N) rounds.
	MaxRounds int
	// Source is the node where the rumor starts.
	Source int32
	// Seed drives all randomness of the run.
	Seed uint64
}

func (c Config) validate(n int) error {
	if c.Fanout <= 0 {
		return fmt.Errorf("broadcast: fanout must be positive, got %d", c.Fanout)
	}
	if c.Mode != InfectForever && c.Mode != InfectAndDie {
		return fmt.Errorf("broadcast: invalid mode %d", c.Mode)
	}
	if c.Mode == InfectAndDie && c.TTL <= 0 {
		return fmt.Errorf("broadcast: infect-and-die needs TTL > 0, got %d", c.TTL)
	}
	if c.MaxRounds <= 0 {
		return fmt.Errorf("broadcast: max rounds must be positive, got %d", c.MaxRounds)
	}
	if int(c.Source) >= n || c.Source < 0 {
		return fmt.Errorf("broadcast: source %d out of range for %d nodes", c.Source, n)
	}
	return nil
}

// Result reports one dissemination run.
type Result struct {
	// InfectedPerRound[r] is the number of infected nodes after round r
	// (index 0 is the initial state with one infected node).
	InfectedPerRound []int
	// RoundsToAll is the first round at which every node was infected,
	// or -1 if coverage was incomplete at MaxRounds.
	RoundsToAll int
	// NeverReached is the number of nodes still uninfected at the end.
	NeverReached int
}

// Coverage returns the final fraction of infected nodes.
func (r Result) Coverage() float64 {
	if len(r.InfectedPerRound) == 0 {
		return 0
	}
	last := r.InfectedPerRound[len(r.InfectedPerRound)-1]
	return float64(last) / float64(last+r.NeverReached)
}

// Run executes one epidemic dissemination over the given peer source.
func Run(cfg Config, src PeerSource) (Result, error) {
	n := src.Size()
	if err := cfg.validate(n); err != nil {
		return Result{}, err
	}
	infected := make([]bool, n)
	infected[cfg.Source] = true
	// remaining gossip rounds per node (InfectAndDie); -1 = forever.
	budget := make([]int, n)
	if cfg.Mode == InfectAndDie {
		budget[cfg.Source] = cfg.TTL
	} else {
		for i := range budget {
			budget[i] = -1
		}
	}
	count := 1
	res := Result{InfectedPerRound: []int{count}, RoundsToAll: -1}

	active := []int32{cfg.Source}
	for round := 1; round <= cfg.MaxRounds && count < n; round++ {
		next := active[:0:len(active)] // fresh slice, reuse capacity
		newlyInfected := []int32{}
		for _, id := range active {
			targets := src.PeersOf(id, cfg.Fanout)
			for _, t := range targets {
				if int(t) >= n || t < 0 || infected[t] {
					continue
				}
				infected[t] = true
				count++
				if cfg.Mode == InfectAndDie {
					budget[t] = cfg.TTL
				}
				newlyInfected = append(newlyInfected, t)
			}
			if cfg.Mode == InfectAndDie {
				budget[id]--
				if budget[id] > 0 {
					next = append(next, id)
				}
			} else {
				next = append(next, id)
			}
		}
		active = append(next, newlyInfected...)
		res.InfectedPerRound = append(res.InfectedPerRound, count)
		if count == n && res.RoundsToAll < 0 {
			res.RoundsToAll = round
		}
		src.Step()
	}
	res.NeverReached = n - count
	return res, nil
}

// UniformSource is the idealised peer source the gossip literature
// assumes: every call returns independent uniform random peers.
type UniformSource struct {
	n   int
	rng *rand.Rand
}

var _ PeerSource = (*UniformSource)(nil)

// NewUniformSource returns a uniform source over n nodes.
func NewUniformSource(n int, seed uint64) *UniformSource {
	return &UniformSource{n: n, rng: rand.New(rand.NewPCG(seed, 0xB07))}
}

// PeersOf implements PeerSource.
func (u *UniformSource) PeersOf(id int32, fanout int) []int32 {
	out := make([]int32, 0, fanout)
	for len(out) < fanout {
		p := int32(u.rng.IntN(u.n))
		if p != id {
			out = append(out, p)
		}
	}
	return out
}

// Size implements PeerSource.
func (u *UniformSource) Size() int { return u.n }

// Step implements PeerSource (no-op).
func (u *UniformSource) Step() {}

// OverlaySource samples gossip targets from the live views of a peer
// sampling simulation; every dissemination round advances the overlay by
// one gossip cycle, so the application and the sampling layer evolve
// together exactly as they would in a deployment.
type OverlaySource struct {
	net *sim.Network
}

var _ PeerSource = (*OverlaySource)(nil)

// NewOverlaySource adapts a simulation (construct it with
// peersampling.NewRandomOverlay or the scenario builders).
func NewOverlaySource(net *sim.Network) *OverlaySource {
	return &OverlaySource{net: net}
}

// PeersOf implements PeerSource: repeated getPeer() calls on the node's
// current view.
func (o *OverlaySource) PeersOf(id int32, fanout int) []int32 {
	out := make([]int32, 0, fanout)
	for i := 0; i < fanout; i++ {
		p, err := o.net.SamplePeer(id)
		if err != nil {
			break // empty view: nothing to gossip to this round
		}
		out = append(out, p)
	}
	return out
}

// Size implements PeerSource.
func (o *OverlaySource) Size() int { return o.net.Size() }

// Step implements PeerSource: one gossip cycle of the overlay.
func (o *OverlaySource) Step() { o.net.RunCycle() }
