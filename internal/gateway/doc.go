// Package gateway serves peer samples to light clients over HTTP — the
// bridge between the gossip overlay's getPeer() API and applications
// that want random peers without running the protocol themselves.
//
// GET /v1/sample?n=K returns K distinct live peer addresses as JSON,
// drawn from a cached batch the gateway refreshes off its node's GetPeer
// on a fixed interval. Serving from a cache keeps the request path off
// the node's lock and makes the gateway's cost to the overlay constant
// in request load. Each client IP is throttled by a token bucket
// (Config.RateRPS, Config.Burst); requests past the limit get 429 with a
// Retry-After, and requests finding an empty cache (a node that has not
// bootstrapped yet) get 503. GET /healthz reports the gateway's own
// state plus whatever status callback the daemon installs.
//
// Gateway counters flow into the metrics pipeline as a GatewaySnapshot
// riding a NodeSnapshot (see Gateway.Snapshot and
// metrics.Collector.RegisterFunc), so Prometheus scrapes and long-form
// dumps see gateway traffic next to protocol traffic.
package gateway
