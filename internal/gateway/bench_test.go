package gateway

import (
	"encoding/json"
	"math/rand/v2"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync"
	"testing"
	"time"
)

// discardRW is a minimal ResponseWriter for driving the handler directly:
// benchmarking through a real net/http server would measure the TCP stack,
// not the serve path. The header map is pre-populated the way a live
// server reuses its header storage across a keep-alive connection.
type discardRW struct {
	h http.Header
}

func (w *discardRW) Header() http.Header         { return w.h }
func (w *discardRW) Write(p []byte) (int, error) { return len(p), nil }
func (w *discardRW) WriteHeader(int)             {}

func benchGateway(b *testing.B) *Gateway {
	b.Helper()
	g, err := New("127.0.0.1:0", &fakeSampler{peers: somePeers(64)}, Config{
		Refresh: time.Hour, // effectively never: the construction refresh warms the cache
		RateRPS: 1e9,
		Burst:   1 << 30,
	})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = g.Close() })
	return g
}

// BenchmarkGatewayServe measures the warm-cache /v1/sample path for a
// pre-encoded n.
func BenchmarkGatewayServe(b *testing.B) {
	g := benchGateway(b)
	r := httptest.NewRequest(http.MethodGet, "/v1/sample?n=4", nil)
	r.RemoteAddr = "10.1.2.3:44321"
	w := &discardRW{h: http.Header{"Content-Type": nil}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.handleSample(w, r)
	}
}

// BenchmarkGatewayServeAssembled measures the large-n path: past the
// pre-encoded sizes, the body is assembled per request from pre-encoded
// fragments into a pooled buffer.
func BenchmarkGatewayServeAssembled(b *testing.B) {
	g := benchGateway(b)
	r := httptest.NewRequest(http.MethodGet, "/v1/sample?n=32", nil)
	r.RemoteAddr = "10.1.2.3:44321"
	w := &discardRW{h: http.Header{"Content-Type": nil}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.handleSample(w, r)
	}
}

// baselineGateway freezes the pre-rewrite serve path — mutex-guarded
// cache, url.Values query parsing, per-request copy + shuffle, JSON
// encode while writing — over the same data and limiter, so the
// committed benchmark JSON records the rewrite's improvement factor
// against a reproducible reference rather than a number from a deleted
// revision.
type baselineGateway struct {
	mu          sync.Mutex
	batch       []string
	refreshedAt time.Time
	target      int

	limiter *rateLimiter
	now     func() time.Time
}

func (g *baselineGateway) handleSample(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	g.mu.Lock()
	batch, refreshedAt, target := g.batch, g.refreshedAt, g.target
	g.mu.Unlock()

	n := 1
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 || v > target {
			http.Error(w, "bad n", http.StatusBadRequest)
			return
		}
		n = v
	}
	if ok, _ := g.limiter.allow("10.1.2.3"); !ok {
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
		return
	}
	if len(batch) == 0 {
		http.Error(w, "no peers available", http.StatusServiceUnavailable)
		return
	}
	if n > len(batch) {
		n = len(batch)
	}
	peers := make([]string, len(batch))
	copy(peers, batch)
	for i := 0; i < n; i++ {
		j := i + rand.IntN(len(peers)-i)
		peers[i], peers[j] = peers[j], peers[i]
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(struct {
		Peers      []string `json:"peers"`
		Count      int      `json:"count"`
		CacheAgeMS int64    `json:"cache_age_ms"`
	}{peers[:n], n, g.now().Sub(refreshedAt).Milliseconds()})
}

// BenchmarkGatewayServeBaseline is the pre-rewrite reference for
// BenchmarkGatewayServe: same peers, same request, same limiter.
func BenchmarkGatewayServeBaseline(b *testing.B) {
	g := &baselineGateway{
		batch:       somePeers(64),
		refreshedAt: time.Now(),
		target:      64,
		limiter:     newRateLimiter(1e9, 1<<30, time.Now),
		now:         time.Now,
	}
	r := httptest.NewRequest(http.MethodGet, "/v1/sample?n=4", nil)
	r.RemoteAddr = "10.1.2.3:44321"
	w := &discardRW{h: http.Header{"Content-Type": nil}}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.handleSample(w, r)
	}
}
