package gateway

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"peersampling/internal/core"
	"peersampling/internal/metrics"
)

// fakeSampler deals peers round-robin from a fixed set, like GetPeer
// over a stable view.
type fakeSampler struct {
	mu    sync.Mutex
	peers []string
	i     int
}

func (f *fakeSampler) GetPeer() (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(f.peers) == 0 {
		return "", core.ErrEmptyView
	}
	p := f.peers[f.i%len(f.peers)]
	f.i++
	return p, nil
}

func (f *fakeSampler) setPeers(peers []string) {
	f.mu.Lock()
	f.peers = peers
	f.mu.Unlock()
}

func somePeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("10.0.0.%d:7946", i+1)
	}
	return peers
}

func getSample(t *testing.T, addr string, query string) (*http.Response, sampleResponse) {
	t.Helper()
	resp, err := http.Get("http://" + addr + "/v1/sample" + query)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body sampleResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatal(err)
		}
	}
	return resp, body
}

func TestSampleReturnsDistinctPeers(t *testing.T) {
	g, err := New("127.0.0.1:0", &fakeSampler{peers: somePeers(8)}, Config{
		Refresh: time.Hour, // the construction-time refresh fills the cache
		RateRPS: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	resp, body := getSample(t, g.Addr(), "?n=5")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if body.Count != 5 || len(body.Peers) != 5 {
		t.Fatalf("count = %d, peers = %v", body.Count, body.Peers)
	}
	seen := map[string]bool{}
	for _, p := range body.Peers {
		if seen[p] {
			t.Fatalf("duplicate peer %s in %v", p, body.Peers)
		}
		seen[p] = true
		if !strings.HasPrefix(p, "10.0.0.") {
			t.Fatalf("unexpected peer %q", p)
		}
	}
	if body.RefreshedUnixMS <= 0 {
		t.Fatalf("refreshed_unix_ms = %d", body.RefreshedUnixMS)
	}

	// Default n is 1.
	if _, body := getSample(t, g.Addr(), ""); body.Count != 1 {
		t.Fatalf("default count = %d", body.Count)
	}
}

func TestSampleRejectsBadN(t *testing.T) {
	g, err := New("127.0.0.1:0", &fakeSampler{peers: somePeers(4)}, Config{
		Refresh: time.Hour, BatchSize: 16, RateRPS: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for _, q := range []string{"?n=0", "?n=-1", "?n=17", "?n=lots"} {
		if resp, _ := getSample(t, g.Addr(), q); resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status = %d, want 400", q, resp.StatusCode)
		}
	}
	// n beyond the cache (but within the batch limit) serves what exists.
	if _, body := getSample(t, g.Addr(), "?n=16"); body.Count != 4 {
		t.Errorf("count = %d, want the whole 4-peer cache", body.Count)
	}
}

func TestSampleEmptyViewIs503(t *testing.T) {
	g, err := New("127.0.0.1:0", &fakeSampler{}, Config{Refresh: time.Hour, RateRPS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	resp, _ := getSample(t, g.Addr(), "")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if got := g.Snapshot(0).Gateway.Unavailable; got != 1 {
		t.Fatalf("unavailable = %d", got)
	}
}

func TestRateLimitBurstIs429(t *testing.T) {
	g, err := New("127.0.0.1:0", &fakeSampler{peers: somePeers(4)}, Config{
		Refresh: time.Hour, RateRPS: 0.001, Burst: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for i := 0; i < 3; i++ {
		if resp, _ := getSample(t, g.Addr(), ""); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d within burst: status = %d", i, resp.StatusCode)
		}
	}
	resp, _ := getSample(t, g.Addr(), "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	snap := g.Snapshot(0).Gateway
	if snap.RateLimited != 1 || snap.Requests != 3 {
		t.Fatalf("rate_limited = %d, requests = %d", snap.RateLimited, snap.Requests)
	}

	// Raising the rate live re-admits the same client once its bucket
	// refills at the new speed (well under a second at 1000/s).
	if err := g.SetTuning(Config{Refresh: time.Hour, RateRPS: 1000, Burst: 100}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, _ := getSample(t, g.Addr(), "")
		if resp.StatusCode == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("after SetTuning: status = %d", resp.StatusCode)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func TestRefreshTracksView(t *testing.T) {
	s := &fakeSampler{peers: somePeers(3)}
	g, err := New("127.0.0.1:0", s, Config{Refresh: 10 * time.Millisecond, RateRPS: 10000, Burst: 10000})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	s.setPeers([]string{"10.9.9.9:7946"})
	deadline := time.Now().Add(5 * time.Second)
	for {
		_, body := getSample(t, g.Addr(), "")
		if len(body.Peers) == 1 && body.Peers[0] == "10.9.9.9:7946" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("cache never refreshed to the new view: %v", body.Peers)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if g.Snapshot(0).Gateway.Refreshes < 2 {
		t.Error("refresh counter did not advance")
	}
}

func TestHealthzReportsDaemonStatus(t *testing.T) {
	g, err := New("127.0.0.1:0", &fakeSampler{peers: somePeers(2)}, Config{Refresh: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	g.SetHealth(func() any { return map[string]string{"node": "running"} })

	resp, err := http.Get("http://" + g.Addr() + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var report struct {
		Status    string            `json:"status"`
		CacheSize int               `json:"cache_size"`
		Daemon    map[string]string `json:"daemon"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&report); err != nil {
		t.Fatal(err)
	}
	if report.Status != "ok" || report.CacheSize != 2 || report.Daemon["node"] != "running" {
		t.Fatalf("report = %+v", report)
	}
}

// TestSnapshotFlowsThroughPipeline registers a gateway on a collector
// and checks its counters surface in the Prometheus exposition and the
// long-form rows.
func TestSnapshotFlowsThroughPipeline(t *testing.T) {
	g, err := New("127.0.0.1:0", &fakeSampler{peers: somePeers(4)}, Config{Refresh: time.Hour, RateRPS: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	getSample(t, g.Addr(), "?n=2")

	c := metrics.New()
	c.RegisterFunc("gateway", g.Snapshot)
	var b strings.Builder
	if err := c.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	exposition := b.String()
	for _, want := range []string{
		`peersampling_gateway_requests_total{node="gateway"`,
		`peersampling_gateway_peers_served_total{node="gateway"`,
		`peersampling_gateway_cache_size{node="gateway"`,
	} {
		if !strings.Contains(exposition, want) {
			t.Errorf("exposition missing %s", want)
		}
	}

	snaps := c.Snapshot()
	if len(snaps) != 1 || snaps[0].Gateway == nil {
		t.Fatalf("snapshots = %+v", snaps)
	}
	var foundServed bool
	for _, row := range snaps[0].Rows() {
		if row.Metric == "gateway_peers_served" && row.Value == 2 {
			foundServed = true
		}
	}
	if !foundServed {
		t.Errorf("rows missing gateway_peers_served=2: %+v", snaps[0].Rows())
	}
}

func TestLimiterPrunesRecoveredBuckets(t *testing.T) {
	now := time.Unix(0, 0)
	l := newRateLimiter(1, 2, func() time.Time { return now })
	// Pruning is per shard, so the test fills one shard to its threshold:
	// keys that hash to the same shard as the late-arriving trigger key.
	const trigger = "10.99.99.99"
	target := l.shard(trigger)
	var keys []string
	for i := 0; len(keys) < limiterPruneThreshold/limiterShards; i++ {
		k := fmt.Sprintf("10.0.%d.%d", i/256, i%256)
		if l.shard(k) == target {
			keys = append(keys, k)
		}
	}
	for _, k := range keys {
		l.allow(k)
	}
	if l.clients() != len(keys) {
		t.Fatalf("clients = %d, want %d", l.clients(), len(keys))
	}
	// All buckets recover after 2s (burst 2 at 1/s); the next new client
	// in the full shard triggers the sweep.
	now = now.Add(3 * time.Second)
	l.allow(trigger)
	if got := l.clients(); got != 1 {
		t.Fatalf("clients after prune = %d, want 1", got)
	}
}

func TestLimiterShardsIndependently(t *testing.T) {
	now := time.Unix(0, 0)
	l := newRateLimiter(1, 1, func() time.Time { return now })
	// Distinct clients land in their own buckets regardless of shard:
	// each gets its single burst token, then a 429.
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("10.1.%d.%d", i/256, i%256)
		if ok, _ := l.allow(key); !ok {
			t.Fatalf("first request for %s denied", key)
		}
		if ok, _ := l.allow(key); ok {
			t.Fatalf("second request for %s allowed past burst 1", key)
		}
	}
	if got := l.clients(); got != 64 {
		t.Fatalf("clients = %d, want 64", got)
	}
	// setRate reaches every shard: raising the burst re-admits everyone
	// after refill.
	l.setRate(1000, 10)
	now = now.Add(time.Second)
	for i := 0; i < 64; i++ {
		key := fmt.Sprintf("10.1.%d.%d", i/256, i%256)
		if ok, _ := l.allow(key); !ok {
			t.Fatalf("request for %s denied after setRate", key)
		}
	}
}
