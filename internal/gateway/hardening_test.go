package gateway

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// countingSampler wraps fakeSampler and counts GetPeer calls, so tests
// can assert that rejected requests never reach the sampler.
type countingSampler struct {
	fakeSampler
	calls atomic.Uint64
}

func (c *countingSampler) GetPeer() (string, error) {
	c.calls.Add(1)
	return c.fakeSampler.GetPeer()
}

// TestSampleQueryHardening drives the n parser through its rejection
// table: every malformed shape must 400 without panicking and without a
// single sampler call (the serve path never samples — only the refresh
// loop does, and it is parked on a one-hour interval here).
func TestSampleQueryHardening(t *testing.T) {
	s := &countingSampler{fakeSampler: fakeSampler{peers: somePeers(8)}}
	g, err := New("127.0.0.1:0", s, Config{Refresh: time.Hour, RateRPS: 1e6, Burst: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	afterBoot := s.calls.Load()

	cases := []struct {
		query string
		want  int
	}{
		{"", http.StatusOK},
		{"?n=1", http.StatusOK},
		{"?n=8", http.StatusOK},
		{"?n=4&x=y", http.StatusOK},
		{"?x=y", http.StatusOK}, // n absent defaults to 1
		{"?n=0", http.StatusBadRequest},
		{"?n=-1", http.StatusBadRequest},
		{"?n=-99999999999999999999", http.StatusBadRequest},
		{"?n=99999999999999999999", http.StatusBadRequest}, // overflows int
		{"?n=999999999", http.StatusBadRequest},            // huge but parseable: past the batch cap
		{"?n=lots", http.StatusBadRequest},
		{"?n=1e3", http.StatusBadRequest},
		{"?n=3.5", http.StatusBadRequest},
		{"?n=", http.StatusBadRequest},
		{"?n", http.StatusBadRequest},       // bare key, no value
		{"?n=1&n=2", http.StatusBadRequest}, // duplicates are ambiguous
		{"?n=2&n=2", http.StatusBadRequest}, // even when they agree
		{"?n=%31", http.StatusBadRequest},   // percent-encoded digit: read literally
		{"?a=b&n=two&c=d", http.StatusBadRequest},
	}
	for _, tc := range cases {
		resp, body := getSample(t, g.Addr(), tc.query)
		if resp.StatusCode != tc.want {
			t.Errorf("%q: status = %d, want %d", tc.query, resp.StatusCode, tc.want)
		}
		if resp.StatusCode == http.StatusOK && (body.Count < 1 || len(body.Peers) != body.Count) {
			t.Errorf("%q: count = %d, peers = %v", tc.query, body.Count, body.Peers)
		}
	}
	if got := s.calls.Load(); got != afterBoot {
		t.Errorf("sampler called %d times by the serve path, want 0", got-afterBoot)
	}
}

// FuzzSampleN throws arbitrary raw query strings at the full handler:
// whatever the bytes, the response must be 200/400 (never a panic, never
// a 5xx) and the sampler must never be consulted.
func FuzzSampleN(f *testing.F) {
	s := &countingSampler{fakeSampler: fakeSampler{peers: somePeers(8)}}
	g, err := New("127.0.0.1:0", s, Config{Refresh: time.Hour, RateRPS: 1e9, Burst: 1 << 30})
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { _ = g.Close() })
	afterBoot := s.calls.Load()

	for _, seed := range []string{"", "n=1", "n=8", "n=-1", "n=999999999999999999999",
		"n=1&n=2", "n", "n=", "n=%31", "a=b&n=3&c=d", "n=+5", "n=0x10", "&&&", "n=\xff\xfe"} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		r := &http.Request{
			Method:     http.MethodGet,
			URL:        &url.URL{Path: "/v1/sample", RawQuery: raw},
			RemoteAddr: "10.7.7.7:1234",
		}
		w := httptest.NewRecorder()
		g.handleSample(w, r)
		if w.Code != http.StatusOK && w.Code != http.StatusBadRequest {
			t.Fatalf("raw query %q: status = %d", raw, w.Code)
		}
		if got := s.calls.Load(); got != afterBoot {
			t.Fatalf("raw query %q reached the sampler (%d calls)", raw, got-afterBoot)
		}
	})
}

func getSampleXFF(t *testing.T, addr, xff string) *http.Response {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/v1/sample", nil)
	if err != nil {
		t.Fatal(err)
	}
	if xff != "" {
		req.Header.Set("X-Forwarded-For", xff)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	return resp
}

// TestTrustProxyHeaderSeparatesClients checks the opt-in client-emulation
// knob: with it on, distinct X-Forwarded-For addresses get distinct
// buckets; with it off (the default), the header is ignored and every
// loopback client shares the socket's bucket.
func TestTrustProxyHeaderSeparatesClients(t *testing.T) {
	g, err := New("127.0.0.1:0", &fakeSampler{peers: somePeers(4)}, Config{
		Refresh: time.Hour, RateRPS: 0.001, Burst: 2, TrustProxyHeader: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	for i := 0; i < 2; i++ {
		if resp := getSampleXFF(t, g.Addr(), "10.1.0.1"); resp.StatusCode != http.StatusOK {
			t.Fatalf("client A request %d: status = %d", i, resp.StatusCode)
		}
	}
	if resp := getSampleXFF(t, g.Addr(), "10.1.0.1"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("client A past burst: status = %d, want 429", resp.StatusCode)
	}
	// A different spoofed client still has its full burst.
	if resp := getSampleXFF(t, g.Addr(), "10.1.0.2"); resp.StatusCode != http.StatusOK {
		t.Fatalf("client B: status = %d, want 200", resp.StatusCode)
	}
	// Proxy lists name the client first; junk falls back to the socket
	// address (which still has its own untouched bucket here).
	if resp := getSampleXFF(t, g.Addr(), "10.1.0.3, 192.168.0.1"); resp.StatusCode != http.StatusOK {
		t.Fatalf("proxied list: status = %d, want 200", resp.StatusCode)
	}
	if resp := getSampleXFF(t, g.Addr(), "not-an-ip"); resp.StatusCode != http.StatusOK {
		t.Fatalf("malformed header fallback: status = %d, want 200", resp.StatusCode)
	}
}

func TestTrustProxyHeaderOffIgnoresHeader(t *testing.T) {
	g, err := New("127.0.0.1:0", &fakeSampler{peers: somePeers(4)}, Config{
		Refresh: time.Hour, RateRPS: 0.001, Burst: 2, // TrustProxyHeader off
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	for i := 0; i < 2; i++ {
		if resp := getSampleXFF(t, g.Addr(), fmt.Sprintf("10.2.0.%d", i)); resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status = %d", i, resp.StatusCode)
		}
	}
	// Distinct spoofed addresses, same socket: the shared bucket is spent.
	if resp := getSampleXFF(t, g.Addr(), "10.2.0.9"); resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("spoof with trust off: status = %d, want 429", resp.StatusCode)
	}
}

// TestConcurrentSetTuningAndServe is the regression test for the old
// serve path's encode-under-mutex (and any future shared-state botch):
// hammer SetTuning while clients are served; -race turns any unprotected
// access into a failure, and every accepted response must still be
// well-formed.
func TestConcurrentSetTuningAndServe(t *testing.T) {
	g, err := New("127.0.0.1:0", &fakeSampler{peers: somePeers(16)}, Config{
		Refresh: 2 * time.Millisecond, RateRPS: 1e6, Burst: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			cfg := Config{Refresh: 2 * time.Millisecond, RateRPS: 1e6, Burst: 1 << 20,
				BatchSize: 16 + i%3, TrustProxyHeader: i%2 == 0}
			if err := g.SetTuning(cfg); err != nil {
				t.Errorf("SetTuning: %v", err)
				return
			}
		}
	}()
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				resp, body := getSample(t, g.Addr(), "?n=3")
				if resp.StatusCode != http.StatusOK {
					t.Errorf("status = %d", resp.StatusCode)
					return
				}
				if body.Count != 3 || len(body.Peers) != 3 {
					t.Errorf("malformed response: %+v", body)
					return
				}
			}
		}()
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
}

// TestServeSampleAllocFree pins the warm-cache serve path's allocation
// budget: zero for pre-encoded n, and nothing beyond the reusable pooled
// scratch for assembled n. The handler is driven directly — the net/http
// server machinery allocates per request regardless, and this test is
// about the gateway's own path.
func TestServeSampleAllocFree(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	g, err := New("127.0.0.1:0", &fakeSampler{peers: somePeers(64)}, Config{
		Refresh: time.Hour, RateRPS: 1e9, Burst: 1 << 30,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()

	serve := func(query string) func() {
		r := httptest.NewRequest(http.MethodGet, "/v1/sample"+query, nil)
		r.RemoteAddr = "10.3.2.1:5555"
		w := &discardRW{h: http.Header{"Content-Type": nil}}
		return func() { g.handleSample(w, r) }
	}

	for _, tc := range []struct {
		name   string
		query  string
		budget float64
	}{
		{"pre-encoded n=1", "", 0},
		{"pre-encoded n=4", "?n=4", 0},
		{"pre-encoded n=8", "?n=8", 0},
		{"assembled n=32", "?n=32", 1}, // pool Get/Put may slip one under GC pressure
	} {
		f := serve(tc.query)
		f() // warm: bucket creation, pool priming
		if avg := testing.AllocsPerRun(200, f); avg > tc.budget {
			t.Errorf("%s: %.2f allocs/op, budget %.0f", tc.name, avg, tc.budget)
		}
	}
}
