package gateway

import (
	"fmt"
	"net/http"
	"strconv"
	"testing"
	"time"
)

// Retry-After must be the ceiling of the limiter's wait. The old
// int(wait/time.Second)+1 rendering over-reported by a full second
// whenever the wait was an exact multiple of a second — the 2s case
// below returned 3.
func TestRetryAfterSecondsCeiling(t *testing.T) {
	cases := []struct {
		wait time.Duration
		want int
	}{
		{0, 1},
		{time.Nanosecond, 1},
		{999 * time.Millisecond, 1},
		{time.Second, 1},
		{time.Second + time.Nanosecond, 2},
		{2 * time.Second, 2}, // regression: was reported as 3
		{2*time.Second + 500*time.Millisecond, 3},
		{maxRetryWait, 3600},
	}
	for _, c := range cases {
		if got := retryAfterSeconds(c.wait); got != c.want {
			t.Errorf("retryAfterSeconds(%v) = %d, want %d", c.wait, got, c.want)
		}
	}
}

// The header value is driven by rateLimiter.allow's actual duration: at
// rate 0.5/s with an empty bucket the wait is exactly 2s, which must
// render as Retry-After 2, not 3.
func TestRetryAfterMatchesLimiterWait(t *testing.T) {
	now := time.Unix(0, 0)
	l := newRateLimiter(0.5, 1, func() time.Time { return now })
	if ok, _ := l.allow("client"); !ok {
		t.Fatal("first request denied")
	}
	ok, wait := l.allow("client")
	if ok {
		t.Fatal("second request allowed past burst 1")
	}
	if wait != 2*time.Second {
		t.Fatalf("wait = %v, want exactly 2s", wait)
	}
	if got := retryAfterSeconds(wait); got != 2 {
		t.Fatalf("Retry-After = %d for a 2s wait, want 2", got)
	}
}

// A zero or vanishing refill rate must clamp the advertised wait instead
// of pushing Inf (or an overflowing quotient) through float64 into
// time.Duration — the old math produced a negative duration at rate 0,
// which the handler then rendered as a garbage negative header.
func TestRetryWaitClampsDegenerateRates(t *testing.T) {
	for _, rate := range []float64{0, -1, 1e-300} {
		now := time.Unix(0, 0)
		l := newRateLimiter(rate, 1, func() time.Time { return now })
		if ok, _ := l.allow("client"); !ok {
			t.Fatalf("rate %v: first request denied despite burst", rate)
		}
		ok, wait := l.allow("client")
		if ok {
			t.Fatalf("rate %v: second request allowed past burst 1", rate)
		}
		if wait != maxRetryWait {
			t.Fatalf("rate %v: wait = %v, want clamp to %v", rate, wait, maxRetryWait)
		}
		if got := retryAfterSeconds(wait); got < 1 {
			t.Fatalf("rate %v: Retry-After = %d, want >= 1", rate, got)
		}
	}
	// setRate reaches the same guard: dropping the rate to zero on a
	// running limiter keeps the advertised wait bounded.
	now := time.Unix(0, 0)
	l := newRateLimiter(100, 1, func() time.Time { return now })
	l.allow("client")
	l.setRate(0, 1)
	if ok, wait := l.allow("client"); ok || wait != maxRetryWait {
		t.Fatalf("after setRate(0,1): ok=%v wait=%v, want denied with clamp", ok, wait)
	}
}

// End-to-end over HTTP: the 429 carries a sane positive integral
// Retry-After bounded by the worst-case full-bucket wait.
func TestRateLimit429RetryAfterHeader(t *testing.T) {
	g, err := New("127.0.0.1:0", &fakeSampler{peers: somePeers(4)}, Config{
		Refresh: time.Hour, RateRPS: 0.2, Burst: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer g.Close()
	if resp, _ := getSample(t, g.Addr(), ""); resp.StatusCode != http.StatusOK {
		t.Fatalf("first request = %d", resp.StatusCode)
	}
	resp, _ := getSample(t, g.Addr(), "")
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("second request = %d, want 429", resp.StatusCode)
	}
	v, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil {
		t.Fatalf("Retry-After %q not an integer: %v", resp.Header.Get("Retry-After"), err)
	}
	// One token at 0.2/s takes at most 5s to refill; any elapsed real time
	// between the two requests only shortens the wait.
	if v < 1 || v > 5 {
		t.Fatalf("Retry-After = %d, want within [1,5]", v)
	}
}

// The limiter's memory must stay bounded when every request carries a
// fresh spoofed client key: once a shard holds its share of the prune
// threshold, inserting the next key sweeps out the recovered buckets.
func TestLimiterBoundedUnderSpoofedClientChurn(t *testing.T) {
	now := time.Unix(0, 0)
	// Burst 1 at 100/s: a bucket recovers 10ms after its request, so with
	// the clock stepping 20ms per request every earlier bucket is always
	// reclaimable by the time a prune fires.
	l := newRateLimiter(100, 1, func() time.Time { return now })
	maxSeen := 0
	for i := 0; i < 10*limiterPruneThreshold; i++ {
		now = now.Add(20 * time.Millisecond)
		key := fmt.Sprintf("10.%d.%d.%d", i/65536, i/256%256, i%256)
		if ok, _ := l.allow(key); !ok {
			t.Fatalf("fresh client %s denied", key)
		}
		if n := l.clients(); n > maxSeen {
			maxSeen = n
		}
	}
	if maxSeen > limiterPruneThreshold {
		t.Fatalf("tracked %d buckets under churn, want <= %d", maxSeen, limiterPruneThreshold)
	}
	if final := l.clients(); final > limiterPruneThreshold {
		t.Fatalf("final bucket count %d, want <= %d", final, limiterPruneThreshold)
	}
}
