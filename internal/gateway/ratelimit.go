package gateway

import (
	"math"
	"sync"
	"time"
)

// limiterPruneThreshold is the tracked-bucket count past which allow
// sweeps out fully-recovered buckets. A full bucket encodes no history —
// dropping it and re-creating it on the client's next request is
// indistinguishable from keeping it — so the sweep bounds memory under
// client churn without ever loosening a limit.
const limiterPruneThreshold = 1024

// rateLimiter throttles clients with one token bucket each: a request
// spends a token, tokens refill continuously at rate per second up to
// burst. Buckets are created on first sight and pruned once they recover
// fully, so the map tracks only clients with outstanding debt.
type rateLimiter struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*bucket
	now     func() time.Time
}

// bucket is one client's token balance as of last.
type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	return &rateLimiter{
		rate:    rate,
		burst:   float64(burst),
		buckets: make(map[string]*bucket),
		now:     now,
	}
}

// allow spends one token from key's bucket. When the bucket is empty it
// reports false and how long until a token will be available — the 429
// Retry-After value.
func (l *rateLimiter) allow(key string) (ok bool, retryAfter time.Duration) {
	l.mu.Lock()
	defer l.mu.Unlock()
	now := l.now()
	b := l.buckets[key]
	if b == nil {
		if len(l.buckets) >= limiterPruneThreshold {
			l.prune(now)
		}
		b = &bucket{tokens: l.burst, last: now}
		l.buckets[key] = b
	} else {
		b.tokens = math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate)
		b.last = now
	}
	if b.tokens < 1 {
		wait := time.Duration((1 - b.tokens) / l.rate * float64(time.Second))
		return false, wait
	}
	b.tokens--
	return true, 0
}

// prune drops buckets that have refilled completely. Caller holds mu.
func (l *rateLimiter) prune(now time.Time) {
	for key, b := range l.buckets {
		if math.Min(l.burst, b.tokens+now.Sub(b.last).Seconds()*l.rate) >= l.burst {
			delete(l.buckets, key)
		}
	}
}

// setRate replaces the refill rate and burst capacity; existing balances
// are clamped to the new burst so a lowered cap takes effect at once.
func (l *rateLimiter) setRate(rate float64, burst int) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.rate = rate
	l.burst = float64(burst)
	for _, b := range l.buckets {
		b.tokens = math.Min(b.tokens, l.burst)
	}
}

// clients reports how many buckets are currently tracked.
func (l *rateLimiter) clients() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.buckets)
}
