package gateway

import (
	"math"
	"sync"
	"time"
)

// limiterShards is how many independently locked bucket maps the limiter
// spreads clients over. Sixteen shards keep the expected queue at any one
// mutex negligible even with thousands of concurrent clients, at the cost
// of sixteen small maps.
const limiterShards = 16

// limiterPruneThreshold is the total tracked-bucket count past which a
// shard's allow sweeps out its fully-recovered buckets (each shard prunes
// at its 1/limiterShards share). A full bucket encodes no history —
// dropping it and re-creating it on the client's next request is
// indistinguishable from keeping it — so the sweep bounds memory under
// client churn without ever loosening a limit.
const limiterPruneThreshold = 1024

// rateLimiter throttles clients with one token bucket each: a request
// spends a token, tokens refill continuously at rate per second up to
// burst. Buckets are created on first sight and pruned once they recover
// fully, so the maps track only clients with outstanding debt. Clients
// are spread over independently locked shards by key hash, so concurrent
// requests from distinct clients rarely contend on a mutex.
type rateLimiter struct {
	now    func() time.Time
	shards [limiterShards]limiterShard
}

// limiterShard is one lock's worth of client buckets. Rate and burst are
// replicated per shard so allow touches exactly one mutex.
type limiterShard struct {
	mu      sync.Mutex
	rate    float64 // tokens per second
	burst   float64
	buckets map[string]*bucket
}

// bucket is one client's token balance as of last.
type bucket struct {
	tokens float64
	last   time.Time
}

func newRateLimiter(rate float64, burst int, now func() time.Time) *rateLimiter {
	l := &rateLimiter{now: now}
	for i := range l.shards {
		s := &l.shards[i]
		s.rate = rate
		s.burst = float64(burst)
		s.buckets = make(map[string]*bucket)
	}
	return l
}

// shard maps a client key to its shard: inlined FNV-1a, so the hot path
// hashes without allocating.
func (l *rateLimiter) shard(key string) *limiterShard {
	h := uint64(14695981039346656037)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return &l.shards[h%limiterShards]
}

// allow spends one token from key's bucket. When the bucket is empty it
// reports false and how long until a token will be available — the 429
// Retry-After value.
func (l *rateLimiter) allow(key string) (ok bool, retryAfter time.Duration) {
	s := l.shard(key)
	s.mu.Lock()
	defer s.mu.Unlock()
	now := l.now()
	b := s.buckets[key]
	if b == nil {
		if len(s.buckets) >= limiterPruneThreshold/limiterShards {
			s.prune(now)
		}
		b = &bucket{tokens: s.burst, last: now}
		s.buckets[key] = b
	} else {
		b.tokens = math.Min(s.burst, b.tokens+now.Sub(b.last).Seconds()*s.rate)
		b.last = now
	}
	if b.tokens < 1 {
		return false, retryWait(1-b.tokens, s.rate)
	}
	b.tokens--
	return true, 0
}

// maxRetryWait caps the advertised retry wait. With a zero (or vanishing)
// refill rate the true wait diverges, and pushing the resulting Inf — or
// anything past ~292 years — through float64 into time.Duration overflows
// into garbage, possibly negative. An hour already means "come back much
// later" to an HTTP client.
const maxRetryWait = time.Hour

// retryWait converts a token deficit and refill rate into a bounded
// Retry-After duration.
func retryWait(missing, rate float64) time.Duration {
	if rate <= 0 {
		return maxRetryWait
	}
	secs := missing / rate
	if secs >= maxRetryWait.Seconds() {
		return maxRetryWait
	}
	return time.Duration(secs * float64(time.Second))
}

// prune drops the shard's buckets that have refilled completely. Caller
// holds the shard's mu.
func (s *limiterShard) prune(now time.Time) {
	for key, b := range s.buckets {
		if math.Min(s.burst, b.tokens+now.Sub(b.last).Seconds()*s.rate) >= s.burst {
			delete(s.buckets, key)
		}
	}
}

// setRate replaces the refill rate and burst capacity; existing balances
// are clamped to the new burst so a lowered cap takes effect at once.
func (l *rateLimiter) setRate(rate float64, burst int) {
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		s.rate = rate
		s.burst = float64(burst)
		for _, b := range s.buckets {
			b.tokens = math.Min(b.tokens, s.burst)
		}
		s.mu.Unlock()
	}
}

// clients reports how many buckets are currently tracked across shards.
func (l *rateLimiter) clients() int {
	total := 0
	for i := range l.shards {
		s := &l.shards[i]
		s.mu.Lock()
		total += len(s.buckets)
		s.mu.Unlock()
	}
	return total
}
