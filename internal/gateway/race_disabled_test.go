//go:build !race

package gateway

// raceEnabled reports whether the race detector is compiled in; its
// instrumentation allocates, which would fail the allocation-budget test.
const raceEnabled = false
