package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"net/netip"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"peersampling/internal/metrics"
	"peersampling/internal/transport"
)

// Sampler is the slice of the peer sampling service the gateway needs:
// runtime.Node implements it. GetPeer must be safe for concurrent use.
type Sampler interface {
	GetPeer() (string, error)
}

// Config tunes a Gateway. The zero value selects the defaults; every
// field is hot-swappable on a running gateway via SetTuning.
type Config struct {
	// BatchSize is how many distinct peers each cache refresh targets.
	// Zero selects 64.
	BatchSize int
	// Refresh is the cache refresh interval. Zero selects one second.
	Refresh time.Duration
	// RateRPS is the per-client token refill rate. Zero selects 5/s.
	RateRPS float64
	// Burst is the per-client bucket capacity. Zero selects 10.
	Burst int
	// TrustProxyHeader keys the rate limiter on the first address of a
	// valid X-Forwarded-For header instead of the socket address. Enable
	// only behind a trusted proxy — the header is client-controlled
	// otherwise. (It is also what lets a loopback load generator emulate
	// distinct clients against one gateway.)
	TrustProxyHeader bool
}

// fill validates cfg and resolves zero values to defaults.
func (c *Config) fill() error {
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.Refresh == 0 {
		c.Refresh = time.Second
	}
	if c.RateRPS == 0 {
		c.RateRPS = 5
	}
	if c.Burst == 0 {
		c.Burst = 10
	}
	switch {
	case c.BatchSize < 0:
		return fmt.Errorf("gateway: negative batch size %d", c.BatchSize)
	case c.Refresh < time.Millisecond:
		return fmt.Errorf("gateway: refresh %v is below the 1ms minimum", c.Refresh)
	case c.RateRPS < 0:
		return fmt.Errorf("gateway: negative rate %v", c.RateRPS)
	case c.Burst < 0:
		return fmt.Errorf("gateway: negative burst %d", c.Burst)
	}
	return nil
}

// Gateway is the light-client sampling API: an HTTP server answering
// GET /v1/sample?n=K with K distinct peer addresses from a periodically
// refreshed cache, and GET /healthz with a status report. Construct with
// New; the server runs until Close.
//
// The serve path is lock-free: each refresh publishes an immutable
// sampleCache behind an atomic pointer, with response bodies for the
// common n values pre-encoded at refresh time, so a cache hit writes
// ready-made bytes without taking a mutex or allocating.
type Gateway struct {
	sampler Sampler
	ln      net.Listener
	srv     *http.Server
	limiter *rateLimiter
	now     func() time.Time

	// cache is the immutable published sample state; never nil after New.
	cache atomic.Pointer[sampleCache]
	// trustProxy mirrors Config.TrustProxyHeader for lock-free reads on
	// the serve path.
	trustProxy atomic.Bool

	// latency records the service time of successful sample responses.
	latency transport.LatencyHistogram

	// mu guards the cold state only: tuning and the health callback.
	mu     sync.Mutex
	cfg    Config
	health func() any

	requests    atomic.Uint64
	peersServed atomic.Uint64
	rateLimited atomic.Uint64
	unavailable atomic.Uint64
	refreshes   atomic.Uint64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// New starts a gateway on addr (e.g. "127.0.0.1:8080", or ":0" for an
// ephemeral port reported by Addr), sampling peers from sampler. The
// first cache refresh runs before New returns, so a gateway over a
// bootstrapped node can serve immediately.
func New(addr string, sampler Sampler, cfg Config) (*Gateway, error) {
	if sampler == nil {
		return nil, errors.New("gateway: nil sampler")
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gateway: listen %s: %w", addr, err)
	}
	g := &Gateway{
		sampler: sampler,
		ln:      ln,
		cfg:     cfg,
		now:     time.Now,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	g.trustProxy.Store(cfg.TrustProxyHeader)
	g.limiter = newRateLimiter(cfg.RateRPS, cfg.Burst, func() time.Time { return g.now() })
	g.refresh()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sample", g.handleSample)
	mux.HandleFunc("/healthz", g.handleHealthz)
	// The timeouts mirror the metrics server's: small responses to many
	// clients, so no phase may pin a goroutine (see metrics.NewServer).
	g.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      15 * time.Second,
		IdleTimeout:       time.Minute,
	}
	go func() { _ = g.srv.Serve(ln) }()
	go g.refreshLoop()
	return g, nil
}

// Addr returns the bound listen address.
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// SetHealth installs a callback whose result is embedded in /healthz
// responses under "daemon" — the hook the daemon manager uses to expose
// its aggregated plugin report through the gateway's port.
func (g *Gateway) SetHealth(fn func() any) {
	g.mu.Lock()
	g.health = fn
	g.mu.Unlock()
}

// SetTuning replaces the gateway's tuning live: batch size and refresh
// interval apply from the next refresh round, rate, burst and the proxy
// trust to the next request. The listen address is fixed at construction.
func (g *Gateway) SetTuning(cfg Config) error {
	if err := cfg.fill(); err != nil {
		return err
	}
	g.mu.Lock()
	g.cfg = cfg
	g.mu.Unlock()
	g.trustProxy.Store(cfg.TrustProxyHeader)
	g.limiter.setRate(cfg.RateRPS, cfg.Burst)
	return nil
}

// Close stops the server and the refresh loop. In-flight requests are
// aborted; sample responses have nothing worth draining.
func (g *Gateway) Close() error {
	g.stopOnce.Do(func() { close(g.stop) })
	<-g.done
	return g.srv.Close()
}

// refreshLoop re-fills the cache every Config.Refresh until Close. A
// timer re-armed per round (rather than a ticker) picks up a hot-swapped
// interval within one old interval.
func (g *Gateway) refreshLoop() {
	defer close(g.done)
	for {
		g.mu.Lock()
		interval := g.cfg.Refresh
		g.mu.Unlock()
		timer := time.NewTimer(interval)
		select {
		case <-g.stop:
			timer.Stop()
			return
		case <-timer.C:
			g.refresh()
		}
	}
}

// refresh draws a fresh batch of distinct peers through GetPeer and
// publishes it as a new immutable sampleCache. GetPeer returns one view
// entry per call, so the refresh loops until it has BatchSize distinct
// addresses or stops learning new ones; a node whose view is smaller
// than the batch target simply yields a smaller batch. An empty view
// empties the cache — serving stale peers from a node that lost its
// whole view would hide a partition from clients.
func (g *Gateway) refresh() {
	g.mu.Lock()
	target := g.cfg.BatchSize
	g.mu.Unlock()

	seen := make(map[string]bool, target)
	batch := make([]string, 0, target)
	misses := 0
	for len(batch) < target && misses < 3*target+8 {
		peer, err := g.sampler.GetPeer()
		if err != nil {
			break // empty view: serve what this round gathered (nothing)
		}
		if seen[peer] {
			misses++
			continue
		}
		seen[peer] = true
		batch = append(batch, peer)
	}
	g.refreshes.Add(1)
	g.cache.Store(newSampleCache(batch, target, g.now()))
}

// preEncodedN is the largest sample size served from bodies pre-encoded
// at refresh time; preVariants is how many independently drawn subsets
// back each of those sizes, round-robined across requests so repeated
// callers still see sample diversity. Larger n is assembled per request
// from pre-encoded per-peer fragments into a pooled buffer.
const (
	preEncodedN = 8
	preVariants = 16
)

// Fixed body pieces of the /v1/sample JSON shape (see sampleResponse).
var (
	bodyPrefix = []byte(`{"peers":[`)
	bodyCount  = []byte(`],"count":`)
)

// sampleCache is one published refresh result. Everything in it is
// immutable after construction except the round-robin cursors, so the
// serve path may read it without synchronization.
type sampleCache struct {
	peers           []string
	target          int // batch target at refresh time; the n validation cap
	refreshedAt     time.Time
	refreshedUnixMS int64

	// bodies[n-1] holds complete pre-encoded response bodies for sample
	// size n; next[n-1] round-robins over them.
	bodies [][][]byte
	next   []atomic.Uint64

	// frags[i] is peers[i] pre-encoded as a JSON string, the building
	// block of assembled responses; suffix closes every body after the
	// count value.
	frags  [][]byte
	suffix []byte
}

// newSampleCache pre-encodes the batch. The cost — a few hundred small
// encodes — is paid once per refresh interval, not per request.
func newSampleCache(peers []string, target int, now time.Time) *sampleCache {
	if target < 1 {
		target = 1
	}
	c := &sampleCache{
		peers:           peers,
		target:          target,
		refreshedAt:     now,
		refreshedUnixMS: now.UnixMilli(),
	}
	c.suffix = fmt.Appendf(nil, ",\"refreshed_unix_ms\":%d}\n", c.refreshedUnixMS)
	c.frags = make([][]byte, len(peers))
	for i, p := range peers {
		frag, err := json.Marshal(p)
		if err != nil { // a string cannot fail to marshal; seatbelt only
			frag = []byte(`""`)
		}
		c.frags[i] = frag
	}
	maxPre := min(preEncodedN, len(peers))
	c.bodies = make([][][]byte, maxPre)
	c.next = make([]atomic.Uint64, maxPre)
	if maxPre >= 1 {
		// n=1: one body per peer in a shuffled order, so the round-robin
		// serves every peer uniformly.
		order := rand.Perm(len(peers))
		one := make([][]byte, len(peers))
		for k, pi := range order {
			one[k] = c.encodeBody([]int{pi})
		}
		c.bodies[0] = one
	}
	idx := make([]int, len(peers))
	for n := 2; n <= maxPre; n++ {
		variants := make([][]byte, preVariants)
		for v := range variants {
			for i := range idx {
				idx[i] = i
			}
			// Partial Fisher–Yates: the first n slots end up a uniform
			// n-subset, independently per variant.
			for i := 0; i < n; i++ {
				j := i + rand.IntN(len(idx)-i)
				idx[i], idx[j] = idx[j], idx[i]
			}
			variants[v] = c.encodeBody(idx[:n])
		}
		c.bodies[n-1] = variants
	}
	return c
}

// encodeBody renders one complete response body for the selected peer
// indices.
func (c *sampleCache) encodeBody(sel []int) []byte {
	var b []byte
	b = append(b, bodyPrefix...)
	for i, pi := range sel {
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, c.frags[pi]...)
	}
	b = append(b, bodyCount...)
	b = strconv.AppendInt(b, int64(len(sel)), 10)
	b = append(b, c.suffix...)
	return b
}

// body returns a ready-made response for a pre-encoded n, round-robining
// the variants. n must be in [1, min(preEncodedN, len(peers))].
func (c *sampleCache) body(n int) []byte {
	variants := c.bodies[n-1]
	k := c.next[n-1].Add(1)
	return variants[k%uint64(len(variants))]
}

// scratch is the per-request workspace of the assembled (large-n) path,
// pooled so the steady state allocates nothing.
type scratch struct {
	buf []byte
	idx []int
}

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

// appendAssembled writes a response for n past the pre-encoded sizes into
// s.buf: a fresh partial Fisher–Yates over the peer indices, peers copied
// from the cache's fragments.
func (c *sampleCache) appendAssembled(s *scratch, n int) {
	s.idx = s.idx[:0]
	for i := range c.peers {
		s.idx = append(s.idx, i)
	}
	b := append(s.buf[:0], bodyPrefix...)
	for i := 0; i < n; i++ {
		j := i + rand.IntN(len(s.idx)-i)
		s.idx[i], s.idx[j] = s.idx[j], s.idx[i]
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, c.frags[s.idx[i]]...)
	}
	b = append(b, bodyCount...)
	b = strconv.AppendInt(b, int64(n), 10)
	s.buf = append(b, c.suffix...)
}

// sampleResponse is the /v1/sample JSON body. Serving writes pre-encoded
// bytes of this exact shape; the struct itself is the decode side for
// clients and tests. RefreshedUnixMS identifies the cache generation the
// sample came from, so a client can judge freshness against its own
// clock without the server computing a per-request age.
type sampleResponse struct {
	Peers           []string `json:"peers"`
	Count           int      `json:"count"`
	RefreshedUnixMS int64    `json:"refreshed_unix_ms"`
}

// parseSampleN extracts the n query parameter from a raw query string
// without allocating. present reports whether n appeared at all; ok=false
// means the request must be rejected (non-integer, out of range for int,
// empty value, or a duplicated n parameter — ambiguity is rejected, not
// resolved). Values are read literally: a percent-encoded digit is not an
// integer here, which only tightens validation.
func parseSampleN(raw string) (n int, present, ok bool) {
	for len(raw) > 0 {
		var seg string
		if i := strings.IndexByte(raw, '&'); i >= 0 {
			seg, raw = raw[:i], raw[i+1:]
		} else {
			seg, raw = raw, ""
		}
		var key, val string
		if j := strings.IndexByte(seg, '='); j >= 0 {
			key, val = seg[:j], seg[j+1:]
		} else {
			key = seg
		}
		if key != "n" {
			continue
		}
		if present {
			return 0, true, false
		}
		present = true
		v, err := strconv.Atoi(val)
		if err != nil {
			return 0, true, false
		}
		n = v
	}
	return n, present, true
}

// retryAfterSeconds renders the limiter's wait as the integral
// Retry-After header value: rounded up to the next whole second (the
// header has no finer unit, and rounding down would invite a guaranteed
// second 429), never below 1.
func retryAfterSeconds(wait time.Duration) int {
	secs := int((wait + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func (g *Gateway) handleSample(w http.ResponseWriter, r *http.Request) {
	start := g.now()
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	c := g.cache.Load()
	// The batch target rides the cache snapshot, so validation stays
	// lock-free; a SetTuning batch change takes effect with its first
	// refresh, which is also when it changes what can be served.
	n, present, ok := parseSampleN(r.URL.RawQuery)
	if !ok || (present && (n < 1 || n > c.target)) {
		http.Error(w, fmt.Sprintf("n must be an integer in [1,%d]", c.target), http.StatusBadRequest)
		return
	}
	if !present {
		n = 1
	}
	if allowed, retryAfter := g.limiter.allow(g.clientKey(r)); !allowed {
		g.rateLimited.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds(retryAfter)))
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
		return
	}
	if len(c.peers) == 0 {
		g.unavailable.Add(1)
		http.Error(w, "no peers available", http.StatusServiceUnavailable)
		return
	}
	if n > len(c.peers) {
		n = len(c.peers)
	}
	setJSONContentType(w.Header())
	if n <= preEncodedN {
		_, _ = w.Write(c.body(n))
	} else {
		s := scratchPool.Get().(*scratch)
		c.appendAssembled(s, n)
		_, _ = w.Write(s.buf)
		scratchPool.Put(s)
	}
	g.requests.Add(1)
	g.peersServed.Add(uint64(n))
	g.latency.Observe(g.now().Sub(start))
}

// setJSONContentType sets Content-Type without http.Header.Set's
// per-call []string allocation: the value slice is shared, and a header
// map that already carries the key (a keep-alive connection's reused
// header storage) is left alone.
var jsonContentType = []string{"application/json"}

func setJSONContentType(h http.Header) {
	if _, exists := h["Content-Type"]; !exists {
		h["Content-Type"] = jsonContentType
	}
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	c := g.cache.Load()
	g.mu.Lock()
	health := g.health
	g.mu.Unlock()
	report := map[string]any{
		"status":       "ok",
		"cache_size":   len(c.peers),
		"cache_age_ms": g.now().Sub(c.refreshedAt).Milliseconds(),
	}
	if len(c.peers) == 0 {
		report["status"] = "empty-cache"
	}
	if health != nil {
		report["daemon"] = health()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(report)
}

// clientKey identifies the client for rate limiting: the remote IP,
// ignoring the ephemeral port so one host's connections share a bucket.
// With TrustProxyHeader on, a well-formed X-Forwarded-For wins: the
// first (client-most) address, validated as an IP so junk cannot mint
// arbitrary bucket keys; malformed headers fall back to the socket.
func (g *Gateway) clientKey(r *http.Request) string {
	if g.trustProxy.Load() {
		if xff := r.Header.Get("X-Forwarded-For"); xff != "" {
			first := xff
			if i := strings.IndexByte(first, ','); i >= 0 {
				first = first[:i]
			}
			first = strings.TrimSpace(first)
			if _, err := netip.ParseAddr(first); err == nil {
				return first
			}
		}
	}
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// Snapshot reports the gateway's counters in the metrics pipeline's
// common shape, for Collector.RegisterFunc. The refresh count rides the
// Cycles column so the dumper's cycle-granularity sampling applies to
// gateway sources unchanged.
func (g *Gateway) Snapshot(unixMillis int64) metrics.NodeSnapshot {
	c := g.cache.Load()
	refreshes := g.refreshes.Load()
	lat := g.latency.Snapshot()
	return metrics.NodeSnapshot{
		Addr:       g.Addr(),
		UnixMillis: unixMillis,
		Cycles:     refreshes,
		Gateway: &metrics.GatewaySnapshot{
			Requests:        g.requests.Load(),
			PeersServed:     g.peersServed.Load(),
			RateLimited:     g.rateLimited.Load(),
			Unavailable:     g.unavailable.Load(),
			Refreshes:       refreshes,
			Clients:         g.limiter.clients(),
			CacheSize:       len(c.peers),
			CacheAgeSeconds: g.now().Sub(c.refreshedAt).Seconds(),
			Latency:         &lat,
		},
	}
}
