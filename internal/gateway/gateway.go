package gateway

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand/v2"
	"net"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"peersampling/internal/metrics"
)

// Sampler is the slice of the peer sampling service the gateway needs:
// runtime.Node implements it. GetPeer must be safe for concurrent use.
type Sampler interface {
	GetPeer() (string, error)
}

// Config tunes a Gateway. The zero value selects the defaults; every
// field is hot-swappable on a running gateway via SetTuning.
type Config struct {
	// BatchSize is how many distinct peers each cache refresh targets.
	// Zero selects 64.
	BatchSize int
	// Refresh is the cache refresh interval. Zero selects one second.
	Refresh time.Duration
	// RateRPS is the per-client token refill rate. Zero selects 5/s.
	RateRPS float64
	// Burst is the per-client bucket capacity. Zero selects 10.
	Burst int
}

// fill validates cfg and resolves zero values to defaults.
func (c *Config) fill() error {
	if c.BatchSize == 0 {
		c.BatchSize = 64
	}
	if c.Refresh == 0 {
		c.Refresh = time.Second
	}
	if c.RateRPS == 0 {
		c.RateRPS = 5
	}
	if c.Burst == 0 {
		c.Burst = 10
	}
	switch {
	case c.BatchSize < 0:
		return fmt.Errorf("gateway: negative batch size %d", c.BatchSize)
	case c.Refresh < time.Millisecond:
		return fmt.Errorf("gateway: refresh %v is below the 1ms minimum", c.Refresh)
	case c.RateRPS < 0:
		return fmt.Errorf("gateway: negative rate %v", c.RateRPS)
	case c.Burst < 0:
		return fmt.Errorf("gateway: negative burst %d", c.Burst)
	}
	return nil
}

// Gateway is the light-client sampling API: an HTTP server answering
// GET /v1/sample?n=K with K distinct peer addresses from a periodically
// refreshed cache, and GET /healthz with a status report. Construct with
// New; the server runs until Close.
type Gateway struct {
	sampler Sampler
	ln      net.Listener
	srv     *http.Server
	limiter *rateLimiter
	now     func() time.Time

	mu          sync.Mutex
	cfg         Config
	batch       []string  // current sample cache; never mutated after swap
	refreshedAt time.Time // zero until the first refresh lands
	health      func() any

	requests    atomic.Uint64
	peersServed atomic.Uint64
	rateLimited atomic.Uint64
	unavailable atomic.Uint64
	refreshes   atomic.Uint64

	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// New starts a gateway on addr (e.g. "127.0.0.1:8080", or ":0" for an
// ephemeral port reported by Addr), sampling peers from sampler. The
// first cache refresh runs before New returns, so a gateway over a
// bootstrapped node can serve immediately.
func New(addr string, sampler Sampler, cfg Config) (*Gateway, error) {
	if sampler == nil {
		return nil, errors.New("gateway: nil sampler")
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("gateway: listen %s: %w", addr, err)
	}
	g := &Gateway{
		sampler: sampler,
		ln:      ln,
		cfg:     cfg,
		now:     time.Now,
		stop:    make(chan struct{}),
		done:    make(chan struct{}),
	}
	g.limiter = newRateLimiter(cfg.RateRPS, cfg.Burst, func() time.Time { return g.now() })
	g.refresh()
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/sample", g.handleSample)
	mux.HandleFunc("/healthz", g.handleHealthz)
	// The timeouts mirror the metrics server's: small responses to many
	// clients, so no phase may pin a goroutine (see metrics.NewServer).
	g.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      15 * time.Second,
		IdleTimeout:       time.Minute,
	}
	go func() { _ = g.srv.Serve(ln) }()
	go g.refreshLoop()
	return g, nil
}

// Addr returns the bound listen address.
func (g *Gateway) Addr() string { return g.ln.Addr().String() }

// SetHealth installs a callback whose result is embedded in /healthz
// responses under "daemon" — the hook the daemon manager uses to expose
// its aggregated plugin report through the gateway's port.
func (g *Gateway) SetHealth(fn func() any) {
	g.mu.Lock()
	g.health = fn
	g.mu.Unlock()
}

// SetTuning replaces the gateway's tuning live: batch size and refresh
// interval apply from the next refresh round, rate and burst to the next
// request. The listen address is fixed at construction.
func (g *Gateway) SetTuning(cfg Config) error {
	if err := cfg.fill(); err != nil {
		return err
	}
	g.mu.Lock()
	g.cfg = cfg
	g.mu.Unlock()
	g.limiter.setRate(cfg.RateRPS, cfg.Burst)
	return nil
}

// Close stops the server and the refresh loop. In-flight requests are
// aborted; sample responses have nothing worth draining.
func (g *Gateway) Close() error {
	g.stopOnce.Do(func() { close(g.stop) })
	<-g.done
	return g.srv.Close()
}

// refreshLoop re-fills the cache every Config.Refresh until Close. A
// timer re-armed per round (rather than a ticker) picks up a hot-swapped
// interval within one old interval.
func (g *Gateway) refreshLoop() {
	defer close(g.done)
	for {
		g.mu.Lock()
		interval := g.cfg.Refresh
		g.mu.Unlock()
		timer := time.NewTimer(interval)
		select {
		case <-g.stop:
			timer.Stop()
			return
		case <-timer.C:
			g.refresh()
		}
	}
}

// refresh draws a fresh batch of distinct peers through GetPeer. GetPeer
// returns one view entry per call, so the refresh loops until it has
// BatchSize distinct addresses or stops learning new ones; a node whose
// view is smaller than the batch target simply yields a smaller batch.
// An empty view empties the cache — serving stale peers from a node that
// lost its whole view would hide a partition from clients.
func (g *Gateway) refresh() {
	g.mu.Lock()
	target := g.cfg.BatchSize
	g.mu.Unlock()

	seen := make(map[string]bool, target)
	batch := make([]string, 0, target)
	misses := 0
	for len(batch) < target && misses < 3*target+8 {
		peer, err := g.sampler.GetPeer()
		if err != nil {
			break // empty view: serve what this round gathered (nothing)
		}
		if seen[peer] {
			misses++
			continue
		}
		seen[peer] = true
		batch = append(batch, peer)
	}
	g.refreshes.Add(1)
	g.mu.Lock()
	g.batch = batch
	g.refreshedAt = g.now()
	g.mu.Unlock()
}

// sampleResponse is the /v1/sample JSON body.
type sampleResponse struct {
	Peers      []string `json:"peers"`
	Count      int      `json:"count"`
	CacheAgeMS int64    `json:"cache_age_ms"`
}

func (g *Gateway) handleSample(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	g.mu.Lock()
	batch, refreshedAt, target := g.batch, g.refreshedAt, g.cfg.BatchSize
	g.mu.Unlock()

	n := 1
	if raw := r.URL.Query().Get("n"); raw != "" {
		v, err := strconv.Atoi(raw)
		if err != nil || v < 1 || v > target {
			http.Error(w, fmt.Sprintf("n must be an integer in [1,%d]", target), http.StatusBadRequest)
			return
		}
		n = v
	}
	if ok, retryAfter := g.limiter.allow(clientKey(r)); !ok {
		g.rateLimited.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(retryAfter/time.Second)+1))
		http.Error(w, "rate limit exceeded", http.StatusTooManyRequests)
		return
	}
	if len(batch) == 0 {
		g.unavailable.Add(1)
		http.Error(w, "no peers available", http.StatusServiceUnavailable)
		return
	}
	if n > len(batch) {
		n = len(batch)
	}
	// A partial Fisher–Yates over a copy: the first n slots end up a
	// uniform n-subset of the batch, each request independently.
	peers := make([]string, len(batch))
	copy(peers, batch)
	for i := 0; i < n; i++ {
		j := i + rand.IntN(len(peers)-i)
		peers[i], peers[j] = peers[j], peers[i]
	}
	g.requests.Add(1)
	g.peersServed.Add(uint64(n))
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(sampleResponse{
		Peers:      peers[:n],
		Count:      n,
		CacheAgeMS: g.now().Sub(refreshedAt).Milliseconds(),
	})
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	g.mu.Lock()
	cacheSize, refreshedAt, health := len(g.batch), g.refreshedAt, g.health
	g.mu.Unlock()
	report := map[string]any{
		"status":       "ok",
		"cache_size":   cacheSize,
		"cache_age_ms": g.now().Sub(refreshedAt).Milliseconds(),
	}
	if cacheSize == 0 {
		report["status"] = "empty-cache"
	}
	if health != nil {
		report["daemon"] = health()
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(report)
}

// clientKey identifies the client for rate limiting: the remote IP,
// ignoring the ephemeral port so one host's connections share a bucket.
func clientKey(r *http.Request) string {
	host, _, err := net.SplitHostPort(r.RemoteAddr)
	if err != nil {
		return r.RemoteAddr
	}
	return host
}

// Snapshot reports the gateway's counters in the metrics pipeline's
// common shape, for Collector.RegisterFunc. The refresh count rides the
// Cycles column so the dumper's cycle-granularity sampling applies to
// gateway sources unchanged.
func (g *Gateway) Snapshot(unixMillis int64) metrics.NodeSnapshot {
	g.mu.Lock()
	cacheSize, refreshedAt := len(g.batch), g.refreshedAt
	g.mu.Unlock()
	refreshes := g.refreshes.Load()
	return metrics.NodeSnapshot{
		Addr:       g.Addr(),
		UnixMillis: unixMillis,
		Cycles:     refreshes,
		Gateway: &metrics.GatewaySnapshot{
			Requests:        g.requests.Load(),
			PeersServed:     g.peersServed.Load(),
			RateLimited:     g.rateLimited.Load(),
			Unavailable:     g.unavailable.Load(),
			Refreshes:       refreshes,
			Clients:         g.limiter.clients(),
			CacheSize:       cacheSize,
			CacheAgeSeconds: g.now().Sub(refreshedAt).Seconds(),
		},
	}
}
