package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"
)

func echoUDP(t *testing.T) *UDP {
	t.Helper()
	server, err := ListenUDP("127.0.0.1:0", func(req Request) (Response, bool) {
		if !req.WantReply {
			return Response{}, false
		}
		return Response{From: "server", Buffer: req.Buffer}, true
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	return server
}

func newUDPClient(t *testing.T) *UDP {
	t.Helper()
	client, err := ListenUDP("127.0.0.1:0", func(Request) (Response, bool) { return Response{}, false })
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return client
}

func TestUDPPushPullRoundTrip(t *testing.T) {
	server := echoUDP(t)
	client := newUDPClient(t)
	req := Request{From: client.Addr(), WantReply: true, Buffer: []Descriptor{{Addr: "x", Hop: 2}}}
	resp, ok, err := client.Exchange(context.Background(), server.Addr(), req)
	if err != nil || !ok {
		t.Fatalf("exchange: %v ok=%v", err, ok)
	}
	if resp.From != "server" || len(resp.Buffer) != 1 || resp.Buffer[0] != req.Buffer[0] {
		t.Fatalf("resp = %+v", resp)
	}
	stats := client.TransportStats()
	if stats.FramesOut != 1 || stats.FramesIn != 1 || stats.BytesOut == 0 || stats.BytesIn == 0 {
		t.Errorf("client stats = %+v", stats)
	}
}

func TestUDPPushOnly(t *testing.T) {
	received := make(chan Request, 1)
	server, err := ListenUDP("127.0.0.1:0", func(req Request) (Response, bool) {
		received <- req
		return Response{}, false
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client := newUDPClient(t)

	_, ok, err := client.Exchange(context.Background(), server.Addr(), Request{
		From: client.Addr(), Buffer: []Descriptor{{Addr: "y", Hop: 1}}})
	if err != nil || ok {
		t.Fatalf("push exchange: %v ok=%v", err, ok)
	}
	select {
	case req := <-received:
		if req.From != client.Addr() || len(req.Buffer) != 1 {
			t.Errorf("server saw %+v", req)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server never received the push")
	}
}

func TestUDPOversizedViewRejected(t *testing.T) {
	server := echoUDP(t)
	client := newUDPClient(t)
	// A view whose encoding exceeds one datagram must fail fast on the
	// sender, not silently truncate on the wire.
	huge := make([]Descriptor, 0, MaxDescriptors)
	addr := strings.Repeat("a", MaxAddrLen-6) + ":12345"
	for len(huge) < MaxDescriptors {
		huge = append(huge, Descriptor{Addr: addr, Hop: 1})
	}
	_, _, err := client.Exchange(context.Background(), server.Addr(),
		Request{From: client.Addr(), WantReply: true, Buffer: huge})
	if !errors.Is(err, ErrOversized) {
		t.Fatalf("err = %v want ErrOversized", err)
	}
	if stats := client.TransportStats(); stats.FramesOut != 0 {
		t.Errorf("oversized frame was sent anyway: %+v", stats)
	}
}

func TestUDPServerDropsGarbageAndOversized(t *testing.T) {
	server := echoUDP(t)
	raw, err := net.Dial("udp", server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	// Garbage datagram: decode fails, must be counted dropped.
	if _, err := raw.Write([]byte{0xDE, 0xAD, 0xBE, 0xEF}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for server.TransportStats().DatagramsDropped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("garbage datagram never counted as dropped")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The server must still serve well-formed exchanges afterwards.
	client := newUDPClient(t)
	resp, ok, err := client.Exchange(context.Background(), server.Addr(),
		Request{From: client.Addr(), WantReply: true})
	if err != nil || !ok || resp.From != "server" {
		t.Fatalf("exchange after garbage: %v ok=%v resp=%+v", err, ok, resp)
	}
}

// TestUDPLossSurfacesAsUnreachable exercises the Fabric-style loss path:
// a datagram that never gets answered (here: sent into a swallowing
// socket) must surface as a timeout wrapped in ErrUnreachable and count
// as a dropped datagram, exactly like WithLoss on the in-memory fabric
// surfaces ErrDropped.
func TestUDPLossSurfacesAsUnreachable(t *testing.T) {
	// A raw UDP socket that reads nothing: every request datagram is lost.
	sink, err := net.ListenPacket("udp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	client := newUDPClient(t)
	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	_, _, err = client.Exchange(ctx, sink.LocalAddr().String(),
		Request{From: client.Addr(), WantReply: true})
	if !errors.Is(err, ErrUnreachable) {
		t.Fatalf("err = %v want ErrUnreachable", err)
	}
	if stats := client.TransportStats(); stats.DatagramsDropped != 1 {
		t.Errorf("dropped = %d want 1", stats.DatagramsDropped)
	}
	// Push-only exchanges are fire-and-forget: loss is invisible, which is
	// the UDP contract.
	if _, ok, err := client.Exchange(context.Background(), sink.LocalAddr().String(),
		Request{From: client.Addr()}); err != nil || ok {
		t.Errorf("push into sink: %v ok=%v", err, ok)
	}
}

func TestUDPClose(t *testing.T) {
	server := echoUDP(t)
	client := newUDPClient(t)
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil { // idempotent
		t.Errorf("second close: %v", err)
	}
	if _, _, err := client.Exchange(context.Background(), server.Addr(),
		Request{From: "x"}); !errors.Is(err, ErrClosed) {
		t.Errorf("exchange after close: %v want ErrClosed", err)
	}
}

// A response datagram whose WriteToUDP fails is lost exactly like a
// dropped datagram, so it must move DatagramsDropped — a silent return
// here was a blind spot in the exported wire counters.
func TestUDPFailedResponseWriteCounted(t *testing.T) {
	server := echoUDP(t)
	before := server.TransportStats()

	// The server socket is bound to IPv4 loopback; a non-mappable IPv6
	// destination makes WriteToUDP fail deterministically.
	badSrc := &net.UDPAddr{IP: net.ParseIP("fd00::1"), Port: 9}
	server.handleDatagram(Request{From: "client", WantReply: true}, badSrc, new(udpRequest))

	after := server.TransportStats()
	if got := after.DatagramsDropped - before.DatagramsDropped; got != 1 {
		t.Errorf("DatagramsDropped moved by %d, want 1", got)
	}
	if after.FramesOut != before.FramesOut {
		t.Errorf("FramesOut moved on a failed write: %d -> %d", before.FramesOut, after.FramesOut)
	}

	// Control: a writable source counts the frame and drops nothing.
	sink, err := net.ListenUDP("udp", &net.UDPAddr{IP: net.IPv4(127, 0, 0, 1)})
	if err != nil {
		t.Fatal(err)
	}
	defer sink.Close()
	server.handleDatagram(Request{From: "client", WantReply: true}, sink.LocalAddr().(*net.UDPAddr), new(udpRequest))
	final := server.TransportStats()
	if final.DatagramsDropped != after.DatagramsDropped {
		t.Errorf("successful write counted as dropped")
	}
	if final.FramesOut != after.FramesOut+1 {
		t.Errorf("successful write not counted: FramesOut %d -> %d", after.FramesOut, final.FramesOut)
	}
}

func TestRegistryResolvesAllBackends(t *testing.T) {
	want := []string{"tcp", "tcp-pooled", "udp"}
	got := Backends()
	for _, name := range want {
		found := false
		for _, g := range got {
			if g == name {
				found = true
			}
		}
		if !found {
			t.Fatalf("backend %q not registered (have %v)", name, got)
		}
	}
	for _, name := range want {
		factory, err := NewFactory(name, "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		tr, err := factory(func(Request) (Response, bool) { return Response{}, false })
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if tr.Addr() == "" {
			t.Errorf("%s: empty address", name)
		}
		if _, ok := tr.(StatsReporter); !ok {
			t.Errorf("%s: does not report transport stats", name)
		}
		if err := tr.Close(); err != nil {
			t.Errorf("%s: close: %v", name, err)
		}
	}
	if _, err := NewFactory("carrier-pigeon", "127.0.0.1:0"); err == nil {
		t.Error("unknown backend accepted")
	}
	if got := fmt.Sprint(Backends()); !strings.Contains(got, "tcp-pooled") {
		t.Errorf("Backends() = %s", got)
	}
}
