package transport

import (
	"context"
	"net"
	"sync/atomic"
	"testing"
	"time"
)

// TestConnGateResize checks the gate arithmetic around a live resize:
// lowering the cap below current occupancy refuses new arrivals without
// disturbing slots already held, and raising it re-admits.
func TestConnGateResize(t *testing.T) {
	var rejects atomic.Uint64
	g := newConnGate(2, &rejects)
	if !g.tryAcquire() || !g.tryAcquire() {
		t.Fatal("gate refused below cap")
	}
	if g.tryAcquire() {
		t.Fatal("gate admitted past cap")
	}
	g.setMax(1) // below current occupancy of 2
	if g.tryAcquire() {
		t.Fatal("gate admitted past lowered cap")
	}
	g.release() // occupancy 1, still at the lowered cap
	if g.tryAcquire() {
		t.Fatal("gate admitted at lowered cap")
	}
	g.setMax(3)
	if !g.tryAcquire() || !g.tryAcquire() {
		t.Fatal("gate refused after raise")
	}
	g.setMax(-1) // unlimited
	for i := 0; i < 8; i++ {
		if !g.tryAcquire() {
			t.Fatal("unlimited gate refused")
		}
	}
	if rejects.Load() != 3 {
		t.Fatalf("rejects = %d, want 3", rejects.Load())
	}
}

// TestSetLimitsRejectsInvalid checks SetLimits validates exactly like
// construction on every backend, leaving the running limits untouched.
func TestSetLimitsRejectsInvalid(t *testing.T) {
	for _, tc := range []struct {
		name string
		open func() (interface {
			LimitsUpdater
			Transport
		}, error)
	}{
		{"tcp", func() (interface {
			LimitsUpdater
			Transport
		}, error) {
			return ListenTCP("127.0.0.1:0", echoLimits)
		}},
		{"tcp-pooled", func() (interface {
			LimitsUpdater
			Transport
		}, error) {
			return ListenPooledTCP("127.0.0.1:0", echoLimits, PoolConfig{})
		}},
		{"udp", func() (interface {
			LimitsUpdater
			Transport
		}, error) {
			return ListenUDP("127.0.0.1:0", echoLimits)
		}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			tr, err := tc.open()
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			if err := tr.SetLimits(Limits{KeepAlive: -time.Second}); err == nil {
				t.Error("negative keep-alive accepted")
			}
			if err := tr.SetLimits(Limits{KeepAlive: time.Second, PushOnlyKeepAlive: 2 * time.Second}); err == nil {
				t.Error("push-only budget above keep-alive accepted")
			}
			if err := tr.SetLimits(Limits{MaxConns: 8, KeepAlive: time.Second}); err != nil {
				t.Errorf("valid limits rejected: %v", err)
			}
		})
	}
}

// TestTCPSetLimitsResizesCap lowers MaxConns on a live listener and
// checks new connections beyond the lowered cap are refused while an
// exchange through an admitted slot still works.
func TestTCPSetLimitsResizesCap(t *testing.T) {
	server, err := ListenTCPLimits("127.0.0.1:0", echoLimits, Limits{MaxConns: 16, KeepAlive: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	if err := server.SetLimits(Limits{MaxConns: 1, KeepAlive: time.Second}); err != nil {
		t.Fatal(err)
	}
	// Occupy the single slot with a held-open connection.
	holder, err := net.Dial("tcp", server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	// A second connection must be closed on arrival and counted.
	over, err := net.Dial("tcp", server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	waitForRejects(t, &server.stats, 1)

	// Raise the cap again: an exchange now succeeds.
	if err := server.SetLimits(Limits{MaxConns: 8, KeepAlive: time.Second}); err != nil {
		t.Fatal(err)
	}
	client, err := ListenTCP("127.0.0.1:0", echoLimits)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	resp, ok, err := client.Exchange(context.Background(), server.Addr(),
		Request{From: client.Addr(), WantReply: true})
	if err != nil || !ok {
		t.Fatalf("exchange after cap raise: ok=%v err=%v", ok, err)
	}
	if resp.From != "server" {
		t.Fatalf("resp.From = %q", resp.From)
	}
}

// TestSetLimitsShrinksKeepAliveOnLiveConn checks the budget schedule is
// re-read per frame: a connection opened under a generous keep-alive is
// evicted by the shrunken budget applied after its first frame.
func TestSetLimitsShrinksKeepAliveOnLiveConn(t *testing.T) {
	server, err := ListenPooledTCP("127.0.0.1:0", echoLimits, PoolConfig{
		Limits: Limits{KeepAlive: 30 * time.Second},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	conn, err := net.Dial("tcp", server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Earn the full keep-alive with one pull exchange on the raw conn.
	frame, err := EncodeRequest(Request{From: "raw", WantReply: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, frame); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(conn); err != nil {
		t.Fatal(err)
	}

	// Shrink the budget under the live connection; its next deadline (armed
	// when it waits for the frame after this one) must use the new value.
	if err := server.SetLimits(Limits{KeepAlive: 50 * time.Millisecond}); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(conn, frame); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(conn); err != nil {
		t.Fatal(err)
	}
	// Now sit silent: under the old 30s budget this read would park for the
	// whole test timeout; under the shrunken one the server evicts us.
	_ = conn.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := readFrame(conn); err == nil {
		t.Fatal("server kept the connection past the shrunken keep-alive")
	}
	if evictions := server.stats.snapshot().KeepAliveEvictions; evictions == 0 {
		t.Error("eviction not counted")
	}
}

// TestUDPSetLimitsResizesHandlerCap checks the datagram backend applies
// a new MaxConns to handler dispatch.
func TestUDPSetLimitsResizesHandlerCap(t *testing.T) {
	release := make(chan struct{})
	slow := func(req Request) (Response, bool) {
		<-release
		return Response{From: "server"}, req.WantReply
	}
	server, err := ListenUDPLimits("127.0.0.1:0", slow, Limits{MaxConns: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	defer close(release)

	if err := server.SetLimits(Limits{MaxConns: 1}); err != nil {
		t.Fatal(err)
	}
	frame, err := EncodeRequest(Request{From: "raw"})
	if err != nil {
		t.Fatal(err)
	}
	conn, err := net.Dial("udp", server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// First datagram occupies the single slot; follow-ups are rejected.
	for i := 0; i < 4; i++ {
		if _, err := conn.Write(frame); err != nil {
			t.Fatal(err)
		}
	}
	waitForRejects(t, &server.stats, 1)
}

// waitForRejects polls the stats until at least want accept rejects are
// counted or the deadline passes.
func waitForRejects(t *testing.T, stats *counters, want uint64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if stats.snapshot().AcceptRejects >= want {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("accept rejects = %d, want >= %d", stats.snapshot().AcceptRejects, want)
}
