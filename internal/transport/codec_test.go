package transport

import (
	"strings"
	"testing"
	"testing/quick"

	"peersampling/internal/core"
)

func TestEncodeDecodeRequestRoundTrip(t *testing.T) {
	req := Request{
		From:      "10.0.0.1:9000",
		WantReply: true,
		Buffer: []Descriptor{
			{Addr: "10.0.0.2:9000", Hop: 0},
			{Addr: "10.0.0.3:9000", Hop: 7},
		},
	}
	frame, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	got, _, isReq, err := DecodeMessage(frame)
	if err != nil || !isReq {
		t.Fatalf("decode: %v (isReq=%v)", err, isReq)
	}
	if got.From != req.From || got.WantReply != req.WantReply || len(got.Buffer) != 2 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	for i := range req.Buffer {
		if got.Buffer[i] != req.Buffer[i] {
			t.Errorf("descriptor %d: %v != %v", i, got.Buffer[i], req.Buffer[i])
		}
	}
}

func TestEncodeDecodeResponseRoundTrip(t *testing.T) {
	resp := Response{From: "a", Buffer: []Descriptor{{Addr: "b", Hop: 3}}}
	frame, err := EncodeResponse(resp)
	if err != nil {
		t.Fatal(err)
	}
	_, got, isReq, err := DecodeMessage(frame)
	if err != nil || isReq {
		t.Fatalf("decode: %v (isReq=%v)", err, isReq)
	}
	if got.From != "a" || len(got.Buffer) != 1 || got.Buffer[0] != resp.Buffer[0] {
		t.Fatalf("round trip mismatch: %+v", got)
	}
}

func TestCodecRoundTripProperty(t *testing.T) {
	f := func(from string, addrs []string, hops []int32, wantReply bool) bool {
		if len(from) > 64 {
			from = from[:64]
		}
		req := Request{From: from, WantReply: wantReply}
		for i, a := range addrs {
			if len(a) > 64 {
				a = a[:64]
			}
			var hop int32
			if i < len(hops) {
				hop = hops[i] & 0x7FFFFFFF // hops are non-negative
			}
			req.Buffer = append(req.Buffer, Descriptor{Addr: a, Hop: hop})
		}
		if len(req.Buffer) > MaxDescriptors {
			req.Buffer = req.Buffer[:MaxDescriptors]
		}
		frame, err := EncodeRequest(req)
		if err != nil {
			return false
		}
		got, _, isReq, err := DecodeMessage(frame)
		if err != nil || !isReq {
			return false
		}
		if got.From != req.From || got.WantReply != req.WantReply || len(got.Buffer) != len(req.Buffer) {
			return false
		}
		for i := range req.Buffer {
			if got.Buffer[i] != req.Buffer[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeLimits(t *testing.T) {
	long := strings.Repeat("x", MaxAddrLen+1)
	if _, err := EncodeRequest(Request{From: long}); err == nil {
		t.Error("oversized From accepted")
	}
	if _, err := EncodeRequest(Request{From: "a", Buffer: []Descriptor{{Addr: long}}}); err == nil {
		t.Error("oversized descriptor address accepted")
	}
	big := make([]Descriptor, MaxDescriptors+1)
	for i := range big {
		big[i] = Descriptor{Addr: "a"}
	}
	if _, err := EncodeRequest(Request{From: "a", Buffer: big}); err == nil {
		t.Error("oversized buffer accepted")
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		{},
		{0x00},                                   // bad magic
		{codecMagic},                             // truncated
		{codecMagic, 9, 0, 0, 0},                 // unknown kind (and truncated strings)
		{codecMagic, kindRequest, 0, 0xFF, 0xFF}, // absurd from length
	}
	for i, frame := range cases {
		if _, _, _, err := DecodeMessage(frame); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
	}
	// Trailing bytes after a valid message are an error.
	good, err := EncodeRequest(Request{From: "a"})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := DecodeMessage(append(good, 0x00)); err == nil {
		t.Error("trailing byte accepted")
	}
}

func TestDecodeTruncatedAtEveryPoint(t *testing.T) {
	req := Request{
		From:      "node-1",
		WantReply: true,
		Buffer:    []Descriptor{{Addr: "node-2", Hop: 1}, {Addr: "node-3", Hop: 2}},
	}
	frame, err := EncodeRequest(req)
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(frame); cut++ {
		if _, _, _, err := DecodeMessage(frame[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

var _ = core.Descriptor[string]{} // the alias must stay assignable to the core type
