package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Pool tuning defaults. Gossip traffic is one exchange per peer per
// period, so a small idle pool per peer is plenty; the idle timeout only
// needs to outlive a handful of periods to turn every steady-state
// exchange into a reuse.
const (
	DefaultMaxIdlePerPeer = 2
	DefaultIdleTimeout    = time.Minute
	// poolSweepDivisor sets how often the eviction sweep runs relative to
	// the idle timeout.
	poolSweepDivisor = 4
)

// PoolConfig tunes a PooledTCP transport. The zero value selects the
// defaults above.
type PoolConfig struct {
	// MaxIdlePerPeer caps the idle connections retained per peer address;
	// surplus connections are closed on release rather than pooled.
	MaxIdlePerPeer int
	// IdleTimeout evicts pooled connections unused for this long. Values
	// above DefaultIdleTimeout (or below a millisecond) are rejected at
	// construction: the passive side of every TCP backend keeps served
	// connections for (by default) twice the DEFAULT idle timeout, and the
	// initiating side abandoning a connection within the default window is
	// what guarantees a push is never written into a connection the peer
	// has already closed.
	IdleTimeout time.Duration
	// Limits hardens the listener side (connection cap, keep-alive
	// budgets); the zero value selects the defaults. It bounds what this
	// endpoint serves, not what it dials.
	Limits Limits
}

func (c *PoolConfig) fill() error {
	if c.MaxIdlePerPeer <= 0 {
		c.MaxIdlePerPeer = DefaultMaxIdlePerPeer
	}
	switch {
	case c.IdleTimeout == 0:
		c.IdleTimeout = DefaultIdleTimeout
	case c.IdleTimeout < time.Millisecond:
		// Also guards the sweep ticker: IdleTimeout below
		// poolSweepDivisor nanoseconds would zero its interval.
		return fmt.Errorf("transport: pool idle timeout %v is below the 1ms minimum", c.IdleTimeout)
	case c.IdleTimeout > DefaultIdleTimeout:
		// Silently clamping would quietly disable pooling instead;
		// surface the conflict with the passive keep-alive guarantee.
		return fmt.Errorf("transport: pool idle timeout %v exceeds the %v maximum (peers only keep served connections for twice that long)",
			c.IdleTimeout, DefaultIdleTimeout)
	}
	return c.Limits.fill()
}

// PooledTCP is a Transport over persistent TCP connections. Unlike TCP,
// which dials a fresh connection per exchange, it keeps a small pool of
// connections per peer and runs many length-prefixed request/response
// exchanges over each one, amortising the dial (and kernel connection
// setup) across the node's lifetime. Idle outbound connections are
// evicted after PoolConfig.IdleTimeout, and the passive side serves
// frames in a loop until its peer goes quiet for its earned keep-alive
// budget (PoolConfig.Limits).
type PooledTCP struct {
	listener net.Listener
	handler  Handler
	cfg      PoolConfig
	limits   limitsBox // current serve-side Limits (cfg.Limits is the construction-time value)
	apps     appHandlerBox
	gate     *connGate
	stats    counters

	mu     sync.Mutex
	closed bool
	idle   map[string][]*pooledConn // peer address -> idle connections, oldest first
	reg    *connRegistry            // accepted connections currently being served
	wg     sync.WaitGroup
	stop   chan struct{}
}

var (
	_ Transport     = (*PooledTCP)(nil)
	_ StatsReporter = (*PooledTCP)(nil)
	_ LimitsUpdater = (*PooledTCP)(nil)
	_ AppCarrier    = (*PooledTCP)(nil)
)

// pooledConn is an outbound connection plus the time it was returned to
// the pool, which drives idle eviction.
type pooledConn struct {
	conn     net.Conn
	idleFrom time.Time
	reused   bool
}

// ListenPooledTCP starts serving on addr with h handling incoming
// exchanges, pooling outbound connections per PoolConfig.
func ListenPooledTCP(addr string, h Handler, cfg PoolConfig) (*PooledTCP, error) {
	if h == nil {
		return nil, errors.New("transport: nil handler")
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &PooledTCP{
		listener: l,
		handler:  h,
		cfg:      cfg,
		idle:     make(map[string][]*pooledConn),
		reg:      newConnRegistry(),
		stop:     make(chan struct{}),
	}
	t.limits.store(cfg.Limits)
	t.gate = newConnGate(cfg.Limits.MaxConns, &t.stats.acceptRejects)
	t.wg.Add(2)
	go t.serve()
	go t.sweepLoop()
	return t, nil
}

// SetLimits implements LimitsUpdater: it validates lim and applies it to
// the live listener side (the dialing side's pool tuning is fixed at
// construction).
func (t *PooledTCP) SetLimits(lim Limits) error {
	if err := lim.fill(); err != nil {
		return err
	}
	t.limits.store(lim)
	t.gate.setMax(lim.MaxConns)
	return nil
}

// Addr implements Transport.
func (t *PooledTCP) Addr() string { return t.listener.Addr().String() }

// TransportStats implements StatsReporter.
func (t *PooledTCP) TransportStats() Stats { return t.stats.snapshot() }

func (t *PooledTCP) serve() {
	defer t.wg.Done()
	acceptLoop(t.listener, t.gate, &t.wg, t.serveConn)
}

// serveConn is the passive side of a persistent connection; the budget
// schedule (shared with the plain TCP backend) is Limits.budget's.
func (t *PooledTCP) serveConn(conn net.Conn) {
	servePersistent(conn, t.handler, &t.stats, t.reg, &t.limits, &t.apps)
}

// SetAppHandler implements AppCarrier.
func (t *PooledTCP) SetAppHandler(h AppHandler) { t.apps.store(h) }

// ExchangeApp implements AppCarrier: one app exchange over a pooled
// connection, with the same borrow / stale-retry discipline as Exchange.
func (t *PooledTCP) ExchangeApp(ctx context.Context, addr string, msg AppMessage) (AppMessage, bool, error) {
	if err := checkLinkFault(ctx, t.Addr(), addr); err != nil {
		return AppMessage{}, false, err
	}
	framep := frameBufs.Get().(*[]byte)
	defer frameBufs.Put(framep)
	frame, err := appendAppFrame((*framep)[:0], msg, false)
	if err != nil {
		return AppMessage{}, false, err
	}
	*framep = frame[:0]
	deadline, hasDeadline := ctx.Deadline()
	if !hasDeadline {
		deadline = time.Now().Add(tcpDefaultTimeout)
	}
	pc, err := t.borrow(ctx, addr, deadline)
	if err != nil {
		return AppMessage{}, false, err
	}
	reply, ok, err := t.exchangeAppOn(pc, addr, frame, msg.WantReply, deadline)
	if err != nil && pc.reused && ctx.Err() == nil && time.Now().Before(deadline) {
		pc, derr := t.dial(ctx, addr, deadline)
		if derr != nil {
			return AppMessage{}, false, derr
		}
		reply, ok, err = t.exchangeAppOn(pc, addr, frame, msg.WantReply, deadline)
	}
	return reply, ok, err
}

// exchangeAppOn runs one framed app exchange over pc, releasing it back
// to the pool on success and closing it on failure.
func (t *PooledTCP) exchangeAppOn(pc *pooledConn, addr string, frame []byte, wantReply bool, deadline time.Time) (AppMessage, bool, error) {
	_ = pc.conn.SetDeadline(deadline)
	reply, ok, err := exchangeAppFrames(pc.conn, frame, wantReply, addr, &t.stats)
	if err != nil {
		pc.conn.Close()
		return AppMessage{}, false, err
	}
	t.release(addr, pc)
	return reply, ok, nil
}

// Exchange implements Transport. It borrows a pooled connection to addr
// (dialing one if none is idle), runs the exchange over it, and returns it
// to the pool on success. An exchange that fails on a reused connection is
// retried once on a fresh dial: the pooled connection may simply have been
// closed by the peer's idle timer, and gossip view merges tolerate the
// rare duplicate delivery this can cause.
func (t *PooledTCP) Exchange(ctx context.Context, addr string, req Request) (Response, bool, error) {
	if err := checkLinkFault(ctx, t.Addr(), addr); err != nil {
		return Response{}, false, err
	}
	framep := frameBufs.Get().(*[]byte)
	defer frameBufs.Put(framep)
	frame, err := appendRequestFrame((*framep)[:0], req)
	if err != nil {
		return Response{}, false, err
	}
	*framep = frame[:0]
	deadline, hasDeadline := ctx.Deadline()
	if !hasDeadline {
		deadline = time.Now().Add(tcpDefaultTimeout)
	}
	pc, err := t.borrow(ctx, addr, deadline)
	if err != nil {
		return Response{}, false, err
	}
	resp, ok, err := t.exchangeOn(pc, addr, frame, req.WantReply, deadline)
	if err != nil && pc.reused && ctx.Err() == nil && time.Now().Before(deadline) {
		// The pooled connection was stale (e.g. idle-closed by the peer);
		// retry once on a fresh dial. A failure that already consumed the
		// deadline is reported as-is: a retry could never complete.
		pc, derr := t.dial(ctx, addr, deadline)
		if derr != nil {
			return Response{}, false, derr
		}
		resp, ok, err = t.exchangeOn(pc, addr, frame, req.WantReply, deadline)
	}
	return resp, ok, err
}

// exchangeOn runs one framed request/response over pc, releasing it back
// to the pool on success and closing it on failure.
func (t *PooledTCP) exchangeOn(pc *pooledConn, addr string, frame []byte, wantReply bool, deadline time.Time) (Response, bool, error) {
	_ = pc.conn.SetDeadline(deadline)
	resp, ok, err := exchangeFrames(pc.conn, frame, wantReply, addr, &t.stats)
	if err != nil {
		pc.conn.Close()
		return Response{}, false, err
	}
	t.release(addr, pc)
	return resp, ok, nil
}

// borrow returns an idle pooled connection to addr or dials a new one.
// Connections idle past the timeout are discarded here even if the sweep
// has not caught them yet: the borrow-time check is exact where the
// sweeper is periodic, and it upholds the invariant that this side never
// reuses a connection the peer's (2x longer) passive deadline may have
// closed — which would silently swallow push-only exchanges.
func (t *PooledTCP) borrow(ctx context.Context, addr string, deadline time.Time) (*pooledConn, error) {
	cutoff := time.Now().Add(-t.cfg.IdleTimeout)
	var stale []*pooledConn
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil, ErrClosed
	}
	var fresh *pooledConn
	if conns := t.idle[addr]; len(conns) > 0 {
		// Pop the most recently used connection: it is the least likely to
		// have gone stale.
		for i := len(conns) - 1; i >= 0; i-- {
			if conns[i].idleFrom.Before(cutoff) {
				// Older entries can only be staler; discard the rest.
				stale = append(stale, conns[:i+1]...)
				conns = conns[i+1:]
				break
			}
			if fresh == nil {
				fresh = conns[i]
				conns = conns[:i]
			}
		}
		if len(conns) == 0 {
			delete(t.idle, addr)
		} else {
			t.idle[addr] = conns
		}
	}
	t.mu.Unlock()
	for _, pc := range stale {
		pc.conn.Close()
	}
	if fresh != nil {
		fresh.reused = true
		t.stats.reuses.Add(1)
		return fresh, nil
	}
	return t.dial(ctx, addr, deadline)
}

func (t *PooledTCP) dial(ctx context.Context, addr string, deadline time.Time) (*pooledConn, error) {
	d := net.Dialer{Deadline: deadline}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	t.stats.dials.Add(1)
	return &pooledConn{conn: conn}, nil
}

// release returns a healthy connection to the idle pool, or closes it if
// the pool is full or the transport shut down meanwhile.
func (t *PooledTCP) release(addr string, pc *pooledConn) {
	pc.idleFrom = time.Now()
	t.mu.Lock()
	if !t.closed && len(t.idle[addr]) < t.cfg.MaxIdlePerPeer {
		t.idle[addr] = append(t.idle[addr], pc)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	pc.conn.Close()
}

// sweepLoop periodically evicts connections idle past the timeout.
func (t *PooledTCP) sweepLoop() {
	defer t.wg.Done()
	ticker := time.NewTicker(t.cfg.IdleTimeout / poolSweepDivisor)
	defer ticker.Stop()
	for {
		select {
		case <-t.stop:
			return
		case <-ticker.C:
			t.sweep(time.Now())
		}
	}
}

// sweep closes and forgets idle connections older than the idle timeout.
func (t *PooledTCP) sweep(now time.Time) {
	cutoff := now.Add(-t.cfg.IdleTimeout)
	var victims []*pooledConn
	t.mu.Lock()
	for addr, conns := range t.idle {
		// Connections are appended in release order, so the stale prefix is
		// everything returned before the cutoff.
		stale := 0
		for stale < len(conns) && conns[stale].idleFrom.Before(cutoff) {
			stale++
		}
		if stale == 0 {
			continue
		}
		victims = append(victims, conns[:stale]...)
		rest := conns[stale:]
		if len(rest) == 0 {
			delete(t.idle, addr)
		} else {
			t.idle[addr] = append(conns[:0], rest...)
		}
	}
	t.mu.Unlock()
	for _, pc := range victims {
		pc.conn.Close()
	}
}

// Close implements Transport: it stops the listener and sweeper, closes
// every pooled connection and waits for in-flight handlers.
func (t *PooledTCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	pools := t.idle
	t.idle = make(map[string][]*pooledConn)
	t.mu.Unlock()
	close(t.stop)
	for _, conns := range pools {
		for _, pc := range conns {
			pc.conn.Close()
		}
	}
	// Unblock passive handlers parked between frames; waiting for their
	// peers' idle timers would stall Close for minutes.
	t.reg.closeAll()
	err := t.listener.Close()
	t.wg.Wait()
	return err
}
