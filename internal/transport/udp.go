package transport

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// MaxDatagramSize bounds one encoded message carried in a single UDP
// datagram. It is far below the codec's MaxFrameSize: a datagram must
// traverse real networks unfragmented-ish, so the UDP transport rejects
// views whose encoding exceeds this rather than silently truncating.
const MaxDatagramSize = 60 * 1024

// ErrOversized is returned when an encoded message does not fit in one
// datagram. Callers should shrink the view (lower ViewSize) or switch to
// a TCP backend.
var ErrOversized = errors.New("transport: message exceeds datagram size")

// UDP is a Transport carrying one gossip exchange per datagram pair: the
// request in one datagram and, for pull-enabled exchanges, the response in
// another. There is no connection state at all, which makes it the
// cheapest backend per exchange — and, like the underlying network, it is
// lossy: a dropped datagram surfaces as an ErrUnreachable timeout on the
// active side, exactly the failure the protocol's self-healing tolerates.
//
// Incoming requests are handled on their own goroutines so one slow
// handler cannot stall the socket, bounded by Limits.MaxConns; a datagram
// arriving while every slot is busy is dropped and counted in
// Stats.AcceptRejects, the datagram analogue of refusing a connection.
type UDP struct {
	conn     *net.UDPConn
	handler  Handler
	limits   limitsBox
	apps     appHandlerBox
	stats    counters
	gate     *connGate
	wg       sync.WaitGroup // in-flight handler goroutines
	done     chan struct{}
	closeOne sync.Once
}

var (
	_ Transport     = (*UDP)(nil)
	_ StatsReporter = (*UDP)(nil)
	_ LimitsUpdater = (*UDP)(nil)
	_ AppCarrier    = (*UDP)(nil)
)

// datagramBufs recycles max-size receive buffers across exchanges; one
// datagram buffer per in-flight pull keeps the hot path allocation-free.
// The extra byte detects datagrams truncated at the limit.
var datagramBufs = sync.Pool{
	New: func() any {
		b := make([]byte, MaxDatagramSize+1)
		return &b
	},
}

// udpRequests recycles the decode state of incoming datagrams. A request
// is decoded synchronously on the serve loop but handled on its own
// goroutine, so each in-flight request owns its state until the handler
// goroutine returns it; the pool bounds steady-state allocation at zero
// without sharing scratch across concurrent handlers.
var udpRequests = sync.Pool{New: func() any { return new(udpRequest) }}

type udpRequest struct {
	descs   []Descriptor
	intern  Interner
	outBuf  []byte // response encode buffer, reused with the entry
	payload []byte // app payload copy: the receive buffer is reused before the handler runs
}

// udpDefaultTimeout bounds an exchange awaiting a response datagram when
// the caller's context has no earlier deadline. It is deliberately
// shorter than the TCP timeout: with no connection to establish, a
// response either arrives promptly or the datagram is gone.
const udpDefaultTimeout = 2 * time.Second

// ListenUDP starts serving datagrams on addr (e.g. "127.0.0.1:0") with h
// handling incoming exchanges, under the default Limits.
func ListenUDP(addr string, h Handler) (*UDP, error) {
	return ListenUDPLimits(addr, h, Limits{})
}

// ListenUDPLimits is ListenUDP with explicit transport hardening limits.
// Only Limits.MaxConns applies (it caps concurrent handler goroutines);
// datagrams have no connections to keep alive.
func ListenUDPLimits(addr string, h Handler, lim Limits) (*UDP, error) {
	if h == nil {
		return nil, errors.New("transport: nil handler")
	}
	if err := lim.fill(); err != nil {
		return nil, err
	}
	uaddr, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: resolve %s: %w", addr, err)
	}
	conn, err := net.ListenUDP("udp", uaddr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen udp %s: %w", addr, err)
	}
	t := &UDP{conn: conn, handler: h, done: make(chan struct{})}
	t.limits.store(lim)
	t.gate = newConnGate(lim.MaxConns, &t.stats.acceptRejects)
	go t.serve()
	return t, nil
}

// SetLimits implements LimitsUpdater: it validates lim and applies
// MaxConns (the concurrent-handler cap, the only field the datagram
// backend uses) to the live socket.
func (t *UDP) SetLimits(lim Limits) error {
	if err := lim.fill(); err != nil {
		return err
	}
	t.limits.store(lim)
	t.gate.setMax(lim.MaxConns)
	return nil
}

// Addr implements Transport.
func (t *UDP) Addr() string { return t.conn.LocalAddr().String() }

// TransportStats implements StatsReporter.
func (t *UDP) TransportStats() Stats { return t.stats.snapshot() }

func (t *UDP) serve() {
	defer close(t.done)
	// One extra byte detects datagrams truncated at the limit.
	buf := make([]byte, MaxDatagramSize+1)
	for {
		n, src, err := t.conn.ReadFromUDP(buf)
		if err != nil {
			return // socket closed
		}
		if n > MaxDatagramSize {
			t.stats.dropped.Add(1)
			continue
		}
		t.stats.noteRead(n)
		if isAppFrame(buf[:n]) {
			t.serveAppDatagram(buf[:n], src)
			continue
		}
		// Decode synchronously into a pooled request state: buf is free
		// for the next datagram, while the decoded request travels to its
		// handler goroutine owning its (pooled) descriptor storage.
		ur := udpRequests.Get().(*udpRequest)
		req, _, isReq, err := DecodeMessageInto(buf[:n], &ur.descs, &ur.intern)
		if err != nil || !isReq {
			udpRequests.Put(ur)
			t.stats.dropped.Add(1)
			continue
		}
		if !t.gate.tryAcquire() {
			udpRequests.Put(ur)
			continue // handler slots exhausted; counted as an accept reject
		}
		t.wg.Add(1)
		go func(req Request, src *net.UDPAddr, ur *udpRequest) {
			defer t.wg.Done()
			defer t.gate.release()
			defer udpRequests.Put(ur)
			t.handleDatagram(req, src, ur)
		}(req, src, ur)
	}
}

// serveAppDatagram routes one app-kind datagram: decode into pooled
// request state (copying the payload, since the receive buffer is reused
// for the next datagram) and hand it to the app handler on its own
// goroutine, under the same concurrency gate as gossip handlers.
func (t *UDP) serveAppDatagram(frame []byte, src *net.UDPAddr) {
	ur := udpRequests.Get().(*udpRequest)
	msg, isReq, err := DecodeAppMessage(frame, &ur.intern)
	if err != nil || !isReq {
		udpRequests.Put(ur)
		t.stats.dropped.Add(1)
		return
	}
	ur.payload = append(ur.payload[:0], msg.Payload...)
	msg.Payload = ur.payload
	if !t.gate.tryAcquire() {
		udpRequests.Put(ur)
		return // handler slots exhausted; counted as an accept reject
	}
	t.wg.Add(1)
	go func() {
		defer t.wg.Done()
		defer t.gate.release()
		defer udpRequests.Put(ur)
		t.handleAppDatagram(msg, src, ur)
	}()
}

// handleAppDatagram runs the app handler for one decoded message and
// writes the reply datagram when the message pulls one.
func (t *UDP) handleAppDatagram(msg AppMessage, src *net.UDPAddr, ur *udpRequest) {
	h := t.apps.load()
	if h == nil {
		t.stats.dropped.Add(1)
		return
	}
	reply, ok := h(msg)
	if !ok || !msg.WantReply {
		return
	}
	out, err := appendAppDatagram(ur.outBuf[:0], reply)
	if err == nil {
		ur.outBuf = out
	}
	if err != nil || len(out) > MaxDatagramSize {
		t.stats.dropped.Add(1)
		return
	}
	if _, err := t.conn.WriteToUDP(out, src); err != nil {
		t.stats.dropped.Add(1)
		return
	}
	t.stats.noteWrite(len(out))
}

// appendAppDatagram encodes an app reply without the TCP length prefix.
func appendAppDatagram(dst []byte, msg AppMessage) ([]byte, error) {
	return AppendAppMessage(dst, msg, true)
}

// SetAppHandler implements AppCarrier.
func (t *UDP) SetAppHandler(h AppHandler) { t.apps.store(h) }

// ExchangeApp implements AppCarrier: one app exchange per datagram pair,
// with the same connected-socket matching as Exchange.
func (t *UDP) ExchangeApp(ctx context.Context, addr string, msg AppMessage) (AppMessage, bool, error) {
	select {
	case <-t.done:
		return AppMessage{}, false, ErrClosed
	default:
	}
	if err := checkLinkFault(ctx, t.Addr(), addr); err != nil {
		return AppMessage{}, false, err
	}
	framep := frameBufs.Get().(*[]byte)
	defer frameBufs.Put(framep)
	frame, err := AppendAppMessage((*framep)[:0], msg, false)
	if err != nil {
		return AppMessage{}, false, err
	}
	*framep = frame[:0]
	if len(frame) > MaxDatagramSize {
		return AppMessage{}, false, fmt.Errorf("%w: %d bytes > %d", ErrOversized, len(frame), MaxDatagramSize)
	}
	deadline, hasDeadline := ctx.Deadline()
	if !hasDeadline {
		deadline = time.Now().Add(udpDefaultTimeout)
	}
	d := net.Dialer{Deadline: deadline}
	conn, err := d.DialContext(ctx, "udp", addr)
	if err != nil {
		return AppMessage{}, false, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	t.stats.dials.Add(1)
	defer conn.Close()
	_ = conn.SetDeadline(deadline)
	if _, err := conn.Write(frame); err != nil {
		return AppMessage{}, false, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	t.stats.noteWrite(len(frame))
	if !msg.WantReply {
		return AppMessage{}, false, nil
	}
	buf := datagramBufs.Get().(*[]byte)
	defer datagramBufs.Put(buf)
	n, err := conn.Read(*buf)
	if err != nil {
		t.stats.dropped.Add(1)
		return AppMessage{}, false, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	if n > MaxDatagramSize {
		t.stats.dropped.Add(1)
		return AppMessage{}, false, fmt.Errorf("%w: response %d bytes", ErrOversized, n)
	}
	t.stats.noteRead(n)
	reply, isReq, err := DecodeAppMessage((*buf)[:n], nil)
	if err != nil {
		t.stats.dropped.Add(1)
		return AppMessage{}, false, err
	}
	if isReq {
		t.stats.dropped.Add(1)
		return AppMessage{}, false, errors.New("transport: peer answered with an app request frame")
	}
	// The payload aliases the pooled datagram buffer; hand back an owned copy.
	reply.Payload = append([]byte(nil), reply.Payload...)
	return reply, true, nil
}

// handleDatagram runs the handler for one decoded request and writes the
// response datagram when the request pulls one. ur owns the request's
// descriptor storage and the response encode buffer.
func (t *UDP) handleDatagram(req Request, src *net.UDPAddr, ur *udpRequest) {
	resp, ok := t.handler(req)
	if !ok || !req.WantReply {
		return
	}
	out, err := AppendResponse(ur.outBuf[:0], resp)
	if err == nil {
		ur.outBuf = out
	}
	if err != nil || len(out) > MaxDatagramSize {
		// The wire has no error frames, so an unencodable or
		// oversized response can only be dropped and counted. This
		// node's view is the oversized one, and its own active
		// exchanges fail with ErrOversized, so the misconfiguration
		// is loud locally even though the puller just times out.
		t.stats.dropped.Add(1)
		return
	}
	if _, err := t.conn.WriteToUDP(out, src); err != nil {
		// The response is gone and the puller will time out; without a
		// counter move this failure mode is invisible to the exporter.
		t.stats.dropped.Add(1)
		return
	}
	t.stats.noteWrite(len(out))
}

// Exchange implements Transport. Each exchange uses a short-lived
// connected socket so the response datagram (if any) is matched to this
// exchange by the kernel, with no sequence numbers in the protocol.
func (t *UDP) Exchange(ctx context.Context, addr string, req Request) (Response, bool, error) {
	select {
	case <-t.done:
		return Response{}, false, ErrClosed
	default:
	}
	if err := checkLinkFault(ctx, t.Addr(), addr); err != nil {
		return Response{}, false, err
	}
	framep := frameBufs.Get().(*[]byte)
	defer frameBufs.Put(framep)
	frame, err := AppendRequest((*framep)[:0], req)
	if err != nil {
		return Response{}, false, err
	}
	*framep = frame[:0]
	if len(frame) > MaxDatagramSize {
		return Response{}, false, fmt.Errorf("%w: %d bytes > %d", ErrOversized, len(frame), MaxDatagramSize)
	}
	deadline, hasDeadline := ctx.Deadline()
	if !hasDeadline {
		deadline = time.Now().Add(udpDefaultTimeout)
	}
	d := net.Dialer{Deadline: deadline}
	conn, err := d.DialContext(ctx, "udp", addr)
	if err != nil {
		return Response{}, false, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	t.stats.dials.Add(1)
	defer conn.Close()
	_ = conn.SetDeadline(deadline)
	if _, err := conn.Write(frame); err != nil {
		return Response{}, false, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	t.stats.noteWrite(len(frame))
	if !req.WantReply {
		return Response{}, false, nil
	}
	buf := datagramBufs.Get().(*[]byte)
	defer datagramBufs.Put(buf)
	n, err := conn.Read(*buf)
	if err != nil {
		// Timeout: the request or response datagram was lost, or the peer
		// is gone. Indistinguishable by design.
		t.stats.dropped.Add(1)
		return Response{}, false, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	if n > MaxDatagramSize {
		t.stats.dropped.Add(1)
		return Response{}, false, fmt.Errorf("%w: response %d bytes", ErrOversized, n)
	}
	t.stats.noteRead(n)
	dec := respDecoders.Get().(*Decoder)
	defer respDecoders.Put(dec)
	_, resp, isReq, err := dec.Decode((*buf)[:n])
	if err != nil {
		t.stats.dropped.Add(1)
		return Response{}, false, err
	}
	if isReq {
		t.stats.dropped.Add(1)
		return Response{}, false, errors.New("transport: peer answered with a request frame")
	}
	// The decoded buffer aliases the pooled decoder; hand the caller an
	// owned copy (the addresses are interned and cost nothing to share).
	resp.Buffer = append([]Descriptor(nil), resp.Buffer...)
	return resp, true, nil
}

// Close implements Transport: it closes the socket and waits for the
// serve loop and in-flight handlers to drain. Close is idempotent.
func (t *UDP) Close() error {
	var err error
	t.closeOne.Do(func() { err = t.conn.Close() })
	<-t.done
	t.wg.Wait()
	return err
}
