package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync/atomic"
)

// Application payload frames let workloads (epidemic broadcast, push-pull
// aggregation) ride the same wire, connections and codec machinery as the
// gossip exchanges, distinguished by the kind byte:
//
//	byte    magic (0x9D)
//	byte    kind (3 = app request, 4 = app reply)
//	byte    flags (bit 0: WantReply, requests only)
//	u16     from-address length, followed by the bytes
//	u16     topic length, followed by the bytes
//	u32     payload length, followed by the bytes
//
// The from and topic strings obey MaxAddrLen like every wire string; the
// opaque payload is bounded by MaxAppPayload. Like the gossip format,
// unknown flag bits are rejected so every accepted frame re-encodes
// byte-identically.
const (
	kindApp      = 3
	kindAppReply = 4

	// MaxAppPayload bounds one application payload. It is far below
	// MaxFrameSize: workload messages are rumors and scalar aggregates,
	// not bulk transfer.
	MaxAppPayload = 1 << 20
)

// AppMessage is an application payload addressed to a workload engine by
// topic. Payload is opaque to the transport. On the passive side the
// payload aliases transport-owned storage and is only valid for the
// duration of the handler call, mirroring the Request.Buffer ownership
// contract; handlers that retain it must copy.
type AppMessage struct {
	From      string
	Topic     string
	Payload   []byte
	WantReply bool
}

// AppHandler processes one incoming application message on the passive
// side and returns the reply to send back when the message pulls one
// (WantReply set and ok true). Implementations must be safe for
// concurrent use.
type AppHandler func(msg AppMessage) (reply AppMessage, ok bool)

// AppCarrier is the optional capability of carrying application payloads
// alongside gossip exchanges. All real transports and the in-memory
// fabric implement it; callers discover it with a type assertion, the
// same pattern as StatsReporter and LimitsUpdater.
type AppCarrier interface {
	// SetAppHandler installs (or, with nil, removes) the handler for
	// incoming app messages. Messages arriving with no handler installed
	// are dropped.
	SetAppHandler(h AppHandler)
	// ExchangeApp delivers msg to addr and, when msg.WantReply is set,
	// waits for the peer's reply. ok reports whether a reply arrived.
	// Push-only delivery is best-effort, exactly like Exchange.
	ExchangeApp(ctx context.Context, addr string, msg AppMessage) (reply AppMessage, ok bool, err error)
}

// AppendAppMessage appends the encoded message to dst and returns the
// extended slice. reply selects the app-reply kind (replies never carry
// the WantReply flag).
func AppendAppMessage(dst []byte, msg AppMessage, reply bool) ([]byte, error) {
	if len(msg.From) > MaxAddrLen {
		return nil, fmt.Errorf("transport: from address %d bytes exceeds limit %d", len(msg.From), MaxAddrLen)
	}
	if len(msg.Topic) > MaxAddrLen {
		return nil, fmt.Errorf("transport: topic %d bytes exceeds limit %d", len(msg.Topic), MaxAddrLen)
	}
	if len(msg.Payload) > MaxAppPayload {
		return nil, fmt.Errorf("transport: payload %d bytes exceeds limit %d", len(msg.Payload), MaxAppPayload)
	}
	kind, flags := byte(kindApp), byte(0)
	if reply {
		kind = kindAppReply
	} else if msg.WantReply {
		flags = 1
	}
	size := 3 + 2 + len(msg.From) + 2 + len(msg.Topic) + 4 + len(msg.Payload)
	out := dst
	if need := len(out) + size; cap(out) < need {
		grown := make([]byte, len(out), need)
		copy(grown, out)
		out = grown
	}
	out = append(out, codecMagic, kind, flags)
	out = appendString(out, msg.From)
	out = appendString(out, msg.Topic)
	out = binary.BigEndian.AppendUint32(out, uint32(len(msg.Payload)))
	out = append(out, msg.Payload...)
	return out, nil
}

// DecodeAppMessage parses an app frame produced by AppendAppMessage.
// isRequest distinguishes the app-request kind from the app-reply kind.
// The returned payload aliases frame and is only valid while frame is; a
// non-nil interner deduplicates the from and topic strings.
func DecodeAppMessage(frame []byte, intern *Interner) (msg AppMessage, isRequest bool, err error) {
	r := reader{buf: frame, intern: intern}
	magic, err := r.byte()
	if err != nil {
		return msg, false, err
	}
	if magic != codecMagic {
		return msg, false, fmt.Errorf("transport: bad magic 0x%02X", magic)
	}
	kind, err := r.byte()
	if err != nil {
		return msg, false, err
	}
	flags, err := r.byte()
	if err != nil {
		return msg, false, err
	}
	from, err := r.str()
	if err != nil {
		return msg, false, err
	}
	topic, err := r.str()
	if err != nil {
		return msg, false, err
	}
	plen, err := r.u32()
	if err != nil {
		return msg, false, err
	}
	if plen > MaxAppPayload {
		return msg, false, fmt.Errorf("transport: payload length %d exceeds limit %d", plen, MaxAppPayload)
	}
	if r.rem() != int(plen) {
		return msg, false, fmt.Errorf("transport: payload length %d with %d bytes remaining", plen, r.rem())
	}
	payload := r.buf[r.pos:]
	msg = AppMessage{From: from, Topic: topic, Payload: payload}
	switch kind {
	case kindApp:
		if flags&^1 != 0 {
			return AppMessage{}, false, fmt.Errorf("transport: unknown app flags 0x%02X", flags)
		}
		msg.WantReply = flags&1 != 0
		return msg, true, nil
	case kindAppReply:
		if flags != 0 {
			return AppMessage{}, false, fmt.Errorf("transport: unknown app reply flags 0x%02X", flags)
		}
		return msg, false, nil
	default:
		return AppMessage{}, false, fmt.Errorf("transport: unknown app message kind %d", kind)
	}
}

// isAppFrame peeks at a raw frame's kind byte so serve loops can route it
// to the app path before the gossip decoder (which rejects app kinds).
func isAppFrame(frame []byte) bool {
	return len(frame) >= 2 && frame[0] == codecMagic &&
		(frame[1] == kindApp || frame[1] == kindAppReply)
}

// appHandlerBox holds an endpoint's current app handler, swappable while
// serve loops are live — the app-path analogue of limitsBox.
type appHandlerBox struct {
	v atomic.Pointer[AppHandler]
}

func (b *appHandlerBox) store(h AppHandler) { b.v.Store(&h) }

func (b *appHandlerBox) load() AppHandler {
	if p := b.v.Load(); p != nil {
		return *p
	}
	return nil
}

// appendAppFrame appends the length-prefixed encoding of msg to dst, the
// app analogue of appendRequestFrame/appendResponseFrame.
func appendAppFrame(dst []byte, msg AppMessage, reply bool) ([]byte, error) {
	start := len(dst)
	out, err := AppendAppMessage(append(dst, 0, 0, 0, 0), msg, reply)
	return finishFrame(out, start, err)
}

// handleAppFrame is the shared passive side of an app frame on the TCP
// transports: decode, run the app handler, and write the reply frame when
// the message pulls one. The return contract matches handleFrame; an app
// pull earns the connection's keep-alive budget exactly like a gossip
// pull.
func handleAppFrame(conn net.Conn, frame []byte, h AppHandler, stats *counters, cs *connScratch) (keep, pulled bool) {
	msg, isReq, err := DecodeAppMessage(frame, &cs.dec.intern)
	if err != nil || !isReq {
		stats.dropped.Add(1)
		return false, false // a corrupt stream cannot be resynchronised
	}
	if h == nil {
		// No workload attached; the payload is dropped and a pull
		// initiator times out — the same surface as a handler declining
		// a gossip exchange.
		stats.dropped.Add(1)
		return true, msg.WantReply
	}
	reply, ok := h(msg)
	// As with gossip responses, an unrequested reply frame would desync a
	// persistent stream; only answer actual pulls.
	if !ok || !msg.WantReply {
		return true, msg.WantReply
	}
	out, err := appendAppFrame(cs.outBuf[:0], reply, true)
	if err != nil {
		return false, true
	}
	cs.outBuf = out
	if _, err := conn.Write(out); err != nil {
		return false, true
	}
	stats.noteWrite(len(out))
	return true, true
}

// exchangeAppFrames is the shared active side of an app exchange on the
// TCP transports: write the length-prefixed frame and, when wantReply is
// set, read and decode the reply. The caller owns conn's lifecycle and
// deadlines; the returned message owns its payload.
func exchangeAppFrames(conn net.Conn, frame []byte, wantReply bool, addr string, stats *counters) (AppMessage, bool, error) {
	if _, err := conn.Write(frame); err != nil {
		return AppMessage{}, false, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	stats.noteWrite(len(frame))
	if !wantReply {
		return AppMessage{}, false, nil
	}
	bufp := frameBufs.Get().(*[]byte)
	defer frameBufs.Put(bufp)
	replyFrame, err := readFrameInto(conn, (*bufp)[:0])
	if err != nil {
		if errors.Is(err, errFrameTooLarge) {
			stats.dropped.Add(1)
		}
		return AppMessage{}, false, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	*bufp = replyFrame[:0]
	stats.noteRead(len(replyFrame) + frameHeaderSize)
	msg, isReq, err := DecodeAppMessage(replyFrame, nil)
	if err != nil {
		stats.dropped.Add(1)
		return AppMessage{}, false, err
	}
	if isReq {
		stats.dropped.Add(1)
		return AppMessage{}, false, fmt.Errorf("transport: peer answered with an app request frame")
	}
	// The payload aliases the pooled frame buffer; hand back an owned copy.
	msg.Payload = append([]byte(nil), msg.Payload...)
	return msg, true, nil
}
