package transport

import (
	"bytes"
	"context"
	"sync"
	"testing"
	"time"
)

func TestAppMessageRoundTrip(t *testing.T) {
	cases := []struct {
		name  string
		msg   AppMessage
		reply bool
	}{
		{"push", AppMessage{From: "a:1", Topic: "broadcast", Payload: []byte("rumor")}, false},
		{"pull", AppMessage{From: "a:1", Topic: "aggregate", Payload: []byte{0, 1, 2, 3, 4, 5, 6, 7, 8}, WantReply: true}, false},
		{"reply", AppMessage{From: "b:2", Topic: "aggregate", Payload: []byte{9}}, true},
		{"empty payload", AppMessage{From: "c:3", Topic: "t"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			frame, err := AppendAppMessage(nil, tc.msg, tc.reply)
			if err != nil {
				t.Fatal(err)
			}
			if !isAppFrame(frame) {
				t.Fatal("encoded app frame not recognised by isAppFrame")
			}
			got, isReq, err := DecodeAppMessage(frame, nil)
			if err != nil {
				t.Fatal(err)
			}
			if isReq == tc.reply {
				t.Fatalf("isRequest = %v for reply=%v", isReq, tc.reply)
			}
			if got.From != tc.msg.From || got.Topic != tc.msg.Topic || !bytes.Equal(got.Payload, tc.msg.Payload) {
				t.Fatalf("round trip mismatch: %+v vs %+v", got, tc.msg)
			}
			if !tc.reply && got.WantReply != tc.msg.WantReply {
				t.Fatalf("WantReply = %v, want %v", got.WantReply, tc.msg.WantReply)
			}
		})
	}
}

func TestDecodeAppMessageRejects(t *testing.T) {
	valid, err := AppendAppMessage(nil, AppMessage{From: "a", Topic: "t", Payload: []byte("x")}, false)
	if err != nil {
		t.Fatal(err)
	}
	bad := map[string][]byte{
		"empty":         {},
		"bad magic":     {0x00, kindApp, 0},
		"gossip kind":   {codecMagic, kindRequest, 0},
		"truncated":     valid[:len(valid)-1],
		"trailing":      append(append([]byte(nil), valid...), 0xFF),
		"unknown flags": {codecMagic, kindApp, 0x80, 0, 0, 0, 0, 0, 0, 0, 0},
	}
	for name, frame := range bad {
		if _, _, err := DecodeAppMessage(frame, nil); err == nil {
			t.Errorf("%s: decode accepted %x", name, frame)
		}
	}
}

// echoAppHandler replies with the payload reversed, proving the handler
// actually ran on the passive side.
func echoAppHandler(self string) AppHandler {
	return func(msg AppMessage) (AppMessage, bool) {
		rev := make([]byte, len(msg.Payload))
		for i, b := range msg.Payload {
			rev[len(rev)-1-i] = b
		}
		return AppMessage{From: self, Topic: msg.Topic, Payload: rev}, true
	}
}

// appCarrierRoundTrip exercises pull, push and no-handler delivery over
// any AppCarrier pair whose passive side listens at serverAddr.
func appCarrierRoundTrip(t *testing.T, client AppCarrier, serverAddr string, received *appSink) {
	t.Helper()
	ctx := context.Background()
	reply, ok, err := client.ExchangeApp(ctx, serverAddr,
		AppMessage{From: "client", Topic: "echo", Payload: []byte("abc"), WantReply: true})
	if err != nil || !ok {
		t.Fatalf("app pull: %v ok=%v", err, ok)
	}
	if reply.From != "server" || reply.Topic != "echo" || string(reply.Payload) != "cba" {
		t.Fatalf("app reply = %+v", reply)
	}
	if _, ok, err := client.ExchangeApp(ctx, serverAddr,
		AppMessage{From: "client", Topic: "push", Payload: []byte("fire-and-forget")}); err != nil || ok {
		t.Fatalf("app push: %v ok=%v", err, ok)
	}
	if got := received.wait(t, "push"); string(got) != "fire-and-forget" {
		t.Fatalf("push payload = %q", got)
	}
}

// appSink records pushed payloads by topic for the round-trip helper.
type appSink struct {
	mu   sync.Mutex
	got  map[string][]byte
	cond chan struct{}
}

func newAppSink() *appSink {
	return &appSink{got: make(map[string][]byte), cond: make(chan struct{}, 16)}
}

func (s *appSink) note(msg AppMessage) {
	s.mu.Lock()
	s.got[msg.Topic] = append([]byte(nil), msg.Payload...)
	s.mu.Unlock()
	select {
	case s.cond <- struct{}{}:
	default:
	}
}

func (s *appSink) wait(t *testing.T, topic string) []byte {
	t.Helper()
	deadline := time.After(2 * time.Second)
	for {
		s.mu.Lock()
		got, ok := s.got[topic]
		s.mu.Unlock()
		if ok {
			return got
		}
		select {
		case <-s.cond:
		case <-deadline:
			t.Fatalf("no app message on topic %q", topic)
		}
	}
}

// sinkingEcho combines the echo handler (for pulls) with the sink (for
// pushes) on one endpoint.
func sinkingEcho(sink *appSink) AppHandler {
	echo := echoAppHandler("server")
	return func(msg AppMessage) (AppMessage, bool) {
		if !msg.WantReply {
			sink.note(msg)
			return AppMessage{}, false
		}
		return echo(msg)
	}
}

func TestTCPAppExchange(t *testing.T) {
	noop := func(Request) (Response, bool) { return Response{}, false }
	server, err := ListenTCP("127.0.0.1:0", noop)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	sink := newAppSink()
	server.SetAppHandler(sinkingEcho(sink))

	client, err := ListenTCP("127.0.0.1:0", noop)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	appCarrierRoundTrip(t, client, server.Addr(), sink)
}

func TestPooledTCPAppExchange(t *testing.T) {
	noop := func(Request) (Response, bool) { return Response{}, false }
	server, err := ListenPooledTCP("127.0.0.1:0", noop, PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	sink := newAppSink()
	server.SetAppHandler(sinkingEcho(sink))

	client, err := ListenPooledTCP("127.0.0.1:0", noop, PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	appCarrierRoundTrip(t, client, server.Addr(), sink)

	// Gossip and app frames interleave on the same pooled connections.
	resp, ok, err := client.Exchange(context.Background(), server.Addr(),
		Request{From: client.Addr(), WantReply: false})
	if err != nil {
		t.Fatalf("gossip push after app frames: %v ok=%v resp=%+v", err, ok, resp)
	}
	reply, ok, err := client.ExchangeApp(context.Background(), server.Addr(),
		AppMessage{From: client.Addr(), Topic: "echo", Payload: []byte("xy"), WantReply: true})
	if err != nil || !ok || string(reply.Payload) != "yx" {
		t.Fatalf("app pull after gossip push: %v ok=%v reply=%+v", err, ok, reply)
	}
}

func TestUDPAppExchange(t *testing.T) {
	noop := func(Request) (Response, bool) { return Response{}, false }
	server, err := ListenUDP("127.0.0.1:0", noop)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	sink := newAppSink()
	server.SetAppHandler(sinkingEcho(sink))

	client, err := ListenUDP("127.0.0.1:0", noop)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	appCarrierRoundTrip(t, client, server.Addr(), sink)
}

func TestFabricAppExchange(t *testing.T) {
	fab := NewFabric()
	noop := func(Request) (Response, bool) { return Response{}, false }
	serverT, err := fab.Endpoint("server", noop)
	if err != nil {
		t.Fatal(err)
	}
	sink := newAppSink()
	server := serverT.(AppCarrier)
	server.SetAppHandler(sinkingEcho(sink))
	clientT, err := fab.Endpoint("client", noop)
	if err != nil {
		t.Fatal(err)
	}
	appCarrierRoundTrip(t, clientT.(AppCarrier), "server", sink)
}

func TestAppFrameNoHandlerDropped(t *testing.T) {
	noop := func(Request) (Response, bool) { return Response{}, false }
	server, err := ListenTCP("127.0.0.1:0", noop)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := ListenTCP("127.0.0.1:0", noop)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// A push into an endpoint with no app handler is silently dropped;
	// the gossip path must keep working on the same listener.
	if _, ok, err := client.ExchangeApp(context.Background(), server.Addr(),
		AppMessage{From: "client", Topic: "void", Payload: []byte("lost")}); err != nil || ok {
		t.Fatalf("push to handlerless endpoint: %v ok=%v", err, ok)
	}
	deadline := time.Now().Add(2 * time.Second)
	for server.TransportStats().DatagramsDropped == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dropped app frame never counted")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func FuzzDecodeAppMessage(f *testing.F) {
	push, err := AppendAppMessage(nil, AppMessage{From: "10.0.0.1:9", Topic: "broadcast", Payload: []byte("r")}, false)
	if err != nil {
		f.Fatal(err)
	}
	pull, err := AppendAppMessage(nil, AppMessage{From: "a", Topic: "aggregate", Payload: bytes.Repeat([]byte{7}, 9), WantReply: true}, false)
	if err != nil {
		f.Fatal(err)
	}
	reply, err := AppendAppMessage(nil, AppMessage{From: "b", Topic: "aggregate", Payload: []byte{1, 2}}, true)
	if err != nil {
		f.Fatal(err)
	}
	for _, seed := range [][]byte{push, pull, reply, push[:3], {codecMagic, kindApp, 0}, {}} {
		f.Add(seed)
	}
	var in Interner
	f.Fuzz(func(t *testing.T, frame []byte) {
		msg, isReq, err := DecodeAppMessage(frame, nil)
		imsg, iisReq, ierr := DecodeAppMessage(frame, &in)
		if (err == nil) != (ierr == nil) {
			t.Fatalf("interned decode disagrees on error: %v vs %v", err, ierr)
		}
		if err != nil {
			return
		}
		if iisReq != isReq || imsg.From != msg.From || imsg.Topic != msg.Topic || !bytes.Equal(imsg.Payload, msg.Payload) {
			t.Fatalf("interned decode diverges: %+v vs %+v", imsg, msg)
		}
		// The format is canonical: accepted frames re-encode byte-identically.
		reencoded, err := AppendAppMessage(nil, msg, !isReq)
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		if !bytes.Equal(reencoded, frame) {
			t.Fatalf("re-encoding differs:\n in: %x\nout: %x", frame, reencoded)
		}
	})
}
