package transport

import (
	"math"
	"sync/atomic"
	"time"
)

// LatencyBounds are the upper bounds, in seconds, of the exchange-latency
// histogram buckets. They span 100µs (loopback fabric exchanges) to 10s
// (an exchange at the default timeout), roughly 2.5x apart — the classic
// Prometheus-style exponential ladder. Observations above the last bound
// land in the implicit +Inf bucket (counted in Count only).
var LatencyBounds = latencyBounds[:]

var latencyBounds = [...]float64{
	0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005,
	0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10,
}

// LatencyHistogram is a fixed-bucket histogram of exchange round-trip
// times, safe for concurrent Observe and Snapshot. The zero value is
// ready to use; it is cheap enough to sit on every runtime node's hot
// path (one atomic add per bucket walk, no locks, no allocation).
type LatencyHistogram struct {
	buckets [numLatencyBuckets]atomic.Uint64
	count   atomic.Uint64
	sumNs   atomic.Uint64
}

// numLatencyBuckets tracks the bound ladder at compile time, so the
// atomic array can never fall out of step with LatencyBounds.
const numLatencyBuckets = len(latencyBounds)

// Observe records one exchange round-trip time.
func (h *LatencyHistogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNs.Add(uint64(d))
	sec := d.Seconds()
	for i, bound := range LatencyBounds {
		if sec <= bound {
			h.buckets[i].Add(1)
			return
		}
	}
	// Above every bound: only the implicit +Inf bucket (Count) holds it.
}

// Snapshot returns a point-in-time copy of the histogram. Counters are
// read individually, so a snapshot taken concurrently with Observe calls
// is approximate to within the in-flight observations — the same contract
// as Stats.
func (h *LatencyHistogram) Snapshot() LatencySnapshot {
	s := LatencySnapshot{
		Count:      h.count.Load(),
		SumSeconds: float64(h.sumNs.Load()) / float64(time.Second),
		Buckets:    make([]uint64, len(LatencyBounds)),
	}
	for i := range LatencyBounds {
		s.Buckets[i] = h.buckets[i].Load()
	}
	return s
}

// LatencySnapshot is a point-in-time copy of a LatencyHistogram, in the
// JSON shape the fleet agent serves: per-bucket counts aligned with
// LatencyBounds, plus the total count and sum.
type LatencySnapshot struct {
	// Count is the total number of observations, including those above
	// the last bucket bound.
	Count uint64 `json:"count"`
	// SumSeconds is the sum of all observed latencies.
	SumSeconds float64 `json:"sum_seconds"`
	// Buckets[i] counts observations <= LatencyBounds[i] and > the
	// previous bound (per-bucket, not cumulative).
	Buckets []uint64 `json:"buckets"`
}

// Cumulative returns the cumulative (Prometheus "le") counts aligned with
// LatencyBounds. The implicit +Inf bucket is Count.
func (s LatencySnapshot) Cumulative() []uint64 {
	out := make([]uint64, len(s.Buckets))
	var acc uint64
	for i, b := range s.Buckets {
		acc += b
		out[i] = acc
	}
	return out
}

// Quantile estimates the q-quantile (0 < q < 1) in seconds by linear
// interpolation within the bucket that holds it, the standard
// histogram_quantile estimate. It returns 0 when the histogram is empty,
// and the last bound when the quantile falls in the +Inf bucket.
func (s LatencySnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var acc uint64
	lower := 0.0
	for i, b := range s.Buckets {
		if float64(acc+b) >= rank && b > 0 {
			within := (rank - float64(acc)) / float64(b)
			return lower + within*(LatencyBounds[i]-lower)
		}
		acc += b
		lower = LatencyBounds[i]
	}
	return LatencyBounds[len(LatencyBounds)-1]
}

// Add accumulates another snapshot into s, for fleet-wide totals.
// Snapshots with mismatched bucket layouts (from a build with different
// LatencyBounds) are merged on the shared prefix.
func (s *LatencySnapshot) Add(o LatencySnapshot) {
	s.Count += o.Count
	s.SumSeconds += o.SumSeconds
	if len(s.Buckets) < len(o.Buckets) {
		grown := make([]uint64, len(o.Buckets))
		copy(grown, s.Buckets)
		s.Buckets = grown
	}
	for i := range o.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
}
