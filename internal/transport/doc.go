// Package transport provides the message-passing substrate for the
// asynchronous peer sampling runtime: an abstract Transport interface, an
// in-memory fabric with configurable latency, loss and partitions (for
// tests and single-process simulations), and three real-network backends
// sharing one compact binary codec — dial-per-exchange TCP (the simple
// baseline), connection-pooled TCP (persistent per-peer connections with
// idle eviction; the production default), and UDP (one exchange per
// datagram pair; cheapest, lossy by nature). Real backends are named in a
// registry ("tcp", "tcp-pooled", "udp") so daemons can select one at the
// command line, and they export wire-level counters via StatsReporter.
//
// # Hardening against hostile networks
//
// The paper evaluates its protocols under catastrophic failure; this
// package makes the transport underneath survive adversarial load, since
// sampling-layer guarantees only hold while the listener still has file
// descriptors and goroutines to serve legitimate peers with. Every real
// backend takes a Limits:
//
//   - Limits.MaxConns caps how many accepted connections a listener
//     serves concurrently. Excess connections are closed on accept and
//     counted in Stats.AcceptRejects — backpressure instead of one
//     goroutine per accept, so a connection flood saturates a counter,
//     not the process. On UDP the cap bounds concurrent handler
//     goroutines instead (datagrams have no connections).
//   - Served TCP connections live under a read budget: a short window
//     for the opening frame (slowloris eviction), then a keep-alive that
//     the connection earns — the full Limits.KeepAlive once it has
//     initiated a pull, and only the shrunken Limits.PushOnlyKeepAlive
//     while it has merely pushed, because a peer that consumes a serve
//     slot without ever asking for data is what a resource-holding
//     attack looks like. Budget expiries are counted in
//     Stats.KeepAliveEvictions.
//
// The keep-alive schedule interlocks with the connection pool: pooled
// initiators abandon idle connections within PoolConfig.IdleTimeout, and
// the default passive budgets exceed it, so the serving side never closes
// a connection a well-behaved peer might still write a push into. See
// Limits.KeepAlive for the exact contract when tuning below the defaults,
// and internal/scenario's "hostile" experiment for the live attack drill
// that exercises all of this against a real cluster.
package transport
