package transport

import (
	"reflect"
	"testing"
)

// Stats.Named must enumerate every field of Stats: each field set to a
// distinct value must surface under exactly one name, and the pair count
// must match the field count. Adding a counter to Stats without extending
// Named fails here, which is the whole point of the enumeration.
func TestStatsNamedIsExhaustive(t *testing.T) {
	var s Stats
	v := reflect.ValueOf(&s).Elem()
	tp := v.Type()
	for i := 0; i < v.NumField(); i++ {
		if tp.Field(i).Type.Kind() != reflect.Uint64 {
			t.Fatalf("Stats.%s is %s, not uint64; update Named and this test",
				tp.Field(i).Name, tp.Field(i).Type)
		}
		v.Field(i).SetUint(uint64(i) + 1)
	}

	// Add must accumulate every field: zero + s == s.
	var sum Stats
	sum.Add(s)
	if sum != s {
		t.Errorf("Add dropped fields: %+v != %+v", sum, s)
	}

	named := s.Named()
	if len(named) != v.NumField() {
		t.Fatalf("Named() has %d entries, Stats has %d fields", len(named), v.NumField())
	}
	seenName := map[string]bool{}
	seenValue := map[uint64]bool{}
	for _, c := range named {
		if c.Name == "" || seenName[c.Name] {
			t.Errorf("duplicate or empty counter name %q", c.Name)
		}
		seenName[c.Name] = true
		if c.Value == 0 || c.Value > uint64(v.NumField()) || seenValue[c.Value] {
			t.Errorf("counter %q carries value %d: not a distinct field value", c.Name, c.Value)
		}
		seenValue[c.Value] = true
	}
}

func TestCountersSnapshotMatchesNamed(t *testing.T) {
	var c counters
	c.dials.Add(3)
	c.noteWrite(10)
	c.noteRead(20)
	c.dropped.Add(2)
	c.acceptRejects.Add(4)
	c.kaEvictions.Add(5)
	c.reuses.Add(6)

	want := map[string]uint64{
		"dials": 3, "reuses": 6, "bytes_out": 10, "bytes_in": 20,
		"frames_out": 1, "frames_in": 1, "datagrams_dropped": 2,
		"accept_rejects": 4, "keepalive_evictions": 5,
	}
	for _, nc := range c.snapshot().Named() {
		if nc.Value != want[nc.Name] {
			t.Errorf("%s = %d want %d", nc.Name, nc.Value, want[nc.Name])
		}
	}
}
