package transport

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Hardening defaults. They bound resource use per listener without
// affecting well-behaved gossip traffic: a healthy cluster peer holds at
// most PoolConfig.MaxIdlePerPeer connections into a node, so even large
// clusters sit far below DefaultMaxConns.
const (
	// DefaultMaxConns caps the connections a listener serves concurrently.
	DefaultMaxConns = 1024
	// DefaultKeepAlive is the passive read budget between frames for
	// connections that have initiated at least one pull. It is twice the
	// default pool idle timeout — the invariant that lets a pooled
	// initiator abandon a connection before the passive side closes it
	// (see Limits.KeepAlive).
	DefaultKeepAlive = 2 * DefaultIdleTimeout
	// DefaultPushOnlyKeepAlive is the shrunken budget for connections that
	// have never initiated a pull. It still exceeds the pool idle timeout
	// (so legitimate push-only pooled peers keep their delivery guarantee)
	// but reclaims fds from hostile connections 25% sooner.
	DefaultPushOnlyKeepAlive = 3 * DefaultIdleTimeout / 2
)

// Limits bounds the resources a listener devotes to the network, so that
// connection floods and slowloris-style idle peers exhaust neither file
// descriptors nor goroutines before the gossip layer sees a frame. The
// zero value selects the defaults above. All real backends accept a
// Limits: the TCP backends apply every field, the UDP backend applies
// MaxConns to concurrent handler dispatch (datagrams have no keep-alive).
type Limits struct {
	// MaxConns caps how many accepted connections the listener serves
	// concurrently. A connection arriving at the cap is closed immediately
	// and counted in Stats.AcceptRejects — backpressure instead of an
	// unbounded goroutine per accept. Zero selects DefaultMaxConns;
	// negative means unlimited (the pre-hardening behaviour).
	//
	// On the UDP backend MaxConns instead caps concurrent handler
	// goroutines: a datagram arriving while all slots are busy is dropped
	// and counted in Stats.AcceptRejects.
	MaxConns int
	// KeepAlive is the read budget between frames for served connections
	// that have initiated at least one pull (WantReply) exchange. A
	// connection idle past its budget is closed and counted in
	// Stats.KeepAliveEvictions.
	//
	// Protocol note: pooled initiators evict their own idle connections
	// within PoolConfig.IdleTimeout (at most DefaultIdleTimeout). Keeping
	// KeepAlive above that is what guarantees the initiating side always
	// abandons a connection before this side closes it — closing first
	// would let a peer write a push into a dead socket and lose it
	// silently. Setting KeepAlive at or below DefaultIdleTimeout trades
	// that guarantee for faster fd reclamation; gossip tolerates the
	// resulting rare push loss (delivery is best-effort by contract), but
	// prefer lowering PoolConfig.IdleTimeout cluster-wide in step. Zero
	// selects DefaultKeepAlive.
	KeepAlive time.Duration
	// PushOnlyKeepAlive is the shrunken budget for connections that have
	// never initiated a pull. Peers that only ever push are exactly what a
	// resource-holding attack looks like from the passive side, so they
	// earn a shorter budget; a single pull upgrades the connection to the
	// full KeepAlive. Zero derives DefaultPushOnlyKeepAlive, scaled
	// proportionally when KeepAlive is non-default. Must not exceed
	// KeepAlive.
	PushOnlyKeepAlive time.Duration
	// FirstFrameTimeout bounds how long an accepted connection may sit
	// silent before its opening frame — the slowloris window. Expiry
	// counts in Stats.KeepAliveEvictions. Zero selects the smaller of the
	// dial timeout (5s) and PushOnlyKeepAlive.
	FirstFrameTimeout time.Duration
}

// fill validates lim and resolves zero values to defaults.
func (lim *Limits) fill() error {
	if lim.MaxConns == 0 {
		lim.MaxConns = DefaultMaxConns
	}
	switch {
	case lim.KeepAlive < 0 || lim.PushOnlyKeepAlive < 0 || lim.FirstFrameTimeout < 0:
		return fmt.Errorf("transport: negative keep-alive limit %+v", *lim)
	case lim.KeepAlive == 0:
		lim.KeepAlive = DefaultKeepAlive
	case lim.KeepAlive < time.Millisecond:
		return fmt.Errorf("transport: keep-alive %v is below the 1ms minimum", lim.KeepAlive)
	}
	if lim.PushOnlyKeepAlive == 0 {
		// Scale the 3/4 default ratio with a non-default KeepAlive so the
		// shrink survives aggressive tunings.
		lim.PushOnlyKeepAlive = 3 * lim.KeepAlive / 4
	}
	if lim.PushOnlyKeepAlive > lim.KeepAlive {
		return fmt.Errorf("transport: push-only keep-alive %v exceeds keep-alive %v",
			lim.PushOnlyKeepAlive, lim.KeepAlive)
	}
	if lim.FirstFrameTimeout == 0 {
		lim.FirstFrameTimeout = tcpDefaultTimeout
		if lim.PushOnlyKeepAlive < lim.FirstFrameTimeout {
			lim.FirstFrameTimeout = lim.PushOnlyKeepAlive
		}
	}
	return nil
}

// budget returns the read deadline budget for the next frame of a served
// connection: the slowloris window before the opening frame, then the
// keep-alive matching what the connection has earned.
func (lim *Limits) budget(first, pulled bool) time.Duration {
	switch {
	case first:
		return lim.FirstFrameTimeout
	case pulled:
		return lim.KeepAlive
	default:
		return lim.PushOnlyKeepAlive
	}
}

// LimitsUpdater is implemented by transports whose hardening limits can
// be replaced on a live listener. All real backends implement it: the
// new limits govern the connection cap immediately (connections already
// over a lowered cap finish serving; only new arrivals are refused) and
// the keep-alive budgets from each served connection's next frame.
type LimitsUpdater interface {
	// SetLimits validates lim (zero fields select defaults, exactly as at
	// construction) and applies it to the running listener.
	SetLimits(lim Limits) error
}

// limitsBox holds a listener's current Limits behind an atomic pointer
// so SetLimits can swap them while served connections read the budget
// schedule frame by frame. The stored value is always filled (validated,
// defaults resolved) and never mutated after store.
type limitsBox struct {
	p atomic.Pointer[Limits]
}

// store publishes an already-filled Limits.
func (b *limitsBox) store(lim Limits) { b.p.Store(&lim) }

// load returns the current Limits; the caller must not mutate them.
func (b *limitsBox) load() *Limits { return b.p.Load() }

// connGate enforces Limits.MaxConns on a listener's accept path. Slots
// are acquired without blocking: a connection beyond the cap is the
// caller's to close (and count), which keeps the accept loop draining the
// kernel backlog instead of letting a flood park there and starve
// legitimate dials behind it. The cap is resizable (SetLimits): a
// counter under a mutex rather than a channel semaphore, so lowering the
// cap below the current occupancy simply refuses new arrivals until
// enough in-flight connections drain.
type connGate struct {
	rejects *atomic.Uint64

	mu     sync.Mutex
	active int
	max    int // <= 0 means unlimited
}

func newConnGate(maxConns int, rejects *atomic.Uint64) *connGate {
	return &connGate{rejects: rejects, max: maxConns}
}

// tryAcquire claims a serve slot, reporting false (and counting the
// reject) when the listener is at capacity.
func (g *connGate) tryAcquire() bool {
	g.mu.Lock()
	if g.max > 0 && g.active >= g.max {
		g.mu.Unlock()
		g.rejects.Add(1)
		return false
	}
	g.active++
	g.mu.Unlock()
	return true
}

// release returns a slot claimed by tryAcquire.
func (g *connGate) release() {
	g.mu.Lock()
	g.active--
	g.mu.Unlock()
}

// setMax replaces the connection cap for future arrivals.
func (g *connGate) setMax(maxConns int) {
	g.mu.Lock()
	g.max = maxConns
	g.mu.Unlock()
}

// acceptLoop is the shared hardened accept path of the TCP backends: it
// admits connections through the gate and serves each admitted one on its
// own goroutine, closing over-cap connections immediately. It returns
// when the listener closes.
func acceptLoop(l net.Listener, gate *connGate, wg *sync.WaitGroup, serveConn func(net.Conn)) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return // listener closed
		}
		if !gate.tryAcquire() {
			conn.Close()
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer gate.release()
			serveConn(conn)
		}()
	}
}
