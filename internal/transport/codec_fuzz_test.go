package transport

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// fuzzSeeds returns hand-built hostile frames seeding both fuzz targets:
// valid messages, truncations, bad magic, lying length fields and
// oversized counts. The fuzzer mutates outward from these.
func fuzzSeeds(t testing.TB) [][]byte {
	t.Helper()
	req, err := EncodeRequest(Request{
		From:      "10.0.0.1:9000",
		WantReply: true,
		Buffer: []Descriptor{
			{Addr: "10.0.0.2:9000", Hop: 0},
			{Addr: "10.0.0.3:9000", Hop: 7},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := EncodeResponse(Response{
		From:   "peer-a",
		Buffer: []Descriptor{{Addr: "peer-b", Hop: 2}},
	})
	if err != nil {
		t.Fatal(err)
	}
	seeds := [][]byte{
		req,
		resp,
		req[:len(req)-1],         // truncated mid-descriptor
		req[:3],                  // header only
		{},                       // empty frame
		{0x00, kindRequest, 0},   // bad magic
		{codecMagic, 9, 0, 0, 0}, // unknown kind
	}
	// Descriptor count far beyond what the frame carries.
	overCount := append([]byte(nil), resp...)
	binary.BigEndian.PutUint16(overCount[3+2+6:], MaxDescriptors+1)
	seeds = append(seeds, overCount)
	// String length field pointing past the end of the frame.
	lyingStr := append([]byte(nil), resp...)
	binary.BigEndian.PutUint16(lyingStr[3:], 0xFFFF)
	seeds = append(seeds, lyingStr)
	// A count the frame cannot satisfy (claims 100, carries 1).
	shortBuf := append([]byte(nil), resp...)
	binary.BigEndian.PutUint16(shortBuf[3+2+6:], 100)
	return append(seeds, shortBuf)
}

// FuzzDecodeMessage throws arbitrary frames at the decoder. The decoder
// must never panic; on accepted frames the message must re-encode into
// exactly the input (the format is canonical: one valid encoding per
// message), and the pooled decode path must agree with the allocating one.
func FuzzDecodeMessage(f *testing.F) {
	for _, seed := range fuzzSeeds(f) {
		f.Add(seed)
	}
	var dec Decoder
	f.Fuzz(func(t *testing.T, frame []byte) {
		req, resp, isReq, err := DecodeMessage(frame)
		preq, presp, pisReq, perr := dec.Decode(frame)
		if (err == nil) != (perr == nil) {
			t.Fatalf("pooled decode disagrees on error: %v vs %v", err, perr)
		}
		if err != nil {
			return
		}
		if pisReq != isReq {
			t.Fatal("pooled decode disagrees on message kind")
		}
		var reencoded []byte
		if isReq {
			if preq.From != req.From || preq.WantReply != req.WantReply || !equalDescs(preq.Buffer, req.Buffer) {
				t.Fatalf("pooled request decode diverges: %+v vs %+v", preq, req)
			}
			reencoded, err = EncodeRequest(req)
		} else {
			if presp.From != resp.From || !equalDescs(presp.Buffer, resp.Buffer) {
				t.Fatalf("pooled response decode diverges: %+v vs %+v", presp, resp)
			}
			reencoded, err = EncodeResponse(resp)
		}
		if err != nil {
			t.Fatalf("accepted frame does not re-encode: %v", err)
		}
		if !bytes.Equal(reencoded, frame) {
			t.Fatalf("re-encoding differs from accepted frame:\n in: %x\nout: %x", frame, reencoded)
		}
	})
}

// FuzzCodecRoundTrip builds messages from fuzzed parts and checks
// encode/decode is lossless. Addresses are carved out of raw fuzz bytes,
// so they cover non-UTF-8, embedded NULs and length extremes.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add("node-1", true, []byte("peerApeerBpeerC"), uint8(5), int32(3))
	f.Add("", false, []byte{}, uint8(0), int32(0))
	f.Add("x", true, bytes.Repeat([]byte{0}, 1024), uint8(255), int32(-1))
	f.Fuzz(func(t *testing.T, from string, wantReply bool, addrBytes []byte, chunk uint8, hop int32) {
		// Slice addrBytes into chunk-sized addresses (chunk 0 → no buffer).
		var buffer []Descriptor
		if chunk > 0 {
			for off := 0; off < len(addrBytes); off += int(chunk) {
				end := off + int(chunk)
				if end > len(addrBytes) {
					end = len(addrBytes)
				}
				buffer = append(buffer, Descriptor{Addr: string(addrBytes[off:end]), Hop: hop + int32(off)})
			}
		}
		req := Request{From: from, WantReply: wantReply, Buffer: buffer}
		frame, err := EncodeRequest(req)
		if err != nil {
			// Only over-limit inputs may be rejected, and the limits are
			// part of the contract — verify the rejection is justified.
			if len(from) <= MaxAddrLen && len(buffer) <= MaxDescriptors {
				for _, d := range buffer {
					if len(d.Addr) > MaxAddrLen {
						return
					}
				}
				t.Fatalf("in-limit request rejected: %v", err)
			}
			return
		}
		got, _, isReq, err := DecodeMessage(frame)
		if err != nil || !isReq {
			t.Fatalf("round trip decode failed: isReq=%v err=%v", isReq, err)
		}
		if got.From != req.From || got.WantReply != req.WantReply || !equalDescs(got.Buffer, req.Buffer) {
			t.Fatalf("round trip mismatch: %+v vs %+v", got, req)
		}
	})
}

func equalDescs(a, b []Descriptor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
