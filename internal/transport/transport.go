package transport

import (
	"context"
	"errors"

	"peersampling/internal/core"
)

// Request is a gossip exchange request between runtime nodes, addressed by
// opaque string addresses ("host:port" for TCP, arbitrary names in
// memory).
type Request = core.Request[string]

// Response is the reply to a pull or pushpull Request.
type Response = core.Response[string]

// Descriptor is the string-addressed view descriptor carried on the wire.
type Descriptor = core.Descriptor[string]

// Handler processes one incoming exchange request on the passive side and
// returns the response to send back, if any. Implementations must be safe
// for concurrent use.
//
// Buffer ownership: req.Buffer belongs to the transport and is only valid
// for the duration of the call — the pooled codec path reuses its backing
// storage for the next frame. Handlers that retain descriptors must copy
// them; merging into a view (which copies survivors) is safe, as is
// echoing the buffer in the returned response, which every transport
// encodes before reusing the request's storage.
type Handler func(req Request) (resp Response, ok bool)

// Transport lets a node exchange gossip messages with peers and receive
// exchanges initiated by them (delivered to the Handler supplied at
// construction).
type Transport interface {
	// Addr returns the address peers can use to reach this endpoint.
	Addr() string
	// Exchange delivers req to addr and, when req.WantReply is set,
	// waits for the peer's response. ok reports whether a response
	// arrived. Exchange respects ctx cancellation and deadlines.
	//
	// Delivery of push-only requests (WantReply false) is best-effort on
	// every real backend: with no reply to await, a request that reaches
	// the network but dies with the peer (restart, crash, datagram loss)
	// is reported as success. The gossip protocols tolerate such loss by
	// design; callers needing confirmation must use a pull-enabled
	// exchange.
	Exchange(ctx context.Context, addr string, req Request) (resp Response, ok bool, err error)
	// Close releases the endpoint; subsequent exchanges fail and no
	// further requests are delivered.
	Close() error
}

// Factory builds a transport endpoint whose incoming requests are served
// by h. The runtime wires a node and its endpoint together through this.
type Factory func(h Handler) (Transport, error)

// Errors shared by transport implementations.
var (
	// ErrClosed is returned after Close.
	ErrClosed = errors.New("transport: endpoint closed")
	// ErrUnreachable is returned when the destination does not exist or
	// cannot be contacted.
	ErrUnreachable = errors.New("transport: peer unreachable")
	// ErrDropped is returned when the fabric's loss model discarded the
	// message.
	ErrDropped = errors.New("transport: message dropped")
)
