package transport

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"sync/atomic"
	"time"
)

// Per-link fault injection: the transport half of internal/chaos. A
// FaultSet holds directed src→dst rules (cut the link, drop a fraction
// of messages, add latency) and every registry backend consults the
// process-global set on its active exchange path, so a chaos executor
// can partition, degrade or delay live tcp / tcp-pooled / udp traffic
// without the transports knowing anything about plans or timelines. The
// in-memory Fabric honours the same rule shape via Fabric.SetFaults.

// FaultRule is one directed per-link fault. From and To are transport
// addresses as the dialing side sees them (the sender's own Addr and the
// address it dials); "*" matches any address. The zero rule matches
// nothing and injects nothing.
type FaultRule struct {
	// From matches the sender's own address; "*" matches every sender.
	From string `json:"from"`
	// To matches the dialed address; "*" matches every destination.
	To string `json:"to"`
	// Cut makes matching exchanges fail immediately with ErrUnreachable —
	// a directed partition edge.
	Cut bool `json:"cut,omitempty"`
	// Loss drops matching exchanges with this probability (0..1], failing
	// them with ErrDropped.
	Loss float64 `json:"loss,omitempty"`
	// Latency delays matching exchanges before the dial.
	Latency time.Duration `json:"latency_ns,omitempty"`
}

// matches reports whether the rule applies to a message from→to.
func (r FaultRule) matches(from, to string) bool {
	return (r.From == "*" || r.From == from) && (r.To == "*" || r.To == to)
}

// FaultInjector decides the fate of one outbound message. Inject returns
// the latency to add before the message proceeds, or a non-nil error when
// the message must fail instead (ErrUnreachable for a cut link, ErrDropped
// for injected loss). Implementations must be safe for concurrent use.
type FaultInjector interface {
	Inject(from, to string) (latency time.Duration, err error)
}

// FaultSet is the standard FaultInjector: a swappable table of FaultRules
// with a seeded RNG for loss decisions. The zero value is invalid; use
// NewFaultSet. When several rules match one message, any Cut wins, and
// the largest Loss and Latency apply.
type FaultSet struct {
	active atomic.Int32 // rule count, for a lock-free empty fast path

	mu    sync.Mutex
	rules []FaultRule
	rng   *rand.Rand
}

// NewFaultSet returns an empty fault set whose loss decisions draw from
// the given seed.
func NewFaultSet(seed uint64) *FaultSet {
	return &FaultSet{rng: rand.New(rand.NewPCG(seed, 0xC4A05))}
}

// SetRules atomically replaces the whole rule table (nil heals every
// fault). Rules are copied; the caller keeps its slice.
func (f *FaultSet) SetRules(rules []FaultRule) {
	cp := append([]FaultRule(nil), rules...)
	f.mu.Lock()
	f.rules = cp
	f.mu.Unlock()
	f.active.Store(int32(len(cp)))
}

// Reseed restarts the loss RNG, making a replayed plan's drop decisions
// reproducible.
func (f *FaultSet) Reseed(seed uint64) {
	f.mu.Lock()
	f.rng = rand.New(rand.NewPCG(seed, 0xC4A05))
	f.mu.Unlock()
}

// Rules returns a copy of the current rule table.
func (f *FaultSet) Rules() []FaultRule {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]FaultRule(nil), f.rules...)
}

// ActiveRules reports how many rules are installed.
func (f *FaultSet) ActiveRules() int { return int(f.active.Load()) }

// Inject implements FaultInjector.
func (f *FaultSet) Inject(from, to string) (time.Duration, error) {
	if f.active.Load() == 0 {
		return 0, nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	var latency time.Duration
	var loss float64
	for _, r := range f.rules {
		if !r.matches(from, to) {
			continue
		}
		if r.Cut {
			return 0, fmt.Errorf("%w: %s: link cut by fault rule", ErrUnreachable, to)
		}
		if r.Loss > loss {
			loss = r.Loss
		}
		if r.Latency > latency {
			latency = r.Latency
		}
	}
	if loss > 0 && f.rng.Float64() < loss {
		return 0, fmt.Errorf("%w: fault rule loss", ErrDropped)
	}
	return latency, nil
}

// defaultFaults is the process-global fault set every registry backend
// consults. One table per process is exactly the deployment shape: a
// forked psnode holds its own, and an inproc fleet's members share one
// keyed by their distinct addresses.
var defaultFaults = NewFaultSet(1)

// Faults returns the process-global fault set — the hook a chaos
// executor (or a daemon's control agent) installs rules into.
func Faults() *FaultSet { return defaultFaults }

// checkLinkFault applies the process-global fault set to one outbound
// message on the active side: it sleeps out any injected latency
// (honouring ctx) and returns the injected failure, if any. The empty
// table costs one atomic load.
func checkLinkFault(ctx context.Context, from, to string) error {
	d, err := defaultFaults.Inject(from, to)
	if err != nil {
		return err
	}
	if d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	return nil
}
