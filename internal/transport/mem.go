package transport

import (
	"context"
	"fmt"
	"math/rand/v2"
	"sync"
	"time"
)

// Fabric is an in-memory network connecting any number of endpoints in one
// process. It supports deterministic message loss, artificial latency and
// named partitions, which makes it the failure-injection substrate for
// runtime tests and single-process demos.
type Fabric struct {
	mu        sync.RWMutex
	endpoints map[string]*memEndpoint
	latency   time.Duration
	lossRate  float64
	rng       *rand.Rand
	// partition maps an address to its partition ID; endpoints in
	// different partitions cannot exchange messages. The zero ID is the
	// default shared partition.
	partition map[string]int
	// faults generalizes the global latency/loss/partition knobs above to
	// directed per-link rules — the same FaultRule shape the real
	// transports consult (see SetFaults).
	faults FaultInjector
}

// FabricOption configures a Fabric.
type FabricOption func(*Fabric)

// WithLatency makes every exchange sleep for d before delivery.
func WithLatency(d time.Duration) FabricOption {
	return func(f *Fabric) { f.latency = d }
}

// WithLoss drops each exchange with probability p (deterministically from
// the fabric's seed).
func WithLoss(p float64, seed uint64) FabricOption {
	return func(f *Fabric) {
		f.lossRate = p
		f.rng = rand.New(rand.NewPCG(seed, 0xFAB))
	}
}

// WithFaults installs a per-link fault injector (usually a *FaultSet):
// directed cut/loss/latency rules applied on top of the fabric's global
// latency, loss and partition models.
func WithFaults(fi FaultInjector) FabricOption {
	return func(f *Fabric) { f.faults = fi }
}

// NewFabric returns an empty in-memory network.
func NewFabric(opts ...FabricOption) *Fabric {
	f := &Fabric{
		endpoints: make(map[string]*memEndpoint),
		partition: make(map[string]int),
	}
	for _, o := range opts {
		o(f)
	}
	return f
}

// Endpoint registers a new address served by h and returns its transport.
// Registering an address twice is an error.
func (f *Fabric) Endpoint(addr string, h Handler) (Transport, error) {
	if h == nil {
		return nil, fmt.Errorf("transport: nil handler for %q", addr)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, dup := f.endpoints[addr]; dup {
		return nil, fmt.Errorf("transport: address %q already registered", addr)
	}
	ep := &memEndpoint{fabric: f, addr: addr, handler: h}
	f.endpoints[addr] = ep
	return ep, nil
}

// Factory returns a Factory that allocates sequentially numbered endpoint
// addresses with the given prefix ("prefix-0", "prefix-1", ...).
func (f *Fabric) Factory(prefix string) Factory {
	var next int
	var mu sync.Mutex
	return func(h Handler) (Transport, error) {
		mu.Lock()
		addr := fmt.Sprintf("%s-%d", prefix, next)
		next++
		mu.Unlock()
		return f.Endpoint(addr, h)
	}
}

// SetPartition assigns addr to a partition; endpoints in different
// partitions are mutually unreachable until reassigned. Partition 0 is the
// default shared network.
func (f *Fabric) SetPartition(addr string, id int) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.partition[addr] = id
}

// HealPartitions returns every endpoint to the shared partition.
func (f *Fabric) HealPartitions() {
	f.mu.Lock()
	defer f.mu.Unlock()
	clear(f.partition)
}

// SetFaults installs (or, with nil, removes) a per-link fault injector
// at runtime — the Fabric form of the chaos hook the real transports
// read from the process-global Faults set.
func (f *Fabric) SetFaults(fi FaultInjector) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.faults = fi
}

// Remove unregisters an address (simulating a crashed node whose peers
// still hold its descriptor).
func (f *Fabric) Remove(addr string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.endpoints, addr)
}

// lookup resolves a destination endpoint for a sender, applying the
// partition, loss and per-link fault models. It returns the endpoint and
// any injected extra latency, or a reason error when undeliverable.
func (f *Fabric) lookup(from, to string) (*memEndpoint, time.Duration, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	dst, ok := f.endpoints[to]
	if !ok || dst.isClosed() {
		return nil, 0, fmt.Errorf("%w: %s", ErrUnreachable, to)
	}
	if f.partition[from] != f.partition[to] {
		return nil, 0, fmt.Errorf("%w: %s is partitioned away", ErrUnreachable, to)
	}
	if f.lossRate > 0 && f.rng.Float64() < f.lossRate {
		return nil, 0, ErrDropped
	}
	var extra time.Duration
	if f.faults != nil {
		d, err := f.faults.Inject(from, to)
		if err != nil {
			return nil, 0, err
		}
		extra = d
	}
	return dst, extra, nil
}

// memEndpoint implements Transport over a Fabric.
type memEndpoint struct {
	fabric  *Fabric
	addr    string
	handler Handler
	apps    appHandlerBox

	mu     sync.Mutex
	closed bool
}

var (
	_ Transport  = (*memEndpoint)(nil)
	_ AppCarrier = (*memEndpoint)(nil)
)

// Addr implements Transport.
func (e *memEndpoint) Addr() string { return e.addr }

func (e *memEndpoint) isClosed() bool {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.closed
}

// Exchange implements Transport.
func (e *memEndpoint) Exchange(ctx context.Context, addr string, req Request) (Response, bool, error) {
	if e.isClosed() {
		return Response{}, false, ErrClosed
	}
	dst, extra, err := e.fabric.lookup(e.addr, addr)
	if err != nil {
		return Response{}, false, err
	}
	if d := e.fabric.latency + extra; d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return Response{}, false, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return Response{}, false, err
	}
	// Deliver a deep copy: in-process peers must not share buffer memory,
	// exactly as a real network would not.
	resp, ok := dst.handler(cloneRequest(req))
	if !ok {
		return Response{}, false, nil
	}
	return cloneResponse(resp), true, nil
}

// SetAppHandler implements AppCarrier.
func (e *memEndpoint) SetAppHandler(h AppHandler) { e.apps.store(h) }

// ExchangeApp implements AppCarrier. It applies the same latency, loss
// and partition models as Exchange; a destination with no app handler
// swallows the payload (a pull reports ok=false), matching the real
// transports where such frames are dropped.
func (e *memEndpoint) ExchangeApp(ctx context.Context, addr string, msg AppMessage) (AppMessage, bool, error) {
	if e.isClosed() {
		return AppMessage{}, false, ErrClosed
	}
	dst, extra, err := e.fabric.lookup(e.addr, addr)
	if err != nil {
		return AppMessage{}, false, err
	}
	if d := e.fabric.latency + extra; d > 0 {
		timer := time.NewTimer(d)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return AppMessage{}, false, ctx.Err()
		}
	}
	if err := ctx.Err(); err != nil {
		return AppMessage{}, false, err
	}
	h := dst.apps.load()
	if h == nil {
		return AppMessage{}, false, nil
	}
	// Deliver a deep copy of the payload, exactly as a real network would.
	in := msg
	in.Payload = append([]byte(nil), msg.Payload...)
	reply, ok := h(in)
	if !ok || !msg.WantReply {
		return AppMessage{}, false, nil
	}
	reply.Payload = append([]byte(nil), reply.Payload...)
	reply.WantReply = false
	return reply, true, nil
}

// Close implements Transport.
func (e *memEndpoint) Close() error {
	e.mu.Lock()
	e.closed = true
	e.mu.Unlock()
	e.fabric.Remove(e.addr)
	return nil
}

func cloneRequest(req Request) Request {
	out := req
	out.Buffer = append([]Descriptor(nil), req.Buffer...)
	return out
}

func cloneResponse(resp Response) Response {
	out := resp
	out.Buffer = append([]Descriptor(nil), resp.Buffer...)
	return out
}
