package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

func echoHandler(self string) Handler {
	return func(req Request) (Response, bool) {
		if !req.WantReply {
			return Response{}, false
		}
		return Response{From: self, Buffer: req.Buffer}, true
	}
}

func TestFabricExchange(t *testing.T) {
	f := NewFabric()
	a, err := f.Endpoint("a", echoHandler("a"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Endpoint("b", echoHandler("b")); err != nil {
		t.Fatal(err)
	}
	req := Request{From: "a", WantReply: true, Buffer: []Descriptor{{Addr: "x", Hop: 1}}}
	resp, ok, err := a.Exchange(context.Background(), "b", req)
	if err != nil || !ok {
		t.Fatalf("exchange: %v ok=%v", err, ok)
	}
	if resp.From != "b" || len(resp.Buffer) != 1 || resp.Buffer[0].Addr != "x" {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestFabricPushOnlyNoReply(t *testing.T) {
	f := NewFabric()
	a, _ := f.Endpoint("a", echoHandler("a"))
	if _, err := f.Endpoint("b", echoHandler("b")); err != nil {
		t.Fatal(err)
	}
	_, ok, err := a.Exchange(context.Background(), "b", Request{From: "a", WantReply: false})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("push-only exchange produced a reply")
	}
}

func TestFabricUnreachable(t *testing.T) {
	f := NewFabric()
	a, _ := f.Endpoint("a", echoHandler("a"))
	_, _, err := a.Exchange(context.Background(), "ghost", Request{From: "a"})
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v want ErrUnreachable", err)
	}
}

func TestFabricDuplicateAddress(t *testing.T) {
	f := NewFabric()
	if _, err := f.Endpoint("a", echoHandler("a")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Endpoint("a", echoHandler("a")); err == nil {
		t.Error("duplicate address accepted")
	}
	if _, err := f.Endpoint("b", nil); err == nil {
		t.Error("nil handler accepted")
	}
}

func TestFabricClose(t *testing.T) {
	f := NewFabric()
	a, _ := f.Endpoint("a", echoHandler("a"))
	b, _ := f.Endpoint("b", echoHandler("b"))
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if _, _, err := a.Exchange(context.Background(), "b", Request{From: "a", WantReply: true}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("exchange with closed endpoint: %v want ErrUnreachable", err)
	}
	if _, _, err := b.Exchange(context.Background(), "a", Request{From: "b"}); !errors.Is(err, ErrClosed) {
		t.Errorf("exchange from closed endpoint: %v want ErrClosed", err)
	}
	// The address becomes reusable after Close.
	if _, err := f.Endpoint("b", echoHandler("b")); err != nil {
		t.Errorf("re-register after close: %v", err)
	}
}

func TestFabricLoss(t *testing.T) {
	f := NewFabric(WithLoss(1.0, 7))
	a, _ := f.Endpoint("a", echoHandler("a"))
	if _, err := f.Endpoint("b", echoHandler("b")); err != nil {
		t.Fatal(err)
	}
	_, _, err := a.Exchange(context.Background(), "b", Request{From: "a", WantReply: true})
	if !errors.Is(err, ErrDropped) {
		t.Errorf("err = %v want ErrDropped", err)
	}
}

func TestFabricPartition(t *testing.T) {
	f := NewFabric()
	a, _ := f.Endpoint("a", echoHandler("a"))
	if _, err := f.Endpoint("b", echoHandler("b")); err != nil {
		t.Fatal(err)
	}
	f.SetPartition("b", 1)
	if _, _, err := a.Exchange(context.Background(), "b", Request{From: "a", WantReply: true}); !errors.Is(err, ErrUnreachable) {
		t.Errorf("partitioned exchange: %v want ErrUnreachable", err)
	}
	f.HealPartitions()
	if _, ok, err := a.Exchange(context.Background(), "b", Request{From: "a", WantReply: true}); err != nil || !ok {
		t.Errorf("healed exchange: %v ok=%v", err, ok)
	}
}

func TestFabricLatencyAndContext(t *testing.T) {
	f := NewFabric(WithLatency(50 * time.Millisecond))
	a, _ := f.Endpoint("a", echoHandler("a"))
	if _, err := f.Endpoint("b", echoHandler("b")); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, ok, err := a.Exchange(context.Background(), "b", Request{From: "a", WantReply: true}); err != nil || !ok {
		t.Fatalf("exchange: %v", err)
	}
	if elapsed := time.Since(start); elapsed < 45*time.Millisecond {
		t.Errorf("latency not applied: %v", elapsed)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, _, err := a.Exchange(ctx, "b", Request{From: "a", WantReply: true}); !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("err = %v want DeadlineExceeded", err)
	}
}

func TestFabricDeliversCopies(t *testing.T) {
	var captured Request
	f := NewFabric()
	a, _ := f.Endpoint("a", echoHandler("a"))
	_, err := f.Endpoint("b", func(req Request) (Response, bool) {
		captured = req
		return Response{From: "b"}, true
	})
	if err != nil {
		t.Fatal(err)
	}
	buf := []Descriptor{{Addr: "x", Hop: 1}}
	if _, _, err := a.Exchange(context.Background(), "b", Request{From: "a", WantReply: true, Buffer: buf}); err != nil {
		t.Fatal(err)
	}
	buf[0].Hop = 99
	if captured.Buffer[0].Hop != 1 {
		t.Error("fabric shared buffer memory between sender and receiver")
	}
}

func TestFabricFactory(t *testing.T) {
	f := NewFabric()
	factory := f.Factory("node")
	a, err := factory(echoHandler("?"))
	if err != nil {
		t.Fatal(err)
	}
	b, err := factory(echoHandler("?"))
	if err != nil {
		t.Fatal(err)
	}
	if a.Addr() != "node-0" || b.Addr() != "node-1" {
		t.Errorf("factory addresses = %q, %q", a.Addr(), b.Addr())
	}
}
