package transport

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestLatencyHistogramObserveAndSnapshot(t *testing.T) {
	var h LatencyHistogram
	h.Observe(200 * time.Microsecond) // bucket le=0.00025
	h.Observe(200 * time.Microsecond)
	h.Observe(30 * time.Millisecond) // bucket le=0.05
	h.Observe(time.Minute)           // above every bound: +Inf only

	s := h.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d want 4", s.Count)
	}
	wantSum := 2*0.0002 + 0.03 + 60.0
	if math.Abs(s.SumSeconds-wantSum) > 1e-9 {
		t.Errorf("SumSeconds = %v want %v", s.SumSeconds, wantSum)
	}
	var inBuckets uint64
	for _, b := range s.Buckets {
		inBuckets += b
	}
	if inBuckets != 3 {
		t.Errorf("bucketed observations = %d want 3 (the minute lives in +Inf)", inBuckets)
	}
	cum := s.Cumulative()
	if cum[len(cum)-1] != 3 {
		t.Errorf("cumulative tail = %d want 3", cum[len(cum)-1])
	}
	if cum[1] != 2 {
		t.Errorf("cumulative le=0.25ms = %d want 2", cum[1])
	}
}

func TestLatencySnapshotQuantile(t *testing.T) {
	var h LatencyHistogram
	if q := h.Snapshot().Quantile(0.5); q != 0 {
		t.Errorf("empty histogram p50 = %v want 0", q)
	}
	// 100 observations at ~2ms: p50 and p99 must land inside the
	// (0.001, 0.0025] bucket.
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Millisecond)
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.99} {
		got := s.Quantile(q)
		if got <= 0.001 || got > 0.0025 {
			t.Errorf("Quantile(%v) = %v, want within (0.001, 0.0025]", q, got)
		}
	}
	// Everything in +Inf clamps to the last bound.
	var inf LatencyHistogram
	inf.Observe(time.Hour)
	if got := inf.Snapshot().Quantile(0.5); got != LatencyBounds[len(LatencyBounds)-1] {
		t.Errorf("+Inf quantile = %v want last bound", got)
	}
	// Out-of-range q is clamped, not a panic.
	if got := s.Quantile(2); got <= 0 {
		t.Errorf("Quantile(2) = %v", got)
	}
	if got := s.Quantile(-1); got < 0 {
		t.Errorf("Quantile(-1) = %v", got)
	}
}

func TestLatencySnapshotAdd(t *testing.T) {
	var a, b LatencyHistogram
	a.Observe(time.Millisecond)
	b.Observe(time.Second)
	sa, sb := a.Snapshot(), b.Snapshot()
	sa.Add(sb)
	if sa.Count != 2 {
		t.Errorf("Count = %d want 2", sa.Count)
	}
	if math.Abs(sa.SumSeconds-1.001) > 1e-9 {
		t.Errorf("SumSeconds = %v want 1.001", sa.SumSeconds)
	}
	var total uint64
	for _, c := range sa.Buckets {
		total += c
	}
	if total != 2 {
		t.Errorf("bucketed = %d want 2", total)
	}
	// Merging into a zero snapshot grows its bucket slice.
	var zero LatencySnapshot
	zero.Add(sa)
	if zero.Count != 2 || len(zero.Buckets) != len(LatencyBounds) {
		t.Errorf("zero.Add: %+v", zero)
	}
}

// Observe and Snapshot must be safe to race; run under -race in CI.
func TestLatencyHistogramConcurrent(t *testing.T) {
	var h LatencyHistogram
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				h.Observe(time.Duration(i) * time.Microsecond)
				if i%100 == 0 {
					_ = h.Snapshot()
				}
			}
		}()
	}
	wg.Wait()
	if got := h.Snapshot().Count; got != 4000 {
		t.Errorf("Count = %d want 4000", got)
	}
}
