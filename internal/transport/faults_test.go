package transport

import (
	"context"
	"errors"
	"testing"
	"time"
)

func TestFaultSetRuleSemantics(t *testing.T) {
	f := NewFaultSet(7)
	f.SetRules([]FaultRule{
		{From: "a", To: "b", Cut: true},
		{From: "*", To: "c", Latency: 5 * time.Millisecond},
		{From: "a", To: "*", Latency: 2 * time.Millisecond},
	})
	if got := f.ActiveRules(); got != 3 {
		t.Fatalf("ActiveRules = %d, want 3", got)
	}

	if _, err := f.Inject("a", "b"); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("cut a->b: err = %v, want ErrUnreachable", err)
	}
	// Direction matters: the reverse edge is untouched (b->a matches only
	// no rule).
	if d, err := f.Inject("b", "a"); err != nil || d != 0 {
		t.Fatalf("b->a: d=%v err=%v, want clean", d, err)
	}
	// Two latency rules match a->c; the larger applies.
	if d, err := f.Inject("a", "c"); err != nil || d != 5*time.Millisecond {
		t.Fatalf("a->c: d=%v err=%v, want 5ms", d, err)
	}
	if d, err := f.Inject("a", "z"); err != nil || d != 2*time.Millisecond {
		t.Fatalf("a->z: d=%v err=%v, want 2ms", d, err)
	}

	f.SetRules(nil)
	if got := f.ActiveRules(); got != 0 {
		t.Fatalf("ActiveRules after heal = %d, want 0", got)
	}
	if _, err := f.Inject("a", "b"); err != nil {
		t.Fatalf("after heal: %v", err)
	}
}

func TestFaultSetLossIsSeededAndBounded(t *testing.T) {
	f := NewFaultSet(42)
	f.SetRules([]FaultRule{{From: "*", To: "*", Loss: 0.5}})
	dropped := 0
	for i := 0; i < 1000; i++ {
		if _, err := f.Inject("x", "y"); errors.Is(err, ErrDropped) {
			dropped++
		} else if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
	}
	if dropped < 400 || dropped > 600 {
		t.Fatalf("dropped %d/1000 at loss 0.5", dropped)
	}
	// Same seed, same decisions: the replay property chaos plans rely on.
	g := NewFaultSet(1)
	g.Reseed(42)
	g.SetRules([]FaultRule{{From: "*", To: "*", Loss: 0.5}})
	redropped := 0
	for i := 0; i < 1000; i++ {
		if _, err := g.Inject("x", "y"); errors.Is(err, ErrDropped) {
			redropped++
		}
	}
	if redropped != dropped {
		t.Fatalf("reseeded replay dropped %d, first run dropped %d", redropped, dropped)
	}
}

// TestGlobalFaultsCutLiveTCP proves the registry backends consult the
// process-global fault set on the dial path: a directed cut rule fails
// the exchange before any socket work, and healing restores traffic.
func TestGlobalFaultsCutLiveTCP(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0", func(req Request) (Response, bool) {
		return Response{From: "server"}, true
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := ListenTCP("127.0.0.1:0", func(Request) (Response, bool) { return Response{}, false })
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	Faults().SetRules([]FaultRule{{From: client.Addr(), To: server.Addr(), Cut: true}})
	defer Faults().SetRules(nil)

	req := Request{From: client.Addr(), WantReply: true}
	if _, _, err := client.Exchange(context.Background(), server.Addr(), req); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("cut exchange: err = %v, want ErrUnreachable", err)
	}
	// The passive side is a different from-address: the directed rule must
	// not block the server's own active exchanges to the client.
	if _, ok, err := server.Exchange(context.Background(), client.Addr(), Request{From: server.Addr()}); err != nil || ok {
		t.Fatalf("reverse push exchange: %v ok=%v", err, ok)
	}

	Faults().SetRules(nil)
	if _, ok, err := client.Exchange(context.Background(), server.Addr(), req); err != nil || !ok {
		t.Fatalf("healed exchange: %v ok=%v", err, ok)
	}
}

// TestGlobalFaultLatencyHonoursContext: injected latency sleeps on the
// exchange path but a cancelled context cuts the sleep short.
func TestGlobalFaultLatencyHonoursContext(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0", func(req Request) (Response, bool) {
		return Response{From: "server"}, true
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := ListenTCP("127.0.0.1:0", func(Request) (Response, bool) { return Response{}, false })
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	Faults().SetRules([]FaultRule{{From: client.Addr(), To: server.Addr(), Latency: 30 * time.Millisecond}})
	defer Faults().SetRules(nil)

	start := time.Now()
	if _, ok, err := client.Exchange(context.Background(), server.Addr(), Request{From: client.Addr(), WantReply: true}); err != nil || !ok {
		t.Fatalf("delayed exchange: %v ok=%v", err, ok)
	}
	if took := time.Since(start); took < 30*time.Millisecond {
		t.Fatalf("exchange took %v, want >= 30ms of injected latency", took)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	if _, _, err := client.Exchange(ctx, server.Addr(), Request{From: client.Addr(), WantReply: true}); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("cancelled delayed exchange: err = %v, want deadline exceeded", err)
	}
}

// TestFabricPerLinkFaults: the in-memory fabric honours the same rule
// shape through SetFaults.
func TestFabricPerLinkFaults(t *testing.T) {
	fab := NewFabric()
	echo := func(req Request) (Response, bool) { return Response{From: "echo"}, true }
	a, err := fab.Endpoint("a", echo)
	if err != nil {
		t.Fatal(err)
	}
	b, err := fab.Endpoint("b", echo)
	if err != nil {
		t.Fatal(err)
	}

	fs := NewFaultSet(3)
	fs.SetRules([]FaultRule{{From: "a", To: "b", Cut: true}})
	fab.SetFaults(fs)

	if _, _, err := a.Exchange(context.Background(), "b", Request{From: "a", WantReply: true}); !errors.Is(err, ErrUnreachable) {
		t.Fatalf("fabric cut a->b: err = %v, want ErrUnreachable", err)
	}
	if _, ok, err := b.Exchange(context.Background(), "a", Request{From: "b", WantReply: true}); err != nil || !ok {
		t.Fatalf("fabric b->a: %v ok=%v", err, ok)
	}

	fab.SetFaults(nil)
	if _, ok, err := a.Exchange(context.Background(), "b", Request{From: "a", WantReply: true}); err != nil || !ok {
		t.Fatalf("fabric healed a->b: %v ok=%v", err, ok)
	}
}
