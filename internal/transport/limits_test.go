package transport

import (
	"context"
	"io"
	"net"
	"sync"
	"testing"
	"time"
)

func echoLimits(req Request) (Response, bool) {
	if !req.WantReply {
		return Response{}, false
	}
	return Response{From: "server", Buffer: req.Buffer}, true
}

func TestLimitsFillDefaults(t *testing.T) {
	var lim Limits
	if err := lim.fill(); err != nil {
		t.Fatal(err)
	}
	if lim.MaxConns != DefaultMaxConns {
		t.Fatalf("MaxConns = %d, want %d", lim.MaxConns, DefaultMaxConns)
	}
	if lim.KeepAlive != DefaultKeepAlive {
		t.Fatalf("KeepAlive = %v, want %v", lim.KeepAlive, DefaultKeepAlive)
	}
	if lim.PushOnlyKeepAlive != DefaultPushOnlyKeepAlive {
		t.Fatalf("PushOnlyKeepAlive = %v, want %v", lim.PushOnlyKeepAlive, DefaultPushOnlyKeepAlive)
	}
	if lim.FirstFrameTimeout != tcpDefaultTimeout {
		t.Fatalf("FirstFrameTimeout = %v, want %v", lim.FirstFrameTimeout, tcpDefaultTimeout)
	}
}

func TestLimitsFillRejectsInvalid(t *testing.T) {
	for _, lim := range []Limits{
		{KeepAlive: -time.Second},
		{PushOnlyKeepAlive: -time.Second},
		{FirstFrameTimeout: -time.Second},
		{KeepAlive: time.Microsecond},
		{KeepAlive: time.Second, PushOnlyKeepAlive: 2 * time.Second},
	} {
		bad := lim
		if err := bad.fill(); err == nil {
			t.Errorf("fill(%+v) accepted invalid limits", lim)
		}
	}
}

func TestLimitsFirstFrameFollowsShortKeepAlive(t *testing.T) {
	lim := Limits{KeepAlive: 100 * time.Millisecond}
	if err := lim.fill(); err != nil {
		t.Fatal(err)
	}
	if lim.PushOnlyKeepAlive != 75*time.Millisecond {
		t.Fatalf("PushOnlyKeepAlive = %v, want 75ms", lim.PushOnlyKeepAlive)
	}
	if lim.FirstFrameTimeout != lim.PushOnlyKeepAlive {
		t.Fatalf("FirstFrameTimeout = %v, want the push-only budget %v",
			lim.FirstFrameTimeout, lim.PushOnlyKeepAlive)
	}
}

// TestTCPConnectionFloodRejected floods a capped listener with raw idle
// connections and checks that conns beyond the cap are closed immediately
// and counted, while an admitted legitimate exchange still succeeds once
// slots free up.
func TestTCPConnectionFloodRejected(t *testing.T) {
	lim := Limits{MaxConns: 4, KeepAlive: 200 * time.Millisecond}
	server, err := ListenTCPLimits("127.0.0.1:0", echoLimits, lim)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	// Hold many silent connections open; only MaxConns can be served.
	const flood = 32
	conns := make([]net.Conn, 0, flood)
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < flood; i++ {
		c, err := net.Dial("tcp", server.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	// Rejected connections are closed by the listener: reads on them hit
	// EOF quickly, while admitted ones stay open until the slowloris
	// window expires. Wait until the counters show the cap held.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := server.TransportStats(); st.AcceptRejects > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no accept rejects after flood: %+v", server.TransportStats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// The admitted flood conns never send a frame, so the slowloris window
	// (here: the push-only budget, 150ms) evicts them and frees slots.
	for {
		if st := server.TransportStats(); st.KeepAliveEvictions >= uint64(lim.MaxConns) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("flood conns not evicted: %+v", server.TransportStats())
		}
		time.Sleep(5 * time.Millisecond)
	}

	// With slots reclaimed, a real exchange must succeed.
	client, err := ListenTCP("127.0.0.1:0", echoLimits)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	req := Request{From: client.Addr(), WantReply: true, Buffer: []Descriptor{{Addr: "x", Hop: 1}}}
	var lastErr error
	for time.Now().Before(deadline) {
		if _, ok, err := client.Exchange(context.Background(), server.Addr(), req); err == nil && ok {
			return
		} else {
			lastErr = err
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("exchange never succeeded after flood drained: %v", lastErr)
}

// TestTCPUnlimitedConnsAdmitsEverything checks the negative-MaxConns
// escape hatch (the pre-hardening behaviour).
func TestTCPUnlimitedConnsAdmitsEverything(t *testing.T) {
	server, err := ListenTCPLimits("127.0.0.1:0", echoLimits, Limits{MaxConns: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	var conns []net.Conn
	defer func() {
		for _, c := range conns {
			c.Close()
		}
	}()
	for i := 0; i < 16; i++ {
		c, err := net.Dial("tcp", server.Addr())
		if err != nil {
			t.Fatal(err)
		}
		conns = append(conns, c)
	}
	client, err := ListenTCP("127.0.0.1:0", echoLimits)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	req := Request{From: client.Addr(), WantReply: true}
	if _, ok, err := client.Exchange(context.Background(), server.Addr(), req); err != nil || !ok {
		t.Fatalf("exchange: %v ok=%v", err, ok)
	}
	if st := server.TransportStats(); st.AcceptRejects != 0 {
		t.Fatalf("unexpected rejects without a cap: %+v", st)
	}
}

// TestPushOnlyConnEvictedBeforePullConn proves the adaptive keep-alive: a
// served connection that has only ever pushed is closed after the
// shrunken budget, while one that pulled survives the same idle span.
func TestPushOnlyConnEvictedBeforePullConn(t *testing.T) {
	lim := Limits{KeepAlive: 600 * time.Millisecond, PushOnlyKeepAlive: 120 * time.Millisecond}
	server, err := ListenTCPLimits("127.0.0.1:0", echoLimits, lim)
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	dial := func() net.Conn {
		t.Helper()
		c, err := net.Dial("tcp", server.Addr())
		if err != nil {
			t.Fatal(err)
		}
		return c
	}
	pushFrame, err := EncodeRequest(Request{From: "pusher", WantReply: false})
	if err != nil {
		t.Fatal(err)
	}
	pullFrame, err := EncodeRequest(Request{From: "puller", WantReply: true})
	if err != nil {
		t.Fatal(err)
	}

	pusher, puller := dial(), dial()
	defer pusher.Close()
	defer puller.Close()
	if err := writeFrame(pusher, pushFrame); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(puller, pullFrame); err != nil {
		t.Fatal(err)
	}
	if _, err := readFrame(puller); err != nil { // consume the pull response
		t.Fatal(err)
	}

	// Both connections now idle. The pusher must be evicted at ~120ms; the
	// puller has earned the full 600ms budget and must still be open when
	// the pusher is gone.
	_ = pusher.SetReadDeadline(time.Now().Add(3 * time.Second))
	if _, err := pusher.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("push-only conn: want EOF from eviction, got %v", err)
	}
	// Prove the puller's stream still works after the pusher's eviction.
	if err := writeFrame(puller, pullFrame); err != nil {
		t.Fatalf("pull conn was evicted early: %v", err)
	}
	if _, err := readFrame(puller); err != nil {
		t.Fatalf("pull conn reply after pusher eviction: %v", err)
	}
	if st := server.TransportStats(); st.KeepAliveEvictions == 0 {
		t.Fatalf("eviction not counted: %+v", st)
	}
}

// TestPooledTCPLimitsThreaded checks the pooled backend applies Limits
// from PoolConfig: flood past the cap and verify rejects while pooled
// exchanges keep flowing.
func TestPooledTCPLimitsThreaded(t *testing.T) {
	server, err := ListenPooledTCP("127.0.0.1:0", echoLimits, PoolConfig{
		Limits: Limits{MaxConns: 2, KeepAlive: 300 * time.Millisecond},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	client, err := ListenPooledTCP("127.0.0.1:0", echoLimits, PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Claim one slot with a legitimate pooled exchange (the conn stays
	// served between frames), then flood the remaining capacity.
	req := Request{From: client.Addr(), WantReply: true}
	if _, ok, err := client.Exchange(context.Background(), server.Addr(), req); err != nil || !ok {
		t.Fatalf("exchange: %v ok=%v", err, ok)
	}
	var flood []net.Conn
	defer func() {
		for _, c := range flood {
			c.Close()
		}
	}()
	for i := 0; i < 8; i++ {
		c, err := net.Dial("tcp", server.Addr())
		if err != nil {
			t.Fatal(err)
		}
		flood = append(flood, c)
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := server.TransportStats(); st.AcceptRejects > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pooled listener accepted the whole flood: %+v", server.TransportStats())
		}
		time.Sleep(5 * time.Millisecond)
	}
	// The pooled client's persistent connection still works at the cap.
	if _, ok, err := client.Exchange(context.Background(), server.Addr(), req); err != nil || !ok {
		t.Fatalf("pooled exchange during flood: %v ok=%v", err, ok)
	}
}

// TestUDPHandlerSlotsRejectFlood fills the single handler slot with a
// slow handler and floods datagrams; the overflow must be counted as
// accept rejects and service must resume once the slot frees.
func TestUDPHandlerSlotsRejectFlood(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	server, err := ListenUDPLimits("127.0.0.1:0", func(req Request) (Response, bool) {
		if req.From == "slow" {
			<-release
		}
		return Response{From: "server"}, true
	}, Limits{MaxConns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	defer once.Do(func() { close(release) })

	client, err := ListenUDP("127.0.0.1:0", echoLimits)
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	// Occupy the slot: a push from "slow" parks the only handler goroutine.
	if _, _, err := client.Exchange(context.Background(), server.Addr(), Request{From: "slow"}); err != nil {
		t.Fatal(err)
	}
	// Flood pushes until the serve loop observes the busy slot.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, _, err := client.Exchange(context.Background(), server.Addr(), Request{From: "flood"}); err != nil {
			t.Fatal(err)
		}
		if st := server.TransportStats(); st.AcceptRejects > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("no datagram rejects: %+v", server.TransportStats())
		}
	}
	once.Do(func() { close(release) })
	// With the slot free again, a pull exchange must succeed. A pull
	// datagram arriving while the flood backlog still drains is itself
	// rejected (and the reply never comes), so retry with a short budget
	// per attempt.
	recover := time.Now().Add(10 * time.Second)
	var lastErr error
	for time.Now().Before(recover) {
		ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
		_, ok, err := client.Exchange(ctx, server.Addr(), Request{From: client.Addr(), WantReply: true})
		cancel()
		if err == nil && ok {
			return
		}
		lastErr = err
	}
	t.Fatalf("udp service did not recover after flood: %v", lastErr)
}

// TestRegistryThreadsLimits resolves each backend through the registry
// with non-default limits and verifies the cap is live (TCP backends) or
// accepted (UDP).
func TestRegistryThreadsLimits(t *testing.T) {
	for _, name := range Backends() {
		factory, err := NewFactoryLimits(name, "127.0.0.1:0", Limits{MaxConns: 1, KeepAlive: 100 * time.Millisecond})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tr, err := factory(echoLimits)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if name == "udp" {
			tr.Close()
			continue
		}
		c1, err := net.Dial("tcp", tr.Addr())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		c2, err := net.Dial("tcp", tr.Addr())
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		deadline := time.Now().Add(5 * time.Second)
		for {
			st := tr.(StatsReporter).TransportStats()
			if st.AcceptRejects > 0 {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s: cap of 1 not enforced", name)
			}
			time.Sleep(5 * time.Millisecond)
		}
		c1.Close()
		c2.Close()
		tr.Close()
	}
}
