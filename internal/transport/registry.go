package transport

import (
	"fmt"
	"sort"
	"sync"
)

// Builder constructs a Factory serving real traffic on a listen address
// under the given hardening limits (the zero Limits selects the
// defaults). It is the registration unit of the backend registry: daemons
// resolve a user-supplied backend name to a Builder, then bind it to
// their listen and limit flags.
type Builder func(listen string, lim Limits) Factory

var (
	registryMu sync.RWMutex
	registry   = map[string]Builder{}
)

// Register adds a named backend to the registry, replacing any previous
// registration under the same name. The built-in backends "tcp",
// "tcp-pooled" and "udp" are registered at init time; external packages
// may add their own.
func Register(name string, b Builder) {
	if name == "" || b == nil {
		panic("transport: Register with empty name or nil builder")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	registry[name] = b
}

// Backends returns the sorted names of all registered backends.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NewFactory resolves a backend name to a Factory bound to the given
// listen address under the default Limits. Unknown names list the
// available backends in the error.
func NewFactory(name, listen string) (Factory, error) {
	return NewFactoryLimits(name, listen, Limits{})
}

// NewFactoryLimits is NewFactory with explicit hardening limits threaded
// through to the backend.
func NewFactoryLimits(name, listen string, lim Limits) (Factory, error) {
	registryMu.RLock()
	b, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("transport: unknown backend %q (available: %v)", name, Backends())
	}
	return b(listen, lim), nil
}

func init() {
	Register("tcp", func(listen string, lim Limits) Factory {
		return func(h Handler) (Transport, error) { return ListenTCPLimits(listen, h, lim) }
	})
	Register("tcp-pooled", func(listen string, lim Limits) Factory {
		return func(h Handler) (Transport, error) { return ListenPooledTCP(listen, h, PoolConfig{Limits: lim}) }
	})
	Register("udp", func(listen string, lim Limits) Factory {
		return func(h Handler) (Transport, error) { return ListenUDPLimits(listen, h, lim) }
	})
}
