package transport

import "sync/atomic"

// Stats is a point-in-time snapshot of a transport endpoint's wire-level
// counters. All fields are cumulative since the endpoint was created.
type Stats struct {
	// Dials counts new outbound connections (TCP) or sockets (UDP)
	// created for exchanges.
	Dials uint64
	// Reuses counts exchanges served by a pooled connection instead of a
	// fresh dial. Always zero for unpooled transports.
	Reuses uint64
	// BytesOut and BytesIn count payload plus framing bytes written and
	// read by this endpoint, on both the active and passive side.
	BytesOut uint64
	BytesIn  uint64
	// FramesOut and FramesIn count complete frames (TCP) or datagrams
	// (UDP) written and read.
	FramesOut uint64
	FramesIn  uint64
	// DatagramsDropped counts messages lost to the datagram nature of a
	// backend: incoming datagrams or frames discarded because they were
	// oversized, truncated or failed to decode, plus (UDP only) pull
	// exchanges that timed out awaiting a response datagram — the
	// client-visible face of a lost request or reply.
	DatagramsDropped uint64
	// AcceptRejects counts inbound work refused at the Limits.MaxConns
	// cap: TCP connections closed straight after accept, and UDP
	// datagrams dropped because every handler slot was busy. A non-zero
	// value under normal load means the cap is too low for the cluster;
	// under attack it is the hardening doing its job.
	AcceptRejects uint64
	// KeepAliveEvictions counts served TCP connections closed because the
	// peer exceeded a read budget: never sent an opening frame within
	// Limits.FirstFrameTimeout (slowloris), or idled past its earned
	// keep-alive (Limits.KeepAlive after a pull, Limits.PushOnlyKeepAlive
	// otherwise). Always zero on UDP.
	KeepAliveEvictions uint64
}

// StatsReporter is implemented by transports that keep wire-level
// counters. The runtime surfaces these alongside Node.Stats.
type StatsReporter interface {
	TransportStats() Stats
}

// counters is the atomic backing store shared by the TCP, pooled-TCP and
// UDP transports. The zero value is ready to use.
type counters struct {
	dials         atomic.Uint64
	reuses        atomic.Uint64
	bytesOut      atomic.Uint64
	bytesIn       atomic.Uint64
	framesOut     atomic.Uint64
	framesIn      atomic.Uint64
	dropped       atomic.Uint64
	acceptRejects atomic.Uint64
	kaEvictions   atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Dials:              c.dials.Load(),
		Reuses:             c.reuses.Load(),
		BytesOut:           c.bytesOut.Load(),
		BytesIn:            c.bytesIn.Load(),
		FramesOut:          c.framesOut.Load(),
		FramesIn:           c.framesIn.Load(),
		DatagramsDropped:   c.dropped.Load(),
		AcceptRejects:      c.acceptRejects.Load(),
		KeepAliveEvictions: c.kaEvictions.Load(),
	}
}

// noteWrite records one outbound frame of n payload bytes plus framing
// overhead.
func (c *counters) noteWrite(n int) {
	c.framesOut.Add(1)
	c.bytesOut.Add(uint64(n))
}

// noteRead records one inbound frame of n payload bytes plus framing
// overhead.
func (c *counters) noteRead(n int) {
	c.framesIn.Add(1)
	c.bytesIn.Add(uint64(n))
}
