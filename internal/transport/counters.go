package transport

import "sync/atomic"

// Stats is a point-in-time snapshot of a transport endpoint's wire-level
// counters. All fields are cumulative since the endpoint was created.
type Stats struct {
	// Dials counts new outbound connections (TCP) or sockets (UDP)
	// created for exchanges.
	Dials uint64
	// Reuses counts exchanges served by a pooled connection instead of a
	// fresh dial. Always zero for unpooled transports.
	Reuses uint64
	// BytesOut and BytesIn count payload plus framing bytes written and
	// read by this endpoint, on both the active and passive side.
	BytesOut uint64
	BytesIn  uint64
	// FramesOut and FramesIn count complete frames (TCP) or datagrams
	// (UDP) written and read.
	FramesOut uint64
	FramesIn  uint64
	// DatagramsDropped counts messages lost to the datagram nature of a
	// backend: incoming datagrams or frames discarded because they were
	// oversized, truncated or failed to decode; (UDP only) pull exchanges
	// that timed out awaiting a response datagram — the client-visible
	// face of a lost request or reply; and (UDP only) response datagrams
	// the serving side could not send, whether unencodable, oversized or
	// failed at the socket write.
	DatagramsDropped uint64
	// AcceptRejects counts inbound work refused at the Limits.MaxConns
	// cap: TCP connections closed straight after accept, and UDP
	// datagrams dropped because every handler slot was busy. A non-zero
	// value under normal load means the cap is too low for the cluster;
	// under attack it is the hardening doing its job.
	AcceptRejects uint64
	// KeepAliveEvictions counts served TCP connections closed because the
	// peer exceeded a read budget: never sent an opening frame within
	// Limits.FirstFrameTimeout (slowloris), or idled past its earned
	// keep-alive (Limits.KeepAlive after a pull, Limits.PushOnlyKeepAlive
	// otherwise). Always zero on UDP.
	KeepAliveEvictions uint64
}

// StatsReporter is implemented by transports that keep wire-level
// counters. The runtime surfaces these alongside Node.Stats.
type StatsReporter interface {
	TransportStats() Stats
}

// NamedCounter pairs one Stats counter with a stable snake_case name, the
// identifier exporters embed in metric names and CSV rows.
type NamedCounter struct {
	Name  string
	Value uint64
}

// Named enumerates every counter of the snapshot as (name, value) pairs in
// declaration order. Exporters (internal/metrics, the psnode reporter)
// iterate this instead of naming fields, so a counter added to Stats
// cannot silently miss the export: a reflection test fails the build of
// this package until the new field is added here.
func (s Stats) Named() []NamedCounter {
	return []NamedCounter{
		{"dials", s.Dials},
		{"reuses", s.Reuses},
		{"bytes_out", s.BytesOut},
		{"bytes_in", s.BytesIn},
		{"frames_out", s.FramesOut},
		{"frames_in", s.FramesIn},
		{"datagrams_dropped", s.DatagramsDropped},
		{"accept_rejects", s.AcceptRejects},
		{"keepalive_evictions", s.KeepAliveEvictions},
	}
}

// Add accumulates another snapshot into s, for cluster-wide totals. Like
// Named, it is covered by the exhaustiveness test, so a new counter
// cannot be silently left out of aggregation.
func (s *Stats) Add(o Stats) {
	s.Dials += o.Dials
	s.Reuses += o.Reuses
	s.BytesOut += o.BytesOut
	s.BytesIn += o.BytesIn
	s.FramesOut += o.FramesOut
	s.FramesIn += o.FramesIn
	s.DatagramsDropped += o.DatagramsDropped
	s.AcceptRejects += o.AcceptRejects
	s.KeepAliveEvictions += o.KeepAliveEvictions
}

// counters is the atomic backing store shared by the TCP, pooled-TCP and
// UDP transports. The zero value is ready to use.
type counters struct {
	dials         atomic.Uint64
	reuses        atomic.Uint64
	bytesOut      atomic.Uint64
	bytesIn       atomic.Uint64
	framesOut     atomic.Uint64
	framesIn      atomic.Uint64
	dropped       atomic.Uint64
	acceptRejects atomic.Uint64
	kaEvictions   atomic.Uint64
}

func (c *counters) snapshot() Stats {
	return Stats{
		Dials:              c.dials.Load(),
		Reuses:             c.reuses.Load(),
		BytesOut:           c.bytesOut.Load(),
		BytesIn:            c.bytesIn.Load(),
		FramesOut:          c.framesOut.Load(),
		FramesIn:           c.framesIn.Load(),
		DatagramsDropped:   c.dropped.Load(),
		AcceptRejects:      c.acceptRejects.Load(),
		KeepAliveEvictions: c.kaEvictions.Load(),
	}
}

// noteWrite records one outbound frame of n payload bytes plus framing
// overhead.
func (c *counters) noteWrite(n int) {
	c.framesOut.Add(1)
	c.bytesOut.Add(uint64(n))
}

// noteRead records one inbound frame of n payload bytes plus framing
// overhead.
func (c *counters) noteRead(n int) {
	c.framesIn.Add(1)
	c.bytesIn.Add(uint64(n))
}
