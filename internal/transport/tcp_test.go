package transport

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

func TestTCPExchangeRoundTrip(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0", func(req Request) (Response, bool) {
		if !req.WantReply {
			return Response{}, false
		}
		return Response{From: "server", Buffer: req.Buffer}, true
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	client, err := ListenTCP("127.0.0.1:0", func(Request) (Response, bool) { return Response{}, false })
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	req := Request{From: client.Addr(), WantReply: true, Buffer: []Descriptor{{Addr: "x", Hop: 2}}}
	resp, ok, err := client.Exchange(context.Background(), server.Addr(), req)
	if err != nil || !ok {
		t.Fatalf("exchange: %v ok=%v", err, ok)
	}
	if resp.From != "server" || len(resp.Buffer) != 1 || resp.Buffer[0] != req.Buffer[0] {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestTCPPushOnly(t *testing.T) {
	received := make(chan Request, 1)
	server, err := ListenTCP("127.0.0.1:0", func(req Request) (Response, bool) {
		received <- req
		return Response{}, false
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client, err := ListenTCP("127.0.0.1:0", func(Request) (Response, bool) { return Response{}, false })
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()

	_, ok, err := client.Exchange(context.Background(), server.Addr(), Request{From: client.Addr()})
	if err != nil || ok {
		t.Fatalf("push exchange: %v ok=%v", err, ok)
	}
	select {
	case req := <-received:
		if req.From != client.Addr() {
			t.Errorf("server saw From=%q", req.From)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("server never received the push")
	}
}

func TestTCPUnreachable(t *testing.T) {
	client, err := ListenTCP("127.0.0.1:0", func(Request) (Response, bool) { return Response{}, false })
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	// Grab a port and close it again so nothing listens there.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	dead := l.Addr().String()
	l.Close()

	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_, _, err = client.Exchange(ctx, dead, Request{From: client.Addr(), WantReply: true})
	if !errors.Is(err, ErrUnreachable) {
		t.Errorf("err = %v want ErrUnreachable", err)
	}
}

func TestTCPCloseStopsService(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0", func(Request) (Response, bool) { return Response{}, false })
	if err != nil {
		t.Fatal(err)
	}
	addr := server.Addr()
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	if err := server.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, _, err := server.Exchange(context.Background(), addr, Request{From: "x"}); !errors.Is(err, ErrClosed) {
		t.Errorf("exchange after close: %v want ErrClosed", err)
	}
}

func TestTCPServerSurvivesGarbage(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0", func(req Request) (Response, bool) {
		return Response{From: "server"}, req.WantReply
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()

	// A raw connection that sends garbage must not take the server down.
	conn, err := net.Dial("tcp", server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	_, _ = conn.Write([]byte{0x00, 0x00, 0x00, 0x03, 0xDE, 0xAD, 0xBE})
	conn.Close()

	client, err := ListenTCP("127.0.0.1:0", func(Request) (Response, bool) { return Response{}, false })
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	if _, ok, err := client.Exchange(ctx, server.Addr(), Request{From: client.Addr(), WantReply: true}); err != nil || !ok {
		t.Fatalf("exchange after garbage: %v ok=%v", err, ok)
	}
}

func TestTCPRejectsOversizedFrame(t *testing.T) {
	server, err := ListenTCP("127.0.0.1:0", func(Request) (Response, bool) { return Response{}, false })
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	conn, err := net.Dial("tcp", server.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Announce a frame far beyond the limit; the server must hang up
	// rather than allocate.
	if _, err := conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF}); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	if _, err := conn.Read(buf); err == nil {
		t.Error("server kept the connection open after oversized frame")
	}
	if stats := server.TransportStats(); stats.DatagramsDropped != 1 {
		t.Errorf("dropped = %d want 1 (oversized frame must be counted)", stats.DatagramsDropped)
	}
}
