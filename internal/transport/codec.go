package transport

import (
	"encoding/binary"
	"fmt"
	"io"

	"peersampling/internal/core"
)

// Wire format (all integers big-endian):
//
//	byte    magic (0x9D)
//	byte    kind (1 = request, 2 = response)
//	byte    flags (bit 0: WantReply, requests only)
//	u16     from-address length, followed by the bytes
//	u16     descriptor count
//	repeat: u16 address length, address bytes, i32 hop count
//
// The format is deliberately version-tagged by the magic byte so that a
// future revision can change it without silently misparsing old peers.
const (
	codecMagic   = 0x9D
	kindRequest  = 1
	kindResponse = 2

	// MaxAddrLen bounds a single address; MaxDescriptors bounds a view
	// buffer. Both protect servers from hostile or corrupt frames.
	MaxAddrLen     = 512
	MaxDescriptors = 4096

	// MaxFrameSize bounds a single length-prefixed frame on the TCP
	// transports; a full view of MaxDescriptors maximal descriptors fits
	// comfortably. The UDP transport enforces its own, much smaller bound
	// (MaxDatagramSize) since a message must fit one datagram there.
	MaxFrameSize = 1 << 22
)

// EncodeRequest serialises a request into a fresh buffer. Hot paths that
// own a reusable buffer should call AppendRequest instead.
func EncodeRequest(req Request) ([]byte, error) {
	return AppendRequest(nil, req)
}

// EncodeResponse serialises a response into a fresh buffer. Hot paths
// that own a reusable buffer should call AppendResponse instead.
func EncodeResponse(resp Response) ([]byte, error) {
	return AppendResponse(nil, resp)
}

// AppendRequest appends the encoded request to dst and returns the
// extended slice, allocating only when dst lacks capacity. dst may be nil.
func AppendRequest(dst []byte, req Request) ([]byte, error) {
	flags := byte(0)
	if req.WantReply {
		flags = 1
	}
	return appendMessage(dst, kindRequest, flags, req.From, req.Buffer)
}

// AppendResponse appends the encoded response to dst and returns the
// extended slice, allocating only when dst lacks capacity. dst may be nil.
func AppendResponse(dst []byte, resp Response) ([]byte, error) {
	return appendMessage(dst, kindResponse, 0, resp.From, resp.Buffer)
}

func appendMessage(dst []byte, kind, flags byte, from string, buffer []core.Descriptor[string]) ([]byte, error) {
	if len(from) > MaxAddrLen {
		return nil, fmt.Errorf("transport: from address %d bytes exceeds limit %d", len(from), MaxAddrLen)
	}
	if len(buffer) > MaxDescriptors {
		return nil, fmt.Errorf("transport: %d descriptors exceed limit %d", len(buffer), MaxDescriptors)
	}
	size := 3 + 2 + len(from) + 2
	for _, d := range buffer {
		if len(d.Addr) > MaxAddrLen {
			return nil, fmt.Errorf("transport: descriptor address %d bytes exceeds limit %d", len(d.Addr), MaxAddrLen)
		}
		size += 2 + len(d.Addr) + 4
	}
	out := dst
	if need := len(out) + size; cap(out) < need {
		grown := make([]byte, len(out), need)
		copy(grown, out)
		out = grown
	}
	out = append(out, codecMagic, kind, flags)
	out = appendString(out, from)
	out = binary.BigEndian.AppendUint16(out, uint16(len(buffer)))
	for _, d := range buffer {
		out = appendString(out, d.Addr)
		out = binary.BigEndian.AppendUint32(out, uint32(d.Hop))
	}
	return out, nil
}

func appendString(out []byte, s string) []byte {
	out = binary.BigEndian.AppendUint16(out, uint16(len(s)))
	return append(out, s...)
}

// DecodeMessage parses a frame produced by EncodeRequest or
// EncodeResponse. Exactly one of req/resp is meaningful, selected by
// isRequest. Every address is freshly allocated; hot paths should use
// DecodeMessageInto (usually via a Decoder) to reuse descriptor storage
// and intern repeated addresses.
func DecodeMessage(frame []byte) (req Request, resp Response, isRequest bool, err error) {
	return DecodeMessageInto(frame, nil, nil)
}

// DecodeMessageInto is DecodeMessage decoding into caller-owned storage:
// when scratch is non-nil the descriptor buffer is built inside *scratch
// (truncated first, grown as needed, and written back), so the returned
// message aliases it and is only valid until the caller reuses the
// scratch. A non-nil interner deduplicates address strings across calls;
// it must not be shared between goroutines without external locking.
func DecodeMessageInto(frame []byte, scratch *[]Descriptor, intern *Interner) (req Request, resp Response, isRequest bool, err error) {
	r := reader{buf: frame, intern: intern}
	magic, err := r.byte()
	if err != nil {
		return req, resp, false, err
	}
	if magic != codecMagic {
		return req, resp, false, fmt.Errorf("transport: bad magic 0x%02X", magic)
	}
	kind, err := r.byte()
	if err != nil {
		return req, resp, false, err
	}
	flags, err := r.byte()
	if err != nil {
		return req, resp, false, err
	}
	from, err := r.str()
	if err != nil {
		return req, resp, false, err
	}
	count, err := r.u16()
	if err != nil {
		return req, resp, false, err
	}
	if count > MaxDescriptors {
		return req, resp, false, fmt.Errorf("transport: descriptor count %d exceeds limit", count)
	}
	var buffer []core.Descriptor[string]
	if scratch != nil {
		buffer = (*scratch)[:0]
	} else {
		buffer = make([]core.Descriptor[string], 0, count)
	}
	for i := 0; i < int(count); i++ {
		addr, err := r.str()
		if err != nil {
			return req, resp, false, err
		}
		hop, err := r.u32()
		if err != nil {
			return req, resp, false, err
		}
		buffer = append(buffer, core.Descriptor[string]{Addr: addr, Hop: int32(hop)})
	}
	if scratch != nil {
		*scratch = buffer
	}
	if r.rem() != 0 {
		return req, resp, false, fmt.Errorf("transport: %d trailing bytes", r.rem())
	}
	switch kind {
	case kindRequest:
		if flags&^1 != 0 {
			// Unknown flag bits mean a newer (or corrupt) peer; rejecting
			// keeps the format canonical — every accepted frame re-encodes
			// byte-identically.
			return req, resp, false, fmt.Errorf("transport: unknown request flags 0x%02X", flags)
		}
		return Request{From: from, Buffer: buffer, WantReply: flags&1 != 0}, resp, true, nil
	case kindResponse:
		if flags != 0 {
			return req, resp, false, fmt.Errorf("transport: unknown response flags 0x%02X", flags)
		}
		return req, Response{From: from, Buffer: buffer}, false, nil
	default:
		return req, resp, false, fmt.Errorf("transport: unknown message kind %d", kind)
	}
}

// Interner deduplicates address strings decoded from the wire. Gossip
// traffic names the same few hundred peers over and over, so interning
// turns the per-descriptor string allocation — the dominant decode cost —
// into a map lookup at steady state. The table is bounded: once maxInternEntries
// distinct addresses have been seen it is reset rather than grown, which
// caps what a hostile peer streaming random addresses can pin in memory.
// An Interner is not safe for concurrent use; give each connection,
// serve loop or pooled decoder its own.
type Interner struct {
	m map[string]string
}

// maxInternEntries bounds one Interner's table. At MaxAddrLen per entry
// this caps the table at ~2MB, far below what a single hostile
// connection could otherwise accumulate.
const maxInternEntries = 4096

// Intern returns a string equal to b, reusing a previously returned
// instance when one exists.
func (in *Interner) Intern(b []byte) string {
	// The map index with a string(b) conversion does not allocate; only a
	// genuinely new address pays for its string.
	if s, ok := in.m[string(b)]; ok {
		return s
	}
	if in.m == nil || len(in.m) >= maxInternEntries {
		in.m = make(map[string]string, 64)
	}
	s := string(b)
	in.m[s] = s
	return s
}

// Decoder bundles the caller-owned decode state of the pooled codec path:
// a reusable descriptor buffer and an address interner. The zero value is
// ready to use. Messages returned by Decode alias the decoder's buffer
// and are only valid until the next Decode call; a Decoder is not safe
// for concurrent use.
type Decoder struct {
	scratch []Descriptor
	intern  Interner
}

// Decode parses a frame like DecodeMessage, reusing the decoder's
// descriptor buffer and interned addresses.
func (d *Decoder) Decode(frame []byte) (req Request, resp Response, isRequest bool, err error) {
	return DecodeMessageInto(frame, &d.scratch, &d.intern)
}

// reader is a bounds-checked cursor over a frame.
type reader struct {
	buf    []byte
	pos    int
	intern *Interner
}

func (r *reader) rem() int { return len(r.buf) - r.pos }

func (r *reader) byte() (byte, error) {
	if r.rem() < 1 {
		return 0, io.ErrUnexpectedEOF
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) u16() (uint16, error) {
	if r.rem() < 2 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint16(r.buf[r.pos:])
	r.pos += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.rem() < 4 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if int(n) > MaxAddrLen {
		return "", fmt.Errorf("transport: string length %d exceeds limit %d", n, MaxAddrLen)
	}
	if r.rem() < int(n) {
		return "", io.ErrUnexpectedEOF
	}
	raw := r.buf[r.pos : r.pos+int(n)]
	r.pos += int(n)
	if r.intern != nil {
		return r.intern.Intern(raw), nil
	}
	return string(raw), nil
}
