package transport

import (
	"encoding/binary"
	"fmt"
	"io"

	"peersampling/internal/core"
)

// Wire format (all integers big-endian):
//
//	byte    magic (0x9D)
//	byte    kind (1 = request, 2 = response)
//	byte    flags (bit 0: WantReply, requests only)
//	u16     from-address length, followed by the bytes
//	u16     descriptor count
//	repeat: u16 address length, address bytes, i32 hop count
//
// The format is deliberately version-tagged by the magic byte so that a
// future revision can change it without silently misparsing old peers.
const (
	codecMagic   = 0x9D
	kindRequest  = 1
	kindResponse = 2

	// MaxAddrLen bounds a single address; MaxDescriptors bounds a view
	// buffer. Both protect servers from hostile or corrupt frames.
	MaxAddrLen     = 512
	MaxDescriptors = 4096

	// MaxFrameSize bounds a single length-prefixed frame on the TCP
	// transports; a full view of MaxDescriptors maximal descriptors fits
	// comfortably. The UDP transport enforces its own, much smaller bound
	// (MaxDatagramSize) since a message must fit one datagram there.
	MaxFrameSize = 1 << 22
)

// EncodeRequest serialises a request.
func EncodeRequest(req Request) ([]byte, error) {
	flags := byte(0)
	if req.WantReply {
		flags = 1
	}
	return encodeMessage(kindRequest, flags, req.From, req.Buffer)
}

// EncodeResponse serialises a response.
func EncodeResponse(resp Response) ([]byte, error) {
	return encodeMessage(kindResponse, 0, resp.From, resp.Buffer)
}

func encodeMessage(kind, flags byte, from string, buffer []core.Descriptor[string]) ([]byte, error) {
	if len(from) > MaxAddrLen {
		return nil, fmt.Errorf("transport: from address %d bytes exceeds limit %d", len(from), MaxAddrLen)
	}
	if len(buffer) > MaxDescriptors {
		return nil, fmt.Errorf("transport: %d descriptors exceed limit %d", len(buffer), MaxDescriptors)
	}
	size := 3 + 2 + len(from) + 2
	for _, d := range buffer {
		if len(d.Addr) > MaxAddrLen {
			return nil, fmt.Errorf("transport: descriptor address %d bytes exceeds limit %d", len(d.Addr), MaxAddrLen)
		}
		size += 2 + len(d.Addr) + 4
	}
	out := make([]byte, 0, size)
	out = append(out, codecMagic, kind, flags)
	out = appendString(out, from)
	out = binary.BigEndian.AppendUint16(out, uint16(len(buffer)))
	for _, d := range buffer {
		out = appendString(out, d.Addr)
		out = binary.BigEndian.AppendUint32(out, uint32(d.Hop))
	}
	return out, nil
}

func appendString(out []byte, s string) []byte {
	out = binary.BigEndian.AppendUint16(out, uint16(len(s)))
	return append(out, s...)
}

// DecodeMessage parses a frame produced by EncodeRequest or
// EncodeResponse. Exactly one of req/resp is meaningful, selected by
// isRequest.
func DecodeMessage(frame []byte) (req Request, resp Response, isRequest bool, err error) {
	r := reader{buf: frame}
	magic, err := r.byte()
	if err != nil {
		return req, resp, false, err
	}
	if magic != codecMagic {
		return req, resp, false, fmt.Errorf("transport: bad magic 0x%02X", magic)
	}
	kind, err := r.byte()
	if err != nil {
		return req, resp, false, err
	}
	flags, err := r.byte()
	if err != nil {
		return req, resp, false, err
	}
	from, err := r.str()
	if err != nil {
		return req, resp, false, err
	}
	count, err := r.u16()
	if err != nil {
		return req, resp, false, err
	}
	if count > MaxDescriptors {
		return req, resp, false, fmt.Errorf("transport: descriptor count %d exceeds limit", count)
	}
	buffer := make([]core.Descriptor[string], 0, count)
	for i := 0; i < int(count); i++ {
		addr, err := r.str()
		if err != nil {
			return req, resp, false, err
		}
		hop, err := r.u32()
		if err != nil {
			return req, resp, false, err
		}
		buffer = append(buffer, core.Descriptor[string]{Addr: addr, Hop: int32(hop)})
	}
	if r.rem() != 0 {
		return req, resp, false, fmt.Errorf("transport: %d trailing bytes", r.rem())
	}
	switch kind {
	case kindRequest:
		return Request{From: from, Buffer: buffer, WantReply: flags&1 != 0}, resp, true, nil
	case kindResponse:
		return req, Response{From: from, Buffer: buffer}, false, nil
	default:
		return req, resp, false, fmt.Errorf("transport: unknown message kind %d", kind)
	}
}

// reader is a bounds-checked cursor over a frame.
type reader struct {
	buf []byte
	pos int
}

func (r *reader) rem() int { return len(r.buf) - r.pos }

func (r *reader) byte() (byte, error) {
	if r.rem() < 1 {
		return 0, io.ErrUnexpectedEOF
	}
	b := r.buf[r.pos]
	r.pos++
	return b, nil
}

func (r *reader) u16() (uint16, error) {
	if r.rem() < 2 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint16(r.buf[r.pos:])
	r.pos += 2
	return v, nil
}

func (r *reader) u32() (uint32, error) {
	if r.rem() < 4 {
		return 0, io.ErrUnexpectedEOF
	}
	v := binary.BigEndian.Uint32(r.buf[r.pos:])
	r.pos += 4
	return v, nil
}

func (r *reader) str() (string, error) {
	n, err := r.u16()
	if err != nil {
		return "", err
	}
	if int(n) > MaxAddrLen {
		return "", fmt.Errorf("transport: string length %d exceeds limit %d", n, MaxAddrLen)
	}
	if r.rem() < int(n) {
		return "", io.ErrUnexpectedEOF
	}
	s := string(r.buf[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s, nil
}
