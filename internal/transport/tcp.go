package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// tcpDefaultTimeout bounds a whole exchange (dial + write + read) when the
// caller's context has no earlier deadline.
const tcpDefaultTimeout = 5 * time.Second

// maxFrameSize bounds a single length-prefixed frame on the wire; a full
// view of MaxDescriptors maximal descriptors fits comfortably.
const maxFrameSize = 1 << 22

// TCP is a Transport over real TCP connections. Every exchange uses a
// fresh short-lived connection carrying one length-prefixed request frame
// and, for pull-enabled exchanges, one response frame. Gossip exchanges
// are tiny and infrequent (one per node per period), so connection reuse
// is deliberately not attempted.
type TCP struct {
	listener net.Listener
	handler  Handler

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup
}

var _ Transport = (*TCP)(nil)

// ListenTCP starts serving on addr (e.g. "127.0.0.1:0") with h handling
// incoming exchanges.
func ListenTCP(addr string, h Handler) (*TCP, error) {
	if h == nil {
		return nil, errors.New("transport: nil handler")
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{listener: l, handler: h}
	t.wg.Add(1)
	go t.serve()
	return t, nil
}

// Addr implements Transport; it returns the bound address, with the
// ephemeral port resolved.
func (t *TCP) Addr() string { return t.listener.Addr().String() }

func (t *TCP) serve() {
	defer t.wg.Done()
	for {
		conn, err := t.listener.Accept()
		if err != nil {
			return // listener closed
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			t.handleConn(conn)
		}()
	}
}

func (t *TCP) handleConn(conn net.Conn) {
	defer conn.Close()
	// A peer must complete its exchange promptly; this also bounds the
	// damage of a stalled or hostile connection.
	_ = conn.SetDeadline(time.Now().Add(tcpDefaultTimeout))
	frame, err := readFrame(conn)
	if err != nil {
		return
	}
	req, _, isReq, err := DecodeMessage(frame)
	if err != nil || !isReq {
		return
	}
	resp, ok := t.handler(req)
	if !ok {
		return
	}
	out, err := EncodeResponse(resp)
	if err != nil {
		return
	}
	_ = writeFrame(conn, out)
}

// Exchange implements Transport.
func (t *TCP) Exchange(ctx context.Context, addr string, req Request) (Response, bool, error) {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return Response{}, false, ErrClosed
	}
	deadline, hasDeadline := ctx.Deadline()
	if !hasDeadline {
		deadline = time.Now().Add(tcpDefaultTimeout)
	}
	d := net.Dialer{Deadline: deadline}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return Response{}, false, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	defer conn.Close()
	_ = conn.SetDeadline(deadline)

	frame, err := EncodeRequest(req)
	if err != nil {
		return Response{}, false, err
	}
	if err := writeFrame(conn, frame); err != nil {
		return Response{}, false, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	if !req.WantReply {
		return Response{}, false, nil
	}
	respFrame, err := readFrame(conn)
	if err != nil {
		return Response{}, false, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	_, resp, isReq, err := DecodeMessage(respFrame)
	if err != nil {
		return Response{}, false, err
	}
	if isReq {
		return Response{}, false, errors.New("transport: peer answered with a request frame")
	}
	return resp, true, nil
}

// Close implements Transport. It stops the listener and waits for in-
// flight connection handlers to finish.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	err := t.listener.Close()
	t.wg.Wait()
	return err
}

// writeFrame writes a u32 length prefix followed by the payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame reads one length-prefixed frame, rejecting oversized payloads.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrameSize {
		return nil, fmt.Errorf("transport: frame of %d bytes exceeds limit", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
