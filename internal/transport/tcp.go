package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// tcpDefaultTimeout bounds a whole exchange (dial + write + read) when the
// caller's context has no earlier deadline.
const tcpDefaultTimeout = 5 * time.Second

// TCP is a Transport over real TCP connections. Every exchange uses a
// fresh short-lived connection carrying one length-prefixed request frame
// and, for pull-enabled exchanges, one response frame. It is the simplest
// real-network backend and the baseline the pooled transport (PooledTCP)
// is benchmarked against; at high gossip rates the per-exchange dial
// dominates, so prefer PooledTCP for production deployments.
type TCP struct {
	listener net.Listener
	handler  Handler
	limits   limitsBox
	apps     appHandlerBox
	gate     *connGate
	stats    counters

	mu     sync.Mutex
	closed bool
	reg    *connRegistry
	wg     sync.WaitGroup
}

var (
	_ Transport     = (*TCP)(nil)
	_ StatsReporter = (*TCP)(nil)
	_ LimitsUpdater = (*TCP)(nil)
	_ AppCarrier    = (*TCP)(nil)
)

// ListenTCP starts serving on addr (e.g. "127.0.0.1:0") with h handling
// incoming exchanges, under the default Limits.
func ListenTCP(addr string, h Handler) (*TCP, error) {
	return ListenTCPLimits(addr, h, Limits{})
}

// ListenTCPLimits is ListenTCP with explicit transport hardening limits
// (connection cap and keep-alive budgets); the zero Limits selects the
// defaults.
func ListenTCPLimits(addr string, h Handler, lim Limits) (*TCP, error) {
	if h == nil {
		return nil, errors.New("transport: nil handler")
	}
	if err := lim.fill(); err != nil {
		return nil, err
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("transport: listen %s: %w", addr, err)
	}
	t := &TCP{listener: l, handler: h, reg: newConnRegistry()}
	t.limits.store(lim)
	t.gate = newConnGate(lim.MaxConns, &t.stats.acceptRejects)
	t.wg.Add(1)
	go t.serve()
	return t, nil
}

// SetLimits implements LimitsUpdater: it validates lim and applies it to
// the live listener — the connection cap to future accepts, the
// keep-alive budgets from each served connection's next frame.
func (t *TCP) SetLimits(lim Limits) error {
	if err := lim.fill(); err != nil {
		return err
	}
	t.limits.store(lim)
	t.gate.setMax(lim.MaxConns)
	return nil
}

// Addr implements Transport; it returns the bound address, with the
// ephemeral port resolved.
func (t *TCP) Addr() string { return t.listener.Addr().String() }

func (t *TCP) serve() {
	defer t.wg.Done()
	acceptLoop(t.listener, t.gate, &t.wg, t.handleConn)
}

// handleConn serves one connection. The first frame must arrive within
// the slowloris window (Limits.FirstFrameTimeout), but after it the
// connection is served in a loop: a persistent (pooled) peer reuses it
// for many exchanges under the keep-alive budget it has earned (see
// Limits). Dial-per-exchange clients simply close after one exchange,
// ending the loop with EOF.
func (t *TCP) handleConn(conn net.Conn) {
	servePersistent(conn, t.handler, &t.stats, t.reg, &t.limits, &t.apps)
}

// SetAppHandler implements AppCarrier.
func (t *TCP) SetAppHandler(h AppHandler) { t.apps.store(h) }

// ExchangeApp implements AppCarrier: one app exchange over a fresh
// short-lived connection, exactly like Exchange.
func (t *TCP) ExchangeApp(ctx context.Context, addr string, msg AppMessage) (AppMessage, bool, error) {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return AppMessage{}, false, ErrClosed
	}
	if err := checkLinkFault(ctx, t.Addr(), addr); err != nil {
		return AppMessage{}, false, err
	}
	framep := frameBufs.Get().(*[]byte)
	defer frameBufs.Put(framep)
	frame, err := appendAppFrame((*framep)[:0], msg, false)
	if err != nil {
		return AppMessage{}, false, err
	}
	*framep = frame[:0]
	deadline, hasDeadline := ctx.Deadline()
	if !hasDeadline {
		deadline = time.Now().Add(tcpDefaultTimeout)
	}
	d := net.Dialer{Deadline: deadline}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return AppMessage{}, false, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	t.stats.dials.Add(1)
	defer conn.Close()
	_ = conn.SetDeadline(deadline)
	return exchangeAppFrames(conn, frame, msg.WantReply, addr, &t.stats)
}

// connScratch is the per-connection reusable state of the pooled codec
// path: the frame read buffer, the decoder (descriptor scratch plus
// address interner) and the response encode buffer. One goroutine serves
// one connection, so none of it needs locking.
type connScratch struct {
	readBuf []byte
	outBuf  []byte
	dec     Decoder
}

// handleFrame is the shared passive side of the TCP transports: decode a
// request frame, run the handler, and write the response frame when the
// request pulls one. keep reports whether the stream is still in sync
// (false means the connection must be torn down); pulled reports whether
// the frame was a pull (WantReply) exchange, which upgrades the
// connection's keep-alive budget. The decoded request and the encoded
// response both live in cs, reused frame after frame.
func handleFrame(conn net.Conn, frame []byte, h Handler, stats *counters, cs *connScratch) (keep, pulled bool) {
	req, _, isReq, err := cs.dec.Decode(frame)
	if err != nil || !isReq {
		stats.dropped.Add(1)
		return false, false // a corrupt stream cannot be resynchronised
	}
	resp, ok := h(req)
	// The WantReply guard keeps a persistent stream in sync even if a
	// handler returns ok for a push-only request: an unrequested response
	// frame would be misread as the reply to the peer's next exchange.
	if !ok || !req.WantReply {
		return true, req.WantReply
	}
	out, err := appendResponseFrame(cs.outBuf[:0], resp)
	if err != nil {
		return false, true
	}
	cs.outBuf = out
	if _, err := conn.Write(out); err != nil {
		return false, true
	}
	stats.noteWrite(len(out))
	return true, true
}

// frameBufs pools length-prefixed frame buffers for the encode and read
// sides of the active exchange path.
var frameBufs = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 2048)
		return &b
	},
}

// respDecoders pools decoders for active-side response frames. The
// interner inside each pooled decoder warms up independently; strings it
// hands out are immutable and safely outlive the pooled decoder's reuse.
var respDecoders = sync.Pool{New: func() any { return new(Decoder) }}

// appendRequestFrame appends the length-prefixed encoding of req to dst.
func appendRequestFrame(dst []byte, req Request) ([]byte, error) {
	start := len(dst)
	out, err := AppendRequest(append(dst, 0, 0, 0, 0), req)
	return finishFrame(out, start, err)
}

// appendResponseFrame appends the length-prefixed encoding of resp to dst.
func appendResponseFrame(dst []byte, resp Response) ([]byte, error) {
	start := len(dst)
	out, err := AppendResponse(append(dst, 0, 0, 0, 0), resp)
	return finishFrame(out, start, err)
}

// finishFrame fills in the length prefix reserved by the append helpers.
func finishFrame(frame []byte, start int, err error) ([]byte, error) {
	if err != nil {
		return nil, err
	}
	binary.BigEndian.PutUint32(frame[start:], uint32(len(frame)-start-frameHeaderSize))
	return frame, nil
}

// exchangeFrames is the shared active side of the TCP transports: write
// the length-prefixed request frame over conn and, when wantReply is set,
// read and decode the response frame. The caller owns conn's lifecycle
// and deadlines. The returned response owns its buffer; the read and
// decode scratch is pooled.
func exchangeFrames(conn net.Conn, frame []byte, wantReply bool, addr string, stats *counters) (Response, bool, error) {
	if _, err := conn.Write(frame); err != nil {
		return Response{}, false, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	stats.noteWrite(len(frame))
	if !wantReply {
		return Response{}, false, nil
	}
	bufp := frameBufs.Get().(*[]byte)
	defer frameBufs.Put(bufp)
	respFrame, err := readFrameInto(conn, (*bufp)[:0])
	if err != nil {
		if errors.Is(err, errFrameTooLarge) {
			stats.dropped.Add(1)
		}
		return Response{}, false, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	*bufp = respFrame[:0]
	stats.noteRead(len(respFrame) + frameHeaderSize)
	dec := respDecoders.Get().(*Decoder)
	defer respDecoders.Put(dec)
	_, resp, isReq, err := dec.Decode(respFrame)
	if err != nil {
		stats.dropped.Add(1)
		return Response{}, false, err
	}
	if isReq {
		stats.dropped.Add(1)
		return Response{}, false, errors.New("transport: peer answered with a request frame")
	}
	// The decoded buffer aliases the pooled decoder; hand the caller an
	// owned copy (the addresses are interned and cost nothing to share).
	resp.Buffer = append([]Descriptor(nil), resp.Buffer...)
	return resp, true, nil
}

// Exchange implements Transport.
func (t *TCP) Exchange(ctx context.Context, addr string, req Request) (Response, bool, error) {
	t.mu.Lock()
	closed := t.closed
	t.mu.Unlock()
	if closed {
		return Response{}, false, ErrClosed
	}
	if err := checkLinkFault(ctx, t.Addr(), addr); err != nil {
		return Response{}, false, err
	}
	framep := frameBufs.Get().(*[]byte)
	defer frameBufs.Put(framep)
	frame, err := appendRequestFrame((*framep)[:0], req)
	if err != nil {
		return Response{}, false, err
	}
	*framep = frame[:0]
	deadline, hasDeadline := ctx.Deadline()
	if !hasDeadline {
		deadline = time.Now().Add(tcpDefaultTimeout)
	}
	d := net.Dialer{Deadline: deadline}
	conn, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return Response{}, false, fmt.Errorf("%w: %s: %v", ErrUnreachable, addr, err)
	}
	t.stats.dials.Add(1)
	defer conn.Close()
	_ = conn.SetDeadline(deadline)
	return exchangeFrames(conn, frame, req.WantReply, addr, &t.stats)
}

// Close implements Transport. It stops the listener, unblocks served
// keep-alive connections and waits for in-flight handlers to finish.
func (t *TCP) Close() error {
	t.mu.Lock()
	if t.closed {
		t.mu.Unlock()
		return nil
	}
	t.closed = true
	t.mu.Unlock()
	t.reg.closeAll()
	err := t.listener.Close()
	t.wg.Wait()
	return err
}

// TransportStats implements StatsReporter.
func (t *TCP) TransportStats() Stats { return t.stats.snapshot() }

// connRegistry tracks the connections a listener is currently serving so
// Close can unblock handlers parked in keep-alive reads; without it a
// shutdown would wait out every peer's idle timer.
type connRegistry struct {
	mu     sync.Mutex
	closed bool
	conns  map[net.Conn]struct{}
}

func newConnRegistry() *connRegistry {
	return &connRegistry{conns: make(map[net.Conn]struct{})}
}

// add registers conn, reporting false when the registry already shut down
// (the caller must close the connection instead of serving it).
func (r *connRegistry) add(conn net.Conn) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	r.conns[conn] = struct{}{}
	return true
}

func (r *connRegistry) remove(conn net.Conn) {
	r.mu.Lock()
	delete(r.conns, conn)
	r.mu.Unlock()
}

// closeAll marks the registry closed and closes every tracked connection.
func (r *connRegistry) closeAll() {
	r.mu.Lock()
	r.closed = true
	conns := make([]net.Conn, 0, len(r.conns))
	for conn := range r.conns {
		conns = append(conns, conn)
	}
	r.mu.Unlock()
	for _, conn := range conns {
		conn.Close()
	}
}

// servePersistent is the shared passive serve loop of the TCP transports:
// it reads frames from conn and hands them to handleFrame until the peer
// closes, misbehaves, exceeds its read budget, or the registry shuts
// down. The budget schedule is the box's current Limits, re-read before
// every frame so a live SetLimits takes effect on connections already
// being served: a slowloris window before the opening frame, then the
// keep-alive the connection has earned (full after its first pull,
// shrunken while it has only ever pushed). A budget expiry is counted as
// a keep-alive eviction.
// Frames carrying the app kinds are routed to the endpoint's current app
// handler (apps); an app pull earns the keep-alive budget exactly like a
// gossip pull.
func servePersistent(conn net.Conn, h Handler, stats *counters, reg *connRegistry, box *limitsBox, apps *appHandlerBox) {
	if !reg.add(conn) {
		conn.Close()
		return
	}
	defer func() {
		conn.Close()
		reg.remove(conn)
	}()
	// The connection's codec scratch: frames are read, decoded and
	// answered through these reusable buffers, so a steady gossip stream
	// costs no per-frame allocations.
	var cs connScratch
	first, pulled := true, false
	for {
		_ = conn.SetDeadline(time.Now().Add(box.load().budget(first, pulled)))
		frame, err := readFrameInto(conn, cs.readBuf[:0])
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				stats.kaEvictions.Add(1)
			} else if errors.Is(err, errFrameTooLarge) {
				stats.dropped.Add(1)
			}
			return
		}
		cs.readBuf = frame
		first = false
		stats.noteRead(len(frame) + frameHeaderSize)
		var keep, didPull bool
		if isAppFrame(frame) {
			keep, didPull = handleAppFrame(conn, frame, apps.load(), stats, &cs)
		} else {
			keep, didPull = handleFrame(conn, frame, h, stats, &cs)
		}
		pulled = pulled || didPull
		if !keep {
			return
		}
	}
}

// frameHeaderSize is the length prefix preceding every TCP frame.
const frameHeaderSize = 4

// writeFrame writes a u32 length prefix followed by the payload. The hot
// paths encode the prefix and payload into one buffer instead (see
// appendRequestFrame) to issue a single write; this helper remains for
// tests and callers that already hold a bare payload.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// errFrameTooLarge marks a length prefix beyond MaxFrameSize so callers
// can count the discarded frame in Stats.DatagramsDropped.
var errFrameTooLarge = errors.New("transport: frame exceeds size limit")

// readFrame reads one length-prefixed frame, rejecting oversized payloads.
func readFrame(r io.Reader) ([]byte, error) {
	return readFrameInto(r, nil)
}

// readFrameInto is readFrame reading the payload into buf (truncated
// first, grown only when the frame exceeds its capacity). The returned
// slice aliases buf's backing array whenever it fits.
func readFrameInto(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrameSize {
		return nil, fmt.Errorf("%w: %d bytes", errFrameTooLarge, n)
	}
	var payload []byte
	if uint32(cap(buf)) >= n {
		payload = buf[:n]
	} else {
		payload = make([]byte, n)
	}
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}
