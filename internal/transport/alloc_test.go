package transport

import (
	"context"
	"fmt"
	"testing"
)

// allocBudgetRequest is a realistic pushpull request: a full
// 30-descriptor view plus the sender's own descriptor.
func allocBudgetRequest() Request {
	buf := make([]Descriptor, 31)
	for i := range buf {
		buf[i] = Descriptor{Addr: fmt.Sprintf("10.0.%d.%d:7946", i, i), Hop: int32(i)}
	}
	return Request{From: "10.0.0.1:7946", WantReply: true, Buffer: buf}
}

// TestCodecRoundTripAllocBudget pins the pooled codec path's budget: an
// encode/decode round trip over reused buffers must stay within 2
// allocations per operation. At steady state it is zero — the encode
// buffer and descriptor scratch are caller-owned and every address is
// interned — and the budget leaves headroom only for map-internal noise.
// A regression here (say, a decode path reverting to per-address string
// allocation) jumps the count by an order of magnitude.
func TestCodecRoundTripAllocBudget(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	req := allocBudgetRequest()
	var dec Decoder
	var encBuf []byte
	roundTrip := func() {
		frame, err := AppendRequest(encBuf[:0], req)
		if err != nil {
			t.Fatal(err)
		}
		encBuf = frame
		if _, _, _, err := dec.Decode(frame); err != nil {
			t.Fatal(err)
		}
	}
	roundTrip() // grow the buffers and populate the interner
	if got := testing.AllocsPerRun(100, roundTrip); got > 2 {
		t.Errorf("pooled codec round trip allocates %.1f times, budget is 2", got)
	}
}

// TestFabricExchangeAllocBudget pins the in-memory fabric's exchange at
// its current 2 allocations: the defensive request and response buffer
// copies at the endpoint boundary, which give every handler and caller
// an owned message. Anything above 2 means a new allocation crept into
// the hot path shared by all in-process experiments.
func TestFabricExchangeAllocBudget(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	f := NewFabric()
	handler := func(req Request) (Response, bool) {
		return Response{From: "b", Buffer: req.Buffer}, req.WantReply
	}
	a, err := f.Endpoint("a", handler)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Endpoint("b", handler); err != nil {
		t.Fatal(err)
	}
	req := Request{From: "a", WantReply: true,
		Buffer: []Descriptor{{Addr: "x", Hop: 1}}}
	ctx := context.Background()
	exchange := func() {
		if _, _, err := a.Exchange(ctx, "b", req); err != nil {
			t.Fatal(err)
		}
	}
	exchange()
	if got := testing.AllocsPerRun(100, exchange); got > 2 {
		t.Errorf("fabric exchange allocates %.1f times, budget is 2", got)
	}
}
