package transport

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"
)

// echoPooled starts a pooled server echoing pull requests.
func echoPooled(t *testing.T, cfg PoolConfig) *PooledTCP {
	t.Helper()
	server, err := ListenPooledTCP("127.0.0.1:0", func(req Request) (Response, bool) {
		if !req.WantReply {
			return Response{}, false
		}
		return Response{From: "server", Buffer: req.Buffer}, true
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = server.Close() })
	return server
}

func newPooledClient(t *testing.T, cfg PoolConfig) *PooledTCP {
	t.Helper()
	client, err := ListenPooledTCP("127.0.0.1:0", func(Request) (Response, bool) { return Response{}, false }, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	return client
}

func TestPooledTCPRejectsInvalidIdleTimeout(t *testing.T) {
	h := func(Request) (Response, bool) { return Response{}, false }
	if _, err := ListenPooledTCP("127.0.0.1:0", h, PoolConfig{IdleTimeout: 5 * time.Minute}); err == nil {
		t.Error("idle timeout above the default accepted (would defeat the passive keep-alive guarantee)")
	}
	if _, err := ListenPooledTCP("127.0.0.1:0", h, PoolConfig{IdleTimeout: time.Nanosecond}); err == nil {
		t.Error("sub-millisecond idle timeout accepted")
	}
}

func TestPooledTCPRoundTrip(t *testing.T) {
	server := echoPooled(t, PoolConfig{})
	client := newPooledClient(t, PoolConfig{})
	req := Request{From: client.Addr(), WantReply: true, Buffer: []Descriptor{{Addr: "x", Hop: 2}}}
	resp, ok, err := client.Exchange(context.Background(), server.Addr(), req)
	if err != nil || !ok {
		t.Fatalf("exchange: %v ok=%v", err, ok)
	}
	if resp.From != "server" || len(resp.Buffer) != 1 || resp.Buffer[0] != req.Buffer[0] {
		t.Fatalf("resp = %+v", resp)
	}
}

func TestPooledTCPReusesConnection(t *testing.T) {
	server := echoPooled(t, PoolConfig{})
	client := newPooledClient(t, PoolConfig{})
	req := Request{From: client.Addr(), WantReply: true, Buffer: []Descriptor{{Addr: "x", Hop: 1}}}
	for i := 0; i < 5; i++ {
		if _, ok, err := client.Exchange(context.Background(), server.Addr(), req); err != nil || !ok {
			t.Fatalf("exchange %d: %v ok=%v", i, err, ok)
		}
	}
	stats := client.TransportStats()
	if stats.Dials != 1 {
		t.Errorf("dials = %d want 1 (second exchange must not re-dial)", stats.Dials)
	}
	if stats.Reuses != 4 {
		t.Errorf("reuses = %d want 4", stats.Reuses)
	}
	if stats.BytesOut == 0 || stats.BytesIn == 0 {
		t.Errorf("byte counters not advancing: %+v", stats)
	}
}

func TestPooledTCPPushOnly(t *testing.T) {
	received := make(chan Request, 2)
	server, err := ListenPooledTCP("127.0.0.1:0", func(req Request) (Response, bool) {
		received <- req
		return Response{}, false
	}, PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client := newPooledClient(t, PoolConfig{})

	// Two pushes must travel over one pooled connection.
	for i := 0; i < 2; i++ {
		_, ok, err := client.Exchange(context.Background(), server.Addr(), Request{From: client.Addr()})
		if err != nil || ok {
			t.Fatalf("push %d: %v ok=%v", i, err, ok)
		}
		select {
		case req := <-received:
			if req.From != client.Addr() {
				t.Errorf("server saw From=%q", req.From)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("server never received the push")
		}
	}
	if stats := client.TransportStats(); stats.Dials != 1 || stats.Reuses != 1 {
		t.Errorf("stats = %+v want one dial, one reuse", stats)
	}
}

func TestPooledTCPIdleEviction(t *testing.T) {
	cfg := PoolConfig{IdleTimeout: 40 * time.Millisecond}
	server := echoPooled(t, cfg)
	client := newPooledClient(t, cfg)
	req := Request{From: client.Addr(), WantReply: true}
	if _, _, err := client.Exchange(context.Background(), server.Addr(), req); err != nil {
		t.Fatal(err)
	}
	// Wait for the sweeper (period IdleTimeout/4) to evict the idle conn.
	deadline := time.Now().Add(2 * time.Second)
	for {
		client.mu.Lock()
		idle := len(client.idle[server.Addr()])
		client.mu.Unlock()
		if idle == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("idle connection never evicted")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if _, _, err := client.Exchange(context.Background(), server.Addr(), req); err != nil {
		t.Fatal(err)
	}
	if stats := client.TransportStats(); stats.Dials != 2 {
		t.Errorf("dials = %d want 2 (fresh dial after eviction)", stats.Dials)
	}
}

func TestPooledTCPRetriesStaleConnection(t *testing.T) {
	// Give only the client a long idle timeout; restart-like staleness is
	// simulated by closing the server between exchanges.
	server := echoPooled(t, PoolConfig{})
	client := newPooledClient(t, PoolConfig{})
	req := Request{From: client.Addr(), WantReply: true}
	if _, _, err := client.Exchange(context.Background(), server.Addr(), req); err != nil {
		t.Fatal(err)
	}
	addr := server.Addr()
	if err := server.Close(); err != nil {
		t.Fatal(err)
	}
	// Bring a new server up on the same address.
	server2, err := ListenPooledTCP(addr, func(req Request) (Response, bool) {
		return Response{From: "reborn", Buffer: req.Buffer}, req.WantReply
	}, PoolConfig{})
	if err != nil {
		t.Skipf("could not rebind %s: %v", addr, err)
	}
	defer server2.Close()
	// The pooled conn is now stale; the exchange must retry on a fresh dial.
	resp, ok, err := client.Exchange(context.Background(), addr, req)
	if err != nil || !ok {
		t.Fatalf("exchange via stale conn: %v ok=%v", err, ok)
	}
	if resp.From != "reborn" {
		t.Errorf("resp.From = %q", resp.From)
	}
	if stats := client.TransportStats(); stats.Dials != 2 {
		t.Errorf("dials = %d want 2", stats.Dials)
	}
}

func TestPooledTCPConcurrentExchanges(t *testing.T) {
	server := echoPooled(t, PoolConfig{})
	client := newPooledClient(t, PoolConfig{})
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			req := Request{From: client.Addr(), WantReply: true,
				Buffer: []Descriptor{{Addr: fmt.Sprintf("peer-%d", i), Hop: int32(i)}}}
			resp, ok, err := client.Exchange(context.Background(), server.Addr(), req)
			if err != nil || !ok {
				errs <- fmt.Errorf("exchange %d: %v ok=%v", i, err, ok)
				return
			}
			if len(resp.Buffer) != 1 || resp.Buffer[0] != req.Buffer[0] {
				errs <- fmt.Errorf("exchange %d got foreign response %+v", i, resp)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	// At most MaxIdlePerPeer conns are retained once the burst drains.
	client.mu.Lock()
	idle := len(client.idle[server.Addr()])
	client.mu.Unlock()
	if idle > DefaultMaxIdlePerPeer {
		t.Errorf("idle pool holds %d conns, cap is %d", idle, DefaultMaxIdlePerPeer)
	}
}

// TestPooledTCPMisbehavedHandlerKeepsStreamInSync guards the persistent
// stream against handlers that return ok for push-only requests: the
// passive side must not write an unrequested response frame, which would
// be misread as the reply to the peer's next exchange.
func TestPooledTCPMisbehavedHandlerKeepsStreamInSync(t *testing.T) {
	server, err := ListenPooledTCP("127.0.0.1:0", func(req Request) (Response, bool) {
		// Always claim a response, even for WantReply=false pushes.
		return Response{From: "server", Buffer: req.Buffer}, true
	}, PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client := newPooledClient(t, PoolConfig{})

	// A push followed by a pushpull over the same pooled connection.
	if _, ok, err := client.Exchange(context.Background(), server.Addr(),
		Request{From: client.Addr()}); err != nil || ok {
		t.Fatalf("push: %v ok=%v", err, ok)
	}
	want := Descriptor{Addr: "marker", Hop: 7}
	resp, ok, err := client.Exchange(context.Background(), server.Addr(),
		Request{From: client.Addr(), WantReply: true, Buffer: []Descriptor{want}})
	if err != nil || !ok {
		t.Fatalf("pushpull: %v ok=%v", err, ok)
	}
	if len(resp.Buffer) != 1 || resp.Buffer[0] != want {
		t.Fatalf("stream desynced: got stale response %+v", resp)
	}
}

// TestPooledTCPPushNeverReusesAgedConn guards push-only exchanges against
// silent loss: a connection idle past the timeout may have been closed by
// the peer's (longer) passive deadline, and a push written into it would
// vanish into the kernel buffer without an error. borrow must discard it
// and dial fresh even before the periodic sweep notices.
func TestPooledTCPPushNeverReusesAgedConn(t *testing.T) {
	received := make(chan Request, 2)
	server, err := ListenPooledTCP("127.0.0.1:0", func(req Request) (Response, bool) {
		received <- req
		return Response{}, false
	}, PoolConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	cfg := PoolConfig{IdleTimeout: 50 * time.Millisecond}
	client := newPooledClient(t, cfg)
	push := Request{From: client.Addr()}
	if _, _, err := client.Exchange(context.Background(), server.Addr(), push); err != nil {
		t.Fatal(err)
	}
	<-received
	// Age the pooled connection past the client's idle timeout, then force
	// it back into the pool so only the borrow-time check can reject it.
	client.mu.Lock()
	for _, pc := range client.idle[server.Addr()] {
		pc.idleFrom = pc.idleFrom.Add(-2 * cfg.IdleTimeout)
	}
	client.mu.Unlock()
	if _, _, err := client.Exchange(context.Background(), server.Addr(), push); err != nil {
		t.Fatal(err)
	}
	select {
	case <-received:
	case <-time.After(2 * time.Second):
		t.Fatal("second push lost")
	}
	if stats := client.TransportStats(); stats.Dials != 2 || stats.Reuses != 0 {
		t.Errorf("stats = %+v want 2 dials, 0 reuses (aged conn must not carry a push)", stats)
	}
}

// TestPooledClientAgainstPlainTCPServer covers mixed-backend clusters:
// the plain TCP passive side must serve a persistent client's frames in a
// loop, so pooled pushes are neither lost in one-shot connections nor
// forced to re-dial.
func TestPooledClientAgainstPlainTCPServer(t *testing.T) {
	received := make(chan Request, 3)
	server, err := ListenTCP("127.0.0.1:0", func(req Request) (Response, bool) {
		received <- req
		return Response{From: "plain", Buffer: req.Buffer}, req.WantReply
	})
	if err != nil {
		t.Fatal(err)
	}
	defer server.Close()
	client := newPooledClient(t, PoolConfig{})

	// Pushes and a pushpull interleaved over one pooled connection.
	for i := 0; i < 2; i++ {
		if _, ok, err := client.Exchange(context.Background(), server.Addr(),
			Request{From: client.Addr()}); err != nil || ok {
			t.Fatalf("push %d: %v ok=%v", i, err, ok)
		}
		select {
		case <-received:
		case <-time.After(2 * time.Second):
			t.Fatalf("push %d lost against plain TCP server", i)
		}
	}
	resp, ok, err := client.Exchange(context.Background(), server.Addr(),
		Request{From: client.Addr(), WantReply: true})
	if err != nil || !ok || resp.From != "plain" {
		t.Fatalf("pushpull: %v ok=%v resp=%+v", err, ok, resp)
	}
	if stats := client.TransportStats(); stats.Dials != 1 || stats.Reuses != 2 {
		t.Errorf("stats = %+v want 1 dial, 2 reuses", stats)
	}
}

func TestPooledTCPClose(t *testing.T) {
	server := echoPooled(t, PoolConfig{})
	client := newPooledClient(t, PoolConfig{})
	if _, _, err := client.Exchange(context.Background(), server.Addr(),
		Request{From: client.Addr(), WantReply: true}); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if err := client.Close(); err != nil { // idempotent
		t.Errorf("second close: %v", err)
	}
	_, _, err := client.Exchange(context.Background(), server.Addr(), Request{From: "x"})
	if !errors.Is(err, ErrClosed) {
		t.Errorf("exchange after close: %v want ErrClosed", err)
	}
}
