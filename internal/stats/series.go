package stats

import "fmt"

// Series is a named per-cycle time series of a scalar overlay property,
// the unit of data behind every line in the paper's figures.
type Series struct {
	Name   string
	Cycles []int
	Values []float64
}

// NewSeries returns an empty named series.
func NewSeries(name string) *Series {
	return &Series{Name: name}
}

// Append records value at the given cycle. Cycles must be appended in
// strictly increasing order; Append panics otherwise, since out-of-order
// recording always indicates a driver bug.
func (s *Series) Append(cycle int, value float64) {
	if n := len(s.Cycles); n > 0 && cycle <= s.Cycles[n-1] {
		panic(fmt.Sprintf("stats: cycle %d appended after %d in series %q", cycle, s.Cycles[n-1], s.Name))
	}
	s.Cycles = append(s.Cycles, cycle)
	s.Values = append(s.Values, value)
}

// Len returns the number of recorded points.
func (s *Series) Len() int { return len(s.Cycles) }

// Last returns the most recent value, or 0 if the series is empty.
func (s *Series) Last() float64 {
	if len(s.Values) == 0 {
		return 0
	}
	return s.Values[len(s.Values)-1]
}

// At returns the value recorded for the given cycle and whether one
// exists (binary search).
func (s *Series) At(cycle int) (float64, bool) {
	lo, hi := 0, len(s.Cycles)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.Cycles[mid] < cycle {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(s.Cycles) && s.Cycles[lo] == cycle {
		return s.Values[lo], true
	}
	return 0, false
}

// Window returns the values recorded for cycles in [from, to).
func (s *Series) Window(from, to int) []float64 {
	out := make([]float64, 0)
	for i, c := range s.Cycles {
		if c >= from && c < to {
			out = append(out, s.Values[i])
		}
	}
	return out
}

// ConvergedValue returns the mean over the final tail fraction of the
// series (e.g. 0.2 for the last 20% of points), a simple scalar summary
// of what a converged property plot settles at.
func (s *Series) ConvergedValue(tailFraction float64) float64 {
	if len(s.Values) == 0 {
		return 0
	}
	start := int(float64(len(s.Values)) * (1 - tailFraction))
	if start < 0 {
		start = 0
	}
	if start >= len(s.Values) {
		start = len(s.Values) - 1
	}
	return Mean(s.Values[start:])
}
