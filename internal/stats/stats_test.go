package stats

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func almost(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); !almost(got, 5, 1e-12) {
		t.Errorf("mean = %v want 5", got)
	}
	// Sample variance with n-1: sum sq dev = 32, /7.
	if got := Variance(xs); !almost(got, 32.0/7.0, 1e-12) {
		t.Errorf("variance = %v want %v", got, 32.0/7.0)
	}
	if got := StdDev(xs); !almost(got, math.Sqrt(32.0/7.0), 1e-12) {
		t.Errorf("stddev = %v", got)
	}
	if Mean(nil) != 0 || Variance(nil) != 0 || Variance([]float64{1}) != 0 {
		t.Error("empty/single-sample edge cases wrong")
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{3, 1, 2})
	if s.N != 3 || s.Min != 1 || s.Max != 3 || !almost(s.Mean, 2, 1e-12) {
		t.Errorf("summary = %+v", s)
	}
	if !almost(s.Var, 1, 1e-12) || !almost(s.StdDev, 1, 1e-12) {
		t.Errorf("variance = %v stddev = %v want 1", s.Var, s.StdDev)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Errorf("empty summary = %+v", z)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{10, 20, 30, 40}
	if got := Quantile(xs, 0); got != 10 {
		t.Errorf("q0 = %v", got)
	}
	if got := Quantile(xs, 1); got != 40 {
		t.Errorf("q1 = %v", got)
	}
	if got := Quantile(xs, 0.5); !almost(got, 25, 1e-12) {
		t.Errorf("median = %v want 25", got)
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile != 0")
	}
}

func TestAutocorrelationBasics(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	series := make([]float64, 500)
	for i := range series {
		series[i] = rng.Float64()
	}
	r := Autocorrelation(series, 20)
	if !almost(r[0], 1, 1e-12) {
		t.Errorf("r0 = %v want 1", r[0])
	}
	band := ConfidenceBand(len(series), Z99)
	outside := 0
	for _, rk := range r[1:] {
		if math.Abs(rk) > band {
			outside++
		}
	}
	if outside > 2 {
		t.Errorf("%d of 20 lags outside 99%% band for white noise", outside)
	}
}

func TestAutocorrelationPeriodicSeries(t *testing.T) {
	// Period-10 sine: strong positive correlation at lag 10, negative at 5.
	series := make([]float64, 300)
	for i := range series {
		series[i] = math.Sin(2 * math.Pi * float64(i) / 10)
	}
	r := Autocorrelation(series, 12)
	if r[10] < 0.9 {
		t.Errorf("r10 = %v want ~1 for period-10 series", r[10])
	}
	if r[5] > -0.9 {
		t.Errorf("r5 = %v want ~-1 for period-10 series", r[5])
	}
}

func TestAutocorrelationDegenerate(t *testing.T) {
	r := Autocorrelation([]float64{5, 5, 5, 5}, 3)
	for lag, v := range r {
		if v != 0 {
			t.Errorf("constant series r%d = %v want 0", lag, v)
		}
	}
	r = Autocorrelation(nil, 2)
	if len(r) != 3 || r[0] != 0 {
		t.Errorf("empty series result = %v", r)
	}
	// Lags beyond series length are 0.
	r = Autocorrelation([]float64{1, 2}, 5)
	if r[3] != 0 || r[5] != 0 {
		t.Errorf("overlong lags = %v", r)
	}
}

func TestAutocorrelationBounded(t *testing.T) {
	f := func(raw []int8) bool {
		if len(raw) < 3 {
			return true
		}
		series := make([]float64, len(raw))
		for i, v := range raw {
			series[i] = float64(v)
		}
		r := Autocorrelation(series, len(series)-1)
		for _, rk := range r {
			// The paper's estimator is bounded by 1 in absolute value
			// (Cauchy-Schwarz, with the truncated numerator only helping).
			if rk > 1+1e-9 || rk < -1-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestConfidenceBand(t *testing.T) {
	if got := ConfidenceBand(300, Z99); !almost(got, 2.576/math.Sqrt(300), 1e-12) {
		t.Errorf("band = %v", got)
	}
	if !math.IsInf(ConfidenceBand(0, Z99), 1) {
		t.Error("band for k=0 not infinite")
	}
}

func TestFreqTable(t *testing.T) {
	ft := NewFreqTable([]int{3, 1, 3, 2, 3, 1})
	if ft.Total() != 6 {
		t.Errorf("total = %d", ft.Total())
	}
	if ft.CountOf(3) != 3 || ft.CountOf(1) != 2 || ft.CountOf(9) != 0 {
		t.Error("counts wrong")
	}
	if v, c := ft.Max(); v != 3 || c != 3 {
		t.Errorf("max = %d,%d", v, c)
	}
	if got := ft.TailWeight(2); !almost(got, 0.5, 1e-12) {
		t.Errorf("tail weight = %v want 0.5", got)
	}
	if got := ft.TailWeight(100); got != 0 {
		t.Errorf("tail weight beyond max = %v", got)
	}
	if ft.String() != "1:2 2:1 3:3" {
		t.Errorf("String = %q", ft.String())
	}
	empty := NewFreqTable(nil)
	if v, c := empty.Max(); v != 0 || c != 0 || empty.TailWeight(0) != 0 {
		t.Error("empty table edge cases wrong")
	}
}

func TestSeries(t *testing.T) {
	s := NewSeries("deg")
	s.Append(0, 10)
	s.Append(5, 20)
	s.Append(6, 30)
	if s.Len() != 3 || s.Last() != 30 {
		t.Error("len/last wrong")
	}
	if v, ok := s.At(5); !ok || v != 20 {
		t.Errorf("At(5) = %v,%v", v, ok)
	}
	if _, ok := s.At(4); ok {
		t.Error("At(4) found phantom point")
	}
	w := s.Window(0, 6)
	if len(w) != 2 || w[1] != 20 {
		t.Errorf("window = %v", w)
	}
	if got := s.ConvergedValue(0.5); !almost(got, 25, 1e-12) {
		t.Errorf("converged = %v want 25", got)
	}
	if NewSeries("x").Last() != 0 || NewSeries("x").ConvergedValue(0.2) != 0 {
		t.Error("empty series edge cases wrong")
	}
}

func TestSeriesAppendOutOfOrderPanics(t *testing.T) {
	s := NewSeries("x")
	s.Append(3, 1)
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-order append did not panic")
		}
	}()
	s.Append(3, 2)
}
