package stats

import "math"

// ChiSquareUniform returns Pearson's chi-square statistic of the observed
// counts against the uniform distribution over the same support,
// normalised by the degrees of freedom (len(counts)-1). A value near 1 is
// consistent with uniform sampling; values far above 1 indicate
// systematic bias. It returns 0 for fewer than two cells or no
// observations.
func ChiSquareUniform(counts []int) float64 {
	if len(counts) < 2 {
		return 0
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	expected := float64(total) / float64(len(counts))
	x2 := 0.0
	for _, c := range counts {
		d := float64(c) - expected
		x2 += d * d / expected
	}
	return x2 / float64(len(counts)-1)
}

// TotalVariationUniform returns the total variation distance between the
// empirical distribution of counts and the uniform distribution over the
// same support: 0 means identical, 1 means disjoint. It returns 0 for an
// empty or all-zero input.
func TotalVariationUniform(counts []int) float64 {
	if len(counts) == 0 {
		return 0
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	uniform := 1 / float64(len(counts))
	tv := 0.0
	for _, c := range counts {
		tv += math.Abs(float64(c)/float64(total) - uniform)
	}
	return tv / 2
}

// Entropy returns the Shannon entropy (in bits) of the empirical
// distribution of counts; the maximum log2(len(counts)) is attained by
// the uniform distribution.
func Entropy(counts []int) float64 {
	total := 0
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	h := 0.0
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := float64(c) / float64(total)
		h -= p * math.Log2(p)
	}
	return h
}

// NormalizedEntropy returns Entropy divided by its maximum log2(n); 1
// means perfectly uniform. It returns 0 for degenerate inputs.
func NormalizedEntropy(counts []int) float64 {
	if len(counts) < 2 {
		return 0
	}
	max := math.Log2(float64(len(counts)))
	return Entropy(counts) / max
}
