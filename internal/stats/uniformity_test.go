package stats

import (
	"math"
	"math/rand/v2"
	"testing"
)

func TestChiSquareUniform(t *testing.T) {
	// Perfectly uniform counts: statistic exactly 0.
	if got := ChiSquareUniform([]int{10, 10, 10, 10}); got != 0 {
		t.Errorf("uniform counts chi2 = %v want 0", got)
	}
	// Sampling from a true uniform distribution: normalised statistic
	// concentrates near 1.
	rng := rand.New(rand.NewPCG(1, 1))
	counts := make([]int, 200)
	for i := 0; i < 200*500; i++ {
		counts[rng.IntN(200)]++
	}
	if got := ChiSquareUniform(counts); got < 0.6 || got > 1.6 {
		t.Errorf("uniform sampling chi2/df = %v want ~1", got)
	}
	// A heavily biased distribution scores far above 1.
	biased := make([]int, 200)
	for i := 0; i < 200*500; i++ {
		if rng.Float64() < 0.5 {
			biased[rng.IntN(10)]++ // half the mass on 5% of the cells
		} else {
			biased[rng.IntN(200)]++
		}
	}
	if got := ChiSquareUniform(biased); got < 10 {
		t.Errorf("biased sampling chi2/df = %v want >> 1", got)
	}
	// Degenerate inputs.
	if ChiSquareUniform(nil) != 0 || ChiSquareUniform([]int{5}) != 0 || ChiSquareUniform([]int{0, 0}) != 0 {
		t.Error("degenerate inputs must score 0")
	}
}

func TestTotalVariationUniform(t *testing.T) {
	if got := TotalVariationUniform([]int{5, 5, 5, 5}); got != 0 {
		t.Errorf("uniform TV = %v want 0", got)
	}
	// All mass on one of n cells: TV = 1 - 1/n.
	if got, want := TotalVariationUniform([]int{12, 0, 0, 0}), 0.75; math.Abs(got-want) > 1e-12 {
		t.Errorf("point-mass TV = %v want %v", got, want)
	}
	if TotalVariationUniform(nil) != 0 || TotalVariationUniform([]int{0, 0}) != 0 {
		t.Error("degenerate inputs must score 0")
	}
}

func TestEntropy(t *testing.T) {
	if got := Entropy([]int{8, 8}); math.Abs(got-1) > 1e-12 {
		t.Errorf("fair coin entropy = %v want 1", got)
	}
	if got := Entropy([]int{16, 0}); got != 0 {
		t.Errorf("point mass entropy = %v want 0", got)
	}
	if got := NormalizedEntropy([]int{4, 4, 4, 4}); math.Abs(got-1) > 1e-12 {
		t.Errorf("uniform normalised entropy = %v want 1", got)
	}
	if NormalizedEntropy([]int{7}) != 0 || NormalizedEntropy(nil) != 0 {
		t.Error("degenerate normalised entropy must be 0")
	}
	if Entropy(nil) != 0 {
		t.Error("empty entropy must be 0")
	}
}
