package stats

import (
	"fmt"
	"sort"
	"strings"
)

// FreqTable is a sorted value -> count frequency table, the exact form of
// the paper's Figure 4 degree distributions (plotted on log-log axes).
type FreqTable struct {
	Values []int // sorted ascending
	Counts []int // Counts[i] is the frequency of Values[i]
}

// NewFreqTable tallies the given integer observations.
func NewFreqTable(observations []int) FreqTable {
	m := make(map[int]int)
	for _, o := range observations {
		m[o]++
	}
	t := FreqTable{
		Values: make([]int, 0, len(m)),
		Counts: make([]int, 0, len(m)),
	}
	for v := range m {
		t.Values = append(t.Values, v)
	}
	sort.Ints(t.Values)
	for _, v := range t.Values {
		t.Counts = append(t.Counts, m[v])
	}
	return t
}

// Total returns the number of observations tallied.
func (t FreqTable) Total() int {
	sum := 0
	for _, c := range t.Counts {
		sum += c
	}
	return sum
}

// CountOf returns the frequency recorded for value v.
func (t FreqTable) CountOf(v int) int {
	i := sort.SearchInts(t.Values, v)
	if i < len(t.Values) && t.Values[i] == v {
		return t.Counts[i]
	}
	return 0
}

// Max returns the value with the highest frequency (ties broken toward
// the smaller value) and its count. It returns (0,0) for an empty table.
func (t FreqTable) Max() (value, count int) {
	for i, c := range t.Counts {
		if c > count {
			value, count = t.Values[i], c
		}
	}
	return value, count
}

// TailWeight returns the fraction of observations strictly greater than
// threshold — a scalar proxy for how heavy the upper tail of a degree
// distribution is.
func (t FreqTable) TailWeight(threshold int) float64 {
	total := t.Total()
	if total == 0 {
		return 0
	}
	tail := 0
	for i, v := range t.Values {
		if v > threshold {
			tail += t.Counts[i]
		}
	}
	return float64(tail) / float64(total)
}

// String renders "value:count" pairs separated by spaces.
func (t FreqTable) String() string {
	var b strings.Builder
	for i, v := range t.Values {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%d:%d", v, t.Counts[i])
	}
	return b.String()
}
