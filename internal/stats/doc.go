// Package stats provides the small statistical toolkit used by the
// experimental methodology: summary statistics, the paper's degree
// autocorrelation measure (Section 4.4's evolution of individual node
// degrees), frequency tables for degree distributions (Figure 4), uniform
// sampling diagnostics (chi-square against the uniform expectation, used
// to judge getPeer() quality), and per-cycle time series recording for
// the dynamics figures.
//
// Everything here is deterministic arithmetic over recorded observations;
// randomness lives with the callers (internal/sim, internal/scenario) so
// that an experiment's statistics are a pure function of its trace.
package stats
