package stats

import "math"

// Autocorrelation computes the sample autocorrelation of the series for
// lags 0..maxLag using the paper's estimator:
//
//	r_k = sum_{j=1}^{K-k} (d_j - mean)(d_{j+k} - mean) /
//	      sum_{j=1}^{K}   (d_j - mean)^2
//
// r_0 is 1 by construction. For a constant series (zero variance) all
// correlations are reported as 0, including r_0, since the measure is
// undefined there. Lags beyond the series length yield 0.
func Autocorrelation(series []float64, maxLag int) []float64 {
	out := make([]float64, maxLag+1)
	k := len(series)
	if k == 0 {
		return out
	}
	mean := Mean(series)
	denom := 0.0
	for _, x := range series {
		d := x - mean
		denom += d * d
	}
	if denom == 0 {
		return out
	}
	for lag := 0; lag <= maxLag && lag < k; lag++ {
		num := 0.0
		for j := 0; j+lag < k; j++ {
			num += (series[j] - mean) * (series[j+lag] - mean)
		}
		out[lag] = num / denom
	}
	return out
}

// ConfidenceBand returns the half-width of the approximate confidence
// interval around zero for the autocorrelation of an i.i.d. series of
// length k: z/sqrt(k). Use z=2.576 for the paper's 99% band.
func ConfidenceBand(k int, z float64) float64 {
	if k <= 0 {
		return math.Inf(1)
	}
	return z / math.Sqrt(float64(k))
}

// Z99 is the standard normal quantile for a two-sided 99% confidence
// interval.
const Z99 = 2.576
