package stats

import (
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased sample variance of xs (denominator n-1,
// matching the paper's empirical variance of node-degree time averages).
// It returns 0 for fewer than two samples.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	sum := 0.0
	for _, x := range xs {
		d := x - m
		sum += d * d
	}
	return sum / float64(len(xs)-1)
}

// StdDev returns the square root of the unbiased sample variance.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Summary holds descriptive statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Var    float64
	StdDev float64
	Min    float64
	Max    float64
}

// Summarize computes a Summary of xs. The zero Summary is returned for an
// empty sample.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{
		N:    len(xs),
		Mean: Mean(xs),
		Var:  Variance(xs),
		Min:  xs[0],
		Max:  xs[0],
	}
	s.StdDev = math.Sqrt(s.Var)
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	return s
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns 0 for an empty
// sample.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}
