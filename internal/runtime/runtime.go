// Package runtime is the asynchronous, deployable implementation of the
// peer sampling service: each node runs the active and passive threads of
// the paper's Figure 1 as goroutines over a pluggable transport, and
// exposes the paper's two-method API (init and getPeer) as Service.
//
// The cycle-based simulator (internal/sim) and this runtime share the same
// protocol state machine (internal/core); the runtime adds real time,
// concurrency and message passing.
package runtime

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"strings"
	"sync"
	"time"

	"peersampling/internal/core"
	"peersampling/internal/transport"
)

// Service is the peer sampling service API of Section 2 of the paper.
type Service interface {
	// Init initialises the service with one or more contact addresses
	// (the paper's init(); bootstrap is outside the protocol proper).
	Init(contacts []string) error
	// GetPeer returns the address of a peer sampled from the service's
	// current view (the paper's getPeer()).
	GetPeer() (string, error)
}

// Config parameterises a runtime node.
type Config struct {
	// Protocol is the gossip protocol tuple to execute.
	Protocol core.Protocol
	// ViewSize is the partial view capacity c.
	ViewSize int
	// Period is the cycle length T of the active thread. Zero selects
	// DefaultPeriod.
	Period time.Duration
	// Seed makes peer/view selection deterministic; zero derives a seed
	// from the address.
	Seed uint64
	// ExchangeTimeout bounds one exchange; zero selects DefaultTimeout.
	ExchangeTimeout time.Duration
	// Diverse makes GetPeer cycle through a shuffled copy of the view
	// before repeating any peer — the "maximize diversity" refinement the
	// paper sketches for getPeer implementations.
	Diverse bool
	// OnError, when set, observes failed exchanges (unreachable peers,
	// timeouts). Errors are expected during churn and never fatal.
	//
	// Concurrency contract: OnError may be called concurrently from both
	// threads of control that drive exchanges — the node's own active
	// thread (started by Start) and any goroutine calling Tick directly —
	// and a Combined service whose two instances share one callback adds
	// two more. Implementations must therefore be safe for concurrent use
	// (an atomic counter suffices; no external locking is provided). The
	// callback is invoked with no node locks held, so it may call back
	// into the node (View, Stats, GetPeer) without deadlocking.
	OnError func(error)
}

// Defaults for Config zero values.
const (
	DefaultPeriod  = time.Second
	DefaultTimeout = 5 * time.Second
)

// Node is a runtime peer sampling node.
type Node struct {
	cfg       Config
	transport transport.Transport

	mu    sync.Mutex
	state *core.Node[string]
	rng   *rand.Rand // seeded sampling RNG for Diverse mode (guarded by mu)
	queue []string   // shuffled sampling queue for Diverse mode

	runMu   sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	started bool
	closed  bool

	exchanges  uint64 // completed active exchanges
	failures   uint64 // failed active exchanges
	handled    uint64 // passive exchanges served
	cyclesObsv uint64 // active cycles run

	// lat holds round-trip times of completed active exchanges (failures
	// are counted, not timed — a timeout would only ever record the
	// configured deadline). Atomic internally, so it lives outside mu.
	lat transport.LatencyHistogram
}

var _ Service = (*Node)(nil)

// New constructs a node and its transport endpoint using the given
// factory. The node's address is whatever the transport reports.
func New(cfg Config, factory transport.Factory) (*Node, error) {
	if !cfg.Protocol.Valid() {
		return nil, fmt.Errorf("runtime: invalid protocol %+v", cfg.Protocol)
	}
	if cfg.ViewSize <= 0 {
		return nil, fmt.Errorf("runtime: view size must be positive, got %d", cfg.ViewSize)
	}
	if cfg.Period == 0 {
		cfg.Period = DefaultPeriod
	}
	if cfg.ExchangeTimeout == 0 {
		cfg.ExchangeTimeout = DefaultTimeout
	}
	n := &Node{cfg: cfg}
	tr, err := factory(n.handleRequest)
	if err != nil {
		return nil, fmt.Errorf("runtime: transport: %w", err)
	}
	n.transport = tr
	seed := cfg.Seed
	if seed == 0 {
		seed = hashString(tr.Addr())
	}
	state, err := core.NewNode(tr.Addr(), cfg.Protocol, cfg.ViewSize,
		rand.New(rand.NewPCG(seed, 0x90DE)))
	if err != nil {
		_ = tr.Close()
		return nil, err
	}
	n.state = state
	// A distinct stream keeps GetPeer sampling from perturbing the
	// protocol's own peer/view selection sequence.
	n.rng = rand.New(rand.NewPCG(seed, 0x6E7))
	return n, nil
}

// Addr returns the node's transport address.
func (n *Node) Addr() string { return n.transport.Addr() }

// Protocol returns the protocol tuple the node executes.
func (n *Node) Protocol() core.Protocol { return n.cfg.Protocol }

// Init implements Service: it seeds the view with the contact addresses at
// hop count zero. Calling Init on a node that already has a view merely
// adds the contacts, which matches the paper's "initializes the service
// ... if this has not been done before". Contact addresses are trimmed of
// surrounding whitespace; the node's own address is dropped (a view must
// never contain its owner) and duplicate contacts collapse to one entry.
func (n *Node) Init(contacts []string) error {
	self := n.transport.Addr()
	descs := make([]core.Descriptor[string], 0, len(contacts))
	for _, c := range contacts {
		c = strings.TrimSpace(c)
		if c == "" {
			return errors.New("runtime: empty contact address")
		}
		if c == self || containsContact(descs, c) {
			continue
		}
		descs = append(descs, core.Descriptor[string]{Addr: c, Hop: 0})
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.state.View().Len() == 0 {
		n.state.Bootstrap(descs)
		return nil
	}
	merged := core.Merge(descs, n.state.View().Descriptors())
	n.state.View().SetAll(merged)
	return nil
}

// GetPeer implements Service.
func (n *Node) GetPeer() (string, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if !n.cfg.Diverse {
		return n.state.RandomPeer()
	}
	// Diverse mode: drain a shuffled snapshot of the view, refilling it
	// when exhausted, so consecutive calls repeat a peer as rarely as the
	// view allows.
	for len(n.queue) > 0 {
		peer := n.queue[len(n.queue)-1]
		n.queue = n.queue[:len(n.queue)-1]
		if n.state.View().Contains(peer) {
			return peer, nil
		}
	}
	addrs := n.state.View().Addresses()
	if len(addrs) == 0 {
		return "", core.ErrEmptyView
	}
	n.rng.Shuffle(len(addrs), func(i, j int) { addrs[i], addrs[j] = addrs[j], addrs[i] })
	n.queue = addrs[1:]
	return addrs[0], nil
}

// View returns a copy of the node's current view descriptors.
func (n *Node) View() []core.Descriptor[string] {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state.View().Descriptors()
}

// Stats reports lifetime counters: active cycles run, completed and failed
// active exchanges, and passive exchanges served.
func (n *Node) Stats() (cycles, exchanges, failures, handled uint64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cyclesObsv, n.exchanges, n.failures, n.handled
}

// TransportStats reports the endpoint's wire-level counters (dials,
// connection reuses, bytes in/out, dropped datagrams). ok is false when
// the underlying transport keeps no counters (e.g. the in-memory fabric).
func (n *Node) TransportStats() (stats transport.Stats, ok bool) {
	r, ok := n.transport.(transport.StatsReporter)
	if !ok {
		return transport.Stats{}, false
	}
	return r.TransportStats(), true
}

// SetTransportLimits replaces the transport's hardening limits on the
// live endpoint — the hot path of a daemon config reload. ok is false
// when the underlying transport has no adjustable limits (e.g. the
// in-memory fabric), which is not an error: the caller's limits simply
// have nowhere to apply.
func (n *Node) SetTransportLimits(lim transport.Limits) (ok bool, err error) {
	u, ok := n.transport.(transport.LimitsUpdater)
	if !ok {
		return false, nil
	}
	return true, u.SetLimits(lim)
}

// Start launches the active thread: every Period the node ages its view
// and initiates one exchange, per Figure 1. Start is idempotent until
// Close.
func (n *Node) Start() error {
	n.runMu.Lock()
	defer n.runMu.Unlock()
	if n.closed {
		return errors.New("runtime: node closed")
	}
	if n.started {
		return nil
	}
	n.started = true
	n.stop = make(chan struct{})
	n.done = make(chan struct{})
	go n.activeLoop(n.stop, n.done)
	return nil
}

// Close stops the active thread and shuts the transport down.
func (n *Node) Close() error {
	n.runMu.Lock()
	if n.closed {
		n.runMu.Unlock()
		return nil
	}
	n.closed = true
	started := n.started
	stop, done := n.stop, n.done
	n.runMu.Unlock()
	if started {
		close(stop)
		<-done
	}
	return n.transport.Close()
}

func (n *Node) activeLoop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	ticker := time.NewTicker(n.cfg.Period)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			n.Tick()
		}
	}
}

// Tick runs one active cycle synchronously: age the view, select a peer,
// exchange. Tests and single-threaded drivers call it directly; Start
// calls it on the period ticker.
func (n *Node) Tick() {
	n.mu.Lock()
	n.cyclesObsv++
	n.state.AgeView()
	peer, req, err := n.state.InitiateExchange()
	n.mu.Unlock()
	if err != nil {
		return // empty view; wait for bootstrap or an incoming exchange
	}

	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.ExchangeTimeout)
	defer cancel()
	began := time.Now()
	resp, ok, err := n.transport.Exchange(ctx, peer, req)
	elapsed := time.Since(began)

	n.mu.Lock()
	if err != nil {
		n.failures++
		n.state.OnExchangeFailed(peer)
		n.mu.Unlock()
		// Invoked outside the node lock so the callback may call back into
		// the node; see the Config.OnError contract.
		if n.cfg.OnError != nil {
			n.cfg.OnError(fmt.Errorf("runtime: exchange with %s: %w", peer, err))
		}
		return
	}
	n.exchanges++
	if ok {
		n.state.HandleResponse(resp)
	}
	n.mu.Unlock()
	n.lat.Observe(elapsed)
}

// SetAppHandler installs h as the node's application payload handler,
// delivered incoming workload messages by the transport. ok is false
// when the transport cannot carry app payloads (none of the real
// backends decline; a custom Factory might).
func (n *Node) SetAppHandler(h transport.AppHandler) (ok bool) {
	c, ok := n.transport.(transport.AppCarrier)
	if !ok {
		return false
	}
	c.SetAppHandler(h)
	return true
}

// SendApp delivers an application payload on topic to peer over the
// node's transport and, when wantReply is set, returns the peer's reply
// payload. replied reports whether a reply arrived. The error surface
// matches transport.Exchange; a transport without app support returns an
// error immediately.
func (n *Node) SendApp(ctx context.Context, peer, topic string, payload []byte, wantReply bool) (reply []byte, replied bool, err error) {
	c, ok := n.transport.(transport.AppCarrier)
	if !ok {
		return nil, false, errors.New("runtime: transport cannot carry app payloads")
	}
	msg := transport.AppMessage{From: n.Addr(), Topic: topic, Payload: payload, WantReply: wantReply}
	resp, replied, err := c.ExchangeApp(ctx, peer, msg)
	if err != nil {
		return nil, false, err
	}
	return resp.Payload, replied, nil
}

// ExchangeLatency returns a snapshot of the node's exchange round-trip
// histogram: every completed active exchange since the node was created,
// over whatever transport it runs. Failed exchanges appear in Stats'
// failure counter instead — timing them would only ever record the
// configured timeout.
func (n *Node) ExchangeLatency() transport.LatencySnapshot {
	return n.lat.Snapshot()
}

// handleRequest is the passive thread, invoked by the transport.
func (n *Node) handleRequest(req transport.Request) (transport.Response, bool) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.handled++
	return n.state.HandleRequest(req)
}

// containsContact reports whether descs already holds addr. Contact lists
// are tiny, so a linear scan is the right tool.
func containsContact(descs []core.Descriptor[string], addr string) bool {
	for _, d := range descs {
		if d.Addr == addr {
			return true
		}
	}
	return false
}

// hashString derives a stable 64-bit seed from an address (FNV-1a).
func hashString(s string) uint64 {
	const (
		offset = 14695981039346656037
		prime  = 1099511628211
	)
	h := uint64(offset)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= prime
	}
	if h == 0 {
		h = 1
	}
	return h
}
