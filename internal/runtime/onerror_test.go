package runtime

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"peersampling/internal/core"
	"peersampling/internal/transport"
)

// TestOnErrorConcurrentAndReentrant proves the documented Config.OnError
// contract under the race detector, using no mutex anywhere in the
// callback: OnError is invoked concurrently from both threads of control
// (the node's own active thread and direct Tick callers), and it may call
// back into the node because it runs outside the node's locks.
func TestOnErrorConcurrentAndReentrant(t *testing.T) {
	fabric := transport.NewFabric()
	var (
		calls     atomic.Uint64 // mutex-free shared state, as the contract allows
		reentered atomic.Uint64
	)
	var node *Node
	cfg := Config{
		Protocol: core.Newscast,
		ViewSize: 8,
		Period:   time.Millisecond,
		Seed:     7,
		OnError: func(err error) {
			if err == nil {
				t.Error("OnError called with nil error")
			}
			calls.Add(1)
			// Re-enter the node: this deadlocks if the runtime ever invokes
			// OnError while holding the node's state lock.
			if len(node.View()) > 0 {
				reentered.Add(1)
			}
			if _, _, _, handled := node.Stats(); handled > 0 {
				t.Error("passive exchanges served by a node whose only peer is a ghost")
			}
		},
	}
	n, err := New(cfg, fabric.Factory("lonely"))
	if err != nil {
		t.Fatal(err)
	}
	node = n
	defer node.Close()
	// The only contact never registers an endpoint, so every exchange
	// fails and every cycle reports through OnError.
	if err := node.Init([]string{"ghost"}); err != nil {
		t.Fatal(err)
	}

	// Thread one: the active thread started by the node itself.
	if err := node.Start(); err != nil {
		t.Fatal(err)
	}
	// Threads two..N: concurrent direct Tick drivers.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				node.Tick()
			}
		}()
	}
	wg.Wait()

	// All direct ticks failed (200 of them), plus whatever the active
	// thread managed; the callback must have observed every failure.
	if got := calls.Load(); got < 200 {
		t.Fatalf("OnError calls = %d, want >= 200", got)
	}
	if reentered.Load() == 0 {
		t.Fatal("OnError never managed to re-enter the node")
	}
	_, _, failures, _ := node.Stats()
	if failures < 200 {
		t.Fatalf("failures = %d, want >= 200", failures)
	}
}
