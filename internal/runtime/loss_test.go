package runtime

import (
	"testing"

	"peersampling/internal/core"
	"peersampling/internal/transport"
)

// TestClusterConvergesUnderMessageLoss drives a cluster over a lossy
// fabric: gossip's redundancy must still converge views, just more
// slowly, and failed exchanges must be accounted rather than fatal.
func TestClusterConvergesUnderMessageLoss(t *testing.T) {
	f := transport.NewFabric(transport.WithLoss(0.3, 99))
	nodes := buildCluster(t, f, core.Newscast, 12, nil)
	tickAll(nodes, 60)

	full := 0
	var totalFailures uint64
	for _, n := range nodes {
		if len(n.View()) == n.cfg.ViewSize {
			full++
		}
		_, _, failures, _ := n.Stats()
		totalFailures += failures
	}
	if full < len(nodes)-1 {
		t.Errorf("only %d of %d views full after 60 lossy cycles", full, len(nodes))
	}
	if totalFailures == 0 {
		t.Error("30%% loss produced zero failed exchanges — loss model not exercised")
	}
	// Connectivity of the union knows-about graph.
	known := map[string]bool{}
	for _, n := range nodes {
		for _, d := range n.View() {
			known[d.Addr] = true
		}
	}
	for _, n := range nodes {
		if !known[n.Addr()] {
			t.Errorf("%s invisible despite gossip redundancy", n.Addr())
		}
	}
}

// TestTickWithEmptyViewIsSafe ensures an uninitialised node idles without
// errors until a contact appears (the paper's init() can come late).
func TestTickWithEmptyViewIsSafe(t *testing.T) {
	f := transport.NewFabric()
	n, err := New(memConfig(core.Newscast), f.Factory("idle"))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	for i := 0; i < 5; i++ {
		n.Tick()
	}
	cycles, exchanges, failures, _ := n.Stats()
	if cycles != 5 || exchanges != 0 || failures != 0 {
		t.Errorf("idle ticks recorded cycles=%d exchanges=%d failures=%d", cycles, exchanges, failures)
	}
	// A late Init brings it to life.
	peer, err := New(memConfig(core.Newscast), f.Factory("late"))
	if err != nil {
		t.Fatal(err)
	}
	defer peer.Close()
	if err := n.Init([]string{peer.Addr()}); err != nil {
		t.Fatal(err)
	}
	n.Tick()
	if _, exchanges, _, _ := n.Stats(); exchanges != 1 {
		t.Error("exchange did not happen after late Init")
	}
}
