package runtime

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"peersampling/internal/core"
	"peersampling/internal/transport"
)

func memConfig(proto core.Protocol) Config {
	return Config{
		Protocol: proto,
		ViewSize: 8,
		Period:   time.Hour, // tests drive cycles with Tick
		Seed:     1,
	}
}

// buildCluster creates n nodes on a shared fabric, bootstrapped in a ring.
func buildCluster(t *testing.T, f *transport.Fabric, proto core.Protocol, n int, cfgMod func(*Config)) []*Node {
	t.Helper()
	factory := f.Factory("node")
	nodes := make([]*Node, n)
	for i := range nodes {
		cfg := memConfig(proto)
		cfg.Seed = uint64(i) + 1
		if cfgMod != nil {
			cfgMod(&cfg)
		}
		node, err := New(cfg, factory)
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		nodes[i] = node
		t.Cleanup(func() { _ = node.Close() })
	}
	for i, node := range nodes {
		if err := node.Init([]string{nodes[(i+1)%n].Addr()}); err != nil {
			t.Fatalf("Init: %v", err)
		}
	}
	return nodes
}

// tickAll advances every node by the given number of synchronous cycles.
func tickAll(nodes []*Node, cycles int) {
	for c := 0; c < cycles; c++ {
		for _, n := range nodes {
			n.Tick()
		}
	}
}

func TestNewValidation(t *testing.T) {
	f := transport.NewFabric()
	if _, err := New(Config{ViewSize: 4}, f.Factory("x")); err == nil {
		t.Error("invalid protocol accepted")
	}
	if _, err := New(Config{Protocol: core.Newscast}, f.Factory("y")); err == nil {
		t.Error("zero view size accepted")
	}
	failing := func(transport.Handler) (transport.Transport, error) {
		return nil, errors.New("boom")
	}
	if _, err := New(memConfig(core.Newscast), failing); err == nil {
		t.Error("transport failure not propagated")
	}
}

func TestInitValidation(t *testing.T) {
	f := transport.NewFabric()
	n, err := New(memConfig(core.Newscast), f.Factory("n"))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Init([]string{""}); err == nil {
		t.Error("empty contact accepted")
	}
	if err := n.Init([]string{"peer-1"}); err != nil {
		t.Fatal(err)
	}
	// A second Init adds contacts without wiping the view.
	if err := n.Init([]string{"peer-2"}); err != nil {
		t.Fatal(err)
	}
	view := n.View()
	if len(view) != 2 {
		t.Errorf("view after two Inits = %v", view)
	}
}

// Init must never let a node into its own view: the bootstrap path
// delegates to core.Bootstrap (which filters self), and the merge path on
// a non-empty view used to bypass that filter entirely.
func TestInitFiltersSelf(t *testing.T) {
	f := transport.NewFabric()
	n, err := New(memConfig(core.Newscast), f.Factory("self"))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()

	// Empty-view path: a contact list of only the node itself leaves the
	// view empty rather than self-referential.
	if err := n.Init([]string{n.Addr()}); err != nil {
		t.Fatal(err)
	}
	if len(n.View()) != 0 {
		t.Fatalf("view after self-only Init = %v, want empty", n.View())
	}

	// Merge path (the regression): Init on a non-empty view used to merge
	// the node's own address straight in, so GetPeer could return self.
	if err := n.Init([]string{"peer-1"}); err != nil {
		t.Fatal(err)
	}
	if err := n.Init([]string{n.Addr(), " peer-1 ", "peer-2", "peer-2"}); err != nil {
		t.Fatal(err)
	}
	view := n.View()
	if len(view) != 2 {
		t.Errorf("view = %v, want exactly peer-1 and peer-2", view)
	}
	for _, d := range view {
		if d.Addr == n.Addr() {
			t.Fatalf("node's own address in view: %v", view)
		}
	}
	for i := 0; i < 50; i++ {
		peer, err := n.GetPeer()
		if err != nil {
			t.Fatal(err)
		}
		if peer == n.Addr() {
			t.Fatal("GetPeer returned the node itself")
		}
	}
}

func TestInitTrimsAndRejectsBlankContacts(t *testing.T) {
	f := transport.NewFabric()
	n, err := New(memConfig(core.Newscast), f.Factory("trim"))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if err := n.Init([]string{"  "}); err == nil {
		t.Error("whitespace-only contact accepted")
	}
	if err := n.Init([]string{" peer-1 ", "peer-1"}); err != nil {
		t.Fatal(err)
	}
	view := n.View()
	if len(view) != 1 || view[0].Addr != "peer-1" {
		t.Errorf("view = %v, want [peer-1@0]", view)
	}
}

func TestClusterConvergesToFullViews(t *testing.T) {
	f := transport.NewFabric()
	nodes := buildCluster(t, f, core.Newscast, 16, nil)
	tickAll(nodes, 30)
	for _, n := range nodes {
		view := n.View()
		if len(view) != 8 {
			t.Errorf("%s view has %d entries want 8", n.Addr(), len(view))
		}
		for _, d := range view {
			if d.Addr == n.Addr() {
				t.Errorf("%s knows itself", n.Addr())
			}
		}
	}
	// Every node must be known by someone (no invisible nodes).
	known := map[string]bool{}
	for _, n := range nodes {
		for _, d := range n.View() {
			known[d.Addr] = true
		}
	}
	for _, n := range nodes {
		if !known[n.Addr()] {
			t.Errorf("%s is invisible after convergence", n.Addr())
		}
	}
	cycles, exchanges, failures, handled := nodes[0].Stats()
	if cycles != 30 {
		t.Errorf("cycles = %d want 30", cycles)
	}
	if exchanges == 0 || handled == 0 {
		t.Errorf("no exchanges recorded: ex=%d handled=%d", exchanges, handled)
	}
	if failures != 0 {
		t.Errorf("unexpected failures: %d", failures)
	}
}

func TestGetPeerSamplesFromView(t *testing.T) {
	f := transport.NewFabric()
	nodes := buildCluster(t, f, core.Newscast, 10, nil)
	tickAll(nodes, 20)
	n := nodes[0]
	inView := map[string]bool{}
	for _, d := range n.View() {
		inView[d.Addr] = true
	}
	for i := 0; i < 50; i++ {
		p, err := n.GetPeer()
		if err != nil {
			t.Fatal(err)
		}
		if !inView[p] {
			t.Fatalf("GetPeer returned %q not in view", p)
		}
	}
}

func TestGetPeerEmptyView(t *testing.T) {
	f := transport.NewFabric()
	n, err := New(memConfig(core.Newscast), f.Factory("solo"))
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	if _, err := n.GetPeer(); !errors.Is(err, core.ErrEmptyView) {
		t.Errorf("err = %v want ErrEmptyView", err)
	}
}

func TestDiverseSamplingAvoidsRepeats(t *testing.T) {
	f := transport.NewFabric()
	nodes := buildCluster(t, f, core.Newscast, 12, func(c *Config) { c.Diverse = true })
	tickAll(nodes, 20)
	n := nodes[0]
	viewSize := len(n.View())
	if viewSize < 4 {
		t.Fatalf("view too small for the test: %d", viewSize)
	}
	seen := map[string]bool{}
	for i := 0; i < viewSize; i++ {
		p, err := n.GetPeer()
		if err != nil {
			t.Fatal(err)
		}
		if seen[p] {
			t.Fatalf("diverse sampling repeated %q within one view pass", p)
		}
		seen[p] = true
	}
}

// TestDiverseGetPeerDeterministic is the regression test for the Diverse
// shuffle using the package-global RNG: two nodes built with the same
// seed and the same view must emit identical GetPeer sequences, as
// Config.Seed documents.
func TestDiverseGetPeerDeterministic(t *testing.T) {
	contacts := []string{"peer-a", "peer-b", "peer-c", "peer-d", "peer-e"}
	build := func() *Node {
		f := transport.NewFabric() // separate fabrics give both nodes the address "twin-0"
		cfg := memConfig(core.Newscast)
		cfg.Diverse = true
		cfg.Seed = 42
		n, err := New(cfg, f.Factory("twin"))
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { _ = n.Close() })
		if err := n.Init(contacts); err != nil {
			t.Fatal(err)
		}
		return n
	}
	a, b := build(), build()
	// Three full view passes: the refill shuffle runs multiple times.
	for i := 0; i < 3*len(contacts); i++ {
		pa, err := a.GetPeer()
		if err != nil {
			t.Fatal(err)
		}
		pb, err := b.GetPeer()
		if err != nil {
			t.Fatal(err)
		}
		if pa != pb {
			t.Fatalf("call %d diverged: %q vs %q (Diverse shuffle not seeded)", i, pa, pb)
		}
	}
}

func TestFailedExchangeIsCountedAndSurvived(t *testing.T) {
	f := transport.NewFabric()
	var errs []error
	cfg := memConfig(core.Newscast)
	cfg.OnError = func(err error) { errs = append(errs, err) }
	node, err := New(cfg, f.Factory("lonely"))
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	if err := node.Init([]string{"ghost"}); err != nil {
		t.Fatal(err)
	}
	node.Tick()
	_, _, failures, _ := node.Stats()
	if failures != 1 {
		t.Errorf("failures = %d want 1", failures)
	}
	if len(errs) != 1 {
		t.Errorf("OnError called %d times want 1", len(errs))
	}
	// The view still holds the (dead) contact: no eviction on failure.
	if len(node.View()) != 1 {
		t.Errorf("view = %v", node.View())
	}
}

func TestHealingAfterNodeDeath(t *testing.T) {
	f := transport.NewFabric()
	nodes := buildCluster(t, f, core.Newscast, 12, nil)
	tickAll(nodes, 20)
	dead := nodes[11].Addr()
	if err := nodes[11].Close(); err != nil {
		t.Fatal(err)
	}
	tickAll(nodes[:11], 40)
	// Newscast (head view selection) flushes dead descriptors quickly.
	for _, n := range nodes[:11] {
		for _, d := range n.View() {
			if d.Addr == dead {
				t.Errorf("%s still holds dead descriptor after 40 cycles", n.Addr())
			}
		}
	}
}

func TestStartStopRealTimer(t *testing.T) {
	f := transport.NewFabric()
	factory := f.Factory("timer")
	var nodes []*Node
	for i := 0; i < 4; i++ {
		cfg := memConfig(core.Newscast)
		cfg.Period = 2 * time.Millisecond
		n, err := New(cfg, factory)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		defer n.Close()
	}
	for i, n := range nodes {
		if err := n.Init([]string{nodes[(i+1)%len(nodes)].Addr()}); err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil {
			t.Fatal(err)
		}
		if err := n.Start(); err != nil { // idempotent
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(3 * time.Second)
	for {
		cycles, exchanges, _, _ := nodes[0].Stats()
		if cycles >= 5 && exchanges >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timer cycles never ran: cycles=%d exchanges=%d", cycles, exchanges)
		}
		time.Sleep(5 * time.Millisecond)
	}
	for _, n := range nodes {
		if err := n.Close(); err != nil {
			t.Fatal(err)
		}
		if err := n.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
	}
	if err := nodes[0].Start(); err == nil {
		t.Error("Start after Close accepted")
	}
}

func TestRuntimeOverTCP(t *testing.T) {
	factory := func(h transport.Handler) (transport.Transport, error) {
		return transport.ListenTCP("127.0.0.1:0", h)
	}
	var nodes []*Node
	for i := 0; i < 6; i++ {
		cfg := memConfig(core.Newscast)
		cfg.Seed = uint64(i) + 1
		n, err := New(cfg, factory)
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
		defer n.Close()
	}
	for i, n := range nodes {
		if err := n.Init([]string{nodes[(i+1)%len(nodes)].Addr()}); err != nil {
			t.Fatal(err)
		}
	}
	tickAll(nodes, 15)
	for _, n := range nodes {
		if len(n.View()) < len(nodes)-1 {
			t.Errorf("%s view has %d entries want %d", n.Addr(), len(n.View()), len(nodes)-1)
		}
	}
}

func TestCombinedService(t *testing.T) {
	f := transport.NewFabric()
	factory := f.Factory("comb")
	fast := memConfig(core.Newscast) // quick healing
	slow := memConfig(core.Protocol{PeerSel: core.PeerRand, ViewSel: core.ViewRand, Prop: core.PushPull})
	svc, err := NewCombined(fast, slow, factory, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// A few plain nodes to gossip with, for each instance's protocol.
	others := buildCluster(t, f, core.Newscast, 6, nil)
	if err := svc.Init([]string{others[0].Addr()}); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 20; c++ {
		svc.Tick()
		tickAll(others, 1)
	}
	p, err := svc.GetPeer()
	if err != nil {
		t.Fatal(err)
	}
	if p == "" || p == svc.Primary().Addr() || p == svc.Secondary().Addr() {
		t.Errorf("combined GetPeer returned %q", p)
	}
	if svc.Primary().Protocol() == svc.Secondary().Protocol() {
		t.Error("combined instances share a protocol; expected two")
	}
}

func TestCombinedEmpty(t *testing.T) {
	f := transport.NewFabric()
	svc, err := NewCombined(memConfig(core.Newscast), memConfig(core.Lpbcast), f.Factory("e"), 1)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	if _, err := svc.GetPeer(); err == nil {
		t.Error("empty combined service returned a peer")
	}
}

func TestCombinedStartClose(t *testing.T) {
	f := transport.NewFabric()
	svc, err := NewCombined(memConfig(core.Newscast), memConfig(core.Lpbcast), f.Factory("sc"), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := svc.Start(); err != nil {
		t.Fatal(err)
	}
	if err := svc.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestHashStringStableNonZero(t *testing.T) {
	if hashString("a") == 0 || hashString("") == 0 {
		t.Error("hash must never be zero (it seeds RNG streams)")
	}
	if hashString("node-1") != hashString("node-1") {
		t.Error("hash not stable")
	}
	if hashString("node-1") == hashString("node-2") {
		t.Error("suspicious hash collision")
	}
}

func ExampleNode_GetPeer() {
	f := transport.NewFabric()
	factory := f.Factory("ex")
	a, _ := New(Config{Protocol: core.Newscast, ViewSize: 4, Period: time.Hour, Seed: 1}, factory)
	b, _ := New(Config{Protocol: core.Newscast, ViewSize: 4, Period: time.Hour, Seed: 2}, factory)
	defer a.Close()
	defer b.Close()
	_ = a.Init([]string{b.Addr()})
	_ = b.Init([]string{a.Addr()})
	a.Tick()
	peer, _ := a.GetPeer()
	fmt.Println(peer)
	// Output: ex-1
}

func TestSetTransportLimits(t *testing.T) {
	tcpFactory := func(h transport.Handler) (transport.Transport, error) {
		return transport.ListenTCP("127.0.0.1:0", h)
	}
	n, err := New(memConfig(core.Newscast), tcpFactory)
	if err != nil {
		t.Fatal(err)
	}
	defer n.Close()
	ok, err := n.SetTransportLimits(transport.Limits{MaxConns: 7})
	if !ok || err != nil {
		t.Fatalf("SetTransportLimits over TCP: ok=%v err=%v", ok, err)
	}
	if ok, err := n.SetTransportLimits(transport.Limits{KeepAlive: -time.Second}); !ok || err == nil {
		t.Fatalf("invalid limits: ok=%v err=%v, want ok and an error", ok, err)
	}

	// The in-memory fabric has no limits; ok=false, no error.
	mem, err := New(memConfig(core.Newscast), transport.NewFabric().Factory("node"))
	if err != nil {
		t.Fatal(err)
	}
	defer mem.Close()
	if ok, err := n.SetTransportLimits(transport.Limits{}); !ok || err != nil {
		t.Fatalf("default limits rejected: ok=%v err=%v", ok, err)
	}
	if ok, err := mem.SetTransportLimits(transport.Limits{MaxConns: 7}); ok || err != nil {
		t.Fatalf("fabric limits: ok=%v err=%v, want not-ok and nil", ok, err)
	}
}
