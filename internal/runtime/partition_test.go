package runtime

import (
	"testing"
	"time"

	"peersampling/internal/core"
	"peersampling/internal/transport"
)

// knowsAcross counts how many descriptors in the views of groupA point at
// members of groupB.
func knowsAcross(groupA []*Node, groupB []*Node) int {
	members := make(map[string]bool, len(groupB))
	for _, n := range groupB {
		members[n.Addr()] = true
	}
	count := 0
	for _, n := range groupA {
		for _, d := range n.View() {
			if members[d.Addr] {
				count++
			}
		}
	}
	return count
}

// TestPartitionForgettingHeadVsRand reproduces the paper's Section 8
// caveat about quick self-healing: during a temporary network partition,
// head view selection makes the two sides forget each other completely
// (its strength against real failures becomes a weakness), whereas random
// view selection retains cross-partition descriptors for much longer.
func TestPartitionForgettingHeadVsRand(t *testing.T) {
	run := func(proto core.Protocol) (crossBefore, crossAfter int) {
		f := transport.NewFabric()
		// Each side must offer more fresh peers than the view holds
		// (12 > c = 8), otherwise stale far-side entries survive head
		// selection for lack of replacements.
		nodes := buildCluster(t, f, proto, 24, func(c *Config) { c.ViewSize = 8 })
		tickAll(nodes, 25) // converge
		left, right := nodes[:12], nodes[12:]
		crossBefore = knowsAcross(left, right)

		// Partition the network and keep gossiping for a while.
		for _, n := range left {
			f.SetPartition(n.Addr(), 1)
		}
		tickAll(nodes, 25)
		crossAfter = knowsAcross(left, right)
		f.HealPartitions()
		return crossBefore, crossAfter
	}

	headBefore, headAfter := run(core.Newscast)
	randBefore, randAfter := run(core.Protocol{PeerSel: core.PeerRand, ViewSel: core.ViewRand, Prop: core.PushPull})

	if headBefore == 0 || randBefore == 0 {
		t.Fatalf("no cross-group knowledge before the partition: head=%d rand=%d", headBefore, randBefore)
	}
	if headAfter != 0 {
		t.Errorf("head view selection kept %d cross-partition descriptors; expected total forgetting", headAfter)
	}
	if randAfter == 0 {
		t.Errorf("random view selection forgot the other side entirely; expected retained descriptors")
	}
}

// TestCombinedServiceSurvivesPartition shows the paper's Section 10
// proposal working: coupling a fast-healing head-selection view with a
// slowly forgetting random-selection view keeps the service able to name
// peers on the far side of a healed partition.
func TestCombinedServiceSurvivesPartition(t *testing.T) {
	f := transport.NewFabric()
	factory := f.Factory("part")

	fast := Config{Protocol: core.Newscast, ViewSize: 8, Period: time.Hour, Seed: 1}
	slow := Config{Protocol: core.Protocol{PeerSel: core.PeerRand, ViewSel: core.ViewRand, Prop: core.PushPull},
		ViewSize: 8, Period: time.Hour, Seed: 2}
	svc, err := NewCombined(fast, slow, factory, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()

	// A small population for each protocol to gossip with.
	others := buildCluster(t, f, core.Newscast, 10, nil)
	if err := svc.Init([]string{others[0].Addr()}); err != nil {
		t.Fatal(err)
	}
	for c := 0; c < 20; c++ {
		svc.Tick()
		tickAll(others, 1)
	}

	// Partition the combined service away from everyone and let it keep
	// gossiping into the void.
	f.SetPartition(svc.Primary().Addr(), 1)
	f.SetPartition(svc.Secondary().Addr(), 1)
	for c := 0; c < 25; c++ {
		svc.Tick()
		tickAll(others, 1)
	}

	// The fast head-selection view has been aging with no fresh input; it
	// cannot rotate, but the slow random view must still name far-side
	// peers, so the combined service still answers GetPeer with a real
	// member after the partition heals.
	f.HealPartitions()
	foreign := map[string]bool{}
	for _, n := range others {
		foreign[n.Addr()] = true
	}
	stillKnown := 0
	for _, d := range svc.Secondary().View() {
		if foreign[d.Addr] {
			stillKnown++
		}
	}
	if stillKnown == 0 {
		t.Fatal("slow view forgot the other partition entirely")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		p, err := svc.GetPeer()
		if err == nil && foreign[p] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("combined GetPeer never returned a far-side peer after healing")
		}
	}
}
