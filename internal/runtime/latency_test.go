package runtime

import (
	"testing"
	"time"

	"peersampling/internal/core"
	"peersampling/internal/transport"
)

// Completed exchanges must land in the latency histogram; failed ones
// must not (they are counted in Stats instead).
func TestExchangeLatencyRecorded(t *testing.T) {
	fabric := transport.NewFabric()
	cfg := Config{Protocol: core.Newscast, ViewSize: 4, Period: time.Hour, Seed: 1}
	a, err := New(cfg, fabric.Factory("a"))
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	b, err := New(cfg, fabric.Factory("b"))
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	if err := a.Init([]string{b.Addr()}); err != nil {
		t.Fatal(err)
	}
	a.Tick()
	s := a.ExchangeLatency()
	if s.Count != 1 {
		t.Fatalf("latency count = %d want 1 after one successful exchange", s.Count)
	}
	if s.SumSeconds < 0 {
		t.Errorf("negative latency sum: %v", s.SumSeconds)
	}

	// Point the node at a peer that does not exist: the exchange fails
	// and the histogram must not move.
	c, err := New(cfg, fabric.Factory("c"))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Init([]string{"nope"}); err != nil {
		t.Fatal(err)
	}
	c.Tick()
	if got := c.ExchangeLatency().Count; got != 0 {
		t.Errorf("failed exchange was timed: count = %d", got)
	}
	if _, _, failures, _ := c.Stats(); failures != 1 {
		t.Errorf("failures = %d want 1", failures)
	}
}
