package runtime

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sync"

	"peersampling/internal/transport"
)

// Combined runs two peer sampling protocol instances side by side and
// samples from the union of their views. The paper's concluding remarks
// propose exactly this: "introducing a second view for gossiping
// membership information and running more protocols concurrently", e.g. a
// quickly self-healing head-selection view combined with a slowly
// forgetting random-selection view that survives temporary partitions.
type Combined struct {
	primary   *Node
	secondary *Node

	mu  sync.Mutex
	rng *rand.Rand
}

var _ Service = (*Combined)(nil)

// NewCombined builds two nodes (each with its own transport endpoint from
// the factory) and couples them into one service.
func NewCombined(primary, secondary Config, factory transport.Factory, seed uint64) (*Combined, error) {
	a, err := New(primary, factory)
	if err != nil {
		return nil, fmt.Errorf("runtime: combined primary: %w", err)
	}
	b, err := New(secondary, factory)
	if err != nil {
		_ = a.Close()
		return nil, fmt.Errorf("runtime: combined secondary: %w", err)
	}
	return &Combined{
		primary:   a,
		secondary: b,
		rng:       rand.New(rand.NewPCG(seed, 0xC0B1)),
	}, nil
}

// Primary returns the first protocol instance.
func (c *Combined) Primary() *Node { return c.primary }

// Secondary returns the second protocol instance.
func (c *Combined) Secondary() *Node { return c.secondary }

// Init implements Service: both instances bootstrap from the contacts.
func (c *Combined) Init(contacts []string) error {
	if err := c.primary.Init(contacts); err != nil {
		return err
	}
	return c.secondary.Init(contacts)
}

// GetPeer implements Service: a uniform sample from the union of both
// views (duplicates between the views are not double-counted). The two
// instances are one logical participant with two transport addresses, so
// both own addresses are excluded — each instance's view can legitimately
// contain the other's address learned through gossip.
func (c *Combined) GetPeer() (string, error) {
	union := make(map[string]struct{})
	for _, d := range c.primary.View() {
		union[d.Addr] = struct{}{}
	}
	for _, d := range c.secondary.View() {
		union[d.Addr] = struct{}{}
	}
	delete(union, c.primary.Addr())
	delete(union, c.secondary.Addr())
	if len(union) == 0 {
		return "", errors.New("runtime: combined service has no peers")
	}
	addrs := make([]string, 0, len(union))
	for a := range union {
		addrs = append(addrs, a)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return addrs[c.rng.IntN(len(addrs))], nil
}

// Start launches both active threads.
func (c *Combined) Start() error {
	if err := c.primary.Start(); err != nil {
		return err
	}
	return c.secondary.Start()
}

// Tick advances both instances by one synchronous cycle.
func (c *Combined) Tick() {
	c.primary.Tick()
	c.secondary.Tick()
}

// Close stops both instances; the first error wins but both are closed.
func (c *Combined) Close() error {
	err1 := c.primary.Close()
	err2 := c.secondary.Close()
	if err1 != nil {
		return err1
	}
	return err2
}
