// Package load generates open-loop HTTP sampling pressure against
// gateway endpoints: a configurable number of emulated clients, each
// ticking at its own request rate against an assigned gateway,
// recording per-request serve latency and sample freshness (how stale
// the returned batch's refresh stamp is) into the same fixed-bucket
// histograms the transport layer uses. The generator is open-loop — a
// slow server does not slow the offered load, it fills the in-flight
// cap and the overflow is counted as dropped ticks — which is what
// makes 429/503 rates and latency quantiles under pressure meaningful.
// Results render as the repository's shared long-form CSV schema, so a
// load run's series land beside simulator traces and live fleet dumps.
package load

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"peersampling/internal/metrics"
	"peersampling/internal/transport"
)

// Config parameterises one load run. Targets and Clients are required;
// zero values of the remaining knobs select the documented defaults.
type Config struct {
	// Targets are the gateway HTTP addresses ("host:port") under load.
	// Clients are assigned round-robin across them.
	Targets []string
	// Clients is how many concurrent emulated clients tick.
	Clients int
	// RPS is each client's request rate; total offered load is
	// Clients×RPS. Zero selects 1.
	RPS float64
	// Duration bounds the run; zero selects one second.
	Duration time.Duration
	// N is the ?n= peers-per-request parameter; zero selects 1.
	N int
	// DisableKeepAlives forces a fresh TCP connection per request,
	// trading connection reuse for a handshake-heavy workload.
	DisableKeepAlives bool
	// SpoofClients sends a distinct per-client X-Forwarded-For address,
	// so a gateway with gateway.trust_proxy_header enabled rate-limits
	// the emulated clients individually instead of collapsing every
	// loopback socket into one bucket.
	SpoofClients bool
	// Timeout bounds one request; zero selects 2 seconds.
	Timeout time.Duration
	// MaxInFlight caps one client's concurrent requests; ticks landing
	// on a saturated client are counted as dropped, keeping the
	// generator open-loop instead of queueing unbounded goroutines
	// behind a stalled server. Zero selects 4.
	MaxInFlight int
}

func (cfg Config) withDefaults() (Config, error) {
	if len(cfg.Targets) == 0 {
		return cfg, errors.New("load: no targets")
	}
	for _, t := range cfg.Targets {
		if t == "" {
			return cfg, errors.New("load: empty target address")
		}
	}
	if cfg.Clients <= 0 {
		return cfg, fmt.Errorf("load: clients must be positive, got %d", cfg.Clients)
	}
	if cfg.RPS <= 0 {
		cfg.RPS = 1
	}
	if cfg.Duration <= 0 {
		cfg.Duration = time.Second
	}
	if cfg.N <= 0 {
		cfg.N = 1
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Second
	}
	if cfg.MaxInFlight <= 0 {
		cfg.MaxInFlight = 4
	}
	return cfg, nil
}

// targetCounters accumulates one target's outcomes with atomics only:
// every client hitting the target shares this struct lock-free.
type targetCounters struct {
	ok          atomic.Uint64
	rateLimited atomic.Uint64
	unavailable atomic.Uint64
	badStatus   atomic.Uint64
	errors      atomic.Uint64
	dropped     atomic.Uint64

	latency   transport.LatencyHistogram
	freshness transport.LatencyHistogram
	maxNs     atomic.Uint64
}

func (c *targetCounters) observeLatency(d time.Duration) {
	c.latency.Observe(d)
	ns := uint64(d)
	for {
		cur := c.maxNs.Load()
		if ns <= cur || c.maxNs.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// TargetStats is one target's final tally.
type TargetStats struct {
	// Target is the gateway address the stats describe ("total" on the
	// aggregate row of Result.Totals).
	Target string
	// OK counts 200 responses; RateLimited 429s; Unavailable 503s;
	// BadStatus every other HTTP status; Errors transport-level request
	// failures (dial, timeout, malformed body); Dropped ticks skipped
	// because the client's in-flight cap was full.
	OK, RateLimited, Unavailable, BadStatus, Errors, Dropped uint64
	// Latency is the serve-time histogram of OK responses;
	// LatencyMaxSeconds its exact maximum (the histogram's last bucket
	// is a 10s bound, not a max).
	Latency           transport.LatencySnapshot
	LatencyMaxSeconds float64
	// Freshness is the sample-age histogram of OK responses: client
	// receive time minus the response's refreshed_unix_ms stamp.
	Freshness transport.LatencySnapshot
}

// Sent is every request that left the client (everything but dropped
// ticks).
func (s TargetStats) Sent() uint64 {
	return s.OK + s.RateLimited + s.Unavailable + s.BadStatus + s.Errors
}

// Result is one load run's outcome, per target and in aggregate.
type Result struct {
	Params  Config
	Elapsed time.Duration
	Targets []TargetStats
}

// Totals merges every target's stats into one aggregate row.
func (r *Result) Totals() TargetStats {
	total := TargetStats{Target: "total"}
	for _, t := range r.Targets {
		total.OK += t.OK
		total.RateLimited += t.RateLimited
		total.Unavailable += t.Unavailable
		total.BadStatus += t.BadStatus
		total.Errors += t.Errors
		total.Dropped += t.Dropped
		total.Latency.Add(t.Latency)
		total.Freshness.Add(t.Freshness)
		if t.LatencyMaxSeconds > total.LatencyMaxSeconds {
			total.LatencyMaxSeconds = t.LatencyMaxSeconds
		}
	}
	return total
}

// Rows renders the run as long-form rows keyed by target address, one
// block per target plus the "total" aggregate, all at the given cycle
// (a stage index when ramping load in stages).
func (r *Result) Rows(cycle int) []metrics.LongRow {
	rows := make([]metrics.LongRow, 0, (len(r.Targets)+1)*12)
	for _, t := range r.Targets {
		rows = append(rows, statRows(t, cycle)...)
	}
	rows = append(rows, statRows(r.Totals(), cycle)...)
	return rows
}

func statRows(t TargetStats, cycle int) []metrics.LongRow {
	return []metrics.LongRow{
		{Key: t.Target, Cycle: cycle, Metric: "load_ok", Value: float64(t.OK)},
		{Key: t.Target, Cycle: cycle, Metric: "load_rate_limited", Value: float64(t.RateLimited)},
		{Key: t.Target, Cycle: cycle, Metric: "load_unavailable", Value: float64(t.Unavailable)},
		{Key: t.Target, Cycle: cycle, Metric: "load_bad_status", Value: float64(t.BadStatus)},
		{Key: t.Target, Cycle: cycle, Metric: "load_errors", Value: float64(t.Errors)},
		{Key: t.Target, Cycle: cycle, Metric: "load_dropped", Value: float64(t.Dropped)},
		{Key: t.Target, Cycle: cycle, Metric: "load_latency_p50", Value: t.Latency.Quantile(0.50)},
		{Key: t.Target, Cycle: cycle, Metric: "load_latency_p95", Value: t.Latency.Quantile(0.95)},
		{Key: t.Target, Cycle: cycle, Metric: "load_latency_p99", Value: t.Latency.Quantile(0.99)},
		{Key: t.Target, Cycle: cycle, Metric: "load_latency_max", Value: t.LatencyMaxSeconds},
		{Key: t.Target, Cycle: cycle, Metric: "load_freshness_p50", Value: t.Freshness.Quantile(0.50)},
		{Key: t.Target, Cycle: cycle, Metric: "load_freshness_p99", Value: t.Freshness.Quantile(0.99)},
	}
}

// Render returns the human-readable run summary.
func (r *Result) Render() string {
	var b strings.Builder
	total := r.Totals()
	fmt.Fprintf(&b, "load: %d clients × %.3g rps against %d gateways for %v (n=%d)\n",
		r.Params.Clients, r.Params.RPS, len(r.Targets), r.Elapsed.Round(time.Millisecond), r.Params.N)
	fmt.Fprintf(&b, "%-24s %8s %8s %8s %8s %8s %8s %9s %9s %9s %9s\n",
		"target", "ok", "429", "503", "bad", "errors", "dropped", "p50ms", "p95ms", "p99ms", "maxms")
	row := func(t TargetStats) {
		fmt.Fprintf(&b, "%-24s %8d %8d %8d %8d %8d %8d %9.2f %9.2f %9.2f %9.2f\n",
			t.Target, t.OK, t.RateLimited, t.Unavailable, t.BadStatus, t.Errors, t.Dropped,
			t.Latency.Quantile(0.50)*1000, t.Latency.Quantile(0.95)*1000,
			t.Latency.Quantile(0.99)*1000, t.LatencyMaxSeconds*1000)
	}
	for _, t := range r.Targets {
		row(t)
	}
	row(total)
	fmt.Fprintf(&b, "sample freshness: p50=%.1fms p99=%.1fms over %d samples\n",
		total.Freshness.Quantile(0.50)*1000, total.Freshness.Quantile(0.99)*1000, total.Freshness.Count)
	return b.String()
}

// sampleBody is the slice of the gateway's /v1/sample response the
// generator reads: the refresh stamp for freshness, the peer count as a
// well-formedness check.
type sampleBody struct {
	Count           int   `json:"count"`
	RefreshedUnixMS int64 `json:"refreshed_unix_ms"`
}

// Run drives the configured load until Duration elapses or ctx is
// cancelled (whichever first; cancellation is not an error) and returns
// the tally. The error covers configuration problems only — request
// failures are data, counted per target.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}

	// One shared transport: connection reuse across same-target clients
	// is the realistic shape (a sidecar or SDK pools per host), and the
	// idle pool must fit every client or keep-alive silently degrades to
	// reconnect-per-request at high client counts.
	tr := &http.Transport{
		DisableKeepAlives:   cfg.DisableKeepAlives,
		MaxIdleConns:        cfg.Clients + len(cfg.Targets),
		MaxIdleConnsPerHost: cfg.Clients/len(cfg.Targets) + 1,
		IdleConnTimeout:     30 * time.Second,
	}
	defer tr.CloseIdleConnections()
	hc := &http.Client{Transport: tr, Timeout: cfg.Timeout}

	counters := make([]*targetCounters, len(cfg.Targets))
	for i := range counters {
		counters[i] = &targetCounters{}
	}

	runCtx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	start := time.Now()
	var wg sync.WaitGroup
	interval := time.Duration(float64(time.Second) / cfg.RPS)
	if interval <= 0 {
		interval = time.Microsecond
	}
	for i := 0; i < cfg.Clients; i++ {
		wg.Add(1)
		go func(idx int) {
			defer wg.Done()
			runClient(runCtx, hc, cfg, idx, counters[idx%len(cfg.Targets)], interval)
		}(i)
	}
	wg.Wait()

	res := &Result{Params: cfg, Elapsed: time.Since(start)}
	for i, target := range cfg.Targets {
		c := counters[i]
		res.Targets = append(res.Targets, TargetStats{
			Target:            target,
			OK:                c.ok.Load(),
			RateLimited:       c.rateLimited.Load(),
			Unavailable:       c.unavailable.Load(),
			BadStatus:         c.badStatus.Load(),
			Errors:            c.errors.Load(),
			Dropped:           c.dropped.Load(),
			Latency:           c.latency.Snapshot(),
			LatencyMaxSeconds: float64(c.maxNs.Load()) / float64(time.Second),
			Freshness:         c.freshness.Snapshot(),
		})
	}
	return res, nil
}

// runClient is one emulated client's open loop: staggered start, then a
// request per tick, skipping (and counting) ticks while the in-flight
// cap is full.
func runClient(ctx context.Context, hc *http.Client, cfg Config, idx int, c *targetCounters, interval time.Duration) {
	url := fmt.Sprintf("http://%s/v1/sample?n=%d", cfg.Targets[idx%len(cfg.Targets)], cfg.N)
	spoof := ""
	if cfg.SpoofClients {
		spoof = spoofAddr(idx)
	}

	// Stagger client phases across one interval so a thousand clients
	// offer a steady stream instead of a synchronized burst per tick.
	stagger := time.Duration(int64(interval) * int64(idx%256) / 256)
	select {
	case <-ctx.Done():
		return
	case <-time.After(stagger):
	}

	var inFlight atomic.Int64
	var reqWG sync.WaitGroup
	defer reqWG.Wait()
	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for {
		// Fire immediately on entry, then per tick: a short stage still
		// offers every client's first request.
		if inFlight.Load() >= int64(cfg.MaxInFlight) {
			c.dropped.Add(1)
		} else {
			inFlight.Add(1)
			reqWG.Add(1)
			go func() {
				defer reqWG.Done()
				defer inFlight.Add(-1)
				doRequest(ctx, hc, url, spoof, c)
			}()
		}
		select {
		case <-ctx.Done():
			return
		case <-ticker.C:
		}
	}
}

// spoofAddr derives a stable distinct loopback-range address for client
// idx, sent as X-Forwarded-For when SpoofClients is on.
func spoofAddr(idx int) string {
	return fmt.Sprintf("10.%d.%d.%d", 64+(idx>>16)%64, (idx>>8)%256, idx%256)
}

func doRequest(ctx context.Context, hc *http.Client, url, spoof string, c *targetCounters) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		c.errors.Add(1)
		return
	}
	if spoof != "" {
		req.Header.Set("X-Forwarded-For", spoof)
	}
	start := time.Now()
	resp, err := hc.Do(req)
	if err != nil {
		// A request cut off by the run deadline is the run ending, not a
		// server failure.
		if ctx.Err() == nil {
			c.errors.Add(1)
		}
		return
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
		raw, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		if err != nil {
			c.errors.Add(1)
			return
		}
		elapsed := time.Since(start)
		var body sampleBody
		if json.Unmarshal(raw, &body) != nil || body.Count < 1 {
			c.errors.Add(1)
			return
		}
		c.ok.Add(1)
		c.observeLatency(elapsed)
		if body.RefreshedUnixMS > 0 {
			age := time.Since(time.UnixMilli(body.RefreshedUnixMS))
			if age < 0 {
				age = 0
			}
			c.freshness.Observe(age)
		}
	case http.StatusTooManyRequests:
		c.rateLimited.Add(1)
		drain(resp.Body)
	case http.StatusServiceUnavailable:
		c.unavailable.Add(1)
		drain(resp.Body)
	default:
		c.badStatus.Add(1)
		drain(resp.Body)
	}
}

// drain consumes a small error body so the connection is reusable.
func drain(r io.Reader) { _, _ = io.CopyN(io.Discard, r, 4096) }
