package load

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"peersampling/internal/core"
	"peersampling/internal/gateway"
	"peersampling/internal/metrics"
)

// roundRobinSampler deals peers from a fixed set, standing in for a
// node's GetPeer.
type roundRobinSampler struct {
	mu    sync.Mutex
	peers []string
	i     int
}

func (s *roundRobinSampler) GetPeer() (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.peers) == 0 {
		return "", core.ErrEmptyView
	}
	p := s.peers[s.i%len(s.peers)]
	s.i++
	return p, nil
}

func testPeers(n int) []string {
	peers := make([]string, n)
	for i := range peers {
		peers[i] = fmt.Sprintf("10.0.0.%d:7946", i+1)
	}
	return peers
}

func testGateway(t *testing.T, cfg gateway.Config) *gateway.Gateway {
	t.Helper()
	g, err := gateway.New("127.0.0.1:0", &roundRobinSampler{peers: testPeers(16)}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = g.Close() })
	return g
}

func TestRunAgainstGateway(t *testing.T) {
	g := testGateway(t, gateway.Config{Refresh: 20 * time.Millisecond, RateRPS: 1e6, Burst: 1 << 20})
	res, err := Run(context.Background(), Config{
		Targets:  []string{g.Addr()},
		Clients:  8,
		RPS:      50,
		Duration: 300 * time.Millisecond,
		N:        2,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := res.Totals()
	if total.OK == 0 {
		t.Fatalf("no successful requests: %+v", total)
	}
	if total.Errors != 0 || total.BadStatus != 0 {
		t.Fatalf("errors=%d bad=%d against a healthy gateway", total.Errors, total.BadStatus)
	}
	if total.Latency.Count != total.OK {
		t.Errorf("latency count %d != ok %d", total.Latency.Count, total.OK)
	}
	if total.Freshness.Count != total.OK {
		t.Errorf("freshness count %d != ok %d", total.Freshness.Count, total.OK)
	}
	// A 20ms refresh keeps samples fresh: even p99 age must sit well
	// under a second on loopback.
	if p99 := total.Freshness.Quantile(0.99); p99 > 1 {
		t.Errorf("freshness p99 = %.3fs, want fresh samples", p99)
	}
	if total.LatencyMaxSeconds <= 0 {
		t.Error("latency max not recorded")
	}
}

func TestRunCountsRateLimits(t *testing.T) {
	// One token, no refill to speak of, every client behind the same
	// loopback socket bucket: almost everything after the first request
	// must come back 429 — and be counted, not treated as an error.
	g := testGateway(t, gateway.Config{Refresh: time.Hour, RateRPS: 0.001, Burst: 1})
	res, err := Run(context.Background(), Config{
		Targets:  []string{g.Addr()},
		Clients:  4,
		RPS:      100,
		Duration: 200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := res.Totals()
	if total.OK == 0 || total.RateLimited == 0 {
		t.Fatalf("ok=%d rate_limited=%d, want both non-zero", total.OK, total.RateLimited)
	}
	if total.Errors != 0 {
		t.Fatalf("errors = %d, want 429s counted as rate-limited", total.Errors)
	}
}

func TestRunSpoofedClientsGetOwnBuckets(t *testing.T) {
	// With trust_proxy_header on and spoofing enabled, every emulated
	// client has its own burst: at burst 1 and ~no refill, the OK count
	// must reach the client count (each client's first request).
	g := testGateway(t, gateway.Config{
		Refresh: time.Hour, RateRPS: 0.001, Burst: 1, TrustProxyHeader: true,
	})
	res, err := Run(context.Background(), Config{
		Targets:      []string{g.Addr()},
		Clients:      6,
		RPS:          50,
		Duration:     250 * time.Millisecond,
		SpoofClients: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if total := res.Totals(); total.OK < 6 {
		t.Fatalf("ok = %d, want every spoofed client's first request admitted", total.OK)
	}
}

func TestRunCountsTransportErrors(t *testing.T) {
	// A dead target: every request errors, nothing panics, nothing OK.
	res, err := Run(context.Background(), Config{
		Targets:  []string{"127.0.0.1:1"},
		Clients:  2,
		RPS:      50,
		Duration: 100 * time.Millisecond,
		Timeout:  200 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	total := res.Totals()
	if total.Errors == 0 {
		t.Fatalf("errors = 0 against a dead target: %+v", total)
	}
	if total.OK != 0 {
		t.Fatalf("ok = %d against a dead target", total.OK)
	}
}

func TestRunRejectsBadConfig(t *testing.T) {
	if _, err := Run(context.Background(), Config{Clients: 1}); err == nil {
		t.Error("no targets accepted")
	}
	if _, err := Run(context.Background(), Config{Targets: []string{"127.0.0.1:1"}}); err == nil {
		t.Error("zero clients accepted")
	}
	if _, err := Run(context.Background(), Config{Targets: []string{""}, Clients: 1}); err == nil {
		t.Error("empty target accepted")
	}
}

func TestRowsRoundTripLongCSV(t *testing.T) {
	g := testGateway(t, gateway.Config{Refresh: 20 * time.Millisecond, RateRPS: 1e6, Burst: 1 << 20})
	res, err := Run(context.Background(), Config{
		Targets:  []string{g.Addr()},
		Clients:  2,
		RPS:      50,
		Duration: 150 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := res.Rows(3)
	doc := metrics.LongCSV("target", rows)
	key, back, err := metrics.ParseLongCSV(doc)
	if err != nil {
		t.Fatal(err)
	}
	if key != "target" || len(back) != len(rows) {
		t.Fatalf("round trip: key=%q rows=%d want %d", key, len(back), len(rows))
	}
	want := map[string]bool{
		"load_ok": false, "load_rate_limited": false, "load_latency_p50": false,
		"load_latency_p99": false, "load_latency_max": false, "load_freshness_p99": false,
	}
	var sawTotal bool
	for _, r := range back {
		if r.Cycle != 3 {
			t.Fatalf("cycle = %d, want 3", r.Cycle)
		}
		if _, ok := want[r.Metric]; ok {
			want[r.Metric] = true
		}
		if r.Key == "total" {
			sawTotal = true
		}
	}
	for m, seen := range want {
		if !seen {
			t.Errorf("rows missing metric %s", m)
		}
	}
	if !sawTotal {
		t.Error("rows missing the total aggregate")
	}
}

func TestRunHonorsContextCancel(t *testing.T) {
	g := testGateway(t, gateway.Config{Refresh: time.Hour, RateRPS: 1e6, Burst: 1 << 20})
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	if _, err := Run(ctx, Config{
		Targets: []string{g.Addr()}, Clients: 2, RPS: 20, Duration: 30 * time.Second,
	}); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("cancelled run took %v", elapsed)
	}
}
