package fleet

import (
	"fmt"
	"sync"
	"time"

	"peersampling/internal/config"
	"peersampling/internal/core"
	"peersampling/internal/metrics"
	"peersampling/internal/transport"
)

// Driver names accepted by New.
const (
	DriverInproc     = "inproc"
	DriverSubprocess = "subprocess"
)

// Drivers returns the available cluster drivers.
func Drivers() []string { return []string{DriverInproc, DriverSubprocess} }

// Config is the node template a cluster stamps out: every member runs
// this protocol tuple, view size and period. The zero value of optional
// fields selects defaults.
type Config struct {
	// Protocol, ViewSize and Period parameterise every member like
	// runtime.Config does a single node.
	Protocol core.Protocol
	ViewSize int
	Period   time.Duration
	// Seed derives per-member protocol seeds (member i gets mix(Seed,i)).
	// Zero lets each member derive its seed from its address. Subprocess
	// members always self-derive — a forked psnode seeds itself.
	Seed uint64
	// Backend names the transport ("tcp", "tcp-pooled", "udp");
	// empty selects "tcp".
	Backend string
	// Limits hardens every member's listener (see transport.Limits).
	Limits transport.Limits
	// Workload, when its Kind is set, runs a gossip application engine
	// on every member (see internal/workload): attached in-process for
	// the inproc driver, written into the forked daemon's config for the
	// subprocess one. Zero knobs keep the daemon defaults.
	Workload config.WorkloadSection
	// Gateway, when its Addr is set (usually "127.0.0.1:0"), serves the
	// light-client sampling API on every member: an in-process
	// gateway.Gateway for the inproc driver, the daemon's gateway plugin
	// for the subprocess one. Zero knobs keep the daemon defaults; the
	// bound address is reported by Member.GatewayAddr.
	Gateway config.GatewaySection
	// Name labels member i for metrics registration and logs; nil
	// selects "node00", "node01", ...
	Name func(i int) string
	// Collector, when non-nil, gets every spawned member registered:
	// inproc members as local sources, subprocess members as remote
	// pollers scraping the agent — so the same /metrics endpoint and
	// CSV dumps observe either driver, and dead subprocess members show
	// up as stale sources rather than vanishing.
	Collector *metrics.Collector

	// Subprocess driver only.

	// Psnode is the path to the psnode binary to fork.
	Psnode string
	// Dir is the scratch directory for ready files and per-member logs;
	// empty creates a temporary directory that Close removes.
	Dir string
	// SpawnTimeout bounds how long a forked member may take to write its
	// ready file; zero selects 15 seconds.
	SpawnTimeout time.Duration
}

func (cfg Config) withDefaults() Config {
	if cfg.Backend == "" {
		cfg.Backend = "tcp"
	}
	if cfg.Name == nil {
		cfg.Name = func(i int) string { return fmt.Sprintf("node%02d", i) }
	}
	if cfg.SpawnTimeout <= 0 {
		cfg.SpawnTimeout = 15 * time.Second
	}
	return cfg
}

// workloadSection merges the template's workload knobs over the daemon
// defaults, so both drivers run identical engine parameters: what the
// inproc driver attaches directly is exactly what a forked psnode reads
// back from its generated config file.
func (cfg Config) workloadSection() config.WorkloadSection {
	ws := config.Default().Workload
	ws.Kind = cfg.Workload.Kind
	if cfg.Workload.Period > 0 {
		ws.Period = cfg.Workload.Period
	}
	if cfg.Workload.Fanout > 0 {
		ws.Fanout = cfg.Workload.Fanout
	}
	if cfg.Workload.Mode != "" {
		ws.Mode = cfg.Workload.Mode
	}
	if cfg.Workload.TTL > 0 {
		ws.TTL = cfg.Workload.TTL
	}
	ws.Initial = cfg.Workload.Initial
	return ws
}

// gatewaySection merges the template's gateway knobs over the daemon
// defaults, mirroring workloadSection: both drivers serve identical
// gateway parameters.
func (cfg Config) gatewaySection() config.GatewaySection {
	gs := config.Default().Gateway
	gs.Addr = cfg.Gateway.Addr
	if cfg.Gateway.BatchSize > 0 {
		gs.BatchSize = cfg.Gateway.BatchSize
	}
	if cfg.Gateway.Refresh > 0 {
		gs.Refresh = cfg.Gateway.Refresh
	}
	if cfg.Gateway.RateRPS > 0 {
		gs.RateRPS = cfg.Gateway.RateRPS
	}
	if cfg.Gateway.Burst > 0 {
		gs.Burst = cfg.Gateway.Burst
	}
	gs.TrustProxyHeader = cfg.Gateway.TrustProxyHeader
	return gs
}

// Member is one node of a cluster. Observation methods keep working on a
// dead inproc member (its final state stays readable) and fail with an
// error on a dead subprocess member — the caller decides whether that is
// noise (mid-churn) or a finding.
type Member interface {
	// Name is the member's registration label ("node03").
	Name() string
	// Addr is the member's gossip address.
	Addr() string
	// Alive reports whether the member has not been killed or closed.
	Alive() bool
	// Snapshot observes the member's counters, latency histogram and
	// view gauges right now.
	Snapshot() (metrics.NodeSnapshot, error)
	// View returns the member's current partial view.
	View() ([]transport.Descriptor, error)
	// GatewayAddr is the member's sampling-gateway HTTP address; empty
	// when the cluster template does not enable the gateway.
	GatewayAddr() string
}

// Cluster boots and tears down a fleet of peer sampling nodes. All
// methods are safe for concurrent use. Implementations are handed out by
// New; scenarios hold the Members returned by Spawn and never care which
// driver is underneath.
type Cluster interface {
	// Spawn starts one member, bootstrapped from the given contact
	// addresses (none for the first member).
	Spawn(contacts []string) (Member, error)
	// Kill forcibly removes a member: Close for an inproc node, SIGKILL
	// for a subprocess — no graceful handshake, which is the point when
	// simulating churn.
	Kill(m Member) error
	// Addrs returns the gossip addresses of the live members.
	Addrs() []string
	// Snapshot observes every live member; members that fail to answer
	// (dying mid-poll) are skipped.
	Snapshot() []metrics.NodeSnapshot
	// SetFaultRules replaces the per-link fault rules (cuts, loss,
	// latency — see transport.FaultRule) every member's transport consults
	// on its exchange path; nil heals everything. The inproc driver sets
	// the process-global fault set, the subprocess driver pushes the rules
	// to every live member's control agent; members spawned later inherit
	// the current rules. internal/chaos drives this from named plans.
	SetFaultRules(rules []transport.FaultRule) error
	// Close tears the whole cluster down (gracefully where possible,
	// forcibly otherwise) and releases scratch state. It is idempotent.
	Close() error
}

// New builds a cluster for the named driver ("" selects inproc).
func New(driver string, cfg Config) (Cluster, error) {
	switch driver {
	case "", DriverInproc:
		return newInproc(cfg), nil
	case DriverSubprocess:
		return newSubprocess(cfg)
	default:
		return nil, fmt.Errorf("fleet: unknown driver %q (available: %v)", driver, Drivers())
	}
}

// spawnConcurrency bounds how many SpawnN members come up in flight at
// once: enough to hide fork+ready latency, few enough that a wave of
// dozens does not stampede the machine with simultaneous process starts.
const spawnConcurrency = 8

// SpawnN spawns n members concurrently, each bootstrapped from the same
// contact list, and returns them in completion order. At most
// spawnConcurrency spawns are in flight at a time. On failure the first
// error is returned together with the members that did come up — they
// remain in the cluster, so the usual remedy is Close.
func SpawnN(c Cluster, n int, contacts []string) ([]Member, error) {
	if n <= 0 {
		return nil, nil
	}
	var (
		mu       sync.Mutex
		members  []Member
		firstErr error
		wg       sync.WaitGroup
		slots    = make(chan struct{}, spawnConcurrency)
	)
	for i := 0; i < n; i++ {
		mu.Lock()
		failed := firstErr != nil
		mu.Unlock()
		if failed {
			break // don't keep launching into a failing cluster
		}
		slots <- struct{}{}
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() { <-slots }()
			m, err := c.Spawn(contacts)
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
				}
				return
			}
			members = append(members, m)
		}()
	}
	wg.Wait()
	return members, firstErr
}

// mix folds a member index into the cluster seed, giving unrelated
// deterministic RNG streams per member (same mixer as internal/scenario).
func mix(seed uint64, k int) uint64 {
	x := seed + 0x9E3779B97F4A7C15*uint64(k+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
