package fleet

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"peersampling/internal/config"
	"peersampling/internal/metrics"
	"peersampling/internal/transport"
)

// subprocessCluster forks one psnode process per member and drives each
// through its control agent. Killing a member is a real SIGKILL: kernel
// connection state, file descriptors and timers die with the process,
// which is exactly the failure the paper's churn model abstracts.
type subprocessCluster struct {
	cfg    Config
	dir    string
	ownDir bool // Close removes dir only when the cluster created it

	mu      sync.Mutex
	members []*subprocessMember
	next    int
	closed  bool
	// faultRules is the rule table last set through SetFaultRules; Spawn
	// pushes it to fresh members so respawns under an active chaos plan
	// observe the same network the survivors do.
	faultRules []transport.FaultRule
}

func newSubprocess(cfg Config) (*subprocessCluster, error) {
	cfg = cfg.withDefaults()
	if cfg.Psnode == "" {
		return nil, errors.New("fleet: subprocess driver needs Config.Psnode (path to the psnode binary)")
	}
	if _, err := exec.LookPath(cfg.Psnode); err != nil {
		return nil, fmt.Errorf("fleet: psnode binary: %w", err)
	}
	c := &subprocessCluster{cfg: cfg, dir: cfg.Dir}
	if c.dir == "" {
		dir, err := os.MkdirTemp("", "psfleet-*")
		if err != nil {
			return nil, fmt.Errorf("fleet: scratch dir: %w", err)
		}
		c.dir, c.ownDir = dir, true
	}
	return c, nil
}

type subprocessMember struct {
	name   string
	info   AgentInfo
	client *agentClient
	cmd    *exec.Cmd
	logf   *os.File
	exited chan struct{} // closed when cmd.Wait returns

	mu    sync.Mutex
	alive bool
}

func (m *subprocessMember) Name() string { return m.name }
func (m *subprocessMember) Addr() string { return m.info.Addr }

// GatewayAddr comes from the member's ready file: the daemon reports the
// bound gateway address alongside its control address.
func (m *subprocessMember) GatewayAddr() string { return m.info.GatewayAddr }

func (m *subprocessMember) Alive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alive
}

func (m *subprocessMember) Snapshot() (metrics.NodeSnapshot, error) {
	s, err := m.client.snapshot()
	if err != nil {
		return metrics.NodeSnapshot{}, err
	}
	s.Node = m.name
	return s, nil
}

func (m *subprocessMember) View() ([]transport.Descriptor, error) {
	return m.client.view()
}

// markDead flips Alive off; returns whether this call did the flip.
func (m *subprocessMember) markDead() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	was := m.alive
	m.alive = false
	return was
}

// memberConfig maps the cluster's node template onto a full daemon
// config for one member: loopback ephemeral listener, control agent for
// the parent to drive, ready file for address discovery. Zero template
// fields keep the daemon defaults.
func (c *subprocessCluster) memberConfig(contacts []string, readyPath string) config.Config {
	nc := config.Default()
	nc.Node.Listen = "127.0.0.1:0"
	nc.Node.Protocol = c.cfg.Protocol.String()
	nc.Node.Contacts = contacts
	if c.cfg.ViewSize != 0 {
		// Invalid values (negative) are written out too: the member's own
		// config validation rejects them, exactly like a hand-edited file.
		nc.Node.ViewSize = c.cfg.ViewSize
	}
	if c.cfg.Period > 0 {
		nc.Node.Period = c.cfg.Period
	}
	nc.Transport.Backend = c.cfg.Backend
	nc.Transport.MaxConns = c.cfg.Limits.MaxConns
	nc.Transport.KeepAlive = c.cfg.Limits.KeepAlive
	nc.Transport.PushOnlyKeepAlive = c.cfg.Limits.PushOnlyKeepAlive
	nc.Transport.FirstFrameTimeout = c.cfg.Limits.FirstFrameTimeout
	nc.Control.Addr = "127.0.0.1:0"
	nc.Control.ReadyFile = readyPath
	if c.cfg.Workload.Kind != "" {
		nc.Workload = c.cfg.workloadSection()
	}
	if c.cfg.Gateway.Addr != "" {
		nc.Gateway = c.cfg.gatewaySection()
	}
	return nc
}

func (c *subprocessCluster) Spawn(contacts []string) (Member, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("fleet: cluster closed")
	}
	idx := c.next
	c.next++
	c.mu.Unlock()

	name := c.cfg.Name(idx)
	memberDir := filepath.Join(c.dir, name)
	if err := os.MkdirAll(memberDir, 0o755); err != nil {
		return nil, fmt.Errorf("fleet: member %s: %w", name, err)
	}
	readyPath := filepath.Join(memberDir, "ready.json")
	_ = os.Remove(readyPath) // a respawn under a recycled name must not read the old file
	logf, err := os.Create(filepath.Join(memberDir, "psnode.log"))
	if err != nil {
		return nil, fmt.Errorf("fleet: member %s: %w", name, err)
	}

	// Members are provisioned like a real deployment: the full node
	// configuration is written into the member's directory and psnode
	// boots from the file alone, so the exact config every member ran
	// with survives next to its log for post-mortems.
	cfgPath := filepath.Join(memberDir, "config.json")
	if err := config.WriteFile(cfgPath, c.memberConfig(contacts, readyPath)); err != nil {
		logf.Close()
		return nil, fmt.Errorf("fleet: member %s: %w", name, err)
	}
	cmd := exec.Command(c.cfg.Psnode, "-config", cfgPath)
	cmd.Stdout = logf
	cmd.Stderr = logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return nil, fmt.Errorf("fleet: member %s: %w", name, err)
	}
	m := &subprocessMember{name: name, cmd: cmd, logf: logf, exited: make(chan struct{}), alive: true}
	go func() {
		_ = cmd.Wait()
		close(m.exited)
	}()

	// Address discovery: wait for the daemon's atomically-written ready
	// file instead of parsing its log or racing for ports. The poll backs
	// off exponentially (1ms doubling to a 100ms cap): a healthy member is
	// caught within milliseconds while a slow one costs ten polls a
	// second, not a hundred.
	start := time.Now()
	deadline := start.Add(c.cfg.SpawnTimeout)
	backoff := time.Millisecond
	for {
		info, err := ReadReady(readyPath)
		if err == nil {
			m.info = info
			break
		}
		select {
		case <-m.exited:
			err := fmt.Errorf("fleet: member %s exited before becoming ready (waited %v); log tail:\n%s",
				name, time.Since(start).Round(time.Millisecond), tailFile(logf.Name(), 2048))
			logf.Close()
			return nil, err
		default:
		}
		if time.Now().After(deadline) {
			_ = cmd.Process.Kill()
			<-m.exited
			logf.Close()
			return nil, fmt.Errorf("fleet: member %s not ready after %v (timeout %v); log tail:\n%s",
				name, time.Since(start).Round(time.Millisecond), c.cfg.SpawnTimeout, tailFile(logf.Name(), 2048))
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > 100*time.Millisecond {
			backoff = 100 * time.Millisecond
		}
	}
	if m.info.ControlAddr == "" {
		_ = cmd.Process.Kill()
		<-m.exited
		logf.Close()
		return nil, fmt.Errorf("fleet: member %s came up without a control agent", name)
	}
	m.client = newAgentClient(m.info.ControlAddr)

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		_ = c.killMember(m)
		return nil, errors.New("fleet: cluster closed")
	}
	c.members = append(c.members, m)
	rules := c.faultRules
	c.mu.Unlock()

	if len(rules) > 0 {
		// A member joining mid-plan must see the active faults; failing
		// that is a spawn failure, not a silent hole in the partition.
		if err := m.client.setFaults(rules); err != nil {
			_ = c.killMember(m)
			return nil, fmt.Errorf("fleet: member %s fault rules: %w", name, err)
		}
	}

	if c.cfg.Collector != nil {
		// The remote poller lands this member in the same exposition and
		// long-form dumps as in-process nodes; when the member dies, the
		// collector serves its last snapshot marked stale.
		c.cfg.Collector.RegisterPoller(m.name, m.client.remote)
	}
	return m, nil
}

func (c *subprocessCluster) Kill(m Member) error {
	sm, ok := m.(*subprocessMember)
	if !ok {
		return fmt.Errorf("fleet: member %s is not from this cluster", m.Name())
	}
	return c.killMember(sm)
}

// killMember SIGKILLs the process and reaps it.
func (c *subprocessCluster) killMember(m *subprocessMember) error {
	if !m.markDead() {
		return nil
	}
	err := m.cmd.Process.Kill()
	<-m.exited
	m.logf.Close()
	if err != nil && !errors.Is(err, os.ErrProcessDone) {
		return fmt.Errorf("fleet: kill %s: %w", m.name, err)
	}
	return nil
}

// stopMember asks the agent for a graceful shutdown and falls back to
// SIGKILL when the process does not exit in time.
func (c *subprocessCluster) stopMember(m *subprocessMember, patience time.Duration) {
	if !m.markDead() {
		return
	}
	graceful := m.client.stopNode() == nil
	if graceful {
		select {
		case <-m.exited:
			m.logf.Close()
			return
		case <-time.After(patience):
		}
	}
	_ = m.cmd.Process.Kill()
	<-m.exited
	m.logf.Close()
}

func (c *subprocessCluster) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	addrs := make([]string, 0, len(c.members))
	for _, m := range c.members {
		if m.Alive() {
			addrs = append(addrs, m.Addr())
		}
	}
	return addrs
}

func (c *subprocessCluster) Snapshot() []metrics.NodeSnapshot {
	c.mu.Lock()
	members := make([]*subprocessMember, len(c.members))
	copy(members, c.members)
	c.mu.Unlock()
	snaps := make([]metrics.NodeSnapshot, 0, len(members))
	for _, m := range members {
		if !m.Alive() {
			continue
		}
		if s, err := m.Snapshot(); err == nil {
			snaps = append(snaps, s)
		}
	}
	return snaps
}

// SetFaultRules implements Cluster: the rule table is pushed to every
// live member's control agent (each installs it on its process-global
// fault set) and remembered for members spawned later. A member that
// cannot be reached is skipped when it is already dead — its network
// stack died with it — but a live member refusing the push is an error.
func (c *subprocessCluster) SetFaultRules(rules []transport.FaultRule) error {
	c.mu.Lock()
	c.faultRules = append([]transport.FaultRule(nil), rules...)
	members := make([]*subprocessMember, len(c.members))
	copy(members, c.members)
	c.mu.Unlock()

	var errs []error
	for _, m := range members {
		if !m.Alive() {
			continue
		}
		if err := m.client.setFaults(rules); err != nil {
			if !m.Alive() { // died under the push: that is churn, not failure
				continue
			}
			errs = append(errs, fmt.Errorf("fleet: member %s: %w", m.name, err))
		}
	}
	return errors.Join(errs...)
}

func (c *subprocessCluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	members := make([]*subprocessMember, len(c.members))
	copy(members, c.members)
	c.mu.Unlock()

	// One last poll round before the processes go away warms the
	// collector's staleness cache, so a final dump or scrape after Close
	// replays the fleet's true end state (marked stale) instead of
	// zeros. Inproc clusters need no such step — their nodes remain
	// readable after Close.
	if c.cfg.Collector != nil {
		c.cfg.Collector.Snapshot()
	}

	// Stop members in parallel: each gets a graceful window, then the
	// hammer. A fleet of dozens must not take dozens of seconds to fold.
	var wg sync.WaitGroup
	for _, m := range members {
		wg.Add(1)
		go func(m *subprocessMember) {
			defer wg.Done()
			c.stopMember(m, 3*time.Second)
		}(m)
	}
	wg.Wait()
	if c.ownDir {
		return os.RemoveAll(c.dir)
	}
	return nil
}

// tailFile returns up to n trailing bytes of the file at path, for spawn
// failure diagnostics.
func tailFile(path string, n int64) string {
	raw, err := os.ReadFile(path)
	if err != nil {
		return "(no log: " + err.Error() + ")"
	}
	if int64(len(raw)) > n {
		raw = raw[int64(len(raw))-n:]
	}
	return string(raw)
}
