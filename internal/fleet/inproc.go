package fleet

import (
	"errors"
	"fmt"
	"sync"

	"peersampling/internal/gateway"
	"peersampling/internal/metrics"
	"peersampling/internal/runtime"
	"peersampling/internal/transport"
	"peersampling/internal/workload"
)

// inprocCluster runs every member as a goroutine-driven runtime.Node in
// this process — the harness the live scenarios used to build by hand.
type inprocCluster struct {
	cfg Config

	mu      sync.Mutex
	members []*inprocMember
	next    int // monotonic member index; respawns get fresh names
	closed  bool
	// faulted remembers that SetFaultRules was used, so Close can heal
	// the process-global fault set instead of leaking rules into whatever
	// runs in this process next.
	faulted bool
}

func newInproc(cfg Config) *inprocCluster {
	return &inprocCluster{cfg: cfg.withDefaults()}
}

type inprocMember struct {
	name string
	node *runtime.Node
	// src is what observers see: the node, or a workload.NodeSource
	// pairing it with its engine when the template runs one.
	src metrics.Source
	// att is the member's workload attachment; nil without one.
	att *workload.Attachment
	// gw is the member's sampling gateway; nil without one.
	gw *gateway.Gateway

	mu    sync.Mutex
	alive bool
}

func (m *inprocMember) Name() string { return m.name }
func (m *inprocMember) Addr() string { return m.node.Addr() }

func (m *inprocMember) GatewayAddr() string {
	if m.gw == nil {
		return ""
	}
	return m.gw.Addr()
}

func (m *inprocMember) Alive() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.alive
}

func (m *inprocMember) Snapshot() (metrics.NodeSnapshot, error) {
	// A closed runtime node stays readable, so this works on dead
	// members too — the inproc driver's one fidelity advantage.
	return metrics.SnapshotSource(m.name, m.src), nil
}

func (m *inprocMember) View() ([]transport.Descriptor, error) {
	return m.node.View(), nil
}

func (m *inprocMember) kill() error {
	m.mu.Lock()
	if !m.alive {
		m.mu.Unlock()
		return nil
	}
	m.alive = false
	m.mu.Unlock()
	if m.att != nil {
		m.att.Close() // stop initiating app rounds before the transport goes
	}
	if m.gw != nil {
		_ = m.gw.Close() // stop serving samples before the node's GetPeer goes
	}
	return m.node.Close()
}

func (c *inprocCluster) Spawn(contacts []string) (Member, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, errors.New("fleet: cluster closed")
	}
	idx := c.next
	c.next++
	c.mu.Unlock()

	seed := uint64(0)
	if c.cfg.Seed != 0 {
		seed = mix(c.cfg.Seed, idx)
	}
	factory, err := transport.NewFactoryLimits(c.cfg.Backend, "127.0.0.1:0", c.cfg.Limits)
	if err != nil {
		return nil, fmt.Errorf("fleet: member %d: %w", idx, err)
	}
	node, err := runtime.New(runtime.Config{
		Protocol: c.cfg.Protocol,
		ViewSize: c.cfg.ViewSize,
		Period:   c.cfg.Period,
		Seed:     seed,
	}, factory)
	if err != nil {
		return nil, fmt.Errorf("fleet: member %d: %w", idx, err)
	}
	m := &inprocMember{name: c.cfg.Name(idx), node: node, alive: true}
	m.src = node
	if c.cfg.Workload.Kind != "" {
		ws := c.cfg.workloadSection()
		engine, err := workload.New(ws)
		if err != nil {
			_ = node.Close()
			return nil, fmt.Errorf("fleet: member %s: %w", m.name, err)
		}
		period := ws.Period
		if period <= 0 {
			period = c.cfg.Period
		}
		att, err := workload.Attach(node, engine, period)
		if err != nil {
			_ = node.Close()
			return nil, fmt.Errorf("fleet: member %s: %w", m.name, err)
		}
		m.att = att
		m.src = workload.NewNodeSource(node, engine)
	}
	if len(contacts) > 0 {
		if err := node.Init(contacts); err != nil {
			_ = node.Close()
			return nil, fmt.Errorf("fleet: member %s init: %w", m.name, err)
		}
	}
	if err := node.Start(); err != nil {
		_ = node.Close()
		return nil, fmt.Errorf("fleet: member %s start: %w", m.name, err)
	}
	if m.att != nil {
		m.att.Runner.Start()
	}
	if c.cfg.Gateway.Addr != "" {
		gs := c.cfg.gatewaySection()
		gw, err := gateway.New(gs.Addr, node, gateway.Config{
			BatchSize:        gs.BatchSize,
			Refresh:          gs.Refresh,
			RateRPS:          gs.RateRPS,
			Burst:            gs.Burst,
			TrustProxyHeader: gs.TrustProxyHeader,
		})
		if err != nil {
			_ = m.kill()
			return nil, fmt.Errorf("fleet: member %s gateway: %w", m.name, err)
		}
		m.gw = gw
	}

	c.mu.Lock()
	if c.closed {
		// Close raced the spawn: do not leak the node.
		c.mu.Unlock()
		_ = m.kill()
		return nil, errors.New("fleet: cluster closed")
	}
	c.members = append(c.members, m)
	c.mu.Unlock()

	if c.cfg.Collector != nil {
		c.cfg.Collector.Register(m.name, m.src)
		if m.gw != nil {
			// The gateway registers as its own source ("node03-gw"), the
			// same shape the daemon's gateway plugin produces: its serve
			// counters and latency land in the exposition and long-form
			// dumps beside the node's gossip counters.
			c.cfg.Collector.RegisterFunc(m.name+"-gw", m.gw.Snapshot)
		}
	}
	return m, nil
}

func (c *inprocCluster) Kill(m Member) error {
	im, ok := m.(*inprocMember)
	if !ok {
		return fmt.Errorf("fleet: member %s is not from this cluster", m.Name())
	}
	return im.kill()
}

func (c *inprocCluster) Addrs() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	addrs := make([]string, 0, len(c.members))
	for _, m := range c.members {
		if m.Alive() {
			addrs = append(addrs, m.Addr())
		}
	}
	return addrs
}

func (c *inprocCluster) Snapshot() []metrics.NodeSnapshot {
	c.mu.Lock()
	members := make([]*inprocMember, len(c.members))
	copy(members, c.members)
	c.mu.Unlock()
	snaps := make([]metrics.NodeSnapshot, 0, len(members))
	for _, m := range members {
		if !m.Alive() {
			continue
		}
		s, _ := m.Snapshot() // inproc snapshots cannot fail
		snaps = append(snaps, s)
	}
	return snaps
}

// SetFaultRules implements Cluster. Inproc members share this process's
// transports, so the rules land on the process-global fault set — which
// every registry backend consults — and cover future spawns for free.
func (c *inprocCluster) SetFaultRules(rules []transport.FaultRule) error {
	c.mu.Lock()
	c.faulted = true
	c.mu.Unlock()
	transport.Faults().SetRules(rules)
	return nil
}

func (c *inprocCluster) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	members := make([]*inprocMember, len(c.members))
	copy(members, c.members)
	faulted := c.faulted
	c.mu.Unlock()

	if faulted {
		transport.Faults().SetRules(nil)
	}
	var first error
	for _, m := range members {
		if err := m.kill(); err != nil && first == nil {
			first = err
		}
	}
	return first
}
