package fleet

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"time"

	"peersampling/internal/metrics"
	"peersampling/internal/transport"
)

// AgentInfo identifies a running node to its parent: the payload of the
// agent's /healthz endpoint and of the ready file a psnode writes once
// its listeners are bound.
type AgentInfo struct {
	PID int `json:"pid"`
	// Addr is the gossip address peers dial.
	Addr string `json:"addr"`
	// ControlAddr is the agent's own HTTP listen address; empty when the
	// daemon runs without an agent.
	ControlAddr string `json:"control_addr"`
	// GatewayAddr is the sampling gateway's HTTP listen address; empty
	// when the daemon runs without a gateway.
	GatewayAddr string `json:"gateway_addr,omitempty"`
	// StartUnixMillis is when the daemon came up.
	StartUnixMillis int64 `json:"start_unix_ms"`
}

// viewEntry is the wire shape of one /view descriptor. core.Descriptor
// carries no JSON tags, and the agent contract should not change if it
// ever grows some.
type viewEntry struct {
	Addr string `json:"addr"`
	Hop  int32  `json:"hop"`
}

// Agent serves a node's control surface over HTTP: health, view dump,
// counter snapshot and graceful stop (the contract in the package doc).
// psnode starts one when given -control-addr; the subprocess cluster
// driver is its main client.
type Agent struct {
	info AgentInfo
	src  metrics.Source
	ln   net.Listener
	srv  *http.Server

	mu     sync.Mutex
	status func() any

	stopOnce sync.Once
	stop     func()
}

// NewAgent serves the control surface for a node on addr ("127.0.0.1:0"
// picks an ephemeral port, reported by Addr). src is usually the
// *runtime.Node itself; a daemon running a workload engine passes its
// combined workload.NodeSource so /snapshot carries the app counters
// too. stop is invoked (once, on its own goroutine) when a client POSTs
// /stop; it should make the daemon's main loop exit as if signalled.
func NewAgent(addr string, src metrics.Source, stop func()) (*Agent, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("fleet: agent listen %s: %w", addr, err)
	}
	a := &Agent{
		info: AgentInfo{
			PID:             os.Getpid(),
			Addr:            src.Addr(),
			ControlAddr:     ln.Addr().String(),
			StartUnixMillis: time.Now().UnixMilli(),
		},
		src:  src,
		ln:   ln,
		stop: stop,
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", a.handleHealthz)
	mux.HandleFunc("/snapshot", a.handleSnapshot)
	mux.HandleFunc("/view", a.handleView)
	mux.HandleFunc("/stop", a.handleStop)
	mux.HandleFunc("/faults", a.handleFaults)
	// Same tight phase bounds as the metrics server: a control port must
	// not reopen the slowloris class the gossip listener's Limits close.
	a.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      15 * time.Second,
		IdleTimeout:       time.Minute,
	}
	go func() { _ = a.srv.Serve(ln) }()
	return a, nil
}

// Addr returns the agent's bound HTTP address.
func (a *Agent) Addr() string { return a.ln.Addr().String() }

// Info returns the identity the agent advertises (also the ready-file
// payload).
func (a *Agent) Info() AgentInfo { return a.info }

// SetStatus installs a callback whose result rides /healthz responses
// under "daemon" — how the daemon manager exposes its aggregated plugin
// report through the control port. Existing clients that decode only
// AgentInfo are unaffected.
func (a *Agent) SetStatus(fn func() any) {
	a.mu.Lock()
	a.status = fn
	a.mu.Unlock()
}

// Close stops the agent's HTTP server. It does not stop the node.
func (a *Agent) Close() error { return a.srv.Close() }

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (a *Agent) handleHealthz(w http.ResponseWriter, r *http.Request) {
	a.mu.Lock()
	status := a.status
	a.mu.Unlock()
	if status == nil {
		writeJSON(w, a.info)
		return
	}
	writeJSON(w, struct {
		AgentInfo
		Daemon any `json:"daemon"`
	}{a.info, status()})
}

func (a *Agent) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	// The node's address doubles as the snapshot name; a collector on
	// the scraping side overrides it with the registered member name.
	writeJSON(w, metrics.SnapshotSource(a.src.Addr(), a.src))
}

func (a *Agent) handleView(w http.ResponseWriter, r *http.Request) {
	view := a.src.View()
	entries := make([]viewEntry, len(view))
	for i, d := range view {
		entries[i] = viewEntry{Addr: d.Addr, Hop: d.Hop}
	}
	writeJSON(w, entries)
}

func (a *Agent) handleStop(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST /stop", http.StatusMethodNotAllowed)
		return
	}
	a.stopOnce.Do(func() {
		if a.stop != nil {
			go a.stop()
		}
	})
	writeJSON(w, map[string]bool{"stopping": true})
}

// handleFaults replaces this process's per-link fault rules: POST a JSON
// array of transport.FaultRule (an empty array heals everything). The
// rules land on the process-global fault set every registry transport
// consults, which is how a chaos plan's partitions and lossy links reach
// a forked psnode — the subprocess cluster driver pushes the same rule
// table it would install locally for inproc members.
func (a *Agent) handleFaults(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST /faults", http.StatusMethodNotAllowed)
		return
	}
	var rules []transport.FaultRule
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<20)).Decode(&rules); err != nil {
		http.Error(w, "malformed fault rules: "+err.Error(), http.StatusBadRequest)
		return
	}
	transport.Faults().SetRules(rules)
	writeJSON(w, map[string]int{"active": transport.Faults().ActiveRules()})
}

// WriteReady atomically writes info as JSON at path (write-then-rename),
// so a parent polling the path never reads a partial file.
func WriteReady(path string, info AgentInfo) error {
	raw, err := json.Marshal(info)
	if err != nil {
		return fmt.Errorf("fleet: ready file: %w", err)
	}
	tmp := path + ".tmp"
	if err := os.WriteFile(tmp, raw, 0o644); err != nil {
		return fmt.Errorf("fleet: ready file: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		return fmt.Errorf("fleet: ready file: %w", err)
	}
	return nil
}

// ReadReady reads a ready file written by WriteReady.
func ReadReady(path string) (AgentInfo, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return AgentInfo{}, err
	}
	var info AgentInfo
	if err := json.Unmarshal(raw, &info); err != nil {
		return AgentInfo{}, fmt.Errorf("fleet: ready file %s: %w", filepath.Base(path), err)
	}
	return info, nil
}

// agentClient drives one member's control agent from the parent side.
// Snapshot scraping is delegated to metrics.Remote — the same code path
// a collector uses — so the fetch contract (timeout, body cap, error
// shape) lives in one place.
type agentClient struct {
	base   string // "http://host:port"
	hc     *http.Client
	remote *metrics.Remote
}

func newAgentClient(controlAddr string) *agentClient {
	base := "http://" + controlAddr
	return &agentClient{
		base:   base,
		hc:     &http.Client{Timeout: 2 * time.Second},
		remote: metrics.NewRemote(base + "/snapshot"),
	}
}

func (c *agentClient) getJSON(path string, v any) error {
	resp, err := c.hc.Get(c.base + path)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.CopyN(io.Discard, resp.Body, 4096)
		return fmt.Errorf("fleet: agent %s%s: status %d", c.base, path, resp.StatusCode)
	}
	return json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(v)
}

func (c *agentClient) health() (AgentInfo, error) {
	var info AgentInfo
	err := c.getJSON("/healthz", &info)
	return info, err
}

func (c *agentClient) snapshot() (metrics.NodeSnapshot, error) {
	return c.remote.Poll()
}

func (c *agentClient) view() ([]transport.Descriptor, error) {
	var entries []viewEntry
	if err := c.getJSON("/view", &entries); err != nil {
		return nil, err
	}
	view := make([]transport.Descriptor, len(entries))
	for i, e := range entries {
		view[i] = transport.Descriptor{Addr: e.Addr, Hop: e.Hop}
	}
	return view, nil
}

func (c *agentClient) setFaults(rules []transport.FaultRule) error {
	if rules == nil {
		rules = []transport.FaultRule{} // encode "heal" as [], not null
	}
	raw, err := json.Marshal(rules)
	if err != nil {
		return fmt.Errorf("fleet: fault rules: %w", err)
	}
	resp, err := c.hc.Post(c.base+"/faults", "application/json", bytes.NewReader(raw))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.CopyN(io.Discard, resp.Body, 4096)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: agent %s/faults: status %d", c.base, resp.StatusCode)
	}
	return nil
}

func (c *agentClient) stopNode() error {
	resp, err := c.hc.Post(c.base+"/stop", "application/json", nil)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.CopyN(io.Discard, resp.Body, 4096)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleet: agent %s/stop: status %d", c.base, resp.StatusCode)
	}
	return nil
}
