package fleet

import (
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	goruntime "runtime"
	"testing"
	"time"

	"peersampling/internal/config"
	"peersampling/internal/core"
	"peersampling/internal/metrics"
)

// psnodeBin is the psnode binary built once for the subprocess tests;
// empty when the build failed (those tests then skip with the reason).
var (
	psnodeBin      string
	psnodeBuildErr error
)

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "fleetbin-*")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	bin := filepath.Join(dir, "psnode")
	cmd := exec.Command("go", "build", "-o", bin, "peersampling/cmd/psnode")
	if out, err := cmd.CombinedOutput(); err != nil {
		psnodeBuildErr = fmt.Errorf("building psnode: %v\n%s", err, out)
	} else {
		psnodeBin = bin
	}
	code := m.Run()
	os.RemoveAll(dir)
	os.Exit(code)
}

func testConfig() Config {
	return Config{
		Protocol: core.Newscast,
		ViewSize: 5,
		Period:   15 * time.Millisecond,
		Seed:     7,
	}
}

// spawnN boots the first member contactless and the rest against it.
func spawnN(t *testing.T, c Cluster, n int) []Member {
	t.Helper()
	members := make([]Member, 0, n)
	for i := 0; i < n; i++ {
		var contacts []string
		if i > 0 {
			contacts = []string{members[0].Addr()}
		}
		m, err := c.Spawn(contacts)
		if err != nil {
			t.Fatalf("spawn %d: %v", i, err)
		}
		members = append(members, m)
	}
	return members
}

// complete reports whether every live member's view holds every other
// live member.
func complete(members []Member) bool {
	live := map[string]bool{}
	for _, m := range members {
		if m.Alive() {
			live[m.Addr()] = true
		}
	}
	for _, m := range members {
		if !m.Alive() {
			continue
		}
		view, err := m.View()
		if err != nil {
			return false
		}
		known := map[string]bool{}
		for _, d := range view {
			if live[d.Addr] && d.Addr != m.Addr() {
				known[d.Addr] = true
			}
		}
		if len(known) != len(live)-1 {
			return false
		}
	}
	return true
}

func waitComplete(t *testing.T, members []Member, timeout time.Duration) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		if complete(members) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster did not converge within %v", timeout)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestInprocClusterLifecycle(t *testing.T) {
	coll := metrics.New()
	cfg := testConfig()
	cfg.Collector = coll
	c, err := New(DriverInproc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Goroutine accounting brackets the whole lifecycle: Close must
	// return the process to (almost) where Spawn found it.
	before := goruntime.NumGoroutine()

	members := spawnN(t, c, 4)
	if len(c.Addrs()) != 4 {
		t.Fatalf("Addrs = %v", c.Addrs())
	}
	waitComplete(t, members, 10*time.Second)

	if coll.Len() != 4 {
		t.Fatalf("collector has %d sources want 4", coll.Len())
	}
	snaps := c.Snapshot()
	if len(snaps) != 4 {
		t.Fatalf("Snapshot len = %d", len(snaps))
	}
	for _, s := range snaps {
		if s.Node == "" || s.Addr == "" {
			t.Errorf("anonymous snapshot: %+v", s)
		}
		if s.Wire == nil {
			t.Errorf("member %s has no wire counters over TCP", s.Node)
		}
		if s.Latency == nil {
			t.Errorf("member %s has no latency histogram", s.Node)
		}
	}
	if snaps[0].Node != "node00" {
		t.Errorf("first member name = %q", snaps[0].Node)
	}

	// Kill one: it leaves Addrs and Snapshot, survivors re-converge.
	if err := c.Kill(members[1]); err != nil {
		t.Fatal(err)
	}
	if members[1].Alive() {
		t.Error("killed member still Alive")
	}
	if err := c.Kill(members[1]); err != nil {
		t.Errorf("double Kill: %v", err)
	}
	if got := len(c.Addrs()); got != 3 {
		t.Errorf("Addrs after kill = %d", got)
	}
	if got := len(c.Snapshot()); got != 3 {
		t.Errorf("Snapshot after kill = %d", got)
	}
	waitComplete(t, members, 10*time.Second)

	// Close is idempotent and leak-free.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := c.Spawn(nil); err == nil {
		t.Error("Spawn after Close succeeded")
	}
	deadline := time.Now().Add(5 * time.Second)
	for goruntime.NumGoroutine() > before+2 && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	if got := goruntime.NumGoroutine(); got > before+2 {
		buf := make([]byte, 1<<16)
		t.Errorf("goroutines leaked: %d -> %d\n%s", before, got, buf[:goruntime.Stack(buf, true)])
	}
}

func TestAgentServesNodeAndStops(t *testing.T) {
	c, err := New(DriverInproc, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	members := spawnN(t, c, 2)
	waitComplete(t, members, 10*time.Second)

	stopped := make(chan struct{})
	node := members[0].(*inprocMember).node
	// The latency histogram only fills on completed ACTIVE exchanges;
	// wait until the contact node has initiated at least one.
	for deadline := time.Now().Add(10 * time.Second); ; {
		if node.ExchangeLatency().Count > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("contact node never completed an active exchange")
		}
		time.Sleep(10 * time.Millisecond)
	}
	agent, err := NewAgent("127.0.0.1:0", node, func() { close(stopped) })
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	client := newAgentClient(agent.Addr())
	info, err := client.health()
	if err != nil {
		t.Fatal(err)
	}
	if info.PID != os.Getpid() || info.Addr != node.Addr() || info.ControlAddr != agent.Addr() {
		t.Errorf("healthz info wrong: %+v", info)
	}
	snap, err := client.snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if snap.Addr != node.Addr() || snap.Cycles == 0 {
		t.Errorf("snapshot wrong: %+v", snap)
	}
	if snap.Latency == nil || snap.Latency.Count == 0 {
		t.Errorf("snapshot lost the latency histogram: %+v", snap.Latency)
	}
	view, err := client.view()
	if err != nil {
		t.Fatal(err)
	}
	if len(view) == 0 || view[0].Addr == "" {
		t.Errorf("view dump wrong: %+v", view)
	}

	// /stop is POST-only and fires the callback exactly once.
	resp, err := client.hc.Get(client.base + "/stop")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == 200 {
		t.Error("GET /stop accepted")
	}
	if err := client.stopNode(); err != nil {
		t.Fatal(err)
	}
	if err := client.stopNode(); err != nil {
		t.Fatalf("second stop: %v", err)
	}
	select {
	case <-stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("stop callback never fired")
	}
}

func TestReadyFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ready.json")
	if _, err := ReadReady(path); err == nil {
		t.Error("missing ready file read successfully")
	}
	want := AgentInfo{PID: 42, Addr: "127.0.0.1:1", ControlAddr: "127.0.0.1:2", StartUnixMillis: 3}
	if err := WriteReady(path, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReady(path)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("round trip: %+v != %+v", got, want)
	}
	if entries, _ := os.ReadDir(filepath.Dir(path)); len(entries) != 1 {
		t.Errorf("temp file left behind: %v", entries)
	}
}

func needPsnode(t *testing.T) string {
	t.Helper()
	if testing.Short() {
		t.Skip("subprocess fleet test")
	}
	if psnodeBin == "" {
		t.Skipf("psnode binary unavailable: %v", psnodeBuildErr)
	}
	return psnodeBin
}

// The subprocess driver's acceptance test: real psnode processes
// converge, one dies mid-exchange by SIGKILL, the survivors' counters
// (scraped through the agent) stay consistent and keep advancing, and
// Close reaps everything. Run under -race in CI (races here are in the
// driver, not the daemons).
func TestSubprocessClusterChurnAndTeardown(t *testing.T) {
	bin := needPsnode(t)
	coll := metrics.New()
	cfg := testConfig()
	cfg.Psnode = bin
	cfg.Collector = coll
	c, err := New(DriverSubprocess, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	members := spawnN(t, c, 3)
	waitComplete(t, members, 30*time.Second)

	// Counters scraped through the agent must be live and well-formed.
	snaps := c.Snapshot()
	if len(snaps) != 3 {
		t.Fatalf("Snapshot len = %d", len(snaps))
	}
	for _, s := range snaps {
		if s.Cycles == 0 {
			t.Errorf("member %s shows no cycles", s.Node)
		}
		if s.Wire == nil || s.Wire.Dials == 0 {
			t.Errorf("member %s wire counters flat: %+v", s.Node, s.Wire)
		}
	}

	// Kill one process outright, mid-gossip; with a 15ms period there is
	// essentially always an exchange in flight.
	victim := members[2]
	if err := c.Kill(victim); err != nil {
		t.Fatal(err)
	}
	if victim.Alive() {
		t.Error("killed member still Alive")
	}
	if _, err := victim.Snapshot(); err == nil {
		t.Error("snapshot of a SIGKILLed process succeeded")
	}
	if err := c.Kill(victim); err != nil {
		t.Errorf("double Kill: %v", err)
	}

	// Survivors keep gossiping: their exchange counters advance past the
	// kill, with failures against the dead peer tolerated, and their
	// wire counters (the StatsReporter path through the agent) stay
	// monotonic and consistent.
	base := map[string]metrics.NodeSnapshot{}
	for _, s := range c.Snapshot() {
		base[s.Node] = s
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		advanced := 0
		snaps := c.Snapshot()
		for _, s := range snaps {
			b := base[s.Node]
			if s.Cycles < b.Cycles || s.Exchanges < b.Exchanges || s.Wire == nil ||
				s.Wire.Dials < b.Wire.Dials || s.Wire.BytesOut < b.Wire.BytesOut {
				t.Fatalf("counters went backwards after the kill: %+v then %+v", b, s)
			}
			if s.Exchanges > b.Exchanges {
				advanced++
			}
		}
		if advanced == len(snaps) && len(snaps) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("survivors made no progress after the kill")
		}
		time.Sleep(50 * time.Millisecond)
	}
	waitComplete(t, members, 30*time.Second)

	// The external collector sees the dead member as a stale source, not
	// a hole in the exposition.
	var sawStale bool
	for _, s := range coll.Snapshot() {
		if s.Node == victim.Name() {
			sawStale = s.Stale
		}
	}
	if !sawStale {
		t.Error("dead member not marked stale on the collector")
	}

	// Close reaps every process and is idempotent.
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if _, err := c.Spawn(nil); err == nil {
		t.Error("Spawn after Close succeeded")
	}
	for _, m := range members {
		sm := m.(*subprocessMember)
		select {
		case <-sm.exited:
		default:
			t.Errorf("member %s process still running after Close", sm.name)
		}
	}
}

// Spawning against a binary that exits immediately must surface the log
// tail, not hang.
func TestSubprocessSpawnFailureDiagnosed(t *testing.T) {
	bin := needPsnode(t)
	cfg := testConfig()
	cfg.Psnode = bin
	cfg.ViewSize = -1 // psnode rejects this before binding anything
	cfg.SpawnTimeout = 10 * time.Second
	c, err := New(DriverSubprocess, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Spawn(nil); err == nil {
		t.Fatal("doomed spawn succeeded")
	}
}

func TestSubprocessNeedsBinary(t *testing.T) {
	if _, err := New(DriverSubprocess, testConfig()); err == nil {
		t.Error("driver accepted an empty Psnode path")
	}
	cfg := testConfig()
	cfg.Psnode = "/nonexistent/psnode"
	if _, err := New(DriverSubprocess, cfg); err == nil {
		t.Error("driver accepted a missing binary")
	}
}

func TestUnknownDriver(t *testing.T) {
	if _, err := New("container", Config{}); err == nil {
		t.Error("unknown driver accepted")
	}
}

// SpawnN boots a wave concurrently on the cheap driver: all members come
// up, converge, and the degenerate and failure shapes behave.
func TestSpawnNWaveInproc(t *testing.T) {
	c, err := New(DriverInproc, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	first, err := c.Spawn(nil)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := SpawnN(c, 4, []string{first.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	if len(wave) != 4 {
		t.Fatalf("SpawnN returned %d members", len(wave))
	}
	names := map[string]bool{first.Name(): true}
	for _, m := range wave {
		if !m.Alive() {
			t.Errorf("member %s spawned dead", m.Name())
		}
		if names[m.Name()] {
			t.Errorf("duplicate member name %s", m.Name())
		}
		names[m.Name()] = true
	}
	waitComplete(t, append([]Member{first}, wave...), 30*time.Second)

	if ms, err := SpawnN(c, 0, nil); ms != nil || err != nil {
		t.Errorf("SpawnN(0) = %v, %v", ms, err)
	}
	c.Close()
	if _, err := SpawnN(c, 3, nil); err == nil {
		t.Error("SpawnN on a closed cluster succeeded")
	}
}

// The subprocess driver provisions members from generated config files:
// each member's directory keeps the complete config it booted from, and
// the file round-trips through the config loader.
func TestSpawnNSubprocessProvisionsConfigFiles(t *testing.T) {
	bin := needPsnode(t)
	cfg := testConfig()
	cfg.Psnode = bin
	cfg.Dir = t.TempDir()
	c, err := New(DriverSubprocess, cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	first, err := c.Spawn(nil)
	if err != nil {
		t.Fatal(err)
	}
	wave, err := SpawnN(c, 2, []string{first.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	waitComplete(t, append([]Member{first}, wave...), 30*time.Second)

	for _, name := range []string{"node00", "node01", "node02"} {
		path := filepath.Join(cfg.Dir, name, "config.json")
		mc, err := config.LoadFile(path)
		if err != nil {
			t.Fatalf("member %s config does not round-trip: %v", name, err)
		}
		if mc.Node.ViewSize != cfg.ViewSize || mc.Transport.Backend != "tcp" {
			t.Errorf("member %s config = %+v", name, mc.Node)
		}
		if mc.Control.Addr == "" || mc.Control.ReadyFile == "" {
			t.Errorf("member %s config missing control surface: %+v", name, mc.Control)
		}
	}
	if len(first.(*subprocessMember).info.Addr) == 0 {
		t.Error("first member has no discovered address")
	}
}
