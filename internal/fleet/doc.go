// Package fleet is the multi-process experiment harness: it boots, kills
// and observes clusters of peer sampling nodes behind one Cluster
// interface, so a live scenario written once runs unchanged against
// goroutines in this process or against real psnode processes.
//
// # Driver matrix
//
//	driver       member is            Kill means             observed via
//	inproc       *runtime.Node        Node.Close             direct method calls
//	subprocess   a psnode process     SIGKILL                control-agent HTTP scrapes
//
// The inproc driver is today's single-process harness extracted from the
// live scenarios: cheap, deterministic-seeded, no real process boundary.
// The subprocess driver forks the psnode binary per member; churn then
// kills real listeners with real kernel state, which is the fidelity the
// paper's experimental method asks of a deployment-facing harness.
//
// # Agent endpoint contract
//
// A psnode started with -control-addr serves a tiny HTTP/JSON control
// surface (the "agent") that the subprocess driver — and anything else,
// e.g. a future container orchestrator — drives:
//
//	GET  /healthz   -> AgentInfo: pid, gossip address, control address
//	GET  /snapshot  -> metrics.NodeSnapshot: protocol counters, wire
//	                   counters, exchange-latency histogram, view gauges
//	GET  /view      -> [{"addr": "...", "hop": n}, ...] — the full view
//	POST /stop      -> begins a graceful shutdown, returns immediately
//
// The /snapshot body is exactly what metrics.Remote scrapes, which is how
// a fleet lands in the same Prometheus exposition and long-form CSV
// schema as in-process nodes. Address discovery uses a ready file
// (psnode -ready-file): the daemon atomically writes AgentInfo as JSON
// once its listeners are bound, and the parent polls for the file —
// no stdout parsing, no port races.
package fleet
