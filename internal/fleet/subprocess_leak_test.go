package fleet

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"peersampling/internal/core"
)

// A member that starts but never reports ready must not leak: the spawn
// timeout path has to SIGKILL the half-started process, reap it (not
// even a zombie may remain), and close the captured log handle. The fake
// psnode below records its pid and sleeps without ever writing the ready
// file — the shape of a daemon wedged before its control agent binds.
func TestSpawnTimeoutReapsHalfStartedMember(t *testing.T) {
	if runtime.GOOS != "linux" {
		t.Skip("inspects /proc for leaked descriptors")
	}
	dir := t.TempDir()
	pidFile := filepath.Join(dir, "child.pid")
	fake := filepath.Join(dir, "fake-psnode")
	script := fmt.Sprintf("#!/bin/sh\necho $$ > %q\nexec sleep 3600\n", pidFile)
	if err := os.WriteFile(fake, []byte(script), 0o755); err != nil {
		t.Fatal(err)
	}

	fleetDir := filepath.Join(dir, "fleet")
	cluster, err := newSubprocess(Config{
		Protocol:     core.Newscast,
		Psnode:       fake,
		Dir:          fleetDir,
		SpawnTimeout: 300 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Close()

	m, err := cluster.Spawn(nil)
	if err == nil {
		t.Fatalf("spawn of a never-ready member succeeded: %v", m)
	}
	if !strings.Contains(err.Error(), "not ready after") {
		t.Fatalf("unexpected spawn error: %v", err)
	}

	raw, err := os.ReadFile(pidFile)
	if err != nil {
		t.Fatalf("fake psnode never recorded its pid: %v", err)
	}
	pid, err := strconv.Atoi(strings.TrimSpace(string(raw)))
	if err != nil {
		t.Fatalf("pid file %q: %v", raw, err)
	}
	// Kill and Wait both ran before Spawn returned, so the pid must be
	// fully reaped — a zombie would still accept signal 0.
	if err := syscall.Kill(pid, 0); !errors.Is(err, syscall.ESRCH) {
		t.Fatalf("child %d still exists after spawn timeout (kill 0 = %v)", pid, err)
	}

	// The member's log was captured into an *os.File the member struct
	// never surfaced; the error path must have closed it.
	logPath := filepath.Join(fleetDir, "node00", "psnode.log")
	if _, err := os.Stat(logPath); err != nil {
		t.Fatalf("expected member log at %s: %v", logPath, err)
	}
	fds, err := os.ReadDir("/proc/self/fd")
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range fds {
		target, err := os.Readlink(filepath.Join("/proc/self/fd", fd.Name()))
		if err == nil && target == logPath {
			t.Fatalf("log handle leaked: fd %s still open on %s", fd.Name(), target)
		}
	}
}
