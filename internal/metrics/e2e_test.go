package metrics

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"peersampling/internal/core"
	"peersampling/internal/runtime"
	"peersampling/internal/transport"
)

// End-to-end: a live fabric-backed cluster plus a real-socket TCP pair,
// all registered with one collector, scraped over actual HTTP. This is
// the deployment shape of psnode -metrics-addr.
func TestServerScrapesLiveNodes(t *testing.T) {
	cfg := runtime.Config{
		Protocol: core.Newscast,
		ViewSize: 8,
		Period:   time.Hour, // cycles driven by Tick
		Seed:     1,
	}

	// Fabric arm: three in-memory nodes in a ring.
	fabric := transport.NewFabric()
	var fabNodes []*runtime.Node
	for i := 0; i < 3; i++ {
		n, err := runtime.New(cfg, fabric.Factory(fmt.Sprintf("fab%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		fabNodes = append(fabNodes, n)
	}
	for i, n := range fabNodes {
		if err := n.Init([]string{fabNodes[(i+1)%len(fabNodes)].Addr()}); err != nil {
			t.Fatal(err)
		}
	}

	// Real-socket arm: two TCP nodes gossiping on loopback.
	var tcpNodes []*runtime.Node
	for i := 0; i < 2; i++ {
		factory, err := transport.NewFactory("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		n, err := runtime.New(cfg, factory)
		if err != nil {
			t.Fatal(err)
		}
		defer n.Close()
		tcpNodes = append(tcpNodes, n)
	}
	if err := tcpNodes[0].Init([]string{tcpNodes[1].Addr()}); err != nil {
		t.Fatal(err)
	}
	if err := tcpNodes[1].Init([]string{tcpNodes[0].Addr()}); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 3; i++ {
		for _, n := range fabNodes {
			n.Tick()
		}
		for _, n := range tcpNodes {
			n.Tick()
		}
	}

	coll := New()
	for i, n := range fabNodes {
		coll.Register(fmt.Sprintf("fab%d", i), n)
	}
	for i, n := range tcpNodes {
		coll.Register(fmt.Sprintf("tcp%d", i), n)
	}

	srv, err := NewServer(coll, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	if lm := resp.Header.Get("Last-Modified"); lm == "" {
		t.Error("no Last-Modified header on a scrape with live sources")
	} else if _, err := time.Parse(http.TimeFormat, lm); err != nil {
		t.Errorf("Last-Modified %q does not parse: %v", lm, err)
	}
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)

	// Protocol counters and view gauges for every node.
	for _, node := range []string{"fab0", "fab1", "fab2", "tcp0", "tcp1"} {
		for _, family := range []string{"peersampling_cycles_total", "peersampling_view_size", "peersampling_view_hop_mean"} {
			if !strings.Contains(body, family+`{node="`+node+`"`) {
				t.Errorf("no %s sample for %s", family, node)
			}
		}
	}
	if !strings.Contains(body, `peersampling_cycles_total{node="fab0",addr="`+fabNodes[0].Addr()+`"} 3`) {
		t.Errorf("fab0 cycle counter wrong in:\n%s", body)
	}
	// All nine wire counter families, with samples only for the TCP arm.
	for _, c := range (transport.Stats{}).Named() {
		family := "peersampling_transport_" + c.Name + "_total"
		if !strings.Contains(body, family+`{node="tcp0"`) {
			t.Errorf("no %s sample for tcp0", family)
		}
		if strings.Contains(body, family+`{node="fab0"`) {
			t.Errorf("fabric node exports wire counter %s", family)
		}
	}
	// The TCP pair has gossiped for real, so dials must be non-zero.
	if strings.Contains(body, `peersampling_transport_dials_total{node="tcp0",addr="`+tcpNodes[0].Addr()+`"} 0`) {
		t.Error("tcp0 dials still zero after three live cycles")
	}

	if _, err := http.Get("http://" + srv.Addr() + "/nope"); err != nil {
		t.Fatalf("non-metrics path errored at transport level: %v", err)
	}
}
