package metrics

import (
	"fmt"
	"net"
	"net/http"
	"time"
)

// Server publishes a Collector over HTTP: GET /metrics returns the
// Prometheus text exposition of a fresh snapshot round. Standard library
// only — the exposition format needs no client library.
type Server struct {
	collector *Collector
	ln        net.Listener
	srv       *http.Server
}

// NewServer starts serving the collector on addr (e.g. "127.0.0.1:9090",
// or ":0" for an ephemeral port reported by Addr). The server runs until
// Close.
func NewServer(c *Collector, addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("metrics: listen %s: %w", addr, err)
	}
	s := &Server{collector: c, ln: ln}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", s.handleMetrics)
	// A metrics endpoint serves small responses to well-known scrapers,
	// so every phase is tightly bounded: a client that stalls reading (or
	// idles on a keep-alive conn) releases its goroutine at the timeout
	// instead of pinning it — the slowloris class the gossip listener's
	// Limits guard against must not reopen on the adjacent port.
	s.srv = &http.Server{
		Handler:           mux,
		ReadHeaderTimeout: 10 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      15 * time.Second,
		IdleTimeout:       time.Minute,
	}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close stops the server and its listener immediately. In-flight scrapes
// are aborted; a metrics endpoint has nothing worth draining.
func (s *Server) Close() error { return s.srv.Close() }

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	snaps := s.collector.Snapshot()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	// Last-Modified carries the newest successful source poll: when every
	// member of a scraped fleet is dead, the header stops advancing and a
	// scraper can see the whole exposition is a replay without parsing it.
	// (The per-source staleness lives in the peersampling_source_up and
	// peersampling_source_last_update_seconds gauges.)
	var newest int64
	for _, snap := range snaps {
		if snap.UnixMillis > newest {
			newest = snap.UnixMillis
		}
	}
	if newest > 0 {
		w.Header().Set("Last-Modified", time.UnixMilli(newest).UTC().Format(http.TimeFormat))
	}
	_ = WritePrometheus(w, snaps)
}
