package metrics

import (
	"fmt"
	"io"
	"strconv"
	"strings"

	"peersampling/internal/transport"
)

// The Prometheus text exposition format, hand-rolled: one HELP/TYPE pair
// per metric family followed by one sample per node, all families emitted
// for every scrape. No client library is involved — the format is three
// line shapes and an escaping rule.

// promFamily describes one metric family and how to read its value from a
// snapshot. ok=false omits the sample (e.g. wire counters on a transport
// that keeps none).
type promFamily struct {
	name  string
	help  string
	typ   string // "counter" or "gauge"
	value func(s NodeSnapshot) (v float64, ok bool)
}

// promFamilies enumerates every exported family. Protocol counters and
// view gauges are fixed; the transport families are generated from
// transport.Stats.Named via the snapshots, so a wire counter added there
// is exported without touching this file.
func promFamilies(snaps []NodeSnapshot) []promFamily {
	families := []promFamily{
		{"peersampling_cycles_total", "Active gossip cycles run.", "counter",
			func(s NodeSnapshot) (float64, bool) { return float64(s.Cycles), true }},
		{"peersampling_exchanges_total", "Completed active exchanges.", "counter",
			func(s NodeSnapshot) (float64, bool) { return float64(s.Exchanges), true }},
		{"peersampling_exchange_failures_total", "Failed active exchanges (unreachable peers, timeouts).", "counter",
			func(s NodeSnapshot) (float64, bool) { return float64(s.Failures), true }},
		{"peersampling_requests_served_total", "Passive exchanges served to other nodes.", "counter",
			func(s NodeSnapshot) (float64, bool) { return float64(s.Served), true }},
		{"peersampling_view_size", "Current partial view occupancy (capacity is the protocol parameter c).", "gauge",
			func(s NodeSnapshot) (float64, bool) { return float64(s.ViewSize), true }},
		{"peersampling_view_hop_min", "Lowest hop age in the view (freshest descriptor).", "gauge",
			func(s NodeSnapshot) (float64, bool) { return float64(s.HopMin), true }},
		{"peersampling_view_hop_mean", "Mean hop age across the view.", "gauge",
			func(s NodeSnapshot) (float64, bool) { return s.HopMean, true }},
		{"peersampling_view_hop_max", "Highest hop age in the view (stalest descriptor).", "gauge",
			func(s NodeSnapshot) (float64, bool) { return float64(s.HopMax), true }},
		{"peersampling_source_up", "1 when the source answered this scrape's poll, 0 when its last snapshot is being replayed (dead or partitioned fleet member).", "gauge",
			func(s NodeSnapshot) (float64, bool) {
				if s.Stale {
					return 0, true
				}
				return 1, true
			}},
		{"peersampling_source_last_update_seconds", "Unix time of the source's last successful poll; stops advancing when the source dies.", "gauge",
			func(s NodeSnapshot) (float64, bool) { return float64(s.UnixMillis) / 1000, true }},
	}
	families = append(families, appFamilies()...)
	families = append(families, gatewayFamilies()...)
	families = append(families, chaosFamilies()...)
	for _, wire := range wireCounterNames(snaps) {
		name := wire // capture
		families = append(families, promFamily{
			name: "peersampling_transport_" + name + "_total",
			help: "Transport wire counter " + name + " (see transport.Stats).",
			typ:  "counter",
			value: func(s NodeSnapshot) (float64, bool) {
				if s.Wire == nil {
					return 0, false
				}
				for _, c := range s.Wire.Named() {
					if c.Name == name {
						return float64(c.Value), true
					}
				}
				return 0, false
			},
		})
	}
	return families
}

// appFamilies enumerates the workload engine's families. Samples are
// emitted only for snapshots carrying an app.Snapshot, so nodes without
// a workload stay unaffected. Infection state and the averaging estimate
// are gauges; everything else counts engine activity.
func appFamilies() []promFamily {
	ap := func(read func(a NodeSnapshot) float64) func(NodeSnapshot) (float64, bool) {
		return func(s NodeSnapshot) (float64, bool) {
			if s.App == nil {
				return 0, false
			}
			return read(s), true
		}
	}
	return []promFamily{
		{"peersampling_app_rounds_total", "Workload engine rounds ticked.", "counter",
			ap(func(s NodeSnapshot) float64 { return float64(s.App.Rounds) })},
		{"peersampling_app_messages_sent_total", "Workload payloads delivered to drawn peers.", "counter",
			ap(func(s NodeSnapshot) float64 { return float64(s.App.Sent) })},
		{"peersampling_app_messages_received_total", "Workload payloads received from peers.", "counter",
			ap(func(s NodeSnapshot) float64 { return float64(s.App.Received) })},
		{"peersampling_app_failures_total", "Workload deliveries that failed (unreachable peers, timeouts).", "counter",
			ap(func(s NodeSnapshot) float64 { return float64(s.App.Failures) })},
		{"peersampling_app_infected", "1 when the broadcast engine holds the rumor, 0 otherwise.", "gauge",
			ap(func(s NodeSnapshot) float64 { return s.App.Infected })},
		{"peersampling_app_value", "Current estimate of the push-pull averaging engine.", "gauge",
			ap(func(s NodeSnapshot) float64 { return s.App.Value })},
	}
}

// gatewayFamilies enumerates the sampling gateway's families. Samples
// are emitted only for snapshots carrying a GatewaySnapshot, so node
// sources stay unaffected.
func gatewayFamilies() []promFamily {
	gw := func(read func(g *GatewaySnapshot) float64) func(NodeSnapshot) (float64, bool) {
		return func(s NodeSnapshot) (float64, bool) {
			if s.Gateway == nil {
				return 0, false
			}
			return read(s.Gateway), true
		}
	}
	return []promFamily{
		{"peersampling_gateway_requests_total", "Sample requests accepted for serving.", "counter",
			gw(func(g *GatewaySnapshot) float64 { return float64(g.Requests) })},
		{"peersampling_gateway_peers_served_total", "Peer addresses returned across all sample requests.", "counter",
			gw(func(g *GatewaySnapshot) float64 { return float64(g.PeersServed) })},
		{"peersampling_gateway_rate_limited_total", "Sample requests refused with 429 by the per-client rate limit.", "counter",
			gw(func(g *GatewaySnapshot) float64 { return float64(g.RateLimited) })},
		{"peersampling_gateway_unavailable_total", "Sample requests refused with 503 because the sample cache was empty.", "counter",
			gw(func(g *GatewaySnapshot) float64 { return float64(g.Unavailable) })},
		{"peersampling_gateway_refreshes_total", "Completed sample-cache refresh rounds.", "counter",
			gw(func(g *GatewaySnapshot) float64 { return float64(g.Refreshes) })},
		{"peersampling_gateway_clients", "Client rate-limit buckets currently tracked.", "gauge",
			gw(func(g *GatewaySnapshot) float64 { return float64(g.Clients) })},
		{"peersampling_gateway_cache_size", "Distinct peers in the current sample batch.", "gauge",
			gw(func(g *GatewaySnapshot) float64 { return float64(g.CacheSize) })},
		{"peersampling_gateway_cache_age_seconds", "Age of the current sample batch.", "gauge",
			gw(func(g *GatewaySnapshot) float64 { return g.CacheAgeSeconds })},
	}
}

// chaosFamilies enumerates the fault-plan executor's families. Samples
// are emitted only for snapshots carrying a ChaosSnapshot — one source
// per running plan, beside the node sources it is disturbing.
func chaosFamilies() []promFamily {
	ch := func(read func(c *ChaosSnapshot) float64) func(NodeSnapshot) (float64, bool) {
		return func(s NodeSnapshot) (float64, bool) {
			if s.Chaos == nil {
				return 0, false
			}
			return read(s.Chaos), true
		}
	}
	return []promFamily{
		{"peersampling_chaos_active", "Fault rules currently installed on the fleet's transports by the running chaos plan.", "gauge",
			ch(func(c *ChaosSnapshot) float64 { return float64(c.ActiveRules) })},
		{"peersampling_chaos_events_total", "Chaos plan timeline steps applied (kills, partitions, rule expiries, floods).", "counter",
			ch(func(c *ChaosSnapshot) float64 { return float64(c.Events) })},
		{"peersampling_chaos_killed_total", "Members killed by the chaos plan.", "counter",
			ch(func(c *ChaosSnapshot) float64 { return float64(c.Killed) })},
		{"peersampling_chaos_respawned_total", "Members respawned by the chaos plan.", "counter",
			ch(func(c *ChaosSnapshot) float64 { return float64(c.Respawned) })},
	}
}

// wireCounterNames returns the counter names of the first snapshot that
// carries wire stats; nodes without counters simply emit no transport
// samples.
func wireCounterNames(snaps []NodeSnapshot) []string {
	for _, s := range snaps {
		if s.Wire == nil {
			continue
		}
		named := s.Wire.Named()
		names := make([]string, len(named))
		for i, c := range named {
			names[i] = c.Name
		}
		return names
	}
	return nil
}

// WritePrometheus renders the snapshots in the Prometheus text exposition
// format: per family a HELP and TYPE line, then one labelled sample per
// node.
func WritePrometheus(w io.Writer, snaps []NodeSnapshot) error {
	var b strings.Builder
	for _, fam := range promFamilies(snaps) {
		wrote := false
		for _, s := range snaps {
			v, ok := fam.value(s)
			if !ok {
				continue
			}
			if !wrote {
				fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", fam.name, fam.help, fam.name, fam.typ)
				wrote = true
			}
			// %q quotes and escapes backslash, double quote and newline —
			// exactly the label escaping the exposition format defines.
			fmt.Fprintf(&b, "%s{node=%q,addr=%q} %s\n",
				fam.name, s.Node, s.Addr, formatValue(v))
		}
	}
	writeLatencyHistogram(&b, snaps, "peersampling_exchange_latency_seconds",
		"Round-trip time of completed active exchanges.",
		func(s NodeSnapshot) *transport.LatencySnapshot { return s.Latency })
	writeLatencyHistogram(&b, snaps, "peersampling_gateway_latency_seconds",
		"Serve time of successful /v1/sample requests.",
		func(s NodeSnapshot) *transport.LatencySnapshot {
			if s.Gateway == nil {
				return nil
			}
			return s.Gateway.Latency
		})
	_, err := io.WriteString(w, b.String())
	return err
}

// writeLatencyHistogram renders one latency-histogram family for every
// node that carries it (pick returns nil for the rest), in the native
// Prometheus histogram shape: cumulative le-labelled buckets, _sum and
// _count. Both the exchange round-trip and the gateway serve-time
// families render through here.
func writeLatencyHistogram(b *strings.Builder, snaps []NodeSnapshot, family, help string,
	pick func(NodeSnapshot) *transport.LatencySnapshot) {
	wrote := false
	for _, s := range snaps {
		lat := pick(s)
		if lat == nil {
			continue
		}
		if !wrote {
			fmt.Fprintf(b, "# HELP %s %s\n# TYPE %s histogram\n", family, help, family)
			wrote = true
		}
		cum := lat.Cumulative()
		for i, bound := range transport.LatencyBounds {
			var c uint64
			if i < len(cum) {
				c = cum[i]
			}
			fmt.Fprintf(b, "%s_bucket{node=%q,addr=%q,le=%q} %d\n",
				family, s.Node, s.Addr, formatValue(bound), c)
		}
		fmt.Fprintf(b, "%s_bucket{node=%q,addr=%q,le=\"+Inf\"} %d\n", family, s.Node, s.Addr, lat.Count)
		fmt.Fprintf(b, "%s_sum{node=%q,addr=%q} %s\n", family, s.Node, s.Addr, formatValue(lat.SumSeconds))
		fmt.Fprintf(b, "%s_count{node=%q,addr=%q} %d\n", family, s.Node, s.Addr, lat.Count)
	}
}

// WritePrometheus takes one snapshot round and renders it; the Server's
// /metrics handler is exactly this.
func (c *Collector) WritePrometheus(w io.Writer) error {
	return WritePrometheus(w, c.Snapshot())
}

// formatValue renders integers without an exponent and everything else in
// shortest-round-trip form, matching what scrapers expect.
func formatValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
