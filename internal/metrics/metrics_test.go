package metrics

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"peersampling/internal/core"
	"peersampling/internal/transport"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite testdata golden files")

// fakeSource is a deterministic Source for exporter tests.
type fakeSource struct {
	addr                       string
	cycles, ex, failed, served uint64
	wire                       *transport.Stats
	view                       []core.Descriptor[string]
}

func (f *fakeSource) Addr() string { return f.addr }
func (f *fakeSource) Stats() (uint64, uint64, uint64, uint64) {
	return f.cycles, f.ex, f.failed, f.served
}
func (f *fakeSource) TransportStats() (transport.Stats, bool) {
	if f.wire == nil {
		return transport.Stats{}, false
	}
	return *f.wire, true
}
func (f *fakeSource) View() []core.Descriptor[string] { return f.view }

// latFakeSource is a fakeSource that also keeps an exchange-latency
// histogram, like runtime.Node does.
type latFakeSource struct {
	fakeSource
	lat transport.LatencySnapshot
}

func (f *latFakeSource) ExchangeLatency() transport.LatencySnapshot { return f.lat }

// fixedLatency returns a deterministic histogram: ten exchanges at ~2ms,
// one at ~30ms.
func fixedLatency() transport.LatencySnapshot {
	var h transport.LatencyHistogram
	for i := 0; i < 10; i++ {
		h.Observe(2 * time.Millisecond)
	}
	h.Observe(30 * time.Millisecond)
	return h.Snapshot()
}

// fixedCollector returns a collector over two fake nodes — one with wire
// counters, a latency histogram and a populated view, one bare — with
// time pinned.
func fixedCollector() *Collector {
	c := New()
	c.now = func() time.Time { return time.UnixMilli(1700000000000) }
	c.Register("alpha", &latFakeSource{
		fakeSource: fakeSource{
			addr: "127.0.0.1:7946", cycles: 12, ex: 10, failed: 2, served: 9,
			wire: &transport.Stats{
				Dials: 1, Reuses: 2, BytesOut: 3, BytesIn: 4, FramesOut: 5,
				FramesIn: 6, DatagramsDropped: 7, AcceptRejects: 8, KeepAliveEvictions: 9,
			},
			view: []core.Descriptor[string]{{Addr: "p1", Hop: 1}, {Addr: "p2", Hop: 2}, {Addr: "p3", Hop: 6}},
		},
		lat: fixedLatency(),
	})
	c.Register("beta", &fakeSource{addr: "fabric-b", cycles: 1})
	return c
}

func TestCollectorSnapshot(t *testing.T) {
	snaps := fixedCollector().Snapshot()
	if len(snaps) != 2 {
		t.Fatalf("snapshots = %d want 2", len(snaps))
	}
	a := snaps[0]
	if a.Node != "alpha" || a.Addr != "127.0.0.1:7946" || a.UnixMillis != 1700000000000 {
		t.Errorf("identity wrong: %+v", a)
	}
	if a.Cycles != 12 || a.Exchanges != 10 || a.Failures != 2 || a.Served != 9 {
		t.Errorf("protocol counters wrong: %+v", a)
	}
	if a.Wire == nil || a.Wire.KeepAliveEvictions != 9 {
		t.Errorf("wire counters wrong: %+v", a.Wire)
	}
	if a.ViewSize != 3 || a.HopMin != 1 || a.HopMax != 6 || a.HopMean != 3 {
		t.Errorf("view shape wrong: %+v", a)
	}
	if a.Latency == nil || a.Latency.Count != 11 {
		t.Errorf("latency histogram wrong: %+v", a.Latency)
	}
	if a.Stale {
		t.Error("fresh local source marked stale")
	}
	b := snaps[1]
	if b.Wire != nil {
		t.Errorf("bare node grew wire counters: %+v", b.Wire)
	}
	if b.Latency != nil {
		t.Errorf("bare node grew a latency histogram: %+v", b.Latency)
	}
	if b.ViewSize != 0 || b.HopMin != 0 || b.HopMax != 0 || b.HopMean != 0 {
		t.Errorf("empty view shape wrong: %+v", b)
	}
}

// flakyPoller answers until failAfter polls have happened, then errors —
// a fleet member dying mid-run.
type flakyPoller struct {
	polls     int
	failAfter int
	snap      NodeSnapshot
}

func (p *flakyPoller) Poll() (NodeSnapshot, error) {
	p.polls++
	if p.polls > p.failAfter {
		return NodeSnapshot{}, errors.New("connection refused")
	}
	return p.snap, nil
}

// A dead poller must not vanish from Snapshot: its last good snapshot is
// replayed marked Stale, with the original poll time preserved for the
// last-update gauge.
func TestCollectorServesStaleSnapshotForDeadPoller(t *testing.T) {
	c := New()
	times := []int64{1000, 2000, 3000}
	c.now = func() time.Time { ms := times[0]; times = times[1:]; return time.UnixMilli(ms) }
	c.RegisterPoller("member", &flakyPoller{
		failAfter: 1,
		snap:      NodeSnapshot{Addr: "10.0.0.1:7946", Cycles: 5, ViewSize: 3},
	})

	fresh := c.Snapshot()
	if len(fresh) != 1 || fresh[0].Stale || fresh[0].Node != "member" {
		t.Fatalf("fresh poll wrong: %+v", fresh)
	}
	if fresh[0].UnixMillis != 1000 || fresh[0].Cycles != 5 {
		t.Fatalf("fresh snapshot contents wrong: %+v", fresh[0])
	}

	for round := 0; round < 2; round++ {
		stale := c.Snapshot()
		if !stale[0].Stale {
			t.Fatalf("round %d: dead poller not marked stale: %+v", round, stale[0])
		}
		if stale[0].UnixMillis != 1000 {
			t.Errorf("round %d: last-update advanced on a dead source: %+v", round, stale[0])
		}
		if stale[0].Cycles != 5 || stale[0].Addr != "10.0.0.1:7946" {
			t.Errorf("round %d: cached contents lost: %+v", round, stale[0])
		}
	}
}

// A poller that never answered still appears, as a zero snapshot marked
// stale, and the exposition shows source_up 0 for it.
func TestCollectorExposesNeverReachedPoller(t *testing.T) {
	c := New()
	c.now = func() time.Time { return time.UnixMilli(1700000000000) }
	c.RegisterPoller("ghost", &flakyPoller{failAfter: 0})
	snaps := c.Snapshot()
	if len(snaps) != 1 || !snaps[0].Stale || snaps[0].UnixMillis != 0 {
		t.Fatalf("ghost snapshot wrong: %+v", snaps)
	}
	var buf bytes.Buffer
	if err := WritePrometheus(&buf, snaps); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `peersampling_source_up{node="ghost",addr=""} 0`) {
		t.Errorf("no source_up 0 sample for the ghost:\n%s", buf.String())
	}
}

// The collector's registered name wins over whatever Node name the
// remote process reported in its own snapshot.
func TestRegisterPollerNamesAndUniquifies(t *testing.T) {
	c := New()
	c.now = func() time.Time { return time.UnixMilli(1) }
	c.RegisterPoller("n", &flakyPoller{failAfter: 99, snap: NodeSnapshot{Node: "self-reported"}})
	c.RegisterPoller("", &flakyPoller{failAfter: 99})
	c.RegisterPoller("", &flakyPoller{failAfter: 99})
	snaps := c.Snapshot()
	if snaps[0].Node != "n" || snaps[1].Node != "remote" || snaps[2].Node != "remote#2" {
		t.Errorf("names = %q %q %q", snaps[0].Node, snaps[1].Node, snaps[2].Node)
	}
}

func TestRegisterUniquifiesNames(t *testing.T) {
	c := New()
	c.Register("n", &fakeSource{addr: "a"})
	c.Register("n", &fakeSource{addr: "b"})
	c.Register("", &fakeSource{addr: "c"})
	snaps := c.Snapshot()
	if snaps[0].Node != "n" || snaps[1].Node != "n#2" || snaps[2].Node != "c" {
		t.Errorf("names = %q %q %q", snaps[0].Node, snaps[1].Node, snaps[2].Node)
	}
	if c.Len() != 3 {
		t.Errorf("Len = %d", c.Len())
	}
}

// The exposition output is compared byte-for-byte against a golden file:
// the format is a contract with external scrapers, so accidental drift
// must be loud. Regenerate with -update-golden after intentional changes.
func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedCollector().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	const goldenPath = "testdata/exposition.golden"
	if *updateGolden {
		if err := os.WriteFile(goldenPath, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("exposition drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", buf.Bytes(), want)
	}
}

// Every transport counter must appear as its own family: the names come
// from transport.Stats.Named, so this holds by construction — the test
// pins the contract.
func TestPrometheusCoversAllWireCounters(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedCollector().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, c := range (transport.Stats{}).Named() {
		family := "peersampling_transport_" + c.Name + "_total"
		if !strings.Contains(out, "# TYPE "+family+" counter") {
			t.Errorf("family %s missing from exposition", family)
		}
	}
}

func TestLongCSVRoundTrip(t *testing.T) {
	snaps := fixedCollector().Snapshot()
	var rows []LongRow
	for _, s := range snaps {
		rows = append(rows, s.Rows()...)
	}
	doc := LongCSV("node", rows)
	key, parsed, err := ParseLongCSV(doc)
	if err != nil {
		t.Fatal(err)
	}
	if key != "node" {
		t.Errorf("key column = %q", key)
	}
	if len(parsed) != len(rows) {
		t.Fatalf("parsed %d rows want %d", len(parsed), len(rows))
	}
	for i, r := range rows {
		p := parsed[i]
		// Values survive modulo the %.6f rendering.
		if p.Key != r.Key || p.Cycle != r.Cycle || p.Metric != r.Metric ||
			p.Value < r.Value-1e-6 || p.Value > r.Value+1e-6 {
			t.Errorf("row %d: %+v != %+v", i, p, r)
		}
	}
	// One row per protocol counter, view gauge, wire counter, and the
	// two latency quantile columns.
	wantAlpha := 8 + len((transport.Stats{}).Named()) + 2
	alpha := 0
	for _, r := range parsed {
		if r.Key == "alpha" {
			alpha++
		}
	}
	if alpha != wantAlpha {
		t.Errorf("alpha rows = %d want %d", alpha, wantAlpha)
	}
}

func TestParseLongCSVRejectsGarbage(t *testing.T) {
	for _, doc := range []string{"", "a,b,c\n", "node,cycle,metric,value\nx,NaNcycle,m,1\n", "node,cycle,metric,value\nshort,row\n"} {
		if _, _, err := ParseLongCSV(doc); err == nil {
			t.Errorf("accepted %q", doc)
		}
	}
}

func TestFormatForPath(t *testing.T) {
	if FormatForPath("run.jsonl") != FormatJSONL || FormatForPath("RUN.NDJSON") != FormatJSONL {
		t.Error("jsonl extensions not detected")
	}
	if FormatForPath("run.csv") != FormatCSV || FormatForPath("dump") != FormatCSV {
		t.Error("csv default wrong")
	}
}

func TestDumperCSV(t *testing.T) {
	c := fixedCollector()
	var buf bytes.Buffer
	d := NewDumper(c, &buf, FormatCSV)
	if err := d.Dump(); err != nil {
		t.Fatal(err)
	}
	if err := d.Dump(); err != nil {
		t.Fatal(err)
	}
	doc := buf.String()
	if strings.Count(doc, "node,cycle,metric,value\n") != 1 {
		t.Errorf("header not written exactly once:\n%s", doc)
	}
	if _, rows, err := ParseLongCSV(doc); err != nil {
		t.Fatal(err)
	} else if len(rows) == 0 {
		t.Error("no rows dumped")
	}
}

func TestDumperJSONL(t *testing.T) {
	c := fixedCollector()
	var buf bytes.Buffer
	d := NewDumper(c, &buf, FormatJSONL)
	if err := d.Dump(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("%d JSONL lines want 2", len(lines))
	}
	var s NodeSnapshot
	if err := json.Unmarshal([]byte(lines[0]), &s); err != nil {
		t.Fatal(err)
	}
	if s.Node != "alpha" || s.Wire == nil || s.Wire.AcceptRejects != 8 {
		t.Errorf("decoded snapshot wrong: %+v", s)
	}
}

// A restarted daemon appends to its previous dump file; the header must
// not be repeated mid-file, and the whole multi-run document must still
// parse.
func TestFileDumperSurvivesRestart(t *testing.T) {
	c := fixedCollector()
	path := t.TempDir() + "/dump.csv"
	for run := 0; run < 2; run++ {
		d, err := NewFileDumper(c, path)
		if err != nil {
			t.Fatal(err)
		}
		if err := d.Dump(); err != nil {
			t.Fatal(err)
		}
		if err := d.Close(); err != nil {
			t.Fatal(err)
		}
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	doc := string(raw)
	if got := strings.Count(doc, "node,cycle,metric,value\n"); got != 1 {
		t.Errorf("header appears %d times after a restart, want 1:\n%s", got, doc)
	}
	if _, rows, err := ParseLongCSV(doc); err != nil {
		t.Fatalf("restarted dump file does not parse: %v", err)
	} else if len(rows) == 0 {
		t.Error("no rows")
	}

	if FormatForPath(path) != FormatCSV {
		t.Error("extension format wrong")
	}
	if _, err := NewFileDumper(c, t.TempDir()+"/missing/dir.csv"); err == nil {
		t.Error("unwritable path accepted")
	}
}

// Files written before the empty-file check existed may carry repeated
// headers; the parser tolerates them at append boundaries.
func TestParseLongCSVToleratesRepeatedHeader(t *testing.T) {
	doc := "node,cycle,metric,value\na,1,m,1.000000\nnode,cycle,metric,value\nb,2,m,2.000000\n"
	_, rows, err := ParseLongCSV(doc)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[1].Key != "b" {
		t.Errorf("rows = %+v", rows)
	}
}

// The dumper samples each node at most once per gossip cycle: rounds
// where the cycle counter has not advanced are suppressed, so
// (node,cycle,metric) stays unique like the simulator's one observation
// per cycle, and a finished cluster left registered on a shared
// collector stops generating rows instead of appending frozen lines
// every interval forever.
func TestDumperSamplesAtCycleGranularity(t *testing.T) {
	src := &fakeSource{addr: "a", cycles: 1}
	c := New()
	c.now = func() time.Time { return time.UnixMilli(1) }
	c.Register("a", src)

	var buf bytes.Buffer
	d := NewDumper(c, &buf, FormatCSV)
	if err := d.Dump(); err != nil {
		t.Fatal(err)
	}
	afterFirst := buf.Len()
	src.served = 7 // within-cycle movement only
	if err := d.Dump(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != afterFirst {
		t.Errorf("same-cycle re-observation appended rows:\n%s", buf.String())
	}
	src.cycles = 2 // the next cycle ran
	if err := d.Dump(); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == afterFirst {
		t.Error("advanced cycle appended nothing")
	}
	_, rows, err := ParseLongCSV(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	// Two emitted rounds' worth of rows, not three, and unique
	// (key,cycle,metric) tuples throughout.
	if want := 2 * len(NodeSnapshot{}.Rows()); len(rows) != want {
		t.Errorf("rows = %d want %d", len(rows), want)
	}
	seen := map[string]bool{}
	for _, r := range rows {
		k := fmt.Sprintf("%s|%d|%s", r.Key, r.Cycle, r.Metric)
		if seen[k] {
			t.Errorf("duplicate tuple %s", k)
		}
		seen[k] = true
	}
}

// A write failure must not mark the round as dumped: the retry (or the
// final Stop round) has to emit the lost observations.
func TestDumperRetriesAfterWriteFailure(t *testing.T) {
	c := fixedCollector()
	w := &flakyWriter{fails: 1}
	d := NewDumper(c, w, FormatCSV)
	if err := d.Dump(); err == nil {
		t.Fatal("failed write not reported")
	}
	if err := d.Dump(); err != nil {
		t.Fatal(err)
	}
	_, rows, err := ParseLongCSV(w.buf.String())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Error("observations lost after a transient write failure")
	}
}

// flakyWriter fails its first Write calls, then behaves.
type flakyWriter struct {
	fails int
	buf   bytes.Buffer
}

func (w *flakyWriter) Write(p []byte) (int, error) {
	if w.fails > 0 {
		w.fails--
		return 0, errors.New("disk full")
	}
	return w.buf.Write(p)
}

// Start must tolerate a non-positive interval (clamp, not ticker panic).
func TestDumperStartClampsInterval(t *testing.T) {
	d := NewDumper(fixedCollector(), &syncBuffer{}, FormatCSV)
	d.Start(0)
	if err := d.Stop(); err != nil {
		t.Fatal(err)
	}
}

func TestDumperStartStop(t *testing.T) {
	c := fixedCollector()
	var buf syncBuffer
	d := NewDumper(c, &buf, FormatCSV)
	d.Start(time.Millisecond)
	time.Sleep(20 * time.Millisecond)
	if err := d.Stop(); err != nil {
		t.Fatal(err)
	}
	_, rows, err := ParseLongCSV(buf.String())
	if err != nil {
		t.Fatal(err)
	}
	// At least the final round is always present; the ticker normally
	// lands several more.
	if len(rows) < 2 {
		t.Errorf("only %d rows after Start/Stop", len(rows))
	}
}

// syncBuffer is a bytes.Buffer safe for the dumper goroutine + test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}
