package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"
)

// Remote scrapes another process's snapshot endpoint — the fleet agent's
// GET /snapshot — and implements Poller, so a Collector in one process
// can observe psnode daemons running in others and serve their counters
// through the same /metrics exposition and long-form dumps as local
// nodes. A scrape failure is exactly the signal the collector's staleness
// cache wants: the member is dead or partitioned.
type Remote struct {
	url    string
	client *http.Client
}

// NewRemote returns a poller scraping the snapshot endpoint at url (e.g.
// "http://127.0.0.1:7100/snapshot"). Requests time out after two seconds
// — a control endpoint on the same network as the gossip traffic answers
// far faster or is effectively down.
func NewRemote(url string) *Remote {
	return &Remote{url: url, client: &http.Client{Timeout: 2 * time.Second}}
}

// URL returns the scraped endpoint.
func (r *Remote) URL() string { return r.url }

// Poll implements Poller: one GET, one decoded NodeSnapshot.
func (r *Remote) Poll() (NodeSnapshot, error) {
	resp, err := r.client.Get(r.url)
	if err != nil {
		return NodeSnapshot{}, fmt.Errorf("metrics: remote %s: %w", r.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Drain a bounded amount so the connection can be reused.
		_, _ = io.CopyN(io.Discard, resp.Body, 4096)
		return NodeSnapshot{}, fmt.Errorf("metrics: remote %s: status %d", r.url, resp.StatusCode)
	}
	var s NodeSnapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&s); err != nil {
		return NodeSnapshot{}, fmt.Errorf("metrics: remote %s: decode: %w", r.url, err)
	}
	return s, nil
}
