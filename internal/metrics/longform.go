package metrics

import (
	"fmt"
	"strconv"
	"strings"
)

// LongRow is one observation in long form: a series key (a protocol for
// simulator traces, a node name for live traces), the cycle it was taken
// at, a metric name and its value. Every long-form CSV in the repository
// — the scenario renderers' figure series and the live Dumper's output —
// is a header plus LongRows, which is what makes simulator runs and live
// runs directly comparable with the same external tooling.
type LongRow struct {
	Key    string
	Cycle  int
	Metric string
	Value  float64
}

// LongHeader returns the CSV header line for long-form rows whose key
// column carries the given name ("protocol" for simulator traces, "node"
// for live traces).
func LongHeader(keyColumn string) string {
	return keyColumn + ",cycle,metric,value\n"
}

// AppendLongRows writes rows in CSV form (no header) to b.
func AppendLongRows(b *strings.Builder, rows []LongRow) {
	for _, r := range rows {
		fmt.Fprintf(b, "%s,%d,%s,%.6f\n", r.Key, r.Cycle, r.Metric, r.Value)
	}
}

// LongCSV renders a complete long-form CSV document: LongHeader followed
// by one line per row.
func LongCSV(keyColumn string, rows []LongRow) string {
	var b strings.Builder
	b.WriteString(LongHeader(keyColumn))
	AppendLongRows(&b, rows)
	return b.String()
}

// ParseLongCSV parses a document produced by LongCSV (or by anything
// emitting the same schema), returning the key column's name and the
// rows. It is the round-trip counterpart used by tests to prove that
// live dumps and scenario renders share one schema.
func ParseLongCSV(doc string) (keyColumn string, rows []LongRow, err error) {
	lines := strings.Split(strings.TrimSuffix(doc, "\n"), "\n")
	if len(lines) == 0 || lines[0] == "" {
		return "", nil, fmt.Errorf("metrics: empty long-form CSV")
	}
	header := strings.Split(lines[0], ",")
	if len(header) != 4 || header[1] != "cycle" || header[2] != "metric" || header[3] != "value" {
		return "", nil, fmt.Errorf("metrics: not a long-form header: %q", lines[0])
	}
	keyColumn = header[0]
	rows = make([]LongRow, 0, len(lines)-1)
	for i, line := range lines[1:] {
		if line == lines[0] {
			// A repeated header marks an append boundary (e.g. a file
			// predating NewFileDumper's empty-file check); tolerate it.
			continue
		}
		// Keys may themselves contain commas — protocol tuples render as
		// "(rand,head,pushpull)" — so the three fixed columns are taken
		// from the right and whatever precedes them is the key.
		fields := strings.Split(line, ",")
		if len(fields) < 4 {
			return "", nil, fmt.Errorf("metrics: line %d: %d fields, want >= 4", i+2, len(fields))
		}
		cycle, err := strconv.Atoi(fields[len(fields)-3])
		if err != nil {
			return "", nil, fmt.Errorf("metrics: line %d: cycle: %w", i+2, err)
		}
		value, err := strconv.ParseFloat(fields[len(fields)-1], 64)
		if err != nil {
			return "", nil, fmt.Errorf("metrics: line %d: value: %w", i+2, err)
		}
		rows = append(rows, LongRow{
			Key:    strings.Join(fields[:len(fields)-3], ","),
			Cycle:  cycle,
			Metric: fields[len(fields)-2],
			Value:  value,
		})
	}
	return keyColumn, rows, nil
}
