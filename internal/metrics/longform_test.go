package metrics

import (
	"strings"
	"testing"
)

func TestParseLongCSVErrorPaths(t *testing.T) {
	cases := []struct {
		name    string
		doc     string
		wantErr string
	}{
		{"empty document", "", "empty long-form CSV"},
		{"blank first line", "\n", "empty long-form CSV"},
		{"three-column header", "node,cycle,value\n", "not a long-form header"},
		{"five-column header", "node,cycle,metric,value,extra\n", "not a long-form header"},
		{"drifted cycle column", "node,tick,metric,value\n", "not a long-form header"},
		{"drifted metric column", "node,cycle,series,value\n", "not a long-form header"},
		{"drifted value column", "node,cycle,metric,reading\n", "not a long-form header"},
		{"capitalised header", "node,Cycle,Metric,Value\n", "not a long-form header"},
		{"truncated row", "node,cycle,metric,value\nn0,3\n", "line 2: 2 fields, want >= 4"},
		{"single-field row", "node,cycle,metric,value\nn0,1,m,2\njunk\n", "line 3: 1 fields, want >= 4"},
		{"non-numeric cycle", "node,cycle,metric,value\nn0,three,m,1.0\n", "cycle"},
		{"float cycle", "node,cycle,metric,value\nn0,1.5,m,1.0\n", "cycle"},
		{"non-numeric value", "node,cycle,metric,value\nn0,1,m,high\n", "value"},
		{"empty value", "node,cycle,metric,value\nn0,1,m,\n", "value"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, err := ParseLongCSV(tc.doc)
			if err == nil {
				t.Fatalf("ParseLongCSV(%q) accepted, want error containing %q", tc.doc, tc.wantErr)
			}
			if !strings.Contains(err.Error(), tc.wantErr) {
				t.Fatalf("ParseLongCSV(%q) error = %q, want it to contain %q", tc.doc, err, tc.wantErr)
			}
		})
	}
}

func TestParseLongCSVCommaKeys(t *testing.T) {
	// Protocol-tuple keys contain commas; the fixed columns anchor right.
	doc := "protocol,cycle,metric,value\n(rand,head,pushpull),7,clustering,0.125000\n"
	key, rows, err := ParseLongCSV(doc)
	if err != nil {
		t.Fatal(err)
	}
	if key != "protocol" || len(rows) != 1 {
		t.Fatalf("key=%q rows=%d", key, len(rows))
	}
	r := rows[0]
	if r.Key != "(rand,head,pushpull)" || r.Cycle != 7 || r.Metric != "clustering" || r.Value != 0.125 {
		t.Fatalf("row = %+v", r)
	}
}

// FuzzParseLongCSV asserts the parser never panics, and that any document
// it accepts round-trips: re-rendering the parsed rows and re-parsing
// yields the same rows (modulo the renderer's fixed-precision values, so
// the invariant is checked on the re-rendered form, which must be a
// fixed point).
func FuzzParseLongCSV(f *testing.F) {
	f.Add("node,cycle,metric,value\nn0,1,infected,1.000000\n")
	f.Add("protocol,cycle,metric,value\n(rand,head,push),0,pathlen,2.5\n")
	f.Add("node,cycle,metric,value\nnode,cycle,metric,value\nn0,2,m,0.5\n")
	f.Add("node,cycle,metric,value\nn0,1\n")
	f.Add("")
	f.Fuzz(func(t *testing.T, doc string) {
		key, rows, err := ParseLongCSV(doc)
		if err != nil {
			return
		}
		rendered := LongCSV(key, rows)
		key2, rows2, err := ParseLongCSV(rendered)
		if err != nil {
			t.Fatalf("re-parse of rendered document failed: %v\nrendered: %q", err, rendered)
		}
		if key2 != key {
			t.Fatalf("key column drifted: %q -> %q", key, key2)
		}
		if LongCSV(key2, rows2) != rendered {
			t.Fatalf("render is not a fixed point:\nfirst:  %q\nsecond: %q", rendered, LongCSV(key2, rows2))
		}
	})
}
