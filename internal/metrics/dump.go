package metrics

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
	"sync"
	"time"

	"peersampling/internal/app"
)

// Format selects the on-disk shape of a Dumper's output.
type Format int

const (
	// FormatCSV appends long-form rows (node,cycle,metric,value), the
	// schema the internal/scenario renderers emit for the paper's figures.
	FormatCSV Format = iota
	// FormatJSONL appends one JSON object per NodeSnapshot per line.
	FormatJSONL
)

// FormatForPath picks the format implied by a dump file's extension:
// ".jsonl" (or ".ndjson") selects FormatJSONL, anything else FormatCSV.
func FormatForPath(path string) Format {
	lower := strings.ToLower(path)
	if strings.HasSuffix(lower, ".jsonl") || strings.HasSuffix(lower, ".ndjson") {
		return FormatJSONL
	}
	return FormatCSV
}

// Dumper appends periodic snapshot rounds of a Collector to a writer, in
// CSV or JSONL. Construct with NewDumper, then either call Dump for each
// round or Start a background ticker. Methods are safe for concurrent
// use; output rounds never interleave.
type Dumper struct {
	collector *Collector
	format    Format

	mu          sync.Mutex
	w           io.Writer
	wroteHeader bool
	closer      io.Closer               // set when the dumper owns its file
	last        map[string]NodeSnapshot // previous round, for change detection

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewDumper returns a dumper appending to w. The CSV header is written
// before the first round only, so a dump file can span a whole run.
func NewDumper(c *Collector, w io.Writer, format Format) *Dumper {
	return &Dumper{collector: c, format: format, w: w}
}

// NewFileDumper opens (or creates) path in append mode and returns a
// dumper whose format follows the file extension (see FormatForPath).
// The CSV header is written only when the file is empty, so a daemon
// restarted onto the same dump file keeps the document parseable instead
// of burying a second header mid-file. Close the dumper (after Stop) to
// close the file.
func NewFileDumper(c *Collector, path string) (*Dumper, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("metrics: dump file: %w", err)
	}
	d := NewDumper(c, f, FormatForPath(path))
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		d.wroteHeader = true
	}
	d.closer = f
	return d, nil
}

// Close closes the underlying dump file when the dumper owns one (it was
// built by NewFileDumper) and is a no-op otherwise. It does not stop a
// running ticker; call Stop first.
func (d *Dumper) Close() error {
	if d.closer == nil {
		return nil
	}
	return d.closer.Close()
}

// Dump appends one snapshot round, sampled at cycle granularity: a node
// is emitted only when its cycle counter has advanced since its last
// emitted snapshot (the first observation always lands). This keeps
// (node,cycle,metric) unique — matching the simulator's one observation
// per cycle, so value-by-cycle tooling never sees conflicting points —
// and makes a finished (closed) cluster left registered on the collector
// stop generating rows instead of appending frozen lines forever.
func (d *Dumper) Dump() error {
	all := d.collector.Snapshot()
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.last == nil {
		d.last = make(map[string]NodeSnapshot, len(all))
	}
	snaps := make([]NodeSnapshot, 0, len(all))
	for _, s := range all {
		// Gateway counters are compared too: a gateway source's cycle
		// column is its refresh count, which stands still between refresh
		// ticks even while requests are being served.
		// Workload counters are compared too: an engine's rounds advance on
		// its own ticker, independent of the node's gossip cycles.
		if prev, ok := d.last[s.Node]; ok && prev.Cycles == s.Cycles &&
			gatewayUnchanged(prev.Gateway, s.Gateway) && appUnchanged(prev.App, s.App) {
			continue
		}
		snaps = append(snaps, trimChaos(s, d.last[s.Node]))
	}

	var b strings.Builder
	switch d.format {
	case FormatJSONL:
		enc := json.NewEncoder(&b)
		for _, s := range snaps {
			if err := enc.Encode(s); err != nil {
				return fmt.Errorf("metrics: dump: %w", err)
			}
		}
	default:
		if !d.wroteHeader {
			b.WriteString(LongHeader("node"))
		}
		for _, s := range snaps {
			AppendLongRows(&b, s.Rows())
		}
	}
	if _, err := io.WriteString(d.w, b.String()); err != nil {
		return err
	}
	// Commit the round only after the write landed: a transient write
	// failure must not mark these observations as already dumped, or a
	// retry (or Stop's final round) would suppress them forever.
	d.wroteHeader = true
	for _, s := range snaps {
		d.last[s.Node] = s
	}
	return nil
}

// trimChaos drops the chaos events already emitted for this source in a
// previous round, so each applied step lands in the dump exactly once
// and (node,cycle,metric) stays unique. prev.Chaos.Events is cumulative,
// which makes it the high-water mark into the Fired timeline.
func trimChaos(s, prev NodeSnapshot) NodeSnapshot {
	if s.Chaos == nil || prev.Chaos == nil {
		return s
	}
	done := int(prev.Chaos.Events)
	if done <= 0 || done > len(s.Chaos.Fired) {
		return s
	}
	trimmed := *s.Chaos
	trimmed.Fired = trimmed.Fired[done:]
	s.Chaos = &trimmed
	return s
}

// appUnchanged compares two workload snapshots; app.Snapshot is all
// scalars, so plain equality is the whole comparison.
func appUnchanged(prev, cur *app.Snapshot) bool {
	if prev == nil || cur == nil {
		return prev == cur
	}
	return *prev == *cur
}

// gatewayUnchanged compares two gateway snapshots ignoring the cache
// age: age advances with the clock alone, and letting it count as change
// would emit an idle gateway's frozen counters every round forever.
func gatewayUnchanged(prev, cur *GatewaySnapshot) bool {
	if prev == nil || cur == nil {
		return prev == cur
	}
	a, b := *prev, *cur
	a.CacheAgeSeconds, b.CacheAgeSeconds = 0, 0
	// The latency snapshot is a fresh pointer every poll; comparing it
	// would defeat change detection. Latency only moves with Requests, so
	// dropping it from the comparison loses nothing.
	a.Latency, b.Latency = nil, nil
	return a == b
}

// Start dumps one round every interval on a background goroutine until
// Stop. A non-positive interval is clamped to one second rather than
// panicking the ticker. Write errors stop the loop; a broken dump file
// is not worth stalling a daemon over.
func (d *Dumper) Start(interval time.Duration) {
	if interval <= 0 {
		interval = time.Second
	}
	d.stop = make(chan struct{})
	d.done = make(chan struct{})
	go func() {
		defer close(d.done)
		ticker := time.NewTicker(interval)
		defer ticker.Stop()
		for {
			select {
			case <-d.stop:
				return
			case <-ticker.C:
				if err := d.Dump(); err != nil {
					return
				}
			}
		}
	}()
}

// Stop halts a Started dumper, appends one final round so short runs are
// never empty, and returns the final round's error. Stop on a dumper that
// was never Started just writes the final round.
func (d *Dumper) Stop() error {
	if d.stop != nil {
		d.stopOnce.Do(func() { close(d.stop) })
		<-d.done
	}
	return d.Dump()
}
