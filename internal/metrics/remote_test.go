package metrics

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"peersampling/internal/transport"
)

// Remote must decode the agent's JSON snapshot, and a collector over it
// must serve the scraped counters like any local source — including the
// staleness path once the agent dies.
func TestRemotePollAndCollectorIntegration(t *testing.T) {
	snap := NodeSnapshot{
		Node: "ignored", Addr: "10.1.2.3:7946", UnixMillis: 42,
		Cycles: 9, Exchanges: 8, ViewSize: 4,
		Latency: func() *transport.LatencySnapshot { l := fixedLatency(); return &l }(),
	}
	var down atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if down.Load() {
			http.Error(w, "gone", http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode(snap)
	}))
	defer ts.Close()

	r := NewRemote(ts.URL + "/snapshot")
	got, err := r.Poll()
	if err != nil {
		t.Fatal(err)
	}
	if got.Cycles != 9 || got.Addr != "10.1.2.3:7946" {
		t.Fatalf("polled snapshot wrong: %+v", got)
	}
	if got.Latency == nil || got.Latency.Count != 11 {
		t.Fatalf("latency histogram lost in transit: %+v", got.Latency)
	}

	c := New()
	c.now = func() time.Time { return time.UnixMilli(5000) }
	c.RegisterPoller("fleet00", r)
	snaps := c.Snapshot()
	if snaps[0].Node != "fleet00" || snaps[0].Stale || snaps[0].UnixMillis != 5000 {
		t.Fatalf("collector snapshot wrong: %+v", snaps[0])
	}

	down.Store(true)
	snaps = c.Snapshot()
	if !snaps[0].Stale || snaps[0].Cycles != 9 {
		t.Fatalf("dead agent not replayed stale: %+v", snaps[0])
	}
	if snaps[0].UnixMillis != 5000 {
		t.Errorf("last-update moved on a dead agent: %+v", snaps[0])
	}
}

func TestRemotePollErrors(t *testing.T) {
	if _, err := NewRemote("http://127.0.0.1:1/snapshot").Poll(); err == nil {
		t.Error("unreachable endpoint accepted")
	}
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte("not json"))
	}))
	defer ts.Close()
	if _, err := NewRemote(ts.URL).Poll(); err == nil || !strings.Contains(err.Error(), "decode") {
		t.Errorf("garbage body error = %v", err)
	}
}
