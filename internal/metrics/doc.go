// Package metrics is the observability subsystem for live peer sampling
// deployments: a dependency-free Collector that periodically snapshots
// registered nodes — protocol counters (cycles, exchanges, failures,
// served), every wire-level transport counter, the exchange-latency
// histogram, and view-shape gauges (size, min/mean/max hop age) — and
// exposes the snapshots two ways:
//
//   - Server publishes an HTTP /metrics endpoint in the Prometheus text
//     exposition format (hand-rolled writer, standard library only), the
//     continuous-scrape face of a long-running daemon; the response's
//     Last-Modified header carries the newest successful source poll;
//   - Dumper appends periodic long-form CSV (node,cycle,metric,value —
//     the same schema internal/scenario's renderers emit for the paper's
//     figures, so live traces and simulator traces are directly
//     comparable) or JSONL.
//
// Sources need not live in this process: Remote implements the Poller
// interface by scraping another node's fleet-agent /snapshot endpoint,
// and the Collector caches each source's last good snapshot so a member
// that dies is replayed marked Stale (peersampling_source_up 0, a frozen
// peersampling_source_last_update_seconds) instead of vanishing from the
// exposition — dead fleet members stay visible at scrape time.
//
// The paper's methodology is measurement: every figure is a time series
// of overlay properties sampled while the protocol runs. The simulator
// side has always produced those series; this package gives the runtime
// side (psnode, the live hostile/bootstrap scenarios) the same
// continuous instrumentation over real sockets.
package metrics
