// Package metrics is the observability subsystem for live peer sampling
// deployments: a dependency-free Collector that periodically snapshots
// registered nodes — protocol counters (cycles, exchanges, failures,
// served), every wire-level transport counter, and view-shape gauges
// (size, min/mean/max hop age) — and exposes the snapshots two ways:
//
//   - Server publishes an HTTP /metrics endpoint in the Prometheus text
//     exposition format (hand-rolled writer, standard library only), the
//     continuous-scrape face of a long-running daemon;
//   - Dumper appends periodic long-form CSV (node,cycle,metric,value —
//     the same schema internal/scenario's renderers emit for the paper's
//     figures, so live traces and simulator traces are directly
//     comparable) or JSONL.
//
// The paper's methodology is measurement: every figure is a time series
// of overlay properties sampled while the protocol runs. The simulator
// side has always produced those series; this package gives the runtime
// side (psnode, the live hostile/bootstrap scenarios) the same
// continuous instrumentation over real sockets.
package metrics
