package metrics

import (
	"fmt"
	"sync"
	"time"

	"peersampling/internal/core"
	"peersampling/internal/transport"
)

// Source is the Collector's read-only window onto one running node:
// exactly the observation surface *runtime.Node exposes. Implementations
// must be safe for concurrent use; the collector polls them from its own
// goroutines.
type Source interface {
	// Addr is the node's transport address.
	Addr() string
	// Stats reports lifetime protocol counters (see runtime.Node.Stats).
	Stats() (cycles, exchanges, failures, handled uint64)
	// TransportStats reports wire-level counters; ok is false when the
	// transport keeps none (e.g. the in-memory fabric).
	TransportStats() (stats transport.Stats, ok bool)
	// View returns a copy of the current partial view.
	View() []core.Descriptor[string]
}

// NodeSnapshot is one node's observable state at one instant: the shared
// row type behind every exporter (Prometheus exposition, CSV/JSONL dumps,
// the psnode report log).
type NodeSnapshot struct {
	// Node is the name the source was registered under (the Prometheus
	// "node" label and the CSV key column).
	Node string `json:"node"`
	// Addr is the node's transport address.
	Addr string `json:"addr"`
	// UnixMillis is the snapshot time.
	UnixMillis int64 `json:"unix_ms"`

	// Protocol counters, as reported by Source.Stats.
	Cycles    uint64 `json:"cycles"`
	Exchanges uint64 `json:"exchanges"`
	Failures  uint64 `json:"failures"`
	Served    uint64 `json:"served"`

	// Wire holds the transport's wire-level counters; nil when the
	// transport keeps none.
	Wire *transport.Stats `json:"wire,omitempty"`

	// View-shape gauges. The hop statistics are zero when the view is
	// empty.
	ViewSize int     `json:"view_size"`
	HopMin   int32   `json:"view_hop_min"`
	HopMax   int32   `json:"view_hop_max"`
	HopMean  float64 `json:"view_hop_mean"`
}

// Rows flattens the snapshot into long-form rows keyed by the node name,
// with the node's own cycle count as the cycle column — the live analogue
// of the simulator's per-cycle observations. Wire counters are enumerated
// through transport.Stats.Named, so a counter added there appears here
// without any change.
func (s NodeSnapshot) Rows() []LongRow {
	rows := []LongRow{
		{s.Node, int(s.Cycles), "cycles", float64(s.Cycles)},
		{s.Node, int(s.Cycles), "exchanges", float64(s.Exchanges)},
		{s.Node, int(s.Cycles), "failures", float64(s.Failures)},
		{s.Node, int(s.Cycles), "served", float64(s.Served)},
		{s.Node, int(s.Cycles), "view_size", float64(s.ViewSize)},
		{s.Node, int(s.Cycles), "view_hop_min", float64(s.HopMin)},
		{s.Node, int(s.Cycles), "view_hop_mean", s.HopMean},
		{s.Node, int(s.Cycles), "view_hop_max", float64(s.HopMax)},
	}
	if s.Wire != nil {
		for _, c := range s.Wire.Named() {
			rows = append(rows, LongRow{s.Node, int(s.Cycles), "wire_" + c.Name, float64(c.Value)})
		}
	}
	return rows
}

// Collector registers nodes and snapshots them on demand. The zero value
// is not usable; construct collectors with New. All methods are safe for
// concurrent use.
type Collector struct {
	mu      sync.Mutex
	sources []namedSource
	names   map[string]bool

	// now stubs time for deterministic tests.
	now func() time.Time
}

type namedSource struct {
	name string
	src  Source
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{names: map[string]bool{}, now: time.Now}
}

// Register adds a source under the given name. An empty name defaults to
// the source's address; a name already taken is uniquified with a "#n"
// suffix, so repeated live experiments can register fresh clusters under
// stable base names without bookkeeping.
func (c *Collector) Register(name string, src Source) {
	if name == "" {
		name = src.Addr()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	base := name
	for n := 2; c.names[name]; n++ {
		name = fmt.Sprintf("%s#%d", base, n)
	}
	c.names[name] = true
	c.sources = append(c.sources, namedSource{name: name, src: src})
}

// Len reports how many sources are registered.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sources)
}

// Snapshot polls every registered source and returns one NodeSnapshot per
// node, in registration order. Sources are polled outside the collector
// lock, so a slow node cannot block Register calls.
func (c *Collector) Snapshot() []NodeSnapshot {
	c.mu.Lock()
	sources := make([]namedSource, len(c.sources))
	copy(sources, c.sources)
	now := c.now
	c.mu.Unlock()

	snaps := make([]NodeSnapshot, len(sources))
	for i, ns := range sources {
		snaps[i] = snapshotOne(ns.name, ns.src, now().UnixMilli())
	}
	return snaps
}

func snapshotOne(name string, src Source, unixMillis int64) NodeSnapshot {
	s := NodeSnapshot{Node: name, Addr: src.Addr(), UnixMillis: unixMillis}
	s.Cycles, s.Exchanges, s.Failures, s.Served = src.Stats()
	if wire, ok := src.TransportStats(); ok {
		s.Wire = &wire
	}
	view := src.View()
	s.ViewSize = len(view)
	if len(view) > 0 {
		s.HopMin, s.HopMax = view[0].Hop, view[0].Hop
		sum := 0.0
		for _, d := range view {
			if d.Hop < s.HopMin {
				s.HopMin = d.Hop
			}
			if d.Hop > s.HopMax {
				s.HopMax = d.Hop
			}
			sum += float64(d.Hop)
		}
		s.HopMean = sum / float64(len(view))
	}
	return s
}
