package metrics

import (
	"fmt"
	"sync"
	"time"

	"peersampling/internal/app"
	"peersampling/internal/core"
	"peersampling/internal/transport"
)

// Source is the Collector's read-only window onto one running node:
// exactly the observation surface *runtime.Node exposes. Implementations
// must be safe for concurrent use; the collector polls them from its own
// goroutines.
type Source interface {
	// Addr is the node's transport address.
	Addr() string
	// Stats reports lifetime protocol counters (see runtime.Node.Stats).
	Stats() (cycles, exchanges, failures, handled uint64)
	// TransportStats reports wire-level counters; ok is false when the
	// transport keeps none (e.g. the in-memory fabric).
	TransportStats() (stats transport.Stats, ok bool)
	// View returns a copy of the current partial view.
	View() []core.Descriptor[string]
}

// LatencySource is an optional Source capability: sources that keep an
// exchange-latency histogram (runtime.Node does) get it exported as a
// Prometheus histogram family and p50/p99 long-form columns.
type LatencySource interface {
	ExchangeLatency() transport.LatencySnapshot
}

// AppSource is an optional Source capability: sources running a gossip
// workload engine (see internal/workload) report its counters alongside
// the node's, landing them on the same Prometheus exposition and
// long-form dumps. ok=false means no workload is attached.
type AppSource interface {
	AppSnapshot() (app.Snapshot, bool)
}

// Poller is the remote counterpart of Source: one call returns the whole
// snapshot, or an error when the node is unreachable. The collector
// caches each poller's last successful snapshot and serves it marked
// Stale on failure, so a dead fleet member stays visible at scrape time
// instead of silently vanishing from the exposition.
type Poller interface {
	Poll() (NodeSnapshot, error)
}

// NodeSnapshot is one node's observable state at one instant: the shared
// row type behind every exporter (Prometheus exposition, CSV/JSONL dumps,
// the psnode report log).
type NodeSnapshot struct {
	// Node is the name the source was registered under (the Prometheus
	// "node" label and the CSV key column).
	Node string `json:"node"`
	// Addr is the node's transport address.
	Addr string `json:"addr"`
	// UnixMillis is the snapshot time.
	UnixMillis int64 `json:"unix_ms"`

	// Protocol counters, as reported by Source.Stats.
	Cycles    uint64 `json:"cycles"`
	Exchanges uint64 `json:"exchanges"`
	Failures  uint64 `json:"failures"`
	Served    uint64 `json:"served"`

	// Wire holds the transport's wire-level counters; nil when the
	// transport keeps none.
	Wire *transport.Stats `json:"wire,omitempty"`

	// Latency is the exchange round-trip histogram; nil when the source
	// keeps none (see LatencySource).
	Latency *transport.LatencySnapshot `json:"latency,omitempty"`

	// Stale marks a snapshot replayed from the collector's cache because
	// the source failed its poll this round (a dead or partitioned fleet
	// member). UnixMillis then still carries the last successful poll
	// time, which is what the staleness gauges expose.
	Stale bool `json:"stale,omitempty"`

	// View-shape gauges. The hop statistics are zero when the view is
	// empty.
	ViewSize int     `json:"view_size"`
	HopMin   int32   `json:"view_hop_min"`
	HopMax   int32   `json:"view_hop_max"`
	HopMean  float64 `json:"view_hop_mean"`

	// Gateway holds the light-client sampling gateway's counters; nil for
	// ordinary node sources. A gateway source reports its refresh count as
	// Cycles, so the dumper's cycle-granularity sampling applies unchanged.
	Gateway *GatewaySnapshot `json:"gateway,omitempty"`

	// App holds the counters of the workload engine riding this node
	// (epidemic broadcast or push-pull averaging); nil when none is
	// attached. The snapshot travels through the fleet agent's /snapshot
	// JSON unchanged, so subprocess members report workloads exactly like
	// in-process ones.
	App *app.Snapshot `json:"app,omitempty"`

	// Chaos holds a fault-plan executor's state; nil for ordinary node
	// sources. A chaos source reports its fired-event count as Cycles, so
	// the dumper emits a round exactly when the plan advanced.
	Chaos *ChaosSnapshot `json:"chaos,omitempty"`
}

// ChaosSnapshot is a chaos executor's observable state: which plan is
// running, how far its timeline has advanced, and what it has done to the
// fleet so far (see internal/chaos).
type ChaosSnapshot struct {
	// Plan names the fault plan driving the fleet.
	Plan string `json:"plan"`
	// Events counts timeline steps applied so far (including derived
	// respawn and rule-expiry steps).
	Events uint64 `json:"events"`
	// ActiveRules is the number of fault rules currently installed on the
	// fleet's transports.
	ActiveRules int `json:"active_rules"`
	// Killed / Respawned count members removed and replaced by the plan.
	Killed    uint64 `json:"killed"`
	Respawned uint64 `json:"respawned"`
	// FloodDials counts connections the plan's flood events threw.
	FloodDials uint64 `json:"flood_dials"`
	// Fired is the applied timeline so far, oldest first.
	Fired []ChaosEvent `json:"fired,omitempty"`
}

// ChaosEvent is one applied fault-plan step.
type ChaosEvent struct {
	// Seq is the step's position in the compiled timeline (0-based).
	Seq int `json:"seq"`
	// Action is the step kind: kill, respawn, partition, heal, latency,
	// loss, flood, expire.
	Action string `json:"action"`
	// AtSeconds is the step's plan-time offset.
	AtSeconds float64 `json:"at_seconds"`
	// UnixMillis is when the step was applied on the wall clock.
	UnixMillis int64 `json:"unix_ms"`
	// Targets counts what the step touched: members killed or spawned,
	// rules installed or removed, flooder goroutines launched.
	Targets int `json:"targets"`
}

// GatewaySnapshot is the sampling gateway's observable state: request
// counters, rejection counters, and the health of the sample cache. The
// struct is comparable so exporters can cheaply detect change (the
// Latency pointer is excluded from such comparisons — it is freshly
// allocated per snapshot, and latency only moves when Requests does).
type GatewaySnapshot struct {
	// Requests counts /v1/sample requests accepted for serving.
	Requests uint64 `json:"requests"`
	// PeersServed counts peer addresses returned across all requests.
	PeersServed uint64 `json:"peers_served"`
	// RateLimited counts requests refused with 429 by the per-client
	// token buckets.
	RateLimited uint64 `json:"rate_limited"`
	// Unavailable counts requests refused with 503 (empty sample cache).
	Unavailable uint64 `json:"unavailable"`
	// Refreshes counts completed cache refresh rounds.
	Refreshes uint64 `json:"refreshes"`
	// Clients is the number of client buckets currently tracked.
	Clients int `json:"clients"`
	// CacheSize is the number of distinct peers in the current batch.
	CacheSize int `json:"cache_size"`
	// CacheAgeSeconds is how long ago the batch was refreshed.
	CacheAgeSeconds float64 `json:"cache_age_seconds"`
	// Latency is the serve-time histogram of successful sample requests;
	// nil when the gateway keeps none.
	Latency *transport.LatencySnapshot `json:"latency,omitempty"`
}

// Rows flattens the snapshot into long-form rows keyed by the node name,
// with the node's own cycle count as the cycle column — the live analogue
// of the simulator's per-cycle observations. Wire counters are enumerated
// through transport.Stats.Named, so a counter added there appears here
// without any change.
func (s NodeSnapshot) Rows() []LongRow {
	rows := []LongRow{
		{s.Node, int(s.Cycles), "cycles", float64(s.Cycles)},
		{s.Node, int(s.Cycles), "exchanges", float64(s.Exchanges)},
		{s.Node, int(s.Cycles), "failures", float64(s.Failures)},
		{s.Node, int(s.Cycles), "served", float64(s.Served)},
		{s.Node, int(s.Cycles), "view_size", float64(s.ViewSize)},
		{s.Node, int(s.Cycles), "view_hop_min", float64(s.HopMin)},
		{s.Node, int(s.Cycles), "view_hop_mean", s.HopMean},
		{s.Node, int(s.Cycles), "view_hop_max", float64(s.HopMax)},
	}
	if s.Wire != nil {
		for _, c := range s.Wire.Named() {
			rows = append(rows, LongRow{s.Node, int(s.Cycles), "wire_" + c.Name, float64(c.Value)})
		}
	}
	if s.Latency != nil {
		rows = append(rows,
			LongRow{s.Node, int(s.Cycles), "exchange_latency_p50", s.Latency.Quantile(0.50)},
			LongRow{s.Node, int(s.Cycles), "exchange_latency_p99", s.Latency.Quantile(0.99)},
		)
	}
	if a := s.App; a != nil {
		rows = append(rows,
			LongRow{s.Node, int(s.Cycles), "app_rounds", float64(a.Rounds)},
			LongRow{s.Node, int(s.Cycles), "app_sent", float64(a.Sent)},
			LongRow{s.Node, int(s.Cycles), "app_received", float64(a.Received)},
			LongRow{s.Node, int(s.Cycles), "app_failures", float64(a.Failures)},
			LongRow{s.Node, int(s.Cycles), "app_infected", a.Infected},
			LongRow{s.Node, int(s.Cycles), "app_value", a.Value},
		)
	}
	if g := s.Gateway; g != nil {
		rows = append(rows,
			LongRow{s.Node, int(s.Cycles), "gateway_requests", float64(g.Requests)},
			LongRow{s.Node, int(s.Cycles), "gateway_peers_served", float64(g.PeersServed)},
			LongRow{s.Node, int(s.Cycles), "gateway_rate_limited", float64(g.RateLimited)},
			LongRow{s.Node, int(s.Cycles), "gateway_unavailable", float64(g.Unavailable)},
			LongRow{s.Node, int(s.Cycles), "gateway_refreshes", float64(g.Refreshes)},
			LongRow{s.Node, int(s.Cycles), "gateway_clients", float64(g.Clients)},
			LongRow{s.Node, int(s.Cycles), "gateway_cache_size", float64(g.CacheSize)},
			LongRow{s.Node, int(s.Cycles), "gateway_cache_age_seconds", g.CacheAgeSeconds},
		)
		if g.Latency != nil {
			rows = append(rows,
				LongRow{s.Node, int(s.Cycles), "gateway_latency_p50", g.Latency.Quantile(0.50)},
				LongRow{s.Node, int(s.Cycles), "gateway_latency_p99", g.Latency.Quantile(0.99)},
			)
		}
	}
	if c := s.Chaos; c != nil {
		rows = append(rows,
			LongRow{s.Node, int(s.Cycles), "chaos_active_rules", float64(c.ActiveRules)},
			LongRow{s.Node, int(s.Cycles), "chaos_killed", float64(c.Killed)},
			LongRow{s.Node, int(s.Cycles), "chaos_respawned", float64(c.Respawned)},
			LongRow{s.Node, int(s.Cycles), "chaos_flood_dials", float64(c.FloodDials)},
		)
		// One chaos_event row per applied step, keyed by its timeline
		// position, valued by its wall-clock second — the join column
		// against the convergence trace's source_last_update times. The
		// dumper trims Fired to the steps applied since the previous round
		// (see dump.go), keeping (node,cycle,metric) unique in dump files.
		for _, e := range c.Fired {
			rows = append(rows,
				LongRow{s.Node, e.Seq, "chaos_event", float64(e.UnixMillis) / 1000},
				LongRow{s.Node, e.Seq, "chaos_event_" + e.Action, float64(e.Targets)},
			)
		}
	}
	return rows
}

// Collector registers nodes and snapshots them on demand. The zero value
// is not usable; construct collectors with New. All methods are safe for
// concurrent use.
type Collector struct {
	mu       sync.Mutex
	sources  []namedSource
	names    map[string]bool
	lastGood map[string]NodeSnapshot // last successful poll per source

	// now stubs time for deterministic tests.
	now func() time.Time
}

// namedSource is one registered observation target: a local Source
// wrapped into the common poll shape, or a remote Poller as-is.
type namedSource struct {
	name string
	poll func(unixMillis int64) (NodeSnapshot, error)
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{
		names:    map[string]bool{},
		lastGood: map[string]NodeSnapshot{},
		now:      time.Now,
	}
}

// Register adds a source under the given name. An empty name defaults to
// the source's address; a name already taken is uniquified with a "#n"
// suffix, so repeated live experiments can register fresh clusters under
// stable base names without bookkeeping.
func (c *Collector) Register(name string, src Source) {
	if name == "" {
		name = src.Addr()
	}
	c.add(name, func(unixMillis int64) (NodeSnapshot, error) {
		return snapshotOne("", src, unixMillis), nil
	})
}

// RegisterPoller adds a remote source (see Poller and Remote) under the
// given name; an empty name defaults to "remote". Poll failures serve the
// last successful snapshot marked Stale instead of dropping the node from
// the exposition.
func (c *Collector) RegisterPoller(name string, p Poller) {
	if name == "" {
		name = "remote"
	}
	c.add(name, func(unixMillis int64) (NodeSnapshot, error) {
		s, err := p.Poll()
		if err != nil {
			return NodeSnapshot{}, err
		}
		s.UnixMillis = unixMillis
		return s, nil
	})
}

// RegisterFunc adds a source whose whole snapshot is produced by fn —
// the hook for subsystems that are not sampling nodes but export through
// the same pipeline (the light-client gateway registers itself here).
// fn receives the poll time and must be safe for concurrent use; an
// empty name defaults to "source".
func (c *Collector) RegisterFunc(name string, fn func(unixMillis int64) NodeSnapshot) {
	if name == "" {
		name = "source"
	}
	c.add(name, func(unixMillis int64) (NodeSnapshot, error) {
		s := fn(unixMillis)
		s.UnixMillis = unixMillis
		return s, nil
	})
}

func (c *Collector) add(name string, poll func(int64) (NodeSnapshot, error)) {
	c.mu.Lock()
	defer c.mu.Unlock()
	base := name
	for n := 2; c.names[name]; n++ {
		name = fmt.Sprintf("%s#%d", base, n)
	}
	c.names[name] = true
	c.sources = append(c.sources, namedSource{name: name, poll: poll})
}

// Len reports how many sources are registered.
func (c *Collector) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sources)
}

// Snapshot polls every registered source and returns one NodeSnapshot per
// node, in registration order. Sources are polled outside the collector
// lock, so a slow node cannot block Register calls. A source whose poll
// fails (an unreachable fleet member) yields its last successful snapshot
// marked Stale — or a zero snapshot marked Stale if it never answered —
// so dead members stay visible to scrapers.
func (c *Collector) Snapshot() []NodeSnapshot {
	c.mu.Lock()
	sources := make([]namedSource, len(c.sources))
	copy(sources, c.sources)
	now := c.now
	c.mu.Unlock()

	// Sources are polled concurrently: a remote poller blocks for up to
	// its HTTP timeout when its member is slow or partitioned, and a
	// fleet accumulates dead members (livechurn registers a poller per
	// respawn) — one scrape must cost the slowest poll, not the sum.
	type polled struct {
		snap NodeSnapshot
		err  error
	}
	results := make([]polled, len(sources))
	var wg sync.WaitGroup
	for i, ns := range sources {
		wg.Add(1)
		go func(i int, ns namedSource) {
			defer wg.Done()
			results[i].snap, results[i].err = ns.poll(now().UnixMilli())
		}(i, ns)
	}
	wg.Wait()

	c.mu.Lock()
	defer c.mu.Unlock()
	snaps := make([]NodeSnapshot, len(sources))
	for i, ns := range sources {
		if results[i].err == nil {
			s := results[i].snap
			s.Node = ns.name
			c.lastGood[ns.name] = s
			snaps[i] = s
			continue
		}
		s, ok := c.lastGood[ns.name]
		if !ok {
			// Never answered: a zero snapshot keeps the node on the
			// exposition with source_up 0 and last-update 0.
			s = NodeSnapshot{Node: ns.name}
		}
		s.Stale = true
		snaps[i] = s
	}
	return snaps
}

// SnapshotSource observes one local source right now: the single-node
// form of Collector.Snapshot, used by the fleet agent to serve its
// snapshot endpoint and by the in-process cluster driver.
func SnapshotSource(name string, src Source) NodeSnapshot {
	return snapshotOne(name, src, time.Now().UnixMilli())
}

func snapshotOne(name string, src Source, unixMillis int64) NodeSnapshot {
	s := NodeSnapshot{Node: name, Addr: src.Addr(), UnixMillis: unixMillis}
	s.Cycles, s.Exchanges, s.Failures, s.Served = src.Stats()
	if wire, ok := src.TransportStats(); ok {
		s.Wire = &wire
	}
	if ls, ok := src.(LatencySource); ok {
		lat := ls.ExchangeLatency()
		s.Latency = &lat
	}
	if as, ok := src.(AppSource); ok {
		if snap, attached := as.AppSnapshot(); attached {
			s.App = &snap
		}
	}
	view := src.View()
	s.ViewSize = len(view)
	if len(view) > 0 {
		s.HopMin, s.HopMax = view[0].Hop, view[0].Hop
		sum := 0.0
		for _, d := range view {
			if d.Hop < s.HopMin {
				s.HopMin = d.Hop
			}
			if d.Hop > s.HopMax {
				s.HopMax = d.Hop
			}
			sum += float64(d.Hop)
		}
		s.HopMean = sum / float64(len(view))
	}
	return s
}
