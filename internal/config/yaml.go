package config

import (
	"fmt"
	"strconv"
	"strings"
)

// parseYAML parses the YAML subset this package speaks into nested
// map[string]any / []any / scalar values. Supported: mappings nested by
// indentation (spaces only), sequences as "- item" lines or inline
// [a, b] flows, sequence items that are themselves mappings
// ("- key: value" with continuation keys aligned beneath), double- and
// single-quoted strings, booleans, integers, floats, null, and "#"
// comments. Unsupported YAML (anchors, multi-line scalars, tabs, flow
// mappings) fails loudly with a line number instead of being half-read.
func parseYAML(data []byte) (map[string]any, error) {
	lines, err := splitYAMLLines(string(data))
	if err != nil {
		return nil, err
	}
	doc, next, err := parseBlock(lines, 0, 0)
	if err != nil {
		return nil, err
	}
	if next != len(lines) {
		return nil, fmt.Errorf("line %d: unexpected indentation", lines[next].num)
	}
	if doc == nil {
		return map[string]any{}, nil
	}
	m, ok := doc.(map[string]any)
	if !ok {
		return nil, fmt.Errorf("line %d: top level must be a mapping", lines[0].num)
	}
	return m, nil
}

// yamlLine is one content-bearing line: its 1-based source line number,
// indentation depth in spaces, and text with indentation and comments
// stripped.
type yamlLine struct {
	num    int
	indent int
	text   string
}

// splitYAMLLines strips comments and blank lines, measures indentation
// and rejects tabs (YAML forbids them in indentation, and accepting
// them silently misnests blocks).
func splitYAMLLines(doc string) ([]yamlLine, error) {
	var lines []yamlLine
	for i, raw := range strings.Split(doc, "\n") {
		text := stripComment(raw)
		trimmed := strings.TrimSpace(text)
		if trimmed == "" {
			continue
		}
		indent := 0
		for _, r := range text {
			if r == '\t' {
				return nil, fmt.Errorf("line %d: tab in indentation (use spaces)", i+1)
			}
			if r != ' ' {
				break
			}
			indent++
		}
		lines = append(lines, yamlLine{num: i + 1, indent: indent, text: trimmed})
	}
	return lines, nil
}

// stripComment removes a trailing "# ..." comment, honouring quotes so
// an address like "host#port" inside a string survives.
func stripComment(s string) string {
	inDouble, inSingle := false, false
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inDouble {
				i++ // skip the escaped character
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '#':
			if !inDouble && !inSingle && (i == 0 || s[i-1] == ' ' || s[i-1] == '\t') {
				return s[:i]
			}
		}
	}
	return s
}

// parseBlock parses the run of lines at exactly the given indentation,
// returning the parsed value and the index of the first line it did not
// consume. A block is either a mapping ("key: ..." lines) or a sequence
// ("- ..." lines); mixing the two at one level is an error.
func parseBlock(lines []yamlLine, start, indent int) (any, int, error) {
	if start >= len(lines) || lines[start].indent < indent {
		return nil, start, nil
	}
	if lines[start].indent > indent {
		return nil, start, fmt.Errorf("line %d: unexpected indentation", lines[start].num)
	}
	if strings.HasPrefix(lines[start].text, "- ") || lines[start].text == "-" {
		return parseSequence(lines, start, indent)
	}
	return parseMapping(lines, start, indent)
}

func parseSequence(lines []yamlLine, start, indent int) (any, int, error) {
	var seq []any
	i := start
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		if !strings.HasPrefix(ln.text, "- ") && ln.text != "-" {
			return nil, i, fmt.Errorf("line %d: expected a \"- \" sequence item", ln.num)
		}
		item := strings.TrimSpace(strings.TrimPrefix(ln.text, "-"))
		if item == "" {
			return nil, i, fmt.Errorf("line %d: empty sequence item (use \"- key: value\" for mapping items)", ln.num)
		}
		if isCompactMappingItem(item) {
			v, next, err := parseCompactMapping(lines, i, indent, item)
			if err != nil {
				return nil, i, err
			}
			seq = append(seq, v)
			i = next
			continue
		}
		v, err := parseScalar(item, ln.num)
		if err != nil {
			return nil, i, err
		}
		seq = append(seq, v)
		i++
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, i, fmt.Errorf("line %d: unexpected indentation", lines[i].num)
	}
	return seq, i, nil
}

// isCompactMappingItem reports whether a "- ..." item body opens a
// mapping ("- key: value" or "- key:") rather than a scalar. The YAML
// rule applies: a colon only separates key from value when followed by a
// space or end of line, so a bare scalar like "10.0.0.1:8080" stays a
// scalar. The key must also be a bare word, as everywhere else in the
// subset.
func isCompactMappingItem(item string) bool {
	idx := strings.Index(item, ":")
	if idx <= 0 {
		return false
	}
	if idx != len(item)-1 && item[idx+1] != ' ' {
		return false
	}
	key := strings.TrimSpace(item[:idx])
	return !strings.ContainsAny(key, " \"'[]{}")
}

// parseCompactMapping parses one "- key: value" sequence item: the
// item's first key rides on the "-" line, continuation keys sit on the
// following lines indented past the dash (conventionally aligned with
// the first key). Returns the mapping and the index of the first line
// after the item.
func parseCompactMapping(lines []yamlLine, start, indent int, item string) (any, int, error) {
	// The item body starts two columns past the dash ("- " is two wide).
	bodyIndent := indent + 2
	body := []yamlLine{{num: lines[start].num, indent: bodyIndent, text: item}}
	end := start + 1
	for end < len(lines) && lines[end].indent > indent {
		ln := lines[end]
		if ln.indent < bodyIndent {
			return nil, end, fmt.Errorf("line %d: sequence item continuation must align with the item's first key", ln.num)
		}
		body = append(body, ln)
		end++
	}
	v, consumed, err := parseBlock(body, 0, bodyIndent)
	if err != nil {
		return nil, start, err
	}
	if consumed != len(body) {
		return nil, start, fmt.Errorf("line %d: unexpected indentation", body[consumed].num)
	}
	return v, end, nil
}

func parseMapping(lines []yamlLine, start, indent int) (any, int, error) {
	m := map[string]any{}
	i := start
	for i < len(lines) && lines[i].indent == indent {
		ln := lines[i]
		key, rest, err := splitKey(ln)
		if err != nil {
			return nil, i, err
		}
		if _, dup := m[key]; dup {
			return nil, i, fmt.Errorf("line %d: duplicate key %q", ln.num, key)
		}
		if rest != "" {
			v, err := parseScalar(rest, ln.num)
			if err != nil {
				return nil, i, err
			}
			m[key] = v
			i++
			continue
		}
		// "key:" with nothing after it — a nested block (or null when the
		// next line does not indent deeper).
		i++
		if i < len(lines) && lines[i].indent > indent {
			v, next, err := parseBlock(lines, i, lines[i].indent)
			if err != nil {
				return nil, i, err
			}
			m[key] = v
			i = next
			continue
		}
		m[key] = nil
	}
	if i < len(lines) && lines[i].indent > indent {
		return nil, i, fmt.Errorf("line %d: unexpected indentation", lines[i].num)
	}
	return m, i, nil
}

// splitKey splits "key: value" (or "key:") into its parts. Keys are
// bare words; quoting keys is not part of the subset.
func splitKey(ln yamlLine) (key, rest string, err error) {
	idx := strings.Index(ln.text, ":")
	if idx <= 0 {
		return "", "", fmt.Errorf("line %d: expected \"key: value\"", ln.num)
	}
	key = strings.TrimSpace(ln.text[:idx])
	rest = strings.TrimSpace(ln.text[idx+1:])
	if strings.ContainsAny(key, " \"'[]{}") {
		return "", "", fmt.Errorf("line %d: malformed key %q", ln.num, key)
	}
	return key, rest, nil
}

// parseScalar turns one YAML scalar (or inline [a, b] flow sequence)
// into a Go value: bool, int64, float64, nil, string or []any.
func parseScalar(s string, line int) (any, error) {
	switch {
	case strings.HasPrefix(s, "["):
		return parseFlowSequence(s, line)
	case strings.HasPrefix(s, "{"):
		return nil, fmt.Errorf("line %d: flow mappings {…} are not supported", line)
	case strings.HasPrefix(s, `"`):
		unq, err := strconv.Unquote(s)
		if err != nil {
			return nil, fmt.Errorf("line %d: malformed quoted string %s", line, s)
		}
		return unq, nil
	case strings.HasPrefix(s, "'"):
		if len(s) < 2 || !strings.HasSuffix(s, "'") {
			return nil, fmt.Errorf("line %d: unterminated single-quoted string", line)
		}
		return strings.ReplaceAll(s[1:len(s)-1], "''", "'"), nil
	}
	switch s {
	case "true":
		return true, nil
	case "false":
		return false, nil
	case "null", "~":
		return nil, nil
	}
	if n, err := strconv.ParseInt(s, 10, 64); err == nil {
		return n, nil
	}
	if f, err := strconv.ParseFloat(s, 64); err == nil {
		return f, nil
	}
	return s, nil
}

// parseFlowSequence parses an inline [a, b, "c"] sequence of scalars.
func parseFlowSequence(s string, line int) (any, error) {
	if !strings.HasSuffix(s, "]") {
		return nil, fmt.Errorf("line %d: unterminated [ sequence", line)
	}
	inner := strings.TrimSpace(s[1 : len(s)-1])
	seq := []any{}
	if inner == "" {
		return seq, nil
	}
	for _, part := range splitFlowItems(inner) {
		part = strings.TrimSpace(part)
		if part == "" {
			return nil, fmt.Errorf("line %d: empty item in [ sequence", line)
		}
		v, err := parseScalar(part, line)
		if err != nil {
			return nil, err
		}
		seq = append(seq, v)
	}
	return seq, nil
}

// splitFlowItems splits a flow sequence body on commas outside quotes.
func splitFlowItems(s string) []string {
	var items []string
	depth := 0
	inDouble, inSingle := false, false
	begin := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if inDouble {
				i++
			}
		case '"':
			if !inSingle {
				inDouble = !inDouble
			}
		case '\'':
			if !inDouble {
				inSingle = !inSingle
			}
		case '[':
			if !inDouble && !inSingle {
				depth++
			}
		case ']':
			if !inDouble && !inSingle {
				depth--
			}
		case ',':
			if !inDouble && !inSingle && depth == 0 {
				items = append(items, s[begin:i])
				begin = i + 1
			}
		}
	}
	return append(items, s[begin:])
}
