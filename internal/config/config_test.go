package config

import (
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"
)

// TestLoadFileYAML loads a full YAML document and checks every section
// lands, including values that differ from the defaults.
func TestLoadFileYAML(t *testing.T) {
	doc := `
# psnode example configuration
version: 1
node:
  listen: 127.0.0.1:7946
  contacts: [127.0.0.1:7947, 127.0.0.1:7948]
  protocol: (rand,rand,push)
  view_size: 20
  period: 250ms
  diverse: true
transport:
  backend: udp
  max_conns: 256
  keepalive: 90s
metrics:
  addr: 127.0.0.1:9090
  dump: /tmp/psnode.jsonl
  report_interval: 2s
control:
  addr: 127.0.0.1:7070
  ready_file: /tmp/ready.json
gateway:
  addr: 127.0.0.1:8080
  batch_size: 128
  refresh: 500ms
  rate_rps: 2.5
  burst: 4
  trust_proxy_header: true
`
	cfg := loadDoc(t, "psnode.yaml", doc)
	if cfg.Node.Listen != "127.0.0.1:7946" {
		t.Errorf("listen = %q", cfg.Node.Listen)
	}
	if len(cfg.Node.Contacts) != 2 || cfg.Node.Contacts[1] != "127.0.0.1:7948" {
		t.Errorf("contacts = %v", cfg.Node.Contacts)
	}
	if cfg.Node.Protocol != "(rand,rand,push)" || cfg.Node.ViewSize != 20 {
		t.Errorf("protocol/view = %q/%d", cfg.Node.Protocol, cfg.Node.ViewSize)
	}
	if cfg.Node.Period != 250*time.Millisecond || !cfg.Node.Diverse {
		t.Errorf("period/diverse = %v/%v", cfg.Node.Period, cfg.Node.Diverse)
	}
	if cfg.Transport.Backend != "udp" || cfg.Transport.MaxConns != 256 || cfg.Transport.KeepAlive != 90*time.Second {
		t.Errorf("transport = %+v", cfg.Transport)
	}
	if cfg.Metrics.Addr != "127.0.0.1:9090" || cfg.Metrics.Dump != "/tmp/psnode.jsonl" || cfg.Metrics.ReportInterval != 2*time.Second {
		t.Errorf("metrics = %+v", cfg.Metrics)
	}
	if cfg.Control.Addr != "127.0.0.1:7070" || cfg.Control.ReadyFile != "/tmp/ready.json" {
		t.Errorf("control = %+v", cfg.Control)
	}
	if cfg.Gateway.Addr != "127.0.0.1:8080" || cfg.Gateway.BatchSize != 128 ||
		cfg.Gateway.Refresh != 500*time.Millisecond || cfg.Gateway.RateRPS != 2.5 ||
		cfg.Gateway.Burst != 4 || !cfg.Gateway.TrustProxyHeader {
		t.Errorf("gateway = %+v", cfg.Gateway)
	}
}

// TestLoadFileDefaulting checks that a minimal file keeps every default
// for the sections it does not mention.
func TestLoadFileDefaulting(t *testing.T) {
	cfg := loadDoc(t, "min.yaml", "node:\n  listen: 127.0.0.1:7946\n")
	def := Default()
	if cfg.Node.Protocol != def.Node.Protocol || cfg.Node.ViewSize != def.Node.ViewSize || cfg.Node.Period != def.Node.Period {
		t.Errorf("node defaults lost: %+v", cfg.Node)
	}
	if cfg.Transport.Backend != def.Transport.Backend {
		t.Errorf("backend default lost: %q", cfg.Transport.Backend)
	}
	if cfg.Metrics.ReportInterval != def.Metrics.ReportInterval {
		t.Errorf("report interval default lost: %v", cfg.Metrics.ReportInterval)
	}
	if cfg.GatewayEnabled() {
		t.Error("gateway enabled without an address")
	}
	if cfg.Gateway.BatchSize != def.Gateway.BatchSize {
		t.Errorf("gateway defaults lost: %+v", cfg.Gateway)
	}
}

// TestLoadRejections is the table of every rejected document: bad
// syntax, bad types, unknown fields, and each validation rule, with the
// field path the error must carry.
func TestLoadRejections(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error
	}{
		{"bad version", "version: 2\n", "version: config schema version 2"},
		{"version not a number", "version: next\n", "version: want an integer"},
		{"unknown top-level field", "nodes:\n  listen: 127.0.0.1:1\n", "nodes: unknown field"},
		{"unknown nested field", "node:\n  listn: 127.0.0.1:1\n", "node.listn: unknown field"},
		{"empty listen", "node:\n  listen: \"\"\n", "node.listen: must not be empty"},
		{"malformed listen", "node:\n  listen: 127.0.0.1\n", "node.listen: malformed address"},
		{"bad protocol", "node:\n  protocol: (rand,head)\n", "node.protocol:"},
		{"zero view size", "node:\n  view_size: 0\n", "node.view_size: must be positive"},
		{"negative view size", "node:\n  view_size: -3\n", "node.view_size: must be positive"},
		{"view size not integer", "node:\n  view_size: many\n", "node.view_size: want an integer"},
		{"zero period", "node:\n  period: 0s\n", "node.period: must be positive"},
		{"negative period", "node:\n  period: -1s\n", "node.period: must be positive"},
		{"bare number period", "node:\n  period: 5\n", "node.period: want a duration string"},
		{"malformed period", "node:\n  period: soon\n", "node.period: malformed duration"},
		{"empty contact", "node:\n  contacts: [\" \"]\n", "node.contacts[0]: empty contact"},
		{"contact not string", "node:\n  contacts: [42]\n", "node.contacts[0]: want a string"},
		{"bad backend", "transport:\n  backend: carrier-pigeon\n", `transport.backend: unknown backend "carrier-pigeon"`},
		{"negative keepalive", "transport:\n  keepalive: -1s\n", "transport.keepalive: must not be negative"},
		{"sub-ms keepalive", "transport:\n  keepalive: 10us\n", "transport.keepalive: 10µs is below the 1ms minimum"},
		{"push-only above keepalive", "transport:\n  keepalive: 10s\n  push_only_keepalive: 20s\n",
			"transport.push_only_keepalive: 20s exceeds"},
		{"malformed metrics addr", "metrics:\n  addr: localhost\n", "metrics.addr: malformed address"},
		{"zero report interval", "metrics:\n  report_interval: 0s\n", "metrics.report_interval: must be positive"},
		{"malformed control addr", "control:\n  addr: \"::1:x:\"\n", "control.addr: malformed address"},
		{"malformed gateway addr", "gateway:\n  addr: not-an-addr\n", "gateway.addr: malformed address"},
		{"zero gateway batch", "gateway:\n  addr: 127.0.0.1:8080\n  batch_size: 0\n", "gateway.batch_size: must be positive"},
		{"zero gateway refresh", "gateway:\n  addr: 127.0.0.1:8080\n  refresh: 0s\n", "gateway.refresh: must be positive"},
		{"zero gateway rate", "gateway:\n  addr: 127.0.0.1:8080\n  rate_rps: 0\n", "gateway.rate_rps: must be positive"},
		{"negative gateway burst", "gateway:\n  addr: 127.0.0.1:8080\n  burst: -1\n", "gateway.burst: must be positive"},
		{"section not a mapping", "node: 42\n", "node: want a mapping"},
		{"tab indentation", "node:\n\tlisten: 127.0.0.1:1\n", "tab in indentation"},
		{"duplicate key", "node:\n  listen: 127.0.0.1:1\n  listen: 127.0.0.1:2\n", "duplicate key"},
		{"string where bool", "node:\n  diverse: yes-please\n", "node.diverse: want true or false"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.doc), false)
			if err == nil {
				t.Fatalf("document accepted:\n%s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestLoadFileJSON checks the JSON path shares the decoder: same
// strictness, same field paths.
func TestLoadFileJSON(t *testing.T) {
	cfg := loadDoc(t, "psnode.json",
		`{"node": {"listen": "127.0.0.1:7946", "period": "100ms"}, "gateway": {"addr": "127.0.0.1:8080"}}`)
	if cfg.Node.Period != 100*time.Millisecond || cfg.Gateway.Addr != "127.0.0.1:8080" {
		t.Errorf("json config = %+v", cfg)
	}
	if _, err := Parse([]byte(`{"node": {"view_size": 0}}`), true); err == nil ||
		!strings.Contains(err.Error(), "node.view_size: must be positive") {
		t.Errorf("json validation error = %v", err)
	}
	if _, err := Parse([]byte(`{"node": {"listn": "x"}}`), true); err == nil ||
		!strings.Contains(err.Error(), "node.listn: unknown field") {
		t.Errorf("json unknown-field error = %v", err)
	}
}

// TestWriteFileRoundTrip checks the generated-file path the subprocess
// fleet driver uses: WriteFile output must load back identical.
func TestWriteFileRoundTrip(t *testing.T) {
	cfg := Default()
	cfg.Node.Listen = "127.0.0.1:7946"
	cfg.Node.Contacts = []string{"127.0.0.1:7947"}
	cfg.Node.Period = 20 * time.Millisecond
	cfg.Transport.Backend = "tcp"
	cfg.Transport.MaxConns = 99
	cfg.Transport.KeepAlive = 45 * time.Second
	cfg.Control.Addr = "127.0.0.1:0"
	cfg.Control.ReadyFile = "/tmp/ready.json"
	cfg.Gateway.Addr = "127.0.0.1:0"
	cfg.Gateway.RateRPS = 1.5

	path := filepath.Join(t.TempDir(), "gen.json")
	if err := WriteFile(path, cfg); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Node.Contacts) != 1 || back.Node.Contacts[0] != "127.0.0.1:7947" {
		t.Errorf("contacts = %v", back.Node.Contacts)
	}
	back.Node.Contacts, cfg.Node.Contacts = nil, nil // compared above
	if !reflect.DeepEqual(back, cfg) {
		t.Errorf("round trip drifted:\n got %+v\nwant %+v", back, cfg)
	}
}

// TestDiffClassification pins the hot-vs-restart contract: the exact
// classification internal/daemon relies on when applying SIGHUP.
func TestDiffClassification(t *testing.T) {
	base := Default()
	base.Gateway.Addr = "127.0.0.1:8080"

	hot := base
	hot.Transport.MaxConns = 17
	hot.Transport.KeepAlive = 30 * time.Second
	hot.Metrics.ReportInterval = 9 * time.Second
	hot.Gateway.RateRPS = 100
	hot.Gateway.Burst = 200
	hot.Gateway.TrustProxyHeader = true
	hot.Node.Contacts = []string{"127.0.0.1:7947"}
	d := Diff(base, hot)
	if len(d.Restart) != 0 {
		t.Errorf("hot-only change classified restart: %v", d.Restart)
	}
	wantHot := []string{"node.contacts", "transport.max_conns", "transport.keepalive",
		"metrics.report_interval", "gateway.rate_rps", "gateway.burst", "gateway.trust_proxy_header"}
	for _, path := range wantHot {
		if !contains(d.Hot, path) {
			t.Errorf("hot diff missing %s: %v", path, d.Hot)
		}
	}

	restart := base
	restart.Node.Listen = "127.0.0.1:7999"
	restart.Node.Protocol = "(tail,head,pull)"
	restart.Node.ViewSize = 11
	restart.Transport.Backend = "udp"
	restart.Metrics.Addr = "127.0.0.1:9999"
	restart.Gateway.Addr = "127.0.0.1:8888"
	d = Diff(base, restart)
	if len(d.Hot) != 0 {
		t.Errorf("restart-only change classified hot: %v", d.Hot)
	}
	for _, path := range []string{"node.listen", "node.protocol", "node.view_size",
		"transport.backend", "metrics.addr", "gateway.addr"} {
		if !contains(d.Restart, path) {
			t.Errorf("restart diff missing %s: %v", path, d.Restart)
		}
	}

	if d := Diff(base, base); !d.Empty() {
		t.Errorf("identical configs diff non-empty: %+v", d)
	}
}

// TestMergeHot checks the applied-config bookkeeping after a live
// reload: hot fields move, restart fields stay.
func TestMergeHot(t *testing.T) {
	old := Default()
	new := Default()
	new.Node.Listen = "127.0.0.1:7999" // restart-required: must not move
	new.Transport.MaxConns = 3         // hot: must move
	new.Metrics.ReportInterval = 42 * time.Second
	merged := MergeHot(old, new)
	if merged.Node.Listen != old.Node.Listen {
		t.Errorf("restart field leaked through MergeHot: %q", merged.Node.Listen)
	}
	if merged.Transport.MaxConns != 3 || merged.Metrics.ReportInterval != 42*time.Second {
		t.Errorf("hot fields not merged: %+v", merged)
	}
}

// TestFromFlagsOverlay checks flags only override when actually set.
func TestFromFlagsOverlay(t *testing.T) {
	fs := flag.NewFlagSet("psnode", flag.ContinueOnError)
	f := FromFlags(fs)
	if err := fs.Parse([]string{"-c", "50", "-contacts", "127.0.0.1:7947, 127.0.0.1:7948,", "-gateway-addr", "127.0.0.1:8080"}); err != nil {
		t.Fatal(err)
	}
	cfg := Default()
	cfg.Node.Listen = "127.0.0.1:7946" // from a config file
	cfg.Node.ViewSize = 20             // from a config file; flag must win
	f.Apply(&cfg)
	if cfg.Node.ViewSize != 50 {
		t.Errorf("set flag did not override: view size %d", cfg.Node.ViewSize)
	}
	if cfg.Node.Listen != "127.0.0.1:7946" {
		t.Errorf("unset flag overrode file value: listen %q", cfg.Node.Listen)
	}
	if len(cfg.Node.Contacts) != 2 || cfg.Node.Contacts[1] != "127.0.0.1:7948" {
		t.Errorf("contacts overlay = %v", cfg.Node.Contacts)
	}
	if cfg.Gateway.Addr != "127.0.0.1:8080" {
		t.Errorf("gateway addr overlay = %q", cfg.Gateway.Addr)
	}
	if err := cfg.Validate(); err != nil {
		t.Errorf("overlaid config invalid: %v", err)
	}
}

func loadDoc(t *testing.T, name, doc string) Config {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	cfg, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
