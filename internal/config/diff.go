package config

import "slices"

// ReloadDiff classifies the fields that changed between a running
// daemon's config and a freshly loaded one. Hot fields may be applied
// to the live daemon (internal/daemon does so on SIGHUP); Restart
// fields describe a different daemon and require a process restart to
// take effect.
type ReloadDiff struct {
	// Hot lists changed field paths the daemon can apply live.
	Hot []string
	// Restart lists changed field paths that need a restart.
	Restart []string
}

// Empty reports whether nothing changed.
func (d ReloadDiff) Empty() bool { return len(d.Hot) == 0 && len(d.Restart) == 0 }

// Diff compares two configs field by field. The hot set is exactly the
// fields the daemon knows how to apply without recreating the node or
// rebinding a listener: transport hardening limits, the report
// interval, gateway tuning, and added bootstrap contacts (Init merges
// them into the live view).
func Diff(old, new Config) ReloadDiff {
	var d ReloadDiff
	changed := func(path string, hot bool, differs bool) {
		if !differs {
			return
		}
		if hot {
			d.Hot = append(d.Hot, path)
		} else {
			d.Restart = append(d.Restart, path)
		}
	}

	changed("version", false, old.Version != new.Version)

	changed("node.listen", false, old.Node.Listen != new.Node.Listen)
	changed("node.contacts", true, !slices.Equal(old.Node.Contacts, new.Node.Contacts))
	changed("node.protocol", false, old.Node.Protocol != new.Node.Protocol)
	changed("node.view_size", false, old.Node.ViewSize != new.Node.ViewSize)
	changed("node.period", false, old.Node.Period != new.Node.Period)
	changed("node.diverse", false, old.Node.Diverse != new.Node.Diverse)

	changed("transport.backend", false, old.Transport.Backend != new.Transport.Backend)
	changed("transport.max_conns", true, old.Transport.MaxConns != new.Transport.MaxConns)
	changed("transport.keepalive", true, old.Transport.KeepAlive != new.Transport.KeepAlive)
	changed("transport.push_only_keepalive", true, old.Transport.PushOnlyKeepAlive != new.Transport.PushOnlyKeepAlive)
	changed("transport.first_frame_timeout", true, old.Transport.FirstFrameTimeout != new.Transport.FirstFrameTimeout)

	changed("metrics.addr", false, old.Metrics.Addr != new.Metrics.Addr)
	changed("metrics.dump", false, old.Metrics.Dump != new.Metrics.Dump)
	changed("metrics.report_interval", true, old.Metrics.ReportInterval != new.Metrics.ReportInterval)

	changed("control.addr", false, old.Control.Addr != new.Control.Addr)
	changed("control.ready_file", false, old.Control.ReadyFile != new.Control.ReadyFile)

	changed("gateway.addr", false, old.Gateway.Addr != new.Gateway.Addr)
	changed("gateway.batch_size", true, old.Gateway.BatchSize != new.Gateway.BatchSize)
	changed("gateway.refresh", true, old.Gateway.Refresh != new.Gateway.Refresh)
	changed("gateway.rate_rps", true, old.Gateway.RateRPS != new.Gateway.RateRPS)
	changed("gateway.burst", true, old.Gateway.Burst != new.Gateway.Burst)
	changed("gateway.trust_proxy_header", true, old.Gateway.TrustProxyHeader != new.Gateway.TrustProxyHeader)

	// The whole workload section is restart-only: changing any knob means
	// a different engine, and engine state (infection, running average)
	// cannot be migrated live.
	changed("workload.kind", false, old.Workload.Kind != new.Workload.Kind)
	changed("workload.period", false, old.Workload.Period != new.Workload.Period)
	changed("workload.fanout", false, old.Workload.Fanout != new.Workload.Fanout)
	changed("workload.mode", false, old.Workload.Mode != new.Workload.Mode)
	changed("workload.ttl", false, old.Workload.TTL != new.Workload.TTL)
	changed("workload.initial", false, old.Workload.Initial != new.Workload.Initial)

	return d
}

// MergeHot copies the hot-applicable fields of new onto old, returning
// the config a daemon actually runs after a live reload: hot fields
// from the new file, everything restart-required kept as-is. Keeping
// the merge here, next to Diff's classification, means the two can
// never disagree about which fields are hot.
func MergeHot(old, new Config) Config {
	merged := old
	merged.Node.Contacts = new.Node.Contacts
	merged.Transport.MaxConns = new.Transport.MaxConns
	merged.Transport.KeepAlive = new.Transport.KeepAlive
	merged.Transport.PushOnlyKeepAlive = new.Transport.PushOnlyKeepAlive
	merged.Transport.FirstFrameTimeout = new.Transport.FirstFrameTimeout
	merged.Metrics.ReportInterval = new.Metrics.ReportInterval
	merged.Gateway.BatchSize = new.Gateway.BatchSize
	merged.Gateway.Refresh = new.Gateway.Refresh
	merged.Gateway.RateRPS = new.Gateway.RateRPS
	merged.Gateway.Burst = new.Gateway.Burst
	merged.Gateway.TrustProxyHeader = new.Gateway.TrustProxyHeader
	return merged
}
