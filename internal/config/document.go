package config

import (
	"fmt"
	"path/filepath"
	"strings"
	"time"
)

// Exported access to the package's strict document machinery, so other
// layers (internal/chaos plan files) parse their own versioned documents
// with the same YAML-subset/JSON front end, dotted field-path errors and
// unknown-key rejection as the daemon config — one config dialect across
// the repo instead of a second hand-rolled parser per document kind.

// ParseDocument parses one document into the generic mapping shape the
// strict readers consume: the package's YAML subset by default, JSON when
// asJSON is set.
func ParseDocument(raw []byte, asJSON bool) (map[string]any, error) {
	if asJSON {
		return parseJSON(raw)
	}
	return parseYAML(raw)
}

// DocIsJSON reports whether a document path selects the JSON front end,
// matching LoadFile's extension rule.
func DocIsJSON(path string) bool {
	return strings.EqualFold(filepath.Ext(path), ".json")
}

// Document reads typed values out of one parsed mapping, strictly: every
// error carries the dotted field path, and Finish rejects any key no
// reader consumed. Obtain the root with NewDocument, nested mappings with
// Sub, and sequences of mappings with Seq.
type Document struct {
	s *section
}

// NewDocument wraps a parsed mapping (see ParseDocument) for strict
// reading. path prefixes every field path in errors; "" for the root.
func NewDocument(path string, m map[string]any) *Document {
	return &Document{s: newSection(path, m)}
}

// Str reads an optional string field.
func (d *Document) Str(name string, dst *string) error { return d.s.str(name, dst) }

// StrList reads an optional list-of-strings field (a bare string reads as
// a one-element list).
func (d *Document) StrList(name string, dst *[]string) error { return d.s.strList(name, dst) }

// Int reads an optional integer field.
func (d *Document) Int(name string, dst *int) error { return d.s.integer(name, dst) }

// Float reads an optional number field.
func (d *Document) Float(name string, dst *float64) error { return d.s.float(name, dst) }

// Bool reads an optional boolean field.
func (d *Document) Bool(name string, dst *bool) error { return d.s.boolean(name, dst) }

// Duration reads an optional Go duration string field ("250ms", "1m30s");
// bare numbers are rejected as ambiguous.
func (d *Document) Duration(name string, dst *time.Duration) error { return d.s.duration(name, dst) }

// Sub returns the nested mapping under name, or nil when the key is
// absent. A present non-mapping value surfaces as an error from the
// child's first read (or its Finish).
func (d *Document) Sub(name string) *Document {
	child := d.s.sub(name)
	if child == nil {
		return nil
	}
	return &Document{s: child}
}

// Seq returns the sequence of mappings under name, one Document per
// element ("name[i]" in error paths), or nil when the key is absent. A
// present value that is not a list of mappings is an error.
func (d *Document) Seq(name string) ([]*Document, error) {
	if d.s.typeErr != nil {
		return nil, d.s.typeErr
	}
	v, ok := d.s.take(name)
	if !ok {
		return nil, nil
	}
	seq, isSeq := v.([]any)
	if !isSeq {
		return nil, fmt.Errorf("%s: want a list of mappings, got %s", d.s.key(name), typeName(v))
	}
	docs := make([]*Document, len(seq))
	for i, item := range seq {
		m, isMap := item.(map[string]any)
		if !isMap {
			return nil, fmt.Errorf("%s[%d]: want a mapping, got %s", d.s.key(name), i, typeName(item))
		}
		child := newSection(fmt.Sprintf("%s[%d]", d.s.key(name), i), m)
		// Registered as a child so Finish sweeps the element's unknown
		// keys exactly like a named sub-section's.
		d.s.children = append(d.s.children, child)
		docs[i] = &Document{s: child}
	}
	return docs, nil
}

// Finish errors on any key in this document or anything reached through
// Sub/Seq that no reader consumed — call it once on the root after all
// fields are read.
func (d *Document) Finish() error { return d.s.finishAll() }
