package config

import (
	"reflect"
	"strings"
	"testing"
)

// TestParseYAMLSubset exercises the accepted grammar: nesting, the two
// sequence forms, scalar typing, quoting, and comments.
func TestParseYAMLSubset(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want map[string]any
	}{
		{"empty document", "\n# only a comment\n", map[string]any{}},
		{"flat scalars", "a: 1\nb: hi\nc: true\nd: 2.5\ne: null\nf: ~\n",
			map[string]any{"a": int64(1), "b": "hi", "c": true, "d": 2.5, "e": nil, "f": nil}},
		{"nested mapping", "outer:\n  inner:\n    leaf: 3\n",
			map[string]any{"outer": map[string]any{"inner": map[string]any{"leaf": int64(3)}}}},
		{"block sequence", "list:\n  - one\n  - two\n",
			map[string]any{"list": []any{"one", "two"}}},
		{"flow sequence", "list: [one, 2, true]\n",
			map[string]any{"list": []any{"one", int64(2), true}}},
		{"empty flow sequence", "list: []\n",
			map[string]any{"list": []any{}}},
		{"quoted scalars", `a: "x: y # not a comment"` + "\n" + `b: 'it''s'` + "\n",
			map[string]any{"a": "x: y # not a comment", "b": "it's"}},
		{"comments and blanks", "a: 1 # trailing\n\n# full line\nb: 2\n",
			map[string]any{"a": int64(1), "b": int64(2)}},
		{"empty value is null", "a:\nb: 1\n",
			map[string]any{"a": nil, "b": int64(1)}},
		{"address-like bare scalar", "addr: 127.0.0.1:8080\n",
			map[string]any{"addr": "127.0.0.1:8080"}},
		{"sequence of mappings", "events:\n  - at: 0s\n    action: kill\n  - at: 2s\n    action: heal\n",
			map[string]any{"events": []any{
				map[string]any{"at": "0s", "action": "kill"},
				map[string]any{"at": "2s", "action": "heal"},
			}}},
		{"mapping item with nested block", "rules:\n  - name: r1\n    link:\n      loss: 0.5\n    targets: [a, b]\n",
			map[string]any{"rules": []any{
				map[string]any{"name": "r1", "link": map[string]any{"loss": 0.5}, "targets": []any{"a", "b"}},
			}}},
		{"address-like sequence scalar", "peers:\n  - 10.0.0.1:8080\n",
			map[string]any{"peers": []any{"10.0.0.1:8080"}}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := parseYAML([]byte(tc.doc))
			if err != nil {
				t.Fatalf("parseYAML: %v", err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("got %#v\nwant %#v", got, tc.want)
			}
		})
	}
}

// TestParseYAMLErrors pins the rejection messages, each carrying the
// offending line number.
func TestParseYAMLErrors(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"tab indentation", "a:\n\tb: 1\n", "line 2: tab in indentation"},
		{"duplicate key", "a: 1\na: 2\n", "line 2: duplicate key \"a\""},
		{"missing colon", "just a value\n", "line 1"},
		{"unexpected indent", "a: 1\n    b: 2\n", "line 2: unexpected indentation"},
		{"mixed mapping and sequence", "a:\n  - one\n  key: 2\n", "line 3"},
		{"unterminated quote", "a: \"oops\n", "line 1"},
		{"unterminated flow", "a: [1, 2\n", "line 1"},
		{"misaligned item continuation", "a:\n  - k: 1\n   x: 2\n", "line 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := parseYAML([]byte(tc.doc))
			if err == nil {
				t.Fatalf("document accepted:\n%s", tc.doc)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}
