package config

import (
	"strings"
	"testing"
	"time"
)

// TestDocumentReadsTypedFields drives the exported strict reader over a
// YAML document mixing scalars, a sub-mapping and a sequence of
// mappings — the shape chaos plans use.
func TestDocumentReadsTypedFields(t *testing.T) {
	raw := []byte(`
version: 1
name: demo
ratio: 0.25
strict: true
period: 250ms
meta:
  owner: ops
events:
  - at: 0s
    action: kill
  - at: 2s
    action: heal
`)
	m, err := ParseDocument(raw, false)
	if err != nil {
		t.Fatalf("ParseDocument: %v", err)
	}
	doc := NewDocument("", m)

	var version int
	var name string
	var ratio float64
	var strict bool
	var period time.Duration
	if err := doc.Int("version", &version); err != nil {
		t.Fatal(err)
	}
	if err := doc.Str("name", &name); err != nil {
		t.Fatal(err)
	}
	if err := doc.Float("ratio", &ratio); err != nil {
		t.Fatal(err)
	}
	if err := doc.Bool("strict", &strict); err != nil {
		t.Fatal(err)
	}
	if err := doc.Duration("period", &period); err != nil {
		t.Fatal(err)
	}
	if version != 1 || name != "demo" || ratio != 0.25 || !strict || period != 250*time.Millisecond {
		t.Fatalf("scalars: version=%d name=%q ratio=%v strict=%v period=%v", version, name, ratio, strict, period)
	}

	meta := doc.Sub("meta")
	if meta == nil {
		t.Fatal("Sub(meta) = nil")
	}
	var owner string
	if err := meta.Str("owner", &owner); err != nil || owner != "ops" {
		t.Fatalf("meta.owner = %q, %v", owner, err)
	}

	events, err := doc.Seq("events")
	if err != nil {
		t.Fatalf("Seq: %v", err)
	}
	if len(events) != 2 {
		t.Fatalf("len(events) = %d, want 2", len(events))
	}
	var at time.Duration
	var action string
	if err := events[1].Duration("at", &at); err != nil {
		t.Fatal(err)
	}
	if err := events[1].Str("action", &action); err != nil {
		t.Fatal(err)
	}
	if at != 2*time.Second || action != "heal" {
		t.Fatalf("events[1] = %v %q", at, action)
	}
	if err := events[0].Str("action", &action); err != nil {
		t.Fatal(err)
	}
	var zero time.Duration
	if err := events[0].Duration("at", &zero); err != nil {
		t.Fatal(err)
	}

	if err := doc.Finish(); err != nil {
		t.Fatalf("Finish: %v", err)
	}
}

// TestDocumentFinishSweepsSequenceElements: an unread key inside a
// sequence element is rejected with its "name[i]" path, exactly like an
// unknown key in a named sub-section.
func TestDocumentFinishSweepsSequenceElements(t *testing.T) {
	m, err := ParseDocument([]byte("events:\n  - action: kill\n    bogus: 1\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	doc := NewDocument("", m)
	events, err := doc.Seq("events")
	if err != nil {
		t.Fatal(err)
	}
	var action string
	if err := events[0].Str("action", &action); err != nil {
		t.Fatal(err)
	}
	err = doc.Finish()
	if err == nil {
		t.Fatal("Finish accepted an unread sequence-element key")
	}
	if !strings.Contains(err.Error(), "events[0]") || !strings.Contains(err.Error(), "bogus") {
		t.Fatalf("error %q does not name events[0].bogus", err)
	}
}

// TestDocumentSeqTypeErrors: present-but-wrong-shape values surface as
// typed path errors, not panics.
func TestDocumentSeqTypeErrors(t *testing.T) {
	m, err := ParseDocument([]byte("events: 3\nlist:\n  - plain\n"), false)
	if err != nil {
		t.Fatal(err)
	}
	doc := NewDocument("", m)
	if _, err := doc.Seq("events"); err == nil || !strings.Contains(err.Error(), "events") {
		t.Fatalf("Seq on scalar: %v", err)
	}
	if _, err := doc.Seq("list"); err == nil || !strings.Contains(err.Error(), "list[0]") {
		t.Fatalf("Seq on scalar list: %v", err)
	}
	if doc.Sub("absent") != nil {
		t.Fatal("Sub(absent) should be nil")
	}
	if seq, err := doc.Seq("absent"); err != nil || seq != nil {
		t.Fatalf("Seq(absent) = %v, %v", seq, err)
	}
}

// TestDocumentParsesJSON: the same reader works over the JSON front end
// selected by DocIsJSON.
func TestDocumentParsesJSON(t *testing.T) {
	if !DocIsJSON("plan.JSON") || DocIsJSON("plan.yaml") {
		t.Fatal("DocIsJSON extension rule broken")
	}
	m, err := ParseDocument([]byte(`{"name": "j", "events": [{"at": "1s"}]}`), true)
	if err != nil {
		t.Fatal(err)
	}
	doc := NewDocument("", m)
	var name string
	if err := doc.Str("name", &name); err != nil || name != "j" {
		t.Fatalf("name = %q, %v", name, err)
	}
	events, err := doc.Seq("events")
	if err != nil || len(events) != 1 {
		t.Fatalf("events: %v, %v", events, err)
	}
	var at time.Duration
	if err := events[0].Duration("at", &at); err != nil || at != time.Second {
		t.Fatalf("at = %v, %v", at, err)
	}
	if err := doc.Finish(); err != nil {
		t.Fatal(err)
	}
}
