package config

import (
	"fmt"
	"net"
	"strings"
	"time"

	"peersampling/internal/core"
	"peersampling/internal/transport"
)

// Version is the config schema version this build speaks. A document
// declaring a different version is rejected outright: silently reading
// a future schema risks running a daemon on half-understood intent.
const Version = 1

// Config is the deployable daemon's whole configuration: everything
// cmd/psnode used to take as flags, grouped by subsystem. The zero
// value is not runnable; start from Default (what LoadFile does) so
// every unset field carries its documented default.
type Config struct {
	// Version is the config schema version; Default sets it to Version.
	Version int

	// Node parameterises the sampling node itself.
	Node NodeSection
	// Transport selects and hardens the wire backend.
	Transport TransportSection
	// Metrics configures the observability plugins.
	Metrics MetricsSection
	// Control configures the fleet control agent and ready file.
	Control ControlSection
	// Gateway configures the light-client sampling API.
	Gateway GatewaySection
	// Workload runs a gossip application engine on top of the node's
	// sampling service.
	Workload WorkloadSection
}

// NodeSection configures the protocol instance (config keys under
// "node:").
type NodeSection struct {
	// Listen is the gossip listen address; it doubles as the node's
	// identity, so bind an address peers can reach.
	Listen string
	// Contacts are the bootstrap addresses handed to Init.
	Contacts []string
	// Protocol is the paper's tuple notation, e.g. "(rand,head,pushpull)".
	Protocol string
	// ViewSize is the partial view capacity c.
	ViewSize int
	// Period is the gossip cycle length T.
	Period time.Duration
	// Diverse selects the diversity-maximising GetPeer refinement.
	Diverse bool
}

// TransportSection selects the wire backend and its hardening limits
// (config keys under "transport:").
type TransportSection struct {
	// Backend names the registered transport ("tcp", "tcp-pooled", "udp").
	Backend string
	// MaxConns caps concurrently served connections (0 = library
	// default, negative = unlimited). Hot-reloadable.
	MaxConns int
	// KeepAlive is the read budget for served connections that pull
	// (0 = library default). Hot-reloadable.
	KeepAlive time.Duration
	// PushOnlyKeepAlive is the shrunken budget for push-only peers
	// (0 derives 3/4 of KeepAlive). Hot-reloadable.
	PushOnlyKeepAlive time.Duration
	// FirstFrameTimeout is the slowloris window before a connection's
	// opening frame (0 = library default). Hot-reloadable.
	FirstFrameTimeout time.Duration
}

// Limits converts the section into the transport layer's Limits shape.
func (t TransportSection) Limits() transport.Limits {
	return transport.Limits{
		MaxConns:          t.MaxConns,
		KeepAlive:         t.KeepAlive,
		PushOnlyKeepAlive: t.PushOnlyKeepAlive,
		FirstFrameTimeout: t.FirstFrameTimeout,
	}
}

// MetricsSection configures the observability plugins (config keys
// under "metrics:").
type MetricsSection struct {
	// Addr serves Prometheus text-format metrics on GET /metrics when
	// non-empty.
	Addr string
	// Dump appends periodic snapshots to this file when non-empty
	// (.jsonl selects JSONL, anything else long-form CSV).
	Dump string
	// ReportInterval paces the dump rounds and the periodic report log.
	// Hot-reloadable.
	ReportInterval time.Duration
}

// ControlSection configures the fleet control surface (config keys
// under "control:").
type ControlSection struct {
	// Addr serves the fleet agent (GET /healthz, /snapshot, /view; POST
	// /stop) when non-empty.
	Addr string
	// ReadyFile, when non-empty, is atomically written with the
	// daemon's bound addresses once every subsystem is up.
	ReadyFile string
}

// GatewaySection configures the light-client sampling API (config keys
// under "gateway:"). The gateway is enabled when Addr is non-empty.
type GatewaySection struct {
	// Addr serves GET /v1/sample and GET /healthz when non-empty.
	Addr string
	// BatchSize is how many distinct peers the sample cache targets per
	// refresh. Hot-reloadable.
	BatchSize int
	// Refresh is the cache refresh interval. Hot-reloadable.
	Refresh time.Duration
	// RateRPS is the per-client token refill rate (requests/second).
	// Hot-reloadable.
	RateRPS float64
	// Burst is the per-client token bucket capacity. Hot-reloadable.
	Burst int
	// TrustProxyHeader rate-limits by the first X-Forwarded-For address
	// instead of the socket address. Enable only behind a trusted reverse
	// proxy (or for load harnesses emulating distinct clients) — the
	// header is client-controlled. Hot-reloadable.
	TrustProxyHeader bool
}

// Workload kinds accepted by WorkloadSection.Kind.
const (
	WorkloadBroadcast = "broadcast"
	WorkloadAggregate = "aggregate"
)

// WorkloadSection configures the gossip application engine riding the
// node (config keys under "workload:"). The workload is enabled when
// Kind is non-empty; its counters flow through the metrics pipeline
// alongside the node's own.
type WorkloadSection struct {
	// Kind selects the engine: "broadcast" (epidemic dissemination) or
	// "aggregate" (push-pull averaging). Empty disables the workload.
	Kind string
	// Period is the engine's round length; zero inherits node.period.
	Period time.Duration
	// Fanout is how many peers the broadcast engine pushes to per round.
	Fanout int
	// Mode selects the broadcast variant: "infect-forever" or
	// "infect-and-die".
	Mode string
	// TTL is how many rounds an infect-and-die node gossips after
	// infection.
	TTL int
	// Initial is the aggregate engine's starting value.
	Initial float64
}

// Default returns the runnable baseline configuration: a loopback
// tcp-pooled node with the paper's canonical protocol and no optional
// plugins enabled. LoadFile and flag overlays start from this, so a
// config file only needs the fields it changes.
func Default() Config {
	return Config{
		Version: Version,
		Node: NodeSection{
			Listen:   "127.0.0.1:0",
			Protocol: "(rand,head,pushpull)",
			ViewSize: 30,
			Period:   time.Second,
		},
		Transport: TransportSection{
			Backend: "tcp-pooled",
		},
		Metrics: MetricsSection{
			ReportInterval: 5 * time.Second,
		},
		Gateway: GatewaySection{
			BatchSize: 64,
			Refresh:   time.Second,
			RateRPS:   5,
			Burst:     10,
		},
		Workload: WorkloadSection{
			Fanout: 2,
			Mode:   "infect-forever",
			TTL:    3,
		},
	}
}

// Protocol parses the configured protocol tuple. Validate guarantees it
// parses, so callers after validation may ignore the error.
func (c Config) Protocol() (core.Protocol, error) {
	return core.ParseProtocol(c.Node.Protocol)
}

// GatewayEnabled reports whether the config asks for the sampling
// gateway.
func (c Config) GatewayEnabled() bool { return c.Gateway.Addr != "" }

// WorkloadEnabled reports whether the config asks for a gossip workload
// engine.
func (c Config) WorkloadEnabled() bool { return c.Workload.Kind != "" }

// Validate checks every field and returns the first violation as a
// field-path error ("node.view_size: must be positive"). A validated
// Default()-based config always passes.
func (c Config) Validate() error {
	if c.Version != Version {
		return fmt.Errorf("version: config schema version %d is not supported (this build speaks version %d)", c.Version, Version)
	}
	if err := validateHostPort("node.listen", c.Node.Listen, true); err != nil {
		return err
	}
	for i, contact := range c.Node.Contacts {
		if strings.TrimSpace(contact) == "" {
			return fmt.Errorf("node.contacts[%d]: empty contact address", i)
		}
	}
	if _, err := core.ParseProtocol(c.Node.Protocol); err != nil {
		return fmt.Errorf("node.protocol: %w", err)
	}
	if c.Node.ViewSize <= 0 {
		return fmt.Errorf("node.view_size: must be positive, got %d", c.Node.ViewSize)
	}
	if c.Node.Period <= 0 {
		return fmt.Errorf("node.period: must be positive, got %v", c.Node.Period)
	}
	if !backendKnown(c.Transport.Backend) {
		return fmt.Errorf("transport.backend: unknown backend %q (available: %v)", c.Transport.Backend, transport.Backends())
	}
	if err := validateLimits(c.Transport); err != nil {
		return err
	}
	if err := validateHostPort("metrics.addr", c.Metrics.Addr, false); err != nil {
		return err
	}
	if c.Metrics.ReportInterval <= 0 {
		return fmt.Errorf("metrics.report_interval: must be positive, got %v", c.Metrics.ReportInterval)
	}
	if err := validateHostPort("control.addr", c.Control.Addr, false); err != nil {
		return err
	}
	if err := validateHostPort("gateway.addr", c.Gateway.Addr, false); err != nil {
		return err
	}
	if c.GatewayEnabled() {
		if c.Gateway.BatchSize <= 0 {
			return fmt.Errorf("gateway.batch_size: must be positive, got %d", c.Gateway.BatchSize)
		}
		if c.Gateway.Refresh <= 0 {
			return fmt.Errorf("gateway.refresh: must be positive, got %v", c.Gateway.Refresh)
		}
		if c.Gateway.RateRPS <= 0 {
			return fmt.Errorf("gateway.rate_rps: must be positive, got %v", c.Gateway.RateRPS)
		}
		if c.Gateway.Burst <= 0 {
			return fmt.Errorf("gateway.burst: must be positive, got %d", c.Gateway.Burst)
		}
	}
	if err := validateWorkload(c.Workload); err != nil {
		return err
	}
	return nil
}

// validateWorkload checks the workload section; a disabled workload
// (empty kind) passes regardless of the other fields, so a template with
// tuned knobs can flip the engine on and off with one key. The mode
// names mirror broadcast.ParseMode — kept literal here so the config
// schema does not depend on the workload packages.
func validateWorkload(w WorkloadSection) error {
	switch w.Kind {
	case "":
		return nil
	case WorkloadBroadcast:
		if w.Fanout <= 0 {
			return fmt.Errorf("workload.fanout: must be positive, got %d", w.Fanout)
		}
		switch w.Mode {
		case "infect-forever":
		case "infect-and-die":
			if w.TTL <= 0 {
				return fmt.Errorf("workload.ttl: infect-and-die needs TTL > 0, got %d", w.TTL)
			}
		default:
			return fmt.Errorf("workload.mode: unknown mode %q (want \"infect-forever\" or \"infect-and-die\")", w.Mode)
		}
	case WorkloadAggregate:
		// Any initial value is legal, including zero.
	default:
		return fmt.Errorf("workload.kind: unknown workload %q (want %q or %q)", w.Kind, WorkloadBroadcast, WorkloadAggregate)
	}
	if w.Period < 0 {
		return fmt.Errorf("workload.period: must not be negative, got %v", w.Period)
	}
	return nil
}

// validateLimits mirrors the transport layer's Limits rules so a config
// rejects at load time with a field path, not at listen time with a
// transport error.
func validateLimits(t TransportSection) error {
	switch {
	case t.KeepAlive < 0:
		return fmt.Errorf("transport.keepalive: must not be negative, got %v", t.KeepAlive)
	case t.KeepAlive > 0 && t.KeepAlive < time.Millisecond:
		return fmt.Errorf("transport.keepalive: %v is below the 1ms minimum", t.KeepAlive)
	case t.PushOnlyKeepAlive < 0:
		return fmt.Errorf("transport.push_only_keepalive: must not be negative, got %v", t.PushOnlyKeepAlive)
	case t.FirstFrameTimeout < 0:
		return fmt.Errorf("transport.first_frame_timeout: must not be negative, got %v", t.FirstFrameTimeout)
	}
	keepAlive := t.KeepAlive
	if keepAlive == 0 {
		keepAlive = transport.DefaultKeepAlive
	}
	if t.PushOnlyKeepAlive > keepAlive {
		return fmt.Errorf("transport.push_only_keepalive: %v exceeds the keep-alive budget %v", t.PushOnlyKeepAlive, keepAlive)
	}
	return nil
}

// validateHostPort checks a "host:port" address; empty is allowed
// unless required (an optional plugin's empty address means disabled).
func validateHostPort(path, addr string, required bool) error {
	if addr == "" {
		if required {
			return fmt.Errorf("%s: must not be empty", path)
		}
		return nil
	}
	host, port, err := net.SplitHostPort(addr)
	if err != nil {
		return fmt.Errorf("%s: malformed address %q (want host:port)", path, addr)
	}
	_ = host // an empty host binds every interface, which is the operator's call
	if port == "" {
		return fmt.Errorf("%s: malformed address %q (missing port)", path, addr)
	}
	return nil
}

// backendKnown reports whether the transport registry knows the name.
func backendKnown(name string) bool {
	for _, b := range transport.Backends() {
		if b == name {
			return true
		}
	}
	return false
}
