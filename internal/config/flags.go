package config

import (
	"flag"
	"fmt"
	"strings"
	"time"

	"peersampling/internal/transport"
)

// Flags is the command-line override surface of the daemon: every flag
// mirrors one config field, and Apply overlays exactly the flags the
// user set onto a Config — so `psnode -config psnode.yaml -c 50` runs
// the file's configuration with only the view size overridden, and
// `psnode -listen :7946` with no file overrides the defaults.
type Flags struct {
	fs *flag.FlagSet

	listen    *string
	contacts  *string
	protocol  *string
	viewSize  *int
	period    *time.Duration
	diverse   *bool
	backend   *string
	maxConns  *int
	keepalive *time.Duration
	report    *time.Duration

	metricsAddr *string
	metricsCSV  *string
	controlAddr *string
	readyFile   *string
	gatewayAddr *string
}

// FromFlags registers the daemon's config-override flags on fs and
// returns the handle Apply reads them back through. Call fs.Parse (or
// flag.Parse for the command-line set) before Apply.
func FromFlags(fs *flag.FlagSet) *Flags {
	def := Default()
	f := &Flags{fs: fs}
	f.listen = fs.String("listen", def.Node.Listen, "listen address")
	f.backend = fs.String("transport", def.Transport.Backend,
		fmt.Sprintf("wire backend, one of %v; tcp and tcp-pooled interoperate, udp nodes only reach udp nodes", transport.Backends()))
	f.contacts = fs.String("contacts", "", "comma-separated bootstrap addresses")
	f.protocol = fs.String("protocol", def.Node.Protocol, "protocol tuple")
	f.viewSize = fs.Int("c", def.Node.ViewSize, "view size")
	f.period = fs.Duration("period", def.Node.Period, "gossip period T")
	f.report = fs.Duration("report", def.Metrics.ReportInterval, "view report and CSV dump interval")
	f.diverse = fs.Bool("diverse", def.Node.Diverse, "diversity-maximising getPeer")
	f.maxConns = fs.Int("max-conns", def.Transport.MaxConns,
		"max connections served concurrently (0 = default 1024, negative = unlimited)")
	f.keepalive = fs.Duration("keepalive", def.Transport.KeepAlive,
		"keep-alive budget for served connections that pull (0 = default 2m; push-only peers get 3/4 of it)")
	f.metricsAddr = fs.String("metrics-addr", "",
		"serve Prometheus text-format metrics on http://<addr>/metrics (empty = disabled)")
	f.metricsCSV = fs.String("metrics-csv", "",
		"append periodic metric snapshots to this file; .jsonl selects JSONL, anything else long-form CSV (empty = disabled)")
	f.controlAddr = fs.String("control-addr", "",
		"serve the fleet control agent on this address: GET /healthz, /snapshot, /view; POST /stop (empty = disabled)")
	f.readyFile = fs.String("ready-file", "",
		"atomically write the daemon's bound addresses as JSON to this path once up (empty = disabled)")
	f.gatewayAddr = fs.String("gateway-addr", "",
		"serve the light-client sampling API on this address: GET /v1/sample, /healthz (empty = disabled)")
	return f
}

// Apply overlays the flags the user explicitly set onto cfg. Flags left
// at their defaults do not touch the config, so a config file's values
// win over flag defaults but lose to flags actually typed.
func (f *Flags) Apply(cfg *Config) {
	set := map[string]bool{}
	f.fs.Visit(func(fl *flag.Flag) { set[fl.Name] = true })

	if set["listen"] {
		cfg.Node.Listen = *f.listen
	}
	if set["contacts"] {
		cfg.Node.Contacts = splitContacts(*f.contacts)
	}
	if set["protocol"] {
		cfg.Node.Protocol = *f.protocol
	}
	if set["c"] {
		cfg.Node.ViewSize = *f.viewSize
	}
	if set["period"] {
		cfg.Node.Period = *f.period
	}
	if set["diverse"] {
		cfg.Node.Diverse = *f.diverse
	}
	if set["transport"] {
		cfg.Transport.Backend = *f.backend
	}
	if set["max-conns"] {
		cfg.Transport.MaxConns = *f.maxConns
	}
	if set["keepalive"] {
		cfg.Transport.KeepAlive = *f.keepalive
	}
	if set["report"] {
		cfg.Metrics.ReportInterval = *f.report
	}
	if set["metrics-addr"] {
		cfg.Metrics.Addr = *f.metricsAddr
	}
	if set["metrics-csv"] {
		cfg.Metrics.Dump = *f.metricsCSV
	}
	if set["control-addr"] {
		cfg.Control.Addr = *f.controlAddr
	}
	if set["ready-file"] {
		cfg.Control.ReadyFile = *f.readyFile
	}
	if set["gateway-addr"] {
		cfg.Gateway.Addr = *f.gatewayAddr
	}
}

// splitContacts splits a comma-separated contact list, dropping empty
// segments so a trailing comma is not an "empty contact" error.
func splitContacts(s string) []string {
	var out []string
	for _, c := range strings.Split(s, ",") {
		if c = strings.TrimSpace(c); c != "" {
			out = append(out, c)
		}
	}
	return out
}
