package config

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// LoadFile loads, defaults and validates a config file. The format
// follows the extension: ".json" parses as JSON, anything else as the
// package's YAML subset. Fields absent from the file keep their
// Default() values; unknown fields and type mismatches are errors with
// the file name and field path attached.
func LoadFile(path string) (Config, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return Config{}, fmt.Errorf("config: %w", err)
	}
	cfg, err := Parse(raw, strings.EqualFold(filepath.Ext(path), ".json"))
	if err != nil {
		return Config{}, fmt.Errorf("config: %s: %w", path, err)
	}
	return cfg, nil
}

// Parse decodes one config document (YAML subset, or JSON when asJSON
// is set) over the defaults and validates the result.
func Parse(raw []byte, asJSON bool) (Config, error) {
	var doc map[string]any
	var err error
	if asJSON {
		doc, err = parseJSON(raw)
	} else {
		doc, err = parseYAML(raw)
	}
	if err != nil {
		return Config{}, err
	}
	cfg := Default()
	if err := decodeDocument(doc, &cfg); err != nil {
		return Config{}, err
	}
	if err := cfg.Validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}

// parseJSON parses a JSON document into the same map shape parseYAML
// produces, keeping integers exact via json.Number.
func parseJSON(raw []byte) (map[string]any, error) {
	dec := json.NewDecoder(bytes.NewReader(raw))
	dec.UseNumber()
	var doc map[string]any
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("malformed JSON: %w", err)
	}
	return doc, nil
}

// decodeDocument maps the parsed document onto cfg, strictly: a key the
// schema does not define is an error naming its path, so a typo never
// silently configures nothing.
func decodeDocument(doc map[string]any, cfg *Config) error {
	root := newSection("", doc)
	if err := root.integer("version", &cfg.Version); err != nil {
		return err
	}
	if node := root.sub("node"); node != nil {
		if err := decodeNode(node, &cfg.Node); err != nil {
			return err
		}
	}
	if tr := root.sub("transport"); tr != nil {
		if err := decodeTransport(tr, &cfg.Transport); err != nil {
			return err
		}
	}
	if m := root.sub("metrics"); m != nil {
		if err := decodeMetrics(m, &cfg.Metrics); err != nil {
			return err
		}
	}
	if ctl := root.sub("control"); ctl != nil {
		if err := decodeControl(ctl, &cfg.Control); err != nil {
			return err
		}
	}
	if gw := root.sub("gateway"); gw != nil {
		if err := decodeGateway(gw, &cfg.Gateway); err != nil {
			return err
		}
	}
	if wl := root.sub("workload"); wl != nil {
		if err := decodeWorkload(wl, &cfg.Workload); err != nil {
			return err
		}
	}
	return root.finishAll()
}

func decodeNode(s *section, n *NodeSection) error {
	return firstErr(
		s.str("listen", &n.Listen),
		s.strList("contacts", &n.Contacts),
		s.str("protocol", &n.Protocol),
		s.integer("view_size", &n.ViewSize),
		s.duration("period", &n.Period),
		s.boolean("diverse", &n.Diverse),
	)
}

func decodeTransport(s *section, t *TransportSection) error {
	return firstErr(
		s.str("backend", &t.Backend),
		s.integer("max_conns", &t.MaxConns),
		s.duration("keepalive", &t.KeepAlive),
		s.duration("push_only_keepalive", &t.PushOnlyKeepAlive),
		s.duration("first_frame_timeout", &t.FirstFrameTimeout),
	)
}

func decodeMetrics(s *section, m *MetricsSection) error {
	return firstErr(
		s.str("addr", &m.Addr),
		s.str("dump", &m.Dump),
		s.duration("report_interval", &m.ReportInterval),
	)
}

func decodeControl(s *section, c *ControlSection) error {
	return firstErr(
		s.str("addr", &c.Addr),
		s.str("ready_file", &c.ReadyFile),
	)
}

func decodeGateway(s *section, g *GatewaySection) error {
	return firstErr(
		s.str("addr", &g.Addr),
		s.integer("batch_size", &g.BatchSize),
		s.duration("refresh", &g.Refresh),
		s.float("rate_rps", &g.RateRPS),
		s.integer("burst", &g.Burst),
		s.boolean("trust_proxy_header", &g.TrustProxyHeader),
	)
}

func decodeWorkload(s *section, w *WorkloadSection) error {
	return firstErr(
		s.str("kind", &w.Kind),
		s.duration("period", &w.Period),
		s.integer("fanout", &w.Fanout),
		s.str("mode", &w.Mode),
		s.integer("ttl", &w.TTL),
		s.float("initial", &w.Initial),
	)
}

func firstErr(errs ...error) error {
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// section reads typed values out of one mapping of the parsed document,
// tracking which keys were consumed so leftovers can be rejected. Every
// error carries the dotted field path.
type section struct {
	path     string
	m        map[string]any
	used     map[string]bool
	children []*section
	// typeErr poisons a section whose document value was not a mapping;
	// every read reports it instead of inventing field-level errors.
	typeErr error
}

func newSection(path string, m map[string]any) *section {
	return &section{path: path, m: m, used: map[string]bool{}}
}

// key joins the section path and a field name into the error path.
func (s *section) key(name string) string {
	if s.path == "" {
		return name
	}
	return s.path + "." + name
}

// take consumes a key, returning (nil, false) when absent or null so
// the default survives.
func (s *section) take(name string) (any, bool) {
	v, ok := s.m[name]
	if !ok {
		return nil, false
	}
	s.used[name] = true
	if v == nil {
		return nil, false
	}
	return v, true
}

// sub returns the nested mapping under name, or nil when absent. The
// child is remembered so finishAll sweeps it for unknown keys too.
func (s *section) sub(name string) *section {
	v, ok := s.take(name)
	if !ok {
		return nil
	}
	m, isMap := v.(map[string]any)
	if !isMap {
		// Returning a poisoned child keeps call sites uniform; the type
		// error surfaces from the first field read.
		m = map[string]any{}
	}
	child := newSection(s.key(name), m)
	if !isMap {
		child.typeErr = fmt.Errorf("%s: want a mapping, got %s", s.key(name), typeName(v))
	}
	s.children = append(s.children, child)
	return child
}

func (s *section) str(name string, dst *string) error {
	if s.typeErr != nil {
		return s.typeErr
	}
	v, ok := s.take(name)
	if !ok {
		return nil
	}
	str, isStr := v.(string)
	if !isStr {
		return fmt.Errorf("%s: want a string, got %s", s.key(name), typeName(v))
	}
	*dst = str
	return nil
}

func (s *section) strList(name string, dst *[]string) error {
	if s.typeErr != nil {
		return s.typeErr
	}
	v, ok := s.take(name)
	if !ok {
		return nil
	}
	seq, isSeq := v.([]any)
	if !isSeq {
		// A single bare string is accepted as a one-element list: the
		// common "contacts: host:port" case should not need brackets.
		if str, isStr := v.(string); isStr {
			*dst = []string{str}
			return nil
		}
		return fmt.Errorf("%s: want a list of strings, got %s", s.key(name), typeName(v))
	}
	out := make([]string, len(seq))
	for i, item := range seq {
		str, isStr := item.(string)
		if !isStr {
			return fmt.Errorf("%s[%d]: want a string, got %s", s.key(name), i, typeName(item))
		}
		out[i] = str
	}
	*dst = out
	return nil
}

func (s *section) integer(name string, dst *int) error {
	if s.typeErr != nil {
		return s.typeErr
	}
	v, ok := s.take(name)
	if !ok {
		return nil
	}
	n, err := asInt64(v)
	if err != nil {
		return fmt.Errorf("%s: %w", s.key(name), err)
	}
	*dst = int(n)
	return nil
}

func (s *section) float(name string, dst *float64) error {
	if s.typeErr != nil {
		return s.typeErr
	}
	v, ok := s.take(name)
	if !ok {
		return nil
	}
	switch n := v.(type) {
	case int64:
		*dst = float64(n)
	case float64:
		*dst = n
	case json.Number:
		f, err := n.Float64()
		if err != nil {
			return fmt.Errorf("%s: want a number, got %q", s.key(name), n.String())
		}
		*dst = f
	default:
		return fmt.Errorf("%s: want a number, got %s", s.key(name), typeName(v))
	}
	return nil
}

func (s *section) boolean(name string, dst *bool) error {
	if s.typeErr != nil {
		return s.typeErr
	}
	v, ok := s.take(name)
	if !ok {
		return nil
	}
	b, isBool := v.(bool)
	if !isBool {
		return fmt.Errorf("%s: want true or false, got %s", s.key(name), typeName(v))
	}
	*dst = b
	return nil
}

// duration reads a Go duration string ("90s", "1m30s"). Bare numbers
// are rejected: "period: 5" is ambiguous between seconds and
// nanoseconds, and guessing either would misconfigure someone.
func (s *section) duration(name string, dst *time.Duration) error {
	if s.typeErr != nil {
		return s.typeErr
	}
	v, ok := s.take(name)
	if !ok {
		return nil
	}
	str, isStr := v.(string)
	if !isStr {
		return fmt.Errorf("%s: want a duration string like \"250ms\" or \"1m\", got %s", s.key(name), typeName(v))
	}
	d, err := time.ParseDuration(str)
	if err != nil {
		return fmt.Errorf("%s: malformed duration %q", s.key(name), str)
	}
	*dst = d
	return nil
}

// finishAll errors on any key in this section or its children that no
// field consumed.
func (s *section) finishAll() error {
	if s.typeErr != nil {
		return s.typeErr
	}
	var unknown []string
	for k := range s.m {
		if !s.used[k] {
			unknown = append(unknown, s.key(k))
		}
	}
	for _, child := range s.children {
		if err := child.finishAll(); err != nil {
			return err
		}
	}
	if len(unknown) > 0 {
		sort.Strings(unknown)
		return fmt.Errorf("%s: unknown field", unknown[0])
	}
	return nil
}

// asInt64 accepts the integer shapes the two parsers produce.
func asInt64(v any) (int64, error) {
	switch n := v.(type) {
	case int64:
		return n, nil
	case float64:
		if n == float64(int64(n)) {
			return int64(n), nil
		}
		return 0, fmt.Errorf("want an integer, got %v", n)
	case json.Number:
		i, err := n.Int64()
		if err != nil {
			return 0, fmt.Errorf("want an integer, got %q", n.String())
		}
		return i, nil
	default:
		return 0, fmt.Errorf("want an integer, got %s", typeName(v))
	}
}

func typeName(v any) string {
	switch v.(type) {
	case string:
		return "a string"
	case bool:
		return "a boolean"
	case int64, float64, json.Number:
		return "a number"
	case []any:
		return "a list"
	case map[string]any:
		return "a mapping"
	case nil:
		return "null"
	default:
		return fmt.Sprintf("%T", v)
	}
}

// WriteFile writes cfg as a JSON config document at path — the exact
// document LoadFile round-trips. The subprocess fleet driver uses this
// to hand each forked psnode one file instead of a flag list.
func WriteFile(path string, cfg Config) error {
	raw, err := json.MarshalIndent(encode(cfg), "", "  ")
	if err != nil {
		return fmt.Errorf("config: encode: %w", err)
	}
	if err := os.WriteFile(path, append(raw, '\n'), 0o644); err != nil {
		return fmt.Errorf("config: %w", err)
	}
	return nil
}

// encode renders cfg into the document shape the decoder accepts, with
// durations as strings. Every field is emitted, defaults included: a
// generated file should read as the daemon's complete effective
// configuration, not a diff against defaults the reader must know.
func encode(cfg Config) map[string]any {
	contacts := cfg.Node.Contacts
	if contacts == nil {
		contacts = []string{}
	}
	return map[string]any{
		"version": cfg.Version,
		"node": map[string]any{
			"listen":    cfg.Node.Listen,
			"contacts":  contacts,
			"protocol":  cfg.Node.Protocol,
			"view_size": cfg.Node.ViewSize,
			"period":    cfg.Node.Period.String(),
			"diverse":   cfg.Node.Diverse,
		},
		"transport": map[string]any{
			"backend":             cfg.Transport.Backend,
			"max_conns":           cfg.Transport.MaxConns,
			"keepalive":           cfg.Transport.KeepAlive.String(),
			"push_only_keepalive": cfg.Transport.PushOnlyKeepAlive.String(),
			"first_frame_timeout": cfg.Transport.FirstFrameTimeout.String(),
		},
		"metrics": map[string]any{
			"addr":            cfg.Metrics.Addr,
			"dump":            cfg.Metrics.Dump,
			"report_interval": cfg.Metrics.ReportInterval.String(),
		},
		"control": map[string]any{
			"addr":       cfg.Control.Addr,
			"ready_file": cfg.Control.ReadyFile,
		},
		"gateway": map[string]any{
			"addr":               cfg.Gateway.Addr,
			"batch_size":         cfg.Gateway.BatchSize,
			"refresh":            cfg.Gateway.Refresh.String(),
			"rate_rps":           cfg.Gateway.RateRPS,
			"burst":              cfg.Gateway.Burst,
			"trust_proxy_header": cfg.Gateway.TrustProxyHeader,
		},
		"workload": map[string]any{
			"kind":    cfg.Workload.Kind,
			"period":  cfg.Workload.Period.String(),
			"fanout":  cfg.Workload.Fanout,
			"mode":    cfg.Workload.Mode,
			"ttl":     cfg.Workload.TTL,
			"initial": cfg.Workload.Initial,
		},
	}
}
