// Package config is the deployable daemon's configuration surface: a
// versioned document (YAML or JSON) covering the node, transport,
// metrics, control and gateway subsystems, with strict validation,
// defaulting, flag overlays and a reload diff.
//
// The package exists so that psnode can be booted from one file —
// `psnode -config psnode.yaml` — instead of an ever-growing flag list,
// and so that a running daemon can classify a changed file into fields
// it may apply live (transport limits, report interval, gateway tuning)
// versus fields that need a restart (listen address, protocol tuple,
// view size). See Diff for the classification and internal/daemon for
// the runtime that applies it.
//
// The YAML loader speaks a deliberate subset of YAML — mappings nested
// by indentation, scalar sequences ("- item" or [a, b]), quoted and
// bare scalars, comments — which covers every document this package
// defines while keeping the repository dependency-free. JSON files
// (.json) load through encoding/json into the same strict decoder, so
// both formats share one validation story and one set of field-path
// errors.
package config
