package core

import (
	"errors"
	"fmt"
	"math/rand/v2"
)

// ErrEmptyView is returned by exchange initiation when the node knows no
// peers at all; the caller should retry after the next bootstrap or
// incoming exchange.
var ErrEmptyView = errors.New("core: view is empty")

// Request is the message an initiating (active) node sends to the selected
// peer. For push and pushpull protocols Buffer carries the initiator's
// view merged with its own zero-hop descriptor; for pull-only protocols
// Buffer is empty and merely triggers a response.
type Request[A comparable] struct {
	From   A
	Buffer []Descriptor[A]
	// WantReply mirrors Propagation.HasPull of the sender's protocol. It
	// travels with the message so that transports can route replies
	// without consulting protocol configuration.
	WantReply bool
}

// Response is the message a passive node returns to the initiator of a
// pull or pushpull exchange.
type Response[A comparable] struct {
	From   A
	Buffer []Descriptor[A]
}

// Node is the deterministic protocol state machine of a single
// participant: its own address, its partial view and the protocol tuple it
// executes. Node is not safe for concurrent use; wrap it (as
// internal/runtime does) when multiple goroutines are involved.
type Node[A comparable] struct {
	self  A
	proto Protocol
	view  *View[A]
	rng   *rand.Rand

	// failedExchanges counts initiations whose peer never answered (only
	// meaningful when the environment reports failures via OnExchangeFailed).
	failedExchanges uint64

	// mergeScratch is the reusable buffer applyBuffer merges into: the
	// merged result is consumed synchronously by view selection (which
	// copies the survivors into the view), so a single per-node scratch
	// makes every view merge allocation-free at steady state.
	mergeScratch []Descriptor[A]
}

// NewNode returns a node with an empty view of the given capacity,
// executing the given protocol. The rng drives rand peer/view selection
// and must not be shared with other nodes unless access is serialised.
func NewNode[A comparable](self A, proto Protocol, capacity int, rng *rand.Rand) (*Node[A], error) {
	if !proto.Valid() {
		return nil, fmt.Errorf("core: invalid protocol %+v", proto)
	}
	if rng == nil {
		return nil, errors.New("core: nil rng")
	}
	return &Node[A]{
		self:  self,
		proto: proto,
		view:  NewView[A](capacity),
		rng:   rng,
	}, nil
}

// Self returns the node's own address.
func (n *Node[A]) Self() A { return n.self }

// Protocol returns the protocol tuple the node executes.
func (n *Node[A]) Protocol() Protocol { return n.proto }

// View exposes the node's partial view. Mutating it directly is only
// appropriate during bootstrap.
func (n *Node[A]) View() *View[A] { return n.view }

// Bootstrap seeds the view with the given descriptors (typically a single
// contact node), implementing the init() method of the sampling service.
// The node's own address is filtered out.
func (n *Node[A]) Bootstrap(descriptors []Descriptor[A]) {
	kept := make([]Descriptor[A], 0, len(descriptors))
	for _, d := range descriptors {
		if d.Addr != n.self {
			kept = append(kept, d)
		}
	}
	n.view.SetAll(kept)
}

// AgeView increments the hop count of every resident descriptor. The
// environment (simulator or runtime) calls this exactly once per cycle per
// node, before the node initiates its exchange; see View.Age for why this
// deviation from the literal Figure 1 pseudocode is required.
func (n *Node[A]) AgeView() { n.view.Age() }

// SelectPeer picks the exchange partner for this cycle according to the
// peer selection policy. It returns ErrEmptyView when the view is empty.
func (n *Node[A]) SelectPeer() (A, error) {
	var zero A
	if n.view.Len() == 0 {
		return zero, ErrEmptyView
	}
	switch n.proto.PeerSel {
	case PeerRand:
		return n.view.At(n.rng.IntN(n.view.Len())).Addr, nil
	case PeerHead:
		return n.view.At(0).Addr, nil
	case PeerTail:
		return n.view.At(n.view.Len() - 1).Addr, nil
	default:
		return zero, fmt.Errorf("core: invalid peer selection policy %d", n.proto.PeerSel)
	}
}

// InitiateExchange runs the first half of the active thread of Figure 1:
// it selects a peer and builds the request to send. The caller is
// responsible for delivering the request and, for pull-enabled protocols,
// feeding the peer's response to HandleResponse.
func (n *Node[A]) InitiateExchange() (peer A, req Request[A], err error) {
	peer, err = n.SelectPeer()
	if err != nil {
		return peer, Request[A]{}, err
	}
	return peer, n.MakeRequest(), nil
}

// MakeRequest builds the request message of the active thread: for push
// protocols the view merged with the node's fresh self-descriptor, for
// pull-only protocols an empty buffer that triggers a response. The
// returned buffer is freshly allocated; environments that own a reusable
// buffer should call MakeRequestInto instead.
func (n *Node[A]) MakeRequest() Request[A] {
	req, _ := n.MakeRequestInto(nil)
	return req
}

// MakeRequestInto is MakeRequest building the request buffer inside buf
// (truncated first). It returns the request and the possibly grown buf for
// the caller to keep; the request's Buffer aliases it, so the caller must
// not rebuild into the same buf until the request has been consumed.
func (n *Node[A]) MakeRequestInto(buf []Descriptor[A]) (Request[A], []Descriptor[A]) {
	req := Request[A]{From: n.self, WantReply: n.proto.Prop.HasPull()}
	if n.proto.Prop.HasPush() {
		buf = n.outgoingInto(buf)
		req.Buffer = buf
	}
	return req, buf
}

// HandleRequest runs the passive thread of Figure 1 for one incoming
// request: it increments the hop counts of the received buffer, builds the
// response if the protocol pulls, and installs the merged, truncated view.
// The returned ok is false for push-only protocols, where no response is
// sent.
func (n *Node[A]) HandleRequest(req Request[A]) (resp Response[A], ok bool) {
	resp, _, ok = n.HandleRequestInto(req, nil)
	return resp, ok
}

// HandleRequestInto is HandleRequest building the response buffer inside
// buf (truncated first). It returns the response and the possibly grown
// buf for the caller to keep; the response's Buffer aliases it, so the
// caller must not rebuild into the same buf until the response has been
// consumed.
func (n *Node[A]) HandleRequestInto(req Request[A], buf []Descriptor[A]) (resp Response[A], out []Descriptor[A], ok bool) {
	IncreaseHop(req.Buffer)
	if req.WantReply {
		// Build the reply before merging, exactly as in Figure 1: the
		// response carries the pre-merge view plus our own descriptor.
		buf = n.outgoingInto(buf)
		resp = Response[A]{From: n.self, Buffer: buf}
		ok = true
	}
	n.applyBuffer(req.Buffer)
	return resp, buf, ok
}

// HandleResponse completes a pull or pushpull exchange on the active side:
// hop counts of the received buffer are incremented and the merged,
// truncated view is installed.
func (n *Node[A]) HandleResponse(resp Response[A]) {
	IncreaseHop(resp.Buffer)
	n.applyBuffer(resp.Buffer)
}

// OnExchangeFailed records that the selected peer never answered. The
// paper's protocols perform no explicit failure handling — state is left
// untouched and healing happens through view selection only — but the
// count is useful for diagnostics.
func (n *Node[A]) OnExchangeFailed(A) { n.failedExchanges++ }

// FailedExchanges returns the number of initiated exchanges for which the
// environment reported a failure.
func (n *Node[A]) FailedExchanges() uint64 { return n.failedExchanges }

// outgoingInto writes merge(view, {(self, 0)}) into buf (truncated
// first) and returns it: the node's view with its own zero-hop descriptor
// in front. The view never contains its owner and the self-descriptor's
// hop count of zero is minimal, so the merge reduces to prepending self —
// exactly what a stable Merge would produce, since on equal hop counts
// (possible only transiently during bootstrap) the first operand's entry
// precedes the second's.
func (n *Node[A]) outgoingInto(buf []Descriptor[A]) []Descriptor[A] {
	buf = append(buf[:0], Descriptor[A]{Addr: n.self, Hop: 0})
	return append(buf, n.view.items...)
}

// applyBuffer merges a received buffer into the view and truncates it with
// the view selection policy, dropping any descriptor of the node itself.
// Following Figure 1 the received buffer is the first merge operand, so on
// equal hop counts received descriptors precede resident ones. The merge
// lands in the node's reusable scratch (view selection copies the
// survivors out), keeping steady-state exchanges allocation-free.
func (n *Node[A]) applyBuffer(received []Descriptor[A]) {
	merged := MergeInto(n.mergeScratch, received, n.view.items)
	merged = dropAddr(merged, n.self)
	n.mergeScratch = merged[:0]
	n.view.selectInto(n.proto.ViewSel, merged, n.rng)
}

// RandomPeer returns a uniform random element of the view, implementing
// the simplest getPeer() of the sampling service API. It returns
// ErrEmptyView when no peer is known.
func (n *Node[A]) RandomPeer() (A, error) {
	var zero A
	if n.view.Len() == 0 {
		return zero, ErrEmptyView
	}
	return n.view.At(n.rng.IntN(n.view.Len())).Addr, nil
}
