package core

import (
	"fmt"
	"slices"
	"sort"
)

// Descriptor is a single entry of a partial view: the address of a peer
// together with a hop count that records how many exchanges ago the
// information originated at that peer. A freshly injected descriptor has
// hop count zero; every network hop increments it by one.
type Descriptor[A comparable] struct {
	Addr A
	Hop  int32
}

// String renders the descriptor as "addr@hop".
func (d Descriptor[A]) String() string {
	return fmt.Sprintf("%v@%d", d.Addr, d.Hop)
}

// IncreaseHop increments the hop count of every descriptor in buf in
// place, implementing the paper's increaseHopCount step that runs on every
// received view.
func IncreaseHop[A comparable](buf []Descriptor[A]) {
	for i := range buf {
		buf[i].Hop++
	}
}

// SortByHop stably sorts buf by increasing hop count. Descriptors with
// equal hop counts keep their relative order, matching the paper's remark
// that the first and last k elements are not always uniquely defined by
// the ordering.
func SortByHop[A comparable](buf []Descriptor[A]) {
	sort.SliceStable(buf, func(i, j int) bool { return buf[i].Hop < buf[j].Hop })
}

// Merge returns the union of the two hop-ordered descriptor lists, ordered
// again by increasing hop count. When both lists contain a descriptor for
// the same address only the one with the lowest hop count survives; on a
// tie the descriptor from the first list wins (the merge is stable). The
// inputs must each be sorted by hop count and free of duplicate addresses;
// the result is a freshly allocated slice.
func Merge[A comparable](first, second []Descriptor[A]) []Descriptor[A] {
	return MergeInto(make([]Descriptor[A], 0, len(first)+len(second)), first, second)
}

// MergeInto is Merge writing its result into dst (which is truncated
// first and must not alias either input). It returns the possibly grown
// dst, so callers holding a reusable scratch slice can merge without
// allocating once the scratch has reached steady-state capacity.
func MergeInto[A comparable](dst, first, second []Descriptor[A]) []Descriptor[A] {
	// Grow dst to the worst case up front: reusable scratches then reach
	// their steady-state capacity on the first merge instead of creeping
	// towards it over many cycles, each growth step paying an allocation.
	out := slices.Grow(dst[:0], len(first)+len(second))
	i, j := 0, 0
	for i < len(first) || j < len(second) {
		var d Descriptor[A]
		switch {
		case j >= len(second):
			d = first[i]
			i++
		case i >= len(first):
			d = second[j]
			j++
		case second[j].Hop < first[i].Hop:
			d = second[j]
			j++
		default: // ties favour the first list, keeping the merge stable
			d = first[i]
			i++
		}
		if containsAddr(out, d.Addr) {
			// The earlier occurrence necessarily has a lower or equal hop
			// count because the output is produced in hop order.
			continue
		}
		out = append(out, d)
	}
	return out
}

// containsAddr reports whether buf already holds a descriptor for addr.
// Views are tiny (tens of entries) so a linear scan beats a map both in
// allocations and in wall-clock time.
func containsAddr[A comparable](buf []Descriptor[A], addr A) bool {
	for i := range buf {
		if buf[i].Addr == addr {
			return true
		}
	}
	return false
}

// dropAddr returns buf with any descriptor for addr removed, preserving
// order. It mutates buf's backing array.
func dropAddr[A comparable](buf []Descriptor[A], addr A) []Descriptor[A] {
	for i := range buf {
		if buf[i].Addr == addr {
			return append(buf[:i], buf[i+1:]...)
		}
	}
	return buf
}
