package core

import (
	"math/rand/v2"
	"testing"
)

// TestExchangeGolden pins the exact view contents after one exchange for
// each (view selection, propagation) combination, on a fixed tiny
// topology. These are golden semantics tests: any change to merge order,
// tie-breaking, hop accounting or self-filtering shows up here first.
func TestExchangeGolden(t *testing.T) {
	type want struct {
		a []Descriptor[int32] // initiator view after the exchange
		b []Descriptor[int32] // passive view after the exchange
	}
	// Shared setup: a=1 with view [2@1 3@2 4@3], b=2 with view [5@1 6@2 7@3],
	// capacity 3. a initiates toward b (head peer selection would pick 2;
	// we force the peer deterministically via PeerHead).
	//
	// Push message from a: [1@0 2@1 3@2 4@3]; b increments: [1@1 2@2 3@3 4@4],
	// drops its own id 2, merges with [5@1 6@2 7@3] (received first on ties).
	// Reply from b (pull-enabled): [2@0 5@1 6@2 7@3]; a increments:
	// [2@1 5@2 6@3 7@4], drops own id 1, merges with a's view.
	cases := []struct {
		name string
		vs   ViewSelection
		prop Propagation
		want want
	}{
		{
			name: "head-pushpull",
			vs:   ViewHead,
			prop: PushPull,
			// b's buffer: [1@1, 5@1, 6@2, 3@3, 7@3, 4@4] -> head 3.
			// a's buffer: [2@1, 5@2, 3@2(own,tie to received? no: own 3@2 vs received 5@2 — received first), ...]
			// full a merge: received [2@1 5@2 6@3 7@4] + own [2@1 3@2 4@3]:
			// [2@1, 5@2, 3@2, 6@3, 4@3, 7@4] -> head 3 = [2@1 5@2 3@2].
			want: want{
				a: descs(2, 1, 5, 2, 3, 2),
				b: descs(1, 1, 5, 1, 6, 2),
			},
		},
		{
			name: "tail-pushpull",
			vs:   ViewTail,
			prop: PushPull,
			// b's buffer: [1@1 5@1 6@2 3@3 7@3 4@4] -> tail 3 = [3@3 7@3 4@4].
			// a's buffer: [2@1 5@2 3@2 6@3 4@3 7@4] -> tail 3 = [6@3 4@3 7@4].
			want: want{
				a: descs(6, 3, 4, 3, 7, 4),
				b: descs(3, 3, 7, 3, 4, 4),
			},
		},
		{
			name: "head-push",
			vs:   ViewHead,
			prop: Push,
			// No reply: a unchanged; b merges as above.
			want: want{
				a: descs(2, 1, 3, 2, 4, 3),
				b: descs(1, 1, 5, 1, 6, 2),
			},
		},
		{
			name: "tail-push",
			vs:   ViewTail,
			prop: Push,
			want: want{
				a: descs(2, 1, 3, 2, 4, 3),
				b: descs(3, 3, 7, 3, 4, 4),
			},
		},
		{
			name: "head-pull",
			vs:   ViewHead,
			prop: Pull,
			// Empty push: b keeps its view (selectView(merge({}, view))).
			// Reply handling at a as in pushpull.
			want: want{
				a: descs(2, 1, 5, 2, 3, 2),
				b: descs(5, 1, 6, 2, 7, 3),
			},
		},
		{
			name: "tail-pull",
			vs:   ViewTail,
			prop: Pull,
			want: want{
				a: descs(6, 3, 4, 3, 7, 4),
				b: descs(5, 1, 6, 2, 7, 3),
			},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			proto := Protocol{PeerSel: PeerHead, ViewSel: tc.vs, Prop: tc.prop}
			a, err := NewNode[int32](1, proto, 3, rand.New(rand.NewPCG(1, 1)))
			if err != nil {
				t.Fatal(err)
			}
			b, err := NewNode[int32](2, proto, 3, rand.New(rand.NewPCG(2, 2)))
			if err != nil {
				t.Fatal(err)
			}
			a.Bootstrap(descs(2, 1, 3, 2, 4, 3))
			b.Bootstrap(descs(5, 1, 6, 2, 7, 3))

			peer, req, err := a.InitiateExchange()
			if err != nil {
				t.Fatal(err)
			}
			if peer != 2 {
				t.Fatalf("head peer selection picked %d want 2", peer)
			}
			resp, ok := b.HandleRequest(req)
			if ok != tc.prop.HasPull() {
				t.Fatalf("reply presence = %v for %v", ok, tc.prop)
			}
			if ok {
				a.HandleResponse(resp)
			}

			checkView := func(name string, n *Node[int32], want []Descriptor[int32]) {
				t.Helper()
				got := n.View().Descriptors()
				if len(got) != len(want) {
					t.Fatalf("%s view = %v want %v", name, got, want)
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%s view[%d] = %v want %v (full: %v)", name, i, got[i], want[i], got)
					}
				}
			}
			checkView("initiator", a, tc.want.a)
			checkView("passive", b, tc.want.b)
		})
	}
}

// TestExchangeGoldenRandSelection checks the set-level semantics of rand
// view selection on the same fixture: the selected entries must be a
// subset of the full merged buffer with the correct per-address hops.
func TestExchangeGoldenRandSelection(t *testing.T) {
	proto := Protocol{PeerSel: PeerHead, ViewSel: ViewRand, Prop: PushPull}
	a, err := NewNode[int32](1, proto, 3, rand.New(rand.NewPCG(1, 1)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewNode[int32](2, proto, 3, rand.New(rand.NewPCG(2, 2)))
	if err != nil {
		t.Fatal(err)
	}
	a.Bootstrap(descs(2, 1, 3, 2, 4, 3))
	b.Bootstrap(descs(5, 1, 6, 2, 7, 3))

	_, req, err := a.InitiateExchange()
	if err != nil {
		t.Fatal(err)
	}
	resp, _ := b.HandleRequest(req)
	a.HandleResponse(resp)

	wantHopsA := map[int32]int32{2: 1, 5: 2, 3: 2, 6: 3, 4: 3, 7: 4}
	v := a.View()
	if v.Len() != 3 {
		t.Fatalf("a view len = %d want 3", v.Len())
	}
	for i := 0; i < v.Len(); i++ {
		d := v.At(i)
		want, ok := wantHopsA[d.Addr]
		if !ok {
			t.Errorf("unexpected view member %v", d)
			continue
		}
		if d.Hop != want {
			t.Errorf("hop of %d = %d want %d", d.Addr, d.Hop, want)
		}
	}
}
