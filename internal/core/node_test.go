package core

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func newTestNode(t *testing.T, self int32, proto Protocol, capacity int) *Node[int32] {
	t.Helper()
	n, err := NewNode(self, proto, capacity, rand.New(rand.NewPCG(uint64(self), 42)))
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	return n
}

func TestNewNodeValidation(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	if _, err := NewNode[int32](1, Protocol{}, 4, rng); err == nil {
		t.Error("invalid protocol accepted")
	}
	if _, err := NewNode[int32](1, Newscast, 4, nil); err == nil {
		t.Error("nil rng accepted")
	}
	n, err := NewNode[int32](7, Newscast, 4, rng)
	if err != nil {
		t.Fatalf("NewNode: %v", err)
	}
	if n.Self() != 7 || n.Protocol() != Newscast || n.View().Cap() != 4 {
		t.Error("accessors wrong")
	}
}

func TestBootstrapFiltersSelf(t *testing.T) {
	n := newTestNode(t, 1, Newscast, 4)
	n.Bootstrap(descs(1, 0, 2, 0, 3, 1))
	if n.View().Contains(1) {
		t.Error("bootstrap kept self descriptor")
	}
	if n.View().Len() != 2 {
		t.Errorf("view len = %d want 2", n.View().Len())
	}
}

func TestSelectPeerPolicies(t *testing.T) {
	mk := func(ps PeerSelection) *Node[int32] {
		n := newTestNode(t, 0, Protocol{PeerSel: ps, ViewSel: ViewHead, Prop: PushPull}, 8)
		n.Bootstrap(descs(1, 1, 2, 2, 3, 3))
		return n
	}
	if p, err := mk(PeerHead).SelectPeer(); err != nil || p != 1 {
		t.Errorf("head peer = %d,%v want 1", p, err)
	}
	if p, err := mk(PeerTail).SelectPeer(); err != nil || p != 3 {
		t.Errorf("tail peer = %d,%v want 3", p, err)
	}
	n := mk(PeerRand)
	seen := map[int32]bool{}
	for i := 0; i < 200; i++ {
		p, err := n.SelectPeer()
		if err != nil {
			t.Fatal(err)
		}
		if p != 1 && p != 2 && p != 3 {
			t.Fatalf("rand peer %d not in view", p)
		}
		seen[p] = true
	}
	if len(seen) != 3 {
		t.Errorf("rand selection over 200 draws only hit %d peers", len(seen))
	}
}

func TestSelectPeerEmptyView(t *testing.T) {
	n := newTestNode(t, 0, Newscast, 4)
	if _, err := n.SelectPeer(); !errors.Is(err, ErrEmptyView) {
		t.Errorf("err = %v want ErrEmptyView", err)
	}
	if _, _, err := n.InitiateExchange(); !errors.Is(err, ErrEmptyView) {
		t.Errorf("InitiateExchange err = %v want ErrEmptyView", err)
	}
	if _, err := n.RandomPeer(); !errors.Is(err, ErrEmptyView) {
		t.Errorf("RandomPeer err = %v want ErrEmptyView", err)
	}
}

func TestMakeRequestPushIncludesFreshSelf(t *testing.T) {
	n := newTestNode(t, 9, Newscast, 4)
	n.Bootstrap(descs(2, 1, 3, 2))
	req := n.MakeRequest()
	if !req.WantReply {
		t.Error("pushpull request must want a reply")
	}
	if len(req.Buffer) != 3 {
		t.Fatalf("buffer len = %d want 3", len(req.Buffer))
	}
	if req.Buffer[0] != (Descriptor[int32]{Addr: 9, Hop: 0}) {
		t.Errorf("first buffer entry = %v want self@0", req.Buffer[0])
	}
}

func TestMakeRequestPullOnlyIsEmpty(t *testing.T) {
	n := newTestNode(t, 9, Protocol{PeerRand, ViewHead, Pull}, 4)
	n.Bootstrap(descs(2, 1))
	req := n.MakeRequest()
	if len(req.Buffer) != 0 {
		t.Errorf("pull request carries %d descriptors, want 0", len(req.Buffer))
	}
	if !req.WantReply {
		t.Error("pull request must want a reply")
	}
}

func TestMakeRequestPushOnlyNoReply(t *testing.T) {
	n := newTestNode(t, 9, Lpbcast, 4)
	n.Bootstrap(descs(2, 1))
	if req := n.MakeRequest(); req.WantReply {
		t.Error("push-only request wants a reply")
	}
}

func TestHandleRequestPushPull(t *testing.T) {
	a := newTestNode(t, 1, Newscast, 3)
	b := newTestNode(t, 2, Newscast, 3)
	a.Bootstrap(descs(2, 1, 3, 2))
	b.Bootstrap(descs(4, 1, 5, 2))

	peer, req, err := a.InitiateExchange()
	if err != nil {
		t.Fatal(err)
	}
	if peer != 2 && peer != 3 {
		t.Fatalf("selected peer %d not in view", peer)
	}

	resp, ok := b.HandleRequest(req)
	if !ok {
		t.Fatal("pushpull passive side did not reply")
	}
	// Response carries b's pre-merge view plus b@0.
	if resp.From != 2 || resp.Buffer[0] != (Descriptor[int32]{Addr: 2, Hop: 0}) {
		t.Errorf("response head = %v want 2@0", resp.Buffer[0])
	}
	if containsAddr(resp.Buffer, 1) {
		t.Error("response leaked the initiator's fresh descriptor (merge must happen after reply)")
	}

	// b's view now knows a with hop 1 (0 incremented on receipt).
	if h, ok := b.View().HopOf(1); !ok || h != 1 {
		t.Errorf("b's hop for a = %d,%v want 1,true", h, ok)
	}
	if b.View().Contains(2) {
		t.Error("b stored its own descriptor")
	}
	if b.View().Len() > b.View().Cap() {
		t.Errorf("b's view overflows: %d > %d", b.View().Len(), b.View().Cap())
	}

	a.HandleResponse(resp)
	if h, ok := a.View().HopOf(2); !ok || h != 1 {
		t.Errorf("a's hop for b = %d,%v want 1,true", h, ok)
	}
	if a.View().Contains(1) {
		t.Error("a stored its own descriptor")
	}
}

func TestHandleRequestPushOnlyDoesNotReply(t *testing.T) {
	a := newTestNode(t, 1, Lpbcast, 3)
	b := newTestNode(t, 2, Lpbcast, 3)
	a.Bootstrap(descs(2, 1))
	b.Bootstrap(descs(3, 1))
	_, req, err := a.InitiateExchange()
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := b.HandleRequest(req); ok {
		t.Error("push-only passive side produced a reply")
	}
	if !b.View().Contains(1) {
		t.Error("b did not learn about a")
	}
	// a's state must be untouched by a push-only exchange.
	if a.View().Len() != 1 || !a.View().Contains(2) {
		t.Errorf("a's view changed: %v", a.View())
	}
}

func TestPullOnlyExchange(t *testing.T) {
	proto := Protocol{PeerRand, ViewHead, Pull}
	a := newTestNode(t, 1, proto, 3)
	b := newTestNode(t, 2, proto, 3)
	a.Bootstrap(descs(2, 1))
	b.Bootstrap(descs(3, 1))

	_, req, err := a.InitiateExchange()
	if err != nil {
		t.Fatal(err)
	}
	resp, ok := b.HandleRequest(req)
	if !ok {
		t.Fatal("pull passive side did not reply")
	}
	// b must not have learned anything about a (empty push buffer).
	if b.View().Contains(1) {
		t.Error("pull-only leaked initiator descriptor to passive side")
	}
	a.HandleResponse(resp)
	if !a.View().Contains(3) || !a.View().Contains(2) {
		t.Errorf("a failed to pull b's view: %v", a.View())
	}
}

func TestHopCountsGrowAlongChains(t *testing.T) {
	// a pushes to b; later b pushes to c; c must see a with hop 2.
	a := newTestNode(t, 1, Lpbcast, 8)
	b := newTestNode(t, 2, Lpbcast, 8)
	c := newTestNode(t, 3, Lpbcast, 8)
	a.Bootstrap(descs(2, 1))
	b.Bootstrap(descs(3, 1))
	c.Bootstrap(descs(1, 5))

	_, req, _ := a.InitiateExchange()
	b.HandleRequest(req)
	_, req2, _ := b.InitiateExchange()
	// Force the exchange toward c regardless of random peer selection.
	req2.From = 2
	c.HandleRequest(req2)

	h, ok := c.View().HopOf(1)
	if !ok {
		t.Fatal("c never learned about a")
	}
	if h != 2 && h != 5 {
		t.Errorf("hop for a at c = %d, want 2 (via chain) or 5 (bootstrap)", h)
	}
	// The merge keeps the minimum: chain hop 2 < bootstrap hop 5.
	if h != 2 {
		t.Errorf("merge did not keep lowest hop: got %d want 2", h)
	}
}

func TestFailedExchangeCounter(t *testing.T) {
	n := newTestNode(t, 1, Newscast, 4)
	n.Bootstrap(descs(2, 1))
	before := n.View().Descriptors()
	n.OnExchangeFailed(2)
	if n.FailedExchanges() != 1 {
		t.Errorf("failed count = %d want 1", n.FailedExchanges())
	}
	after := n.View().Descriptors()
	if len(before) != len(after) || before[0] != after[0] {
		t.Error("failure handling mutated the view")
	}
}

func TestViewNeverExceedsCapacityNorContainsSelf(t *testing.T) {
	// Property: random exchange sequences preserve the node invariants.
	f := func(seed uint64, steps uint8, protoIdx uint8) bool {
		protos := StudiedProtocols()
		proto := protos[int(protoIdx)%len(protos)]
		rng := rand.New(rand.NewPCG(seed, 1))
		const n, c = 8, 3
		nodes := make([]*Node[int32], n)
		for i := range nodes {
			node, err := NewNode(int32(i), proto, c, rand.New(rand.NewPCG(seed, uint64(i))))
			if err != nil {
				return false
			}
			node.Bootstrap(descs(int32((i+1)%n), 0))
			nodes[i] = node
		}
		for s := 0; s < int(steps); s++ {
			a := nodes[rng.IntN(n)]
			peer, req, err := a.InitiateExchange()
			if err != nil {
				continue
			}
			b := nodes[peer]
			if resp, ok := b.HandleRequest(req); ok {
				a.HandleResponse(resp)
			}
			for _, node := range nodes {
				v := node.View()
				if v.Len() > c || v.Contains(node.Self()) {
					return false
				}
				for i := 1; i < v.Len(); i++ {
					if v.At(i).Hop < v.At(i-1).Hop {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRandomPeerIsViewMember(t *testing.T) {
	n := newTestNode(t, 0, Newscast, 8)
	n.Bootstrap(descs(1, 1, 2, 2, 3, 3))
	for i := 0; i < 50; i++ {
		p, err := n.RandomPeer()
		if err != nil {
			t.Fatal(err)
		}
		if !n.View().Contains(p) {
			t.Fatalf("RandomPeer returned %d not in view", p)
		}
	}
}
