package core

import (
	"fmt"
	"strings"
)

// Protocol is one point of the paper's design space: a 3-tuple
// (peer selection, view selection, view propagation). The paper writes
// these as e.g. (rand,head,pushpull).
type Protocol struct {
	PeerSel PeerSelection
	ViewSel ViewSelection
	Prop    Propagation
}

// Named protocol instances from the paper.
var (
	// Newscast is the peer sampling component of the Newscast protocol,
	// (rand,head,pushpull).
	Newscast = Protocol{PeerSel: PeerRand, ViewSel: ViewHead, Prop: PushPull}
	// Lpbcast is the peer sampling component of lightweight probabilistic
	// broadcast, (rand,rand,push).
	Lpbcast = Protocol{PeerSel: PeerRand, ViewSel: ViewRand, Prop: Push}
)

// String renders the tuple in the paper's notation, e.g.
// "(rand,head,pushpull)".
func (p Protocol) String() string {
	return fmt.Sprintf("(%s,%s,%s)", p.PeerSel, p.ViewSel, p.Prop)
}

// Valid reports whether all three dimensions hold defined policies.
func (p Protocol) Valid() bool {
	return p.PeerSel.Valid() && p.ViewSel.Valid() && p.Prop.Valid()
}

// ParseProtocol parses the paper's tuple notation. Surrounding parentheses
// and spaces are optional: "(tail, head, push)" and "tail,head,push" are
// both accepted.
func ParseProtocol(s string) (Protocol, error) {
	t := strings.TrimSpace(s)
	t = strings.TrimPrefix(t, "(")
	t = strings.TrimSuffix(t, ")")
	parts := strings.Split(t, ",")
	if len(parts) != 3 {
		return Protocol{}, fmt.Errorf("core: protocol %q: want 3 comma-separated policies, got %d", s, len(parts))
	}
	ps, err := ParsePeerSelection(strings.TrimSpace(parts[0]))
	if err != nil {
		return Protocol{}, fmt.Errorf("core: protocol %q: %w", s, err)
	}
	vs, err := ParseViewSelection(strings.TrimSpace(parts[1]))
	if err != nil {
		return Protocol{}, fmt.Errorf("core: protocol %q: %w", s, err)
	}
	vp, err := ParsePropagation(strings.TrimSpace(parts[2]))
	if err != nil {
		return Protocol{}, fmt.Errorf("core: protocol %q: %w", s, err)
	}
	return Protocol{PeerSel: ps, ViewSel: vs, Prop: vp}, nil
}

// AllProtocols returns the full 27-element design space in a fixed order
// (peer selection varying slowest, propagation fastest).
func AllProtocols() []Protocol {
	out := make([]Protocol, 0, 27)
	for _, ps := range []PeerSelection{PeerRand, PeerHead, PeerTail} {
		for _, vs := range []ViewSelection{ViewRand, ViewHead, ViewTail} {
			for _, vp := range []Propagation{Push, Pull, PushPull} {
				out = append(out, Protocol{PeerSel: ps, ViewSel: vs, Prop: vp})
			}
		}
	}
	return out
}

// StudiedProtocols returns the eight protocols retained by the paper after
// excluding (head,*,*), (*,tail,*) and (*,*,pull) (Section 4.3), in the
// order used by the paper's figures: push variants first within each view
// selection group.
func StudiedProtocols() []Protocol {
	out := make([]Protocol, 0, 8)
	for _, vs := range []ViewSelection{ViewRand, ViewHead} {
		for _, ps := range []PeerSelection{PeerRand, PeerTail} {
			for _, vp := range []Propagation{Push, PushPull} {
				out = append(out, Protocol{PeerSel: ps, ViewSel: vs, Prop: vp})
			}
		}
	}
	return out
}

// Excluded reports whether the paper's Section 4.3 preliminary experiments
// ruled the protocol out, together with the reason: (head,*,*) suffers
// severe clustering, (*,tail,*) cannot absorb joining nodes, and (*,*,pull)
// collapses to a star topology.
func (p Protocol) Excluded() (bool, string) {
	switch {
	case p.PeerSel == PeerHead:
		return true, "head peer selection causes severe clustering"
	case p.ViewSel == ViewTail:
		return true, "tail view selection cannot handle joining nodes"
	case p.Prop == Pull:
		return true, "pull-only propagation converges to a star topology"
	default:
		return false, ""
	}
}
