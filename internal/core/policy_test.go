package core

import (
	"strings"
	"testing"
)

func TestPeerSelectionStrings(t *testing.T) {
	cases := map[PeerSelection]string{PeerRand: "rand", PeerHead: "head", PeerTail: "tail"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q want %q", p, p.String(), want)
		}
		got, err := ParsePeerSelection(want)
		if err != nil || got != p {
			t.Errorf("ParsePeerSelection(%q) = %v,%v want %v", want, got, err, p)
		}
		if !p.Valid() {
			t.Errorf("%v.Valid() = false", p)
		}
	}
	if PeerSelection(0).Valid() || PeerSelection(4).Valid() {
		t.Error("out-of-range PeerSelection reported valid")
	}
	if !strings.Contains(PeerSelection(9).String(), "9") {
		t.Error("unknown PeerSelection String not diagnostic")
	}
	if _, err := ParsePeerSelection("bogus"); err == nil {
		t.Error("ParsePeerSelection accepted bogus input")
	}
}

func TestViewSelectionStrings(t *testing.T) {
	cases := map[ViewSelection]string{ViewRand: "rand", ViewHead: "head", ViewTail: "tail"}
	for v, want := range cases {
		if v.String() != want {
			t.Errorf("%d.String() = %q want %q", v, v.String(), want)
		}
		got, err := ParseViewSelection(want)
		if err != nil || got != v {
			t.Errorf("ParseViewSelection(%q) = %v,%v want %v", want, got, err, v)
		}
		if !v.Valid() {
			t.Errorf("%v.Valid() = false", v)
		}
	}
	if ViewSelection(0).Valid() {
		t.Error("zero ViewSelection reported valid")
	}
	if _, err := ParseViewSelection(""); err == nil {
		t.Error("ParseViewSelection accepted empty input")
	}
	if !strings.Contains(ViewSelection(7).String(), "7") {
		t.Error("unknown ViewSelection String not diagnostic")
	}
}

func TestPropagationStrings(t *testing.T) {
	cases := map[Propagation]string{Push: "push", Pull: "pull", PushPull: "pushpull"}
	for p, want := range cases {
		if p.String() != want {
			t.Errorf("%d.String() = %q want %q", p, p.String(), want)
		}
		got, err := ParsePropagation(want)
		if err != nil || got != p {
			t.Errorf("ParsePropagation(%q) = %v,%v want %v", want, got, err, p)
		}
		if !p.Valid() {
			t.Errorf("%v.Valid() = false", p)
		}
	}
	if _, err := ParsePropagation("gossip"); err == nil {
		t.Error("ParsePropagation accepted bogus input")
	}
	if !strings.Contains(Propagation(8).String(), "8") {
		t.Error("unknown Propagation String not diagnostic")
	}
}

func TestPropagationSymmetry(t *testing.T) {
	if !Push.HasPush() || Push.HasPull() {
		t.Error("push flags wrong")
	}
	if Pull.HasPush() || !Pull.HasPull() {
		t.Error("pull flags wrong")
	}
	if !PushPull.HasPush() || !PushPull.HasPull() {
		t.Error("pushpull flags wrong")
	}
}
