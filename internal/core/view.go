package core

import (
	"fmt"
	"math/rand/v2"
	"strings"
)

// View is a partial view: a list of at most Cap descriptors, one per peer
// address, ordered by increasing hop count. The zero value is not usable;
// construct views with NewView.
//
// Invariants maintained by every method:
//
//   - len(items) <= capacity,
//   - addresses are unique,
//   - items are sorted by non-decreasing hop count,
//   - the owner's own address never appears (enforced by Node, which is
//     the only writer in normal operation).
type View[A comparable] struct {
	items    []Descriptor[A]
	capacity int

	// idxScratch is the reusable index permutation for random view
	// selection, so steady-state truncation does not allocate.
	idxScratch []int
}

// NewView returns an empty view that holds at most capacity descriptors.
// It panics if capacity is not positive: a view of size zero cannot name
// any peer and would make the sampling service vacuous.
func NewView[A comparable](capacity int) *View[A] {
	if capacity <= 0 {
		panic(fmt.Sprintf("core: view capacity must be positive, got %d", capacity))
	}
	return &View[A]{
		items:    make([]Descriptor[A], 0, capacity),
		capacity: capacity,
	}
}

// Cap returns the maximum number of descriptors the view may hold (the
// protocol parameter c).
func (v *View[A]) Cap() int { return v.capacity }

// Len returns the current number of descriptors.
func (v *View[A]) Len() int { return len(v.items) }

// At returns the i-th descriptor in hop-count order (0 is the head, the
// freshest entry).
func (v *View[A]) At(i int) Descriptor[A] { return v.items[i] }

// Descriptors returns a copy of the view contents in hop-count order.
// Callers may freely mutate the returned slice.
func (v *View[A]) Descriptors() []Descriptor[A] {
	out := make([]Descriptor[A], len(v.items))
	copy(out, v.items)
	return out
}

// Addresses returns the peer addresses currently in the view, in hop-count
// order.
func (v *View[A]) Addresses() []A {
	out := make([]A, len(v.items))
	for i := range v.items {
		out[i] = v.items[i].Addr
	}
	return out
}

// Contains reports whether the view holds a descriptor for addr.
func (v *View[A]) Contains(addr A) bool { return containsAddr(v.items, addr) }

// HopOf returns the hop count recorded for addr and whether the address is
// present.
func (v *View[A]) HopOf(addr A) (int32, bool) {
	for i := range v.items {
		if v.items[i].Addr == addr {
			return v.items[i].Hop, true
		}
	}
	return 0, false
}

// Remove deletes the descriptor for addr if present and reports whether a
// deletion happened.
func (v *View[A]) Remove(addr A) bool {
	n := len(v.items)
	v.items = dropAddr(v.items, addr)
	return len(v.items) < n
}

// SetAll replaces the view contents with the given descriptors. The input
// is copied, deduplicated (lowest hop count wins) and sorted by hop count;
// at most Cap entries are kept, preferring the freshest ones. SetAll is
// intended for bootstrap: steady-state updates go through Node.
func (v *View[A]) SetAll(descriptors []Descriptor[A]) {
	buf := make([]Descriptor[A], len(descriptors))
	copy(buf, descriptors)
	SortByHop(buf)
	// Deduplicate after sorting: the first occurrence has the lowest hop.
	out := buf[:0]
	for _, d := range buf {
		if !containsAddr(out, d.Addr) {
			out = append(out, d)
		}
	}
	if len(out) > v.capacity {
		out = out[:v.capacity]
	}
	v.items = append(v.items[:0], out...)
}

// Age increments the hop count of every descriptor in the view by one.
// Nodes call this once per cycle: Figure 1 of the paper increments hop
// counts only on message receipt, but a literal reading freezes the
// overlay under head view selection (resident descriptors would stay
// fresh forever), so — following the authors' reference framework in the
// TOCS 2007 follow-up, where every cycle ends with view.increaseAge() —
// resident descriptors age between exchanges as well.
func (v *View[A]) Age() {
	IncreaseHop(v.items)
}

// Clone returns an independent deep copy of the view.
func (v *View[A]) Clone() *View[A] {
	c := NewView[A](v.capacity)
	c.items = append(c.items, v.items...)
	return c
}

// String renders the view as "[a@0 b@2 ...]".
func (v *View[A]) String() string {
	parts := make([]string, len(v.items))
	for i, d := range v.items {
		parts[i] = d.String()
	}
	return "[" + strings.Join(parts, " ") + "]"
}

// selectInto truncates buffer to at most capacity entries according to the
// view selection policy and installs the result as the view contents. The
// buffer must be hop-ordered and duplicate-free; it is consumed (the view
// may alias its backing array afterwards).
func (v *View[A]) selectInto(policy ViewSelection, buffer []Descriptor[A], rng *rand.Rand) {
	if len(buffer) > v.capacity {
		switch policy {
		case ViewHead:
			buffer = buffer[:v.capacity]
		case ViewTail:
			buffer = buffer[len(buffer)-v.capacity:]
		case ViewRand:
			if cap(v.idxScratch) < len(buffer) {
				v.idxScratch = make([]int, len(buffer))
			}
			v.items = sampleOrderedInto(v.items[:0], v.idxScratch[:len(buffer)], buffer, v.capacity, rng)
			return
		default:
			panic(fmt.Sprintf("core: invalid view selection policy %d", policy))
		}
	}
	v.items = append(v.items[:0], buffer...)
}

// sampleOrdered returns k elements of buf chosen uniformly at random
// without replacement, preserving their original (hop) order. It uses a
// partial Fisher-Yates over an index permutation so the input slice is
// left untouched.
func sampleOrdered[A comparable](buf []Descriptor[A], k int, rng *rand.Rand) []Descriptor[A] {
	return sampleOrderedInto(make([]Descriptor[A], 0, k), make([]int, len(buf)), buf, k, rng)
}

// sampleOrderedInto is sampleOrdered appending the chosen descriptors to
// dst, using idx (len(buf) entries) as the permutation scratch; neither
// may alias buf. Factoring the scratch out lets the view's steady-state
// random truncation run without allocating.
func sampleOrderedInto[A comparable](dst []Descriptor[A], idx []int, buf []Descriptor[A], k int, rng *rand.Rand) []Descriptor[A] {
	n := len(buf)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	chosen := idx[:k]
	// Restore hop order by sorting the selected indices.
	for i := 1; i < len(chosen); i++ {
		for j := i; j > 0 && chosen[j] < chosen[j-1]; j-- {
			chosen[j], chosen[j-1] = chosen[j-1], chosen[j]
		}
	}
	for _, ix := range chosen {
		dst = append(dst, buf[ix])
	}
	return dst
}
