package core

import (
	"testing"
)

func TestProtocolString(t *testing.T) {
	if got, want := Newscast.String(), "(rand,head,pushpull)"; got != want {
		t.Errorf("Newscast.String() = %q want %q", got, want)
	}
	if got, want := Lpbcast.String(), "(rand,rand,push)"; got != want {
		t.Errorf("Lpbcast.String() = %q want %q", got, want)
	}
}

func TestParseProtocolRoundTrip(t *testing.T) {
	for _, p := range AllProtocols() {
		got, err := ParseProtocol(p.String())
		if err != nil {
			t.Fatalf("ParseProtocol(%q): %v", p.String(), err)
		}
		if got != p {
			t.Errorf("round trip %v -> %v", p, got)
		}
	}
}

func TestParseProtocolLenient(t *testing.T) {
	for _, s := range []string{"tail,head,push", "( tail , head , push )", " (tail,head,push)"} {
		p, err := ParseProtocol(s)
		if err != nil {
			t.Fatalf("ParseProtocol(%q): %v", s, err)
		}
		want := Protocol{PeerSel: PeerTail, ViewSel: ViewHead, Prop: Push}
		if p != want {
			t.Errorf("ParseProtocol(%q) = %v want %v", s, p, want)
		}
	}
}

func TestParseProtocolErrors(t *testing.T) {
	for _, s := range []string{"", "rand,head", "rand,head,push,push", "x,head,push", "rand,y,push", "rand,head,z"} {
		if _, err := ParseProtocol(s); err == nil {
			t.Errorf("ParseProtocol(%q) succeeded, want error", s)
		}
	}
}

func TestAllProtocols(t *testing.T) {
	all := AllProtocols()
	if len(all) != 27 {
		t.Fatalf("len = %d want 27", len(all))
	}
	seen := map[Protocol]bool{}
	for _, p := range all {
		if !p.Valid() {
			t.Errorf("invalid protocol %v", p)
		}
		if seen[p] {
			t.Errorf("duplicate protocol %v", p)
		}
		seen[p] = true
	}
}

func TestStudiedProtocols(t *testing.T) {
	studied := StudiedProtocols()
	if len(studied) != 8 {
		t.Fatalf("len = %d want 8", len(studied))
	}
	for _, p := range studied {
		if excluded, why := p.Excluded(); excluded {
			t.Errorf("studied protocol %v is excluded: %s", p, why)
		}
	}
	if studied[0].ViewSel != ViewRand || studied[len(studied)-1].ViewSel != ViewHead {
		t.Error("unexpected ordering of studied protocols")
	}
}

func TestExclusionRules(t *testing.T) {
	excludedCount := 0
	for _, p := range AllProtocols() {
		excluded, why := p.Excluded()
		if excluded {
			excludedCount++
			if why == "" {
				t.Errorf("%v excluded without reason", p)
			}
		}
	}
	if excludedCount != 27-8 {
		t.Errorf("excluded %d protocols, want 19", excludedCount)
	}
	if ex, _ := (Protocol{PeerHead, ViewHead, PushPull}).Excluded(); !ex {
		t.Error("(head,head,pushpull) should be excluded")
	}
	if ex, _ := (Protocol{PeerRand, ViewTail, PushPull}).Excluded(); !ex {
		t.Error("(rand,tail,pushpull) should be excluded")
	}
	if ex, _ := (Protocol{PeerRand, ViewHead, Pull}).Excluded(); !ex {
		t.Error("(rand,head,pull) should be excluded")
	}
}

func TestProtocolValid(t *testing.T) {
	if (Protocol{}).Valid() {
		t.Error("zero protocol reported valid")
	}
	if !Newscast.Valid() {
		t.Error("Newscast reported invalid")
	}
}
