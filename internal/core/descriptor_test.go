package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func descs(pairs ...int32) []Descriptor[int32] {
	if len(pairs)%2 != 0 {
		panic("descs: want addr,hop pairs")
	}
	out := make([]Descriptor[int32], 0, len(pairs)/2)
	for i := 0; i < len(pairs); i += 2 {
		out = append(out, Descriptor[int32]{Addr: pairs[i], Hop: pairs[i+1]})
	}
	return out
}

func TestIncreaseHop(t *testing.T) {
	buf := descs(1, 0, 2, 5, 3, 7)
	IncreaseHop(buf)
	want := descs(1, 1, 2, 6, 3, 8)
	if len(buf) != len(want) {
		t.Fatalf("length changed: got %d want %d", len(buf), len(want))
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Errorf("entry %d: got %v want %v", i, buf[i], want[i])
		}
	}
}

func TestIncreaseHopEmpty(t *testing.T) {
	IncreaseHop[int32](nil) // must not panic
}

func TestSortByHopStable(t *testing.T) {
	buf := descs(5, 2, 1, 0, 4, 2, 2, 1, 3, 2)
	SortByHop(buf)
	want := descs(1, 0, 2, 1, 5, 2, 4, 2, 3, 2)
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("entry %d: got %v want %v (full: %v)", i, buf[i], want[i], buf)
		}
	}
}

func TestMergeDisjoint(t *testing.T) {
	a := descs(1, 0, 2, 3)
	b := descs(3, 1, 4, 5)
	got := Merge(a, b)
	want := descs(1, 0, 3, 1, 2, 3, 4, 5)
	if len(got) != len(want) {
		t.Fatalf("got %v want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("entry %d: got %v want %v", i, got[i], want[i])
		}
	}
}

func TestMergeLowestHopWins(t *testing.T) {
	a := descs(7, 4)
	b := descs(7, 2)
	got := Merge(a, b)
	if len(got) != 1 || got[0] != (Descriptor[int32]{Addr: 7, Hop: 2}) {
		t.Fatalf("got %v, want single 7@2", got)
	}
	// And symmetrically when the first list holds the fresher copy.
	got = Merge(b, a)
	if len(got) != 1 || got[0] != (Descriptor[int32]{Addr: 7, Hop: 2}) {
		t.Fatalf("got %v, want single 7@2", got)
	}
}

func TestMergeTieFavorsFirst(t *testing.T) {
	// Same address, same hop: indistinguishable. Different addresses with
	// equal hops: the first list's entries must come first (stability).
	a := descs(1, 3)
	b := descs(2, 3)
	got := Merge(a, b)
	want := descs(1, 3, 2, 3)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got %v want %v", got, want)
		}
	}
}

func TestMergeEmpty(t *testing.T) {
	a := descs(1, 1)
	if got := Merge(a, nil); len(got) != 1 || got[0] != a[0] {
		t.Fatalf("merge with nil second: got %v", got)
	}
	if got := Merge(nil, a); len(got) != 1 || got[0] != a[0] {
		t.Fatalf("merge with nil first: got %v", got)
	}
	if got := Merge[int32](nil, nil); len(got) != 0 {
		t.Fatalf("merge of nils: got %v", got)
	}
}

func TestMergeDoesNotAliasInputs(t *testing.T) {
	a := descs(1, 0, 2, 1)
	b := descs(3, 2)
	got := Merge(a, b)
	got[0].Hop = 99
	if a[0].Hop != 0 {
		t.Fatal("merge result aliases its first input")
	}
}

// randomSortedView builds a hop-sorted, duplicate-free descriptor list
// from fuzz input.
func randomSortedView(addrs []uint16, hops []uint8) []Descriptor[int32] {
	out := make([]Descriptor[int32], 0, len(addrs))
	for i, a := range addrs {
		var hop int32
		if i < len(hops) {
			hop = int32(hops[i] % 16)
		}
		d := Descriptor[int32]{Addr: int32(a % 64), Hop: hop}
		if !containsAddr(out, d.Addr) {
			out = append(out, d)
		}
	}
	SortByHop(out)
	return out
}

func TestMergePropertyUnion(t *testing.T) {
	f := func(addrsA, addrsB []uint16, hopsA, hopsB []uint8) bool {
		a := randomSortedView(addrsA, hopsA)
		b := randomSortedView(addrsB, hopsB)
		m := Merge(a, b)
		// Sorted by hop.
		for i := 1; i < len(m); i++ {
			if m[i].Hop < m[i-1].Hop {
				return false
			}
		}
		// Unique addresses, and each has the minimum hop of its sources.
		seen := map[int32]bool{}
		for _, d := range m {
			if seen[d.Addr] {
				return false
			}
			seen[d.Addr] = true
			want := int32(1 << 30)
			for _, src := range [][]Descriptor[int32]{a, b} {
				for _, s := range src {
					if s.Addr == d.Addr && s.Hop < want {
						want = s.Hop
					}
				}
			}
			if d.Hop != want {
				return false
			}
		}
		// Every source address appears.
		for _, src := range [][]Descriptor[int32]{a, b} {
			for _, s := range src {
				if !seen[s.Addr] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSetCommutativity(t *testing.T) {
	// As address sets (with minimal hops), merge is commutative even
	// though the order of equal-hop entries is not.
	f := func(addrsA, addrsB []uint16, hopsA, hopsB []uint8) bool {
		a := randomSortedView(addrsA, hopsA)
		b := randomSortedView(addrsB, hopsB)
		ab := Merge(a, b)
		ba := Merge(b, a)
		if len(ab) != len(ba) {
			return false
		}
		m := map[int32]int32{}
		for _, d := range ab {
			m[d.Addr] = d.Hop
		}
		for _, d := range ba {
			if h, ok := m[d.Addr]; !ok || h != d.Hop {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeIdempotent(t *testing.T) {
	f := func(addrs []uint16, hops []uint8) bool {
		a := randomSortedView(addrs, hops)
		m := Merge(a, a)
		if len(m) != len(a) {
			return false
		}
		for i := range a {
			if m[i] != a[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestDropAddr(t *testing.T) {
	buf := descs(1, 0, 2, 1, 3, 2)
	buf = dropAddr(buf, 2)
	want := descs(1, 0, 3, 2)
	if len(buf) != len(want) {
		t.Fatalf("got %v want %v", buf, want)
	}
	for i := range want {
		if buf[i] != want[i] {
			t.Fatalf("got %v want %v", buf, want)
		}
	}
	if got := dropAddr(buf, 99); len(got) != 2 {
		t.Fatalf("dropping absent addr changed slice: %v", got)
	}
}

func TestSampleOrderedProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	f := func(addrs []uint16, hops []uint8, kRaw uint8) bool {
		buf := randomSortedView(addrs, hops)
		if len(buf) == 0 {
			return true
		}
		k := int(kRaw)%len(buf) + 1
		got := sampleOrdered(buf, k, rng)
		if len(got) != k {
			return false
		}
		// Subset of buf, order preserved (hop-sorted), no duplicates.
		for i := 1; i < len(got); i++ {
			if got[i].Hop < got[i-1].Hop {
				return false
			}
		}
		seen := map[int32]bool{}
		for _, d := range got {
			if seen[d.Addr] {
				return false
			}
			seen[d.Addr] = true
			if !containsAddr(buf, d.Addr) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestSampleOrderedUniform(t *testing.T) {
	// Drawing 1 element from 4 must be close to uniform.
	rng := rand.New(rand.NewPCG(3, 4))
	buf := descs(0, 0, 1, 1, 2, 2, 3, 3)
	counts := make([]int, 4)
	const trials = 40000
	for i := 0; i < trials; i++ {
		got := sampleOrdered(buf, 1, rng)
		counts[got[0].Addr]++
	}
	for a, c := range counts {
		if c < trials/4-600 || c > trials/4+600 {
			t.Errorf("address %d drawn %d times, want ~%d", a, c, trials/4)
		}
	}
}
