package core

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestNewViewPanicsOnBadCapacity(t *testing.T) {
	for _, c := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewView(%d) did not panic", c)
				}
			}()
			NewView[int32](c)
		}()
	}
}

func TestViewSetAllSortsAndDedups(t *testing.T) {
	v := NewView[int32](4)
	v.SetAll(descs(3, 5, 1, 2, 3, 1, 2, 0))
	if v.Len() != 3 {
		t.Fatalf("len = %d want 3 (%v)", v.Len(), v)
	}
	want := descs(2, 0, 3, 1, 1, 2)
	for i := range want {
		if v.At(i) != want[i] {
			t.Errorf("At(%d) = %v want %v", i, v.At(i), want[i])
		}
	}
}

func TestViewSetAllTruncatesToFreshest(t *testing.T) {
	v := NewView[int32](2)
	v.SetAll(descs(1, 5, 2, 1, 3, 3))
	if v.Len() != 2 {
		t.Fatalf("len = %d want 2", v.Len())
	}
	if v.At(0) != (Descriptor[int32]{Addr: 2, Hop: 1}) || v.At(1) != (Descriptor[int32]{Addr: 3, Hop: 3}) {
		t.Fatalf("unexpected contents %v", v)
	}
}

func TestViewSetAllCopiesInput(t *testing.T) {
	v := NewView[int32](4)
	in := descs(1, 0)
	v.SetAll(in)
	in[0].Hop = 42
	if v.At(0).Hop != 0 {
		t.Fatal("SetAll aliased its input")
	}
}

func TestViewAccessors(t *testing.T) {
	v := NewView[int32](8)
	v.SetAll(descs(10, 1, 20, 2, 30, 3))
	if v.Cap() != 8 {
		t.Errorf("Cap = %d want 8", v.Cap())
	}
	if !v.Contains(20) || v.Contains(99) {
		t.Error("Contains wrong")
	}
	if h, ok := v.HopOf(30); !ok || h != 3 {
		t.Errorf("HopOf(30) = %d,%v want 3,true", h, ok)
	}
	if _, ok := v.HopOf(99); ok {
		t.Error("HopOf(99) reported present")
	}
	addrs := v.Addresses()
	if len(addrs) != 3 || addrs[0] != 10 || addrs[2] != 30 {
		t.Errorf("Addresses = %v", addrs)
	}
	ds := v.Descriptors()
	ds[0].Hop = 99
	if v.At(0).Hop != 1 {
		t.Error("Descriptors did not copy")
	}
}

func TestViewRemove(t *testing.T) {
	v := NewView[int32](8)
	v.SetAll(descs(1, 1, 2, 2))
	if !v.Remove(1) {
		t.Fatal("Remove(1) = false")
	}
	if v.Remove(1) {
		t.Fatal("second Remove(1) = true")
	}
	if v.Len() != 1 || v.At(0).Addr != 2 {
		t.Fatalf("unexpected view %v", v)
	}
}

func TestViewClone(t *testing.T) {
	v := NewView[int32](4)
	v.SetAll(descs(1, 1))
	c := v.Clone()
	c.Remove(1)
	if v.Len() != 1 {
		t.Fatal("clone shares state with original")
	}
}

func TestViewString(t *testing.T) {
	v := NewView[int32](4)
	v.SetAll(descs(1, 0, 2, 3))
	if got, want := v.String(), "[1@0 2@3]"; got != want {
		t.Errorf("String = %q want %q", got, want)
	}
}

func TestSelectIntoHeadTail(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	buffer := descs(1, 0, 2, 1, 3, 2, 4, 3, 5, 4)

	v := NewView[int32](3)
	v.selectInto(ViewHead, append([]Descriptor[int32](nil), buffer...), rng)
	if v.Len() != 3 || v.At(0).Addr != 1 || v.At(2).Addr != 3 {
		t.Errorf("head selection got %v", v)
	}

	v = NewView[int32](3)
	v.selectInto(ViewTail, append([]Descriptor[int32](nil), buffer...), rng)
	if v.Len() != 3 || v.At(0).Addr != 3 || v.At(2).Addr != 5 {
		t.Errorf("tail selection got %v", v)
	}

	v = NewView[int32](3)
	v.selectInto(ViewRand, append([]Descriptor[int32](nil), buffer...), rng)
	if v.Len() != 3 {
		t.Errorf("rand selection kept %d items", v.Len())
	}
	for i := 1; i < v.Len(); i++ {
		if v.At(i).Hop < v.At(i-1).Hop {
			t.Errorf("rand selection broke hop order: %v", v)
		}
	}
}

func TestSelectIntoNoTruncationNeeded(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	for _, pol := range []ViewSelection{ViewRand, ViewHead, ViewTail} {
		v := NewView[int32](5)
		v.selectInto(pol, descs(1, 0, 2, 1), rng)
		if v.Len() != 2 || v.At(0).Addr != 1 || v.At(1).Addr != 2 {
			t.Errorf("%v: got %v", pol, v)
		}
	}
}

func TestSelectIntoInvalidPolicyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid policy did not panic")
		}
	}()
	v := NewView[int32](1)
	v.selectInto(ViewSelection(0), descs(1, 0, 2, 1), rand.New(rand.NewPCG(1, 1)))
}

func TestViewInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	f := func(addrs []uint16, hops []uint8, capRaw uint8, polRaw uint8) bool {
		capacity := int(capRaw)%8 + 1
		pol := []ViewSelection{ViewRand, ViewHead, ViewTail}[int(polRaw)%3]
		buffer := randomSortedView(addrs, hops)
		v := NewView[int32](capacity)
		v.selectInto(pol, buffer, rng)
		if v.Len() > capacity {
			return false
		}
		seen := map[int32]bool{}
		for i := 0; i < v.Len(); i++ {
			d := v.At(i)
			if seen[d.Addr] {
				return false
			}
			seen[d.Addr] = true
			if i > 0 && d.Hop < v.At(i-1).Hop {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}
