package core

import "fmt"

// PeerSelection determines which view entry a node gossips with in each
// cycle (the selectPeer() placeholder of the protocol skeleton).
type PeerSelection uint8

// Peer selection policies. Head selects the entry with the lowest hop
// count (the freshest), tail the one with the highest.
const (
	PeerRand PeerSelection = iota + 1
	PeerHead
	PeerTail
)

// String returns the paper's name for the policy (rand, head, tail).
func (p PeerSelection) String() string {
	switch p {
	case PeerRand:
		return "rand"
	case PeerHead:
		return "head"
	case PeerTail:
		return "tail"
	default:
		return fmt.Sprintf("PeerSelection(%d)", uint8(p))
	}
}

// Valid reports whether p is one of the three defined policies.
func (p PeerSelection) Valid() bool { return p >= PeerRand && p <= PeerTail }

// ParsePeerSelection parses "rand", "head" or "tail".
func ParsePeerSelection(s string) (PeerSelection, error) {
	switch s {
	case "rand":
		return PeerRand, nil
	case "head":
		return PeerHead, nil
	case "tail":
		return PeerTail, nil
	default:
		return 0, fmt.Errorf("core: unknown peer selection policy %q", s)
	}
}

// ViewSelection determines how the merged buffer is truncated back to c
// entries (the selectView() placeholder of the protocol skeleton).
type ViewSelection uint8

// View selection policies. Head keeps the c freshest descriptors, tail the
// c oldest, rand a uniform sample without replacement.
const (
	ViewRand ViewSelection = iota + 1
	ViewHead
	ViewTail
)

// String returns the paper's name for the policy (rand, head, tail).
func (v ViewSelection) String() string {
	switch v {
	case ViewRand:
		return "rand"
	case ViewHead:
		return "head"
	case ViewTail:
		return "tail"
	default:
		return fmt.Sprintf("ViewSelection(%d)", uint8(v))
	}
}

// Valid reports whether v is one of the three defined policies.
func (v ViewSelection) Valid() bool { return v >= ViewRand && v <= ViewTail }

// ParseViewSelection parses "rand", "head" or "tail".
func ParseViewSelection(s string) (ViewSelection, error) {
	switch s {
	case "rand":
		return ViewRand, nil
	case "head":
		return ViewHead, nil
	case "tail":
		return ViewTail, nil
	default:
		return 0, fmt.Errorf("core: unknown view selection policy %q", s)
	}
}

// Propagation determines the symmetry of an exchange: push ships the
// initiator's view to the peer, pull requests the peer's view, pushpull
// does both.
type Propagation uint8

// View propagation policies.
const (
	Push Propagation = iota + 1
	Pull
	PushPull
)

// String returns the paper's name for the policy (push, pull, pushpull).
func (p Propagation) String() string {
	switch p {
	case Push:
		return "push"
	case Pull:
		return "pull"
	case PushPull:
		return "pushpull"
	default:
		return fmt.Sprintf("Propagation(%d)", uint8(p))
	}
}

// Valid reports whether p is one of the three defined policies.
func (p Propagation) Valid() bool { return p >= Push && p <= PushPull }

// ParsePropagation parses "push", "pull" or "pushpull".
func ParsePropagation(s string) (Propagation, error) {
	switch s {
	case "push":
		return Push, nil
	case "pull":
		return Pull, nil
	case "pushpull":
		return PushPull, nil
	default:
		return 0, fmt.Errorf("core: unknown propagation policy %q", s)
	}
}

// HasPush reports whether the initiator ships its view.
func (p Propagation) HasPush() bool { return p == Push || p == PushPull }

// HasPull reports whether the initiator expects the peer's view back.
func (p Propagation) HasPull() bool { return p == Pull || p == PushPull }
