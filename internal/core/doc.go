// Package core implements the generic gossip-based peer sampling protocol
// skeleton of Jelasity, Guerraoui, Kermarrec and van Steen, "The Peer
// Sampling Service: Experimental Evaluation of Unstructured Gossip-Based
// Implementations" (Middleware 2004), Figure 1.
//
// Every participating node maintains a partial view: an ordered list of at
// most c node descriptors, where a descriptor pairs a peer address with a
// hop count recording the age of the information. Views are kept ordered by
// increasing hop count, so the head of a view holds the freshest
// descriptors and the tail the oldest ones.
//
// The protocol skeleton is parameterised along three dimensions:
//
//   - peer selection: which view entry to gossip with (rand, head, tail),
//   - view propagation: who ships its view during an exchange (push, pull,
//     pushpull),
//   - view selection: how the merged buffer is truncated back to c entries
//     (rand, head, tail).
//
// The 3 x 3 x 3 = 27 combinations are all expressible; the paper's named
// instances are Lpbcast = (rand,rand,push) and Newscast =
// (rand,head,pushpull).
//
// The package is deliberately free of any I/O or scheduling concerns: a
// Node is a pure state machine over an abstract comparable address type.
// The cycle-based simulator (internal/sim) instantiates it with dense
// integer indices, while the asynchronous runtime (internal/runtime)
// instantiates it with network addresses.
package core
