package scenario

import (
	"strings"
	"testing"

	"peersampling/internal/core"
)

func TestRunTable1Shape(t *testing.T) {
	res := RunTable1(tiny, 1)
	if res.ID() != "table1" {
		t.Error("wrong ID")
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d want 4", len(res.Rows))
	}
	for _, r := range res.Rows {
		if r.Runs != tiny.Reps {
			t.Errorf("%v runs = %d want %d", r.Protocol, r.Runs, tiny.Reps)
		}
		if r.Protocol.Prop != core.Push {
			t.Errorf("non-push protocol %v in Table 1", r.Protocol)
		}
		if r.PartitionedRuns > 0 && (r.AvgClusters < 2 || r.AvgLargest <= 0) {
			t.Errorf("inconsistent partitioned stats: %+v", r)
		}
		if r.PartitionedRuns == 0 && (r.AvgClusters != 0 || r.AvgLargest != 0) {
			t.Errorf("phantom cluster stats: %+v", r)
		}
	}
	out := res.Render()
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "(rand,head,push)") {
		t.Errorf("render missing content:\n%s", out)
	}
}

func TestRunFigure2Shape(t *testing.T) {
	res := RunFigure2(tiny, 2)
	if res.ID() != "figure2" {
		t.Error("wrong ID")
	}
	if len(res.Dynamics) != 6 || len(res.Connected) != 6 {
		t.Fatalf("dynamics = %d want 6", len(res.Dynamics))
	}
	for i, d := range res.Dynamics {
		if len(d.Observations) == 0 {
			t.Fatalf("protocol %v has no observations", d.Protocol)
		}
		last := d.Observations[len(d.Observations)-1]
		if last.LiveNodes != tiny.N {
			t.Errorf("%v final population = %d want %d", d.Protocol, last.LiveNodes, tiny.N)
		}
		// Pushpull runs are connected on the first attempt per the paper;
		// at minimum the flag must be consistent with observations.
		if d.Protocol.Prop == core.PushPull && !res.Connected[i] {
			t.Errorf("pushpull run %v not connected", d.Protocol)
		}
	}
	out := res.Render()
	for _, want := range []string{"Figure 2", "clustering", "avgdegree", "pathlen"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

func TestRunFigure3Shape(t *testing.T) {
	res := RunFigure3(tiny, 3)
	if res.ID() != "figure3" {
		t.Error("wrong ID")
	}
	if len(res.Lattice) != 8 || len(res.Random) != 8 {
		t.Fatalf("got %d lattice, %d random traces", len(res.Lattice), len(res.Random))
	}
	// Convergence from wildly different starts: the converged clustering
	// coefficient of each protocol must be close under both
	// initialisations (the paper's self-organisation result).
	for i := range res.Lattice {
		lat := res.Lattice[i].SeriesOf("clustering").ConvergedValue(0.3)
		rnd := res.Random[i].SeriesOf("clustering").ConvergedValue(0.3)
		diff := lat - rnd
		if diff < 0 {
			diff = -diff
		}
		avg := (lat + rnd) / 2
		if avg > 0 && diff/avg > 0.6 {
			t.Errorf("%v converged clustering differs: lattice %v vs random %v",
				res.Lattice[i].Protocol, lat, rnd)
		}
	}
	// The lattice starts with a path length far above converged; it must
	// have dropped dramatically by the end (rapid convergence, Fig 3a).
	for _, d := range res.Lattice {
		s := d.SeriesOf("pathlen")
		if s.Values[0] <= s.Values[s.Len()-1] {
			t.Errorf("%v lattice path length did not shrink: %v -> %v",
				d.Protocol, s.Values[0], s.Values[s.Len()-1])
		}
	}
	if !strings.Contains(res.Render(), "lattice initialisation") {
		t.Error("render missing lattice section")
	}
}

func TestRunFigure4Shape(t *testing.T) {
	res := RunFigure4(tiny, 4)
	if res.ID() != "figure4" {
		t.Error("wrong ID")
	}
	if len(res.Snapshots) != 8 {
		t.Fatalf("snapshots for %d protocols want 8", len(res.Snapshots))
	}
	if res.Cycles[0] != 0 || res.Cycles[len(res.Cycles)-1] != tiny.Cycles {
		t.Errorf("snapshot cycles = %v", res.Cycles)
	}
	for i, proto := range res.Protocols {
		for _, snap := range res.Snapshots[i] {
			if snap.Table.Total() != tiny.N {
				t.Errorf("%v cycle %d tallied %d nodes want %d", proto, snap.Cycle, snap.Table.Total(), tiny.N)
			}
		}
	}
	// Shape: random view selection yields a heavier degree tail than head
	// view selection at the final cycle. Compare (rand,rand,pushpull)
	// vs (rand,head,pushpull) max degree.
	maxOf := func(p core.Protocol) int {
		for i, proto := range res.Protocols {
			if proto == p {
				tbl := res.Snapshots[i][len(res.Snapshots[i])-1].Table
				return tbl.Values[len(tbl.Values)-1]
			}
		}
		t.Fatalf("protocol %v missing", p)
		return 0
	}
	randMax := maxOf(core.Protocol{PeerSel: core.PeerRand, ViewSel: core.ViewRand, Prop: core.PushPull})
	headMax := maxOf(core.Newscast)
	if randMax <= headMax {
		t.Errorf("rand view selection max degree %d not above head %d", randMax, headMax)
	}
	if !strings.Contains(res.Render(), "tail>2c") {
		t.Error("render missing tail column")
	}
}

func TestRunTable2Shape(t *testing.T) {
	res := RunTable2(tiny, 5)
	if res.ID() != "table2" {
		t.Error("wrong ID")
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d want 8", len(res.Rows))
	}
	var randStd, headStd float64
	randN, headN := 0, 0
	for _, r := range res.Rows {
		// All nodes oscillate around the average: the mean of time-means
		// must be within a few degrees of the final overlay average.
		diff := r.DK - r.MeanOfMeans
		if diff < 0 {
			diff = -diff
		}
		if diff > r.DK/2 {
			t.Errorf("%v: D_K %v far from dbar %v", r.Protocol, r.DK, r.MeanOfMeans)
		}
		switch r.Protocol.ViewSel {
		case core.ViewRand:
			randStd += r.StdOfMeans
			randN++
		case core.ViewHead:
			headStd += r.StdOfMeans
			headN++
		}
	}
	// The paper's key Table 2 observation: random view selection yields
	// much larger variance of per-node mean degree than head.
	if randStd/float64(randN) <= headStd/float64(headN) {
		t.Errorf("rand view selection std %v not above head %v", randStd/float64(randN), headStd/float64(headN))
	}
	if !strings.Contains(res.Render(), "sqrt(sigma)") {
		t.Error("render missing header")
	}
}

func TestRunFigure5Shape(t *testing.T) {
	res := RunFigure5(tiny, 6)
	if res.ID() != "figure5" {
		t.Error("wrong ID")
	}
	if len(res.Results) != 4 {
		t.Fatalf("results = %d want 4", len(res.Results))
	}
	if res.Band <= 0 || res.MaxLag <= 0 {
		t.Errorf("band %v maxlag %d", res.Band, res.MaxLag)
	}
	for _, r := range res.Results {
		if len(r.Lags) != res.MaxLag+1 {
			t.Fatalf("%v lag count = %d want %d", r.Protocol, len(r.Lags), res.MaxLag+1)
		}
		if r.Lags[0] < 0.999 {
			t.Errorf("%v r0 = %v want 1", r.Protocol, r.Lags[0])
		}
		if r.OutsideBand < 0 || r.OutsideBand > 1 {
			t.Errorf("%v outside-band fraction = %v", r.Protocol, r.OutsideBand)
		}
	}
	// Shape: (rand,rand,*) series are much more autocorrelated at small
	// lags than (rand,head,*) ones.
	get := func(vs core.ViewSelection, prop core.Propagation) AutocorrResult {
		for _, r := range res.Results {
			if r.Protocol.ViewSel == vs && r.Protocol.Prop == prop {
				return r
			}
		}
		t.Fatal("protocol missing")
		return AutocorrResult{}
	}
	if get(core.ViewRand, core.PushPull).Lags[1] <= get(core.ViewHead, core.PushPull).Lags[1] {
		t.Errorf("lag-1 autocorrelation: rand %v not above head %v",
			get(core.ViewRand, core.PushPull).Lags[1], get(core.ViewHead, core.PushPull).Lags[1])
	}
	if !strings.Contains(res.Render(), "99% band") {
		t.Error("render missing band")
	}
}

func TestRunFigure6Shape(t *testing.T) {
	res := RunFigure6(tiny, 7)
	if res.ID() != "figure6" {
		t.Error("wrong ID")
	}
	if len(res.Protocols) != 8 {
		t.Fatalf("protocols = %d want 8", len(res.Protocols))
	}
	for _, pr := range res.Protocols {
		if len(pr.Points) != len(res.Percents) {
			t.Fatalf("%v has %d points want %d", pr.Protocol, len(pr.Points), len(res.Percents))
		}
		for _, pt := range pr.Points {
			if pt.AvgOutsideLargest < 0 {
				t.Errorf("negative damage %v", pt)
			}
		}
		// Consistent partitioning behaviour: at the low end of the sweep
		// (65% removed) a giant cluster holds almost all survivors (the
		// paper's core observation; at the extreme 95% end of a tiny
		// network the survivors are too few for the giant component to
		// dominate, so we assert at the first checkpoint).
		first := pr.Points[0]
		survivors := float64(tiny.N) * float64(100-first.RemovedPercent) / 100
		if first.AvgOutsideLargest > survivors/4 {
			t.Errorf("%v: too many nodes outside largest cluster at %d%%: %v of %v",
				pr.Protocol, first.RemovedPercent, first.AvgOutsideLargest, survivors)
		}
	}
	if !strings.Contains(res.Render(), "65%") {
		t.Error("render missing sweep start")
	}
}

func TestRunFigure7Shape(t *testing.T) {
	res := RunFigure7(tiny, 8)
	if res.ID() != "figure7" {
		t.Error("wrong ID")
	}
	if len(res.Protocols) != 8 {
		t.Fatalf("protocols = %d want 8", len(res.Protocols))
	}
	byProto := map[core.Protocol]Figure7Protocol{}
	for _, pr := range res.Protocols {
		byProto[pr.Protocol] = pr
		if len(pr.DeadLinks) != res.Horizon+1 {
			t.Fatalf("%v trace len = %d want %d", pr.Protocol, len(pr.DeadLinks), res.Horizon+1)
		}
		if pr.DeadLinks[0] == 0 {
			t.Errorf("%v has no dead links right after 50%% failure", pr.Protocol)
		}
		s := pr.DeadLinkSeries()
		if s.Len() != len(pr.DeadLinks) {
			t.Error("series length mismatch")
		}
	}
	// Shape: head view selection heals exponentially fast — it must be
	// fully clean well within the horizon; random view selection must
	// still carry dead links at the end (linear at best).
	headHeal := byProto[core.Newscast]
	if headHeal.CyclesToClean < 0 {
		t.Errorf("(rand,head,pushpull) never cleaned up within %d cycles", res.Horizon)
	}
	randHeal := byProto[core.Protocol{PeerSel: core.PeerRand, ViewSel: core.ViewRand, Prop: core.PushPull}]
	if last := randHeal.DeadLinks[len(randHeal.DeadLinks)-1]; last == 0 {
		t.Logf("note: (rand,rand,pushpull) cleaned all dead links at this scale")
	}
	if headHeal.CyclesToClean >= 0 && randHeal.CyclesToClean >= 0 &&
		headHeal.CyclesToClean > randHeal.CyclesToClean {
		t.Errorf("head healing (%d cycles) slower than rand (%d cycles)",
			headHeal.CyclesToClean, randHeal.CyclesToClean)
	}
	if !strings.Contains(res.Render(), "half-life") {
		t.Error("render missing half-life column")
	}
}

func TestRunExclusionShape(t *testing.T) {
	res := RunExclusion(tiny, 9)
	if res.ID() != "exclusion" {
		t.Error("wrong ID")
	}
	if res.HeadPeerChurn >= res.RandPeerChurn/2 {
		t.Errorf("(head,*,*) view churn %v not well below rand control %v",
			res.HeadPeerChurn, res.RandPeerChurn)
	}
	if res.TailInvisibleFraction <= res.HeadInvisibleFraction {
		t.Errorf("(*,tail,*) invisible fraction %v not above head control %v",
			res.TailInvisibleFraction, res.HeadInvisibleFraction)
	}
	if res.PullMaxDegreeFraction <= res.PushPullMaxDegreeFraction {
		t.Errorf("(*,*,pull) max degree fraction %v not above pushpull control %v",
			res.PullMaxDegreeFraction, res.PushPullMaxDegreeFraction)
	}
	out := res.Render()
	if strings.Contains(out, "NOT confirmed") {
		t.Errorf("exclusion study failed to confirm a claim:\n%s", out)
	}
}

func TestDynamicsSeriesOfUnknownMetricPanics(t *testing.T) {
	d := Dynamics{Protocol: core.Newscast} // no observations needed: metric is validated first
	defer func() {
		if recover() == nil {
			t.Fatal("unknown metric did not panic")
		}
	}()
	d.SeriesOf("bogus")
}
