package scenario

import (
	"fmt"
	"strings"
	"time"

	"peersampling/internal/core"
	"peersampling/internal/metrics"
	"peersampling/internal/runtime"
	"peersampling/internal/transport"
)

// The live bootstrap experiment is the runtime sibling of the simulator's
// growing scenario (Section 5.1): a cluster of real nodes over loopback
// TCP, every joiner initialised with a single contact — the first node —
// and left to gossip until each view holds every other member. Where the
// simulator measures the resulting topology, this experiment measures the
// deployment-facing questions: how long bootstrap convergence takes in
// real time, and what it costs on the wire. Timings are real-network
// nondeterministic; the invariants reported (full convergence, no failed
// exchanges against a healthy cluster being fatal) are not.

// liveBootstrapParams derives the live cluster's shape from a simulation
// Scale, the same way the hostile experiment does: small enough that every
// node can own a real listener.
type liveBootstrapParams struct {
	Nodes    int           // live cluster size
	ViewSize int           // view capacity, capped below cluster size
	Period   time.Duration // gossip period T
}

func liveBootstrapDerive(sc Scale) liveBootstrapParams {
	nodes := sc.N / 50
	if nodes < 8 {
		nodes = 8
	}
	if nodes > 24 {
		nodes = 24
	}
	view := sc.ViewSize
	if view > nodes-1 {
		view = nodes - 1
	}
	return liveBootstrapParams{
		Nodes:    nodes,
		ViewSize: view,
		Period:   20 * time.Millisecond,
	}
}

// LiveBootstrapResult reports convergence time and wire cost of
// bootstrapping a live cluster from a single contact.
type LiveBootstrapResult struct {
	Params liveBootstrapParams

	// CompleteViews counts nodes whose final view contains every other
	// member; convergence means all of them.
	CompleteViews int
	// ConvergeTime is the wall-clock time from starting the cluster until
	// every view was complete (or the bounded wait expired).
	ConvergeTime time.Duration
	// Cluster-wide totals over the run.
	Exchanges uint64
	Failures  uint64
	Served    uint64
	// Wire sums every node's transport counters; BytesOut across the
	// cluster is the total bootstrap traffic.
	Wire transport.Stats
}

// ID implements Result.
func (r *LiveBootstrapResult) ID() string { return "bootstrap" }

// Converged reports whether every node's view reached every other member.
func (r *LiveBootstrapResult) Converged() bool {
	return r.CompleteViews == r.Params.Nodes
}

// Render implements Result.
func (r *LiveBootstrapResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Live bootstrap: single-contact cluster convergence over loopback TCP\n")
	fmt.Fprintf(&b, "cluster: %d nodes, c=%d, T=%v, tcp backend, one contact node\n",
		r.Params.Nodes, r.Params.ViewSize, r.Params.Period)
	fmt.Fprintf(&b, "%-34s %10s\n", "", "value")
	fmt.Fprintf(&b, "%-34s %7d/%2d\n", "complete views", r.CompleteViews, r.Params.Nodes)
	fmt.Fprintf(&b, "%-34s %10v\n", "time to full views", r.ConvergeTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-34s %10d\n", "active exchanges completed", r.Exchanges)
	fmt.Fprintf(&b, "%-34s %10d\n", "exchanges failed", r.Failures)
	fmt.Fprintf(&b, "%-34s %10d\n", "passive exchanges served", r.Served)
	fmt.Fprintf(&b, "%-34s %10d\n", "connections dialed", r.Wire.Dials)
	fmt.Fprintf(&b, "%-34s %10d\n", "bytes on the wire (out)", r.Wire.BytesOut)
	fmt.Fprintf(&b, "converged: %v\n", r.Converged())
	return b.String()
}

// RunLiveBootstrap boots the cluster, waits (bounded) for every view to
// complete and reports totals. A non-nil collector gets every node
// registered as "nodeNN" before the cluster starts, so a scrape or dump
// attached by cmd/experiments observes the whole convergence transient.
// The seed drives protocol randomness only; socket timing is real.
func RunLiveBootstrap(sc Scale, seed uint64, coll *metrics.Collector) *LiveBootstrapResult {
	p := liveBootstrapDerive(sc)
	res := &LiveBootstrapResult{Params: p}

	nodes := make([]*runtime.Node, 0, p.Nodes)
	defer func() {
		for _, n := range nodes {
			_ = n.Close()
		}
	}()
	for i := 0; i < p.Nodes; i++ {
		factory, err := transport.NewFactory("tcp", "127.0.0.1:0")
		if err != nil {
			panic(err) // registry always knows "tcp"
		}
		n, err := runtime.New(runtime.Config{
			Protocol: core.Newscast,
			ViewSize: p.ViewSize,
			Period:   p.Period,
			Seed:     mix(seed, i),
		}, factory)
		if err != nil {
			panic(fmt.Sprintf("scenario: bootstrap cluster node %d: %v", i, err))
		}
		nodes = append(nodes, n)
		if coll != nil {
			coll.Register(fmt.Sprintf("node%02d", i), n)
		}
	}
	live := make(map[string]bool, p.Nodes)
	for _, n := range nodes {
		live[n.Addr()] = true
	}

	start := time.Now()
	contact := nodes[0]
	for i, n := range nodes {
		if i > 0 {
			_ = n.Init([]string{contact.Addr()})
		}
		_ = n.Start()
	}

	deadline := time.Now().Add(20 * p.Period * time.Duration(p.Nodes))
	for {
		complete := 0
		for _, n := range nodes {
			if countKnownPeers(n, live) == p.Nodes-1 {
				complete++
			}
		}
		res.CompleteViews = complete
		if complete == p.Nodes || time.Now().After(deadline) {
			break
		}
		time.Sleep(p.Period)
	}
	res.ConvergeTime = time.Since(start)

	// Stop the cluster before tallying so the totals are a consistent
	// final state (Close is idempotent; the deferred close becomes a
	// no-op). Views and counters stay readable on closed nodes, which is
	// also what lets an attached collector snapshot the end state.
	for _, n := range nodes {
		_ = n.Close()
	}
	for _, n := range nodes {
		_, ex, fail, served := n.Stats()
		res.Exchanges += ex
		res.Failures += fail
		res.Served += served
		if ts, ok := n.TransportStats(); ok {
			res.Wire.Add(ts)
		}
	}
	return res
}
