package scenario

import (
	"fmt"
	"strings"
	"time"

	"peersampling/internal/core"
	"peersampling/internal/fleet"
	"peersampling/internal/transport"
)

// The live bootstrap experiment is the runtime sibling of the simulator's
// growing scenario (Section 5.1): a cluster of real nodes, every joiner
// initialised with a single contact — the first node — and left to gossip
// until each view holds every other member. Where the simulator measures
// the resulting topology, this experiment measures the deployment-facing
// questions: how long bootstrap convergence takes in real time, and what
// it costs on the wire. It runs on either fleet driver: goroutine nodes
// in this process, or forked psnode processes observed through their
// control agents. Timings are real-network nondeterministic; the
// invariants reported (full convergence, no failed exchanges against a
// healthy cluster being fatal) are not.

// liveBootstrapParams derives the live cluster's shape from a simulation
// Scale: small enough that every node can own a real listener (and, under
// the subprocess driver, a real process).
type liveBootstrapParams struct {
	Nodes    int           // live cluster size
	ViewSize int           // view capacity, capped below cluster size
	Period   time.Duration // gossip period T
}

func liveBootstrapDerive(sc Scale) liveBootstrapParams {
	nodes := sc.N / 50
	if nodes < 8 {
		nodes = 8
	}
	if nodes > 24 {
		nodes = 24
	}
	view := sc.ViewSize
	if view > nodes-1 {
		view = nodes - 1
	}
	return liveBootstrapParams{
		Nodes:    nodes,
		ViewSize: view,
		Period:   20 * time.Millisecond,
	}
}

// LiveBootstrapResult reports convergence time and wire cost of
// bootstrapping a live cluster from a single contact.
type LiveBootstrapResult struct {
	Params liveBootstrapParams
	// Driver names the fleet driver that ran the cluster.
	Driver string

	// CompleteViews counts nodes whose final view contains every other
	// member; convergence means all of them.
	CompleteViews int
	// ConvergeTime is the wall-clock time from starting the cluster until
	// every view was complete (or the bounded wait expired).
	ConvergeTime time.Duration
	// Cluster-wide totals over the run.
	Exchanges uint64
	Failures  uint64
	Served    uint64
	// Wire sums every node's transport counters; BytesOut across the
	// cluster is the total bootstrap traffic.
	Wire transport.Stats
	// Latency merges every node's exchange round-trip histogram.
	Latency transport.LatencySnapshot
}

// ID implements Result.
func (r *LiveBootstrapResult) ID() string { return "bootstrap" }

// Converged reports whether every node's view reached every other member.
func (r *LiveBootstrapResult) Converged() bool {
	return r.CompleteViews == r.Params.Nodes
}

// Render implements Result.
func (r *LiveBootstrapResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Live bootstrap: single-contact cluster convergence over loopback TCP\n")
	fmt.Fprintf(&b, "cluster: %d nodes (%s driver), c=%d, T=%v, one contact node\n",
		r.Params.Nodes, r.Driver, r.Params.ViewSize, r.Params.Period)
	fmt.Fprintf(&b, "%-34s %10s\n", "", "value")
	fmt.Fprintf(&b, "%-34s %7d/%2d\n", "complete views", r.CompleteViews, r.Params.Nodes)
	fmt.Fprintf(&b, "%-34s %10v\n", "time to full views", r.ConvergeTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-34s %10d\n", "active exchanges completed", r.Exchanges)
	fmt.Fprintf(&b, "%-34s %10d\n", "exchanges failed", r.Failures)
	fmt.Fprintf(&b, "%-34s %10d\n", "passive exchanges served", r.Served)
	fmt.Fprintf(&b, "%-34s %10d\n", "connections dialed", r.Wire.Dials)
	fmt.Fprintf(&b, "%-34s %10d\n", "bytes on the wire (out)", r.Wire.BytesOut)
	if r.Latency.Count > 0 {
		fmt.Fprintf(&b, "%-34s %7.2fms\n", "exchange latency p50", r.Latency.Quantile(0.50)*1000)
		fmt.Fprintf(&b, "%-34s %7.2fms\n", "exchange latency p99", r.Latency.Quantile(0.99)*1000)
	}
	fmt.Fprintf(&b, "converged: %v\n", r.Converged())
	return b.String()
}

// RunLiveBootstrap boots the cluster on env's fleet driver, waits
// (bounded) for every view to complete and reports totals from a final
// snapshot round. With env.Collector set, every member is registered
// before gossip starts, so a scrape or dump attached by cmd/experiments
// observes the whole convergence transient — through the remote Source
// when the members are real processes. The seed drives protocol
// randomness only; socket timing is real.
func RunLiveBootstrap(sc Scale, seed uint64, env LiveEnv) (*LiveBootstrapResult, error) {
	p := liveBootstrapDerive(sc)
	res := &LiveBootstrapResult{Params: p, Driver: env.DriverName()}

	cluster, err := env.cluster(fleet.Config{
		Protocol: core.Newscast,
		ViewSize: p.ViewSize,
		Period:   p.Period,
		Seed:     seed,
		Backend:  "tcp",
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	members, err := spawnLinear(cluster, p.Nodes)
	if err != nil {
		return nil, err
	}
	// The clock starts after the spawn: under the subprocess driver,
	// forking a dozen daemons costs far more wall time than gossip
	// convergence at T=20ms, and that cost is the driver's, not the
	// protocol's. Gossip already runs while later members boot, so this
	// measures "time from full fleet to full views" on either driver.
	start := time.Now()
	res.CompleteViews, _ = waitCompleteViews(members, p.Period, 20*p.Period*time.Duration(p.Nodes))
	res.ConvergeTime = time.Since(start)

	// One final snapshot round is the totals: the cluster keeps gossiping
	// while it is taken, so cross-node sums are consistent only to within
	// the exchanges in flight — the same contract as a live scrape.
	res.Exchanges, res.Failures, res.Served, res.Wire, res.Latency = liveTotals(cluster.Snapshot())
	return res, nil
}
