//go:build race

package scenario

// raceDetectorEnabled widens timing budgets in live scenarios: race
// instrumentation inflates serve latency roughly an order of magnitude,
// which is detector overhead, not a serving regression.
const raceDetectorEnabled = true
