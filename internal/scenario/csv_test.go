package scenario

import (
	"strings"
	"testing"

	"peersampling/internal/metrics"
)

func countLines(s string) int {
	return strings.Count(strings.TrimSuffix(s, "\n"), "\n") + 1
}

func TestFigureCSVs(t *testing.T) {
	fig3 := RunFigure3(tiny, 31)
	csv3 := fig3.CSV()
	lattice, ok := csv3["figure3_lattice"]
	if !ok {
		t.Fatal("figure3_lattice missing")
	}
	if !strings.HasPrefix(lattice, "protocol,cycle,metric,value\n") {
		t.Errorf("bad header: %q", lattice[:40])
	}
	// 8 protocols x 3 metrics x observations; at least a few hundred rows.
	if countLines(lattice) < 8*3*5 {
		t.Errorf("lattice CSV suspiciously short: %d lines", countLines(lattice))
	}
	if _, ok := csv3["figure3_random"]; !ok {
		t.Error("figure3_random missing")
	}

	fig4 := RunFigure4(tiny, 32)
	csv4 := fig4.CSV()["figure4_degree_distributions"]
	if !strings.HasPrefix(csv4, "protocol,cycle,degree,count\n") {
		t.Error("figure4 header wrong")
	}
	if !strings.Contains(csv4, "(rand,head,pushpull)") {
		t.Error("figure4 CSV missing protocol rows")
	}

	fig5 := RunFigure5(tiny, 33)
	csv5 := fig5.CSV()["figure5_autocorrelation"]
	if countLines(csv5) != 4*(fig5.MaxLag+1)+1 {
		t.Errorf("figure5 CSV has %d lines want %d", countLines(csv5), 4*(fig5.MaxLag+1)+1)
	}

	fig6 := RunFigure6(tiny, 34)
	csv6 := fig6.CSV()["figure6_catastrophic_failure"]
	if countLines(csv6) != 8*len(fig6.Percents)+1 {
		t.Errorf("figure6 CSV has %d lines want %d", countLines(csv6), 8*len(fig6.Percents)+1)
	}

	fig7 := RunFigure7(tiny, 35)
	csv7 := fig7.CSV()["figure7_self_healing"]
	if countLines(csv7) != 8*(fig7.Horizon+1)+1 {
		t.Errorf("figure7 CSV has %d lines want %d", countLines(csv7), 8*(fig7.Horizon+1)+1)
	}

	fig2 := RunFigure2(tiny, 36)
	csv2 := fig2.CSV()["figure2_growing"]
	if !strings.Contains(csv2, "pathlen") || !strings.Contains(csv2, "clustering") {
		t.Error("figure2 CSV missing metrics")
	}
}

// The simulator renderers and the live metrics dumper must emit one
// long-form schema, so external tooling plots both without adapters. The
// round trip through metrics.ParseLongCSV proves it: a figure CSV parses
// with the same parser as a live dump, keys containing protocol-tuple
// commas survive, and the fixed columns agree.
func TestScenarioCSVSharesLiveDumpSchema(t *testing.T) {
	fig3 := RunFigure3(tiny, 31)
	simDoc := fig3.CSV()["figure3_lattice"]
	simKey, simRows, err := metrics.ParseLongCSV(simDoc)
	if err != nil {
		t.Fatalf("scenario CSV does not parse as long form: %v", err)
	}
	if simKey != "protocol" {
		t.Errorf("scenario key column = %q", simKey)
	}
	if len(simRows) == 0 {
		t.Fatal("no rows")
	}
	// Protocol tuples contain commas; the key must survive intact.
	if !strings.HasPrefix(simRows[0].Key, "(") || !strings.HasSuffix(simRows[0].Key, ")") {
		t.Errorf("protocol key mangled: %q", simRows[0].Key)
	}

	liveDoc := metrics.LongCSV("node", metrics.NodeSnapshot{
		Node: "node00", Cycles: 41, Exchanges: 40, ViewSize: 15, HopMean: 2.5,
	}.Rows())
	liveKey, liveRows, err := metrics.ParseLongCSV(liveDoc)
	if err != nil {
		t.Fatalf("live dump does not parse as long form: %v", err)
	}
	if liveKey != "node" {
		t.Errorf("live key column = %q", liveKey)
	}
	if len(liveRows) == 0 {
		t.Fatal("no live rows")
	}

	// Same schema: only the key column's name differs.
	simHeader := strings.SplitN(simDoc, "\n", 2)[0]
	liveHeader := strings.SplitN(liveDoc, "\n", 2)[0]
	if strings.TrimPrefix(simHeader, "protocol") != strings.TrimPrefix(liveHeader, "node") {
		t.Errorf("schemas diverge: %q vs %q", simHeader, liveHeader)
	}
}
