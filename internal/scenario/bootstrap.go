package scenario

import (
	"math/rand/v2"

	"peersampling/internal/core"
	"peersampling/internal/graph"
	"peersampling/internal/sim"
)

// BuildRandom returns a network of n nodes whose views are initialised
// with c uniform random other nodes each (the paper's random initial
// topology, Section 5.3).
func BuildRandom(cfg sim.Config, n int) *sim.Network {
	w := sim.MustNew(cfg)
	for i := 0; i < n; i++ {
		w.Add(nil)
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xB007))
	views := graph.RandomOutViews(n, cfg.ViewSize, rng)
	buf := make([]core.Descriptor[sim.NodeID], cfg.ViewSize)
	for id, view := range views {
		for i, peer := range view {
			buf[i] = core.Descriptor[sim.NodeID]{Addr: peer, Hop: 0}
		}
		w.Node(sim.NodeID(id)).Bootstrap(buf)
	}
	return w
}

// BuildLattice returns a network of n nodes arranged in the paper's ring
// lattice (Section 5.2): each node's view holds the descriptors of its
// nearest neighbours in the ring, alternating sides, until the view is
// full.
func BuildLattice(cfg sim.Config, n int) *sim.Network {
	w := sim.MustNew(cfg)
	for i := 0; i < n; i++ {
		w.Add(nil)
	}
	for i := 0; i < n; i++ {
		descs := make([]core.Descriptor[sim.NodeID], 0, cfg.ViewSize)
		for d := 1; len(descs) < cfg.ViewSize; d++ {
			right := sim.NodeID((i + d) % n)
			descs = append(descs, core.Descriptor[sim.NodeID]{Addr: right, Hop: 0})
			if len(descs) == cfg.ViewSize {
				break
			}
			left := sim.NodeID(((i-d)%n + n) % n)
			descs = append(descs, core.Descriptor[sim.NodeID]{Addr: left, Hop: 0})
		}
		w.Node(sim.NodeID(i)).Bootstrap(descs)
	}
	return w
}

// BuildGrowingSeed returns a network containing only the initial contact
// node of the growing scenario (Section 5.1).
func BuildGrowingSeed(cfg sim.Config) *sim.Network {
	w := sim.MustNew(cfg)
	w.Add(nil) // node 0, the oldest node; its view starts empty
	return w
}

// GrowStep joins perCycle new nodes, each bootstrapped with a single
// descriptor of the oldest node (node 0), stopping once the network holds
// target nodes. It returns the number of nodes actually added. The paper
// adds 100 nodes at the beginning of each cycle until cycle 100.
func GrowStep(w *sim.Network, perCycle, target int) int {
	added := 0
	contact := []core.Descriptor[sim.NodeID]{{Addr: 0, Hop: 0}}
	for added < perCycle && w.Size() < target {
		w.Add(contact)
		added++
	}
	return added
}

// RunGrowing executes the complete growing scenario: starting from the
// single seed node, it adds nodes at the beginning of every cycle until
// the target size is reached and keeps cycling until `cycles` cycles have
// run. The optional observe hook is called after every cycle.
func RunGrowing(cfg sim.Config, sc Scale, observe func(w *sim.Network, cycle int)) *sim.Network {
	w := BuildGrowingSeed(cfg)
	for cycle := 1; cycle <= sc.Cycles; cycle++ {
		GrowStep(w, sc.GrowthPerCycle, sc.N)
		w.RunCycle()
		if observe != nil {
			observe(w, cycle)
		}
	}
	return w
}
