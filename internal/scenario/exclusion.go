package scenario

import (
	"fmt"
	"strings"

	"peersampling/internal/core"
	"peersampling/internal/sim"
)

// ExclusionResult reproduces the preliminary experiments of Section 4.3
// that ruled out 19 of the 27 protocol combinations:
//
//   - (head,*,*) suffers severe clustering,
//   - (*,tail,*) cannot integrate joining nodes,
//   - (*,*,pull) converges to a star-like topology.
type ExclusionResult struct {
	Scale Scale

	// Head peer selection locks nodes onto their most recent exchange
	// partner: pairs gossip only with each other and the overlay stops
	// evolving — the degenerate "severe clustering" regime. We measure
	// view churn (the average fraction of view entries replaced over a
	// ten-cycle window after convergence): near zero for (head,*,*),
	// substantial for the rand-peer control. A frozen view means getPeer
	// samples a fixed static subset, violating even the weakest
	// requirement on the service (Section 2).
	HeadPeerChurn float64
	RandPeerChurn float64

	// Tail view selection in the growing scenario: fraction of the final
	// population that no live node knows about (zero in-links), versus
	// the head control. Invisible nodes can never be sampled by anyone —
	// the sense in which (*,tail,*) "cannot handle joining nodes at all".
	TailInvisibleFraction float64
	HeadInvisibleFraction float64

	// Pull-only star formation: maximum degree as a fraction of N,
	// versus the pushpull control.
	PullMaxDegreeFraction     float64
	PushPullMaxDegreeFraction float64
}

// ID implements Result.
func (*ExclusionResult) ID() string { return "exclusion" }

// Render implements Result.
func (r *ExclusionResult) Render() string {
	var b strings.Builder
	b.WriteString("Section 4.3 exclusion study\n")
	tb := newTable("claim", "excluded variant", "control", "verdict")
	verdict := func(bad, good float64, worseIsHigher bool) string {
		if (worseIsHigher && bad > good) || (!worseIsHigher && bad < good) {
			return "confirmed"
		}
		return "NOT confirmed"
	}
	tb.addRow("(head,*,*) degenerates (frozen pairs)",
		fmt.Sprintf("view churn %.3f", r.HeadPeerChurn),
		fmt.Sprintf("rand peer: %.3f", r.RandPeerChurn),
		verdict(r.HeadPeerChurn, r.RandPeerChurn, false))
	tb.addRow("(*,tail,*) cannot absorb joins",
		fmt.Sprintf("invisible joiners %.3f", r.TailInvisibleFraction),
		fmt.Sprintf("head view: %.3f", r.HeadInvisibleFraction),
		verdict(r.TailInvisibleFraction, r.HeadInvisibleFraction, true))
	tb.addRow("(*,*,pull) forms a star",
		fmt.Sprintf("max degree/N %.3f", r.PullMaxDegreeFraction),
		fmt.Sprintf("pushpull: %.3f", r.PushPullMaxDegreeFraction),
		verdict(r.PullMaxDegreeFraction, r.PushPullMaxDegreeFraction, true))
	b.WriteString(tb.String())
	return b.String()
}

// RunExclusion reproduces the Section 4.3 observations with targeted
// mini-experiments.
func RunExclusion(sc Scale, seed uint64) *ExclusionResult {
	if err := sc.validate(); err != nil {
		panic(err)
	}
	res := &ExclusionResult{Scale: sc}

	// Use a reduced population: the pathologies show at any size and two
	// of the variants are quadratically slow to analyse when degenerate.
	n := sc.N
	if n > 1000 {
		n = 1000
	}
	cycles := sc.Cycles
	if cycles > 100 {
		cycles = 100
	}

	type job func()
	jobs := []job{
		func() { // (head,*,*) frozen-pair degeneration, measured as churn.
			head := sim.Config{Protocol: core.Protocol{PeerSel: core.PeerHead, ViewSel: core.ViewHead, Prop: core.PushPull}, ViewSize: sc.ViewSize, Seed: mix(seed, 1)}
			w := BuildRandom(head, n)
			w.Run(cycles)
			res.HeadPeerChurn = viewChurn(w, 10)
		},
		func() {
			control := sim.Config{Protocol: core.Newscast, ViewSize: sc.ViewSize, Seed: mix(seed, 2)}
			w := BuildRandom(control, n)
			w.Run(cycles)
			res.RandPeerChurn = viewChurn(w, 10)
		},
		func() { // (*,tail,*) joining nodes in the growing scenario.
			tailSc := sc
			tailSc.N = n
			tailSc.Cycles = cycles
			tailSc.GrowthPerCycle = maxInt(1, n/50)
			cfg := sim.Config{Protocol: core.Protocol{PeerSel: core.PeerRand, ViewSel: core.ViewTail, Prop: core.PushPull}, ViewSize: sc.ViewSize, Seed: mix(seed, 3)}
			w := RunGrowing(cfg, tailSc, nil)
			res.TailInvisibleFraction = invisibleFraction(w)
		},
		func() {
			tailSc := sc
			tailSc.N = n
			tailSc.Cycles = cycles
			tailSc.GrowthPerCycle = maxInt(1, n/50)
			cfg := sim.Config{Protocol: core.Newscast, ViewSize: sc.ViewSize, Seed: mix(seed, 4)}
			w := RunGrowing(cfg, tailSc, nil)
			res.HeadInvisibleFraction = invisibleFraction(w)
		},
		func() { // (*,*,pull) star formation.
			cfg := sim.Config{Protocol: core.Protocol{PeerSel: core.PeerRand, ViewSel: core.ViewHead, Prop: core.Pull}, ViewSize: sc.ViewSize, Seed: mix(seed, 5)}
			w := BuildRandom(cfg, n)
			w.Run(cycles)
			_, maxDeg := w.TakeSnapshot().Graph.MinMaxDegree()
			res.PullMaxDegreeFraction = float64(maxDeg) / float64(n)
		},
		func() {
			cfg := sim.Config{Protocol: core.Newscast, ViewSize: sc.ViewSize, Seed: mix(seed, 6)}
			w := BuildRandom(cfg, n)
			w.Run(cycles)
			_, maxDeg := w.TakeSnapshot().Graph.MinMaxDegree()
			res.PushPullMaxDegreeFraction = float64(maxDeg) / float64(n)
		},
	}
	forEachPar(len(jobs), func(i int) { jobs[i]() })
	return res
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// viewChurn runs `window` extra cycles and returns the average fraction
// of view entries per live node that were replaced during the window. A
// healthy gossip overlay keeps rotating its views; a frozen overlay (the
// (head,*,*) pathology) scores near zero.
func viewChurn(w *sim.Network, window int) float64 {
	before := make(map[sim.NodeID]map[sim.NodeID]bool)
	for _, id := range w.LiveIDs() {
		v := w.Node(id).View()
		set := make(map[sim.NodeID]bool, v.Len())
		for i := 0; i < v.Len(); i++ {
			set[v.At(i).Addr] = true
		}
		before[id] = set
	}
	w.Run(window)
	var sum float64
	var counted int
	for id, old := range before {
		if len(old) == 0 || !w.Alive(id) {
			continue
		}
		v := w.Node(id).View()
		kept := 0
		for i := 0; i < v.Len(); i++ {
			if old[v.At(i).Addr] {
				kept++
			}
		}
		sum += 1 - float64(kept)/float64(len(old))
		counted++
	}
	if counted == 0 {
		return 0
	}
	return sum / float64(counted)
}

// invisibleFraction returns the share of live nodes that appear in no
// other live node's view (zero in-links): nodes the sampling service can
// never return to anyone.
func invisibleFraction(w *sim.Network) float64 {
	known := make(map[sim.NodeID]bool)
	live := w.LiveIDs()
	for _, id := range live {
		v := w.Node(id).View()
		for i := 0; i < v.Len(); i++ {
			if addr := v.At(i).Addr; int(addr) < w.Size() && w.Alive(addr) {
				known[addr] = true
			}
		}
	}
	invisible := 0
	for _, id := range live {
		if !known[id] {
			invisible++
		}
	}
	return float64(invisible) / float64(len(live))
}
