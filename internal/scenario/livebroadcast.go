package scenario

import (
	"fmt"
	"strings"
	"time"

	"peersampling/broadcast"
	"peersampling/internal/config"
	"peersampling/internal/core"
	"peersampling/internal/fleet"
	"peersampling/internal/metrics"
)

// The live broadcast experiment runs the paper's motivating application —
// epidemic dissemination over the peer sampling service — on a real
// fleet: every member attaches a broadcast workload engine fed by its own
// getPeer(), the driver injects one rumor into a single member over the
// transport's app-payload frames, then a livechurn-style kill wave
// removes a fraction of the members mid-spread. The claim under test is
// the service's headline robustness story: the rumor must still reach
// every survivor, with deliveries to dead peers absorbed as routine
// failures.

// liveBroadcastParams derives the fleet's shape from a simulation Scale.
type liveBroadcastParams struct {
	Nodes        int           // fleet size at full strength
	ViewSize     int           // view capacity, capped below fleet size
	Period       time.Duration // gossip and workload round length T
	Fanout       int           // rumor pushes per round per infected node
	KillFraction float64       // fraction of members killed mid-spread
}

func liveBroadcastDerive(sc Scale) liveBroadcastParams {
	nodes := sc.N / 50
	if nodes < 8 {
		nodes = 8
	}
	if nodes > 24 {
		nodes = 24
	}
	view := sc.ViewSize
	if view > nodes-1 {
		view = nodes - 1
	}
	return liveBroadcastParams{
		Nodes:        nodes,
		ViewSize:     view,
		Period:       20 * time.Millisecond,
		Fanout:       2,
		KillFraction: 0.25,
	}
}

// LiveBroadcastResult reports the live dissemination experiment.
type LiveBroadcastResult struct {
	Params liveBroadcastParams
	// Driver names the fleet driver that ran the cluster.
	Driver string

	// BootstrapComplete counts complete views after bootstrap (must be
	// Nodes for the spread measurement to mean anything).
	BootstrapComplete int
	BootstrapTime     time.Duration
	// Killed is how many members the mid-spread kill wave removed.
	Killed int
	// Coverage is the infected fraction among live members per poll
	// round (one poll per period, starting right after the seed).
	Coverage []float64
	// PollsTo99 is the first poll at which coverage reached 99%;
	// -1 when it never did. TimeToFull is the wall-clock time from seed
	// to full survivor coverage (or the measurement timeout).
	PollsTo99  int
	TimeToFull time.Duration
	// Sent / Received / Failures are the fleet-wide workload totals at
	// the end; Failures counts deliveries into dead peers, which the kill
	// wave guarantees.
	Sent, Received, Failures uint64

	rows []metrics.LongRow
}

// ID implements Result.
func (r *LiveBroadcastResult) ID() string { return "livebroadcast" }

// Converged reports whether the fleet bootstrapped fully and the rumor
// reached at least 99% of the survivors.
func (r *LiveBroadcastResult) Converged() bool {
	if r.BootstrapComplete != r.Params.Nodes || len(r.Coverage) == 0 {
		return false
	}
	return r.Coverage[len(r.Coverage)-1] >= 0.99
}

// Render implements Result.
func (r *LiveBroadcastResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Live broadcast: epidemic rumor spread across a real fleet under a kill wave\n")
	fmt.Fprintf(&b, "fleet: %d nodes (%s driver), c=%d, T=%v, fanout=%d, %.0f%% killed mid-spread\n",
		r.Params.Nodes, r.Driver, r.Params.ViewSize, r.Params.Period,
		r.Params.Fanout, r.Params.KillFraction*100)
	fmt.Fprintf(&b, "%-38s %10s\n", "", "value")
	fmt.Fprintf(&b, "%-38s %7d/%2d\n", "complete views after bootstrap", r.BootstrapComplete, r.Params.Nodes)
	fmt.Fprintf(&b, "%-38s %10v\n", "bootstrap time", r.BootstrapTime.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-38s %10d\n", "members killed mid-spread", r.Killed)
	if len(r.Coverage) > 0 {
		fmt.Fprintf(&b, "%-38s %9.0f%%\n", "final rumor coverage (survivors)", r.Coverage[len(r.Coverage)-1]*100)
	}
	if r.PollsTo99 >= 0 {
		fmt.Fprintf(&b, "%-38s %10d\n", "polls to 99% coverage", r.PollsTo99)
	} else {
		fmt.Fprintf(&b, "%-38s %10s\n", "polls to 99% coverage", "never")
	}
	fmt.Fprintf(&b, "%-38s %10v\n", "time to full coverage", r.TimeToFull.Round(time.Millisecond))
	fmt.Fprintf(&b, "%-38s %10d\n", "app messages sent", r.Sent)
	fmt.Fprintf(&b, "%-38s %10d\n", "app messages received", r.Received)
	fmt.Fprintf(&b, "%-38s %10d\n", "app delivery failures absorbed", r.Failures)
	fmt.Fprintf(&b, "rumor survived the kill wave: %v\n", r.Converged())
	return b.String()
}

// CSV implements CSVer: node,cycle,metric,value with per-node infection
// state and fleet-wide coverage per poll round.
func (r *LiveBroadcastResult) CSV() map[string]string {
	return map[string]string{"livebroadcast_spread": metrics.LongCSV("node", r.rows)}
}

// RunLiveBroadcast boots a fleet whose members all run a broadcast
// workload engine, injects one rumor into the first member, kills
// KillFraction of the other members mid-spread, and polls the workload
// counters until the rumor covers every survivor (or the measurement
// deadline passes). The seed drives victim choice; timing is real.
func RunLiveBroadcast(sc Scale, seed uint64, env LiveEnv) (*LiveBroadcastResult, error) {
	p := liveBroadcastDerive(sc)
	res := &LiveBroadcastResult{Params: p, Driver: env.DriverName(), PollsTo99: -1}
	rng := newRand(mix(seed, 0x4CB))

	cluster, err := env.cluster(fleet.Config{
		Protocol: core.Newscast,
		ViewSize: p.ViewSize,
		Period:   p.Period,
		Seed:     seed,
		Backend:  "tcp",
		Workload: config.WorkloadSection{
			Kind:   config.WorkloadBroadcast,
			Period: p.Period,
			Fanout: p.Fanout,
			Mode:   "infect-forever",
		},
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	members, err := spawnLinear(cluster, p.Nodes)
	if err != nil {
		return nil, err
	}
	phaseTimeout := 30*p.Period*time.Duration(p.Nodes) + 5*time.Second
	res.BootstrapComplete, res.BootstrapTime = waitCompleteViews(members, p.Period, phaseTimeout)

	seeder, err := newAppSeeder()
	if err != nil {
		return nil, err
	}
	defer seeder.Close()
	source := members[0]
	if err := seeder.send(source.Addr(), broadcast.Topic, []byte("the-rumor")); err != nil {
		return nil, err
	}

	// Kill wave, sparing the source: extinguishing the rumor by killing
	// its only holder would measure scheduling luck, not dissemination.
	victims := make([]fleet.Member, 0, len(members)-1)
	for _, m := range members[1:] {
		if m.Alive() {
			victims = append(victims, m)
		}
	}
	kill := (len(victims)*int(p.KillFraction*100) + 99) / 100
	if kill < 1 {
		kill = 1
	}
	rng.Shuffle(len(victims), func(i, j int) { victims[i], victims[j] = victims[j], victims[i] })
	for _, victim := range victims[:kill] {
		if err := cluster.Kill(victim); err != nil {
			return nil, fmt.Errorf("scenario: livebroadcast kill %s: %w", victim.Name(), err)
		}
	}
	res.Killed = kill

	// Poll the spread once per period until full survivor coverage.
	start := time.Now()
	deadline := start.Add(phaseTimeout)
	for poll := 0; ; poll++ {
		snaps := liveAppSnapshots(members)
		infected := 0
		for _, s := range snaps {
			res.rows = append(res.rows, metrics.LongRow{
				Key: s.Node, Cycle: poll, Metric: "infected", Value: s.App.Infected,
			})
			if s.App.Infected >= 1 {
				infected++
			}
		}
		coverage := 0.0
		if len(snaps) > 0 {
			coverage = float64(infected) / float64(len(snaps))
		}
		res.Coverage = append(res.Coverage, coverage)
		res.rows = append(res.rows, metrics.LongRow{
			Key: "fleet", Cycle: poll, Metric: "coverage", Value: coverage,
		})
		if coverage >= 0.99 && res.PollsTo99 < 0 {
			res.PollsTo99 = poll
		}
		if coverage >= 1 || time.Now().After(deadline) {
			res.TimeToFull = time.Since(start)
			break
		}
		time.Sleep(p.Period)
	}

	res.Sent, res.Received, res.Failures = liveAppTotals(liveAppSnapshots(members))
	return res, nil
}
