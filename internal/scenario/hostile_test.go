package scenario

import (
	"strings"
	"testing"
)

// TestHostileNetworkFloodRejectedWhileConverging is the acceptance test
// for the transport hardening layer: a live TCP cluster under connection
// flood and slowloris must reject connections beyond the listener cap
// (AcceptRejects > 0), evict the slowloris conns that did get slots, and
// still hold a fully converged overlay when the attack ends. Run under
// -race in CI.
func TestHostileNetworkFloodRejectedWhileConverging(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket attack scenario")
	}
	res, err := RunHostile(Quick, 42, LiveEnv{})
	if err != nil {
		t.Fatal(err)
	}

	if res.FloodDials == 0 {
		t.Fatal("the flooders never dialed; the attack did not run")
	}
	if res.AcceptRejects == 0 {
		t.Fatalf("listener accepted the whole flood (cap %d, %d dials): %+v",
			res.Params.MaxConns, res.FloodDials, res)
	}
	if res.KeepAliveEvictions == 0 {
		t.Fatalf("no slowloris conn was evicted: %+v", res)
	}
	if res.VictimExchanges == 0 {
		t.Fatalf("the attacked node made no gossip progress during the flood: %+v", res)
	}
	if !res.Converged() {
		t.Fatalf("overlay did not survive the attack: %d/%d complete views, %d stray entries",
			res.CompleteViews, res.Params.Nodes, res.StrayDescriptors)
	}
	if res.ID() != "hostile" {
		t.Fatalf("ID() = %q", res.ID())
	}
	for _, want := range []string{"accepts rejected", "slowloris", "converged under attack: true"} {
		if !strings.Contains(res.Render(), want) {
			t.Fatalf("Render() missing %q:\n%s", want, res.Render())
		}
	}
}

// TestHostileRegistered checks the experiment is reachable through the
// registry like every other scenario.
func TestHostileRegistered(t *testing.T) {
	d, ok := Find("hostile")
	if !ok {
		t.Fatal("hostile experiment not registered")
	}
	if d.Title == "" || d.Run == nil {
		t.Fatalf("incomplete registration: %+v", d)
	}
}
