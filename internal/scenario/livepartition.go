package scenario

import (
	"context"
	"fmt"
	"strings"
	"time"

	"peersampling/internal/chaos"
	"peersampling/internal/core"
	"peersampling/internal/fleet"
	"peersampling/internal/metrics"
)

// The partition-heal experiment replays the partition-heal chaos plan
// against a live fleet: every link first gets injected latency, then a
// random half of the fleet is cut off (both directions) long enough for
// cross-island knowledge to go stale, and both rules expire on their
// own. The paper's claim under test is the sampling service's recovery:
// cut links make exchanges fail (absorbed, never fatal), each island
// keeps gossiping internally, and once the rules expire the overlay
// re-converges to fresh fleet-wide knowledge — observed as a freshness
// trace aligned with the plan's chaos_event timeline.
//
// Complete views alone cannot see a partition here: a view capacity of
// Nodes-1 means stale cross-island descriptors persist for the whole
// cut. Freshness — a (member, peer) pair counts only when the peer
// appears in the member's view at a low hop count — drops sharply while
// the cut holds and recovers after the heal, which is the re-convergence
// signal Converged asserts.

// livePartitionPlan names the fault plan the experiment replays (see
// internal/chaos/plans).
const livePartitionPlan = "partition-heal"

// livePartitionParams derives the fleet's shape from a simulation Scale;
// the fault timeline comes from the named chaos plan.
type livePartitionParams struct {
	Nodes       int           // fleet size
	ViewSize    int           // view capacity, capped below fleet size
	Period      time.Duration // gossip period T
	Plan        string        // chaos plan driving the faults
	FreshHop    int           // max hop count for a view entry to count as fresh
	SampleEvery time.Duration // freshness-trace sampling interval
}

func livePartitionDerive(sc Scale, plan *chaos.Plan) livePartitionParams {
	nodes := sc.N / 50
	if nodes < 8 {
		nodes = 8
	}
	if nodes > 12 {
		nodes = 12
	}
	view := sc.ViewSize
	if view > nodes-1 {
		view = nodes - 1
	}
	return livePartitionParams{
		Nodes:       nodes,
		ViewSize:    view,
		Period:      20 * time.Millisecond,
		Plan:        plan.Name,
		FreshHop:    15,
		SampleEvery: 50 * time.Millisecond,
	}
}

// PartitionSample is one point of the freshness trace.
type PartitionSample struct {
	// ElapsedMillis is the sample time relative to the plan's start.
	ElapsedMillis int64
	// FreshPairs counts (member, peer) pairs where the live member's view
	// holds the live peer at hop <= FreshHop.
	FreshPairs int
	// ActiveRules is how many fault rules were installed at sample time.
	ActiveRules int
}

// LivePartitionResult reports the partition-heal experiment.
type LivePartitionResult struct {
	Params livePartitionParams
	Driver string

	// BootstrapComplete counts complete views after initial bootstrap.
	BootstrapComplete int
	BootstrapTime     time.Duration
	// FreshBefore / MinFreshDuring / FreshAfter are the freshness-pair
	// counts at full convergence, at the worst point while fault rules
	// were active, and after the heal settled.
	FreshBefore    int
	MinFreshDuring int
	FreshAfter     int
	// FailuresDelta counts failed exchanges the fleet absorbed over the
	// plan — the cut links guarantee some.
	FailuresDelta uint64
	// FinalCompleteViews / FinalLive is the end-state convergence count.
	FinalCompleteViews int
	FinalLive          int
	// StepsApplied / StepsCompiled report the executor's timeline
	// progress; ActiveRulesEnd must be 0 after every rule expired.
	StepsApplied   int
	StepsCompiled  int
	ActiveRulesEnd int
	// Trace is the freshness time series; Events the plan's applied
	// timeline, both on the same elapsed-milliseconds time base.
	Trace  []PartitionSample
	Events []metrics.ChaosEvent
	// StartUnixMillis anchors the Events' wall-clock stamps to the trace.
	StartUnixMillis int64
}

// ID implements Result.
func (r *LivePartitionResult) ID() string { return "partitionheal" }

// Converged reports whether the fleet demonstrably lost fresh
// cross-island knowledge under the cut and regained it after the rules
// expired, with the failure noise absorbed.
func (r *LivePartitionResult) Converged() bool {
	return r.BootstrapComplete == r.Params.Nodes &&
		r.FailuresDelta > 0 &&
		r.MinFreshDuring < r.FreshBefore &&
		r.FreshAfter > r.MinFreshDuring &&
		r.FinalLive == r.Params.Nodes &&
		r.FinalCompleteViews == r.FinalLive &&
		r.StepsApplied == r.StepsCompiled &&
		r.ActiveRulesEnd == 0
}

// Render implements Result.
func (r *LivePartitionResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Partition heal: cut half the fleet apart from a named fault plan, then recover\n")
	fmt.Fprintf(&b, "fleet: %d nodes (%s driver), c=%d, T=%v, plan=%s (fresh = hop <= %d)\n",
		r.Params.Nodes, r.Driver, r.Params.ViewSize, r.Params.Period, r.Params.Plan, r.Params.FreshHop)
	fmt.Fprintf(&b, "%-38s %10s\n", "", "value")
	fmt.Fprintf(&b, "%-38s %7d/%2d\n", "complete views after bootstrap", r.BootstrapComplete, r.Params.Nodes)
	fmt.Fprintf(&b, "%-38s %10v\n", "bootstrap time", r.BootstrapTime.Round(time.Millisecond))
	full := r.Params.Nodes * (r.Params.Nodes - 1)
	fmt.Fprintf(&b, "%-38s %7d/%2d\n", "fresh pairs before the plan", r.FreshBefore, full)
	fmt.Fprintf(&b, "%-38s %7d/%2d\n", "fresh pairs at the worst point", r.MinFreshDuring, full)
	fmt.Fprintf(&b, "%-38s %7d/%2d\n", "fresh pairs after the heal", r.FreshAfter, full)
	for _, e := range r.Events {
		fmt.Fprintf(&b, "plan step %d: %-9s at +%4dms touching %d\n",
			e.Seq, e.Action, e.UnixMillis-r.StartUnixMillis, e.Targets)
	}
	fmt.Fprintf(&b, "%-38s %10d\n", "failed exchanges absorbed", r.FailuresDelta)
	fmt.Fprintf(&b, "%-38s %7d/%2d\n", "final complete views", r.FinalCompleteViews, r.FinalLive)
	fmt.Fprintf(&b, "%-38s %7d/%2d\n", "plan steps applied", r.StepsApplied, r.StepsCompiled)
	fmt.Fprintf(&b, "%-38s %10d\n", "fault rules left installed", r.ActiveRulesEnd)
	fmt.Fprintf(&b, "re-converged after heal: %v\n", r.Converged())
	return b.String()
}

// CSV implements CSVer: the freshness trace and the chaos events on one
// elapsed-milliseconds time base, so the fault timeline plots directly
// against the convergence curve.
func (r *LivePartitionResult) CSV() map[string]string {
	var rows []metrics.LongRow
	for i, s := range r.Trace {
		rows = append(rows,
			metrics.LongRow{Key: "fleet", Cycle: i, Metric: "elapsed_ms", Value: float64(s.ElapsedMillis)},
			metrics.LongRow{Key: "fleet", Cycle: i, Metric: "fresh_pairs", Value: float64(s.FreshPairs)},
			metrics.LongRow{Key: "fleet", Cycle: i, Metric: "chaos_active_rules", Value: float64(s.ActiveRules)},
		)
	}
	for _, e := range r.Events {
		rows = append(rows,
			metrics.LongRow{Key: "chaos", Cycle: e.Seq, Metric: "chaos_event", Value: float64(e.UnixMillis - r.StartUnixMillis)},
			metrics.LongRow{Key: "chaos", Cycle: e.Seq, Metric: "chaos_event_" + e.Action, Value: float64(e.Targets)},
		)
	}
	return map[string]string{"partitionheal_trace": metrics.LongCSV("source", rows)}
}

// freshPairs counts (member, peer) pairs where the live member's view
// holds the live peer at hop <= maxHop — the freshness gauge complete
// views cannot provide while stale descriptors linger.
func freshPairs(members []fleet.Member, maxHop int) int {
	live := liveAddrs(members)
	pairs := 0
	for _, m := range members {
		if !m.Alive() {
			continue
		}
		view, err := m.View()
		if err != nil {
			continue
		}
		seen := map[string]bool{}
		for _, d := range view {
			if live[d.Addr] && d.Addr != m.Addr() && int(d.Hop) <= maxHop && !seen[d.Addr] {
				seen[d.Addr] = true
				pairs++
			}
		}
	}
	return pairs
}

// RunLivePartition boots a fleet on env's fleet driver and replays the
// partition-heal chaos plan against it on the real clock, sampling a
// fleet-wide freshness trace throughout. The executor pushes its rules
// through Cluster.SetFaultRules, so under the subprocess driver the cut
// reaches real psnode processes via their control agents. The seed
// drives island choice and protocol randomness; timing is real.
func RunLivePartition(sc Scale, seed uint64, env LiveEnv) (*LivePartitionResult, error) {
	plan, err := chaos.Load(livePartitionPlan)
	if err != nil {
		return nil, err
	}
	p := livePartitionDerive(sc, plan)
	res := &LivePartitionResult{Params: p, Driver: env.DriverName()}

	cluster, err := env.cluster(fleet.Config{
		Protocol: core.Newscast,
		ViewSize: p.ViewSize,
		Period:   p.Period,
		Seed:     seed,
		Backend:  "tcp",
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	members, err := spawnLinear(cluster, p.Nodes)
	if err != nil {
		return nil, err
	}
	phaseTimeout := 30*p.Period*time.Duration(p.Nodes) + 5*time.Second
	res.BootstrapComplete, res.BootstrapTime = waitCompleteViews(members, p.Period, phaseTimeout)

	// Let freshness saturate before the plan starts: the baseline the
	// partition must demonstrably pull down.
	deadline := time.Now().Add(phaseTimeout)
	for {
		if f := freshPairs(members, p.FreshHop); f > res.FreshBefore {
			res.FreshBefore = f
		}
		if res.FreshBefore == p.Nodes*(p.Nodes-1) || time.Now().After(deadline) {
			break
		}
		time.Sleep(p.Period)
	}
	_, failuresBefore, _, _, _ := liveTotals(cluster.Snapshot())

	// The executor replays the plan on the real clock while the sampler
	// records the freshness trace. With env.Collector set the executor
	// also registers as a "chaos" source, so live dumps carry the same
	// chaos_event rows this result's CSV does.
	ex := chaos.New(plan, cluster, members, chaos.Options{
		Seed:      mix(seed, 0x9A87),
		Collector: env.Collector,
	})
	defer ex.Close()
	res.StepsCompiled = ex.Steps()
	start := time.Now()
	res.StartUnixMillis = start.UnixMilli()

	stopSampler := make(chan struct{})
	samplerDone := make(chan struct{})
	go func() {
		defer close(samplerDone)
		ticker := time.NewTicker(p.SampleEvery)
		defer ticker.Stop()
		for {
			select {
			case <-stopSampler:
				return
			case <-ticker.C:
				res.Trace = append(res.Trace, PartitionSample{
					ElapsedMillis: time.Since(start).Milliseconds(),
					FreshPairs:    freshPairs(members, p.FreshHop),
					ActiveRules:   ex.ActiveRules(),
				})
			}
		}
	}()
	runErr := ex.Run(context.Background())
	close(stopSampler)
	<-samplerDone
	if runErr != nil {
		return nil, fmt.Errorf("scenario: partitionheal: %w", runErr)
	}

	// The worst freshness while any fault rule was active.
	res.MinFreshDuring = res.FreshBefore
	for _, s := range res.Trace {
		if s.ActiveRules > 0 && s.FreshPairs < res.MinFreshDuring {
			res.MinFreshDuring = s.FreshPairs
		}
	}

	// Post-heal: freshness must climb back to (at least) the baseline.
	deadline = time.Now().Add(phaseTimeout)
	for {
		if f := freshPairs(members, p.FreshHop); f > res.FreshAfter {
			res.FreshAfter = f
		}
		if res.FreshAfter >= res.FreshBefore || time.Now().After(deadline) {
			break
		}
		time.Sleep(p.Period)
	}

	res.FinalCompleteViews, res.FinalLive = completeLiveViews(members)
	_, failuresAfter, _, _, _ := liveTotals(cluster.Snapshot())
	res.FailuresDelta = failuresAfter - failuresBefore
	res.StepsApplied = len(ex.Fired())
	res.ActiveRulesEnd = ex.ActiveRules()
	res.Events = ex.Fired()
	return res, nil
}
