package scenario

import (
	"fmt"
	"math"
	"strings"

	"peersampling/internal/core"
	"peersampling/internal/stats"
)

// AutocorrResult holds the degree autocorrelation of one protocol.
type AutocorrResult struct {
	Protocol core.Protocol
	// Lags[k] is the autocorrelation at lag k (Lags[0] == 1).
	Lags []float64
	// OutsideBand is the fraction of lags 1..max whose autocorrelation
	// falls outside the 99% confidence band of an i.i.d. series.
	OutsideBand float64
}

// Figure5Result reproduces the paper's Figure 5: the autocorrelation of
// the degree time series of a fixed random node, for the four rand-peer
// protocols, with the 99% confidence band.
type Figure5Result struct {
	Scale   Scale
	MaxLag  int
	Band    float64 // half-width of the 99% band
	Results []AutocorrResult
}

// ID implements Result.
func (*Figure5Result) ID() string { return "figure5" }

// Render implements Result.
func (r *Figure5Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 5 (degree autocorrelation over %d cycles, lags to %d, 99%% band ±%.4f)\n",
		r.Scale.Cycles, r.MaxLag, r.Band)
	lagCols := []int{1, 2, 5, 10, 20, 40}
	header := []string{"protocol"}
	for _, l := range lagCols {
		header = append(header, fmt.Sprintf("r%d", l))
	}
	header = append(header, "frac outside band")
	tb := newTable(header...)
	for _, res := range r.Results {
		row := []string{res.Protocol.String()}
		for _, l := range lagCols {
			if l < len(res.Lags) {
				row = append(row, f3(res.Lags[l]))
			} else {
				row = append(row, "-")
			}
		}
		row = append(row, f3(res.OutsideBand))
		tb.addRow(row...)
	}
	b.WriteString(tb.String())
	return b.String()
}

// RunFigure5 reproduces Figure 5. The paper traces a single fixed random
// node; to keep the scaled-down reproduction stable we trace a handful of
// nodes and average their autocorrelation functions.
func RunFigure5(sc Scale, seed uint64) *Figure5Result {
	if err := sc.validate(); err != nil {
		panic(err)
	}
	protos := figure5Protocols()
	maxLag := sc.Cycles / 2
	if maxLag > 150 {
		maxLag = 150 // the paper's x axis
	}
	res := &Figure5Result{
		Scale:   sc,
		MaxLag:  maxLag,
		Band:    stats.ConfidenceBand(sc.Cycles, stats.Z99),
		Results: make([]AutocorrResult, len(protos)),
	}
	const tracedForAutocorr = 8
	forEachPar(len(protos), func(pi int) {
		series, _ := degreeTrace(protos[pi], sc, mix(seed, 5000+pi), tracedForAutocorr, sc.Cycles)
		avg := make([]float64, maxLag+1)
		for _, s := range series {
			r := stats.Autocorrelation(s, maxLag)
			for k := range avg {
				avg[k] += r[k] / float64(len(series))
			}
		}
		outside := 0
		for _, rk := range avg[1:] {
			if math.Abs(rk) > res.Band {
				outside++
			}
		}
		res.Results[pi] = AutocorrResult{
			Protocol:    protos[pi],
			Lags:        avg,
			OutsideBand: float64(outside) / float64(maxLag),
		}
	})
	return res
}
