package scenario

import (
	"fmt"
	"strings"

	"peersampling/internal/core"
	"peersampling/internal/graph"
	"peersampling/internal/sim"
)

// AblationRow measures Newscast at one view size.
type AblationRow struct {
	ViewSize int
	// Clustering and PathLen of the converged overlay.
	Clustering float64
	PathLen    float64
	// HealHalfLife is the number of cycles for dead links to halve after
	// a 50% failure (-1 if it never halved within the horizon).
	HealHalfLife int
	// PartitionAt is the smallest removal percentage (65..95, step 5) at
	// which any removal repetition partitioned the survivors, 0 = never.
	PartitionAt int
	// Connected reports whether the converged overlay itself was
	// connected (small c can fragment head view selection).
	Connected bool
}

// AblationResult sweeps the view size c — the one free parameter of every
// protocol in the paper (which fixes c = 30 throughout) — and reports how
// overlay quality, robustness and healing speed depend on it. This is the
// ablation DESIGN.md calls out for the c = 30 design choice.
type AblationResult struct {
	Scale    Scale
	Protocol core.Protocol
	Rows     []AblationRow
}

// ID implements Result.
func (*AblationResult) ID() string { return "ablation" }

// Render implements Result.
func (r *AblationResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "View size ablation for %s (N=%d)\n", r.Protocol, r.Scale.N)
	tb := newTable("c", "connected", "clustering", "path length", "heal half-life", "first partition")
	for _, row := range r.Rows {
		conn := "yes"
		if !row.Connected {
			conn = "NO"
		}
		hl := "-"
		if row.HealHalfLife >= 0 {
			hl = fmt.Sprintf("%d", row.HealHalfLife)
		}
		pa := "never"
		if row.PartitionAt > 0 {
			pa = fmt.Sprintf("%d%%", row.PartitionAt)
		}
		tb.addRow(fmt.Sprintf("%d", row.ViewSize), conn, f4(row.Clustering), f3(row.PathLen), hl, pa)
	}
	b.WriteString(tb.String())
	return b.String()
}

// ablationViewSizes returns the sweep points, scaled never to exceed N/8.
func ablationViewSizes(sc Scale) []int {
	candidates := []int{10, 20, 30, 40, 60}
	out := make([]int, 0, len(candidates))
	for _, c := range candidates {
		if c <= sc.N/8 {
			out = append(out, c)
		}
	}
	return out
}

// RunAblation sweeps the view size for Newscast, measuring converged
// overlay quality, healing speed after a 50% failure, and removal
// robustness.
func RunAblation(sc Scale, seed uint64) *AblationResult {
	if err := sc.validate(); err != nil {
		panic(err)
	}
	sizes := ablationViewSizes(sc)
	res := &AblationResult{Scale: sc, Protocol: core.Newscast, Rows: make([]AblationRow, len(sizes))}
	forEachPar(len(sizes), func(i int) {
		c := sizes[i]
		cfg := sim.Config{Protocol: core.Newscast, ViewSize: c, Seed: mix(seed, i)}
		w := BuildRandom(cfg, sc.N)
		w.Run(sc.Cycles)

		snap := w.TakeSnapshot()
		rng := newRand(mix(seed, 100+i))
		row := AblationRow{
			ViewSize:   c,
			Clustering: snap.Graph.EstimateClustering(maxInt(sc.ClusteringSample, 1), rng),
			PathLen:    snap.Graph.EstimatePathLength(maxInt(sc.PathSources, 1), rng),
			Connected:  snap.Graph.Components().Connected(),
		}

		// Removal robustness on the converged overlay.
		checkpoints := make([]int, 0, 7)
		percents := figure6Percents()
		for _, p := range percents {
			checkpoints = append(checkpoints, snap.Graph.NumNodes()*p/100)
		}
		for rep := 0; rep < sc.Reps; rep++ {
			sweep := graph.RemovalSweep(snap.Graph, checkpoints, newRand(mix(seed, 1000+i*100+rep)))
			for j, pt := range sweep {
				if pt.Components > 1 && (row.PartitionAt == 0 || percents[j] < row.PartitionAt) {
					row.PartitionAt = percents[j]
				}
			}
		}

		// Healing speed after a 50% failure.
		w.KillFraction(0.5)
		initial := w.DeadLinks()
		row.HealHalfLife = -1
		for cyc := 0; cyc <= sc.Cycles/3; cyc++ {
			if w.DeadLinks()*2 <= initial {
				row.HealHalfLife = cyc
				break
			}
			w.RunCycle()
		}
		res.Rows[i] = row
	})
	return res
}
