package scenario

import (
	"fmt"
	"strings"

	"peersampling/internal/core"
	"peersampling/internal/sim"
	"peersampling/internal/stats"
)

// Figure7Protocol is the dead-link healing trace of one protocol.
type Figure7Protocol struct {
	Protocol core.Protocol
	// DeadLinks[i] is the number of dead links i cycles after the
	// failure event (index 0 is immediately after the failure).
	DeadLinks []int
	// HalfLife is the number of cycles until dead links first dropped to
	// half their initial count, or -1 if that never happened within the
	// recorded horizon.
	HalfLife int
	// CyclesToClean is the number of cycles until zero dead links, or -1.
	CyclesToClean int
}

// Figure7Result reproduces the paper's Figure 7: removal of dead links
// after a catastrophic failure of half the network at the converged cycle.
type Figure7Result struct {
	Scale       Scale
	FailureAt   int // cycle of the failure event
	Horizon     int // cycles simulated after the failure
	KilledNodes int
	Protocols   []Figure7Protocol
}

// ID implements Result.
func (*Figure7Result) ID() string { return "figure7" }

// Render implements Result.
func (r *Figure7Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 7 (50%% of nodes fail at cycle %d; overall dead links afterwards)\n", r.FailureAt)
	offsets := []int{0, 10, 20, 40, 70, 100, 150, 200}
	header := []string{"protocol"}
	for _, o := range offsets {
		if o <= r.Horizon {
			header = append(header, fmt.Sprintf("+%d", o))
		}
	}
	header = append(header, "half-life", "clean after")
	tb := newTable(header...)
	for _, pr := range r.Protocols {
		row := []string{pr.Protocol.String()}
		for _, o := range offsets {
			if o <= r.Horizon {
				row = append(row, fmt.Sprintf("%d", pr.DeadLinks[o]))
			}
		}
		hl, cl := "-", "-"
		if pr.HalfLife >= 0 {
			hl = fmt.Sprintf("%d", pr.HalfLife)
		}
		if pr.CyclesToClean >= 0 {
			cl = fmt.Sprintf("%d", pr.CyclesToClean)
		}
		row = append(row, hl, cl)
		tb.addRow(row...)
	}
	b.WriteString(tb.String())
	return b.String()
}

// DeadLinkSeries exposes the healing trace as a stats.Series, cycle-
// indexed from the failure event.
func (p Figure7Protocol) DeadLinkSeries() *stats.Series {
	s := stats.NewSeries(p.Protocol.String() + " dead links")
	for i, v := range p.DeadLinks {
		s.Append(i, float64(v))
	}
	return s
}

// RunFigure7 reproduces Figure 7: each studied protocol converges from a
// random topology for Cycles cycles, then 50% of the nodes fail at once
// and the simulation continues for another 2/3 Cycles (the paper runs to
// cycle 500 after failing at 300), tracking the total number of dead
// links in live views each cycle.
func RunFigure7(sc Scale, seed uint64) *Figure7Result {
	if err := sc.validate(); err != nil {
		panic(err)
	}
	protos := core.StudiedProtocols()
	horizon := sc.Cycles * 2 / 3
	res := &Figure7Result{
		Scale:     sc,
		FailureAt: sc.Cycles,
		Horizon:   horizon,
		Protocols: make([]Figure7Protocol, len(protos)),
	}
	forEachPar(len(protos), func(pi int) {
		cfg := sim.Config{Protocol: protos[pi], ViewSize: sc.ViewSize, Seed: mix(seed, pi)}
		w := BuildRandom(cfg, sc.N)
		w.Run(sc.Cycles)
		killed := w.KillFraction(0.5)
		if pi == 0 {
			res.KilledNodes = len(killed)
		}
		dead := make([]int, 0, horizon+1)
		dead = append(dead, w.DeadLinks())
		for i := 0; i < horizon; i++ {
			w.RunCycle()
			dead = append(dead, w.DeadLinks())
		}
		pr := Figure7Protocol{Protocol: protos[pi], DeadLinks: dead, HalfLife: -1, CyclesToClean: -1}
		for i, v := range dead {
			if pr.HalfLife < 0 && v*2 <= dead[0] {
				pr.HalfLife = i
			}
			if v == 0 {
				pr.CyclesToClean = i
				break
			}
		}
		res.Protocols[pi] = pr
	})
	return res
}
