package scenario

import (
	"fmt"
	"math"

	"peersampling/internal/core"
	"peersampling/internal/sim"
	"peersampling/internal/stats"
)

// degreeTrace runs a random-initialisation experiment tracing the degree
// of `traced` fixed random nodes over `cycles` cycles. It returns one time
// series per traced node (cycles 1..cycles) plus the average degree over
// all nodes at the final cycle (the paper's D_K).
func degreeTrace(proto core.Protocol, sc Scale, seed uint64, traced, cycles int) (series [][]float64, finalAvg float64) {
	cfg := sim.Config{Protocol: proto, ViewSize: sc.ViewSize, Seed: mix(seed, 0x7AB1E)}
	w := BuildRandom(cfg, sc.N)

	// Fixed random sample of live nodes to trace. IDs are 0..N-1 here, so
	// sampling IDs is sampling nodes.
	if traced > sc.N {
		traced = sc.N
	}
	ids := pickIDs(sc.N, traced, mix(seed, 0x5EED))

	series = make([][]float64, traced)
	for i := range series {
		series[i] = make([]float64, 0, cycles)
	}
	var lastAvg float64
	for cyc := 1; cyc <= cycles; cyc++ {
		w.RunCycle()
		snap := w.TakeSnapshot()
		for i, id := range ids {
			d, _ := snap.DegreeOf(id)
			series[i] = append(series[i], float64(d))
		}
		if cyc == cycles {
			lastAvg = snap.Graph.AverageDegree()
		}
	}
	return series, lastAvg
}

// pickIDs returns k distinct IDs from 0..n-1, deterministically from seed.
func pickIDs(n, k int, seed uint64) []sim.NodeID {
	rng := newRand(seed)
	perm := rng.Perm(n)
	out := make([]sim.NodeID, k)
	for i := 0; i < k; i++ {
		out[i] = sim.NodeID(perm[i])
	}
	return out
}

// Table2Row mirrors one row of the paper's Table 2.
type Table2Row struct {
	Protocol core.Protocol
	// DK is the average node degree over the whole overlay at the final
	// cycle K.
	DK float64
	// MeanOfMeans is the average over traced nodes of their time-averaged
	// degree (the paper's d bar).
	MeanOfMeans float64
	// StdOfMeans is the empirical standard deviation of the traced nodes'
	// time-averaged degrees (the paper's sqrt(sigma)).
	StdOfMeans float64
}

// Table2Result reproduces the paper's Table 2.
type Table2Result struct {
	Scale  Scale
	Traced int
	Rows   []Table2Row
}

// ID implements Result.
func (*Table2Result) ID() string { return "table2" }

// Render implements Result.
func (t *Table2Result) Render() string {
	tb := newTable("protocol", "D_K", "dbar", "sqrt(sigma)")
	for _, r := range t.Rows {
		tb.addRow(r.Protocol.String(), f3(r.DK), f3(r.MeanOfMeans), f3(r.StdOfMeans))
	}
	return fmt.Sprintf("Table 2 (random initialisation, N=%d, c=%d, K=%d cycles, %d traced nodes)\n%s",
		t.Scale.N, t.Scale.ViewSize, t.Scale.Cycles, t.Traced, tb.String())
}

// RunTable2 reproduces Table 2: statistics of the degree dynamics of
// individual nodes for all eight studied protocols.
func RunTable2(sc Scale, seed uint64) *Table2Result {
	if err := sc.validate(); err != nil {
		panic(err)
	}
	protos := core.StudiedProtocols()
	res := &Table2Result{Scale: sc, Traced: sc.TracedNodes, Rows: make([]Table2Row, len(protos))}
	forEachPar(len(protos), func(pi int) {
		series, finalAvg := degreeTrace(protos[pi], sc, mix(seed, pi), sc.TracedNodes, sc.Cycles)
		means := make([]float64, len(series))
		for i, s := range series {
			means[i] = stats.Mean(s)
		}
		res.Rows[pi] = Table2Row{
			Protocol:    protos[pi],
			DK:          finalAvg,
			MeanOfMeans: stats.Mean(means),
			StdOfMeans:  math.Sqrt(stats.Variance(means)),
		}
	})
	return res
}
