package scenario

import (
	"fmt"
	"strings"

	"peersampling/internal/core"
	"peersampling/internal/graph"
	"peersampling/internal/sim"
)

// Figure6Point is the averaged damage at one removal fraction.
type Figure6Point struct {
	RemovedPercent int
	// AvgOutsideLargest is the paper's y axis: the average number of
	// surviving nodes left outside the largest connected cluster.
	AvgOutsideLargest float64
	// PartitionedRuns counts repetitions in which the survivors were
	// partitioned at all.
	PartitionedRuns int
}

// Figure6Protocol holds the sweep of one protocol.
type Figure6Protocol struct {
	Protocol core.Protocol
	Points   []Figure6Point
	// MinPartitionPercent is the smallest removal percentage at which any
	// repetition partitioned (0 if none did). The paper observed no
	// partitioning below 69% removal.
	MinPartitionPercent int
}

// Figure6Result reproduces the paper's Figure 6: connectivity of the
// converged overlay under increasing random node removal.
type Figure6Result struct {
	Scale     Scale
	Percents  []int
	Protocols []Figure6Protocol
}

// ID implements Result.
func (*Figure6Result) ID() string { return "figure6" }

// Render implements Result.
func (r *Figure6Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 (converged overlays at cycle %d, N=%d; avg nodes outside largest cluster, %d repetitions)\n",
		r.Scale.Cycles, r.Scale.N, r.Scale.Reps)
	header := []string{"protocol"}
	for _, p := range r.Percents {
		header = append(header, fmt.Sprintf("%d%%", p))
	}
	header = append(header, "first partition")
	tb := newTable(header...)
	for _, pr := range r.Protocols {
		row := []string{pr.Protocol.String()}
		for _, pt := range pr.Points {
			row = append(row, f2(pt.AvgOutsideLargest))
		}
		if pr.MinPartitionPercent > 0 {
			row = append(row, fmt.Sprintf("%d%%", pr.MinPartitionPercent))
		} else {
			row = append(row, "never")
		}
		tb.addRow(row...)
	}
	b.WriteString(tb.String())
	return b.String()
}

// figure6Percents returns the removal percentages of the sweep (the
// paper's x axis runs from 65% to 95%).
func figure6Percents() []int {
	out := make([]int, 0, 7)
	for p := 65; p <= 95; p += 5 {
		out = append(out, p)
	}
	return out
}

// RunFigure6 reproduces Figure 6: converge each studied protocol from a
// random topology, then repeatedly remove random fractions of nodes and
// measure how many survivors fall outside the largest connected cluster.
// The reverse-incremental union-find sweep makes each repetition linear in
// the graph size.
func RunFigure6(sc Scale, seed uint64) *Figure6Result {
	if err := sc.validate(); err != nil {
		panic(err)
	}
	protos := core.StudiedProtocols()
	percents := figure6Percents()
	res := &Figure6Result{
		Scale:     sc,
		Percents:  percents,
		Protocols: make([]Figure6Protocol, len(protos)),
	}
	forEachPar(len(protos), func(pi int) {
		cfg := sim.Config{Protocol: protos[pi], ViewSize: sc.ViewSize, Seed: mix(seed, pi)}
		w := BuildRandom(cfg, sc.N)
		w.Run(sc.Cycles)
		g := w.TakeSnapshot().Graph

		checkpoints := make([]int, len(percents))
		for i, p := range percents {
			checkpoints[i] = g.NumNodes() * p / 100
		}
		sumOutside := make([]float64, len(percents))
		partitioned := make([]int, len(percents))
		for rep := 0; rep < sc.Reps; rep++ {
			sweep := graph.RemovalSweep(g, checkpoints, newRand(mix(seed, pi*1000+rep)))
			for i, pt := range sweep {
				sumOutside[i] += float64(pt.OutsideLargest)
				if pt.Components > 1 {
					partitioned[i]++
				}
			}
		}
		pr := Figure6Protocol{Protocol: protos[pi], Points: make([]Figure6Point, len(percents))}
		for i, p := range percents {
			pr.Points[i] = Figure6Point{
				RemovedPercent:    p,
				AvgOutsideLargest: sumOutside[i] / float64(sc.Reps),
				PartitionedRuns:   partitioned[i],
			}
			if pr.MinPartitionPercent == 0 && partitioned[i] > 0 {
				pr.MinPartitionPercent = p
			}
		}
		res.Protocols[pi] = pr
	})
	return res
}
