package scenario

import (
	"fmt"
	"strings"
)

// Figure2Result reproduces the paper's Figure 2: the dynamics of the
// clustering coefficient, average node degree and average path length in
// the growing overlay scenario, for the six protocols that remain stable
// there, against the uniform-random baseline.
type Figure2Result struct {
	Scale    Scale
	Baseline Baseline
	Dynamics []Dynamics
	// Connected records whether the plotted run of each protocol ended
	// connected (the (*,rand,push) lines require retrying seeds, as the
	// paper plots a non-partitioned run).
	Connected []bool
}

// ID implements Result.
func (*Figure2Result) ID() string { return "figure2" }

// Render implements Result.
func (r *Figure2Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 2 (growing scenario, N=%d, c=%d, %d cycles; growth ends at cycle %d)\n\n",
		r.Scale.N, r.Scale.ViewSize, r.Scale.Cycles, r.Scale.GrowthCycles())
	for _, metric := range []string{"clustering", "avgdegree", "pathlen"} {
		b.WriteString(renderDynamics("Figure 2", r.Dynamics, r.Baseline, metric))
		b.WriteByte('\n')
	}
	for i, d := range r.Dynamics {
		if !r.Connected[i] {
			fmt.Fprintf(&b, "note: no connected run found for %s within the attempt budget\n", d.Protocol)
		}
	}
	return b.String()
}

// RunFigure2 reproduces Figure 2. Push-only protocols are retried with
// fresh seeds until a non-partitioned run is found (the paper plots such a
// run); pushpull protocols use the first run, which the paper reports is
// always connected.
func RunFigure2(sc Scale, seed uint64) *Figure2Result {
	if err := sc.validate(); err != nil {
		panic(err)
	}
	protos := figure2Protocols()
	res := &Figure2Result{
		Scale:     sc,
		Baseline:  ComputeBaseline(sc, mix(seed, 999)),
		Dynamics:  make([]Dynamics, len(protos)),
		Connected: make([]bool, len(protos)),
	}
	const maxAttempts = 10
	forEachPar(len(protos), func(i int) {
		obs, connected := connectedGrowingRun(protos[i], sc, mix(seed, i), maxAttempts)
		res.Dynamics[i] = Dynamics{Protocol: protos[i], Observations: obs}
		res.Connected[i] = connected
	})
	return res
}
