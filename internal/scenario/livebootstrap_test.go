package scenario

import (
	"strings"
	"testing"

	"peersampling/internal/metrics"
)

// The live bootstrap scenario must converge a real loopback TCP cluster
// from a single contact, and a collector attached to it must observe the
// cluster: every node registered, wire counters moving, views populated.
// Run under -race in CI.
func TestLiveBootstrapConvergesAndIsObservable(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket scenario")
	}
	coll := metrics.New()
	res := RunLiveBootstrap(Quick, 7, coll)

	if !res.Converged() {
		t.Fatalf("cluster did not converge: %d/%d complete views", res.CompleteViews, res.Params.Nodes)
	}
	if res.Exchanges == 0 || res.Served == 0 {
		t.Fatalf("no gossip happened: %+v", res)
	}
	if res.Wire.Dials == 0 || res.Wire.BytesOut == 0 {
		t.Fatalf("wire counters flat: %+v", res.Wire)
	}
	if res.ID() != "bootstrap" {
		t.Fatalf("ID() = %q", res.ID())
	}
	for _, want := range []string{"complete views", "bytes on the wire", "converged: true"} {
		if !strings.Contains(res.Render(), want) {
			t.Fatalf("Render() missing %q:\n%s", want, res.Render())
		}
	}

	if coll.Len() != res.Params.Nodes {
		t.Fatalf("collector holds %d sources want %d", coll.Len(), res.Params.Nodes)
	}
	// The nodes are closed by now but remain observable: the snapshots
	// must carry the converged views and non-zero wire counters.
	snaps := coll.Snapshot()
	var exchanges uint64
	for _, s := range snaps {
		if s.Wire == nil {
			t.Fatalf("node %s snapshot has no wire counters", s.Node)
		}
		if s.ViewSize == 0 {
			t.Errorf("node %s snapshot shows an empty view after convergence", s.Node)
		}
		exchanges += s.Exchanges
	}
	if exchanges != res.Exchanges {
		t.Errorf("collector sees %d exchanges, result reports %d", exchanges, res.Exchanges)
	}
	if snaps[0].Node != "node00" {
		t.Errorf("first registered node = %q want node00", snaps[0].Node)
	}
}
