package scenario

import (
	"strings"
	"testing"

	"peersampling/internal/metrics"
)

// The live bootstrap scenario must converge a real loopback TCP cluster
// from a single contact, and a collector attached to it must observe the
// cluster: every node registered, wire counters moving, views populated.
// Run under -race in CI.
func TestLiveBootstrapConvergesAndIsObservable(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket scenario")
	}
	coll := metrics.New()
	res, err := RunLiveBootstrap(Quick, 7, LiveEnv{Collector: coll})
	if err != nil {
		t.Fatal(err)
	}

	if !res.Converged() {
		t.Fatalf("cluster did not converge: %d/%d complete views", res.CompleteViews, res.Params.Nodes)
	}
	if res.Driver != "inproc" {
		t.Fatalf("default driver = %q", res.Driver)
	}
	if res.Exchanges == 0 || res.Served == 0 {
		t.Fatalf("no gossip happened: %+v", res)
	}
	if res.Wire.Dials == 0 || res.Wire.BytesOut == 0 {
		t.Fatalf("wire counters flat: %+v", res.Wire)
	}
	if res.Latency.Count == 0 {
		t.Fatalf("no exchange latencies recorded: %+v", res.Latency)
	}
	if p50, p99 := res.Latency.Quantile(0.5), res.Latency.Quantile(0.99); p50 <= 0 || p99 < p50 {
		t.Fatalf("latency quantiles inconsistent: p50=%v p99=%v", p50, p99)
	}
	if res.ID() != "bootstrap" {
		t.Fatalf("ID() = %q", res.ID())
	}
	for _, want := range []string{"complete views", "bytes on the wire", "latency p50", "inproc driver", "converged: true"} {
		if !strings.Contains(res.Render(), want) {
			t.Fatalf("Render() missing %q:\n%s", want, res.Render())
		}
	}

	if coll.Len() != res.Params.Nodes {
		t.Fatalf("collector holds %d sources want %d", coll.Len(), res.Params.Nodes)
	}
	// The nodes are closed by now but remain observable: the snapshots
	// must carry the converged views and non-zero wire counters.
	snaps := coll.Snapshot()
	var exchanges uint64
	for _, s := range snaps {
		if s.Wire == nil {
			t.Fatalf("node %s snapshot has no wire counters", s.Node)
		}
		if s.ViewSize == 0 {
			t.Errorf("node %s snapshot shows an empty view after convergence", s.Node)
		}
		exchanges += s.Exchanges
	}
	// The result's totals were taken while the cluster still gossiped;
	// the collector's final numbers can only have moved forward.
	if exchanges < res.Exchanges {
		t.Errorf("collector sees %d exchanges, result reported %d", exchanges, res.Exchanges)
	}
	if snaps[0].Node != "node00" {
		t.Errorf("first registered node = %q want node00", snaps[0].Node)
	}
}
