package scenario

import (
	"strings"
	"testing"

	"peersampling/internal/metrics"
)

// The live gateway scenario is the load harness's acceptance test: over
// a thousand emulated clients ramp against every member's gateway while
// a kill wave removes a quarter of the fleet, and the surviving
// gateways must keep serving fresh samples with bounded tail latency.
// Run under -race in CI; the subprocess-driver equivalent is covered by
// scripts/loadgen-smoke.sh.
func TestLiveGatewayServesThroughKillWave(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket load scenario")
	}
	coll := metrics.New()
	res, err := RunLiveGateway(Quick, 13, LiveEnv{Collector: coll})
	if err != nil {
		t.Fatal(err)
	}

	if !res.Converged() {
		t.Fatalf("gateways did not serve through the kill wave:\n%s", res.Render())
	}
	if res.ID() != "livegateway" {
		t.Fatalf("ID() = %q", res.ID())
	}
	if len(res.Stages) != len(res.Params.Stages) {
		t.Fatalf("stages reported = %d want %d", len(res.Stages), len(res.Params.Stages))
	}
	// The ramp's headline claim: the big stage really emulated >= 1000
	// clients, and the kill wave really fired inside it.
	last := res.Stages[len(res.Stages)-1]
	if last.Clients < 1000 {
		t.Fatalf("final stage ran %d clients, want >= 1000", last.Clients)
	}
	if last.Killed == 0 || res.KilledTotal == 0 {
		t.Fatalf("kill wave did not fire: %+v", res)
	}
	wantKillAtLeast := (res.Params.Nodes + 3) / 4 // ceil(25%)
	if res.KilledTotal < wantKillAtLeast {
		t.Errorf("killed %d members, want >= %d (25%%)", res.KilledTotal, wantKillAtLeast)
	}
	for i, st := range res.Stages {
		if st.Survivor.OK == 0 {
			t.Errorf("stage %d: no successful samples from survivors", i+1)
		}
		if st.Survivor.Latency.Count == 0 {
			t.Errorf("stage %d: no latency observations", i+1)
		}
	}
	for _, want := range []string{"ramping load", "stage 1", "stage 2", "served through the kill wave: true"} {
		if !strings.Contains(res.Render(), want) {
			t.Fatalf("Render() missing %q:\n%s", want, res.Render())
		}
	}

	// The CSV artifact carries the long-form load schema, one cycle per
	// stage, including the per-stage totals.
	doc, ok := res.CSV()["livegateway_load"]
	if !ok {
		t.Fatal("CSV() missing livegateway_load")
	}
	key, rows, err := metrics.ParseLongCSV(doc)
	if err != nil {
		t.Fatal(err)
	}
	if key != "target" {
		t.Fatalf("CSV key column = %q want target", key)
	}
	sawMetric := map[string]bool{}
	maxCycle := -1
	for _, r := range rows {
		sawMetric[r.Metric] = true
		if r.Cycle > maxCycle {
			maxCycle = r.Cycle
		}
	}
	for _, m := range []string{"load_ok", "load_rate_limited", "load_latency_p50", "load_latency_p99", "load_freshness_p99"} {
		if !sawMetric[m] {
			t.Errorf("CSV missing metric %s", m)
		}
	}
	if maxCycle != len(res.Stages)-1 {
		t.Errorf("CSV max cycle = %d want %d", maxCycle, len(res.Stages)-1)
	}
}

func TestLiveGatewayRegistered(t *testing.T) {
	d, ok := Find("livegateway")
	if !ok {
		t.Fatal("livegateway experiment not registered")
	}
	if d.Title == "" || d.Run == nil || d.RunLive == nil {
		t.Fatalf("incomplete registration: %+v", d)
	}
}
