package scenario

import (
	"fmt"

	"peersampling/internal/core"
	"peersampling/internal/sim"
)

// Table1Row summarises the partitioning behaviour of one protocol in the
// growing overlay scenario, mirroring one row of the paper's Table 1.
// Cluster statistics are averaged over the partitioned runs only, matching
// the paper (its (tail,rand,push) row reports exactly 2.00 clusters from a
// single partitioned run out of 100).
type Table1Row struct {
	Protocol        core.Protocol
	Runs            int
	PartitionedRuns int
	AvgClusters     float64 // over partitioned runs
	AvgLargest      float64 // over partitioned runs
}

// PartitionedPercent returns the share of partitioned runs in percent.
func (r Table1Row) PartitionedPercent() float64 {
	return 100 * float64(r.PartitionedRuns) / float64(r.Runs)
}

// Table1Result is the reproduction of the paper's Table 1.
type Table1Result struct {
	Scale Scale
	Rows  []Table1Row
}

// ID implements Result.
func (*Table1Result) ID() string { return "table1" }

// Render implements Result.
func (t *Table1Result) Render() string {
	tb := newTable("protocol", "partitioned runs", "avg clusters", "avg largest cluster")
	for _, r := range t.Rows {
		avgC, avgL := "-", "-"
		if r.PartitionedRuns > 0 {
			avgC, avgL = f2(r.AvgClusters), f2(r.AvgLargest)
		}
		tb.addRow(r.Protocol.String(),
			fmt.Sprintf("%.0f%% (%d/%d)", r.PartitionedPercent(), r.PartitionedRuns, r.Runs),
			avgC, avgL)
	}
	return fmt.Sprintf("Table 1 (growing scenario, N=%d, c=%d, cycle %d, %d runs)\n%s",
		t.Scale.N, t.Scale.ViewSize, t.Scale.Cycles, t.Scale.Reps, tb.String())
}

// RunTable1 reproduces Table 1: for each push protocol, run the growing
// scenario Reps times and report how often the overlay is partitioned at
// the final cycle, with cluster statistics over the partitioned runs.
func RunTable1(sc Scale, seed uint64) *Table1Result {
	if err := sc.validate(); err != nil {
		panic(err)
	}
	protos := table1Protocols()
	res := &Table1Result{Scale: sc, Rows: make([]Table1Row, len(protos))}

	type runOutcome struct {
		partitioned bool
		clusters    int
		largest     int
	}
	for pi, proto := range protos {
		outcomes := make([]runOutcome, sc.Reps)
		forEachPar(sc.Reps, func(rep int) {
			cfg := sim.Config{Protocol: proto, ViewSize: sc.ViewSize, Seed: mix(seed, pi*10_000+rep)}
			w := RunGrowing(cfg, sc, nil)
			comp := w.TakeSnapshot().Graph.Components()
			outcomes[rep] = runOutcome{
				partitioned: !comp.Connected(),
				clusters:    comp.Count,
				largest:     comp.Largest,
			}
		})
		row := Table1Row{Protocol: proto, Runs: sc.Reps}
		var sumClusters, sumLargest float64
		for _, o := range outcomes {
			if o.partitioned {
				row.PartitionedRuns++
				sumClusters += float64(o.clusters)
				sumLargest += float64(o.largest)
			}
		}
		if row.PartitionedRuns > 0 {
			row.AvgClusters = sumClusters / float64(row.PartitionedRuns)
			row.AvgLargest = sumLargest / float64(row.PartitionedRuns)
		}
		res.Rows[pi] = row
	}
	return res
}
