// Package scenario reproduces the paper's complete experimental
// methodology as a registry of named, seeded experiments. Each experiment
// (table1, figure2..figure7, table2, exclusion) rebuilds one artefact of
// the evaluation section and renders a paper-shaped text table; the
// extensions (uniformity, churn, ablation, and the live bootstrap,
// hostile and livechurn drills) answer questions the paper raises but
// does not measure.
//
// Experiments are pure functions of (Scale, seed): Scale picks the
// network size, view capacity, cycle counts and estimator effort (Quick
// for seconds, Medium for minutes, Full for the paper's N = 10^4 with 100
// repetitions), and the seed drives every RNG through deterministic
// derivation (mix), so any row of any table can be regenerated exactly.
// Repetitions run in parallel (forEachPar) with each index writing only
// its own result slot, which keeps parallelism invisible to the output.
//
// Most experiments run on the cycle-based simulator (internal/sim). The
// exceptions are the live drills, which boot a real cluster on a fleet
// driver (internal/fleet, selected through LiveEnv — goroutine nodes in
// this process or forked psnode processes): RunLiveBootstrap measures
// single-contact convergence, RunHostile attacks one node with a
// connection flood and slowloris peers to prove the transport hardening
// layer holds, and RunLiveChurn kills and respawns a fraction of the
// fleet per round to prove re-convergence. Their counters are
// timing-dependent where everything else is seeded.
//
// Command experiments (cmd/experiments) is the CLI over this registry.
package scenario
