package scenario

import (
	"fmt"
	"strings"
	"time"

	"peersampling/internal/chaos"
	"peersampling/internal/core"
	"peersampling/internal/fleet"
)

// The live churn experiment is the fleet-scale sibling of the simulated
// "churn" scenario and the harness the multi-process driver exists for:
// a live cluster in which a fraction of the members is killed outright
// every round — under the subprocess driver that is SIGKILL against real
// psnode processes, taking kernel connection state and in-flight
// exchanges with them — then replaced by fresh joiners bootstrapped from
// the survivors. The paper's claim under test is self-healing: the
// overlay must re-converge among survivors after every kill wave and
// absorb the replacements to full membership, with failed exchanges
// against dead peers staying routine noise.

// liveChurnPlan names the fault plan the experiment replays: two kill
// waves with respawns (see internal/chaos/plans).
const liveChurnPlan = "churn-waves"

// liveChurnParams derives the fleet's shape from a simulation Scale and
// the churn schedule from the named chaos plan.
type liveChurnParams struct {
	Nodes        int           // fleet size at full strength
	ViewSize     int           // view capacity, capped below fleet size
	Period       time.Duration // gossip period T
	Plan         string        // chaos plan driving the kill waves
	KillFraction float64       // fraction of live members killed per wave (from the plan)
	Rounds       int           // kill/respawn rounds (the plan's kill-wave count)
}

func liveChurnDerive(sc Scale, plan *chaos.Plan) liveChurnParams {
	nodes := sc.N / 50
	if nodes < 8 {
		nodes = 8
	}
	if nodes > 24 {
		nodes = 24
	}
	view := sc.ViewSize
	if view > nodes-1 {
		view = nodes - 1
	}
	waves := plan.KillWaves()
	return liveChurnParams{
		Nodes:        nodes,
		ViewSize:     view,
		Period:       20 * time.Millisecond,
		Plan:         plan.Name,
		KillFraction: waves[0].Fraction,
		Rounds:       len(waves),
	}
}

// LiveChurnRound reports one kill/respawn wave.
type LiveChurnRound struct {
	// Killed is how many members this round removed; Respawned how many
	// fresh joiners replaced them.
	Killed    int
	Respawned int
	// SurvivorsReconverged reports whether every survivor's view was
	// complete (among survivors) before the respawn; AfterKill is how
	// long that took.
	SurvivorsReconverged bool
	AfterKill            time.Duration
	// FullReconverged reports whether the fleet reached full complete
	// views again after the respawn; AfterRespawn is how long that took.
	FullReconverged bool
	AfterRespawn    time.Duration
}

// LiveChurnResult reports the live churn experiment.
type LiveChurnResult struct {
	Params liveChurnParams
	// Driver names the fleet driver that ran the cluster.
	Driver string

	// BootstrapComplete counts complete views after initial bootstrap
	// (must be Nodes for the experiment to mean anything).
	BootstrapComplete int
	BootstrapTime     time.Duration
	Rounds            []LiveChurnRound
	// KilledTotal is the total members killed across rounds.
	KilledTotal int
	// FinalCompleteViews / FinalLive is the end-state convergence count.
	FinalCompleteViews int
	FinalLive          int
	// Failures counts failed exchanges fleet-wide at the end — churn
	// guarantees some; none of them may have been fatal.
	Failures uint64
	// StrayDescriptors counts view entries naming addresses no fleet
	// member ever owned; must be 0 (dead members' addresses aging out of
	// views are legitimate and not counted).
	StrayDescriptors int
}

// ID implements Result.
func (r *LiveChurnResult) ID() string { return "livechurn" }

// Converged reports whether the fleet re-converged after every wave and
// ended at full, uncontaminated membership.
func (r *LiveChurnResult) Converged() bool {
	if r.BootstrapComplete != r.Params.Nodes {
		return false
	}
	for _, round := range r.Rounds {
		if !round.SurvivorsReconverged || !round.FullReconverged {
			return false
		}
	}
	return r.FinalLive == r.Params.Nodes &&
		r.FinalCompleteViews == r.FinalLive &&
		r.StrayDescriptors == 0
}

// Render implements Result.
func (r *LiveChurnResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Live churn: kill and respawn waves against a real fleet\n")
	fmt.Fprintf(&b, "fleet: %d nodes (%s driver), c=%d, T=%v, plan=%s: %.0f%% killed per round, %d rounds\n",
		r.Params.Nodes, r.Driver, r.Params.ViewSize, r.Params.Period,
		r.Params.Plan, r.Params.KillFraction*100, r.Params.Rounds)
	fmt.Fprintf(&b, "%-38s %10s\n", "", "value")
	fmt.Fprintf(&b, "%-38s %7d/%2d\n", "complete views after bootstrap", r.BootstrapComplete, r.Params.Nodes)
	fmt.Fprintf(&b, "%-38s %10v\n", "bootstrap time", r.BootstrapTime.Round(time.Millisecond))
	for i, round := range r.Rounds {
		fmt.Fprintf(&b, "round %d: killed %d, survivors re-converged=%v in %v; respawned %d, full views=%v in %v\n",
			i+1, round.Killed, round.SurvivorsReconverged, round.AfterKill.Round(time.Millisecond),
			round.Respawned, round.FullReconverged, round.AfterRespawn.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "%-38s %10d\n", "members killed in total", r.KilledTotal)
	fmt.Fprintf(&b, "%-38s %7d/%2d\n", "final complete views", r.FinalCompleteViews, r.FinalLive)
	fmt.Fprintf(&b, "%-38s %10d\n", "failed exchanges absorbed", r.Failures)
	fmt.Fprintf(&b, "%-38s %10d\n", "stray view entries", r.StrayDescriptors)
	fmt.Fprintf(&b, "re-converged through churn: %v\n", r.Converged())
	return b.String()
}

// RunLiveChurn boots a fleet on env's fleet driver, then replays the
// churn-waves chaos plan against it: each plan wave kills a fraction of
// the live members (hard kill — no goodbye gossip) and respawns the same
// number against surviving contacts, with the scenario asserting
// re-convergence between the executor's steps. Kill victims are chosen
// by the executor's seeded RNG; with env.Collector set, respawned
// members register under fresh names and dead subprocess members stay
// visible as stale sources. The seed drives victim choice and protocol
// randomness; timing is real.
func RunLiveChurn(sc Scale, seed uint64, env LiveEnv) (*LiveChurnResult, error) {
	plan, err := chaos.Load(liveChurnPlan)
	if err != nil {
		return nil, err
	}
	p := liveChurnDerive(sc, plan)
	res := &LiveChurnResult{Params: p, Driver: env.DriverName()}

	cluster, err := env.cluster(fleet.Config{
		Protocol: core.Newscast,
		ViewSize: p.ViewSize,
		Period:   p.Period,
		Seed:     seed,
		Backend:  "tcp",
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	members, err := spawnLinear(cluster, p.Nodes)
	if err != nil {
		return nil, err
	}
	ever := liveAddrs(members)
	// Dead members drop out of Cluster.Snapshot, so the executor captures
	// their failure counters at kill time (Applied.KilledFailures) to keep
	// the fleet-wide total honest — the killed members are exactly the
	// ones churn hit.
	var deadFailures uint64
	// Subprocess members take real process-spawn time; the flat grace on
	// top of the gossip-scaled deadline covers it on loaded CI machines.
	phaseTimeout := 30*p.Period*time.Duration(p.Nodes) + 5*time.Second

	res.BootstrapComplete, res.BootstrapTime = waitCompleteViews(members, p.Period, phaseTimeout)

	// The executor owns victim choice and respawn bootstrapping from here;
	// the scenario paces it with Step so each wave is measured between
	// kill and respawn. No Collector: the executor would register as an
	// extra source, and this experiment's collector contract is "the fleet
	// plus every respawn".
	ex := chaos.New(plan, cluster, members, chaos.Options{Seed: mix(seed, 0x4C1)})
	defer ex.Close()

	for round := 0; round < p.Rounds; round++ {
		report := LiveChurnRound{}

		// Kill wave: the plan's next step removes ceil(fraction * live).
		ap, err := ex.Step()
		if err != nil {
			return nil, fmt.Errorf("scenario: churn round %d: %w", round+1, err)
		}
		deadFailures += ap.KilledFailures
		report.Killed = len(ap.Killed)
		res.KilledTotal += len(ap.Killed)
		members = ex.Members()

		// Survivors must re-converge among themselves.
		var complete int
		complete, report.AfterKill = waitCompleteViews(members, p.Period, phaseTimeout)
		_, live := completeLiveViews(members)
		report.SurvivorsReconverged = complete == live

		// Respawn wave: the derived step spawns as many fresh joiners as
		// the wave killed, bootstrapped from surviving contacts (up to
		// three, like a deployment's contact list).
		ap, err = ex.Step()
		if err != nil {
			return nil, fmt.Errorf("scenario: churn round %d: %w", round+1, err)
		}
		for _, m := range ap.Spawned {
			ever[m.Addr()] = true
		}
		report.Respawned = len(ap.Spawned)
		members = ex.Members()
		complete, report.AfterRespawn = waitCompleteViews(members, p.Period, phaseTimeout)
		_, live = completeLiveViews(members)
		report.FullReconverged = complete == live && live == p.Nodes

		res.Rounds = append(res.Rounds, report)
	}

	res.FinalCompleteViews, res.FinalLive = completeLiveViews(members)
	res.StrayDescriptors = strayDescriptors(members, ever)
	_, res.Failures, _, _, _ = liveTotals(cluster.Snapshot())
	res.Failures += deadFailures
	return res, nil
}
