package scenario

import (
	"fmt"
	"strings"
	"time"

	"peersampling/internal/core"
	"peersampling/internal/fleet"
)

// The live churn experiment is the fleet-scale sibling of the simulated
// "churn" scenario and the harness the multi-process driver exists for:
// a live cluster in which a fraction of the members is killed outright
// every round — under the subprocess driver that is SIGKILL against real
// psnode processes, taking kernel connection state and in-flight
// exchanges with them — then replaced by fresh joiners bootstrapped from
// the survivors. The paper's claim under test is self-healing: the
// overlay must re-converge among survivors after every kill wave and
// absorb the replacements to full membership, with failed exchanges
// against dead peers staying routine noise.

// liveChurnParams derives the fleet's shape from a simulation Scale.
type liveChurnParams struct {
	Nodes        int           // fleet size at full strength
	ViewSize     int           // view capacity, capped below fleet size
	Period       time.Duration // gossip period T
	KillFraction float64       // fraction of live members killed per round
	Rounds       int           // kill/respawn rounds
}

func liveChurnDerive(sc Scale) liveChurnParams {
	nodes := sc.N / 50
	if nodes < 8 {
		nodes = 8
	}
	if nodes > 24 {
		nodes = 24
	}
	view := sc.ViewSize
	if view > nodes-1 {
		view = nodes - 1
	}
	return liveChurnParams{
		Nodes:        nodes,
		ViewSize:     view,
		Period:       20 * time.Millisecond,
		KillFraction: 0.25,
		Rounds:       2,
	}
}

// LiveChurnRound reports one kill/respawn wave.
type LiveChurnRound struct {
	// Killed is how many members this round removed; Respawned how many
	// fresh joiners replaced them.
	Killed    int
	Respawned int
	// SurvivorsReconverged reports whether every survivor's view was
	// complete (among survivors) before the respawn; AfterKill is how
	// long that took.
	SurvivorsReconverged bool
	AfterKill            time.Duration
	// FullReconverged reports whether the fleet reached full complete
	// views again after the respawn; AfterRespawn is how long that took.
	FullReconverged bool
	AfterRespawn    time.Duration
}

// LiveChurnResult reports the live churn experiment.
type LiveChurnResult struct {
	Params liveChurnParams
	// Driver names the fleet driver that ran the cluster.
	Driver string

	// BootstrapComplete counts complete views after initial bootstrap
	// (must be Nodes for the experiment to mean anything).
	BootstrapComplete int
	BootstrapTime     time.Duration
	Rounds            []LiveChurnRound
	// KilledTotal is the total members killed across rounds.
	KilledTotal int
	// FinalCompleteViews / FinalLive is the end-state convergence count.
	FinalCompleteViews int
	FinalLive          int
	// Failures counts failed exchanges fleet-wide at the end — churn
	// guarantees some; none of them may have been fatal.
	Failures uint64
	// StrayDescriptors counts view entries naming addresses no fleet
	// member ever owned; must be 0 (dead members' addresses aging out of
	// views are legitimate and not counted).
	StrayDescriptors int
}

// ID implements Result.
func (r *LiveChurnResult) ID() string { return "livechurn" }

// Converged reports whether the fleet re-converged after every wave and
// ended at full, uncontaminated membership.
func (r *LiveChurnResult) Converged() bool {
	if r.BootstrapComplete != r.Params.Nodes {
		return false
	}
	for _, round := range r.Rounds {
		if !round.SurvivorsReconverged || !round.FullReconverged {
			return false
		}
	}
	return r.FinalLive == r.Params.Nodes &&
		r.FinalCompleteViews == r.FinalLive &&
		r.StrayDescriptors == 0
}

// Render implements Result.
func (r *LiveChurnResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Live churn: kill and respawn waves against a real fleet\n")
	fmt.Fprintf(&b, "fleet: %d nodes (%s driver), c=%d, T=%v, %.0f%% killed per round, %d rounds\n",
		r.Params.Nodes, r.Driver, r.Params.ViewSize, r.Params.Period,
		r.Params.KillFraction*100, r.Params.Rounds)
	fmt.Fprintf(&b, "%-38s %10s\n", "", "value")
	fmt.Fprintf(&b, "%-38s %7d/%2d\n", "complete views after bootstrap", r.BootstrapComplete, r.Params.Nodes)
	fmt.Fprintf(&b, "%-38s %10v\n", "bootstrap time", r.BootstrapTime.Round(time.Millisecond))
	for i, round := range r.Rounds {
		fmt.Fprintf(&b, "round %d: killed %d, survivors re-converged=%v in %v; respawned %d, full views=%v in %v\n",
			i+1, round.Killed, round.SurvivorsReconverged, round.AfterKill.Round(time.Millisecond),
			round.Respawned, round.FullReconverged, round.AfterRespawn.Round(time.Millisecond))
	}
	fmt.Fprintf(&b, "%-38s %10d\n", "members killed in total", r.KilledTotal)
	fmt.Fprintf(&b, "%-38s %7d/%2d\n", "final complete views", r.FinalCompleteViews, r.FinalLive)
	fmt.Fprintf(&b, "%-38s %10d\n", "failed exchanges absorbed", r.Failures)
	fmt.Fprintf(&b, "%-38s %10d\n", "stray view entries", r.StrayDescriptors)
	fmt.Fprintf(&b, "re-converged through churn: %v\n", r.Converged())
	return b.String()
}

// RunLiveChurn boots a fleet on env's fleet driver, then repeatedly kills
// KillFraction of the live members (hard kill — no goodbye gossip) and
// respawns the same number against surviving contacts, asserting
// re-convergence after each wave. Kill victims are chosen by the seeded
// RNG; with env.Collector set, respawned members register under fresh
// names and dead subprocess members stay visible as stale sources. The
// seed drives victim choice and protocol randomness; timing is real.
func RunLiveChurn(sc Scale, seed uint64, env LiveEnv) (*LiveChurnResult, error) {
	p := liveChurnDerive(sc)
	res := &LiveChurnResult{Params: p, Driver: env.DriverName()}
	rng := newRand(mix(seed, 0x4C1))

	cluster, err := env.cluster(fleet.Config{
		Protocol: core.Newscast,
		ViewSize: p.ViewSize,
		Period:   p.Period,
		Seed:     seed,
		Backend:  "tcp",
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	members, err := spawnLinear(cluster, p.Nodes)
	if err != nil {
		return nil, err
	}
	ever := liveAddrs(members)
	// Dead members drop out of Cluster.Snapshot, so their failure
	// counters are captured at kill time to keep the fleet-wide total
	// honest — the killed members are exactly the ones churn hit.
	var deadFailures uint64
	// Subprocess members take real process-spawn time; the flat grace on
	// top of the gossip-scaled deadline covers it on loaded CI machines.
	phaseTimeout := 30*p.Period*time.Duration(p.Nodes) + 5*time.Second

	res.BootstrapComplete, res.BootstrapTime = waitCompleteViews(members, p.Period, phaseTimeout)

	for round := 0; round < p.Rounds; round++ {
		report := LiveChurnRound{}

		// Kill wave: pick ceil(fraction * live) distinct live members.
		alive := make([]fleet.Member, 0, len(members))
		for _, m := range members {
			if m.Alive() {
				alive = append(alive, m)
			}
		}
		kill := (len(alive)*int(p.KillFraction*100) + 99) / 100
		if kill < 1 {
			kill = 1
		}
		rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
		for _, victim := range alive[:kill] {
			if s, err := victim.Snapshot(); err == nil {
				deadFailures += s.Failures
			}
			if err := cluster.Kill(victim); err != nil {
				return nil, fmt.Errorf("scenario: churn round %d: kill %s: %w", round+1, victim.Name(), err)
			}
		}
		report.Killed = kill
		res.KilledTotal += kill

		// Survivors must re-converge among themselves.
		var complete int
		complete, report.AfterKill = waitCompleteViews(members, p.Period, phaseTimeout)
		_, live := completeLiveViews(members)
		report.SurvivorsReconverged = complete == live

		// Respawn wave: fresh joiners bootstrapped from surviving
		// contacts (up to three, like a deployment's contact list).
		contacts := cluster.Addrs()
		if len(contacts) > 3 {
			contacts = contacts[:3]
		}
		joiners, err := fleet.SpawnN(cluster, kill, contacts)
		for _, m := range joiners {
			members = append(members, m)
			ever[m.Addr()] = true
			report.Respawned++
		}
		if err != nil {
			return nil, fmt.Errorf("scenario: churn round %d: respawn: %w", round+1, err)
		}
		complete, report.AfterRespawn = waitCompleteViews(members, p.Period, phaseTimeout)
		_, live = completeLiveViews(members)
		report.FullReconverged = complete == live && live == p.Nodes

		res.Rounds = append(res.Rounds, report)
	}

	res.FinalCompleteViews, res.FinalLive = completeLiveViews(members)
	res.StrayDescriptors = strayDescriptors(members, ever)
	_, res.Failures, _, _, _ = liveTotals(cluster.Snapshot())
	res.Failures += deadFailures
	return res, nil
}
