package scenario

import (
	"fmt"
	"strings"

	"peersampling/internal/core"
	"peersampling/internal/sim"
)

// Figure3Result reproduces the paper's Figure 3: convergence of average
// path length, clustering coefficient and average node degree for all
// eight studied protocols, starting from a structured ring lattice and
// from a random topology. The paper runs 300 cycles and plots the first
// 100; we record the first 100 (scaled by MeasureEvery).
type Figure3Result struct {
	Scale    Scale
	Baseline Baseline
	// Lattice and Random hold one Dynamics per studied protocol.
	Lattice []Dynamics
	Random  []Dynamics
}

// ID implements Result.
func (*Figure3Result) ID() string { return "figure3" }

// figure3Cycles returns the plotted horizon: the paper shows 100 cycles.
func figure3Cycles(sc Scale) int {
	if sc.Cycles < 100 {
		return sc.Cycles
	}
	return 100
}

// Render implements Result.
func (r *Figure3Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 3 (N=%d, c=%d, %d cycles shown)\n\n", r.Scale.N, r.Scale.ViewSize, figure3Cycles(r.Scale))
	for _, part := range []struct {
		name string
		dyn  []Dynamics
	}{{"lattice initialisation", r.Lattice}, {"random initialisation", r.Random}} {
		for _, metric := range []string{"pathlen", "clustering", "avgdegree"} {
			b.WriteString(renderDynamics("Figure 3 "+part.name, part.dyn, r.Baseline, metric))
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// RunFigure3 reproduces Figure 3 for both initialisation scenarios.
func RunFigure3(sc Scale, seed uint64) *Figure3Result {
	if err := sc.validate(); err != nil {
		panic(err)
	}
	protos := core.StudiedProtocols()
	res := &Figure3Result{
		Scale:    sc,
		Baseline: ComputeBaseline(sc, mix(seed, 998)),
		Lattice:  make([]Dynamics, len(protos)),
		Random:   make([]Dynamics, len(protos)),
	}
	cycles := figure3Cycles(sc)
	// Two builds per protocol: lattice and random.
	forEachPar(2*len(protos), func(job int) {
		pi := job / 2
		cfg := sim.Config{Protocol: protos[pi], ViewSize: sc.ViewSize, Seed: mix(seed, job)}
		mc := metricsConfig(sc, mix(seed, job))
		if job%2 == 0 {
			w := BuildLattice(cfg, sc.N)
			res.Lattice[pi] = Dynamics{Protocol: protos[pi], Observations: collectDynamics(w, cycles, sc.MeasureEvery, mc)}
		} else {
			w := BuildRandom(cfg, sc.N)
			res.Random[pi] = Dynamics{Protocol: protos[pi], Observations: collectDynamics(w, cycles, sc.MeasureEvery, mc)}
		}
	})
	return res
}
