package scenario

import (
	"fmt"
	"strings"
)

// table is a minimal fixed-width text table builder used by the Render
// methods to produce paper-shaped output without any dependency.
type table struct {
	header []string
	rows   [][]string
}

func newTable(header ...string) *table {
	return &table{header: header}
}

func (t *table) addRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

func (t *table) addRowf(format string, args ...any) {
	t.addRow(strings.Split(fmt.Sprintf(format, args...), "|")...)
}

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.header)
	total := len(widths) - 1
	for _, w := range widths {
		total += w + 1
	}
	b.WriteString(strings.Repeat("-", total))
	b.WriteByte('\n')
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// f2, f3 format floats with fixed precision, rendering NaN-free output for
// the tables.
func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }
func f4(v float64) string { return fmt.Sprintf("%.4f", v) }
