package scenario

import (
	"fmt"
	"strings"

	"peersampling/internal/metrics"
)

// CSVer is implemented by experiment results that can emit their raw data
// series as CSV files, for regenerating the paper's plots with external
// tooling. The map key is a short file stem (without extension).
type CSVer interface {
	CSV() map[string]string
}

// dynamicsRows flattens a set of per-protocol observation traces into the
// shared long-form row type, keyed by protocol. Renderers no longer
// re-derive row formatting: the same metrics.LongRow carries the live
// Dumper's output, which is what keeps simulator CSVs and live CSVs one
// schema.
func dynamicsRows(dyn []Dynamics) []metrics.LongRow {
	var rows []metrics.LongRow
	for _, d := range dyn {
		proto := d.Protocol.String()
		for _, metric := range []string{"clustering", "avgdegree", "pathlen"} {
			s := d.SeriesOf(metric)
			for i, cyc := range s.Cycles {
				rows = append(rows, metrics.LongRow{Key: proto, Cycle: cyc, Metric: metric, Value: s.Values[i]})
			}
		}
	}
	return rows
}

// dynamicsCSV renders a set of per-protocol observation traces in long
// form: protocol,cycle,metric,value.
func dynamicsCSV(dyn []Dynamics) string {
	return metrics.LongCSV("protocol", dynamicsRows(dyn))
}

// CSV implements CSVer.
func (r *Figure2Result) CSV() map[string]string {
	return map[string]string{"figure2_growing": dynamicsCSV(r.Dynamics)}
}

// CSV implements CSVer.
func (r *Figure3Result) CSV() map[string]string {
	return map[string]string{
		"figure3_lattice": dynamicsCSV(r.Lattice),
		"figure3_random":  dynamicsCSV(r.Random),
	}
}

// CSV implements CSVer: one row per (protocol, cycle, degree) with its
// frequency — the exact points of the paper's log-log plots.
func (r *Figure4Result) CSV() map[string]string {
	var b strings.Builder
	b.WriteString("protocol,cycle,degree,count\n")
	for i, proto := range r.Protocols {
		for _, snap := range r.Snapshots[i] {
			for k, deg := range snap.Table.Values {
				fmt.Fprintf(&b, "%s,%d,%d,%d\n", proto, snap.Cycle, deg, snap.Table.Counts[k])
			}
		}
	}
	return map[string]string{"figure4_degree_distributions": b.String()}
}

// CSV implements CSVer: protocol,lag,autocorrelation.
func (r *Figure5Result) CSV() map[string]string {
	var b strings.Builder
	b.WriteString("protocol,lag,autocorrelation\n")
	for _, res := range r.Results {
		for lag, v := range res.Lags {
			fmt.Fprintf(&b, "%s,%d,%.6f\n", res.Protocol, lag, v)
		}
	}
	return map[string]string{"figure5_autocorrelation": b.String()}
}

// CSV implements CSVer: protocol,removed_percent,avg_outside_largest.
func (r *Figure6Result) CSV() map[string]string {
	var b strings.Builder
	b.WriteString("protocol,removed_percent,avg_outside_largest,partitioned_runs\n")
	for _, pr := range r.Protocols {
		for _, pt := range pr.Points {
			fmt.Fprintf(&b, "%s,%d,%.4f,%d\n", pr.Protocol, pt.RemovedPercent, pt.AvgOutsideLargest, pt.PartitionedRuns)
		}
	}
	return map[string]string{"figure6_catastrophic_failure": b.String()}
}

// CSV implements CSVer: protocol,cycles_after_failure,dead_links.
func (r *Figure7Result) CSV() map[string]string {
	var b strings.Builder
	b.WriteString("protocol,cycles_after_failure,dead_links\n")
	for _, pr := range r.Protocols {
		for i, v := range pr.DeadLinks {
			fmt.Fprintf(&b, "%s,%d,%d\n", pr.Protocol, i, v)
		}
	}
	return map[string]string{"figure7_self_healing": b.String()}
}
