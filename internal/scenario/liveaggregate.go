package scenario

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"peersampling/aggregate"
	"peersampling/internal/config"
	"peersampling/internal/core"
	"peersampling/internal/fleet"
	"peersampling/internal/metrics"
)

// The live aggregation experiment runs the paper's second application —
// gossip-based push-pull averaging — across real processes: every member
// attaches an aggregate workload engine, the driver seeds a spread of
// values over the transport's app-payload frames, and the empirical
// variance decay is measured against the protocol's ideal rate of
// 1/(2*sqrt(e)) per round. A second phase reruns the classic network
// size estimation trick (value 1 at one node, 0 elsewhere; every
// estimate converges to 1/N) to check the averaged mass is meaningful
// end to end.

// liveAggregateParams derives the fleet's shape from a simulation Scale.
type liveAggregateParams struct {
	Nodes    int           // fleet size
	ViewSize int           // view capacity, capped below fleet size
	Period   time.Duration // gossip and workload round length T
	Polls    int           // measurement polls per phase (one per period)
}

func liveAggregateDerive(sc Scale) liveAggregateParams {
	nodes := sc.N / 50
	if nodes < 8 {
		nodes = 8
	}
	if nodes > 24 {
		nodes = 24
	}
	view := sc.ViewSize
	if view > nodes-1 {
		view = nodes - 1
	}
	return liveAggregateParams{
		Nodes:    nodes,
		ViewSize: view,
		Period:   20 * time.Millisecond,
		Polls:    40,
	}
}

// idealRate is the paper's expected variance reduction factor per round
// for push-pull averaging: 1/(2*sqrt(e)).
var idealRate = 1 / (2 * math.Sqrt(math.E))

// LiveAggregateResult reports the live averaging experiment.
type LiveAggregateResult struct {
	Params liveAggregateParams
	// Driver names the fleet driver that ran the cluster.
	Driver string

	// BootstrapComplete counts complete views after bootstrap.
	BootstrapComplete int
	BootstrapTime     time.Duration
	// VariancePerPoll is the empirical estimate variance across live
	// members, one point per measurement poll.
	VariancePerPoll []float64
	// RoundsElapsed is the mean engine rounds ticked during the variance
	// phase, normalising the decay rate to per-round form.
	RoundsElapsed float64
	// EmpiricalRate is the measured per-round variance reduction factor;
	// the ideal is 1/(2*sqrt(e)) ~ 0.303. Live concurrency makes the
	// match loose, but the decay must be unmistakably exponential.
	EmpiricalRate float64
	// SizeEstimates are the per-node network size estimates (1/value)
	// after the size-estimation phase, sorted ascending.
	SizeEstimates []float64
	// MedianSizeEstimate summarises them; the truth is Nodes.
	MedianSizeEstimate float64
	// Sent / Received / Failures are fleet-wide workload totals at the
	// end of both phases.
	Sent, Received, Failures uint64

	rows []metrics.LongRow
}

// ID implements Result.
func (r *LiveAggregateResult) ID() string { return "liveaggregate" }

// Converged reports whether the variance decayed by well over an order
// of magnitude and the size estimate landed within 25% of the truth.
func (r *LiveAggregateResult) Converged() bool {
	if r.BootstrapComplete != r.Params.Nodes || len(r.VariancePerPoll) < 2 {
		return false
	}
	first, last := r.VariancePerPoll[0], r.VariancePerPoll[len(r.VariancePerPoll)-1]
	if first <= 0 || last >= 0.05*first {
		return false
	}
	truth := float64(r.Params.Nodes)
	return math.Abs(r.MedianSizeEstimate-truth) <= 0.25*truth
}

// Render implements Result.
func (r *LiveAggregateResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Live aggregation: push-pull averaging across a real fleet\n")
	fmt.Fprintf(&b, "fleet: %d nodes (%s driver), c=%d, T=%v\n",
		r.Params.Nodes, r.Driver, r.Params.ViewSize, r.Params.Period)
	fmt.Fprintf(&b, "%-38s %10s\n", "", "value")
	fmt.Fprintf(&b, "%-38s %7d/%2d\n", "complete views after bootstrap", r.BootstrapComplete, r.Params.Nodes)
	fmt.Fprintf(&b, "%-38s %10v\n", "bootstrap time", r.BootstrapTime.Round(time.Millisecond))
	if n := len(r.VariancePerPoll); n > 0 {
		fmt.Fprintf(&b, "%-38s %10.3g\n", "initial estimate variance", r.VariancePerPoll[0])
		fmt.Fprintf(&b, "%-38s %10.3g\n", "final estimate variance", r.VariancePerPoll[n-1])
	}
	fmt.Fprintf(&b, "%-38s %10.1f\n", "engine rounds elapsed (mean)", r.RoundsElapsed)
	fmt.Fprintf(&b, "%-38s %10.3f\n", "variance reduction per round", r.EmpiricalRate)
	fmt.Fprintf(&b, "%-38s %10.3f\n", "ideal reduction 1/(2*sqrt(e))", idealRate)
	fmt.Fprintf(&b, "%-38s %10.1f\n", "median network size estimate", r.MedianSizeEstimate)
	fmt.Fprintf(&b, "%-38s %10d\n", "true network size", r.Params.Nodes)
	fmt.Fprintf(&b, "%-38s %10d\n", "app messages sent", r.Sent)
	fmt.Fprintf(&b, "%-38s %10d\n", "app messages received", r.Received)
	fmt.Fprintf(&b, "%-38s %10d\n", "app delivery failures", r.Failures)
	fmt.Fprintf(&b, "variance decayed and size estimated: %v\n", r.Converged())
	return b.String()
}

// CSV implements CSVer: node,cycle,metric,value with per-node estimates
// and fleet-wide variance per poll round across both phases.
func (r *LiveAggregateResult) CSV() map[string]string {
	return map[string]string{"liveaggregate_decay": metrics.LongCSV("node", r.rows)}
}

// RunLiveAggregate boots a fleet whose members all run an aggregate
// workload engine, seeds member i with value i, measures the estimate
// variance per period until it collapses, then reruns the seeding as a
// size estimation (one 1, rest 0) and reads the estimates back. Timing
// is real; the seed parameterises the sampling layer only.
func RunLiveAggregate(sc Scale, seed uint64, env LiveEnv) (*LiveAggregateResult, error) {
	p := liveAggregateDerive(sc)
	res := &LiveAggregateResult{Params: p, Driver: env.DriverName()}

	cluster, err := env.cluster(fleet.Config{
		Protocol: core.Newscast,
		ViewSize: p.ViewSize,
		Period:   p.Period,
		Seed:     seed,
		Backend:  "tcp",
		Workload: config.WorkloadSection{
			Kind:   config.WorkloadAggregate,
			Period: p.Period,
		},
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	members, err := spawnLinear(cluster, p.Nodes)
	if err != nil {
		return nil, err
	}
	phaseTimeout := 30*p.Period*time.Duration(p.Nodes) + 5*time.Second
	res.BootstrapComplete, res.BootstrapTime = waitCompleteViews(members, p.Period, phaseTimeout)

	seeder, err := newAppSeeder()
	if err != nil {
		return nil, err
	}
	defer seeder.Close()

	// Phase 1 — variance decay. Seed a linear spread of values, then
	// poll the estimates once per period and watch the variance collapse.
	for i, m := range members {
		if err := seeder.send(m.Addr(), aggregate.Topic, aggregate.EncodeSet(float64(i))); err != nil {
			return nil, err
		}
	}
	roundsAtStart := meanRounds(liveAppSnapshots(members))
	for poll := 0; poll < p.Polls; poll++ {
		snaps := liveAppSnapshots(members)
		values := make([]float64, 0, len(snaps))
		for _, s := range snaps {
			values = append(values, s.App.Value)
			res.rows = append(res.rows, metrics.LongRow{
				Key: s.Node, Cycle: poll, Metric: "value", Value: s.App.Value,
			})
		}
		v := variance(values)
		res.VariancePerPoll = append(res.VariancePerPoll, v)
		res.rows = append(res.rows, metrics.LongRow{
			Key: "fleet", Cycle: poll, Metric: "variance", Value: v,
		})
		if v < 1e-9 {
			break
		}
		time.Sleep(p.Period)
	}
	res.RoundsElapsed = meanRounds(liveAppSnapshots(members)) - roundsAtStart
	if n := len(res.VariancePerPoll); n >= 2 && res.RoundsElapsed > 0 {
		first, last := res.VariancePerPoll[0], res.VariancePerPoll[n-1]
		if first > 0 && last > 0 {
			res.EmpiricalRate = math.Pow(last/first, 1/res.RoundsElapsed)
		}
	}

	// Phase 2 — network size estimation: value 1 at the first member, 0
	// elsewhere; every estimate converges to 1/N.
	for i, m := range members {
		v := 0.0
		if i == 0 {
			v = 1
		}
		if err := seeder.send(m.Addr(), aggregate.Topic, aggregate.EncodeSet(v)); err != nil {
			return nil, err
		}
	}
	time.Sleep(time.Duration(p.Polls) * p.Period)
	final := liveAppSnapshots(members)
	for _, s := range final {
		if s.App.Value <= 0 {
			continue // not yet reached by any mass; 1/value is meaningless
		}
		est := aggregate.SizeEstimate(s.App.Value)
		res.SizeEstimates = append(res.SizeEstimates, est)
		res.rows = append(res.rows, metrics.LongRow{
			Key: s.Node, Cycle: p.Polls, Metric: "size_estimate", Value: est,
		})
	}
	sort.Float64s(res.SizeEstimates)
	if n := len(res.SizeEstimates); n > 0 {
		res.MedianSizeEstimate = res.SizeEstimates[n/2]
	}

	res.Sent, res.Received, res.Failures = liveAppTotals(final)
	return res, nil
}

// variance is the population variance of values.
func variance(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	mean := 0.0
	for _, v := range values {
		mean += v
	}
	mean /= float64(len(values))
	sum := 0.0
	for _, v := range values {
		d := v - mean
		sum += d * d
	}
	return sum / float64(len(values))
}

// meanRounds averages the workload engines' round counters.
func meanRounds(snaps []metrics.NodeSnapshot) float64 {
	if len(snaps) == 0 {
		return 0
	}
	total := 0.0
	for _, s := range snaps {
		total += float64(s.App.Rounds)
	}
	return total / float64(len(snaps))
}
