package scenario

import (
	"fmt"
	"time"

	"peersampling/internal/fleet"
	"peersampling/internal/metrics"
	"peersampling/internal/transport"
)

// LiveEnv configures how a live experiment builds its cluster: which
// fleet driver runs the nodes (in-process goroutines or forked psnode
// processes) and where their metrics land. The zero value — inproc, no
// collector — reproduces the pre-fleet behaviour of the live scenarios.
type LiveEnv struct {
	// Collector, when non-nil, gets every cluster member registered for
	// continuous observation (see cmd/experiments -metrics-addr).
	Collector *metrics.Collector
	// Driver selects the fleet driver; empty means fleet.DriverInproc.
	Driver string
	// Psnode is the psnode binary path, required by the subprocess
	// driver.
	Psnode string
}

// DriverName returns the effective driver for result rendering.
func (e LiveEnv) DriverName() string {
	if e.Driver == "" {
		return fleet.DriverInproc
	}
	return e.Driver
}

// cluster builds the fleet for this environment around the scenario's
// node template.
func (e LiveEnv) cluster(cfg fleet.Config) (fleet.Cluster, error) {
	cfg.Collector = e.Collector
	cfg.Psnode = e.Psnode
	return fleet.New(e.Driver, cfg)
}

// spawnLinear boots n members: the first contactless, every later one
// bootstrapped from the first member's address (the single-contact shape
// of the paper's growing scenario). The later members come up through
// fleet.SpawnN's bounded-concurrency wave, so a 32-node subprocess fleet
// boots in a few fork+ready latencies instead of 32 sequential ones.
func spawnLinear(c fleet.Cluster, n int) ([]fleet.Member, error) {
	first, err := c.Spawn(nil)
	if err != nil {
		return nil, fmt.Errorf("scenario: spawn first member: %w", err)
	}
	members := append(make([]fleet.Member, 0, n), first)
	rest, err := fleet.SpawnN(c, n-1, []string{first.Addr()})
	members = append(members, rest...)
	if err != nil {
		return nil, fmt.Errorf("scenario: spawn members: %w", err)
	}
	return members, nil
}

// liveAddrs returns the gossip addresses of the live members as a set.
func liveAddrs(members []fleet.Member) map[string]bool {
	live := make(map[string]bool, len(members))
	for _, m := range members {
		if m.Alive() {
			live[m.Addr()] = true
		}
	}
	return live
}

// knownLivePeers counts how many distinct OTHER live members appear in
// m's view. A member whose view cannot be read (a subprocess dying under
// the poll) counts zero peers.
func knownLivePeers(m fleet.Member, live map[string]bool) int {
	view, err := m.View()
	if err != nil {
		return 0
	}
	seen := map[string]bool{}
	for _, d := range view {
		if live[d.Addr] && d.Addr != m.Addr() {
			seen[d.Addr] = true
		}
	}
	return len(seen)
}

// completeLiveViews counts live members whose view holds every other live
// member — the strongest convergence statement a cluster smaller than its
// view capacity admits.
func completeLiveViews(members []fleet.Member) (complete, liveCount int) {
	live := liveAddrs(members)
	for _, m := range members {
		if !m.Alive() {
			continue
		}
		if knownLivePeers(m, live) == len(live)-1 {
			complete++
		}
	}
	return complete, len(live)
}

// waitCompleteViews polls until every live member's view is complete or
// the timeout expires, returning the final complete count and how long
// the wait took.
func waitCompleteViews(members []fleet.Member, period, timeout time.Duration) (complete int, waited time.Duration) {
	start := time.Now()
	deadline := start.Add(timeout)
	for {
		c, live := completeLiveViews(members)
		if c == live || time.Now().After(deadline) {
			return c, time.Since(start)
		}
		time.Sleep(period)
	}
}

// strayDescriptors counts view entries across live members that point at
// addresses which were never part of the fleet — the contamination check:
// churn and attacks may leave dead members' descriptors aging out of
// views, but an address nobody ever owned must not appear.
func strayDescriptors(members []fleet.Member, ever map[string]bool) int {
	stray := 0
	for _, m := range members {
		if !m.Alive() {
			continue
		}
		view, err := m.View()
		if err != nil {
			continue
		}
		for _, d := range view {
			if !ever[d.Addr] {
				stray++
			}
		}
	}
	return stray
}

// liveTotals sums a snapshot round into cluster-wide protocol totals,
// wire totals and one merged latency histogram.
func liveTotals(snaps []metrics.NodeSnapshot) (exchanges, failures, served uint64, wire transport.Stats, lat transport.LatencySnapshot) {
	for _, s := range snaps {
		exchanges += s.Exchanges
		failures += s.Failures
		served += s.Served
		if s.Wire != nil {
			wire.Add(*s.Wire)
		}
		if s.Latency != nil {
			lat.Add(*s.Latency)
		}
	}
	return
}
