//go:build !race

package scenario

const raceDetectorEnabled = false
