package scenario

import (
	"fmt"
	"strings"

	"peersampling/internal/core"
	"peersampling/internal/sim"
	"peersampling/internal/stats"
)

// DegreeSnapshot is the degree distribution of the overlay at one cycle.
type DegreeSnapshot struct {
	Cycle int
	Table stats.FreqTable
}

// Figure4Result reproduces the paper's Figure 4: degree distributions of
// all eight studied protocols at exponentially spaced cycles (0, 3, 30,
// 300), starting from a random topology. The paper plots them on log-log
// axes; the renderer summarises each distribution's location and tail.
type Figure4Result struct {
	Scale     Scale
	Cycles    []int
	Protocols []core.Protocol
	// Snapshots[i][j] is the distribution of protocol i at Cycles[j].
	Snapshots [][]DegreeSnapshot
}

// ID implements Result.
func (*Figure4Result) ID() string { return "figure4" }

// Render implements Result.
func (r *Figure4Result) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 (random initialisation, N=%d, c=%d; degree distributions)\n", r.Scale.N, r.Scale.ViewSize)
	tb := newTable("protocol", "cycle", "min", "median", "mean", "max", "tail>2c")
	for i, proto := range r.Protocols {
		for _, snap := range r.Snapshots[i] {
			vals := make([]float64, 0, snap.Table.Total())
			for k, v := range snap.Table.Values {
				for n := 0; n < snap.Table.Counts[k]; n++ {
					vals = append(vals, float64(v))
				}
			}
			sum := stats.Summarize(vals)
			tb.addRow(proto.String(),
				fmt.Sprintf("%d", snap.Cycle),
				fmt.Sprintf("%.0f", sum.Min),
				fmt.Sprintf("%.0f", stats.Quantile(vals, 0.5)),
				f2(sum.Mean),
				fmt.Sprintf("%.0f", sum.Max),
				f4(snap.Table.TailWeight(2*r.Scale.ViewSize)))
		}
	}
	b.WriteString(tb.String())
	return b.String()
}

// figure4Cycles returns the snapshot cycles: the paper's 0, 3, 30, 300,
// clipped to the configured horizon.
func figure4Cycles(sc Scale) []int {
	out := []int{0}
	for _, c := range []int{3, 30, 300} {
		if c <= sc.Cycles {
			out = append(out, c)
		}
	}
	if last := out[len(out)-1]; last != sc.Cycles {
		out = append(out, sc.Cycles)
	}
	return out
}

// RunFigure4 reproduces Figure 4.
func RunFigure4(sc Scale, seed uint64) *Figure4Result {
	if err := sc.validate(); err != nil {
		panic(err)
	}
	protos := core.StudiedProtocols()
	cycles := figure4Cycles(sc)
	res := &Figure4Result{
		Scale:     sc,
		Cycles:    cycles,
		Protocols: protos,
		Snapshots: make([][]DegreeSnapshot, len(protos)),
	}
	forEachPar(len(protos), func(pi int) {
		cfg := sim.Config{Protocol: protos[pi], ViewSize: sc.ViewSize, Seed: mix(seed, pi)}
		w := BuildRandom(cfg, sc.N)
		snaps := make([]DegreeSnapshot, 0, len(cycles))
		for _, target := range cycles {
			w.Run(target - w.Cycle())
			snaps = append(snaps, DegreeSnapshot{
				Cycle: target,
				Table: stats.NewFreqTable(degreeList(w)),
			})
		}
		res.Snapshots[pi] = snaps
	})
	return res
}

// degreeList returns the degrees of all live nodes.
func degreeList(w *sim.Network) []int {
	snap := w.TakeSnapshot()
	out := make([]int, 0, len(snap.IDs))
	for _, id := range snap.IDs {
		d, _ := snap.DegreeOf(id)
		out = append(out, d)
	}
	return out
}
