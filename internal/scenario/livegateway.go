package scenario

import (
	"context"
	"fmt"
	"strings"
	"time"

	"peersampling/internal/chaos"
	"peersampling/internal/config"
	"peersampling/internal/core"
	"peersampling/internal/fleet"
	"peersampling/internal/load"
	"peersampling/internal/metrics"
)

// The live gateway experiment puts the light-client serving story under
// pressure: a fleet of nodes, each with its sampling gateway enabled, is
// loaded by the open-loop generator in ramping stages — hundreds of
// emulated clients, then over a thousand — while a livechurn-style kill
// wave removes a quarter of the fleet mid-ramp. The claim under test is
// that the serve path stays responsive where the fleet survives: every
// surviving gateway keeps answering with bounded tail latency and fresh
// samples while dead gateways' clients fail fast, and the per-client
// rate limit (driven through spoofed X-Forwarded-For identities against
// trust_proxy_header) never collapses distinct clients into one bucket.

// liveGatewayPlan names the fault plan the experiment replays: one kill
// wave 500ms into the marked load stage (see internal/chaos/plans).
const liveGatewayPlan = "gateway-kill"

// liveGatewayParams derives the fleet's shape from a simulation Scale
// and the kill wave from the named chaos plan.
type liveGatewayParams struct {
	Nodes        int           // fleet size; every member serves a gateway
	ViewSize     int           // view capacity, capped below fleet size
	Period       time.Duration // gossip period T
	Refresh      time.Duration // gateway sample-cache refresh interval
	RateRPS      float64       // per-client token refill rate
	Burst        int           // per-client token bucket capacity
	Plan         string        // chaos plan driving the kill wave
	KillFraction float64       // fraction of the fleet killed mid-ramp (from the plan)
	Stages       []loadStage   // the pressure ramp
	// P99Budget and FreshnessBudget bound the surviving gateways' tail
	// latency and sample age for Converged. RequestTimeout caps each
	// emulated client's request.
	P99Budget       time.Duration
	FreshnessBudget time.Duration
	RequestTimeout  time.Duration
}

// loadStage is one rung of the pressure ramp.
type loadStage struct {
	Clients  int
	RPS      float64 // per client
	Duration time.Duration
	// Kill starts the chaos plan at the beginning of this stage; the
	// wave lands at the plan's own offset into it.
	Kill bool
}

func liveGatewayDerive(sc Scale, plan *chaos.Plan) liveGatewayParams {
	nodes := sc.N / 100
	if nodes < 4 {
		nodes = 4
	}
	if nodes > 10 {
		nodes = 10
	}
	view := sc.ViewSize
	if view > nodes-1 {
		view = nodes - 1
	}
	waves := plan.KillWaves()
	p := liveGatewayParams{
		Nodes:        nodes,
		ViewSize:     view,
		Period:       20 * time.Millisecond,
		Refresh:      50 * time.Millisecond,
		RateRPS:      50,
		Burst:        100,
		Plan:         plan.Name,
		KillFraction: waves[0].Fraction,
		Stages: []loadStage{
			{Clients: 250, RPS: 6, Duration: 1200 * time.Millisecond},
			{Clients: 1000, RPS: 2, Duration: 1500 * time.Millisecond, Kill: true},
		},
		P99Budget:       2 * time.Second,
		FreshnessBudget: 2 * time.Second,
		RequestTimeout:  2 * time.Second,
	}
	if raceDetectorEnabled {
		// The detector slows the serve path roughly tenfold; the claim
		// under race is still "survivors answer, zero errors", with the
		// timing budgets widened to detector-adjusted bounds.
		p.P99Budget = 8 * time.Second
		p.FreshnessBudget = 8 * time.Second
		p.RequestTimeout = 8 * time.Second
	}
	return p
}

// LiveGatewayStage reports one rung of the ramp.
type LiveGatewayStage struct {
	Clients  int
	RPS      float64
	Killed   int // members killed during this stage
	Load     *load.Result
	Survivor load.TargetStats // aggregate over gateways alive at stage end
}

// LiveGatewayResult reports the live gateway experiment.
type LiveGatewayResult struct {
	Params liveGatewayParams
	Driver string

	// BootstrapComplete counts complete views after initial bootstrap.
	BootstrapComplete int
	BootstrapTime     time.Duration
	Stages            []LiveGatewayStage
	KilledTotal       int
	// FinalLive is how many members survived the run.
	FinalLive int
}

// ID implements Result.
func (r *LiveGatewayResult) ID() string { return "livegateway" }

// Converged reports whether the serving story held: full bootstrap, and
// in every stage the surviving gateways answered (OK > 0, no transport
// errors against live targets) with tail latency and sample freshness
// inside the budgets.
func (r *LiveGatewayResult) Converged() bool {
	if r.BootstrapComplete != r.Params.Nodes {
		return false
	}
	if r.FinalLive != r.Params.Nodes-r.KilledTotal || r.KilledTotal == 0 {
		return false
	}
	for _, st := range r.Stages {
		s := st.Survivor
		if s.OK == 0 || s.Errors != 0 {
			return false
		}
		if s.Latency.Quantile(0.99) > r.Params.P99Budget.Seconds() {
			return false
		}
		if s.Freshness.Quantile(0.99) > r.Params.FreshnessBudget.Seconds() {
			return false
		}
	}
	return true
}

// Render implements Result.
func (r *LiveGatewayResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Live gateway: sampling API under ramping load and a kill wave\n")
	fmt.Fprintf(&b, "fleet: %d nodes (%s driver), c=%d, T=%v, refresh=%v, limit %.0f rps burst %d per client, plan=%s\n",
		r.Params.Nodes, r.Driver, r.Params.ViewSize, r.Params.Period, r.Params.Refresh,
		r.Params.RateRPS, r.Params.Burst, r.Params.Plan)
	fmt.Fprintf(&b, "%-38s %7d/%2d\n", "complete views after bootstrap", r.BootstrapComplete, r.Params.Nodes)
	fmt.Fprintf(&b, "%-38s %10v\n", "bootstrap time", r.BootstrapTime.Round(time.Millisecond))
	for i, st := range r.Stages {
		s := st.Survivor
		fmt.Fprintf(&b, "stage %d: %d clients × %.3g rps, killed %d: survivors ok=%d 429=%d 503=%d err=%d p50=%.1fms p99=%.1fms fresh_p99=%.0fms\n",
			i+1, st.Clients, st.RPS, st.Killed,
			s.OK, s.RateLimited, s.Unavailable, s.Errors,
			s.Latency.Quantile(0.50)*1000, s.Latency.Quantile(0.99)*1000,
			s.Freshness.Quantile(0.99)*1000)
	}
	fmt.Fprintf(&b, "%-38s %10d\n", "members killed in total", r.KilledTotal)
	fmt.Fprintf(&b, "%-38s %7d/%2d\n", "members alive at the end", r.FinalLive, r.Params.Nodes)
	fmt.Fprintf(&b, "served through the kill wave: %v\n", r.Converged())
	return b.String()
}

// CSV implements CSVer: target,cycle,metric,value with one cycle per
// ramp stage — the load generator's long-form schema, so a livegateway
// run plots with the same tooling as a psload run.
func (r *LiveGatewayResult) CSV() map[string]string {
	var rows []metrics.LongRow
	for i, st := range r.Stages {
		rows = append(rows, st.Load.Rows(i)...)
	}
	return map[string]string{"livegateway_load": metrics.LongCSV("target", rows)}
}

// RunLiveGateway boots a gateway-enabled fleet on env's driver, ramps
// the load generator through the parameter stages, and replays the
// gateway-kill chaos plan from the start of the marked stage — a hard
// kill wave (seeded victim choice, no goodbye) landing at the plan's
// offset into it. Stats are tallied per gateway, and each stage's
// verdict reads only the gateways still alive when the stage ends — a
// killed gateway's connection errors are the expected cost of churn,
// not a serving failure.
func RunLiveGateway(sc Scale, seed uint64, env LiveEnv) (*LiveGatewayResult, error) {
	plan, err := chaos.Load(liveGatewayPlan)
	if err != nil {
		return nil, err
	}
	p := liveGatewayDerive(sc, plan)
	res := &LiveGatewayResult{Params: p, Driver: env.DriverName()}

	cluster, err := env.cluster(fleet.Config{
		Protocol: core.Newscast,
		ViewSize: p.ViewSize,
		Period:   p.Period,
		Seed:     seed,
		Backend:  "tcp",
		Gateway: config.GatewaySection{
			Addr:             "127.0.0.1:0",
			Refresh:          p.Refresh,
			RateRPS:          p.RateRPS,
			Burst:            p.Burst,
			TrustProxyHeader: true,
		},
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	members, err := spawnLinear(cluster, p.Nodes)
	if err != nil {
		return nil, err
	}
	phaseTimeout := 30*p.Period*time.Duration(p.Nodes) + 5*time.Second
	res.BootstrapComplete, res.BootstrapTime = waitCompleteViews(members, p.Period, phaseTimeout)

	gatewayOf := make(map[string]fleet.Member, len(members))
	for _, m := range members {
		addr := m.GatewayAddr()
		if addr == "" {
			return nil, fmt.Errorf("scenario: member %s has no gateway", m.Name())
		}
		gatewayOf[addr] = m
	}

	ex := chaos.New(plan, cluster, members, chaos.Options{Seed: mix(seed, 0x6A7E)})
	defer ex.Close()

	for _, stage := range p.Stages {
		report := LiveGatewayStage{Clients: stage.Clients, RPS: stage.RPS}

		// The stage targets every gateway alive at its start; a member
		// killed mid-stage keeps taking (and failing) its share of load,
		// exactly like clients holding a stale endpoint list.
		var targets []string
		for addr, m := range gatewayOf {
			if m.Alive() {
				targets = append(targets, addr)
			}
		}
		if len(targets) == 0 {
			return nil, fmt.Errorf("scenario: no live gateways left before stage")
		}

		// The marked stage runs the chaos plan on its own clock alongside
		// the load: Run sleeps out the plan's offsets, so the wave lands
		// mid-stage while clients keep hammering every gateway.
		type killReport struct {
			killed int
			err    error
		}
		killDone := make(chan killReport, 1)
		if stage.Kill {
			go func() {
				before := ex.KilledTotal()
				err := ex.Run(context.Background())
				killDone <- killReport{killed: ex.KilledTotal() - before, err: err}
			}()
		} else {
			killDone <- killReport{}
		}

		lr, err := load.Run(context.Background(), load.Config{
			Targets:      targets,
			Clients:      stage.Clients,
			RPS:          stage.RPS,
			Duration:     stage.Duration,
			N:            3,
			SpoofClients: true,
			Timeout:      p.RequestTimeout,
		})
		if err != nil {
			return nil, fmt.Errorf("scenario: livegateway load: %w", err)
		}
		kr := <-killDone
		if kr.err != nil {
			return nil, fmt.Errorf("scenario: livegateway chaos plan: %w", kr.err)
		}
		report.Killed = kr.killed
		res.KilledTotal += kr.killed
		report.Load = lr

		// The stage verdict reads survivors only.
		report.Survivor = load.TargetStats{Target: "survivors"}
		for _, t := range lr.Targets {
			if !gatewayOf[t.Target].Alive() {
				continue
			}
			report.Survivor.OK += t.OK
			report.Survivor.RateLimited += t.RateLimited
			report.Survivor.Unavailable += t.Unavailable
			report.Survivor.BadStatus += t.BadStatus
			report.Survivor.Errors += t.Errors
			report.Survivor.Dropped += t.Dropped
			report.Survivor.Latency.Add(t.Latency)
			report.Survivor.Freshness.Add(t.Freshness)
			if t.LatencyMaxSeconds > report.Survivor.LatencyMaxSeconds {
				report.Survivor.LatencyMaxSeconds = t.LatencyMaxSeconds
			}
		}
		res.Stages = append(res.Stages, report)
	}

	for _, m := range members {
		if m.Alive() {
			res.FinalLive++
		}
	}
	return res, nil
}
