package scenario

import (
	"strings"
	"testing"

	"peersampling/internal/metrics"
	"peersampling/internal/transport"
)

// The partition-heal scenario is the chaos executor's acceptance test at
// the scenario layer: the named plan must demonstrably cut fresh
// cross-island knowledge while the partition rules hold and the fleet
// must regain it after they expire, with the chaos_event timeline
// exported next to the freshness trace. Run under -race in CI.
func TestLivePartitionHealsAfterRuleExpiry(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket partition scenario")
	}
	res, err := RunLivePartition(Quick, 17, LiveEnv{})
	if err != nil {
		t.Fatal(err)
	}

	if !res.Converged() {
		t.Fatalf("fleet did not partition and re-converge:\n%s", res.Render())
	}
	if res.ID() != "partitionheal" {
		t.Fatalf("ID() = %q", res.ID())
	}
	// The plan compiled to latency, partition and their two expiries — and
	// every step fired.
	if res.StepsCompiled != 4 || res.StepsApplied != 4 {
		t.Fatalf("steps = %d applied of %d compiled", res.StepsApplied, res.StepsCompiled)
	}
	actions := map[string]int{}
	for _, e := range res.Events {
		actions[e.Action]++
	}
	if actions["latency"] != 1 || actions["partition"] != 1 || actions["expire"] != 2 {
		t.Fatalf("event actions = %v", actions)
	}
	// The run must leave the process-global fault set clean for whatever
	// runs next.
	if got := transport.Faults().ActiveRules(); got != 0 {
		t.Fatalf("run left %d fault rules installed", got)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no freshness samples recorded")
	}
	// The partition must have been visible: fewer fresh pairs at the worst
	// point than before the plan, recovered afterwards.
	if !(res.MinFreshDuring < res.FreshBefore && res.FreshAfter > res.MinFreshDuring) {
		t.Fatalf("freshness trace shows no partition: before=%d min=%d after=%d",
			res.FreshBefore, res.MinFreshDuring, res.FreshAfter)
	}
	for _, want := range []string{"named fault plan", "plan=partition-heal", "fresh pairs", "re-converged after heal: true"} {
		if !strings.Contains(res.Render(), want) {
			t.Fatalf("Render() missing %q:\n%s", want, res.Render())
		}
	}

	// The CSV artifact aligns the chaos events with the freshness trace on
	// one schema.
	doc, ok := res.CSV()["partitionheal_trace"]
	if !ok {
		t.Fatal("CSV() missing partitionheal_trace")
	}
	key, rows, err := metrics.ParseLongCSV(doc)
	if err != nil {
		t.Fatal(err)
	}
	if key != "source" {
		t.Fatalf("CSV key column = %q want source", key)
	}
	sawMetric := map[string]bool{}
	for _, r := range rows {
		sawMetric[r.Metric] = true
	}
	for _, m := range []string{"fresh_pairs", "chaos_active_rules", "chaos_event", "chaos_event_partition", "chaos_event_expire"} {
		if !sawMetric[m] {
			t.Errorf("CSV missing metric %s", m)
		}
	}
}

func TestLivePartitionRegistered(t *testing.T) {
	d, ok := Find("partitionheal")
	if !ok {
		t.Fatal("partitionheal experiment not registered")
	}
	if d.Title == "" || d.Run == nil || d.RunLive == nil {
		t.Fatalf("incomplete registration: %+v", d)
	}
}
