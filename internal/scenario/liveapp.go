package scenario

import (
	"context"
	"errors"
	"fmt"
	"time"

	"peersampling/internal/fleet"
	"peersampling/internal/metrics"
	"peersampling/internal/transport"
)

// appSeeder is the experiment driver's own app-frame transport: the live
// workload scenarios use it to inject rumors and (re)set aggregate
// values on fleet members without being cluster members themselves — the
// live analogue of the simulator's direct Infect/SetValue calls.
type appSeeder struct {
	tr transport.Transport
	ac transport.AppCarrier
}

func newAppSeeder() (*appSeeder, error) {
	factory, err := transport.NewFactory("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	// The seeder never serves gossip: any peer that somehow learns its
	// address gets a refusal, and it is not in any contact list.
	tr, err := factory(func(req transport.Request) (transport.Response, bool) {
		return transport.Response{}, false
	})
	if err != nil {
		return nil, err
	}
	ac, ok := tr.(transport.AppCarrier)
	if !ok {
		_ = tr.Close()
		return nil, errors.New("scenario: transport cannot carry app payloads")
	}
	return &appSeeder{tr: tr, ac: ac}, nil
}

// send pushes one app payload to addr on topic, best-effort (no reply).
func (s *appSeeder) send(addr, topic string, payload []byte) error {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	_, _, err := s.ac.ExchangeApp(ctx, addr, transport.AppMessage{
		From:    s.tr.Addr(),
		Topic:   topic,
		Payload: payload,
	})
	if err != nil {
		return fmt.Errorf("scenario: seed %s via %s: %w", addr, topic, err)
	}
	return nil
}

func (s *appSeeder) Close() error { return s.tr.Close() }

// liveAppTotals sums the workload counters of a snapshot round; nodes
// without an attached engine contribute nothing.
func liveAppTotals(snaps []metrics.NodeSnapshot) (sent, received, failures uint64) {
	for _, s := range snaps {
		if s.App == nil {
			continue
		}
		sent += s.App.Sent
		received += s.App.Received
		failures += s.App.Failures
	}
	return
}

// liveAppSnapshots reads every live member's snapshot, keeping only the
// ones that answered with workload counters attached.
func liveAppSnapshots(members []fleet.Member) []metrics.NodeSnapshot {
	snaps := make([]metrics.NodeSnapshot, 0, len(members))
	for _, m := range members {
		if !m.Alive() {
			continue
		}
		s, err := m.Snapshot()
		if err != nil || s.App == nil {
			continue
		}
		snaps = append(snaps, s)
	}
	return snaps
}
