package scenario

import (
	"fmt"
	"strings"

	"peersampling/internal/core"
	"peersampling/internal/sim"
	"peersampling/internal/stats"
)

// Dynamics is a per-protocol trace of overlay properties over cycles, the
// data behind one line of the paper's convergence figures.
type Dynamics struct {
	Protocol     core.Protocol
	Observations []sim.Observation
}

// SeriesOf extracts one metric as a stats.Series. Supported metrics:
// "clustering", "avgdegree", "pathlen", "deadlinks". It panics on an
// unknown metric name.
func (d *Dynamics) SeriesOf(metric string) *stats.Series {
	var extract func(o sim.Observation) float64
	switch metric {
	case "clustering":
		extract = func(o sim.Observation) float64 { return o.Clustering }
	case "avgdegree":
		extract = func(o sim.Observation) float64 { return o.AvgDegree }
	case "pathlen":
		extract = func(o sim.Observation) float64 { return o.PathLen }
	case "deadlinks":
		extract = func(o sim.Observation) float64 { return float64(o.DeadLinks) }
	default:
		panic(fmt.Sprintf("scenario: unknown metric %q", metric))
	}
	s := stats.NewSeries(fmt.Sprintf("%s %s", d.Protocol, metric))
	for _, o := range d.Observations {
		s.Append(o.Cycle, extract(o))
	}
	return s
}

// Baseline holds the properties of the uniform-random-view topology the
// paper draws as horizontal reference lines.
type Baseline struct {
	N          int
	ViewSize   int
	AvgDegree  float64
	Clustering float64
	PathLen    float64
}

// ComputeBaseline measures a freshly generated random-view graph with the
// same estimator settings as the experiment.
func ComputeBaseline(sc Scale, seed uint64) Baseline {
	cfg := sim.Config{
		Protocol: core.Newscast, // irrelevant: no cycles are run
		ViewSize: sc.ViewSize,
		Seed:     seed,
	}
	w := BuildRandom(cfg, sc.N)
	o := w.Observe(metricsConfig(sc, seed))
	return Baseline{
		N:          sc.N,
		ViewSize:   sc.ViewSize,
		AvgDegree:  o.AvgDegree,
		Clustering: o.Clustering,
		PathLen:    o.PathLen,
	}
}

// renderDynamics prints, for each protocol, the metric values at a few
// representative cycles plus the converged (tail-mean) value, against the
// baseline.
func renderDynamics(title string, dyn []Dynamics, base Baseline, metric string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s (baseline %s)\n", title, metric, f4(baselineValue(base, metric)))
	tb := newTable("protocol", "early", "mid", "late", "converged")
	for _, d := range dyn {
		s := d.SeriesOf(metric)
		n := s.Len()
		if n == 0 {
			tb.addRow(d.Protocol.String(), "-", "-", "-", "-")
			continue
		}
		early := s.Values[0]
		mid := s.Values[n/2]
		late := s.Values[n-1]
		tb.addRow(d.Protocol.String(), f4(early), f4(mid), f4(late), f4(s.ConvergedValue(0.2)))
	}
	b.WriteString(tb.String())
	return b.String()
}

func baselineValue(base Baseline, metric string) float64 {
	switch metric {
	case "clustering":
		return base.Clustering
	case "avgdegree":
		return base.AvgDegree
	case "pathlen":
		return base.PathLen
	default:
		return 0
	}
}

// collectDynamics runs `cycles` cycles of w, observing every
// `measureEvery` cycles (and always at the final cycle), and returns the
// trace. An observation is also taken before the first cycle (cycle 0).
func collectDynamics(w *sim.Network, cycles, measureEvery int, mc sim.MetricsConfig) []sim.Observation {
	obs := make([]sim.Observation, 0, cycles/measureEvery+2)
	obs = append(obs, w.Observe(mc))
	for i := 1; i <= cycles; i++ {
		w.RunCycle()
		if i%measureEvery == 0 || i == cycles {
			obs = append(obs, w.Observe(mc))
		}
	}
	return obs
}

// connectedGrowingRun runs the growing scenario repeatedly with derived
// seeds until the final overlay is connected, returning the network and
// the per-cycle observations of the successful run. The paper's Figure 2
// includes exactly such a non-partitioned run for the (*,rand,push)
// protocols. maxAttempts bounds the search; the last attempt is returned
// even if partitioned.
func connectedGrowingRun(proto core.Protocol, sc Scale, seed uint64, maxAttempts int) (dyn []sim.Observation, connected bool) {
	mc := metricsConfig(sc, seed)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		cfg := sim.Config{Protocol: proto, ViewSize: sc.ViewSize, Seed: mix(seed, attempt)}
		var obs []sim.Observation
		w := RunGrowing(cfg, sc, func(w *sim.Network, cycle int) {
			if cycle%sc.MeasureEvery == 0 || cycle == sc.Cycles {
				obs = append(obs, w.Observe(mc))
			}
		})
		if w.TakeSnapshot().Graph.Components().Connected() {
			return obs, true
		}
		dyn = obs
	}
	return dyn, false
}
