package scenario

import (
	"testing"

	"peersampling/internal/core"
	"peersampling/internal/sim"
)

// tiny is the test scale: small enough for fast unit tests, big enough for
// the qualitative shapes to show. The view size must stay well above
// log2(N): Newscast-style head view selection genuinely fragments tiny
// overlays with small views (both parties leave an exchange with nearly
// identical views), which the paper's N=10^4, c=30 regime never hits.
var tiny = Scale{
	Name: "tiny", N: 150, ViewSize: 15, Cycles: 40,
	GrowthPerCycle: 8, Reps: 4, TracedNodes: 6,
	PathSources: 10, ClusteringSample: 60, MeasureEvery: 5,
}

func TestScaleByName(t *testing.T) {
	for _, name := range []string{"quick", "medium", "full"} {
		sc, err := ScaleByName(name)
		if err != nil || sc.Name != name {
			t.Errorf("ScaleByName(%q) = %+v, %v", name, sc, err)
		}
		if err := sc.validate(); err != nil {
			t.Errorf("predefined scale %q invalid: %v", name, err)
		}
	}
	if _, err := ScaleByName("huge"); err == nil {
		t.Error("unknown scale accepted")
	}
}

func TestScaleValidate(t *testing.T) {
	bad := tiny
	bad.ViewSize = 0
	if bad.validate() == nil {
		t.Error("zero view size accepted")
	}
	bad = tiny
	bad.N = 5
	if bad.validate() == nil {
		t.Error("tiny N accepted")
	}
	bad = tiny
	bad.MeasureEvery = 0
	if bad.validate() == nil {
		t.Error("zero MeasureEvery accepted")
	}
}

func TestGrowthCycles(t *testing.T) {
	sc := Scale{N: 10_000, GrowthPerCycle: 100}
	if got := sc.GrowthCycles(); got != 100 {
		t.Errorf("growth cycles = %d want 100", got)
	}
	if got := (Scale{N: 10, GrowthPerCycle: 3}).GrowthCycles(); got != 4 {
		t.Errorf("growth cycles = %d want 4", got)
	}
	if got := (Scale{N: 10}).GrowthCycles(); got != 0 {
		t.Errorf("growth cycles without growth = %d want 0", got)
	}
}

func TestBuildRandom(t *testing.T) {
	cfg := sim.Config{Protocol: core.Newscast, ViewSize: tiny.ViewSize, Seed: 1}
	w := BuildRandom(cfg, tiny.N)
	if w.Size() != tiny.N || w.LiveCount() != tiny.N {
		t.Fatalf("population = %d/%d", w.LiveCount(), w.Size())
	}
	for i := 0; i < tiny.N; i++ {
		v := w.Node(sim.NodeID(i)).View()
		if v.Len() != tiny.ViewSize {
			t.Fatalf("node %d view len = %d want %d", i, v.Len(), tiny.ViewSize)
		}
		if v.Contains(sim.NodeID(i)) {
			t.Fatalf("node %d knows itself", i)
		}
	}
	snap := w.TakeSnapshot()
	if !snap.Graph.Components().Connected() {
		t.Error("random bootstrap disconnected")
	}
}

func TestBuildLattice(t *testing.T) {
	cfg := sim.Config{Protocol: core.Newscast, ViewSize: 8, Seed: 1}
	w := BuildLattice(cfg, 50)
	snap := w.TakeSnapshot()
	// Directed views hold the 4 nearest on each side; the undirected
	// union collapses symmetric links, so every degree is exactly c.
	lo, hi := snap.Graph.MinMaxDegree()
	if lo != 8 || hi != 8 {
		t.Errorf("lattice degrees = [%d,%d] want exactly 8", lo, hi)
	}
	// A ring lattice has a large diameter and high clustering relative to
	// random graphs.
	if d := snap.Graph.Diameter(); d < 5 {
		t.Errorf("lattice diameter = %d, too small", d)
	}
	if c := snap.Graph.Clustering(); c < 0.4 {
		t.Errorf("lattice clustering = %v, too small", c)
	}
	// Check the view of node 0 holds ring neighbours only.
	v := w.Node(0).View()
	for i := 0; i < v.Len(); i++ {
		addr := int(v.At(i).Addr)
		distRight := (addr - 0 + 50) % 50
		distLeft := (0 - addr + 50) % 50
		d := distRight
		if distLeft < d {
			d = distLeft
		}
		if d > 4 {
			t.Errorf("node 0 view contains %d at ring distance %d", addr, d)
		}
	}
}

func TestBuildLatticeOddViewSize(t *testing.T) {
	cfg := sim.Config{Protocol: core.Newscast, ViewSize: 5, Seed: 1}
	w := BuildLattice(cfg, 20)
	for i := 0; i < 20; i++ {
		if got := w.Node(sim.NodeID(i)).View().Len(); got != 5 {
			t.Fatalf("node %d view len = %d want 5", i, got)
		}
	}
}

func TestGrowStepAndRunGrowing(t *testing.T) {
	cfg := sim.Config{Protocol: core.Newscast, ViewSize: tiny.ViewSize, Seed: 2}
	w := BuildGrowingSeed(cfg)
	if w.Size() != 1 {
		t.Fatalf("seed network size = %d", w.Size())
	}
	added := GrowStep(w, 6, tiny.N)
	if added != 6 || w.Size() != 7 {
		t.Fatalf("grow step added %d (size %d)", added, w.Size())
	}
	// Joining nodes know only the oldest node.
	if !w.Node(3).View().Contains(0) || w.Node(3).View().Len() != 1 {
		t.Error("joiner bootstrap wrong")
	}

	calls := 0
	w2 := RunGrowing(cfg, tiny, func(w *sim.Network, cycle int) { calls++ })
	if calls != tiny.Cycles {
		t.Errorf("observe called %d times want %d", calls, tiny.Cycles)
	}
	if w2.Size() != tiny.N {
		t.Errorf("grown size = %d want %d", w2.Size(), tiny.N)
	}
	// Growth must stop at the target even though cycles continue.
	if w2.Cycle() != tiny.Cycles {
		t.Errorf("cycles = %d want %d", w2.Cycle(), tiny.Cycles)
	}
}

func TestComputeBaseline(t *testing.T) {
	base := ComputeBaseline(tiny, 7)
	if base.N != tiny.N || base.ViewSize != tiny.ViewSize {
		t.Errorf("baseline header wrong: %+v", base)
	}
	// Random-view union graph: expected degree c(1 + (N-1-c)/(N-1)),
	// which is ~28.5 for N=150, c=15.
	if base.AvgDegree < 26.5 || base.AvgDegree > 30.5 {
		t.Errorf("baseline avg degree = %v want ~28.5", base.AvgDegree)
	}
	if base.Clustering > 0.3 {
		t.Errorf("baseline clustering = %v implausibly high", base.Clustering)
	}
	if base.PathLen < 1 || base.PathLen > 4 {
		t.Errorf("baseline path length = %v implausible", base.PathLen)
	}
}

func TestMixDistinctAndDeterministic(t *testing.T) {
	seen := map[uint64]bool{}
	for k := 0; k < 1000; k++ {
		v := mix(42, k)
		if seen[v] {
			t.Fatalf("mix collision at k=%d", k)
		}
		seen[v] = true
	}
	if mix(42, 7) != mix(42, 7) {
		t.Error("mix not deterministic")
	}
	if mix(42, 7) == mix(43, 7) {
		t.Error("mix ignores seed")
	}
}

func TestForEachPar(t *testing.T) {
	const n = 100
	hits := make([]int, n)
	forEachPar(n, func(i int) { hits[i]++ })
	for i, h := range hits {
		if h != 1 {
			t.Fatalf("index %d ran %d times", i, h)
		}
	}
	forEachPar(0, func(int) { t.Fatal("fn called for n=0") })
	single := 0
	forEachPar(1, func(int) { single++ })
	if single != 1 {
		t.Error("n=1 did not run exactly once")
	}
}

func TestFindAndAll(t *testing.T) {
	defs := All()
	if len(defs) != 19 {
		t.Fatalf("registry has %d entries want 19", len(defs))
	}
	ids := map[string]bool{}
	for _, d := range defs {
		if d.Run == nil || d.Title == "" {
			t.Errorf("incomplete def %+v", d)
		}
		if ids[d.ID] {
			t.Errorf("duplicate id %q", d.ID)
		}
		ids[d.ID] = true
	}
	// Exactly the live-cluster experiments take a LiveEnv.
	live := map[string]bool{
		"hostile": true, "bootstrap": true, "livechurn": true,
		"livebroadcast": true, "liveaggregate": true, "livegateway": true,
		"partitionheal": true,
	}
	for _, d := range defs {
		wantLive := live[d.ID]
		if (d.RunLive != nil) != wantLive {
			t.Errorf("%s: RunLive presence = %v want %v", d.ID, d.RunLive != nil, wantLive)
		}
	}
	if _, ok := Find("figure6"); !ok {
		t.Error("figure6 not found")
	}
	if _, ok := Find("nope"); ok {
		t.Error("phantom experiment found")
	}
}
