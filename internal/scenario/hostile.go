package scenario

import (
	"fmt"
	"strings"
	"time"

	"peersampling/internal/chaos"
	"peersampling/internal/core"
	"peersampling/internal/fleet"
	"peersampling/internal/transport"
)

// The hostile-network experiment runs a LIVE cluster over real loopback
// TCP — unlike the cycle-based experiments, it exercises the transport's
// hardening layer (connection caps, keep-alive budgets) against the two
// classic resource attacks the limits exist for:
//
//   - connection flood: attackers dial the victim as fast as they can and
//     hold whatever they get; without a cap this exhausts fds and
//     goroutines before the gossip layer sees a frame.
//   - slowloris: admitted connections never send their opening frame,
//     holding a serve slot until the first-frame window expires.
//
// The claim under test is the ROADMAP's: bounded resource use at the
// listener, with the overlay above it still converging. The cluster runs
// on either fleet driver — under subprocess the flood hits a real psnode
// process's listener. Timings (and therefore the exact counter values)
// are real-network nondeterministic; the invariants reported — rejects
// observed, evictions reclaiming slots, views still complete — are not.

// hostilePlan names the fault plan the experiment replays: a connection
// flood against the member named "victim" (see internal/chaos/plans).
const hostilePlan = "hostile-flood"

// hostileParams derives live-cluster parameters from a simulation Scale
// (the cluster is necessarily much smaller than the paper's 10^4 — every
// node owns a real listener, growing mildly with the scale) and the
// attack's shape from the named chaos plan.
type hostileParams struct {
	Nodes     int           // live cluster size
	ViewSize  int           // view capacity, capped below cluster size
	MaxConns  int           // victim's listener cap, deliberately tight
	KeepAlive time.Duration // full keep-alive budget (shrunken budgets derive)
	Period    time.Duration // gossip period T
	Plan      string        // chaos plan driving the attack
	Attack    time.Duration // flood duration (from the plan)
	Flooders  int           // concurrent attacker goroutines (from the plan)
}

func hostileDerive(sc Scale, plan *chaos.Plan) hostileParams {
	nodes := sc.N / 50
	if nodes < 8 {
		nodes = 8
	}
	if nodes > 24 {
		nodes = 24
	}
	view := sc.ViewSize
	if view > nodes-1 {
		view = nodes - 1
	}
	flood, _ := plan.FirstFlood()
	return hostileParams{
		Nodes:     nodes,
		ViewSize:  view,
		MaxConns:  nodes, // tight: the flood WILL hit the cap
		KeepAlive: 400 * time.Millisecond,
		Period:    20 * time.Millisecond,
		Plan:      plan.Name,
		Attack:    flood.For,
		Flooders:  flood.Flooders,
	}
}

// HostileResult reports the hostile-network experiment: listener counters
// on the attacked node and overlay health across the cluster.
type HostileResult struct {
	Params hostileParams
	// Driver names the fleet driver that ran the cluster.
	Driver string

	FloodDials uint64 // connections the attackers opened (or tried)
	// Victim listener counters over the whole run.
	AcceptRejects      uint64
	KeepAliveEvictions uint64
	// VictimExchanges counts active exchanges the victim completed while
	// under attack — its outbound gossip does not pass through its own
	// listener, so it must keep making progress.
	VictimExchanges uint64
	// CompleteViews counts nodes whose post-attack view contains every
	// other live node (the strongest convergence statement a cluster
	// smaller than its view capacity admits).
	CompleteViews int
	// StrayDescriptors counts view entries pointing at addresses that are
	// not cluster members — attackers never inject any, so this must be 0.
	StrayDescriptors int
}

// ID implements Result.
func (r *HostileResult) ID() string { return "hostile" }

// Converged reports whether every node's view survived the attack
// complete and uncontaminated.
func (r *HostileResult) Converged() bool {
	return r.CompleteViews == r.Params.Nodes && r.StrayDescriptors == 0
}

// Render implements Result.
func (r *HostileResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Hostile network: connection flood + slowloris against a live cluster\n")
	fmt.Fprintf(&b, "cluster: %d nodes (%s driver), c=%d, T=%v, tcp backend, max-conns=%d, keepalive=%v\n",
		r.Params.Nodes, r.Driver, r.Params.ViewSize, r.Params.Period, r.Params.MaxConns, r.Params.KeepAlive)
	fmt.Fprintf(&b, "attack: plan=%s: %d flooders for %v -> %d connections thrown at one node\n",
		r.Params.Plan, r.Params.Flooders, r.Params.Attack, r.FloodDials)
	fmt.Fprintf(&b, "%-34s %10s\n", "", "value")
	fmt.Fprintf(&b, "%-34s %10d\n", "accepts rejected at the cap", r.AcceptRejects)
	fmt.Fprintf(&b, "%-34s %10d\n", "slowloris conns evicted", r.KeepAliveEvictions)
	fmt.Fprintf(&b, "%-34s %10d\n", "victim exchanges during attack", r.VictimExchanges)
	fmt.Fprintf(&b, "%-34s %7d/%2d\n", "complete views after attack", r.CompleteViews, r.Params.Nodes)
	fmt.Fprintf(&b, "%-34s %10d\n", "stray view entries", r.StrayDescriptors)
	fmt.Fprintf(&b, "converged under attack: %v\n", r.Converged())
	return b.String()
}

// RunHostile builds a live cluster on env's fleet driver in which EVERY
// listener runs the same tight limits (cap of Nodes conns, sub-second
// keep-alive — proving legitimate gossip fits under hostile-grade caps),
// attacks one node with a connection flood whose connections double as
// slowloris peers (they never send a frame), and measures whether the
// hardening holds: rejects at the cap, evictions reclaiming slots, and
// the overlay above still converging. With env.Collector set, node 0 is
// registered as "victim" and the rest as "peerNN", so serving the
// collector while the experiment runs (see cmd/experiments -metrics-addr)
// exposes the attack as a live time series — accept rejects and evictions
// climbing on the victim while every node's view-size gauge holds. The
// seed drives protocol randomness only; socket timing is inherently real.
func RunHostile(sc Scale, seed uint64, env LiveEnv) (*HostileResult, error) {
	plan, err := chaos.Load(hostilePlan)
	if err != nil {
		return nil, err
	}
	p := hostileDerive(sc, plan)
	res := &HostileResult{Params: p, Driver: env.DriverName()}

	cluster, err := env.cluster(fleet.Config{
		Protocol: core.Newscast,
		ViewSize: p.ViewSize,
		Period:   p.Period,
		Seed:     seed,
		Backend:  "tcp",
		Limits:   transport.Limits{MaxConns: p.MaxConns, KeepAlive: p.KeepAlive},
		Name: func(i int) string {
			if i == 0 {
				return "victim"
			}
			return fmt.Sprintf("peer%02d", i)
		},
	})
	if err != nil {
		return nil, err
	}
	defer cluster.Close()

	members, err := spawnLinear(cluster, p.Nodes)
	if err != nil {
		return nil, err
	}
	victim := members[0]
	ever := liveAddrs(members)

	// Let the overlay converge before the attack (bounded wait).
	waitCompleteViews(members, p.Period, 20*p.Period*time.Duration(p.Nodes))

	// Attack: the plan's flood event. Flooders dial the victim and hold
	// everything they get open without ever writing a byte — each admitted
	// connection is a slowloris occupying a serve slot until the
	// first-frame window evicts it, and everything beyond the cap is
	// rejected on accept. The executor's Step blocks for the attack's
	// whole duration.
	victimBefore, err := victim.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("scenario: hostile: victim snapshot: %w", err)
	}
	ex := chaos.New(plan, cluster, members, chaos.Options{Seed: mix(seed, 0x05711E)})
	defer ex.Close()
	attack, err := ex.Step()
	if err != nil {
		return nil, fmt.Errorf("scenario: hostile: %w", err)
	}
	victimAfter, err := victim.Snapshot()
	if err != nil {
		return nil, fmt.Errorf("scenario: hostile: victim snapshot after attack: %w", err)
	}

	// Post-attack: give the overlay a short settle window, then measure.
	res.CompleteViews, _ = waitCompleteViews(members, p.Period, 10*p.Period*time.Duration(p.Nodes))
	res.FloodDials = attack.FloodDials
	if victimAfter.Wire != nil {
		res.AcceptRejects = victimAfter.Wire.AcceptRejects
		res.KeepAliveEvictions = victimAfter.Wire.KeepAliveEvictions
	}
	res.VictimExchanges = victimAfter.Exchanges - victimBefore.Exchanges
	res.StrayDescriptors = strayDescriptors(members, ever)
	return res, nil
}
