package scenario

import (
	"strings"
	"testing"

	"peersampling/internal/metrics"
)

// The live churn scenario is the fleet harness's acceptance test at the
// scenario layer: kill waves of ≥25% of the members must leave the
// survivors converged, and respawns must bring the fleet back to full
// complete views, with the churn noise (failed exchanges) absorbed. Run
// under -race in CI. The inproc driver keeps this fast; the subprocess
// driver's equivalent run is covered by scripts/fleet-smoke.sh and the
// internal/fleet process tests.
func TestLiveChurnReconverges(t *testing.T) {
	if testing.Short() {
		t.Skip("live-socket churn scenario")
	}
	coll := metrics.New()
	res, err := RunLiveChurn(Quick, 11, LiveEnv{Collector: coll})
	if err != nil {
		t.Fatal(err)
	}

	if !res.Converged() {
		t.Fatalf("fleet did not re-converge through churn:\n%s", res.Render())
	}
	if res.ID() != "livechurn" {
		t.Fatalf("ID() = %q", res.ID())
	}
	if len(res.Rounds) != res.Params.Rounds {
		t.Fatalf("rounds reported = %d want %d", len(res.Rounds), res.Params.Rounds)
	}
	wantKillAtLeast := (res.Params.Nodes + 3) / 4 // ceil(25%)
	for i, round := range res.Rounds {
		if round.Killed < wantKillAtLeast {
			t.Errorf("round %d killed %d members, want >= %d (25%%)", i+1, round.Killed, wantKillAtLeast)
		}
		if round.Respawned != round.Killed {
			t.Errorf("round %d respawned %d != killed %d", i+1, round.Respawned, round.Killed)
		}
	}
	if res.KilledTotal == 0 || res.FinalLive != res.Params.Nodes {
		t.Errorf("fleet accounting wrong: %+v", res)
	}
	// Killing peers mid-gossip must produce failed exchanges somewhere —
	// and they must have been absorbed, which Converged already asserted.
	if res.Failures == 0 {
		t.Logf("note: churn produced no failed exchanges this run (timing)")
	}
	for _, want := range []string{"kill and respawn", "re-converged through churn: true", "round 1", "round 2"} {
		if !strings.Contains(res.Render(), want) {
			t.Fatalf("Render() missing %q:\n%s", want, res.Render())
		}
	}

	// The collector saw the original fleet plus every respawn.
	if want := res.Params.Nodes + res.KilledTotal; coll.Len() != want {
		t.Errorf("collector holds %d sources want %d", coll.Len(), want)
	}
}

func TestLiveChurnRegistered(t *testing.T) {
	d, ok := Find("livechurn")
	if !ok {
		t.Fatal("livechurn experiment not registered")
	}
	if d.Title == "" || d.Run == nil || d.RunLive == nil {
		t.Fatalf("incomplete registration: %+v", d)
	}
}
