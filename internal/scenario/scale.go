// Package scenario contains the paper's experimental methodology: the
// three bootstrap scenarios (growing overlay, ring lattice, random
// topology), and one driver per table and figure of the evaluation
// section. Each driver returns a structured result that renders as a
// paper-shaped text table; cmd/experiments runs them all and EXPERIMENTS.md
// records the outcomes.
package scenario

import "fmt"

// Scale bundles the size parameters of a reproduction run. Full is the
// paper's configuration; Quick and Medium shrink the network (keeping the
// view size c = 30 and cycle counts, which the dynamics depend on) so that
// the suite runs in seconds or minutes while preserving every qualitative
// shape.
type Scale struct {
	Name string
	// N is the target network size (the paper uses 10^4).
	N int
	// ViewSize is the view capacity c (the paper uses 30).
	ViewSize int
	// Cycles is the main run length (the paper uses 300).
	Cycles int
	// GrowthPerCycle is the number of nodes joining per cycle in the
	// growing scenario; the growth phase always lasts N/GrowthPerCycle
	// cycles (100 in the paper).
	GrowthPerCycle int
	// Reps is the number of repetitions for Table 1 and Figure 6 (the
	// paper uses 100).
	Reps int
	// TracedNodes is the number of nodes whose degree is traced for
	// Table 2 (the paper uses 50).
	TracedNodes int
	// PathSources and ClusteringSample control metric estimation; zero
	// means exact.
	PathSources      int
	ClusteringSample int
	// MeasureEvery is the cycle stride between observations in the
	// dynamics figures.
	MeasureEvery int
}

// Predefined scales.
var (
	// Quick runs in a few seconds; used by the benchmark harness.
	Quick = Scale{
		Name: "quick", N: 500, ViewSize: 30, Cycles: 120,
		GrowthPerCycle: 5, Reps: 10, TracedNodes: 20,
		PathSources: 12, ClusteringSample: 150, MeasureEvery: 4,
	}
	// Medium runs in minutes and already matches the paper closely. The
	// growth rate stays at the paper's 100 joiners per cycle: Table 1's
	// partitioning phenomenon depends on the ratio of cohort size to view
	// size (100/30), not on the network size.
	Medium = Scale{
		Name: "medium", N: 2500, ViewSize: 30, Cycles: 300,
		GrowthPerCycle: 100, Reps: 30, TracedNodes: 50,
		PathSources: 16, ClusteringSample: 400, MeasureEvery: 5,
	}
	// Full is the paper's parameterisation (N = 10^4, c = 30, 300
	// cycles, 100 repetitions).
	Full = Scale{
		Name: "full", N: 10_000, ViewSize: 30, Cycles: 300,
		GrowthPerCycle: 100, Reps: 100, TracedNodes: 50,
		PathSources: 24, ClusteringSample: 600, MeasureEvery: 5,
	}
)

// ScaleByName returns the predefined scale with the given name.
func ScaleByName(name string) (Scale, error) {
	switch name {
	case "quick":
		return Quick, nil
	case "medium":
		return Medium, nil
	case "full":
		return Full, nil
	default:
		return Scale{}, fmt.Errorf("scenario: unknown scale %q (want quick, medium or full)", name)
	}
}

// GrowthCycles returns the length of the growth phase in the growing
// scenario.
func (s Scale) GrowthCycles() int {
	if s.GrowthPerCycle <= 0 {
		return 0
	}
	return (s.N + s.GrowthPerCycle - 1) / s.GrowthPerCycle
}

func (s Scale) validate() error {
	if s.N < 10 {
		return fmt.Errorf("scenario: N = %d too small", s.N)
	}
	if s.ViewSize <= 0 || s.ViewSize >= s.N {
		return fmt.Errorf("scenario: view size %d out of range for N = %d", s.ViewSize, s.N)
	}
	if s.Cycles <= 0 || s.Reps <= 0 || s.GrowthPerCycle <= 0 {
		return fmt.Errorf("scenario: non-positive run parameters: %+v", s)
	}
	if s.MeasureEvery <= 0 {
		return fmt.Errorf("scenario: MeasureEvery must be positive, got %d", s.MeasureEvery)
	}
	return nil
}
