package scenario

import (
	"fmt"
	"strings"

	"peersampling/internal/core"
	"peersampling/internal/sim"
	"peersampling/internal/stats"
)

// UniformityRow quantifies how far one protocol's getPeer() samples are
// from independent uniform sampling — the service-level form of the
// paper's headline claim ("none of them leads to uniform sampling").
type UniformityRow struct {
	Protocol core.Protocol
	// ChiSquare is Pearson's statistic of the sample counts against
	// uniform, normalised by degrees of freedom (~1 for a truly uniform
	// sampler, larger = more biased).
	ChiSquare float64
	// TotalVariation is the distance between the empirical sample
	// distribution and uniform (0 = identical).
	TotalVariation float64
	// NormalizedEntropy is 1 for uniform sampling, lower when the
	// service favours some nodes.
	NormalizedEntropy float64
	// MaxOverMean is the most-sampled node's frequency relative to the
	// mean frequency — the "communication hot spot" factor.
	MaxOverMean float64
}

// UniformityResult is the sampling-quality experiment: every node draws
// getPeer() samples while the overlay keeps gossiping, and the pooled
// sample distribution over targets is compared with uniform. A control
// row drawn from a true uniform sampler with the same sample budget
// calibrates the statistics.
type UniformityResult struct {
	Scale          Scale
	SamplesPerNode int
	Cycles         int
	Control        UniformityRow // ideal uniform sampler with the same budget
	Rows           []UniformityRow
}

// ID implements Result.
func (*UniformityResult) ID() string { return "uniformity" }

// Render implements Result.
func (r *UniformityResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Sampling quality of getPeer() (N=%d, %d samples/node over %d cycles)\n",
		r.Scale.N, r.SamplesPerNode*r.Cycles, r.Cycles)
	tb := newTable("protocol", "chi2/df", "total variation", "norm entropy", "hotspot factor")
	add := func(name string, row UniformityRow) {
		tb.addRow(name, f2(row.ChiSquare), f4(row.TotalVariation), f4(row.NormalizedEntropy), f2(row.MaxOverMean))
	}
	add("uniform control", r.Control)
	for _, row := range r.Rows {
		add(row.Protocol.String(), row)
	}
	b.WriteString(tb.String())
	return b.String()
}

// RunUniformity measures getPeer() sampling quality for all studied
// protocols. The samples interleave with protocol cycles (one batch per
// cycle per node), so temporal view dynamics are reflected, exactly as an
// application calling getPeer() periodically would see them.
func RunUniformity(sc Scale, seed uint64) *UniformityResult {
	if err := sc.validate(); err != nil {
		panic(err)
	}
	const samplesPerNodePerCycle = 2
	cycles := sc.Cycles / 3
	if cycles < 10 {
		cycles = 10
	}
	protos := core.StudiedProtocols()
	res := &UniformityResult{
		Scale:          sc,
		SamplesPerNode: samplesPerNodePerCycle,
		Cycles:         cycles,
		Rows:           make([]UniformityRow, len(protos)),
	}

	// Control: a true uniform sampler with the same total budget.
	ctrlRng := newRand(mix(seed, 0xC7A1))
	ctrlCounts := make([]int, sc.N)
	for i := 0; i < sc.N*cycles*samplesPerNodePerCycle; i++ {
		ctrlCounts[ctrlRng.IntN(sc.N)]++
	}
	res.Control = uniformityRow(core.Protocol{}, ctrlCounts)

	forEachPar(len(protos), func(pi int) {
		cfg := sim.Config{Protocol: protos[pi], ViewSize: sc.ViewSize, Seed: mix(seed, pi)}
		w := BuildRandom(cfg, sc.N)
		w.Run(sc.Cycles) // converge first
		counts := make([]int, sc.N)
		for cyc := 0; cyc < cycles; cyc++ {
			w.RunCycle()
			for id := 0; id < sc.N; id++ {
				for s := 0; s < samplesPerNodePerCycle; s++ {
					p, err := w.SamplePeer(sim.NodeID(id))
					if err == nil {
						counts[p]++
					}
				}
			}
		}
		res.Rows[pi] = uniformityRow(protos[pi], counts)
	})
	return res
}

func uniformityRow(proto core.Protocol, counts []int) UniformityRow {
	total, max := 0, 0
	for _, c := range counts {
		total += c
		if c > max {
			max = c
		}
	}
	row := UniformityRow{
		Protocol:          proto,
		ChiSquare:         stats.ChiSquareUniform(counts),
		TotalVariation:    stats.TotalVariationUniform(counts),
		NormalizedEntropy: stats.NormalizedEntropy(counts),
	}
	if total > 0 {
		row.MaxOverMean = float64(max) * float64(len(counts)) / float64(total)
	}
	return row
}
