package scenario

import (
	"strings"
	"testing"

	"peersampling/internal/core"
)

func TestRunUniformityShape(t *testing.T) {
	res := RunUniformity(tiny, 10)
	if res.ID() != "uniformity" {
		t.Error("wrong ID")
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d want 8", len(res.Rows))
	}
	// The calibration control must look uniform.
	if res.Control.ChiSquare > 2 || res.Control.NormalizedEntropy < 0.95 {
		t.Errorf("control not uniform: %+v", res.Control)
	}
	var randChi, headChi float64
	randN, headN := 0, 0
	for _, row := range res.Rows {
		// The paper's headline: every gossip implementation deviates from
		// uniform sampling. The chi-square statistic must exceed the
		// control's clearly.
		if row.ChiSquare < res.Control.ChiSquare {
			t.Errorf("%v chi2 %v below control %v", row.Protocol, row.ChiSquare, res.Control.ChiSquare)
		}
		if row.NormalizedEntropy <= 0 || row.NormalizedEntropy > 1 {
			t.Errorf("%v entropy out of range: %v", row.Protocol, row.NormalizedEntropy)
		}
		if row.MaxOverMean < 1 {
			t.Errorf("%v hotspot factor below 1: %v", row.Protocol, row.MaxOverMean)
		}
		switch row.Protocol.ViewSel {
		case core.ViewRand:
			randChi += row.ChiSquare
			randN++
		case core.ViewHead:
			headChi += row.ChiSquare
			headN++
		}
	}
	// Rand view selection's unbalanced in-degrees bias sampling much more
	// than head's narrow distribution.
	if randChi/float64(randN) <= headChi/float64(headN) {
		t.Errorf("rand view selection chi2 %v not above head %v",
			randChi/float64(randN), headChi/float64(headN))
	}
	if !strings.Contains(res.Render(), "uniform control") {
		t.Error("render missing control row")
	}
}

func TestRunChurnShape(t *testing.T) {
	res := RunChurn(tiny, 11)
	if res.ID() != "churn" {
		t.Error("wrong ID")
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d want 8", len(res.Rows))
	}
	for _, row := range res.Rows {
		if row.AvgDeadLinks < 0 || row.AvgDeadLinks > float64(tiny.ViewSize) {
			t.Errorf("%v dead links per view = %v out of range", row.Protocol, row.AvgDeadLinks)
		}
		if row.InvisibleFraction < 0 || row.InvisibleFraction > 1 {
			t.Errorf("%v invisible fraction = %v", row.Protocol, row.InvisibleFraction)
		}
		// Newscast-style (rand,head,pushpull) must stay connected and
		// carry few dead links under mild churn; push-only variants may
		// legitimately fall apart (the paper's Section 8: push cannot
		// serve joining nodes).
		if row.Protocol == core.Newscast {
			if !row.Connected {
				t.Errorf("%v disconnected under 1%% churn", row.Protocol)
			}
			if row.AvgDeadLinks > float64(tiny.ViewSize)/2 {
				t.Errorf("%v carries %v dead links per view under churn", row.Protocol, row.AvgDeadLinks)
			}
		}
	}
	// Rand view selection accumulates more dead links than head (slow
	// flushing, Figure 7's mechanism, now in steady state).
	var randDead, headDead float64
	var randN, headN int
	for _, row := range res.Rows {
		switch row.Protocol.ViewSel {
		case core.ViewRand:
			randDead += row.AvgDeadLinks
			randN++
		case core.ViewHead:
			headDead += row.AvgDeadLinks
			headN++
		}
	}
	if randDead/float64(randN) <= headDead/float64(headN) {
		t.Errorf("rand view selection dead links %v not above head %v",
			randDead/float64(randN), headDead/float64(headN))
	}
	if !strings.Contains(res.Render(), "churn") {
		t.Error("render missing title")
	}
}

func TestRegistryIncludesExtensions(t *testing.T) {
	if _, ok := Find("uniformity"); !ok {
		t.Error("uniformity not registered")
	}
	if _, ok := Find("churn"); !ok {
		t.Error("churn not registered")
	}
	if _, ok := Find("ablation"); !ok {
		t.Error("ablation not registered")
	}
}

func TestRunAblationShape(t *testing.T) {
	res := RunAblation(tiny, 12)
	if res.ID() != "ablation" {
		t.Error("wrong ID")
	}
	if len(res.Rows) == 0 {
		t.Fatal("no ablation rows (N too small for every candidate c)")
	}
	for _, row := range res.Rows {
		if row.ViewSize > tiny.N/8 {
			t.Errorf("c=%d exceeds N/8", row.ViewSize)
		}
		if row.Clustering < 0 || row.Clustering > 1 {
			t.Errorf("c=%d clustering %v out of range", row.ViewSize, row.Clustering)
		}
		if row.Connected && row.PathLen < 1 {
			t.Errorf("c=%d implausible path length %v", row.ViewSize, row.PathLen)
		}
	}
	// Larger views heal at least as fast (half-life non-increasing,
	// allowing one cycle of noise) and lower the path length.
	for i := 1; i < len(res.Rows); i++ {
		a, b := res.Rows[i-1], res.Rows[i]
		if a.HealHalfLife >= 0 && b.HealHalfLife >= 0 && b.HealHalfLife > a.HealHalfLife+1 {
			t.Errorf("half-life grew with c: c=%d -> %d, c=%d -> %d",
				a.ViewSize, a.HealHalfLife, b.ViewSize, b.HealHalfLife)
		}
	}
	if !strings.Contains(res.Render(), "View size ablation") {
		t.Error("render missing title")
	}
}
