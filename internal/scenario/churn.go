package scenario

import (
	"fmt"
	"strings"

	"peersampling/internal/core"
	"peersampling/internal/sim"
)

// ChurnRow summarises the steady state of one protocol under continuous
// churn: in every cycle a fixed fraction of the population fails and the
// same number of fresh nodes joins through a random live contact.
type ChurnRow struct {
	Protocol core.Protocol
	// Connected reports whether the live overlay was connected at the end.
	Connected bool
	// OutsideLargest is the share of live nodes outside the largest
	// cluster at the end.
	OutsideLargest float64
	// AvgDeadLinks is the mean number of dead links per live view in
	// steady state (averaged over the last third of the run).
	AvgDeadLinks float64
	// InvisibleFraction is the share of live nodes no other live node
	// knows about (they can never be sampled).
	InvisibleFraction float64
}

// ChurnResult is an extension experiment beyond the paper's static
// failure studies: the paper's Section 10 notes that practical
// deployments must handle continuous dynamism; this measures which design
// points actually do. The churn model replaces ChurnRate of the
// population per cycle, which at 1% approximates the median session times
// observed in deployed peer-to-peer systems relative to a gossip period
// of a few seconds.
type ChurnResult struct {
	Scale     Scale
	ChurnRate float64
	Cycles    int
	Rows      []ChurnRow
}

// ID implements Result.
func (*ChurnResult) ID() string { return "churn" }

// Render implements Result.
func (r *ChurnResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Continuous churn (%.1f%% of nodes replaced per cycle, %d cycles, N=%d)\n",
		r.ChurnRate*100, r.Cycles, r.Scale.N)
	tb := newTable("protocol", "connected", "outside largest", "dead links/view", "invisible")
	for _, row := range r.Rows {
		conn := "yes"
		if !row.Connected {
			conn = "NO"
		}
		tb.addRow(row.Protocol.String(), conn, f4(row.OutsideLargest), f3(row.AvgDeadLinks), f4(row.InvisibleFraction))
	}
	b.WriteString(tb.String())
	return b.String()
}

// RunChurn measures steady-state overlay health under continuous churn
// for all studied protocols.
func RunChurn(sc Scale, seed uint64) *ChurnResult {
	if err := sc.validate(); err != nil {
		panic(err)
	}
	const churnRate = 0.01
	cycles := sc.Cycles
	protos := core.StudiedProtocols()
	res := &ChurnResult{
		Scale:     sc,
		ChurnRate: churnRate,
		Cycles:    cycles,
		Rows:      make([]ChurnRow, len(protos)),
	}
	forEachPar(len(protos), func(pi int) {
		cfg := sim.Config{Protocol: protos[pi], ViewSize: sc.ViewSize, Seed: mix(seed, pi)}
		w := BuildRandom(cfg, sc.N)
		rng := newRand(mix(seed, 0xC4B2+pi))
		perCycle := int(float64(sc.N) * churnRate)
		if perCycle < 1 {
			perCycle = 1
		}
		deadSum, deadSamples := 0.0, 0
		for cyc := 0; cyc < cycles; cyc++ {
			// Fail perCycle random live nodes.
			live := w.LiveIDs()
			rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
			for _, id := range live[:perCycle] {
				w.Kill(id)
			}
			// The same number of fresh nodes joins via random live contacts.
			live = live[perCycle:]
			for j := 0; j < perCycle; j++ {
				contact := live[rng.IntN(len(live))]
				w.Add([]core.Descriptor[sim.NodeID]{{Addr: contact, Hop: 0}})
			}
			w.RunCycle()
			if cyc >= cycles*2/3 {
				deadSum += float64(w.DeadLinks()) / float64(w.LiveCount())
				deadSamples++
			}
		}
		comp := w.TakeSnapshot().Graph.Components()
		res.Rows[pi] = ChurnRow{
			Protocol:          protos[pi],
			Connected:         comp.Connected(),
			OutsideLargest:    float64(comp.OutsideLargest()) / float64(w.LiveCount()),
			AvgDeadLinks:      deadSum / float64(deadSamples),
			InvisibleFraction: invisibleFraction(w),
		}
	})
	return res
}
