package scenario

import (
	"fmt"
	"math/rand/v2"
	"runtime"
	"sync"

	"peersampling/internal/core"
	"peersampling/internal/sim"
)

// newRand returns a deterministic RNG for the given derived seed.
func newRand(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, 0x5A11AD))
}

// Result is a rendered experiment outcome. Every driver returns one.
type Result interface {
	// ID is the paper artefact this reproduces ("table1", "figure2", ...).
	ID() string
	// Render returns a human-readable text table shaped like the paper's.
	Render() string
}

// Def names one registered experiment.
type Def struct {
	ID    string
	Title string
	Run   func(sc Scale, seed uint64) Result
	// RunLive is set on experiments that boot a live cluster (real
	// sockets, real time, possibly real processes — see LiveEnv): the
	// environment selects the fleet driver and optionally a collector
	// observing every member. Unlike Run, RunLive returns an error,
	// because booting real processes has real failure modes (a missing
	// psnode binary is not a panic-grade programmer error). It is nil
	// for cycle-based experiments, which are observed through their own
	// Result series instead.
	RunLive func(sc Scale, seed uint64, env LiveEnv) (Result, error)
}

// runLiveDirect adapts a RunLive function to the plain Run signature for
// the registry: default environment, errors escalated to panics (the
// inproc driver only fails on programmer error, matching the other
// scenarios' contract).
func runLiveDirect(f func(sc Scale, seed uint64, env LiveEnv) (Result, error)) func(Scale, uint64) Result {
	return func(sc Scale, seed uint64) Result {
		r, err := f(sc, seed, LiveEnv{})
		if err != nil {
			panic(fmt.Sprintf("scenario: %v", err))
		}
		return r
	}
}

// All returns the full experiment registry in paper order.
func All() []Def {
	return []Def{
		{"table1", "Table 1: partitioning in the growing overlay scenario", func(sc Scale, seed uint64) Result { return RunTable1(sc, seed) }, nil},
		{"figure2", "Figure 2: dynamics of graph properties, growing scenario", func(sc Scale, seed uint64) Result { return RunFigure2(sc, seed) }, nil},
		{"figure3", "Figure 3: dynamics from lattice and random initialisation", func(sc Scale, seed uint64) Result { return RunFigure3(sc, seed) }, nil},
		{"figure4", "Figure 4: degree distributions from random initialisation", func(sc Scale, seed uint64) Result { return RunFigure4(sc, seed) }, nil},
		{"table2", "Table 2: dynamics of individual node degrees", func(sc Scale, seed uint64) Result { return RunTable2(sc, seed) }, nil},
		{"figure5", "Figure 5: autocorrelation of node degree over time", func(sc Scale, seed uint64) Result { return RunFigure5(sc, seed) }, nil},
		{"figure6", "Figure 6: connectivity after catastrophic node removal", func(sc Scale, seed uint64) Result { return RunFigure6(sc, seed) }, nil},
		{"figure7", "Figure 7: self-healing after 50% node failure", func(sc Scale, seed uint64) Result { return RunFigure7(sc, seed) }, nil},
		{"exclusion", "Section 4.3: why (head,*,*), (*,tail,*), (*,*,pull) are excluded", func(sc Scale, seed uint64) Result { return RunExclusion(sc, seed) }, nil},
		{"uniformity", "Sampling quality: getPeer() versus independent uniform sampling", func(sc Scale, seed uint64) Result { return RunUniformity(sc, seed) }, nil},
		{"churn", "Extension: steady-state behaviour under continuous churn", func(sc Scale, seed uint64) Result { return RunChurn(sc, seed) }, nil},
		{
			"bootstrap", "Extension: live cluster bootstrap convergence over real sockets",
			runLiveDirect(liveBootstrapDef),
			liveBootstrapDef,
		},
		{
			"hostile", "Extension: live cluster under connection flood and slowloris",
			runLiveDirect(hostileDef),
			hostileDef,
		},
		{
			"livechurn", "Extension: fleet churn — kill and respawn real nodes each round",
			runLiveDirect(liveChurnDef),
			liveChurnDef,
		},
		{
			"livebroadcast", "Extension: epidemic rumor spread over a live fleet under a kill wave",
			runLiveDirect(liveBroadcastDef),
			liveBroadcastDef,
		},
		{
			"liveaggregate", "Extension: live push-pull averaging — variance decay and size estimation",
			runLiveDirect(liveAggregateDef),
			liveAggregateDef,
		},
		{
			"livegateway", "Extension: gateway sampling API under ramping load and a kill wave",
			runLiveDirect(liveGatewayDef),
			liveGatewayDef,
		},
		{
			"partitionheal", "Extension: partition and heal a live fleet from a declarative fault plan",
			runLiveDirect(livePartitionDef),
			livePartitionDef,
		},
		{"ablation", "Ablation: overlay quality and robustness versus view size c", func(sc Scale, seed uint64) Result { return RunAblation(sc, seed) }, nil},
	}
}

// The live experiments' RunLive shapes, named so All can register both
// the plain and the environment-aware form without repeating closures.
func liveBootstrapDef(sc Scale, seed uint64, env LiveEnv) (Result, error) {
	return RunLiveBootstrap(sc, seed, env)
}

func hostileDef(sc Scale, seed uint64, env LiveEnv) (Result, error) {
	return RunHostile(sc, seed, env)
}

func liveChurnDef(sc Scale, seed uint64, env LiveEnv) (Result, error) {
	return RunLiveChurn(sc, seed, env)
}

func liveBroadcastDef(sc Scale, seed uint64, env LiveEnv) (Result, error) {
	return RunLiveBroadcast(sc, seed, env)
}

func liveAggregateDef(sc Scale, seed uint64, env LiveEnv) (Result, error) {
	return RunLiveAggregate(sc, seed, env)
}

func liveGatewayDef(sc Scale, seed uint64, env LiveEnv) (Result, error) {
	return RunLiveGateway(sc, seed, env)
}

func livePartitionDef(sc Scale, seed uint64, env LiveEnv) (Result, error) {
	return RunLivePartition(sc, seed, env)
}

// Find returns the experiment definition with the given ID.
func Find(id string) (Def, bool) {
	for _, d := range All() {
		if d.ID == id {
			return d, true
		}
	}
	return Def{}, false
}

// table1Protocols are the four push protocols of the paper's Table 1 (the
// ones for which partitioning was observed in the growing scenario).
func table1Protocols() []core.Protocol {
	return []core.Protocol{
		{PeerSel: core.PeerRand, ViewSel: core.ViewHead, Prop: core.Push},
		{PeerSel: core.PeerRand, ViewSel: core.ViewRand, Prop: core.Push},
		{PeerSel: core.PeerTail, ViewSel: core.ViewHead, Prop: core.Push},
		{PeerSel: core.PeerTail, ViewSel: core.ViewRand, Prop: core.Push},
	}
}

// figure2Protocols are the six protocols plotted in Figure 2: the four
// pushpull variants plus non-partitioned runs of the two (*,rand,push)
// variants. (rand,head,push) and (tail,head,push) are omitted as unstable,
// per the paper.
func figure2Protocols() []core.Protocol {
	return []core.Protocol{
		{PeerSel: core.PeerRand, ViewSel: core.ViewRand, Prop: core.Push},
		{PeerSel: core.PeerTail, ViewSel: core.ViewRand, Prop: core.Push},
		{PeerSel: core.PeerRand, ViewSel: core.ViewRand, Prop: core.PushPull},
		{PeerSel: core.PeerTail, ViewSel: core.ViewRand, Prop: core.PushPull},
		{PeerSel: core.PeerRand, ViewSel: core.ViewHead, Prop: core.PushPull},
		{PeerSel: core.PeerTail, ViewSel: core.ViewHead, Prop: core.PushPull},
	}
}

// figure5Protocols are the four rand-peer-selection protocols plotted in
// Figure 5 (the (tail,*,*) variants are omitted for clarity, as in the
// paper).
func figure5Protocols() []core.Protocol {
	return []core.Protocol{
		{PeerSel: core.PeerRand, ViewSel: core.ViewRand, Prop: core.Push},
		{PeerSel: core.PeerRand, ViewSel: core.ViewRand, Prop: core.PushPull},
		{PeerSel: core.PeerRand, ViewSel: core.ViewHead, Prop: core.Push},
		{PeerSel: core.PeerRand, ViewSel: core.ViewHead, Prop: core.PushPull},
	}
}

// metricsConfig derives the estimator settings from the scale.
func metricsConfig(sc Scale, seed uint64) sim.MetricsConfig {
	return sim.MetricsConfig{
		PathSources:      sc.PathSources,
		ClusteringSample: sc.ClusteringSample,
		Seed:             seed,
	}
}

// forEachPar runs fn(0..n-1) on up to GOMAXPROCS goroutines and waits for
// all of them. Each index must write only its own result slot, which keeps
// parallel experiment repetitions deterministic.
func forEachPar(n int, fn func(i int)) {
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var wg sync.WaitGroup
	next := make(chan int)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// mix folds a small integer into a seed, giving unrelated deterministic
// RNG streams for repetitions and protocol variants.
func mix(seed uint64, k int) uint64 {
	x := seed + 0x9E3779B97F4A7C15*uint64(k+1)
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}
