package daemon

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"peersampling/internal/fleet"
	"peersampling/internal/gateway"
	"peersampling/internal/metrics"
)

// Status is one plugin's lifecycle state for the aggregated /healthz
// report.
type Status struct {
	// State is "stopped", "running" or "failed".
	State string `json:"state"`
	// Detail carries the listen address while running, or the failure.
	Detail string `json:"detail,omitempty"`
}

// Plugin is one unit of the daemon's service surface. Start and Stop are
// called by the Manager only (Start before the ready file is written,
// Stop in reverse order on shutdown); Status may be called concurrently
// at any time.
type Plugin interface {
	Name() string
	Start() error
	Stop() error
	Status() Status
}

// statusHolder is the concurrency-safe Status every plugin embeds.
type statusHolder struct {
	mu sync.Mutex
	s  Status
}

func (h *statusHolder) set(state, detail string) {
	h.mu.Lock()
	h.s = Status{State: state, Detail: detail}
	h.mu.Unlock()
}

func (h *statusHolder) Status() Status {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.s.State == "" {
		return Status{State: "stopped"}
	}
	return h.s
}

// pacer runs fn every interval on its own goroutine. The interval is
// swappable live (SetInterval), taking effect from the next round — the
// mechanism behind hot-reloading metrics.report_interval.
type pacer struct {
	mu       sync.Mutex
	interval time.Duration
	fn       func()
	stop     chan struct{}
	done     chan struct{}
}

func newPacer(interval time.Duration, fn func()) *pacer {
	return &pacer{interval: interval, fn: fn}
}

func (p *pacer) Start() {
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go func() {
		defer close(p.done)
		for {
			p.mu.Lock()
			interval := p.interval
			p.mu.Unlock()
			timer := time.NewTimer(interval)
			select {
			case <-p.stop:
				timer.Stop()
				return
			case <-timer.C:
				p.fn()
			}
		}
	}()
}

func (p *pacer) Stop() {
	if p.stop == nil {
		return
	}
	close(p.stop)
	<-p.done
	p.stop = nil
}

func (p *pacer) SetInterval(interval time.Duration) {
	p.mu.Lock()
	p.interval = interval
	p.mu.Unlock()
}

func (p *pacer) Interval() time.Duration {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.interval
}

// metricsServerPlugin serves the collector's Prometheus exposition.
type metricsServerPlugin struct {
	statusHolder
	m    *Manager
	addr string
	srv  *metrics.Server
}

func (p *metricsServerPlugin) Name() string { return "metrics-server" }

func (p *metricsServerPlugin) Start() error {
	srv, err := metrics.NewServer(p.m.coll, p.addr)
	if err != nil {
		p.set("failed", err.Error())
		return err
	}
	p.srv = srv
	p.set("running", srv.Addr())
	p.m.logf("metrics: serving http://%s/metrics", srv.Addr())
	return nil
}

func (p *metricsServerPlugin) Stop() error {
	if p.srv == nil {
		return nil
	}
	err := p.srv.Close()
	p.set("stopped", "")
	return err
}

// dumperPlugin appends periodic snapshot rounds to the configured dump
// file, paced by its own hot-swappable interval (the shared Dumper's
// Start/Stop ticker is single-shot, so the plugin owns the pacing).
type dumperPlugin struct {
	statusHolder
	m      *Manager
	path   string
	dumper *metrics.Dumper
	pace   *pacer
}

func (p *dumperPlugin) Name() string { return "metrics-dumper" }

func (p *dumperPlugin) Start() error {
	d, err := metrics.NewFileDumper(p.m.coll, p.path)
	if err != nil {
		p.set("failed", err.Error())
		return err
	}
	p.dumper = d
	p.pace = newPacer(p.m.reportInterval(), func() {
		if err := p.dumper.Dump(); err != nil {
			p.m.logf("metrics: dump: %v", err)
		}
	})
	p.pace.Start()
	p.set("running", p.path)
	p.m.logf("metrics: dumping to %s every %v", p.path, p.pace.Interval())
	return nil
}

func (p *dumperPlugin) Stop() error {
	if p.dumper == nil {
		return nil
	}
	p.pace.Stop()
	// One final round so short runs are never empty.
	err := p.dumper.Dump()
	if cerr := p.dumper.Close(); err == nil {
		err = cerr
	}
	p.set("stopped", "")
	return err
}

// reporterPlugin logs the periodic view/stats report — the same
// snapshots the /metrics endpoint and dump file serve.
type reporterPlugin struct {
	statusHolder
	m    *Manager
	pace *pacer
}

func (p *reporterPlugin) Name() string { return "reporter" }

func (p *reporterPlugin) Start() error {
	p.pace = newPacer(p.m.reportInterval(), p.report)
	p.pace.Start()
	p.set("running", "")
	return nil
}

func (p *reporterPlugin) Stop() error {
	if p.pace != nil {
		p.pace.Stop()
	}
	p.set("stopped", "")
	return nil
}

func (p *reporterPlugin) report() {
	node := p.m.node
	view := node.View()
	entries := make([]string, len(view))
	for i, d := range view {
		entries[i] = fmt.Sprintf("%s@%d", d.Addr, d.Hop)
	}
	p.m.logf("view(%d): %s", len(view), strings.Join(entries, " "))
	for _, s := range p.m.coll.Snapshot() {
		if s.Gateway != nil {
			g := s.Gateway
			p.m.logf("gateway: requests=%d served=%d limited=%d unavailable=%d cache=%d age=%.1fs",
				g.Requests, g.PeersServed, g.RateLimited, g.Unavailable, g.CacheSize, g.CacheAgeSeconds)
			continue
		}
		p.m.logf("stats: cycles=%d exchanges=%d failures=%d served=%d view=%d hops=[%d %.1f %d]",
			s.Cycles, s.Exchanges, s.Failures, s.Served, s.ViewSize, s.HopMin, s.HopMean, s.HopMax)
		if s.App != nil {
			p.m.logf("workload(%s): rounds=%d sent=%d received=%d failures=%d infected=%g value=%g",
				s.App.Workload, s.App.Rounds, s.App.Sent, s.App.Received, s.App.Failures,
				s.App.Infected, s.App.Value)
		}
		if s.Wire != nil {
			parts := make([]string, 0, 9)
			for _, c := range s.Wire.Named() {
				parts = append(parts, fmt.Sprintf("%s=%d", c.Name, c.Value))
			}
			p.m.logf("wire: %s", strings.Join(parts, " "))
		}
		if s.Latency != nil && s.Latency.Count > 0 {
			p.m.logf("latency: p50=%.2fms p99=%.2fms over %d exchanges",
				s.Latency.Quantile(0.50)*1000, s.Latency.Quantile(0.99)*1000, s.Latency.Count)
		}
	}
}

// agentPlugin serves the fleet control surface (GET /healthz, /snapshot,
// /view; POST /stop) with the manager's aggregated status on /healthz.
type agentPlugin struct {
	statusHolder
	m     *Manager
	addr  string
	agent *fleet.Agent
}

func (p *agentPlugin) Name() string { return "control-agent" }

func (p *agentPlugin) Start() error {
	a, err := fleet.NewAgent(p.addr, p.m.src, p.m.RequestStop)
	if err != nil {
		p.set("failed", err.Error())
		return err
	}
	a.SetStatus(func() any { return p.m.StatusReport() })
	p.agent = a
	p.set("running", a.Addr())
	p.m.logf("control agent on http://%s (healthz, snapshot, view, stop)", a.Addr())
	return nil
}

func (p *agentPlugin) Stop() error {
	if p.agent == nil {
		return nil
	}
	err := p.agent.Close()
	p.set("stopped", "")
	return err
}

// workloadPlugin drives the configured gossip application engine's
// rounds. The engine itself was built and attached in New — the
// transport handler must be installed before the listener serves peers —
// so the plugin only owns the round loop's lifecycle.
type workloadPlugin struct {
	statusHolder
	m *Manager
}

func (p *workloadPlugin) Name() string { return "workload" }

func (p *workloadPlugin) Start() error {
	cfg := p.m.cfgSnapshot().Workload
	p.m.wl.Runner.Start()
	p.set("running", cfg.Kind)
	p.m.logf("workload: %s engine ticking", cfg.Kind)
	return nil
}

func (p *workloadPlugin) Stop() error {
	p.m.wl.Close()
	p.set("stopped", "")
	return nil
}

// gatewayPlugin serves the light-client sampling API off the node's
// GetPeer, registered on the collector so its counters flow through the
// same pipeline as the node's.
type gatewayPlugin struct {
	statusHolder
	m   *Manager
	gw  *gateway.Gateway
	reg bool // the collector has no Unregister; register once across restarts
}

func (p *gatewayPlugin) Name() string { return "gateway" }

func (p *gatewayPlugin) Start() error {
	cfg := p.m.gatewayConfig()
	gw, err := gateway.New(p.m.cfgSnapshot().Gateway.Addr, p.m.node, cfg)
	if err != nil {
		p.set("failed", err.Error())
		return err
	}
	gw.SetHealth(func() any { return p.m.StatusReport() })
	p.gw = gw
	if !p.reg {
		p.m.coll.RegisterFunc("gateway", gw.Snapshot)
		p.reg = true
	}
	p.set("running", gw.Addr())
	p.m.logf("gateway on http://%s (GET /v1/sample?n=K, /healthz)", gw.Addr())
	return nil
}

func (p *gatewayPlugin) Stop() error {
	if p.gw == nil {
		return nil
	}
	err := p.gw.Close()
	p.set("stopped", "")
	return err
}
