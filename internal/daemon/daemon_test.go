package daemon

import (
	"encoding/json"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"syscall"
	"testing"
	"time"

	"peersampling/internal/config"
	"peersampling/internal/fleet"
	"peersampling/internal/transport"
)

// testConfig is a loopback daemon config with every plugin on an
// ephemeral port and a fast enough period for tests.
func testConfig(t *testing.T) config.Config {
	cfg := config.Default()
	cfg.Node.Period = 50 * time.Millisecond
	cfg.Node.ViewSize = 8
	cfg.Transport.Backend = "tcp"
	cfg.Metrics.ReportInterval = time.Hour // tests trigger nothing periodic
	cfg.Control.Addr = "127.0.0.1:0"
	cfg.Control.ReadyFile = filepath.Join(t.TempDir(), "ready.json")
	cfg.Gateway.Addr = "127.0.0.1:0"
	cfg.Gateway.Refresh = 20 * time.Millisecond
	cfg.Gateway.RateRPS = 1000
	cfg.Gateway.Burst = 1000
	return cfg
}

func startManager(t *testing.T, cfg config.Config) *Manager {
	t.Helper()
	m, err := New(cfg, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		_ = m.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = m.Close() })
	return m
}

// pluginAddr digs a running plugin's bound address out of the report.
func pluginAddr(t *testing.T, m *Manager, name string) string {
	t.Helper()
	st, ok := m.StatusReport().Plugins[name]
	if !ok || st.State != "running" {
		t.Fatalf("plugin %s not running: %+v", name, m.StatusReport())
	}
	return st.Detail
}

// TestDaemonBootsEverything boots two daemons from configs alone,
// bootstraps one off the other, and checks the whole surface: ready
// file, aggregated /healthz on the control port, peer samples from the
// gateway.
func TestDaemonBootsEverything(t *testing.T) {
	first := startManager(t, testConfig(t))

	cfg2 := testConfig(t)
	cfg2.Node.Contacts = []string{first.Addr()}
	second := startManager(t, cfg2)

	// Ready file carries the agent identity.
	info, err := fleet.ReadReady(second.Config().Control.ReadyFile)
	if err != nil {
		t.Fatal(err)
	}
	if info.Addr != second.Addr() || info.ControlAddr == "" {
		t.Fatalf("ready info = %+v", info)
	}

	// The control agent's /healthz embeds the aggregated plugin report.
	var health struct {
		fleet.AgentInfo
		Daemon Report `json:"daemon"`
	}
	resp, err := http.Get("http://" + info.ControlAddr + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Daemon.State != "running" {
		t.Fatalf("daemon state = %q", health.Daemon.State)
	}
	for _, name := range []string{"reporter", "control-agent", "gateway"} {
		if st := health.Daemon.Plugins[name]; st.State != "running" {
			t.Errorf("plugin %s = %+v", name, st)
		}
	}

	// The gateway serves a peer sample once gossip has run a few cycles.
	gwAddr := pluginAddr(t, second, "gateway")
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := http.Get("http://" + gwAddr + "/v1/sample")
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Peers []string `json:"peers"`
		}
		err = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && err == nil &&
			len(body.Peers) == 1 && body.Peers[0] == first.Addr() {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("gateway never served a sample: status=%d peers=%v", resp.StatusCode, body.Peers)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestSIGHUPReloadsTransportLimitsLive drives the real signal path: a
// daemon under Run, a rewritten config file with a limits-only change,
// SIGHUP, and the new connection cap observable on the live listener —
// without any restart.
func TestSIGHUPReloadsTransportLimitsLive(t *testing.T) {
	cfg := testConfig(t)
	cfgPath := filepath.Join(t.TempDir(), "psnode.json")
	if err := config.WriteFile(cfgPath, cfg); err != nil {
		t.Fatal(err)
	}
	m, err := New(cfg, Options{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	runErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		runErr <- m.Run(func() (config.Config, error) { return config.LoadFile(cfgPath) })
	}()
	defer func() {
		m.RequestStop()
		wg.Wait()
		if err := <-runErr; err != nil {
			t.Errorf("Run: %v", err)
		}
	}()

	// Wait for boot (Run installs its signal handler before Start, so a
	// running daemon is guaranteed to catch the SIGHUP).
	deadline := time.Now().Add(10 * time.Second)
	for m.StatusReport().State != "running" {
		if time.Now().After(deadline) {
			t.Fatal("daemon never reached running state")
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Rewrite the file with a limits-only change and deliver SIGHUP.
	reloaded := cfg
	reloaded.Transport.MaxConns = 1
	reloaded.Transport.KeepAlive = 30 * time.Second
	if err := config.WriteFile(cfgPath, reloaded); err != nil {
		t.Fatal(err)
	}
	if err := syscall.Kill(os.Getpid(), syscall.SIGHUP); err != nil {
		t.Fatal(err)
	}

	// The running config converges to the merged value...
	for m.Config().Transport.MaxConns != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("config never picked up the reload: %+v", m.Config().Transport)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// ...and the restart-required fields stayed as booted.
	if got := m.Config().Node.Listen; got != cfg.Node.Listen {
		t.Errorf("listen changed on hot reload: %q", got)
	}

	// The cap is live on the listener: hold one connection, and the next
	// one must be rejected (closed and counted).
	holder, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer holder.Close()
	over, err := net.Dial("tcp", m.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer over.Close()
	for {
		stats, ok := m.Node().TransportStats()
		if ok && stats.AcceptRejects >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("lowered MaxConns never rejected a connection")
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestReloadClassification checks restart-only changes apply nothing and
// hot changes reach the pacers and the gateway.
func TestReloadClassification(t *testing.T) {
	cfg := testConfig(t)
	m := startManager(t, cfg)

	// Restart-only change: reported, not applied.
	next := cfg
	next.Transport.Backend = "udp"
	diff, err := m.Reload(next)
	if err != nil {
		t.Fatal(err)
	}
	if len(diff.Hot) != 0 || len(diff.Restart) != 1 || diff.Restart[0] != "transport.backend" {
		t.Fatalf("diff = %+v", diff)
	}
	if m.Config().Transport.Backend != cfg.Transport.Backend {
		t.Error("restart-required field was applied")
	}

	// Hot change: report interval lands on the reporter's pacer.
	next = cfg
	next.Metrics.ReportInterval = 123 * time.Second
	if _, err := m.Reload(next); err != nil {
		t.Fatal(err)
	}
	for _, p := range m.pluginsSnapshot() {
		if rp, ok := p.(*reporterPlugin); ok {
			if got := rp.pace.Interval(); got != 123*time.Second {
				t.Errorf("reporter interval = %v", got)
			}
		}
	}

	// Identical reload is a clean no-op.
	if diff, err := m.Reload(next); err != nil || !diff.Empty() {
		t.Errorf("repeat reload: diff=%+v err=%v", diff, err)
	}

	// Invalid config is rejected outright.
	bad := cfg
	bad.Node.ViewSize = 0
	if _, err := m.Reload(bad); err == nil || !strings.Contains(err.Error(), "node.view_size") {
		t.Errorf("invalid reload error = %v", err)
	}
}

// TestStopRequestEndsRun checks the control agent's stop path unblocks
// Run and Close-s cleanly.
func TestStopRequestEndsRun(t *testing.T) {
	cfg := testConfig(t)
	cfg.Control.ReadyFile = ""
	m, err := New(cfg, Options{})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- m.Run(nil) }()

	// Wait for the agent to come up, then stop through its HTTP surface.
	deadline := time.Now().Add(10 * time.Second)
	for {
		if st := m.StatusReport().Plugins["control-agent"]; st.State == "running" {
			resp, err := http.Post("http://"+st.Detail+"/stop", "application/json", nil)
			if err == nil {
				resp.Body.Close()
				break
			}
		}
		if time.Now().After(deadline) {
			t.Fatal("control agent never came up")
		}
		time.Sleep(10 * time.Millisecond)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("Run: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("Run did not exit on stop request")
	}
	if m.StatusReport().State != "stopped" {
		t.Errorf("state = %q", m.StatusReport().State)
	}
}

// StatusReport surfaces the process-global fault-rule count, so the
// /healthz payload tells an operator when a chaos plan is shaping this
// node's links.
func TestStatusReportCountsFaultRules(t *testing.T) {
	m := startManager(t, testConfig(t))
	if got := m.StatusReport().FaultRules; got != 0 {
		t.Fatalf("fault_rules = %d before any injection", got)
	}
	transport.Faults().SetRules([]transport.FaultRule{{From: "*", To: "*", Loss: 0.5}})
	defer transport.Faults().SetRules(nil)
	if got := m.StatusReport().FaultRules; got != 1 {
		t.Fatalf("fault_rules = %d with one rule installed", got)
	}
	transport.Faults().SetRules(nil)
	if got := m.StatusReport().FaultRules; got != 0 {
		t.Fatalf("fault_rules = %d after heal", got)
	}
}
