// Package daemon is the runtime behind cmd/psnode: a Manager that owns
// one sampling node and wires the service surface around it as discrete
// plugins — the Prometheus metrics server, the periodic CSV/JSONL
// dumper, the periodic report logger, the fleet control agent, and the
// light-client sampling gateway. Each plugin has a Start/Stop lifecycle
// and a Status, and the manager aggregates every status into one report
// served on the control agent's and gateway's /healthz endpoints.
//
// The manager is built from an internal/config Config and supports live
// reload: Reload diffs the running config against a freshly loaded one
// (config.Diff), applies the hot-classified fields in place — transport
// hardening limits onto the live listener, report pacing onto the
// dumper and reporter, tuning onto the gateway, added contacts into the
// view — and reports the restart-required remainder for the operator to
// act on. cmd/psnode triggers Reload from SIGHUP.
package daemon
