package daemon

import (
	"errors"
	"fmt"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"peersampling/internal/config"
	"peersampling/internal/fleet"
	"peersampling/internal/gateway"
	"peersampling/internal/metrics"
	"peersampling/internal/runtime"
	"peersampling/internal/transport"
	"peersampling/internal/workload"
)

// Options tunes a Manager beyond its Config.
type Options struct {
	// Logf receives the daemon's operational log lines; nil discards
	// them (tests) — cmd/psnode passes log.Printf.
	Logf func(format string, args ...any)
}

// Manager owns one sampling node and the plugins around it: construct
// with New, bring everything up with Start, reconfigure live with
// Reload, and tear down with Close. The manager is the single writer of
// the daemon's lifecycle; Status, StatusReport and StopRequests are safe
// to call concurrently with it.
type Manager struct {
	node *runtime.Node
	coll *metrics.Collector
	logf func(format string, args ...any)
	// src is what the collector and control agent observe: the node
	// itself, or a workload.NodeSource pairing it with its engine.
	src metrics.Source
	// wl is the attached workload engine's lifecycle; nil without one.
	wl *workload.Attachment

	mu      sync.Mutex
	cfg     config.Config
	plugins []Plugin
	started bool
	closed  bool

	stopRequests chan struct{}
	stopOnce     sync.Once
}

// New builds the node and plugin set described by cfg. Nothing listens
// yet except the gossip transport itself (the node's identity is its
// bound address, so the transport must exist to know it); Start brings
// the plugins up. cfg must already be validated — LoadFile and Parse
// guarantee that — but New re-validates as a seatbelt for hand-built
// configs.
func New(cfg config.Config, opts Options) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	proto, err := cfg.Protocol()
	if err != nil {
		return nil, err
	}
	factory, err := transport.NewFactoryLimits(cfg.Transport.Backend, cfg.Node.Listen, cfg.Transport.Limits())
	if err != nil {
		return nil, err
	}
	m := &Manager{
		coll:         metrics.New(),
		logf:         logf,
		cfg:          cfg,
		stopRequests: make(chan struct{}),
	}
	node, err := runtime.New(runtime.Config{
		Protocol: proto,
		ViewSize: cfg.Node.ViewSize,
		Period:   cfg.Node.Period,
		Diverse:  cfg.Node.Diverse,
		OnError:  func(err error) { logf("exchange failed: %v", err) },
	}, factory)
	if err != nil {
		return nil, err
	}
	m.node = node
	m.src = node
	if cfg.WorkloadEnabled() {
		engine, err := workload.New(cfg.Workload)
		if err != nil {
			_ = node.Close()
			return nil, err
		}
		period := cfg.Workload.Period
		if period <= 0 {
			period = cfg.Node.Period
		}
		att, err := workload.Attach(node, engine, period)
		if err != nil {
			_ = node.Close()
			return nil, err
		}
		m.wl = att
		m.src = workload.NewNodeSource(node, engine)
	}
	m.coll.Register("", m.src) // registered under the node's own address

	if m.wl != nil {
		m.plugins = append(m.plugins, &workloadPlugin{m: m})
	}
	if cfg.Metrics.Addr != "" {
		m.plugins = append(m.plugins, &metricsServerPlugin{m: m, addr: cfg.Metrics.Addr})
	}
	if cfg.Metrics.Dump != "" {
		m.plugins = append(m.plugins, &dumperPlugin{m: m, path: cfg.Metrics.Dump})
	}
	m.plugins = append(m.plugins, &reporterPlugin{m: m})
	if cfg.Control.Addr != "" {
		m.plugins = append(m.plugins, &agentPlugin{m: m, addr: cfg.Control.Addr})
	}
	if cfg.GatewayEnabled() {
		m.plugins = append(m.plugins, &gatewayPlugin{m: m})
	}
	return m, nil
}

// Node exposes the managed sampling node (the service API: Init,
// GetPeer, View).
func (m *Manager) Node() *runtime.Node { return m.node }

// Addr returns the node's gossip address.
func (m *Manager) Addr() string { return m.node.Addr() }

// Collector exposes the manager's metrics collector, for embedding the
// daemon in a larger observability setup.
func (m *Manager) Collector() *metrics.Collector { return m.coll }

// Start bootstraps the node from the configured contacts, starts
// gossiping, brings every plugin up in order, and finally writes the
// ready file (when configured) — its existence promises every listener
// is bound. A plugin failing to start stops the already-started ones
// and returns the failure.
func (m *Manager) Start() error {
	m.mu.Lock()
	if m.started || m.closed {
		m.mu.Unlock()
		return errors.New("daemon: already started")
	}
	m.started = true
	cfg := m.cfg
	plugins := m.plugins
	m.mu.Unlock()

	if len(cfg.Node.Contacts) > 0 {
		if err := m.node.Init(cfg.Node.Contacts); err != nil {
			return err
		}
	}
	if err := m.node.Start(); err != nil {
		return err
	}
	m.logf("listening on %s (%s), protocol %s, c=%d, period %v",
		m.node.Addr(), cfg.Transport.Backend, cfg.Node.Protocol, cfg.Node.ViewSize, cfg.Node.Period)

	for i, p := range plugins {
		if err := p.Start(); err != nil {
			for j := i - 1; j >= 0; j-- {
				_ = plugins[j].Stop()
			}
			return fmt.Errorf("daemon: %s: %w", p.Name(), err)
		}
	}

	if cfg.Control.ReadyFile != "" {
		if err := fleet.WriteReady(cfg.Control.ReadyFile, m.readyInfo()); err != nil {
			return err
		}
	}
	return nil
}

// readyInfo assembles the ready-file payload: the agent's identity when
// the control plugin runs, a bare one otherwise, plus the gateway's
// bound address so a parent (or load harness) can find the sampling API
// without parsing logs.
func (m *Manager) readyInfo() fleet.AgentInfo {
	info := fleet.AgentInfo{
		PID:             os.Getpid(),
		Addr:            m.node.Addr(),
		StartUnixMillis: time.Now().UnixMilli(),
	}
	for _, p := range m.pluginsSnapshot() {
		switch p := p.(type) {
		case *agentPlugin:
			if p.agent != nil {
				info = p.agent.Info()
			}
		case *gatewayPlugin:
			if p.gw != nil {
				info.GatewayAddr = p.gw.Addr()
			}
		}
	}
	return info
}

// Reload diffs next against the running config and applies the hot
// fields live: transport hardening limits onto the listener, report
// pacing onto the dumper and reporter, tuning onto the gateway, and the
// new contact list into the view. Restart-classified changes are NOT
// applied — they come back in the diff for the caller to report. The
// running config becomes config.MergeHot(current, next), so a second
// identical Reload is a no-op.
func (m *Manager) Reload(next config.Config) (config.ReloadDiff, error) {
	if err := next.Validate(); err != nil {
		return config.ReloadDiff{}, err
	}
	m.mu.Lock()
	diff := config.Diff(m.cfg, next)
	if diff.Empty() {
		m.mu.Unlock()
		return diff, nil
	}
	m.cfg = config.MergeHot(m.cfg, next)
	merged := m.cfg
	plugins := m.plugins
	m.mu.Unlock()

	var errs []error
	for _, path := range diff.Hot {
		switch path {
		case "node.contacts":
			if len(merged.Node.Contacts) > 0 {
				if err := m.node.Init(merged.Node.Contacts); err != nil {
					errs = append(errs, fmt.Errorf("contacts: %w", err))
				}
			}
		case "transport.max_conns", "transport.keepalive", "transport.push_only_keepalive", "transport.first_frame_timeout":
			// One SetTransportLimits covers all four; apply on the first.
			if path == firstLimitsPath(diff.Hot) {
				if _, err := m.node.SetTransportLimits(merged.Transport.Limits()); err != nil {
					errs = append(errs, fmt.Errorf("transport limits: %w", err))
				}
			}
		case "metrics.report_interval":
			for _, p := range plugins {
				switch p := p.(type) {
				case *dumperPlugin:
					p.pace.SetInterval(merged.Metrics.ReportInterval)
				case *reporterPlugin:
					p.pace.SetInterval(merged.Metrics.ReportInterval)
				}
			}
		case "gateway.batch_size", "gateway.refresh", "gateway.rate_rps", "gateway.burst", "gateway.trust_proxy_header":
			if path == firstGatewayPath(diff.Hot) {
				for _, p := range plugins {
					if gp, ok := p.(*gatewayPlugin); ok && gp.gw != nil {
						if err := gp.gw.SetTuning(m.gatewayConfig()); err != nil {
							errs = append(errs, fmt.Errorf("gateway tuning: %w", err))
						}
					}
				}
			}
		}
		m.logf("reload: applied %s", path)
	}
	for _, path := range diff.Restart {
		m.logf("reload: %s requires a restart; keeping the running value", path)
	}
	return diff, errors.Join(errs...)
}

// firstLimitsPath returns the first transport-limits path in hot, so the
// single SetTransportLimits call is made exactly once per reload.
func firstLimitsPath(hot []string) string {
	for _, p := range hot {
		switch p {
		case "transport.max_conns", "transport.keepalive", "transport.push_only_keepalive", "transport.first_frame_timeout":
			return p
		}
	}
	return ""
}

// firstGatewayPath is firstLimitsPath for the gateway tuning fields.
func firstGatewayPath(hot []string) string {
	for _, p := range hot {
		switch p {
		case "gateway.batch_size", "gateway.refresh", "gateway.rate_rps", "gateway.burst", "gateway.trust_proxy_header":
			return p
		}
	}
	return ""
}

// Config returns the config the daemon is currently running — after
// reloads, the accumulated MergeHot result.
func (m *Manager) Config() config.Config {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.cfg
}

// cfgSnapshot, reportInterval and gatewayConfig give plugins a coherent
// read of the current config.
func (m *Manager) cfgSnapshot() config.Config { return m.Config() }

func (m *Manager) reportInterval() time.Duration { return m.Config().Metrics.ReportInterval }

func (m *Manager) gatewayConfig() gateway.Config {
	gw := m.Config().Gateway
	return gateway.Config{
		BatchSize:        gw.BatchSize,
		Refresh:          gw.Refresh,
		RateRPS:          gw.RateRPS,
		Burst:            gw.Burst,
		TrustProxyHeader: gw.TrustProxyHeader,
	}
}

func (m *Manager) pluginsSnapshot() []Plugin {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.plugins
}

// Report is the aggregated daemon status: the /healthz payload of the
// control agent and the gateway.
type Report struct {
	// State is "running" once Start succeeded, "stopped" after Close.
	State string `json:"state"`
	// Addr is the node's gossip address.
	Addr string `json:"addr"`
	// Cycles is the node's active cycle count — a cheap liveness signal.
	Cycles uint64 `json:"cycles"`
	// FaultRules counts the fault-injection rules currently installed on
	// this process's transport (see transport.Faults): non-zero means a
	// chaos plan is shaping this node's links right now.
	FaultRules int `json:"fault_rules"`
	// Plugins maps plugin name to its lifecycle status.
	Plugins map[string]Status `json:"plugins"`
}

// StatusReport aggregates every plugin's status with the node's own
// state.
func (m *Manager) StatusReport() Report {
	m.mu.Lock()
	state := "stopped"
	if m.started && !m.closed {
		state = "running"
	}
	plugins := m.plugins
	m.mu.Unlock()
	cycles, _, _, _ := m.node.Stats()
	r := Report{
		State:      state,
		Addr:       m.node.Addr(),
		Cycles:     cycles,
		FaultRules: transport.Faults().ActiveRules(),
		Plugins:    make(map[string]Status, len(plugins)),
	}
	for _, p := range plugins {
		r.Plugins[p.Name()] = p.Status()
	}
	return r
}

// Run owns the daemon's whole foreground lifecycle: Start, then block
// until SIGINT/SIGTERM or a control-agent stop request, then Close. A
// SIGHUP invokes reload — a callback returning the freshly loaded
// desired config (cmd/psnode re-reads its -config file and re-applies
// the command-line overrides) — and feeds the result to Reload; with a
// nil reload callback SIGHUP is a logged no-op.
func (m *Manager) Run(reload func() (config.Config, error)) error {
	// The handler is installed before boot so a SIGHUP delivered during a
	// slow Start (or a supervisor's eager reload) never kills the process.
	sigs := make(chan os.Signal, 2)
	signal.Notify(sigs, syscall.SIGINT, syscall.SIGTERM, syscall.SIGHUP)
	defer signal.Stop(sigs)
	if err := m.Start(); err != nil {
		_ = m.Close()
		return err
	}
	for {
		select {
		case sig := <-sigs:
			if sig == syscall.SIGHUP {
				m.reloadFrom(reload)
				continue
			}
			m.logf("shutting down (%v)", sig)
			return m.Close()
		case <-m.StopRequests():
			m.logf("shutting down (stop requested)")
			return m.Close()
		}
	}
}

// reloadFrom runs one SIGHUP-triggered reload round. Errors keep the
// running config: a daemon must never die because an operator wrote a
// broken file next to it.
func (m *Manager) reloadFrom(reload func() (config.Config, error)) {
	if reload == nil {
		m.logf("reload: started without a config file; ignoring SIGHUP")
		return
	}
	next, err := reload()
	if err != nil {
		m.logf("reload: %v; keeping the running config", err)
		return
	}
	diff, err := m.Reload(next)
	if err != nil {
		m.logf("reload: %v", err)
		return
	}
	if diff.Empty() {
		m.logf("reload: no changes")
	}
}

// RequestStop asks the daemon's owner to shut down: it unblocks
// StopRequests once, idempotently. The control agent's POST /stop lands
// here.
func (m *Manager) RequestStop() {
	m.stopOnce.Do(func() { close(m.stopRequests) })
}

// StopRequests is closed when something inside the daemon (the control
// agent) asked for shutdown; the owner should then call Close.
func (m *Manager) StopRequests() <-chan struct{} { return m.stopRequests }

// Close stops the plugins in reverse start order, then the node. Close
// is idempotent; the first error wins but every component is stopped.
func (m *Manager) Close() error {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return nil
	}
	m.closed = true
	plugins := m.plugins
	m.mu.Unlock()

	var first error
	for i := len(plugins) - 1; i >= 0; i-- {
		if err := plugins[i].Stop(); err != nil && first == nil {
			first = fmt.Errorf("daemon: %s: %w", plugins[i].Name(), err)
		}
	}
	if err := m.node.Close(); err != nil && first == nil {
		first = err
	}
	return first
}
