package chaos

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"peersampling/internal/core"
	"peersampling/internal/fleet"
	"peersampling/internal/metrics"
	"peersampling/internal/transport"
)

// newTestCluster boots a small inproc cluster over real loopback TCP.
// Fault-injecting tests share the process-global fault set, so none of
// these tests run in parallel; cluster Close heals the set.
func newTestCluster(t *testing.T, n int) (fleet.Cluster, []fleet.Member) {
	t.Helper()
	c, err := fleet.New(fleet.DriverInproc, fleet.Config{
		Protocol: core.Newscast,
		ViewSize: 5,
		Period:   15 * time.Millisecond,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	members := make([]fleet.Member, 0, n)
	for i := 0; i < n; i++ {
		var contacts []string
		if i > 0 {
			contacts = []string{members[0].Addr()}
		}
		m, err := c.Spawn(contacts)
		if err != nil {
			t.Fatalf("spawn %d: %v", i, err)
		}
		members = append(members, m)
	}
	return c, members
}

func mustParse(t *testing.T, raw string) *Plan {
	t.Helper()
	p, err := Parse([]byte(raw), false)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestExecutorKillAndRespawn(t *testing.T) {
	c, members := newTestCluster(t, 4)
	plan := mustParse(t, `
version: 1
name: wave
description: one kill wave with respawn
events:
  - action: kill
    fraction: 0.5
    respawn_after: 1ms
`)
	ex := New(plan, c, members, Options{Seed: 11})
	if ex.Steps() != 2 || ex.Remaining() != 2 {
		t.Fatalf("compiled %d steps, %d remaining", ex.Steps(), ex.Remaining())
	}

	ap, err := ex.Step()
	if err != nil {
		t.Fatal(err)
	}
	if ap.Action != ActionKill || len(ap.Killed) != 2 {
		t.Fatalf("kill step = %+v", ap)
	}
	for _, v := range ap.Killed {
		if v.Alive() {
			t.Errorf("victim %s survived", v.Name())
		}
	}
	if got := len(ex.AliveMembers()); got != 2 {
		t.Fatalf("alive after kill = %d", got)
	}
	if ex.KilledTotal() != 2 {
		t.Errorf("KilledTotal = %d", ex.KilledTotal())
	}

	ap, err = ex.Step()
	if err != nil {
		t.Fatal(err)
	}
	if ap.Action != ActionRespawn || len(ap.Spawned) != 2 {
		t.Fatalf("respawn step = %+v", ap)
	}
	if got := len(ex.AliveMembers()); got != 4 {
		t.Errorf("alive after respawn = %d", got)
	}
	if got := len(ex.Members()); got != 6 {
		t.Errorf("total members tracked = %d", got)
	}
	if ex.Respawned() != 2 {
		t.Errorf("Respawned = %d", ex.Respawned())
	}

	if _, err := ex.Step(); !errors.Is(err, ErrDone) {
		t.Errorf("step past the end = %v", err)
	}
	fired := ex.Fired()
	if len(fired) != 2 || fired[0].Action != ActionKill || fired[1].Action != ActionRespawn {
		t.Errorf("fired = %+v", fired)
	}
	if fired[0].Seq != 0 || fired[1].Seq != 1 {
		t.Errorf("fired seqs = %+v", fired)
	}
}

func TestExecutorKillByName(t *testing.T) {
	c, members := newTestCluster(t, 3)
	victim := members[1].Name()
	plan := &Plan{Version: 1, Name: "named", Events: []Event{
		{Action: ActionKill, Members: []string{victim}},
	}}
	if err := plan.Validate(); err != nil {
		t.Fatal(err)
	}
	ex := New(plan, c, members, Options{Seed: 1})
	ap, err := ex.Step()
	if err != nil {
		t.Fatal(err)
	}
	if len(ap.Killed) != 1 || ap.Killed[0].Name() != victim {
		t.Fatalf("killed = %+v", ap.Killed)
	}

	// A second executor naming the now-dead member must fail cleanly.
	ex2 := New(plan, c, ex.Members(), Options{Seed: 1})
	if _, err := ex2.Step(); err == nil || !strings.Contains(err.Error(), victim) {
		t.Errorf("kill of dead member = %v", err)
	}
}

func TestExecutorPartitionExpireAndClose(t *testing.T) {
	c, members := newTestCluster(t, 4)
	plan := mustParse(t, `
version: 1
name: split
description: random island cut off, expiring
events:
  - action: partition
    fraction: 0.5
    for: 100ms
`)
	ex := New(plan, c, members, Options{Seed: 3})
	if ex.Steps() != 2 {
		t.Fatalf("compiled %d steps", ex.Steps())
	}
	ap, err := ex.Step()
	if err != nil {
		t.Fatal(err)
	}
	// 2-member island x 2 outside, both directions.
	if ap.RulesTouched != 8 || ap.ActiveRules != 8 {
		t.Fatalf("partition step = %+v", ap)
	}
	if got := transport.Faults().ActiveRules(); got != 8 {
		t.Fatalf("global fault set has %d rules", got)
	}

	ap, err = ex.Step()
	if err != nil {
		t.Fatal(err)
	}
	if ap.Action != ActionExpire || ap.ActiveRules != 0 {
		t.Fatalf("expire step = %+v", ap)
	}
	if got := transport.Faults().ActiveRules(); got != 0 {
		t.Errorf("global fault set kept %d rules after expiry", got)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestExecutorCloseHealsMidPlan(t *testing.T) {
	c, members := newTestCluster(t, 2)
	plan := mustParse(t, `
version: 1
name: cutcut
description: directed cut that never expires on its own
events:
  - action: partition
    from: [node00]
    to: [node01]
`)
	ex := New(plan, c, members, Options{Seed: 3})
	ap, err := ex.Step()
	if err != nil {
		t.Fatal(err)
	}
	if ap.RulesTouched != 1 {
		t.Fatalf("directed cut = %+v", ap)
	}
	rules := transport.Faults().Rules()
	if len(rules) != 1 || !rules[0].Cut ||
		rules[0].From != members[0].Addr() || rules[0].To != members[1].Addr() {
		t.Fatalf("installed rules = %+v", rules)
	}
	if err := ex.Close(); err != nil {
		t.Fatal(err)
	}
	if got := transport.Faults().ActiveRules(); got != 0 {
		t.Errorf("Close left %d rules", got)
	}
	if ex.ActiveRules() != 0 {
		t.Errorf("executor still reports %d active rules", ex.ActiveRules())
	}
}

func TestExecutorLatencyAndLossRules(t *testing.T) {
	c, members := newTestCluster(t, 2)
	plan := mustParse(t, `
version: 1
name: degrade
description: global latency plus directed loss
events:
  - action: latency
    latency: 3ms
  - action: loss
    loss: 0.25
    from: [node01]
    to: [node00]
  - at: 1ms
    action: heal
`)
	ex := New(plan, c, members, Options{Seed: 3})
	defer ex.Close()
	if _, err := ex.Step(); err != nil {
		t.Fatal(err)
	}
	if _, err := ex.Step(); err != nil {
		t.Fatal(err)
	}
	var sawLatency, sawLoss bool
	for _, r := range transport.Faults().Rules() {
		if r.From == "*" && r.To == "*" && r.Latency == 3*time.Millisecond {
			sawLatency = true
		}
		if r.From == members[1].Addr() && r.To == members[0].Addr() && r.Loss == 0.25 {
			sawLoss = true
		}
	}
	if !sawLatency || !sawLoss {
		t.Fatalf("rules = %+v", transport.Faults().Rules())
	}
	ap, err := ex.Step()
	if err != nil {
		t.Fatal(err)
	}
	if ap.Action != ActionHeal || ap.RulesTouched != 2 || ap.ActiveRules != 0 {
		t.Fatalf("heal step = %+v", ap)
	}
}

func TestExecutorRunHonorsClockAndContext(t *testing.T) {
	c, members := newTestCluster(t, 2)
	plan := mustParse(t, `
version: 1
name: timed
description: latency pulse then a far-future event
events:
  - action: latency
    latency: 1ms
    for: 20ms
  - at: 10s
    action: heal
`)
	ex := New(plan, c, members, Options{Seed: 3})
	defer ex.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	err := ex.Run(ctx)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Run = %v", err)
	}
	// The pulse and its expiry fired; the far-future heal did not.
	if got := ex.Remaining(); got != 1 {
		t.Errorf("remaining = %d", got)
	}
	if got := transport.Faults().ActiveRules(); got != 0 {
		t.Errorf("pulse did not expire: %d rules", got)
	}
}

func TestExecutorFloodCountsDials(t *testing.T) {
	c, members := newTestCluster(t, 2)
	plan := mustParse(t, `
version: 1
name: spray
description: short flood against the first member
events:
  - action: flood
    flooders: 1
    for: 100ms
`)
	ex := New(plan, c, members, Options{Seed: 3})
	ap, err := ex.Step()
	if err != nil {
		t.Fatal(err)
	}
	if ap.FloodDials == 0 || ex.FloodDials() != ap.FloodDials {
		t.Errorf("flood dials = %+v / %d", ap, ex.FloodDials())
	}
}

func TestExecutorExportsSnapshots(t *testing.T) {
	c, members := newTestCluster(t, 4)
	coll := metrics.New()
	plan := mustParse(t, `
version: 1
name: observed
description: kill wave under a collector
events:
  - action: kill
    fraction: 0.25
`)
	ex := New(plan, c, members, Options{Seed: 5, Collector: coll, Source: "chaos"})
	if _, err := ex.Step(); err != nil {
		t.Fatal(err)
	}
	var snap metrics.NodeSnapshot
	found := false
	for _, s := range coll.Snapshot() {
		if s.Node == "chaos" {
			snap, found = s, true
		}
	}
	if !found {
		t.Fatal("executor not registered on the collector")
	}
	if snap.Chaos == nil || snap.Chaos.Plan != "observed" || snap.Chaos.Events != 1 ||
		snap.Chaos.Killed != 1 || len(snap.Chaos.Fired) != 1 {
		t.Fatalf("chaos snapshot = %+v", snap.Chaos)
	}
	if snap.Cycles != 1 || snap.Addr != "plan:observed" {
		t.Errorf("snapshot header = %+v", snap)
	}
	// The long-form rows carry the chaos_event series.
	var sawEvent, sawGauge bool
	for _, row := range snap.Rows() {
		switch row.Metric {
		case "chaos_event":
			sawEvent = true
		case "chaos_active_rules":
			sawGauge = true
		}
	}
	if !sawEvent || !sawGauge {
		t.Errorf("rows missing chaos series: %+v", snap.Rows())
	}
}
