// Package chaos turns fault injection into data: named, versioned plan
// documents describe a timeline of events — kill waves (by fraction or by
// member name, with optional respawn), asymmetric partitions, per-link
// latency and loss, connection floods — and an Executor replays a plan
// against any fleet.Cluster. The paper's failure experiments (catastrophic
// loss, churn, self-healing) thereby run from declarative artifacts that
// ship in-repo instead of ad-hoc kill code scattered through scenarios.
//
// Plans load through internal/config's strict YAML-subset/JSON machinery:
// unknown keys, malformed values and contradictory events are rejected
// with dotted field paths before anything touches the fleet. Rule events
// compile to transport.FaultRule tables pushed through Cluster.SetFaultRules,
// so the same plan disturbs in-process goroutine members and forked psnode
// processes identically. The Executor can be stepped (scenario-paced, each
// Step applies the next timeline entry immediately) or Run (real-clock,
// honouring the events' time offsets), chooses victims with a seeded RNG,
// and exports what it did as chaos_event rows and a
// peersampling_chaos_active gauge on the shared metrics schema, so fault
// timelines plot against convergence traces.
package chaos
