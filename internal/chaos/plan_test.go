package chaos

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestParseValidPlan(t *testing.T) {
	raw := `
version: 1
name: full-timeline
description: one of everything
events:
  - at: 0s
    action: kill
    fraction: 0.25
    respawn_after: 50ms
  - at: 100ms
    action: kill
    members: [victim, node03]
  - at: 200ms
    action: partition
    fraction: 0.5
    for: 300ms
  - at: 250ms
    action: partition
    from: [node00]
    to: [node01, node02]
  - at: 300ms
    action: latency
    latency: 2ms
    for: 1s
  - at: 400ms
    action: loss
    loss: 0.5
    from: [node00]
  - at: 500ms
    action: heal
  - at: 600ms
    action: flood
    members: [victim]
    for: 1s
`
	p, err := Parse([]byte(raw), false)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "full-timeline" || p.Version != 1 || len(p.Events) != 8 {
		t.Fatalf("plan = %+v", p)
	}
	if p.Events[0].Fraction != 0.25 || p.Events[0].RespawnAfter != 50*time.Millisecond {
		t.Errorf("kill event = %+v", p.Events[0])
	}
	if got := p.Events[1].Members; len(got) != 2 || got[0] != "victim" {
		t.Errorf("named kill = %+v", p.Events[1])
	}
	// Latency and loss default unset sides to the wildcard.
	if lat := p.Events[4]; lat.From[0] != "*" || lat.To[0] != "*" || lat.Latency != 2*time.Millisecond {
		t.Errorf("latency event = %+v", lat)
	}
	if loss := p.Events[5]; loss.From[0] != "node00" || loss.To[0] != "*" {
		t.Errorf("loss event = %+v", loss)
	}
	// Flood defaults flooders to 3.
	if fl := p.Events[7]; fl.Flooders != 3 {
		t.Errorf("flood event = %+v", fl)
	}

	if waves := p.KillWaves(); len(waves) != 2 || waves[0].At != 0 {
		t.Errorf("KillWaves = %+v", waves)
	}
	if fl, ok := p.FirstFlood(); !ok || fl.At != 600*time.Millisecond {
		t.Errorf("FirstFlood = %+v, %v", fl, ok)
	}
}

func TestParseRejects(t *testing.T) {
	cases := []struct {
		name string
		raw  string
		want string // error substring
	}{
		{"bad version", "version: 2\nname: x1\nevents:\n  - action: heal\n", "version"},
		{"bad name", "version: 1\nname: Bad_Name\nevents:\n  - action: heal\n", "plan name"},
		{"no events", "version: 1\nname: x1\n", "no events"},
		{"unknown key", "version: 1\nname: x1\nevents:\n  - action: heal\n    bogus: 1\n", "bogus"},
		{"unknown action", "version: 1\nname: x1\nevents:\n  - action: explode\n", "unknown"},
		{"derived action", "version: 1\nname: x1\nevents:\n  - action: respawn\n", "derived"},
		{"negative at", "version: 1\nname: x1\nevents:\n  - at: -1s\n    action: heal\n", "negative"},
		{"kill both selectors", "version: 1\nname: x1\nevents:\n  - action: kill\n    fraction: 0.5\n    members: [a]\n", "exactly one"},
		{"kill neither selector", "version: 1\nname: x1\nevents:\n  - action: kill\n", "exactly one"},
		{"kill fraction range", "version: 1\nname: x1\nevents:\n  - action: kill\n    fraction: 1.5\n", "fraction"},
		{"kill with loss", "version: 1\nname: x1\nevents:\n  - action: kill\n    fraction: 0.5\n    loss: 0.1\n", "not meaningful"},
		{"partition both selectors", "version: 1\nname: x1\nevents:\n  - action: partition\n    fraction: 0.5\n    from: [a]\n    to: [b]\n", "either fraction"},
		{"partition whole fleet", "version: 1\nname: x1\nevents:\n  - action: partition\n    fraction: 1.0\n", "fraction"},
		{"partition one side", "version: 1\nname: x1\nevents:\n  - action: partition\n    from: [a]\n", "either fraction"},
		{"latency zero", "version: 1\nname: x1\nevents:\n  - action: latency\n    latency: 0s\n", "latency"},
		{"loss range", "version: 1\nname: x1\nevents:\n  - action: loss\n    loss: 1.5\n", "loss"},
		{"heal with extras", "version: 1\nname: x1\nevents:\n  - action: heal\n    fraction: 0.5\n", "not meaningful"},
		{"flood without for", "version: 1\nname: x1\nevents:\n  - action: flood\n", "positive for"},
		{"flood with latency", "version: 1\nname: x1\nevents:\n  - action: flood\n    for: 1s\n    latency: 1ms\n", "not meaningful"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse([]byte(tc.raw), false)
			if err == nil {
				t.Fatalf("parsed successfully:\n%s", tc.raw)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// Event validation errors carry the events[i] path so a multi-event plan
// pinpoints the bad entry.
func TestValidateReportsEventPath(t *testing.T) {
	raw := "version: 1\nname: x1\nevents:\n  - action: heal\n  - action: kill\n"
	_, err := Parse([]byte(raw), false)
	if err == nil || !strings.Contains(err.Error(), "events[1]") {
		t.Errorf("error %v does not carry the event path", err)
	}
}

// Every plan shipped in-repo must load, and each one's document name
// must match its file name.
func TestEmbeddedPlansLoad(t *testing.T) {
	names := Names()
	if len(names) < 4 {
		t.Fatalf("embedded plans = %v", names)
	}
	for _, want := range []string{"churn-waves", "gateway-kill", "hostile-flood", "partition-heal"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("plan %s not embedded (have %v)", want, names)
		}
	}
	for _, n := range names {
		p, err := Load(n)
		if err != nil {
			t.Errorf("Load(%s): %v", n, err)
			continue
		}
		if p.Name != n {
			t.Errorf("plan file %s names itself %s", n, p.Name)
		}
	}
	// The .yaml suffix is accepted; unknown names name the alternatives.
	if _, err := Load("churn-waves.yaml"); err != nil {
		t.Errorf("Load with suffix: %v", err)
	}
	if _, err := Load("no-such-plan"); err == nil || !strings.Contains(err.Error(), "churn-waves") {
		t.Errorf("unknown plan error does not list plans: %v", err)
	}
}

func TestLoadFile(t *testing.T) {
	dir := t.TempDir()
	jsonPath := filepath.Join(dir, "plan.json")
	doc := `{"version": 1, "name": "from-json", "events": [{"action": "heal"}]}`
	if err := os.WriteFile(jsonPath, []byte(doc), 0o644); err != nil {
		t.Fatal(err)
	}
	p, err := LoadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "from-json" {
		t.Errorf("plan = %+v", p)
	}
	if _, err := LoadFile(filepath.Join(dir, "missing.yaml")); err == nil {
		t.Error("missing file loaded")
	}
}
