package chaos

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// The connection-flood + slowloris attack a flood event runs, lifted
// from the hostile-network experiment so every scenario shares one
// attacker implementation. Each flooder goroutine works one target
// address with two arms:
//
//   - slowloris: a small batch of connections held open without ever
//     sending a byte — each admitted one occupies a serve slot until the
//     listener's first-frame window evicts it;
//   - flood: dial as fast as possible, recycling the attacker's own fds
//     so the flood is bounded by the victim, not by the attacker.

const (
	lorisConns   = 8  // silent connections each flooder holds for the whole attack
	floodHeld    = 64 // flood-arm fds held before recycling
	floodRecycle = 32 // fds closed per recycle
)

// runFlood attacks targets with the given number of flooder goroutines
// for the given duration, blocking until they all stop. Flooders are
// dealt round-robin over the targets; dials counts every connection
// attempt and may be read concurrently.
func runFlood(targets []string, flooders int, duration time.Duration, dials *atomic.Uint64) {
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for f := 0; f < flooders; f++ {
		addr := targets[f%len(targets)]
		wg.Add(1)
		go func() {
			defer wg.Done()
			floodOne(addr, stop, dials)
		}()
	}
	time.Sleep(duration)
	close(stop)
	wg.Wait()
}

// floodOne is one flooder goroutine's attack loop against one address.
func floodOne(addr string, stop <-chan struct{}, dials *atomic.Uint64) {
	// Slowloris arm: a batch of connections held silent until the attack
	// ends.
	loris := make([]net.Conn, 0, lorisConns)
	defer func() {
		for _, c := range loris {
			c.Close()
		}
	}()
	for len(loris) < cap(loris) {
		c, err := net.DialTimeout("tcp", addr, time.Second)
		dials.Add(1)
		if err != nil {
			break
		}
		loris = append(loris, c)
	}
	// Flood arm: dial as fast as possible, recycling our own fds.
	held := make([]net.Conn, 0, floodHeld)
	defer func() {
		for _, c := range held {
			c.Close()
		}
	}()
	for {
		select {
		case <-stop:
			return
		default:
		}
		c, err := net.DialTimeout("tcp", addr, time.Second)
		dials.Add(1)
		if err != nil {
			continue // kernel backlog full: the flood saturating itself
		}
		held = append(held, c)
		if len(held) == cap(held) {
			// The server has long since closed (rejected or evicted) most of
			// these anyway.
			for _, old := range held[:floodRecycle] {
				old.Close()
			}
			held = append(held[:0], held[floodRecycle:]...)
		}
	}
}
