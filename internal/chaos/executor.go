package chaos

import (
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"peersampling/internal/fleet"
	"peersampling/internal/metrics"
	"peersampling/internal/transport"
)

// ErrDone reports a Step call on a plan whose timeline is exhausted.
var ErrDone = errors.New("chaos: plan exhausted")

// Options parameterize an Executor.
type Options struct {
	// Seed drives victim selection and island membership; the same seed
	// replays the same choices against the same member list.
	Seed uint64
	// MaxContacts caps how many bootstrap addresses a respawned member is
	// handed (default 3) — rejoining through a few contacts, not a full
	// membership list, is the service model under test.
	MaxContacts int
	// Collector, when non-nil, gets the executor registered as a snapshot
	// source named Source, exporting chaos_event rows and the
	// peersampling_chaos_active gauge alongside the fleet's series.
	Collector *metrics.Collector
	// Source is the collector registration name; empty selects "chaos".
	Source string
	// Logf, when non-nil, receives one line per applied step.
	Logf func(format string, args ...any)
}

// Applied reports what one Step did to the fleet.
type Applied struct {
	// Seq is the step's position in the compiled timeline (0-based).
	Seq int
	// At is the step's plan-time offset; When is the wall-clock instant it
	// was applied.
	At     time.Duration
	Action string
	When   time.Time
	// Killed and Spawned are the members a kill/respawn step removed and
	// added. KilledFailures sums the victims' failure counters just before
	// they died — the baseline a churn scenario subtracts so failures
	// caused by talking TO the dead are measured, not failures the dead
	// had already accrued.
	Killed         []fleet.Member
	KilledFailures uint64
	Spawned        []fleet.Member
	// FloodDials counts connections a flood step threw.
	FloodDials uint64
	// RulesTouched counts fault rules this step installed or removed;
	// ActiveRules is the table size after the step.
	RulesTouched int
	ActiveRules  int
}

// step is one compiled timeline entry: a plan event, or a derived
// respawn/expire that an event's respawn_after/for scheduled.
type step struct {
	at     time.Duration
	action string
	evIdx  int // index into plan.Events (derived steps share their parent's)
}

// Executor replays one plan against one cluster. Drive it either with
// Step — apply the next timeline entry right now, scenario-paced — or
// Run, which honours the events' time offsets on the real clock. Step
// and Run serialize against each other; the observation accessors (and
// the collector snapshot hook) are safe to call concurrently from
// anywhere, including mid-flood.
type Executor struct {
	plan    *Plan
	cluster fleet.Cluster
	opts    Options
	steps   []step
	rng     *rand.Rand

	stepMu sync.Mutex // serializes Step/Run

	mu          sync.Mutex // guards everything below
	members     []fleet.Member
	next        int
	fired       []metrics.ChaosEvent
	killedBy    map[int][]fleet.Member        // kill-event index -> its victims
	rules       map[int][]transport.FaultRule // rule-event index -> its installed rules
	killedTotal int
	respawned   int
	floodDials  uint64
	activeRules int
	everFaulted bool
}

// New compiles plan into an executor driving cluster. members are the
// cluster's current members (the executor tracks kills and respawns from
// here on; read the evolving list back with Members). The plan is not
// copied — do not mutate it while the executor runs.
func New(plan *Plan, cluster fleet.Cluster, members []fleet.Member, opts Options) *Executor {
	if opts.MaxContacts <= 0 {
		opts.MaxContacts = 3
	}
	if opts.Source == "" {
		opts.Source = "chaos"
	}
	e := &Executor{
		plan:     plan,
		cluster:  cluster,
		opts:     opts,
		members:  append([]fleet.Member(nil), members...),
		rng:      rand.New(rand.NewPCG(opts.Seed, 0xC4A05EC)),
		killedBy: make(map[int][]fleet.Member),
		rules:    make(map[int][]transport.FaultRule),
	}
	for i := range plan.Events {
		ev := &plan.Events[i]
		e.steps = append(e.steps, step{at: ev.At, action: ev.Action, evIdx: i})
		switch {
		case ev.Action == ActionKill && ev.RespawnAfter > 0:
			e.steps = append(e.steps, step{at: ev.At + ev.RespawnAfter, action: ActionRespawn, evIdx: i})
		case ruleAction(ev.Action) && ev.For > 0:
			e.steps = append(e.steps, step{at: ev.At + ev.For, action: ActionExpire, evIdx: i})
		}
	}
	sort.SliceStable(e.steps, func(i, j int) bool { return e.steps[i].at < e.steps[j].at })
	if opts.Collector != nil {
		opts.Collector.RegisterFunc(opts.Source, e.snapshotAt)
	}
	return e
}

func ruleAction(a string) bool {
	return a == ActionPartition || a == ActionLatency || a == ActionLoss
}

// Plan returns the plan the executor replays.
func (e *Executor) Plan() *Plan { return e.plan }

// Steps reports the compiled timeline length (plan events plus derived
// respawn and expiry steps).
func (e *Executor) Steps() int { return len(e.steps) }

// Remaining reports how many compiled steps have not been applied yet.
func (e *Executor) Remaining() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return len(e.steps) - e.next
}

// Members returns the executor's view of the cluster membership: the
// initial members plus every respawn, killed ones included (check
// Member.Alive).
func (e *Executor) Members() []fleet.Member {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]fleet.Member(nil), e.members...)
}

// AliveMembers returns the members still alive.
func (e *Executor) AliveMembers() []fleet.Member {
	e.mu.Lock()
	defer e.mu.Unlock()
	return aliveOf(e.members)
}

func aliveOf(members []fleet.Member) []fleet.Member {
	alive := make([]fleet.Member, 0, len(members))
	for _, m := range members {
		if m.Alive() {
			alive = append(alive, m)
		}
	}
	return alive
}

// KilledTotal reports how many members the plan has killed so far.
func (e *Executor) KilledTotal() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.killedTotal
}

// Respawned reports how many members the plan has respawned so far.
func (e *Executor) Respawned() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.respawned
}

// FloodDials reports the connections the plan's flood steps threw so far.
func (e *Executor) FloodDials() uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.floodDials
}

// ActiveRules reports the fault rules currently installed on the fleet.
func (e *Executor) ActiveRules() int {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.activeRules
}

// Fired returns the applied timeline so far, oldest first.
func (e *Executor) Fired() []metrics.ChaosEvent {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]metrics.ChaosEvent(nil), e.fired...)
}

// snapshotAt is the collector hook: the executor's state as a
// NodeSnapshot. Cycles carries the fired-step count so the dumper emits
// a round exactly when the plan advanced.
func (e *Executor) snapshotAt(unixMillis int64) metrics.NodeSnapshot {
	e.mu.Lock()
	defer e.mu.Unlock()
	return metrics.NodeSnapshot{
		Addr:   "plan:" + e.plan.Name,
		Cycles: uint64(e.next),
		Chaos: &metrics.ChaosSnapshot{
			Plan:        e.plan.Name,
			Events:      uint64(e.next),
			ActiveRules: e.activeRules,
			Killed:      uint64(e.killedTotal),
			Respawned:   uint64(e.respawned),
			FloodDials:  e.floodDials,
			Fired:       append([]metrics.ChaosEvent(nil), e.fired...),
		},
	}
}

// Step applies the next compiled timeline entry immediately, ignoring
// its time offset — the scenario-paced mode, where the caller interleaves
// steps with its own measurements. Returns ErrDone past the last step.
func (e *Executor) Step() (Applied, error) {
	e.stepMu.Lock()
	defer e.stepMu.Unlock()
	return e.applyNext()
}

// Run replays the remaining timeline on the real clock, sleeping out
// each step's offset (measured from Run's start) before applying it. A
// step that overruns its successor's offset — a flood blocks for its
// whole for — just makes the successor fire immediately after.
func (e *Executor) Run(ctx context.Context) error {
	e.stepMu.Lock()
	defer e.stepMu.Unlock()
	start := time.Now()
	for {
		e.mu.Lock()
		if e.next >= len(e.steps) {
			e.mu.Unlock()
			return nil
		}
		at := e.steps[e.next].at
		e.mu.Unlock()
		if wait := at - time.Since(start); wait > 0 {
			timer := time.NewTimer(wait)
			select {
			case <-timer.C:
			case <-ctx.Done():
				timer.Stop()
				return ctx.Err()
			}
			timer.Stop()
		}
		if _, err := e.applyNext(); err != nil {
			return err
		}
	}
}

// Close removes any fault rules the executor installed, healing the
// fleet. It does not kill or spawn anything. Idempotent.
func (e *Executor) Close() error {
	e.mu.Lock()
	faulted := e.everFaulted
	e.rules = make(map[int][]transport.FaultRule)
	e.activeRules = 0
	e.mu.Unlock()
	if !faulted {
		return nil
	}
	return e.cluster.SetFaultRules(nil)
}

// applyNext applies the next step. Caller holds stepMu.
func (e *Executor) applyNext() (Applied, error) {
	e.mu.Lock()
	if e.next >= len(e.steps) {
		e.mu.Unlock()
		return Applied{}, ErrDone
	}
	seq := e.next
	st := e.steps[seq]
	members := append([]fleet.Member(nil), e.members...)
	e.mu.Unlock()

	ev := &e.plan.Events[st.evIdx]
	ap := Applied{Seq: seq, At: st.at, Action: st.action, When: time.Now()}
	var err error
	switch st.action {
	case ActionKill:
		err = e.applyKill(&ap, st.evIdx, ev, members)
	case ActionRespawn:
		err = e.applyRespawn(&ap, st.evIdx)
	case ActionPartition, ActionLatency, ActionLoss:
		err = e.applyRule(&ap, st.evIdx, ev, members)
	case ActionHeal:
		err = e.applyHeal(&ap)
	case ActionExpire:
		err = e.applyExpire(&ap, st.evIdx)
	case ActionFlood:
		err = e.applyFlood(&ap, ev, members)
	default:
		err = fmt.Errorf("chaos: unknown compiled action %q", st.action)
	}
	if err != nil {
		return Applied{}, fmt.Errorf("chaos: plan %s step %d (%s at %v): %w", e.plan.Name, seq, st.action, st.at, err)
	}

	targets := len(ap.Killed) + len(ap.Spawned) + ap.RulesTouched
	if st.action == ActionFlood {
		targets = ev.Flooders
	}
	e.mu.Lock()
	e.next = seq + 1
	e.fired = append(e.fired, metrics.ChaosEvent{
		Seq:        seq,
		Action:     st.action,
		AtSeconds:  st.at.Seconds(),
		UnixMillis: ap.When.UnixMilli(),
		Targets:    targets,
	})
	e.mu.Unlock()
	if e.opts.Logf != nil {
		e.opts.Logf("chaos: %s[%d] %s: killed=%d spawned=%d rules=%d active=%d dials=%d",
			e.plan.Name, seq, st.action, len(ap.Killed), len(ap.Spawned), ap.RulesTouched, ap.ActiveRules, ap.FloodDials)
	}
	return ap, nil
}

// applyKill removes the event's victims: the named members, or a random
// ceil(fraction) of the live ones — at least one, matching the paper's
// catastrophic-failure experiments where the wave size is a fraction of
// the current population.
func (e *Executor) applyKill(ap *Applied, evIdx int, ev *Event, members []fleet.Member) error {
	alive := aliveOf(members)
	var victims []fleet.Member
	if len(ev.Members) > 0 {
		for _, name := range ev.Members {
			m := findMember(alive, name)
			if m == nil {
				return fmt.Errorf("kill: no live member named %q", name)
			}
			victims = append(victims, m)
		}
	} else {
		if len(alive) == 0 {
			return fmt.Errorf("kill: no live members")
		}
		k := ceilFraction(len(alive), ev.Fraction)
		e.rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
		victims = alive[:k]
	}
	for _, v := range victims {
		// Best-effort pre-kill baseline: a subprocess member dying under us
		// mid-snapshot is churn noise, not a plan failure.
		if s, err := v.Snapshot(); err == nil {
			ap.KilledFailures += s.Failures
		}
		if err := e.cluster.Kill(v); err != nil {
			return fmt.Errorf("kill %s: %w", v.Name(), err)
		}
	}
	ap.Killed = victims
	e.mu.Lock()
	e.killedBy[evIdx] = victims
	e.killedTotal += len(victims)
	ap.ActiveRules = e.activeRules
	e.mu.Unlock()
	return nil
}

// applyRespawn spawns as many fresh members as the parent kill step
// removed, bootstrapped from a few current addresses.
func (e *Executor) applyRespawn(ap *Applied, evIdx int) error {
	e.mu.Lock()
	n := len(e.killedBy[evIdx])
	e.mu.Unlock()
	if n == 0 {
		return nil
	}
	contacts := e.cluster.Addrs()
	if len(contacts) > e.opts.MaxContacts {
		contacts = contacts[:e.opts.MaxContacts]
	}
	spawned, err := fleet.SpawnN(e.cluster, n, contacts)
	if err != nil {
		return fmt.Errorf("respawn: %w", err)
	}
	ap.Spawned = spawned
	e.mu.Lock()
	e.members = append(e.members, spawned...)
	e.respawned += len(spawned)
	ap.ActiveRules = e.activeRules
	e.mu.Unlock()
	return nil
}

// applyRule compiles one partition/latency/loss event to FaultRules and
// pushes the merged table.
func (e *Executor) applyRule(ap *Applied, evIdx int, ev *Event, members []fleet.Member) error {
	var rules []transport.FaultRule
	switch {
	case ev.Action == ActionPartition && ev.Fraction != 0:
		// Random island: ceil(fraction) of the live members cut off from
		// the rest, both directions.
		alive := aliveOf(members)
		if len(alive) < 2 {
			return fmt.Errorf("partition: need at least 2 live members, have %d", len(alive))
		}
		k := ceilFraction(len(alive), ev.Fraction)
		if k == len(alive) {
			k = len(alive) - 1
		}
		e.rng.Shuffle(len(alive), func(i, j int) { alive[i], alive[j] = alive[j], alive[i] })
		for _, in := range alive[:k] {
			for _, out := range alive[k:] {
				rules = append(rules,
					transport.FaultRule{From: in.Addr(), To: out.Addr(), Cut: true},
					transport.FaultRule{From: out.Addr(), To: in.Addr(), Cut: true})
			}
		}
	default:
		// Directed from×to pairs; a partition event written with sets cuts
		// only the named direction — the asymmetric case.
		from, err := resolveAddrs(members, ev.From)
		if err != nil {
			return err
		}
		to, err := resolveAddrs(members, ev.To)
		if err != nil {
			return err
		}
		for _, f := range from {
			for _, t := range to {
				r := transport.FaultRule{From: f, To: t}
				switch ev.Action {
				case ActionPartition:
					r.Cut = true
				case ActionLatency:
					r.Latency = ev.Latency
				case ActionLoss:
					r.Loss = ev.Loss
				}
				rules = append(rules, r)
			}
		}
	}
	e.mu.Lock()
	e.rules[evIdx] = rules
	e.mu.Unlock()
	ap.RulesTouched = len(rules)
	return e.pushRules(ap)
}

// applyHeal drops every installed rule.
func (e *Executor) applyHeal(ap *Applied) error {
	e.mu.Lock()
	for _, rs := range e.rules {
		ap.RulesTouched += len(rs)
	}
	e.rules = make(map[int][]transport.FaultRule)
	e.mu.Unlock()
	return e.pushRules(ap)
}

// applyExpire drops the rules one event installed, leaving the rest.
func (e *Executor) applyExpire(ap *Applied, evIdx int) error {
	e.mu.Lock()
	ap.RulesTouched = len(e.rules[evIdx])
	delete(e.rules, evIdx)
	e.mu.Unlock()
	return e.pushRules(ap)
}

// applyFlood runs the event's connection flood, blocking for its whole
// duration. The dial counter is shared with the collector hook, so a
// concurrent snapshot watches the flood climb.
func (e *Executor) applyFlood(ap *Applied, ev *Event, members []fleet.Member) error {
	alive := aliveOf(members)
	var targets []string
	if len(ev.Members) > 0 {
		for _, name := range ev.Members {
			m := findMember(alive, name)
			if m == nil {
				return fmt.Errorf("flood: no live member named %q", name)
			}
			targets = append(targets, m.Addr())
		}
	} else {
		if len(alive) == 0 {
			return fmt.Errorf("flood: no live members")
		}
		targets = []string{alive[0].Addr()}
	}
	e.mu.Lock()
	before := e.floodDials
	ap.ActiveRules = e.activeRules
	e.mu.Unlock()
	var dials atomic.Uint64
	stop := make(chan struct{})
	go func() {
		// Publish the climbing dial counter while the flood blocks, so a
		// concurrent collector snapshot watches the attack in flight.
		ticker := time.NewTicker(50 * time.Millisecond)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				e.mu.Lock()
				e.floodDials = before + dials.Load()
				e.mu.Unlock()
			}
		}
	}()
	runFlood(targets, ev.Flooders, ev.For, &dials)
	close(stop)
	e.mu.Lock()
	e.floodDials = before + dials.Load()
	e.mu.Unlock()
	ap.FloodDials = dials.Load()
	return nil
}

// pushRules flattens the per-event rule tables (ordered by event index,
// so replay order is deterministic) onto the cluster.
func (e *Executor) pushRules(ap *Applied) error {
	e.mu.Lock()
	idxs := make([]int, 0, len(e.rules))
	for i := range e.rules {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	var flat []transport.FaultRule
	for _, i := range idxs {
		flat = append(flat, e.rules[i]...)
	}
	e.activeRules = len(flat)
	e.everFaulted = true
	ap.ActiveRules = len(flat)
	e.mu.Unlock()
	if err := e.cluster.SetFaultRules(flat); err != nil {
		return fmt.Errorf("push fault rules: %w", err)
	}
	return nil
}

// resolveAddrs maps member names to transport addresses; "*" passes
// through as the wildcard FaultRule understands.
func resolveAddrs(members []fleet.Member, names []string) ([]string, error) {
	addrs := make([]string, 0, len(names))
	for _, name := range names {
		if name == "*" {
			addrs = append(addrs, "*")
			continue
		}
		m := findMember(members, name)
		if m == nil {
			return nil, fmt.Errorf("no member named %q", name)
		}
		addrs = append(addrs, m.Addr())
	}
	return addrs, nil
}

func findMember(members []fleet.Member, name string) fleet.Member {
	for _, m := range members {
		if m.Name() == name {
			return m
		}
	}
	return nil
}

// ceilFraction is ceil(n*f) clamped to [1,n] — the wave-size arithmetic
// the paper's churn experiments use (25% of 8 nodes kills 2, of 9 kills
// 3).
func ceilFraction(n int, f float64) int {
	k := (n*int(f*100) + 99) / 100
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}
