package chaos

import (
	"embed"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"peersampling/internal/config"
)

// Timeline event actions. Respawn and expire never appear in plan files —
// they are derived steps the compiler inserts from a kill event's
// respawn_after and a rule event's for.
const (
	ActionKill      = "kill"
	ActionPartition = "partition"
	ActionLatency   = "latency"
	ActionLoss      = "loss"
	ActionHeal      = "heal"
	ActionFlood     = "flood"
	ActionRespawn   = "respawn"
	ActionExpire    = "expire"
)

// Plan is one named fault plan: a versioned document listing timeline
// events. Construct by Parse/Load/LoadFile — a hand-built Plan should be
// passed through Validate before use.
type Plan struct {
	// Version is the document schema version; 1 is the only one.
	Version int
	// Name identifies the plan ("churn-waves"); embedded plans load by it.
	Name string
	// Description says what the plan does, for renders and logs.
	Description string
	// Events is the timeline, in document order. The executor sorts by At
	// (stable, so equal offsets keep document order).
	Events []Event
}

// Event is one timeline entry. Which fields are meaningful depends on
// Action; Validate rejects contradictions.
type Event struct {
	// At is the event's offset from plan start.
	At time.Duration
	// Action is one of kill, partition, latency, loss, heal, flood.
	Action string

	// Kill events: Fraction of the live members (ceiling, at least one) or
	// an explicit member-name list — exactly one of the two. RespawnAfter,
	// when positive, schedules a derived respawn of as many fresh members
	// as the wave killed, at At+RespawnAfter.
	Fraction     float64
	Members      []string
	RespawnAfter time.Duration

	// Rule events (partition, latency, loss): directed From→To member-name
	// sets ("*" is a wildcard; latency/loss default both sides to "*").
	// A partition may instead give Fraction to cut a random island of that
	// size off the rest, both directions. For, when positive, schedules a
	// derived expiry removing this event's rules at At+For.
	From []string
	To   []string
	For  time.Duration

	// Latency is the extra one-way delay a latency event injects per link.
	Latency time.Duration
	// Loss is the drop probability a loss event injects per link.
	Loss float64

	// Flood events: Flooders concurrent attacker goroutines (default 3)
	// dial the target Members (default: the first live member) for the
	// event's For duration, holding connections open without ever sending
	// a frame — the connection-flood + slowloris attack.
	Flooders int
}

// Parse decodes and validates one plan document: the config package's
// YAML subset, or JSON when asJSON is set. Unknown keys anywhere in the
// document are errors.
func Parse(raw []byte, asJSON bool) (*Plan, error) {
	m, err := config.ParseDocument(raw, asJSON)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	doc := config.NewDocument("", m)
	p := &Plan{}
	if err := readPlan(doc, p); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	if err := doc.Finish(); err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// readPlan maps the document onto p, strictly typed field by field.
func readPlan(doc *config.Document, p *Plan) error {
	if err := doc.Int("version", &p.Version); err != nil {
		return err
	}
	if err := doc.Str("name", &p.Name); err != nil {
		return err
	}
	if err := doc.Str("description", &p.Description); err != nil {
		return err
	}
	events, err := doc.Seq("events")
	if err != nil {
		return err
	}
	for _, ed := range events {
		var ev Event
		for _, read := range []error{
			ed.Duration("at", &ev.At),
			ed.Str("action", &ev.Action),
			ed.Float("fraction", &ev.Fraction),
			ed.StrList("members", &ev.Members),
			ed.Duration("respawn_after", &ev.RespawnAfter),
			ed.StrList("from", &ev.From),
			ed.StrList("to", &ev.To),
			ed.Duration("for", &ev.For),
			ed.Duration("latency", &ev.Latency),
			ed.Float("loss", &ev.Loss),
			ed.Int("flooders", &ev.Flooders),
		} {
			if read != nil {
				return read
			}
		}
		p.Events = append(p.Events, ev)
	}
	return nil
}

// Validate checks the whole plan and normalizes defaults (latency/loss
// sides default to "*", flood flooders to 3). It reports the first
// problem with its events[i] path.
func (p *Plan) Validate() error {
	if p.Version != 1 {
		return fmt.Errorf("chaos: plan %q: version: want 1, got %d", p.Name, p.Version)
	}
	if !validPlanName(p.Name) {
		return fmt.Errorf("chaos: plan name %q: want lowercase letters, digits and dashes", p.Name)
	}
	if len(p.Events) == 0 {
		return fmt.Errorf("chaos: plan %q: no events", p.Name)
	}
	for i := range p.Events {
		if err := p.Events[i].validate(); err != nil {
			return fmt.Errorf("chaos: plan %q: events[%d]: %w", p.Name, i, err)
		}
	}
	return nil
}

func validPlanName(name string) bool {
	if name == "" {
		return false
	}
	for _, r := range name {
		if (r < 'a' || r > 'z') && (r < '0' || r > '9') && r != '-' {
			return false
		}
	}
	return !strings.HasPrefix(name, "-") && !strings.HasSuffix(name, "-")
}

// validate checks one event's field combination and fills its defaults.
func (ev *Event) validate() error {
	if ev.At < 0 {
		return fmt.Errorf("at: must not be negative")
	}
	reject := func(cond bool, field string) error {
		if cond {
			return fmt.Errorf("%s: not meaningful for action %q", field, ev.Action)
		}
		return nil
	}
	// Fields no action below accepts are rejected per action; the helper
	// chains keep each case a readable checklist.
	switch ev.Action {
	case ActionKill:
		if (ev.Fraction != 0) == (len(ev.Members) != 0) {
			return fmt.Errorf("kill needs exactly one of fraction or members")
		}
		if ev.Fraction != 0 && (ev.Fraction <= 0 || ev.Fraction > 1) {
			return fmt.Errorf("fraction: want within (0,1], got %v", ev.Fraction)
		}
		if ev.RespawnAfter < 0 {
			return fmt.Errorf("respawn_after: must not be negative")
		}
		for _, e := range []error{
			reject(len(ev.From) > 0 || len(ev.To) > 0, "from/to"),
			reject(ev.For != 0, "for"),
			reject(ev.Latency != 0, "latency"),
			reject(ev.Loss != 0, "loss"),
			reject(ev.Flooders != 0, "flooders"),
		} {
			if e != nil {
				return e
			}
		}
	case ActionPartition:
		haveSets := len(ev.From) > 0 && len(ev.To) > 0
		if (ev.Fraction != 0) == haveSets {
			return fmt.Errorf("partition needs either fraction (random island) or from+to (directed cut)")
		}
		if ev.Fraction != 0 && (ev.Fraction <= 0 || ev.Fraction >= 1) {
			return fmt.Errorf("fraction: want within (0,1), got %v", ev.Fraction)
		}
		if len(ev.From) > 0 != (len(ev.To) > 0) {
			return fmt.Errorf("partition with sets needs both from and to")
		}
		if err := ev.ruleCommon(reject); err != nil {
			return err
		}
	case ActionLatency:
		if ev.Latency <= 0 {
			return fmt.Errorf("latency: want > 0, got %v", ev.Latency)
		}
		ev.defaultSides()
		if err := reject(ev.Fraction != 0, "fraction"); err != nil {
			return err
		}
		if err := ev.ruleCommon(reject); err != nil {
			return err
		}
	case ActionLoss:
		if ev.Loss <= 0 || ev.Loss > 1 {
			return fmt.Errorf("loss: want within (0,1], got %v", ev.Loss)
		}
		ev.defaultSides()
		if err := reject(ev.Fraction != 0, "fraction"); err != nil {
			return err
		}
		if err := ev.ruleCommon(reject); err != nil {
			return err
		}
	case ActionHeal:
		for _, e := range []error{
			reject(ev.Fraction != 0, "fraction"),
			reject(len(ev.Members) > 0, "members"),
			reject(len(ev.From) > 0 || len(ev.To) > 0, "from/to"),
			reject(ev.For != 0, "for"),
			reject(ev.RespawnAfter != 0, "respawn_after"),
			reject(ev.Latency != 0, "latency"),
			reject(ev.Loss != 0, "loss"),
			reject(ev.Flooders != 0, "flooders"),
		} {
			if e != nil {
				return e
			}
		}
	case ActionFlood:
		if ev.For <= 0 {
			return fmt.Errorf("flood needs a positive for duration")
		}
		if ev.Flooders == 0 {
			ev.Flooders = 3
		}
		if ev.Flooders < 0 {
			return fmt.Errorf("flooders: want >= 1, got %d", ev.Flooders)
		}
		for _, e := range []error{
			reject(ev.Fraction != 0, "fraction"),
			reject(len(ev.From) > 0 || len(ev.To) > 0, "from/to"),
			reject(ev.RespawnAfter != 0, "respawn_after"),
			reject(ev.Latency != 0, "latency"),
			reject(ev.Loss != 0, "loss"),
		} {
			if e != nil {
				return e
			}
		}
	case ActionRespawn, ActionExpire:
		return fmt.Errorf("action %q is derived by the executor, not written in plans", ev.Action)
	default:
		return fmt.Errorf("action: unknown %q (want kill, partition, latency, loss, heal or flood)", ev.Action)
	}
	return nil
}

// ruleCommon checks the fields shared by the rule-installing actions.
func (ev *Event) ruleCommon(reject func(bool, string) error) error {
	if ev.For < 0 {
		return fmt.Errorf("for: must not be negative")
	}
	for _, e := range []error{
		reject(len(ev.Members) > 0, "members"),
		reject(ev.RespawnAfter != 0, "respawn_after"),
		reject(ev.Flooders != 0, "flooders"),
	} {
		if e != nil {
			return e
		}
	}
	if ev.Action != ActionLatency && ev.Latency != 0 {
		return reject(true, "latency")
	}
	if ev.Action != ActionLoss && ev.Loss != 0 {
		return reject(true, "loss")
	}
	return nil
}

// defaultSides fills an unset side of a latency/loss event with the
// wildcard: "slow every link" is the common case and should not need
// boilerplate.
func (ev *Event) defaultSides() {
	if len(ev.From) == 0 {
		ev.From = []string{"*"}
	}
	if len(ev.To) == 0 {
		ev.To = []string{"*"}
	}
}

// KillWaves returns the plan's kill events, in timeline order — what a
// round-structured scenario (livechurn) iterates over.
func (p *Plan) KillWaves() []Event {
	var kills []Event
	for _, ev := range p.Events {
		if ev.Action == ActionKill {
			kills = append(kills, ev)
		}
	}
	sort.SliceStable(kills, func(i, j int) bool { return kills[i].At < kills[j].At })
	return kills
}

// FirstFlood returns the plan's first flood event, for scenarios that
// parameterize their report from it.
func (p *Plan) FirstFlood() (Event, bool) {
	for _, ev := range p.Events {
		if ev.Action == ActionFlood {
			return ev, true
		}
	}
	return Event{}, false
}

// plansFS embeds the named plans shipped in-repo; Load serves them.
//
//go:embed plans/*.yaml
var plansFS embed.FS

// Names lists the embedded plan names, sorted.
func Names() []string {
	entries, err := plansFS.ReadDir("plans")
	if err != nil {
		return nil
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		names = append(names, strings.TrimSuffix(e.Name(), ".yaml"))
	}
	sort.Strings(names)
	return names
}

// Load parses the embedded plan with the given name (with or without the
// .yaml suffix). The document's name field must match the file name — a
// plan is addressed by one name everywhere.
func Load(name string) (*Plan, error) {
	base := strings.TrimSuffix(name, ".yaml")
	raw, err := plansFS.ReadFile("plans/" + base + ".yaml")
	if err != nil {
		return nil, fmt.Errorf("chaos: no embedded plan %q (have %s)", name, strings.Join(Names(), ", "))
	}
	p, err := Parse(raw, false)
	if err != nil {
		return nil, err
	}
	if p.Name != base {
		return nil, fmt.Errorf("chaos: embedded plan file %s.yaml names itself %q", base, p.Name)
	}
	return p, nil
}

// LoadFile parses a plan from disk; a .json extension selects the JSON
// front end, everything else the YAML subset (the same rule as config
// files).
func LoadFile(path string) (*Plan, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("chaos: %w", err)
	}
	return Parse(raw, config.DocIsJSON(path))
}
