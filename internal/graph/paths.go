package graph

import "math/rand/v2"

// BFS computes the hop distance from src to every node. Unreachable nodes
// get distance -1. The returned slice is freshly allocated.
func (g *Graph) BFS(src int32) []int32 {
	dist := make([]int32, len(g.adj))
	for i := range dist {
		dist[i] = -1
	}
	dist[src] = 0
	queue := make([]int32, 0, len(g.adj))
	queue = append(queue, src)
	for head := 0; head < len(queue); head++ {
		v := queue[head]
		dv := dist[v]
		for _, u := range g.adj[v] {
			if dist[u] < 0 {
				dist[u] = dv + 1
				queue = append(queue, u)
			}
		}
	}
	return dist
}

// AveragePathLength returns the exact mean shortest path length over all
// reachable ordered pairs of distinct nodes. For disconnected graphs,
// unreachable pairs are excluded from the average (the paper's overlays
// are connected whenever this metric is plotted). The second return value
// is the number of ordered pairs averaged over; it is 0 (with length 0)
// when no pair is reachable. Cost is one BFS per node.
func (g *Graph) AveragePathLength() (float64, int) {
	var sum, pairs int64
	for v := range g.adj {
		dist := g.BFS(int32(v))
		for _, d := range dist {
			if d > 0 {
				sum += int64(d)
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0, 0
	}
	return float64(sum) / float64(pairs), int(pairs)
}

// EstimatePathLength estimates the average shortest path length by running
// BFS from `sources` distinct random source nodes and averaging distances
// to all reachable targets. With sources >= n it computes the exact value.
func (g *Graph) EstimatePathLength(sources int, rng *rand.Rand) float64 {
	n := len(g.adj)
	if n < 2 {
		return 0
	}
	if sources >= n {
		l, _ := g.AveragePathLength()
		return l
	}
	var sum, pairs int64
	for _, src := range sampleIndices(n, sources, rng) {
		dist := g.BFS(int32(src))
		for _, d := range dist {
			if d > 0 {
				sum += int64(d)
				pairs++
			}
		}
	}
	if pairs == 0 {
		return 0
	}
	return float64(sum) / float64(pairs)
}

// Diameter returns the largest finite shortest-path distance in the graph
// (0 for graphs with fewer than two nodes or no edges).
func (g *Graph) Diameter() int {
	var max int32
	for v := range g.adj {
		for _, d := range g.BFS(int32(v)) {
			if d > max {
				max = d
			}
		}
	}
	return int(max)
}

// sampleIndices returns k distinct indices from 0..n-1 chosen uniformly at
// random (partial Fisher-Yates).
func sampleIndices(n, k int, rng *rand.Rand) []int {
	if k > n {
		k = n
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	for i := 0; i < k; i++ {
		j := i + rng.IntN(n-i)
		idx[i], idx[j] = idx[j], idx[i]
	}
	return idx[:k]
}
