package graph

import "math/rand/v2"

// ClusteringOf returns the local clustering coefficient of node v: the
// number of edges among v's neighbours divided by the number of possible
// such edges. Nodes with fewer than two neighbours have coefficient 0 (the
// Watts-Strogatz convention, under which trees score 0 as in the paper).
func (g *Graph) ClusteringOf(v int32) float64 {
	nb := g.adj[v]
	d := len(nb)
	if d < 2 {
		return 0
	}
	links := 0
	for _, u := range nb {
		links += sortedIntersectionSize(g.adj[u], nb)
	}
	// Every neighbour-neighbour edge was counted twice (once from each
	// endpoint's membership test).
	return float64(links) / float64(d*(d-1))
}

// Clustering returns the clustering coefficient of the graph: the average
// of the local coefficients over all nodes. It is exact and costs
// O(sum_v deg(v)^2) time.
func (g *Graph) Clustering() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	sum := 0.0
	for v := range g.adj {
		sum += g.ClusteringOf(int32(v))
	}
	return sum / float64(len(g.adj))
}

// EstimateClustering averages the local clustering coefficient over a
// uniform random sample of nodes (with replacement). With sample >= n the
// exact coefficient is returned instead.
func (g *Graph) EstimateClustering(sample int, rng *rand.Rand) float64 {
	n := len(g.adj)
	if n == 0 {
		return 0
	}
	if sample >= n {
		return g.Clustering()
	}
	sum := 0.0
	for i := 0; i < sample; i++ {
		sum += g.ClusteringOf(int32(rng.IntN(n)))
	}
	return sum / float64(sample)
}

// sortedIntersectionSize counts the common elements of two sorted slices.
func sortedIntersectionSize(a, b []int32) int {
	i, j, count := 0, 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			count++
			i++
			j++
		}
	}
	return count
}
