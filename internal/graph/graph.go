package graph

import (
	"fmt"
	"slices"
)

// Graph is a simple undirected graph over nodes 0..n-1 with sorted
// adjacency lists. Build one with FromAdjacency or NewUndirected; the zero
// value is an empty graph.
type Graph struct {
	adj   [][]int32
	edges int
}

// NewUndirected builds a graph with n nodes from an edge list. Self-loops
// and duplicate edges are dropped. It panics if an endpoint is out of
// range, since that always indicates a bug in the caller.
func NewUndirected(n int, edges [][2]int32) *Graph {
	adj := make([][]int32, n)
	for _, e := range edges {
		a, b := e[0], e[1]
		if int(a) >= n || int(b) >= n || a < 0 || b < 0 {
			panic(fmt.Sprintf("graph: edge (%d,%d) out of range for n=%d", a, b, n))
		}
		if a == b {
			continue
		}
		adj[a] = append(adj[a], b)
		adj[b] = append(adj[b], a)
	}
	return finish(adj)
}

// FromAdjacency builds the undirected communication graph from directed
// out-neighbour lists (one per node, holding node indices). The direction
// of each link is dropped and duplicates are merged, per Section 4.2 of
// the paper. Out-entries pointing at the node itself or outside 0..n-1
// are ignored (the simulator uses this to skip dead peers).
func FromAdjacency(out [][]int32) *Graph {
	n := len(out)
	adj := make([][]int32, n)
	for a, targets := range out {
		for _, b := range targets {
			if int(b) >= n || b < 0 || int(b) == a {
				continue
			}
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], int32(a))
		}
	}
	return finish(adj)
}

// finish sorts and deduplicates adjacency lists and counts edges.
func finish(adj [][]int32) *Graph {
	edges := 0
	for i := range adj {
		slices.Sort(adj[i])
		adj[i] = slices.Compact(adj[i])
		edges += len(adj[i])
	}
	return &Graph{adj: adj, edges: edges / 2}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return len(g.adj) }

// NumEdges returns the number of undirected edges.
func (g *Graph) NumEdges() int { return g.edges }

// Degree returns the degree of node v.
func (g *Graph) Degree(v int32) int { return len(g.adj[v]) }

// Neighbors returns the sorted adjacency list of v. The returned slice is
// shared with the graph and must not be modified.
func (g *Graph) Neighbors(v int32) []int32 { return g.adj[v] }

// HasEdge reports whether the undirected edge {a,b} exists.
func (g *Graph) HasEdge(a, b int32) bool {
	_, found := slices.BinarySearch(g.adj[a], b)
	return found
}
