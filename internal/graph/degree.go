package graph

// Degrees returns the degree of every node.
func (g *Graph) Degrees() []int {
	out := make([]int, len(g.adj))
	for i := range g.adj {
		out[i] = len(g.adj[i])
	}
	return out
}

// AverageDegree returns the mean node degree (2m/n). It returns 0 for the
// empty graph.
func (g *Graph) AverageDegree() float64 {
	if len(g.adj) == 0 {
		return 0
	}
	return 2 * float64(g.edges) / float64(len(g.adj))
}

// DegreeHistogram returns a map from degree to the number of nodes with
// that degree, the raw material of the paper's Figure 4.
func (g *Graph) DegreeHistogram() map[int]int {
	h := make(map[int]int)
	for i := range g.adj {
		h[len(g.adj[i])]++
	}
	return h
}

// MinMaxDegree returns the smallest and largest node degree. Both are 0
// for the empty graph.
func (g *Graph) MinMaxDegree() (minDeg, maxDeg int) {
	if len(g.adj) == 0 {
		return 0, 0
	}
	minDeg = len(g.adj[0])
	for i := range g.adj {
		d := len(g.adj[i])
		if d < minDeg {
			minDeg = d
		}
		if d > maxDeg {
			maxDeg = d
		}
	}
	return minDeg, maxDeg
}
