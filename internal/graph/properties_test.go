package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// randomTestGraph builds an arbitrary simple graph from fuzz input.
func randomTestGraph(seed uint64, nRaw, mRaw uint8) *Graph {
	rng := rand.New(rand.NewPCG(seed, 77))
	n := int(nRaw)%25 + 2
	m := int(mRaw) % 60
	edges := make([][2]int32, m)
	for i := range edges {
		edges[i] = [2]int32{int32(rng.IntN(n)), int32(rng.IntN(n))}
	}
	return NewUndirected(n, edges)
}

func TestClusteringBoundsProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		g := randomTestGraph(seed, nRaw, mRaw)
		c := g.Clustering()
		if c < 0 || c > 1 {
			return false
		}
		for v := 0; v < g.NumNodes(); v++ {
			lc := g.ClusteringOf(int32(v))
			if lc < 0 || lc > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPathLengthDiameterProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		g := randomTestGraph(seed, nRaw, mRaw)
		avg, pairs := g.AveragePathLength()
		d := g.Diameter()
		if avg < 0 {
			return false
		}
		// Average over reachable pairs can never exceed the diameter.
		if pairs > 0 && avg > float64(d) {
			return false
		}
		// Any graph with an edge has diameter >= 1 and avg >= 1.
		if g.NumEdges() > 0 && (d < 1 || avg < 1) {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDegreeSumProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		g := randomTestGraph(seed, nRaw, mRaw)
		sum := 0
		for _, d := range g.Degrees() {
			sum += d
		}
		// Handshake lemma.
		return sum == 2*g.NumEdges()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestComponentSizesSumProperty(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		g := randomTestGraph(seed, nRaw, mRaw)
		stats := g.Components()
		sum := 0
		for _, s := range stats.Sizes {
			sum += s
		}
		return sum == g.NumNodes() && stats.Largest <= g.NumNodes() &&
			stats.OutsideLargest() == g.NumNodes()-stats.Largest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
