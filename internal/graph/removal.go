package graph

import (
	"fmt"
	"math/rand/v2"
	"slices"
)

// SweepPoint is one checkpoint of a catastrophic-failure sweep: the state
// of the graph after Removed random nodes have been deleted.
type SweepPoint struct {
	Removed        int // nodes removed so far
	Survivors      int // nodes remaining
	Components     int // connected components among survivors
	Largest        int // size of the largest surviving component
	OutsideLargest int // survivors not in the largest component (Figure 6's y axis)
}

// RemovalSweep deletes nodes from g in a uniform random order and reports
// component statistics at each requested checkpoint (numbers of removed
// nodes, in any order; they are processed sorted ascending).
//
// The sweep runs backwards — starting from the most-damaged state and
// re-inserting nodes with a union-find — so the whole sweep costs
// O((n + m) alpha) regardless of the number of checkpoints. This makes the
// paper's Figure 6 (100 repetitions x 8 protocols x 31 removal fractions)
// tractable.
func RemovalSweep(g *Graph, checkpoints []int, rng *rand.Rand) []SweepPoint {
	n := g.NumNodes()
	cps := slices.Clone(checkpoints)
	slices.Sort(cps)
	for _, c := range cps {
		if c < 0 || c > n {
			panic(fmt.Sprintf("graph: removal checkpoint %d out of range [0,%d]", c, n))
		}
	}

	// Random removal order: order[i] is the i-th node to be removed.
	order := rng.Perm(n)
	removedAt := make([]int, n) // node -> position in removal order
	for i, v := range order {
		removedAt[v] = i
	}

	maxRemoved := 0
	if len(cps) > 0 {
		maxRemoved = cps[len(cps)-1]
	}

	// Start from the most-damaged state: only nodes removed at position
	// >= maxRemoved are alive. Union alive-alive edges.
	alive := make([]bool, n)
	d := NewDSU(n)
	aliveCount := 0
	for v := 0; v < n; v++ {
		if removedAt[v] >= maxRemoved {
			alive[v] = true
			aliveCount++
		}
	}
	largest := int32(0)
	if aliveCount > 0 {
		largest = 1
	}
	for v := 0; v < n; v++ {
		if !alive[v] {
			continue
		}
		for _, u := range g.adj[v] {
			if alive[u] && u > int32(v) {
				d.Union(int32(v), u)
				if s := d.SizeOf(u); s > largest {
					largest = s
				}
			}
		}
	}

	out := make([]SweepPoint, len(cps))
	record := func(i int, removed int) {
		comp := d.count - (n - aliveCount) // singleton sets of dead nodes do not count
		out[i] = SweepPoint{
			Removed:        removed,
			Survivors:      aliveCount,
			Components:     comp,
			Largest:        int(largest),
			OutsideLargest: aliveCount - int(largest),
		}
	}

	// Walk checkpoints from most damage to least, resurrecting nodes in
	// reverse removal order between checkpoints.
	next := maxRemoved - 1 // next node position to resurrect
	for i := len(cps) - 1; i >= 0; i-- {
		for next >= cps[i] {
			v := int32(order[next])
			alive[v] = true
			aliveCount++
			if largest == 0 {
				largest = 1
			}
			for _, u := range g.adj[v] {
				if alive[u] {
					d.Union(v, u)
				}
			}
			if s := d.SizeOf(v); s > largest {
				largest = s
			}
			next--
		}
		record(i, cps[i])
	}
	return out
}
