package graph

import (
	"fmt"
	"math/rand/v2"
)

// RandomOutViews returns n directed out-views in which every node holds c
// distinct uniform random other nodes — the idealised overlay induced by a
// perfectly uniform peer sampling service. This is the baseline topology
// the paper compares every gossip protocol against (the horizontal lines
// in its figures).
func RandomOutViews(n, c int, rng *rand.Rand) [][]int32 {
	if c >= n {
		panic(fmt.Sprintf("graph: cannot draw %d distinct peers from %d nodes", c, n))
	}
	out := make([][]int32, n)
	for v := 0; v < n; v++ {
		view := make([]int32, 0, c)
		// Rejection sampling: c << n in all experiments, so collisions
		// are rare and this beats shuffling n entries per node.
		seen := make(map[int32]struct{}, c)
		for len(view) < c {
			u := int32(rng.IntN(n))
			if int(u) == v {
				continue
			}
			if _, dup := seen[u]; dup {
				continue
			}
			seen[u] = struct{}{}
			view = append(view, u)
		}
		out[v] = view
	}
	return out
}

// RandomViewGraph builds the undirected communication graph of the
// uniform-random-view baseline.
func RandomViewGraph(n, c int, rng *rand.Rand) *Graph {
	return FromAdjacency(RandomOutViews(n, c, rng))
}

// RingLattice builds the undirected ring lattice used by the paper's
// structured bootstrap scenario: n nodes in a ring, each linked to its k
// nearest neighbours on each side (so degree 2k). Used in tests as a
// high-diameter, high-clustering reference topology.
func RingLattice(n, k int) *Graph {
	if 2*k >= n {
		panic(fmt.Sprintf("graph: ring lattice with n=%d, k=%d would be complete", n, k))
	}
	edges := make([][2]int32, 0, n*k)
	for v := 0; v < n; v++ {
		for d := 1; d <= k; d++ {
			edges = append(edges, [2]int32{int32(v), int32((v + d) % n)})
		}
	}
	return NewUndirected(n, edges)
}
