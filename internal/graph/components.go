package graph

// DSU is a disjoint-set union (union-find) structure with union by size
// and path halving. It underlies both component analysis and the
// reverse-incremental catastrophic-failure sweep.
type DSU struct {
	parent []int32
	size   []int32
	count  int // number of disjoint sets
}

// NewDSU returns a DSU over n singleton elements.
func NewDSU(n int) *DSU {
	d := &DSU{
		parent: make([]int32, n),
		size:   make([]int32, n),
		count:  n,
	}
	for i := range d.parent {
		d.parent[i] = int32(i)
		d.size[i] = 1
	}
	return d
}

// Find returns the representative of x's set.
func (d *DSU) Find(x int32) int32 {
	for d.parent[x] != x {
		d.parent[x] = d.parent[d.parent[x]] // path halving
		x = d.parent[x]
	}
	return x
}

// Union merges the sets of a and b and reports whether a merge happened.
func (d *DSU) Union(a, b int32) bool {
	ra, rb := d.Find(a), d.Find(b)
	if ra == rb {
		return false
	}
	if d.size[ra] < d.size[rb] {
		ra, rb = rb, ra
	}
	d.parent[rb] = ra
	d.size[ra] += d.size[rb]
	d.count--
	return true
}

// SizeOf returns the size of the set containing x.
func (d *DSU) SizeOf(x int32) int32 { return d.size[d.Find(x)] }

// Count returns the number of disjoint sets.
func (d *DSU) Count() int { return d.count }

// ComponentStats summarises the connected components of a graph.
type ComponentStats struct {
	Count   int   // number of connected components
	Largest int   // size of the largest component
	Sizes   []int // all component sizes, descending
}

// Connected reports whether the graph forms a single component. The empty
// graph counts as connected.
func (s ComponentStats) Connected() bool { return s.Count <= 1 }

// OutsideLargest returns the number of nodes that do not belong to the
// largest connected cluster, the quantity plotted in the paper's Figure 6.
func (s ComponentStats) OutsideLargest() int {
	total := 0
	for _, sz := range s.Sizes {
		total += sz
	}
	return total - s.Largest
}

// Components computes the connected components of g.
func (g *Graph) Components() ComponentStats {
	n := len(g.adj)
	d := NewDSU(n)
	for v := range g.adj {
		for _, u := range g.adj[v] {
			if u > int32(v) { // each edge once
				d.Union(int32(v), u)
			}
		}
	}
	sizes := make(map[int32]int, d.count)
	for v := int32(0); int(v) < n; v++ {
		sizes[d.Find(v)]++
	}
	stats := ComponentStats{Count: len(sizes)}
	stats.Sizes = make([]int, 0, len(sizes))
	for _, sz := range sizes {
		stats.Sizes = append(stats.Sizes, sz)
		if sz > stats.Largest {
			stats.Largest = sz
		}
	}
	// Descending order, insertion sort (component counts are tiny in
	// practice, but correctness does not depend on that).
	for i := 1; i < len(stats.Sizes); i++ {
		for j := i; j > 0 && stats.Sizes[j] > stats.Sizes[j-1]; j-- {
			stats.Sizes[j], stats.Sizes[j-1] = stats.Sizes[j-1], stats.Sizes[j]
		}
	}
	return stats
}
