package graph

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

func TestRemovalSweepMatchesDirectRecomputation(t *testing.T) {
	// Property: for a fixed removal order (fixed rng seed), the sweep's
	// checkpoint statistics must equal those from rebuilding the damaged
	// graph from scratch.
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		n := int(nRaw)%30 + 5
		m := int(mRaw) % 80
		edgeRng := rand.New(rand.NewPCG(seed, 1))
		edges := make([][2]int32, m)
		for i := range edges {
			edges[i] = [2]int32{int32(edgeRng.IntN(n)), int32(edgeRng.IntN(n))}
		}
		g := NewUndirected(n, edges)

		checkpoints := []int{0, n / 4, n / 2, 3 * n / 4, n}
		sweep := RemovalSweep(g, checkpoints, rand.New(rand.NewPCG(seed, 2)))

		// Reproduce the removal order with the same seed.
		order := rand.New(rand.NewPCG(seed, 2)).Perm(n)
		for i, cp := range checkpoints {
			dead := make(map[int]bool, cp)
			for _, v := range order[:cp] {
				dead[v] = true
			}
			// Rebuild the surviving graph with compacted ids.
			remap := make([]int32, n)
			survivors := 0
			for v := 0; v < n; v++ {
				if !dead[v] {
					remap[v] = int32(survivors)
					survivors++
				}
			}
			var keptEdges [][2]int32
			for v := 0; v < n; v++ {
				if dead[v] {
					continue
				}
				for _, u := range g.Neighbors(int32(v)) {
					if !dead[int(u)] && u > int32(v) {
						keptEdges = append(keptEdges, [2]int32{remap[v], remap[u]})
					}
				}
			}
			sub := NewUndirected(survivors, keptEdges)
			stats := sub.Components()
			want := SweepPoint{
				Removed:        cp,
				Survivors:      survivors,
				Components:     stats.Count,
				Largest:        stats.Largest,
				OutsideLargest: stats.OutsideLargest(),
			}
			if survivors == 0 {
				want.Components = 0
				want.Largest = 0
				want.OutsideLargest = 0
			}
			if sweep[i] != want {
				t.Logf("checkpoint %d: sweep %+v direct %+v", cp, sweep[i], want)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestRemovalSweepCheckpointOrderIrrelevant(t *testing.T) {
	g := RandomViewGraph(100, 4, rand.New(rand.NewPCG(3, 3)))
	a := RemovalSweep(g, []int{10, 50, 90}, rand.New(rand.NewPCG(5, 5)))
	b := RemovalSweep(g, []int{90, 10, 50}, rand.New(rand.NewPCG(5, 5)))
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("checkpoint %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestRemovalSweepPanicsOnBadCheckpoint(t *testing.T) {
	g := complete(4)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range checkpoint")
		}
	}()
	RemovalSweep(g, []int{5}, rand.New(rand.NewPCG(1, 1)))
}

func TestRemovalSweepFullRemoval(t *testing.T) {
	g := complete(6)
	pts := RemovalSweep(g, []int{6}, rand.New(rand.NewPCG(1, 1)))
	if pts[0].Survivors != 0 || pts[0].Largest != 0 || pts[0].OutsideLargest != 0 {
		t.Errorf("full removal point = %+v", pts[0])
	}
}

func TestRandomViewGraphProperties(t *testing.T) {
	const n, c = 400, 10
	rng := rand.New(rand.NewPCG(11, 11))
	views := RandomOutViews(n, c, rng)
	for v, view := range views {
		if len(view) != c {
			t.Fatalf("node %d has %d out-links, want %d", v, len(view), c)
		}
		seen := map[int32]bool{}
		for _, u := range view {
			if int(u) == v {
				t.Fatalf("node %d links to itself", v)
			}
			if seen[u] {
				t.Fatalf("node %d has duplicate link to %d", v, u)
			}
			seen[u] = true
		}
	}
	g := FromAdjacency(views)
	lo, _ := g.MinMaxDegree()
	if lo < c {
		t.Errorf("min degree %d below out-view size %d", lo, c)
	}
	// Average degree of the union graph is near 2c(1 - c/(2(n-1))); for
	// n=400, c=10 that is ~19.87.
	if avg := g.AverageDegree(); avg < 19.0 || avg > 20.0 {
		t.Errorf("average degree %v outside expected band", avg)
	}
	if !g.Components().Connected() {
		t.Error("random view graph disconnected (vanishingly unlikely)")
	}
}

func TestRandomOutViewsPanicsWhenTooDense(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic when c >= n")
		}
	}()
	RandomOutViews(3, 3, rand.New(rand.NewPCG(1, 1)))
}

func TestRingLattice(t *testing.T) {
	g := RingLattice(10, 2)
	for v := 0; v < 10; v++ {
		if g.Degree(int32(v)) != 4 {
			t.Fatalf("node %d degree = %d want 4", v, g.Degree(int32(v)))
		}
	}
	// Watts-Strogatz: clustering of a k=2 ring lattice is 0.5.
	if got := g.Clustering(); got < 0.49 || got > 0.51 {
		t.Errorf("lattice clustering = %v want 0.5", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for complete lattice")
		}
	}()
	RingLattice(4, 2)
}
