// Package graph provides the graph-theoretic analysis substrate used to
// evaluate peer sampling overlays: degree statistics, clustering
// coefficients, path lengths, connected components, catastrophic-failure
// sweeps and the uniform-random-view baseline the paper compares against.
//
// All functions operate on the undirected communication graph derived from
// the directed "knows-about" relation, following Section 4.2 of the paper:
// if node a holds a descriptor of node b, the undirected edge {a,b} is
// present.
//
// The expensive metrics scale with explicit estimator knobs rather than
// silently sampling: path lengths BFS from a configurable number of
// sources and clustering coefficients average over a configurable node
// sample (see internal/sim.MetricsConfig), so a quick run and a
// paper-scale run differ only in variance, not in definition.
package graph
