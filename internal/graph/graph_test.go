package graph

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// triangle returns K3.
func triangle() *Graph {
	return NewUndirected(3, [][2]int32{{0, 1}, {1, 2}, {2, 0}})
}

// path4 returns the path 0-1-2-3.
func path4() *Graph {
	return NewUndirected(4, [][2]int32{{0, 1}, {1, 2}, {2, 3}})
}

// star returns a star with center 0 and k leaves.
func star(k int) *Graph {
	edges := make([][2]int32, k)
	for i := 0; i < k; i++ {
		edges[i] = [2]int32{0, int32(i + 1)}
	}
	return NewUndirected(k+1, edges)
}

// complete returns K_n.
func complete(n int) *Graph {
	var edges [][2]int32
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			edges = append(edges, [2]int32{int32(i), int32(j)})
		}
	}
	return NewUndirected(n, edges)
}

func TestNewUndirectedDedupAndLoops(t *testing.T) {
	g := NewUndirected(3, [][2]int32{{0, 1}, {1, 0}, {0, 1}, {2, 2}})
	if g.NumEdges() != 1 {
		t.Errorf("edges = %d want 1", g.NumEdges())
	}
	if g.Degree(2) != 0 {
		t.Errorf("self-loop created degree: %d", g.Degree(2))
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge 0-1 missing")
	}
	if g.HasEdge(0, 2) {
		t.Error("phantom edge 0-2")
	}
}

func TestNewUndirectedPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic for out-of-range edge")
		}
	}()
	NewUndirected(2, [][2]int32{{0, 5}})
}

func TestFromAdjacency(t *testing.T) {
	// Node 0 knows 1 and 2; node 1 knows 0 (duplicate direction) and a
	// dead index 9 (dropped); node 2 knows itself (dropped).
	g := FromAdjacency([][]int32{{1, 2}, {0, 9}, {2}})
	if g.NumNodes() != 3 {
		t.Fatalf("nodes = %d", g.NumNodes())
	}
	if g.NumEdges() != 2 {
		t.Errorf("edges = %d want 2", g.NumEdges())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(0, 2) || g.HasEdge(1, 2) {
		t.Error("wrong edge set")
	}
}

func TestDegrees(t *testing.T) {
	g := star(4)
	if got := g.Degree(0); got != 4 {
		t.Errorf("center degree = %d want 4", got)
	}
	degs := g.Degrees()
	if degs[0] != 4 || degs[1] != 1 {
		t.Errorf("degrees = %v", degs)
	}
	if got := g.AverageDegree(); math.Abs(got-8.0/5.0) > 1e-12 {
		t.Errorf("avg degree = %v want 1.6", got)
	}
	h := g.DegreeHistogram()
	if h[1] != 4 || h[4] != 1 {
		t.Errorf("histogram = %v", h)
	}
	lo, hi := g.MinMaxDegree()
	if lo != 1 || hi != 4 {
		t.Errorf("min,max = %d,%d", lo, hi)
	}
}

func TestAverageDegreeEmpty(t *testing.T) {
	g := NewUndirected(0, nil)
	if g.AverageDegree() != 0 {
		t.Error("empty graph average degree != 0")
	}
	lo, hi := g.MinMaxDegree()
	if lo != 0 || hi != 0 {
		t.Error("empty graph min/max degree != 0")
	}
}

func TestClusteringKnownGraphs(t *testing.T) {
	if got := triangle().Clustering(); math.Abs(got-1) > 1e-12 {
		t.Errorf("triangle clustering = %v want 1", got)
	}
	if got := complete(5).Clustering(); math.Abs(got-1) > 1e-12 {
		t.Errorf("K5 clustering = %v want 1", got)
	}
	if got := path4().Clustering(); got != 0 {
		t.Errorf("path clustering = %v want 0", got)
	}
	if got := star(5).Clustering(); got != 0 {
		t.Errorf("star clustering = %v want 0", got)
	}
	// Triangle with a pendant: nodes 0,1,2 triangle; 3 attached to 0.
	// CC(0)=1/3 (neighbors 1,2,3: one edge of three possible),
	// CC(1)=CC(2)=1, CC(3)=0; average = (1/3+1+1+0)/4 = 7/12.
	g := NewUndirected(4, [][2]int32{{0, 1}, {1, 2}, {2, 0}, {0, 3}})
	if got, want := g.Clustering(), 7.0/12.0; math.Abs(got-want) > 1e-12 {
		t.Errorf("pendant triangle clustering = %v want %v", got, want)
	}
}

func TestEstimateClusteringMatchesExactOnFullSample(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	g := RandomViewGraph(200, 5, rng)
	exact := g.Clustering()
	if got := g.EstimateClustering(10_000, rng); math.Abs(got-exact) > 1e-12 {
		t.Errorf("full-sample estimate %v != exact %v", got, exact)
	}
	est := g.EstimateClustering(150, rng)
	if math.Abs(est-exact) > 0.05 {
		t.Errorf("sampled estimate %v too far from exact %v", est, exact)
	}
}

func TestBFS(t *testing.T) {
	g := path4()
	dist := g.BFS(0)
	want := []int32{0, 1, 2, 3}
	for i := range want {
		if dist[i] != want[i] {
			t.Errorf("dist[%d] = %d want %d", i, dist[i], want[i])
		}
	}
	// Disconnected: add isolated node.
	g2 := NewUndirected(3, [][2]int32{{0, 1}})
	if d := g2.BFS(0); d[2] != -1 {
		t.Errorf("unreachable distance = %d want -1", d[2])
	}
}

func TestAveragePathLength(t *testing.T) {
	// Path 0-1-2-3: ordered pairs distances: 1,2,3 each twice + 1,2 twice
	// + 1 twice -> sum = 2*(1+2+3) + 2*(1+2) + 2*1 = 12+6+2 = 20,
	// pairs = 12, avg = 5/3.
	got, pairs := path4().AveragePathLength()
	if pairs != 12 {
		t.Errorf("pairs = %d want 12", pairs)
	}
	if math.Abs(got-5.0/3.0) > 1e-12 {
		t.Errorf("avg path length = %v want 5/3", got)
	}
	if got, _ := complete(6).AveragePathLength(); math.Abs(got-1) > 1e-12 {
		t.Errorf("K6 path length = %v want 1", got)
	}
	// Star: leaves at distance 2 from each other, 1 from the center.
	// k=3: ordered pairs: center-leaf 1 (6 pairs), leaf-leaf 2 (6 pairs)
	// -> avg = (6*1+6*2)/12 = 1.5.
	if got, _ := star(3).AveragePathLength(); math.Abs(got-1.5) > 1e-12 {
		t.Errorf("star path length = %v want 1.5", got)
	}
}

func TestAveragePathLengthDisconnected(t *testing.T) {
	g := NewUndirected(4, [][2]int32{{0, 1}, {2, 3}})
	got, pairs := g.AveragePathLength()
	if pairs != 4 || math.Abs(got-1) > 1e-12 {
		t.Errorf("got %v over %d pairs, want 1 over 4", got, pairs)
	}
	empty := NewUndirected(3, nil)
	if got, pairs := empty.AveragePathLength(); got != 0 || pairs != 0 {
		t.Errorf("edgeless: got %v,%d want 0,0", got, pairs)
	}
}

func TestEstimatePathLength(t *testing.T) {
	rng := rand.New(rand.NewPCG(7, 7))
	g := RandomViewGraph(300, 6, rng)
	exact, _ := g.AveragePathLength()
	if got := g.EstimatePathLength(1000, rng); math.Abs(got-exact) > 1e-12 {
		t.Errorf("full-source estimate %v != exact %v", got, exact)
	}
	est := g.EstimatePathLength(50, rng)
	if math.Abs(est-exact) > 0.15 {
		t.Errorf("sampled estimate %v too far from exact %v", est, exact)
	}
	tiny := NewUndirected(1, nil)
	if tiny.EstimatePathLength(5, rng) != 0 {
		t.Error("single node path length != 0")
	}
}

func TestDiameter(t *testing.T) {
	if d := path4().Diameter(); d != 3 {
		t.Errorf("path diameter = %d want 3", d)
	}
	if d := RingLattice(10, 1).Diameter(); d != 5 {
		t.Errorf("ring diameter = %d want 5", d)
	}
	if d := complete(4).Diameter(); d != 1 {
		t.Errorf("K4 diameter = %d want 1", d)
	}
}

func TestComponents(t *testing.T) {
	g := NewUndirected(7, [][2]int32{{0, 1}, {1, 2}, {3, 4}})
	stats := g.Components()
	if stats.Count != 4 {
		t.Errorf("count = %d want 4", stats.Count)
	}
	if stats.Largest != 3 {
		t.Errorf("largest = %d want 3", stats.Largest)
	}
	if stats.OutsideLargest() != 4 {
		t.Errorf("outside largest = %d want 4", stats.OutsideLargest())
	}
	if stats.Connected() {
		t.Error("disconnected graph reported connected")
	}
	wantSizes := []int{3, 2, 1, 1}
	for i, s := range wantSizes {
		if stats.Sizes[i] != s {
			t.Errorf("sizes = %v want %v", stats.Sizes, wantSizes)
			break
		}
	}
	if !triangle().Components().Connected() {
		t.Error("triangle reported disconnected")
	}
}

func TestDSUBasics(t *testing.T) {
	d := NewDSU(4)
	if d.Count() != 4 {
		t.Fatalf("count = %d", d.Count())
	}
	if !d.Union(0, 1) || d.Union(0, 1) {
		t.Error("union return values wrong")
	}
	if d.Find(0) != d.Find(1) {
		t.Error("0 and 1 not merged")
	}
	if d.SizeOf(1) != 2 {
		t.Errorf("size = %d want 2", d.SizeOf(1))
	}
	if d.Count() != 3 {
		t.Errorf("count = %d want 3", d.Count())
	}
}

func TestDSUMatchesBFSComponents(t *testing.T) {
	f := func(seed uint64, nRaw, mRaw uint8) bool {
		rng := rand.New(rand.NewPCG(seed, 99))
		n := int(nRaw)%20 + 2
		m := int(mRaw) % 40
		edges := make([][2]int32, m)
		for i := range edges {
			edges[i] = [2]int32{int32(rng.IntN(n)), int32(rng.IntN(n))}
		}
		g := NewUndirected(n, edges)
		stats := g.Components()
		// Independent check via BFS flood fill.
		seen := make([]bool, n)
		count, largest := 0, 0
		for v := 0; v < n; v++ {
			if seen[v] {
				continue
			}
			count++
			size := 0
			for _, dist := range g.BFS(int32(v)) {
				_ = dist
			}
			dists := g.BFS(int32(v))
			for u, du := range dists {
				if du >= 0 && !seen[u] {
					seen[u] = true
					size++
				}
			}
			if size > largest {
				largest = size
			}
		}
		return stats.Count == count && stats.Largest == largest
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
