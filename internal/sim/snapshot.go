package sim

import (
	"peersampling/internal/graph"
)

// Snapshot is the undirected communication graph over the live nodes of a
// network at one instant, together with the mapping between original node
// IDs and the compacted graph indices.
type Snapshot struct {
	// Graph is the undirected communication topology of live nodes;
	// descriptors pointing at dead nodes are excluded.
	Graph *graph.Graph
	// IDs maps compact graph index -> original node ID.
	IDs []NodeID
	// index maps original node ID -> compact graph index, -1 if dead.
	index []int32
}

// TakeSnapshot captures the current communication topology of the live
// nodes, dropping dead links (Section 4.2's undirected conversion).
func (w *Network) TakeSnapshot() *Snapshot {
	s := &Snapshot{
		IDs:   make([]NodeID, 0, w.live),
		index: make([]int32, len(w.nodes)),
	}
	for i := range s.index {
		s.index[i] = -1
	}
	for id, ok := range w.alive {
		if ok {
			s.index[id] = int32(len(s.IDs))
			s.IDs = append(s.IDs, NodeID(id))
		}
	}
	out := make([][]int32, len(s.IDs))
	for compact, id := range s.IDs {
		v := w.nodes[id].View()
		targets := make([]int32, 0, v.Len())
		for i := 0; i < v.Len(); i++ {
			t := s.index[v.At(i).Addr]
			if t >= 0 {
				targets = append(targets, t)
			}
		}
		out[compact] = targets
	}
	s.Graph = graph.FromAdjacency(out)
	return s
}

// DegreeOf returns the undirected degree of the node with the given
// original ID, and whether the node is live (dead nodes have no degree).
func (s *Snapshot) DegreeOf(id NodeID) (int, bool) {
	if int(id) >= len(s.index) || s.index[id] < 0 {
		return 0, false
	}
	return s.Graph.Degree(s.index[id]), true
}
