package sim

import (
	"reflect"
	"runtime"
	"testing"

	"peersampling/internal/core"
	"peersampling/internal/stats"
)

// shardedResult captures everything an experiment would publish from a
// run: the exact view contents of every live node plus the uniformity
// statistics of the indegree distribution. Bit-identical replay means all
// of it matches exactly, floats included.
type shardedResult struct {
	views    [][]core.Descriptor[NodeID]
	chi      float64
	entropy  float64
	deadLink int
}

// runShardedExperiment runs a fixed experiment — grow, gossip, a 20%
// catastrophe, gossip again — entirely on the staged driver with the
// given worker count.
func runShardedExperiment(workers int) shardedResult {
	w := MustNew(Config{Protocol: core.Newscast, ViewSize: 8, Seed: 99})
	const n = 300
	for i := 0; i < n; i++ {
		w.Add(nil)
	}
	for i := 0; i < n; i++ {
		w.Node(NodeID(i)).Bootstrap([]core.Descriptor[NodeID]{
			{Addr: NodeID((i + 1) % n), Hop: 0},
		})
	}
	w.RunSharded(10, workers)
	w.KillFraction(0.2)
	w.RunSharded(10, workers)

	res := shardedResult{deadLink: w.DeadLinks()}
	indeg := make([]int, w.Size())
	for _, id := range w.LiveIDs() {
		v := w.Node(id).View()
		res.views = append(res.views, v.Descriptors())
		for i := 0; i < v.Len(); i++ {
			indeg[v.At(i).Addr]++
		}
	}
	res.chi = stats.ChiSquareUniform(indeg)
	res.entropy = stats.NormalizedEntropy(indeg)
	return res
}

// TestShardedDeterminismAcrossWorkers is the staged driver's central
// property: for a fixed seed the run replays bit-identically — same view
// snapshots, same uniformity statistics — at every worker count and every
// GOMAXPROCS. Workers=1 serves as the reference execution (a plain
// sequential staged cycle); every parallel execution must match it.
func TestShardedDeterminismAcrossWorkers(t *testing.T) {
	want := runShardedExperiment(1)
	if len(want.views) != 240 {
		t.Fatalf("reference run has %d live views, want 240", len(want.views))
	}
	gomaxprocs := []int{1, 4, runtime.NumCPU()}
	workerCounts := []int{0, 1, 2, 3, 7, 16} // 0 = GOMAXPROCS default
	for _, procs := range gomaxprocs {
		prev := runtime.GOMAXPROCS(procs)
		for _, workers := range workerCounts {
			got := runShardedExperiment(workers)
			if !reflect.DeepEqual(got.views, want.views) {
				runtime.GOMAXPROCS(prev)
				t.Fatalf("GOMAXPROCS=%d workers=%d: view snapshots diverge from the sequential reference", procs, workers)
			}
			if got.chi != want.chi || got.entropy != want.entropy || got.deadLink != want.deadLink {
				runtime.GOMAXPROCS(prev)
				t.Fatalf("GOMAXPROCS=%d workers=%d: statistics diverge: chi %v vs %v, entropy %v vs %v, dead links %d vs %d",
					procs, workers, got.chi, want.chi, got.entropy, want.entropy, got.deadLink, want.deadLink)
			}
		}
		runtime.GOMAXPROCS(prev)
	}
}

// TestShardedKeepsOverlayConnected checks the staged schedule is a sound
// gossip execution in its own right: the studied protocols must still
// converge a ring into a connected overlay under it. The (tail, head)
// pair is excluded: selecting the oldest peer while keeping the freshest
// descriptors is already the paper's most partition-prone combination,
// and under a fully synchronized schedule (everyone ages, then everyone
// exchanges) it reliably fragments — a property of the protocol, not a
// driver bug, and one reason experiments must not mix drivers.
func TestShardedKeepsOverlayConnected(t *testing.T) {
	for _, proto := range core.StudiedProtocols() {
		proto := proto
		if proto.PeerSel == core.PeerTail && proto.ViewSel == core.ViewHead {
			continue
		}
		t.Run(proto.String(), func(t *testing.T) {
			w := MustNew(Config{Protocol: proto, ViewSize: 15, Seed: 7})
			seedRing(t, w, 60)
			w.RunSharded(60, 4)
			snap := w.TakeSnapshot()
			if !snap.Graph.Components().Connected() {
				t.Errorf("%v produced a disconnected overlay under the staged driver", proto)
			}
		})
	}
}

// TestShardedCycleSteadyStateAllocs pins the staged driver's steady-state
// allocation behaviour: once the engine's slot and inbox storage has
// grown to the population size, a single-worker cycle costs only the
// three escaping stage closures — a constant, not a function of the
// population size (the budget would read in the thousands if any
// per-node path still allocated).
func TestShardedCycleSteadyStateAllocs(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	w := MustNew(Config{Protocol: core.Newscast, ViewSize: 8, Seed: 5})
	seedRing(t, w, 200)
	w.RunSharded(5, 1) // grow all scratch to steady state
	got := testing.AllocsPerRun(10, func() { w.RunCycleSharded(1) })
	if got > 3 {
		t.Errorf("steady-state staged cycle allocates %.1f times, want <= 3", got)
	}
}

// TestAppendLiveIDsAscending is the regression test for the cycle
// drivers' ordering invariant: the initiator list is always built in
// ascending ID order, holes and all, so the seeded shuffle (or the staged
// schedule) is the only source of ordering randomness. A driver iterating
// liveness state in nondeterministic order would break fixed-seed replay.
func TestAppendLiveIDsAscending(t *testing.T) {
	w := MustNew(testConfig(core.Newscast))
	seedRing(t, w, 50)
	for _, id := range []NodeID{0, 7, 13, 13, 49} {
		w.Kill(id)
	}
	// Reuse a dirty scratch slice to check the append contract too.
	dirty := make([]NodeID, 3, 64)
	ids := w.appendLiveIDs(dirty[:0])
	if len(ids) != w.LiveCount() {
		t.Fatalf("got %d ids, want %d", len(ids), w.LiveCount())
	}
	for i, id := range ids {
		if !w.Alive(id) {
			t.Errorf("dead node %d listed", id)
		}
		if i > 0 && ids[i-1] >= id {
			t.Fatalf("ids not strictly ascending at %d: %d >= %d", i, ids[i-1], id)
		}
	}
	if !reflect.DeepEqual(ids, w.LiveIDs()) {
		t.Error("appendLiveIDs and LiveIDs disagree")
	}
}

// TestSequentialCycleSteadyStateAllocs pins the sequential driver's
// exchange hot path: after warm-up, a RunCycle must not allocate — the
// request/response buffers and the initiator list all live in network
// scratch.
func TestSequentialCycleSteadyStateAllocs(t *testing.T) {
	if testing.CoverMode() != "" {
		t.Skip("coverage instrumentation allocates")
	}
	w := MustNew(Config{Protocol: core.Newscast, ViewSize: 8, Seed: 5})
	seedRing(t, w, 200)
	w.Run(5)
	got := testing.AllocsPerRun(10, func() { w.RunCycle() })
	if got > 0 {
		t.Errorf("steady-state sequential cycle allocates %.1f times, want 0", got)
	}
}
