package sim

import (
	"math/rand/v2"
)

// MetricsConfig controls the estimators used when observing large
// overlays. Zero values request exact computation, which is what the
// tests use; the experiment drivers sample to keep the paper-scale runs
// (N = 10^4, hundreds of cycles) tractable.
type MetricsConfig struct {
	// PathSources is the number of BFS sources used to estimate average
	// path length; 0 computes the exact all-pairs value.
	PathSources int
	// ClusteringSample is the number of nodes sampled for the clustering
	// coefficient; 0 computes the exact average.
	ClusteringSample int
	// Seed drives the sampling; observations with the same seed and
	// topology are identical.
	Seed uint64
}

// Observation is one row of metrics about the live overlay, the raw
// material of the paper's figures.
type Observation struct {
	Cycle      int
	LiveNodes  int
	Edges      int
	AvgDegree  float64
	MinDegree  int
	MaxDegree  int
	Clustering float64
	PathLen    float64
	Components int
	Largest    int
	DeadLinks  int
}

// Observe measures the current overlay.
func (w *Network) Observe(mc MetricsConfig) Observation {
	snap := w.TakeSnapshot()
	g := snap.Graph
	rng := rand.New(rand.NewPCG(mc.Seed, uint64(w.cycle)+1))

	o := Observation{
		Cycle:     w.cycle,
		LiveNodes: w.live,
		Edges:     g.NumEdges(),
		AvgDegree: g.AverageDegree(),
		DeadLinks: w.DeadLinks(),
	}
	o.MinDegree, o.MaxDegree = g.MinMaxDegree()

	if mc.ClusteringSample > 0 {
		o.Clustering = g.EstimateClustering(mc.ClusteringSample, rng)
	} else {
		o.Clustering = g.Clustering()
	}
	if mc.PathSources > 0 {
		o.PathLen = g.EstimatePathLength(mc.PathSources, rng)
	} else {
		o.PathLen, _ = g.AveragePathLength()
	}
	comp := g.Components()
	o.Components = comp.Count
	o.Largest = comp.Largest
	return o
}

// Degrees returns the undirected degree of every live node in the current
// overlay, keyed by original node ID (dead nodes are absent).
func (w *Network) Degrees() map[NodeID]int {
	snap := w.TakeSnapshot()
	out := make(map[NodeID]int, len(snap.IDs))
	for _, id := range snap.IDs {
		d, _ := snap.DegreeOf(id)
		out[id] = d
	}
	return out
}
