package sim

import (
	"fmt"
	"math/rand/v2"

	"peersampling/internal/core"
)

// NodeID identifies a simulated node; IDs are dense indices assigned in
// join order and are never reused.
type NodeID = int32

// Config parameterises a simulated network.
type Config struct {
	// Protocol is the gossip protocol tuple every node executes.
	Protocol core.Protocol
	// ViewSize is the partial view capacity c (the paper uses 30).
	ViewSize int
	// Seed makes the whole simulation deterministic: node RNGs, cycle
	// shuffles and failure injection all derive from it.
	Seed uint64
}

func (c Config) validate() error {
	if !c.Protocol.Valid() {
		return fmt.Errorf("sim: invalid protocol %+v", c.Protocol)
	}
	if c.ViewSize <= 0 {
		return fmt.Errorf("sim: view size must be positive, got %d", c.ViewSize)
	}
	return nil
}

// Network is a simulated population of nodes running one protocol.
type Network struct {
	cfg   Config
	nodes []*core.Node[NodeID]
	alive []bool
	live  int
	cycle int
	rng   *rand.Rand // drives shuffles; distinct from per-node RNGs

	// scratch holds the per-cycle initiator order to avoid reallocation.
	scratch []NodeID

	// reqScratch and respScratch are the reusable exchange buffers of the
	// sequential cycle driver: a request is consumed by its peer and a
	// response by its initiator before the next exchange starts, so one
	// buffer of each suffices and steady-state cycles do not allocate.
	reqScratch  []core.Descriptor[NodeID]
	respScratch []core.Descriptor[NodeID]

	// sharded is the reusable state of the staged parallel cycle driver
	// (see sharded.go); nil until RunCycleSharded is first called.
	sharded *shardedEngine
}

// New returns an empty network. Nodes are added with Add or the bootstrap
// helpers in internal/scenario.
func New(cfg Config) (*Network, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	return &Network{
		cfg: cfg,
		rng: rand.New(rand.NewPCG(cfg.Seed, 0xC0FFEE)),
	}, nil
}

// MustNew is New for static configurations known to be valid; it panics on
// error and exists to keep experiment drivers readable.
func MustNew(cfg Config) *Network {
	n, err := New(cfg)
	if err != nil {
		panic(err)
	}
	return n
}

// Config returns the network configuration.
func (w *Network) Config() Config { return w.cfg }

// Cycle returns the number of completed cycles.
func (w *Network) Cycle() int { return w.cycle }

// Size returns the total number of IDs ever assigned, dead or alive.
func (w *Network) Size() int { return len(w.nodes) }

// LiveCount returns the number of live nodes.
func (w *Network) LiveCount() int { return w.live }

// Alive reports whether id is currently live.
func (w *Network) Alive(id NodeID) bool { return w.alive[id] }

// Node exposes the protocol state of a node, dead or alive. Intended for
// metrics and tests; mutating views mid-experiment invalidates results.
func (w *Network) Node(id NodeID) *core.Node[NodeID] { return w.nodes[id] }

// Add joins a new node whose view is bootstrapped with the given
// descriptors (commonly a single contact node) and returns its ID.
func (w *Network) Add(bootstrap []core.Descriptor[NodeID]) NodeID {
	id := NodeID(len(w.nodes))
	// Per-node RNG stream: derived from the seed and the node ID so runs
	// are reproducible regardless of join interleavings.
	n, err := core.NewNode(id, w.cfg.Protocol, w.cfg.ViewSize,
		rand.New(rand.NewPCG(w.cfg.Seed, uint64(id)+1)))
	if err != nil {
		// Config was validated in New; an error here is a programmer bug.
		panic(err)
	}
	n.Bootstrap(bootstrap)
	w.nodes = append(w.nodes, n)
	w.alive = append(w.alive, true)
	w.live++
	return id
}

// Kill marks a node as failed. Its descriptors linger in other views as
// dead links until view selection flushes them; exchanges directed at it
// fail silently. Killing a dead node is a no-op.
func (w *Network) Kill(id NodeID) {
	if w.alive[id] {
		w.alive[id] = false
		w.live--
	}
}

// KillFraction fails the given fraction of live nodes chosen uniformly at
// random and returns the failed IDs.
func (w *Network) KillFraction(fraction float64) []NodeID {
	if fraction < 0 || fraction > 1 {
		panic(fmt.Sprintf("sim: kill fraction %v out of [0,1]", fraction))
	}
	ids := w.LiveIDs()
	w.rng.Shuffle(len(ids), func(i, j int) { ids[i], ids[j] = ids[j], ids[i] })
	count := int(float64(len(ids)) * fraction)
	for _, id := range ids[:count] {
		w.Kill(id)
	}
	return ids[:count]
}

// LiveIDs returns the IDs of all live nodes in ascending order.
func (w *Network) LiveIDs() []NodeID {
	return w.appendLiveIDs(make([]NodeID, 0, w.live))
}

// appendLiveIDs appends the IDs of all live nodes to dst in ascending ID
// order. Every cycle driver builds its initiator list through this helper:
// the ascending order is a determinism invariant — the seeded shuffle (or
// the staged schedule) is the only source of ordering randomness, so two
// networks built with the same seed and the same operation sequence replay
// identically.
func (w *Network) appendLiveIDs(dst []NodeID) []NodeID {
	for id, ok := range w.alive {
		if ok {
			dst = append(dst, NodeID(id))
		}
	}
	return dst
}

// RunCycle executes one protocol cycle: every node live at the start of
// the cycle initiates one exchange, in uniform random order. Exchanges are
// atomic; an exchange aimed at a dead peer fails without changing the
// initiator's state (the paper's protocols have no explicit failure
// handling).
func (w *Network) RunCycle() {
	w.scratch = w.appendLiveIDs(w.scratch[:0])
	w.rng.Shuffle(len(w.scratch), func(i, j int) {
		w.scratch[i], w.scratch[j] = w.scratch[j], w.scratch[i]
	})
	for _, id := range w.scratch {
		if !w.alive[id] {
			continue // failed mid-cycle by an external driver
		}
		w.exchange(id)
	}
	w.cycle++
}

// Run executes n cycles.
func (w *Network) Run(n int) {
	for i := 0; i < n; i++ {
		w.RunCycle()
	}
}

// exchange runs the active thread of one node for this cycle: the view
// ages by one cycle, then the node gossips with its selected peer. The
// request and response live in the network's reusable buffers — each is
// fully consumed before the next exchange rebuilds them.
func (w *Network) exchange(id NodeID) {
	node := w.nodes[id]
	node.AgeView()
	peer, err := node.SelectPeer()
	if err != nil {
		return // empty view: nothing to gossip with this cycle
	}
	req, reqBuf := node.MakeRequestInto(w.reqScratch)
	w.reqScratch = reqBuf
	if !w.alive[peer] {
		node.OnExchangeFailed(peer)
		return
	}
	resp, respBuf, ok := w.nodes[peer].HandleRequestInto(req, w.respScratch)
	w.respScratch = respBuf
	if ok {
		node.HandleResponse(resp)
	}
}

// DeadLinks counts descriptors in live nodes' views that point at dead
// nodes — the y axis of the paper's Figure 7.
func (w *Network) DeadLinks() int {
	total := 0
	for id, ok := range w.alive {
		if !ok {
			continue
		}
		v := w.nodes[id].View()
		for i := 0; i < v.Len(); i++ {
			if !w.alive[v.At(i).Addr] {
				total++
			}
		}
	}
	return total
}

// SamplePeer implements the service's getPeer() for a simulated node: a
// uniform random member of its current view.
func (w *Network) SamplePeer(id NodeID) (NodeID, error) {
	return w.nodes[id].RandomPeer()
}
