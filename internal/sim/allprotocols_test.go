package sim

import (
	"testing"

	"peersampling/internal/core"
)

// TestAllTwentySevenProtocolsRunSafely drives every point of the paper's
// 3x3x3 design space — including the 19 degenerate combinations — through
// joins, cycles and failures, and checks the structural invariants that
// must hold regardless of protocol quality: views stay within capacity,
// never contain the owner, stay hop-ordered, and the engine never panics.
func TestAllTwentySevenProtocolsRunSafely(t *testing.T) {
	for _, proto := range core.AllProtocols() {
		proto := proto
		t.Run(proto.String(), func(t *testing.T) {
			t.Parallel()
			w := MustNew(Config{Protocol: proto, ViewSize: 6, Seed: 11})
			seedRing(t, w, 40)
			w.Run(15)
			// Mid-run churn: a join and a failure.
			w.Add([]core.Descriptor[NodeID]{{Addr: 0, Hop: 0}})
			w.Kill(1)
			w.Run(15)

			for id := 0; id < w.Size(); id++ {
				v := w.Node(NodeID(id)).View()
				if v.Len() > v.Cap() {
					t.Fatalf("node %d view %d exceeds cap %d", id, v.Len(), v.Cap())
				}
				if v.Contains(NodeID(id)) {
					t.Fatalf("node %d stored itself", id)
				}
				for i := 1; i < v.Len(); i++ {
					if v.At(i).Hop < v.At(i-1).Hop {
						t.Fatalf("node %d view not hop-ordered: %v", id, v)
					}
				}
			}
			// Dead-link accounting stays consistent with the alive set.
			dead := w.DeadLinks()
			manual := 0
			for id := 0; id < w.Size(); id++ {
				if !w.Alive(NodeID(id)) {
					continue
				}
				v := w.Node(NodeID(id)).View()
				for i := 0; i < v.Len(); i++ {
					if !w.Alive(v.At(i).Addr) {
						manual++
					}
				}
			}
			if dead != manual {
				t.Fatalf("DeadLinks() = %d, manual count %d", dead, manual)
			}
		})
	}
}
