// Package sim is the cycle-based simulation substrate on which the
// paper's experiments run (the equivalent of the authors' simulator, a
// precursor of PeerSim).
//
// Time advances in cycles. In each cycle every live node initiates exactly
// one exchange, in a fresh uniform random order; exchanges are atomic —
// the initiator's request and the peer's optional response are applied
// back-to-back with no in-flight state. Node joins take effect between
// cycles and node failures leave dangling descriptors ("dead links") in
// the views of live nodes, exactly as the paper's self-healing experiments
// require: a failed contact changes no state at the initiator.
//
// The simulator and the deployable runtime (internal/runtime) execute the
// SAME protocol state machine (internal/core); what differs is the
// environment around it. Here a cycle is a synchronous barrier and every
// run is bit-for-bit reproducible from its seed, which is what makes
// paper-scale experiments (10^4 nodes, 300 cycles, 100 repetitions)
// tractable; the runtime replaces the barrier with real timers, real
// sockets and real concurrency. Results transfer between the two because
// a runtime period T plays the role of one simulated cycle (the paper's
// own equivalence, Section 3).
package sim
